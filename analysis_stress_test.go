package commute_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"commute"
	"commute/internal/apps/src"
	"commute/internal/server"
)

// TestAnalysisConcurrencyStress hammers the analysis pipeline the way a
// busy daemon does: 16 goroutines share one Analysis per application
// (graph, Barnes-Hut, Water), mixing AnalyzeAll with per-method Report
// lookups, while a live commuted server concurrently cold-loads and
// serves /v1/analyze for the same programs. Run under -race, it
// verifies the report cells, effects memos, pair cache, and the global
// expression intern table publish safely under contention, and that
// every goroutine observes the same published reports.
func TestAnalysisConcurrencyStress(t *testing.T) {
	apps := map[string]string{
		"graph.mc":     src.Graph,
		"barneshut.mc": src.BarnesHut,
		"water.mc":     src.Water,
	}
	systems := make(map[string]*commute.System, len(apps))
	for name, source := range apps {
		sys, err := commute.LoadOpts(name, source, commute.LoadOptions{AnalysisWorkers: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		systems[name] = sys
	}

	srv := server.New(server.Config{Workers: 4, AnalysisWorkers: 4, CacheBytes: 1 << 20})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const goroutines = 16
	const rounds = 6
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for name, sys := range systems {
					// Shared-Analysis reads: the full fan-out and a few
					// single-method lookups racing against it.
					reports := sys.Reports()
					if len(reports) == 0 {
						errc <- fmt.Errorf("goroutine %d: %s produced no reports", g, name)
						return
					}
					for _, rep := range reports {
						if again := sys.Report(rep.Method.FullName()); again != rep {
							errc <- fmt.Errorf("goroutine %d: %s %s: Report returned a different *MethodReport than AnalyzeAll",
								g, name, rep.Method.FullName())
							return
						}
					}
				}
				// Every fourth goroutine also drives the daemon, so server
				// cold loads (their own Analysis instances, AnalysisWorkers=4)
				// run concurrently with the in-process reads above. The tiny
				// cache budget forces evictions and therefore repeated cold
				// loads.
				if g%4 == 0 {
					app := []string{"quickstart", "barneshut", "water"}[round%3]
					body, _ := json.Marshal(map[string]string{"app": app})
					resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
					if err != nil {
						errc <- fmt.Errorf("goroutine %d: /v1/analyze: %v", g, err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("goroutine %d: /v1/analyze %s: status %d", g, app, resp.StatusCode)
						resp.Body.Close()
						return
					}
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
