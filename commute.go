// Package commute is a from-scratch reproduction of "Commutativity
// Analysis: A New Analysis Framework for Parallelizing Compilers"
// (Rinard & Diniz, PLDI 1996): a parallelizing compiler for an
// object-based C++ subset whose primary analysis discovers operations
// that commute — generate the same final result in either execution
// order — and automatically generates parallel code for computations,
// including dynamic pointer-based ones, whose operations all commute.
//
// The pipeline is:
//
//	Load (parse + type check)          internal/frontend
//	  → commutativity analysis         internal/analysis, internal/core
//	  → code generation plan           internal/codegen
//	  → execution                      internal/interp (serial),
//	                                   internal/rt (goroutine parallel),
//	                                   internal/tracer + internal/simdash
//	                                   (simulated multiprocessor)
//
// A minimal use:
//
//	sys, err := commute.Load("graph.mc", source)
//	report := sys.Report("builder::traverse") // analysis outcome
//	err = sys.RunParallel(8, os.Stdout)       // real parallel execution
package commute

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"commute/internal/codegen"
	"commute/internal/core"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/rt"
	"commute/internal/simdash"
	"commute/internal/tracer"
	"commute/internal/transform"
)

// System is a compiled program together with its commutativity analysis
// and code generation plan.
type System struct {
	File     *ast.File
	Prog     *types.Program
	Analysis *core.Analysis
	Plan     *codegen.Plan

	// SpecPlan is the speculative code generation plan: like Plan, but
	// extents the analysis rejected only at the symbolic pair stage are
	// additionally planned parallel with write-buffered speculative
	// execution (codegen.Options.SpeculateRejected). RunParallelOpts
	// executes against it when RunOptions.Speculate enables speculation.
	SpecPlan *codegen.Plan

	// CondPlan is the conditional code generation plan: like SpecPlan,
	// but extents whose pair failures all synthesized guardable residual
	// predicates are planned parallel behind a runtime guard
	// (codegen.Options.ConditionalGuards) — the guard evaluates the
	// predicate at region entry and dispatches to the parallel body or
	// the serial path. RunParallelOpts executes against it when
	// RunOptions.Conditional is set.
	CondPlan *codegen.Plan
}

// Load parses, type checks, analyzes, and plans a program written in
// the mini-C++ dialect. The analysis phase fans out across GOMAXPROCS
// goroutines; use LoadOpts with AnalysisWorkers to tune or serialize
// it.
func Load(name, source string) (*System, error) {
	return load(name, source, 0)
}

func load(name, source string, workers int) (*System, error) {
	file, err := parser.Parse(name, source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	prog, err := types.Check(file)
	if err != nil {
		return nil, fmt.Errorf("type check: %w", err)
	}
	analysis := core.New(prog)
	analysis.Workers = workers
	plan := codegen.Build(analysis)
	spec := codegen.BuildWithOptions(analysis, codegen.Options{SpeculateRejected: true})
	cnd := codegen.BuildWithOptions(analysis, codegen.Options{ConditionalGuards: true, SpeculateRejected: true})
	return &System{File: file, Prog: prog, Analysis: analysis, Plan: plan, SpecPlan: spec, CondPlan: cnd}, nil
}

// LoadTransformed applies the §7.2 loop-replacement transformation —
// while loops rewritten into tail-recursive auxiliary methods — before
// analysis, widening the set of computations the symbolic executor can
// analyze (e.g. pointer-chasing accumulation loops). It returns the
// loaded system, the transformed source, and the rewrites performed.
func LoadTransformed(name, source string) (*System, string, []transform.Rewrite, error) {
	return loadTransformed(name, source, 0)
}

func loadTransformed(name, source string, workers int) (*System, string, []transform.Rewrite, error) {
	pre, err := load(name, source, workers)
	if err != nil {
		return nil, "", nil, err
	}
	out, rewrites := transform.WhileToRecursion(pre.Prog, pre.File)
	if len(rewrites) == 0 {
		return pre, source, nil, nil
	}
	sys, err := load(name, out, workers)
	if err != nil {
		return nil, out, rewrites, fmt.Errorf("transformed source failed to reload: %w", err)
	}
	return sys, out, rewrites, nil
}

// LoadOptions selects load-time dialect options. The options are part
// of a program's cache identity: two loads of the same source with
// different options are different programs (see Fingerprint).
type LoadOptions struct {
	// Transform applies the §7.2 loop-replacement rewrite (while loops
	// → tail-recursive auxiliary methods) before analysis, as
	// LoadTransformed does.
	Transform bool

	// AnalysisWorkers bounds the goroutines the commutativity analysis
	// fans out across at load time (core.Analysis.Workers). Zero means
	// GOMAXPROCS; 1 forces the serial driver. It only changes how fast
	// the analysis runs, never its result — reports are deterministic
	// and identical at every worker count — so it is deliberately NOT
	// part of Fingerprint: a cached System loaded at one worker count is
	// interchangeable with any other.
	AnalysisWorkers int
}

// Fingerprint returns the content address of a (source, options) pair:
// the hex SHA-256 of a canonical encoding of the name, source text, and
// load options. Equal fingerprints mean Load would produce an
// equivalent System, so a caching layer may reuse a previously loaded
// one — including its warm per-program resolution and compiled-closure
// caches — without re-running any phase of the pipeline.
func Fingerprint(name, source string, opts LoadOptions) string {
	h := sha256.New()
	// Length-prefix each field so no two distinct inputs collide by
	// concatenation.
	fmt.Fprintf(h, "%d:%s;%d:%s;transform=%t", len(name), name, len(source), source, opts.Transform)
	return hex.EncodeToString(h.Sum(nil))
}

// LoadOpts loads a program under the given options. It is the
// cache-facing entry point: the result of LoadOpts is fully determined
// by Fingerprint(name, source, opts).
func LoadOpts(name, source string, opts LoadOptions) (*System, error) {
	if opts.Transform {
		sys, _, _, err := loadTransformed(name, source, opts.AnalysisWorkers)
		return sys, err
	}
	return load(name, source, opts.AnalysisWorkers)
}

// Warm forces the per-program lazy caches — slot resolution and the
// closure-compiled method bodies — to build now instead of on the first
// execution. A caching layer calls this once at load time so every
// subsequent request, including the first execution, runs against a
// fully warm System.
func (s *System) Warm() { interp.Warm(s.Prog) }

// Release drops the per-program resolution and compiled-closure caches,
// releasing their memory. Call it when evicting a System from a cache.
// The caller must guarantee no executions of this System are in flight
// (and none start concurrently): a later execution would rebuild the
// caches, including re-annotating the shared AST, which is only safe
// once every prior reader is done.
func (s *System) Release() { interp.Release(s.Prog) }

// LoadFiles parses several source files into one program (class and
// global declarations are visible across files).
func LoadFiles(sources map[string]string) (*System, error) {
	var files []*ast.File
	for name, src := range sources {
		f, err := parser.Parse(name, src)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	prog, err := types.Check(files...)
	if err != nil {
		return nil, fmt.Errorf("type check: %w", err)
	}
	analysis := core.New(prog)
	plan := codegen.Build(analysis)
	spec := codegen.BuildWithOptions(analysis, codegen.Options{SpeculateRejected: true})
	cnd := codegen.BuildWithOptions(analysis, codegen.Options{ConditionalGuards: true, SpeculateRejected: true})
	return &System{Prog: prog, Analysis: analysis, Plan: plan, SpecPlan: spec, CondPlan: cnd}, nil
}

// Report returns the commutativity analysis report for a method named
// "class::method" (or a free function name), or nil if no such method
// exists.
func (s *System) Report(fullName string) *core.MethodReport {
	m := s.Prog.MethodByFullName(fullName)
	if m == nil {
		return nil
	}
	return s.Analysis.IsParallel(m)
}

// Reports returns the analysis reports for every defined method.
func (s *System) Reports() []*core.MethodReport { return s.Analysis.AnalyzeAll() }

// ParallelMethods returns the full names of the methods the analysis
// marked parallel.
func (s *System) ParallelMethods() []string {
	var out []string
	for _, m := range s.Analysis.ParallelMethods() {
		out = append(out, m.FullName())
	}
	return out
}

// RunSerial executes the program serially (the original semantics) and
// returns the interpreter for state inspection.
func (s *System) RunSerial(out io.Writer) (*interp.Interp, error) {
	return s.RunSerialContext(context.Background(), out)
}

// RunSerialEngine executes the program serially on the chosen
// execution engine (interp.EngineCompiled or interp.EngineWalk).
func (s *System) RunSerialEngine(eng interp.Engine, out io.Writer) (*interp.Interp, error) {
	return s.runSerial(context.Background(), eng, out)
}

// RunSerialEngineContext combines RunSerialEngine and RunSerialContext.
func (s *System) RunSerialEngineContext(ctx context.Context, eng interp.Engine, out io.Writer) (*interp.Interp, error) {
	return s.runSerial(ctx, eng, out)
}

// RunSerialContext executes the program serially under ctx: a deadline
// or cancellation on ctx aborts execution between statements, so a
// runaway program returns an error instead of hanging the caller.
func (s *System) RunSerialContext(ctx context.Context, out io.Writer) (*interp.Interp, error) {
	return s.runSerial(ctx, interp.EngineCompiled, out)
}

func (s *System) runSerial(ctx context.Context, eng interp.Engine, out io.Writer) (*interp.Interp, error) {
	ip := interp.NewEngine(s.Prog, out, eng)
	c := ip.NewCtx()
	if ctx != nil && ctx.Done() != nil {
		c.Interrupt = func() error {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			return nil
		}
	}
	return ip, ip.Run(c)
}

// RunParallel executes the program with the generated parallel code on
// a goroutine-backed runtime with the given number of workers.
func (s *System) RunParallel(workers int, out io.Writer) (*interp.Interp, *rt.Stats, error) {
	return s.RunParallelOpts(context.Background(), RunOptions{Workers: workers}, out)
}

// RunOptions configures hardened parallel execution.
type RunOptions struct {
	// Workers is the goroutine worker count (min 1).
	Workers int
	// Timeout, when positive, bounds the run's wall-clock time; on
	// expiry the runtime drains its pools and returns
	// context.DeadlineExceeded.
	Timeout time.Duration
	// SerialFallback re-executes a parallel region with the original
	// serial version when the region fails with an infrastructure
	// fault (see rt.Runtime.SerialFallback for the exactness caveat).
	SerialFallback bool
	// MaxSteps bounds interpreter statements across the run
	// (0: unlimited) — a deterministic guard against runaway programs.
	MaxSteps int64
	// MaxDepth bounds method-activation depth
	// (0: interp.DefaultMaxDepth).
	MaxDepth int
	// LazySpawnThreshold enables lazy task creation (see
	// rt.Runtime.LazySpawnThreshold).
	LazySpawnThreshold int
	// Sched selects the task scheduler: work-stealing deques
	// (rt.SchedStealing, the default) or the original central queue
	// (rt.SchedCentral).
	Sched rt.SchedMode
	// Engine selects the execution engine: closure-compiled bodies
	// (interp.EngineCompiled, the default) or the tree-walking
	// evaluator (interp.EngineWalk).
	Engine interp.Engine
	// Faults injects deterministic faults at the runtime's concurrency
	// boundaries (testing the failure paths).
	Faults *rt.FaultPlan
	// Speculate enables speculative parallelization of extents the
	// analysis rejected at the symbolic pair stage: the run executes
	// against System.SpecPlan, buffering such extents' writes in
	// per-task journals that are validated and committed at the join
	// barrier, or discarded and re-run serially on a violation
	// (rt.SpecOff, the default; rt.SpecAuto; rt.SpecForce).
	Speculate rt.SpecMode
	// SpeculateThreshold is the minimum analysis confidence an extent
	// needs to be speculated under rt.SpecAuto
	// (0: rt.DefaultSpecThreshold).
	SpeculateThreshold float64
	// Conditional enables guarded parallelization of extents whose pair
	// failures all synthesized guardable residual predicates: the run
	// executes against System.CondPlan, evaluating each such extent's
	// guard at region entry — true runs the parallel region, false takes
	// the serial path (rt.Stats.GuardParallel / GuardSerial count the
	// outcomes). The guard takes precedence over speculation; a
	// guard-false extent may still speculate under rt.SpecForce.
	Conditional bool
}

// RunParallelOpts executes the program on the hardened parallel
// runtime: panics inside the parallel region surface as *rt.TaskError,
// ctx cancellation and the Timeout/MaxSteps guards abort runaway
// programs, and SerialFallback degrades failed regions to serial
// re-execution.
func (s *System) RunParallelOpts(ctx context.Context, opts RunOptions, out io.Writer) (*interp.Interp, *rt.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	ip := interp.NewEngine(s.Prog, out, opts.Engine)
	plan := s.Plan
	if opts.Speculate != rt.SpecOff && s.SpecPlan != nil {
		plan = s.SpecPlan
	}
	if opts.Conditional && s.CondPlan != nil {
		// CondPlan is built with SpeculateRejected as well, so enabling
		// the guard never loses speculative coverage of extents whose
		// residuals were not guardable.
		plan = s.CondPlan
	}
	r := rt.New(ip, plan, opts.Workers)
	r.Speculate = opts.Speculate
	r.SpecThreshold = opts.SpeculateThreshold
	r.SerialFallback = opts.SerialFallback
	r.MaxSteps = opts.MaxSteps
	r.MaxDepth = opts.MaxDepth
	r.LazySpawnThreshold = opts.LazySpawnThreshold
	r.Sched = opts.Sched
	r.Faults = opts.Faults
	err := r.RunContext(ctx)
	return ip, &r.Stats, err
}

// Trace executes the program once, recording the parallel task/lock
// event structure for simulation.
func (s *System) Trace() (*tracer.Trace, error) {
	return s.TraceEngine(interp.EngineCompiled)
}

// TraceEngine records the trace using the chosen execution engine.
// Both engines charge identical cost totals between dispatcher-hook
// boundaries, so the resulting traces — and any DASH simulation of
// them — are identical; the engine parameter exists so tests can
// verify exactly that.
func (s *System) TraceEngine(eng interp.Engine) (*tracer.Trace, error) {
	ip := interp.NewEngine(s.Prog, nil, eng)
	return tracer.Collect(ip, s.Plan)
}

// Simulate runs a trace on the simulated multiprocessor.
func Simulate(tr *tracer.Trace, procs int) *simdash.Result {
	return simdash.Simulate(tr, simdash.DefaultParams(procs))
}

// SimulateWith runs a trace with explicit machine parameters.
func SimulateWith(tr *tracer.Trace, p simdash.Params) *simdash.Result {
	return simdash.Simulate(tr, p)
}
