package nativert

// Native write-buffered speculation: the generated SJ_ method versions
// route every field and element access through a per-task SpecJournal,
// mirroring internal/rt's specLog semantics loc for loc. A location is
// identified by its typed Go pointer boxed in an interface — one cell,
// one key — so a pointer to a whole array field (*[N]T) and a pointer
// to its first element (*T) stay distinct journal locations, exactly
// like the interpreter's field-slot vs array-element split. Reads of
// locations the task already wrote return the buffered value
// (read-your-own-writes); writes never touch the heap until the region
// validates and commits single-threaded at the join barrier.

import (
	"sync"
	"sync/atomic"
)

// specCell is one buffered write: a typed cell holding the pending
// value, updated in place when the task writes the same location again.
// The type-erased view gives the validator the declared-effect key ("",
// for array elements, which the enclosing object's descriptor vouches
// for) and Commit the heap application — no per-store closure, no
// per-store boxing.
type specCell[T any] struct {
	p    *T
	v    T
	desc string
}

func (c *specCell[T]) apply()          { *c.p = c.v }
func (c *specCell[T]) descKey() string { return c.desc }

type specCellI interface {
	apply()
	descKey() string
}

// SpecJournal is one speculative task's effect journal. It is
// goroutine-local while the task runs; the validator reads all
// journals single-threaded after the join barrier.
//
// The most recent write and read locations are cached: the dominant
// speculative access pattern is a method updating one field over and
// over, and the caches turn that from a map operation per access into
// an interface compare plus typed pointer work — the difference between
// walker-speed and hardware-speed speculative regions.
type SpecJournal struct {
	id     int
	reads  map[any]string
	writes map[any]specCellI

	lastW     any
	lastWCell specCellI
	lastR     any
}

// SpecLoad reads *p through the journal: a buffered write wins,
// otherwise the read is logged and the frozen pre-region heap value
// returned.
func SpecLoad[T any](j *SpecJournal, p *T, desc string) T {
	k := any(p)
	if k == j.lastW {
		return j.lastWCell.(*specCell[T]).v
	}
	if c, ok := j.writes[k]; ok {
		j.lastW, j.lastWCell = k, c
		return c.(*specCell[T]).v
	}
	if k != j.lastR {
		if _, ok := j.reads[k]; !ok {
			j.reads[k] = desc
		}
		j.lastR = k
	}
	return *p
}

// SpecStore buffers a write of v to *p. The heap is not modified;
// Commit applies the write after validation.
func SpecStore[T any](j *SpecJournal, p *T, v T, desc string) {
	k := any(p)
	if k == j.lastW {
		j.lastWCell.(*specCell[T]).v = v
		return
	}
	if c, ok := j.writes[k]; ok {
		c.(*specCell[T]).v = v
		j.lastW, j.lastWCell = k, c
		return
	}
	c := &specCell[T]{p: p, v: v, desc: desc}
	j.writes[k] = c
	j.lastW, j.lastWCell = k, c
}

// SpecTouch logs a read of *p and returns p itself, for aggregate-typed
// locations (embedded arrays and objects) that must stay addressable:
// the caller indexes or selects through the returned pointer, and the
// inner accesses journal their own element/field locations. The
// dialect never reassigns an aggregate wholesale, so there is no
// buffered value to redirect to.
func SpecTouch[T any](j *SpecJournal, p *T, desc string) *T {
	k := any(p)
	if k == j.lastW || k == j.lastR {
		return p
	}
	if _, ok := j.writes[k]; !ok {
		if _, ok := j.reads[k]; !ok {
			j.reads[k] = desc
		}
		j.lastR = k
	}
	return p
}

// SpecRegion is the state of one native speculative region: the
// per-task journals, the extent's declared transitive effects (as
// emit-time-resolved "Class.field" keys), and the first-failure latch
// that replaces the interpreter runtime's panic isolation — rtkit
// pools run tasks bare, so every speculative task body defers
// CapturePanic and the region turns any panic into an abort followed
// by the exact serial rerun.
type SpecRegion struct {
	mu       sync.Mutex
	journals []*SpecJournal
	failed   atomic.Bool

	// readOK/writeOK hold the field keys the extent's declared
	// transitive effect sets overlap. The emitter precomputes them with
	// the same effects.OverlapsDesc lattice test the interpreter's
	// validator applies at run time, enumerated over every declared
	// (class, field) pair — so membership here is equivalent to the
	// dynamic descriptor check.
	readOK  map[string]bool
	writeOK map[string]bool
}

// NewSpecRegion builds a region with the extent's declared-effect key
// sets.
func NewSpecRegion(readOK, writeOK map[string]bool) *SpecRegion {
	return &SpecRegion{readOK: readOK, writeOK: writeOK}
}

// NewJournal allocates a journal for one speculative task.
func (sr *SpecRegion) NewJournal() *SpecJournal {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	j := &SpecJournal{
		id:     len(sr.journals),
		reads:  make(map[any]string),
		writes: make(map[any]specCellI),
	}
	sr.journals = append(sr.journals, j)
	return j
}

// CapturePanic is deferred around every speculative task body (the
// region root, spawned tasks, and SpecGSS goroutines): a panic —
// structured runtime error or otherwise — marks the region failed and
// is swallowed, because the serial rerun reproduces any deterministic
// error on the caller's goroutine where the generated driver can
// recover it.
func (sr *SpecRegion) CapturePanic() {
	if r := recover(); r != nil {
		sr.failed.Store(true)
	}
}

// Failed reports whether some task already failed, so in-flight
// speculative work can stop early (the interpreter runtime's
// rt.failed fast path).
func (sr *SpecRegion) Failed() bool { return sr.failed.Load() }

// Commit validates the journals at the join barrier and, on success,
// applies every buffered write to the heap single-threaded. It returns
// false — with the heap untouched — when the region must abort: a task
// failed, two tasks' operations did not commute at run time
// (write-write or read-vs-writer overlap), or a field access fell
// outside the extent's declared transitive effects.
func (sr *SpecRegion) Commit() bool {
	if sr.failed.Load() {
		return false
	}
	if !sr.validate() {
		return false
	}
	for _, j := range sr.journals {
		for _, c := range j.writes {
			c.apply()
		}
	}
	return true
}

// validate mirrors internal/rt's specRegion.validate check for check:
// write-write conflicts across journals, then read-vs-writer
// conflicts, then declared-effect conformance of object-field accesses
// (element locations carry desc "" and are covered by the conflict
// checks alone).
func (sr *SpecRegion) validate() bool {
	writer := make(map[any]int)
	for _, j := range sr.journals {
		for l := range j.writes {
			if w, ok := writer[l]; ok && w != j.id {
				return false
			}
			writer[l] = j.id
		}
	}
	for _, j := range sr.journals {
		for l := range j.reads {
			if w, ok := writer[l]; ok && w != j.id {
				return false
			}
		}
	}
	for _, j := range sr.journals {
		for _, c := range j.writes {
			if d := c.descKey(); d != "" && !sr.writeOK[d] {
				return false
			}
		}
		for _, desc := range j.reads {
			if desc != "" && !sr.readOK[desc] && !sr.writeOK[desc] {
				return false
			}
		}
	}
	return true
}

// SpecGSS runs a planned-parallel counted loop speculatively: the same
// guided self-scheduling chunk math as GSS, with one fresh journal per
// loop goroutine (created inside the goroutine, like the interpreter's
// specLoop), a failed-region fast path at every chunk claim, and panic
// capture so a faulting iteration aborts the region instead of
// crashing the process. A goroutine executes its iterations in
// increasing order, so intra-worker sequencing matches the serial
// order and only cross-worker interference needs detection.
func SpecGSS(sr *SpecRegion, method, site string, workers int, from, to, step int64, mk func(*SpecJournal) func(int64)) {
	if workers < 1 {
		workers = 1
	}
	if step <= 0 {
		Errf("gss", method, site, "non-positive step %d", step)
	}
	total := (to - from + step - 1) / step
	if total <= 0 {
		return
	}
	var next atomic.Int64
	next.Store(from)
	n := workers
	if int64(n) < total {
		// keep n
	} else {
		n = int(total)
	}
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sr.CapturePanic()
			body := mk(sr.NewJournal())
			for {
				if sr.Failed() {
					return
				}
				start := next.Load()
				if start >= to {
					return
				}
				remaining := (to - start + step - 1) / step
				chunk := remaining / int64(workers)
				if chunk < 1 {
					chunk = 1
				}
				end := start + chunk*step
				if !next.CompareAndSwap(start, end) {
					continue
				}
				if end > to {
					end = to
				}
				for i := start; i < end; i += step {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}
