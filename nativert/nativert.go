// Package nativert is the runtime support library for programs the
// native Go backend emits (internal/codegen's emitgo). Generated
// packages are ordinary Go modules and cannot import commute's
// internal packages, so the handful of runtime pieces they need beyond
// the rtkit scheduler live here: the guided-self-scheduling loop
// driver, interpreter-compatible print formatting, and the state
// dumper the differential harness diffs against interpreter heaps.
package nativert

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

// Error is a structured runtime failure raised by generated code or by
// this support library: the failing operation plus the generated-method
// and source-site context a bare panic string cannot carry. Generated
// drivers recover it at the top of main and report it on stderr, so a
// runtime fault in a native binary identifies where in the dialect
// program it happened.
type Error struct {
	Op     string // runtime operation that failed (e.g. "gss")
	Method string // dialect method (full name) executing when it failed
	Site   string // source position of the failing construct, when known
	Msg    string // what went wrong
}

func (e *Error) Error() string {
	s := "nativert: " + e.Op
	if e.Method != "" {
		s += " in " + e.Method
	}
	if e.Site != "" {
		s += " at " + e.Site
	}
	return s + ": " + e.Msg
}

// Errf panics with a structured *Error. Generated code calls it where
// the interpreter would raise a RuntimeError; the generated driver's
// recover turns the panic into a stderr report and a non-zero exit.
func Errf(op, method, site, format string, args ...any) {
	panic(&Error{Op: op, Method: method, Site: site, Msg: fmt.Sprintf(format, args...)})
}

// GSS runs the counted loop for (i = from; i < to; i += step) across
// fresh goroutines with guided self-scheduling: each claimant takes
// remaining/workers iterations (minimum one chunk of one) via an
// atomic compare-and-swap on the shared cursor, exactly the chunking
// the interpreter runtime uses (internal/rt.parallelLoop), so native
// and interpreted runs make the same chunk claims.
//
// method and site identify the loop for failure reports (the emitter
// passes the enclosing dialect method and the loop's source position).
// mk is called once per loop goroutine and returns the iteration body;
// the emitter uses that factory to give every goroutine its own copy
// of the enclosing method's frame variables, mirroring the
// interpreter's per-worker iteration frames (NewIterFrame). step must
// be positive: the planner only parallelizes loops it proved counted
// with a positive literal step.
func GSS(method, site string, workers int, from, to, step int64, mk func() func(int64)) {
	if workers < 1 {
		workers = 1
	}
	if step <= 0 {
		Errf("gss", method, site, "non-positive step %d", step)
	}
	total := (to - from + step - 1) / step
	if total <= 0 {
		return
	}
	var next atomic.Int64
	next.Store(from)
	n := workers
	if int64(n) < total {
		// keep n
	} else {
		n = int(total)
	}
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := mk()
			for {
				start := next.Load()
				if start >= to {
					return
				}
				remaining := (to - start + step - 1) / step
				chunk := remaining / int64(workers)
				if chunk < 1 {
					chunk = 1
				}
				end := start + chunk*step
				if !next.CompareAndSwap(start, end) {
					continue
				}
				if end > to {
					end = to
				}
				for i := start; i < end; i += step {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Stdout buffering: generated programs print through here so output is
// buffered like the interpreter's (commuterun wraps os.Stdout) and so
// the driver can flush once at exit. The mutex makes stray prints from
// parallel code safe; the analysis marks print I/O, so proven-parallel
// extents never print and serial code pays an uncontended lock.
var (
	outMu sync.Mutex
	out   = bufio.NewWriter(os.Stdout)
)

// Print renders one print(...) builtin call: arguments separated by
// single spaces, newline-terminated, formatted exactly as the
// interpreter's printValue — ints via FormatInt, doubles via
// FormatFloat(v, 'g', -1, 64), TRUE/FALSE booleans, NULL for nil.
// Class-typed arguments are pre-formatted by the emitter (it knows the
// dynamic class) and arrive as strings.
func Print(args ...any) {
	outMu.Lock()
	defer outMu.Unlock()
	for i, a := range args {
		if i > 0 {
			out.WriteByte(' ')
		}
		out.WriteString(formatArg(a))
	}
	out.WriteByte('\n')
}

func formatArg(a any) string {
	switch v := a.(type) {
	case int64:
		return strconv.FormatInt(v, 10)
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	case bool:
		if v {
			return "TRUE"
		}
		return "FALSE"
	case string:
		return v
	case nil:
		return "NULL"
	}
	return fmt.Sprint(a)
}

// FlushOut flushes buffered program output; drivers defer it in main.
func FlushOut() {
	outMu.Lock()
	defer outMu.Unlock()
	out.Flush()
}

// Dumper writes a deterministic textual dump of the program's object
// graph. The emitter generates a dmp_ method per class that walks
// fields in interpreter slot order, and the differential harness
// produces the same dump from the interpreter heap — byte-equal output
// means bit-identical state. Objects get stable IDs in first-visit
// order; revisits print a ref line instead of recursing, so cyclic and
// shared structures (the Barnes-Hut tree, body arrays) terminate and
// preserve aliasing in the dump.
type Dumper struct {
	w    *bufio.Writer
	seen map[any]int
	next int
}

// NewDumper returns a dumper writing to w.
func NewDumper(w io.Writer) *Dumper {
	return &Dumper{w: bufio.NewWriter(w), seen: make(map[any]int)}
}

// Begin starts an object: it prints either "path = class#id" (first
// visit, returns true — caller recurses into fields) or
// "path = ref#id" (already dumped, returns false). key must be the
// object's identity (a pointer).
func (d *Dumper) Begin(path string, key any, class string) bool {
	if id, ok := d.seen[key]; ok {
		fmt.Fprintf(d.w, "%s = ref#%d\n", path, id)
		return false
	}
	d.next++
	d.seen[key] = d.next
	fmt.Fprintf(d.w, "%s = %s#%d\n", path, class, d.next)
	return true
}

// Int dumps an integer slot.
func (d *Dumper) Int(path string, v int64) {
	fmt.Fprintf(d.w, "%s = int %d\n", path, v)
}

// Float dumps a double slot as its exact bit pattern plus a readable
// rendering; the bit pattern is what differential tests compare.
func (d *Dumper) Float(path string, v float64) {
	fmt.Fprintf(d.w, "%s = double 0x%016x (%s)\n",
		path, math.Float64bits(v), strconv.FormatFloat(v, 'g', -1, 64))
}

// Bool dumps a boolean slot.
func (d *Dumper) Bool(path string, v bool) {
	if v {
		fmt.Fprintf(d.w, "%s = bool TRUE\n", path)
	} else {
		fmt.Fprintf(d.w, "%s = bool FALSE\n", path)
	}
}

// Null dumps a nil pointer slot.
func (d *Dumper) Null(path string) {
	fmt.Fprintf(d.w, "%s = NULL\n", path)
}

// Flush flushes the dump to the underlying writer.
func (d *Dumper) Flush() error { return d.w.Flush() }
