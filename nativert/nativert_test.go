package nativert

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestGSSCoversEveryIteration checks each loop index runs exactly once
// for a grid of shapes and worker counts.
func TestGSSCoversEveryIteration(t *testing.T) {
	cases := []struct{ from, to, step int64 }{
		{0, 100, 1}, {0, 1, 1}, {0, 0, 1}, {5, 50, 3}, {0, 7, 2}, {0, 1000, 1},
	}
	for _, workers := range []int{1, 2, 4, 9} {
		for _, c := range cases {
			var mu sync.Mutex
			counts := make(map[int64]int)
			GSS("m", "site", workers, c.from, c.to, c.step, func() func(int64) {
				return func(i int64) {
					mu.Lock()
					counts[i]++
					mu.Unlock()
				}
			})
			want := 0
			for i := c.from; i < c.to; i += c.step {
				want++
				if counts[i] != 1 {
					t.Fatalf("workers=%d %+v: index %d ran %d times", workers, c, i, counts[i])
				}
			}
			if len(counts) != want {
				t.Fatalf("workers=%d %+v: ran %d distinct indices, want %d", workers, c, len(counts), want)
			}
		}
	}
}

// TestGSSFactoryPerGoroutine checks mk is invoked once per loop
// goroutine (the emitter relies on it for frame copies).
func TestGSSFactoryPerGoroutine(t *testing.T) {
	var mu sync.Mutex
	made := 0
	GSS("m", "site", 4, 0, 1000, 1, func() func(int64) {
		mu.Lock()
		made++
		mu.Unlock()
		return func(int64) {}
	})
	if made < 1 || made > 4 {
		t.Fatalf("factory called %d times, want 1..4", made)
	}
}

func TestFormatArgMatchesInterpreter(t *testing.T) {
	for _, tc := range []struct {
		in   any
		want string
	}{
		{int64(42), "42"},
		{int64(-7), "-7"},
		{3.5, "3.5"},
		{1e21, "1e+21"},
		{0.1, "0.1"},
		{true, "TRUE"},
		{false, "FALSE"},
		{"<vector>", "<vector>"},
		{nil, "NULL"},
	} {
		if got := formatArg(tc.in); got != tc.want {
			t.Errorf("formatArg(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestDumperRefsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	d := NewDumper(&buf)
	type obj struct{ x int }
	a, b := &obj{}, &obj{}
	if !d.Begin("g.a", a, "node") {
		t.Fatal("first Begin(a) should return true")
	}
	d.Int("g.a.n", 3)
	d.Float("g.a.f", 0.5)
	d.Bool("g.a.b", true)
	d.Null("g.a.p")
	if !d.Begin("g.b", b, "node") {
		t.Fatal("first Begin(b) should return true")
	}
	if d.Begin("g.b.back", a, "node") {
		t.Fatal("revisit Begin(a) should return false")
	}
	d.Flush()
	want := strings.Join([]string{
		"g.a = node#1",
		"g.a.n = int 3",
		"g.a.f = double 0x3fe0000000000000 (0.5)",
		"g.a.b = bool TRUE",
		"g.a.p = NULL",
		"g.b = node#2",
		"g.b.back = ref#1",
		"",
	}, "\n")
	if buf.String() != want {
		t.Errorf("dump mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}
