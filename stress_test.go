package commute_test

import (
	"bytes"
	"sync"
	"testing"

	"commute"
	"commute/internal/apps/src"
	"commute/internal/interp"
)

// TestSharedSystemStress hammers one cached *System from 32 goroutines
// mixing serial execution, parallel execution, tracing, and analysis
// reads — the daemon's steady state, where many requests share one
// warm cache entry. Run under -race, it verifies the per-program
// resolution/compile caches publish safely (no torn publication) and
// that nothing in the read path mutates shared state.
func TestSharedSystemStress(t *testing.T) {
	sys, err := commute.LoadOpts("graph.mc", src.Graph, commute.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Reference output from one serial run.
	var want bytes.Buffer
	if _, err := sys.RunSerial(&want); err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	iters := 3
	if testing.Short() {
		iters = 1
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0:
					var out bytes.Buffer
					if _, err := sys.RunSerial(&out); err != nil {
						errc <- err
						continue
					}
					if out.String() != want.String() {
						t.Errorf("serial output diverged under concurrency")
					}
				case 1:
					var out bytes.Buffer
					if _, _, err := sys.RunParallel(4, &out); err != nil {
						errc <- err
						continue
					}
					if out.String() != want.String() {
						t.Errorf("parallel output diverged under concurrency")
					}
				case 2:
					if _, err := sys.TraceEngine(interp.EngineCompiled); err != nil {
						errc <- err
					}
				case 3:
					r := sys.Report("graph::visit")
					if r == nil || !r.Parallel {
						t.Errorf("analysis report changed under concurrency: %+v", r)
					}
					if len(sys.ParallelMethods()) == 0 {
						t.Errorf("parallel methods vanished under concurrency")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentFirstUse creates many interpreters for freshly loaded
// programs from many goroutines at once: the per-program resolution
// and closure-compilation pass must run exactly once per program (the
// sync.Once entry) while different programs build concurrently.
func TestConcurrentFirstUse(t *testing.T) {
	const programs = 4
	systems := make([]*commute.System, programs)
	for i := range systems {
		// Distinct sources → distinct *types.Program cache entries.
		sys, err := commute.Load("quickstart.mc", src.GraphBase+src.GraphMain(32+i, 7))
		if err != nil {
			t.Fatal(err)
		}
		systems[i] = sys
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sys := systems[g%programs]
			var out bytes.Buffer
			if _, err := sys.RunSerial(&out); err != nil {
				t.Errorf("run: %v", err)
			}
		}(g)
	}
	wg.Wait()

	// Release and re-run: the rebuild path must be identical.
	for _, sys := range systems {
		sys.Release()
		var out bytes.Buffer
		if _, err := sys.RunSerial(&out); err != nil {
			t.Errorf("run after Release: %v", err)
		}
	}
}
