// Water runs the full pipeline on the paper's second application: the
// compiler finds the five phase extents (Virtual, Loading, Forces,
// Energy, Momenta) parallel, the generated code preserves the
// simulation, and the simulated machine reproduces the paper's
// diagnosis — Water stops scaling past ~8 processors because of
// contention for the shared accumulator objects, which the explicitly
// parallel version removes by replication.
package main

import (
	"flag"
	"fmt"
	"log"

	"commute"
	"commute/internal/apps"
)

func main() {
	mols := flag.Int("mols", 125, "number of molecules")
	steps := flag.Int("steps", 2, "timesteps")
	workers := flag.Int("workers", 4, "goroutine workers for the real parallel run")
	flag.Parse()

	sys, err := apps.Water(*mols, *steps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== Water, %d molecules, %d steps ==\n\n", *mols, *steps)
	fmt.Println("analysis (Table 8 extents):")
	for _, row := range [][2]string{
		{"Virtual", "water::predictAll"},
		{"Loading", "water::loadAll"},
		{"Forces", "water::interf"},
		{"Energy", "water::poteng"},
		{"Momenta", "water::momentaAll"},
	} {
		r := sys.Report(row[1])
		status := "serial: " + r.Reason
		if r.Parallel {
			status = fmt.Sprintf("PARALLEL (extent %d, %d independent pairs, %d symbolic)",
				r.ExtentSize, r.IndependentPairs, r.SymbolicPairs)
		}
		fmt.Printf("  %-8s %-20s %s\n", row[0], row[1], status)
	}

	ipSerial, err := sys.RunSerial(nil)
	if err != nil {
		log.Fatal(err)
	}
	ipPar, stats, err := sys.RunParallel(*workers, nil)
	if err != nil {
		log.Fatal(err)
	}
	sKin, _ := sys.ReadFloat(ipSerial, "Sums.kin")
	pKin, _ := sys.ReadFloat(ipPar, "Sums.kin")
	fmt.Printf("\nreal parallel run (%d workers): %d lock acquisitions\n", *workers, stats.LockAcquires)
	fmt.Printf("  kinetic energy  serial %.9f  parallel %.9f\n", sKin, pKin)

	tr, err := sys.Trace()
	if err != nil {
		log.Fatal(err)
	}
	explicit := apps.ExplicitWater(tr, int64(*mols*20))
	replicated, err := apps.TraceWithReplication(sys)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsimulated multiprocessor (automatic vs §6.3.4 replication vs explicit):")
	autoBase := commute.Simulate(tr, 1).TimeMicros
	replBase := commute.Simulate(replicated, 1).TimeMicros
	exBase := commute.Simulate(explicit, 1).TimeMicros
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		auto := commute.Simulate(tr, p)
		repl := commute.Simulate(replicated, p)
		ex := commute.Simulate(explicit, p)
		fmt.Printf("  %2d procs: auto %6.2fx (blocked %5.1f%%)   replicated %6.2fx   explicit %6.2fx\n",
			p, autoBase/auto.TimeMicros,
			100*auto.Breakdown.Blocked/auto.Breakdown.Total(),
			replBase/repl.TimeMicros,
			exBase/ex.TimeMicros)
	}
	fmt.Println("\ncontention for the shared sums/force-bank objects flattens the automatic version")
	fmt.Println("past 8 processors; the automatic §6.3.4 accumulator replication (and the hand-")
	fmt.Println("replicated explicit version) removes it")
}
