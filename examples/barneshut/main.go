// Barneshut runs the full pipeline on the paper's headline application:
// the compiler analyzes the Barnes-Hut N-body solver, finds the force,
// velocity, position, and reset phases parallel (the tree construction
// stays serial), executes the generated parallel code on real
// goroutines, and projects the scaling on the simulated 32-processor
// machine.
package main

import (
	"flag"
	"fmt"
	"log"

	"commute"
	"commute/internal/apps"
)

func main() {
	bodies := flag.Int("bodies", 512, "number of bodies")
	steps := flag.Int("steps", 2, "timesteps")
	workers := flag.Int("workers", 4, "goroutine workers for the real parallel run")
	flag.Parse()

	sys, err := apps.BarnesHut(*bodies, *steps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== Barnes-Hut, %d bodies, %d steps ==\n\n", *bodies, *steps)
	fmt.Println("analysis:")
	for _, name := range []string{
		"nbody::computeForces", "nbody::advanceVelocities",
		"nbody::advancePositions", "nbody::resetForces",
		"nbody::buildTree", "nbody::computeCOM",
	} {
		r := sys.Report(name)
		status := "serial"
		if r.Parallel {
			status = fmt.Sprintf("PARALLEL (extent %d, %d aux sites)", r.ExtentSize, r.AuxiliaryCallSites)
		}
		fmt.Printf("  %-26s %s\n", name, status)
	}

	// Serial and parallel executions must agree (up to floating-point
	// reassociation of the commuting additions).
	ipSerial, err := sys.RunSerial(nil)
	if err != nil {
		log.Fatal(err)
	}
	ipPar, stats, err := sys.RunParallel(*workers, nil)
	if err != nil {
		log.Fatal(err)
	}
	sPhi, _ := sys.ReadFloat(ipSerial, "Nbody.bodies[0].phi")
	pPhi, _ := sys.ReadFloat(ipPar, "Nbody.bodies[0].phi")
	fmt.Printf("\nreal parallel run (%d workers): %d loop iterations, %d lock acquisitions\n",
		*workers, stats.Iterations, stats.LockAcquires)
	fmt.Printf("  body[0].phi  serial %.9f  parallel %.9f\n", sPhi, pPhi)

	// Simulated DASH scaling.
	tr, err := sys.Trace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulated multiprocessor:")
	base := commute.Simulate(tr, 1).TimeMicros
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		res := commute.Simulate(tr, p)
		fmt.Printf("  %2d procs: %8.3f s  (%.2fx)   serial idle %5.1f%%\n",
			p, res.TimeMicros/1e6, base/res.TimeMicros,
			100*res.Breakdown.SerialIdle/res.Breakdown.Total())
	}
	fmt.Println("\nthe serial tree build bounds the speedup (Amdahl), exactly as in the paper")
}
