// Quickstart demonstrates the whole pipeline on the paper's §2 running
// example: a serial graph traversal whose visit operations commute. The
// compiler proves commutativity symbolically (Table 1), marks the
// traversal parallel, and the generated parallel code produces exactly
// the serial result.
package main

import (
	"fmt"
	"log"

	"commute"
	"commute/internal/interp"
)

const source = `
const int MAXNODES = 64;

class graph {
public:
  boolean mark;
  int val;
  int sum;
  graph *left;
  graph *right;
  void visit(int p);
};

class builder {
public:
  int numnodes;
  graph *nodes[MAXNODES];
  graph *root;
  void build(int n);
  void traverse();
};

builder Builder;

void graph::visit(int p) {
  sum = sum + p;
  if (!mark) {
    mark = TRUE;
    if (left != NULL)
      left->visit(val);
    if (right != NULL)
      right->visit(val);
  }
}

void builder::build(int n) {
  int i;
  graph *g;
  numnodes = n;
  for (i = 0; i < n; i++) {
    g = new graph;
    nodes[i] = g;
    g->mark = FALSE;
    g->val = i + 1;
    g->sum = 0;
    g->left = NULL;
    g->right = NULL;
  }
  // A diamond-heavy graph with shared nodes and back edges.
  for (i = 0; i < n; i++) {
    nodes[i]->left = nodes[(i * 7 + 3) % n];
    nodes[i]->right = nodes[(i * 13 + 5) % n];
  }
  root = nodes[0];
}

void builder::traverse() {
  root->visit(0);
}

void main() {
  Builder.build(64);
  Builder.traverse();
}
`

func main() {
	sys, err := commute.Load("quickstart.mc", source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== analysis ==")
	for _, name := range []string{"builder::traverse", "graph::visit", "builder::build"} {
		r := sys.Report(name)
		if r.Parallel {
			fmt.Printf("  %-20s PARALLEL (extent %d methods, %d independent pairs, %d symbolic)\n",
				name, r.ExtentSize, r.IndependentPairs, r.SymbolicPairs)
		} else {
			fmt.Printf("  %-20s serial: %s\n", name, r.Reason)
		}
	}

	// Run the original serial program and the automatically
	// parallelized version; the integer sums must agree exactly.
	ipSerial, err := sys.RunSerial(nil)
	if err != nil {
		log.Fatal(err)
	}
	ipPar, stats, err := sys.RunParallel(8, nil)
	if err != nil {
		log.Fatal(err)
	}

	checksum := func(ip *interp.Interp) int64 {
		n, err := sys.ReadInt(ip, "Builder.numnodes")
		if err != nil {
			log.Fatal(err)
		}
		var total int64
		for i := int64(0); i < n; i++ {
			s, err := sys.ReadInt(ip, fmt.Sprintf("Builder.nodes[%d].sum", i))
			if err != nil {
				log.Fatal(err)
			}
			total += s * (i + 1)
		}
		return total
	}
	serialTotal := checksum(ipSerial)
	parTotal := checksum(ipPar)

	fmt.Println("\n== execution ==")
	fmt.Printf("  serial   checksum of node sums: %d\n", serialTotal)
	fmt.Printf("  parallel checksum of node sums: %d (8 workers, %d tasks spawned)\n",
		parTotal, stats.Tasks)
	if serialTotal == parTotal {
		fmt.Println("  identical results — the commuting operations reordered safely")
	} else {
		log.Fatal("results differ — commutativity violated!")
	}
}
