// Scatter is a user-written application (not from the paper): particles
// deposit weighted charge into a shared grid — the classic scatter
// pattern. The per-cell accumulations commute (the analysis proves it
// with the array-update rules), so the deposit loop parallelizes
// automatically. A second variant overwrites a peak-tracking field with
// `=` instead of accumulating, and the analysis correctly rejects it —
// demonstrating that commutativity analysis distinguishes semantically
// safe reorderings from unsafe ones, not just syntactic patterns.
package main

import (
	"fmt"
	"log"

	"commute"
)

const commutingVersion = `
const int NCELLS = 256;
const int NPART = 2048;

class grid {
public:
  double cells[NCELLS];
  void add(int c, double w) {
    cells[c] += w;
  }
};

class particle {
public:
  int cell;
  double charge;
  void deposit();
};

class sim {
public:
  int n;
  int seed;
  particle *parts[NPART];
  int nextRandom();
  void init(int k);
  void depositAll();
};

grid Grid;
sim Sim;

void particle::deposit() {
  Grid.add(cell, 0.75 * charge);
  Grid.add((cell + 1) % NCELLS, 0.25 * charge);
}

int sim::nextRandom() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0) seed = -seed;
  return seed;
}

void sim::init(int k) {
  particle *p;
  n = k;
  for (int i = 0; i < k; i++) {
    p = new particle;
    parts[i] = p;
    p->cell = nextRandom() % NCELLS;
    p->charge = (nextRandom() % 1000) * 0.001;
  }
}

void sim::depositAll() {
  particle *p;
  for (int i = 0; i < n; i++) {
    p = parts[i];
    p->deposit();
  }
}

void main() {
  Sim.seed = 777;
  Sim.init(NPART);
  Sim.depositAll();
}
`

// nonCommutingVersion replaces the accumulation with an overwrite of a
// "last depositor" field: order now matters, and the analysis must
// reject the parallelization.
const nonCommutingVersion = `
const int NCELLS = 256;
const int NPART = 2048;

class grid {
public:
  double cells[NCELLS];
  int last;
  void add(int c, double w) {
    cells[c] += w;
    last = c;
  }
};

class particle {
public:
  int cell;
  double charge;
  void deposit();
};

class sim {
public:
  int n;
  particle *parts[NPART];
  void depositAll();
};

grid Grid;
sim Sim;

void particle::deposit() {
  Grid.add(cell, charge);
}

void sim::depositAll() {
  particle *p;
  for (int i = 0; i < n; i++) {
    p = parts[i];
    p->deposit();
  }
}

void main() {
  Sim.depositAll();
}
`

func main() {
	sys, err := commute.Load("scatter.mc", commutingVersion)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== scatter with commuting accumulation ==")
	r := sys.Report("sim::depositAll")
	if !r.Parallel {
		log.Fatalf("depositAll should be parallel: %s", r.Reason)
	}
	fmt.Printf("  sim::depositAll PARALLEL — per-cell accumulations commute\n")
	for _, pr := range r.Pairs {
		if !pr.Independent {
			fmt.Printf("  symbolically verified: commute(%s, %s)\n",
				pr.M1.FullName(), pr.M2.FullName())
		}
	}

	ipSerial, err := sys.RunSerial(nil)
	if err != nil {
		log.Fatal(err)
	}
	ipPar, _, err := sys.RunParallel(8, nil)
	if err != nil {
		log.Fatal(err)
	}
	var sTotal, pTotal float64
	for c := 0; c < 256; c++ {
		s, _ := sys.ReadFloat(ipSerial, fmt.Sprintf("Grid.cells[%d]", c))
		p, _ := sys.ReadFloat(ipPar, fmt.Sprintf("Grid.cells[%d]", c))
		sTotal += s
		pTotal += p
	}
	fmt.Printf("  total deposited charge: serial %.6f, parallel %.6f\n", sTotal, pTotal)

	tr, err := sys.Trace()
	if err != nil {
		log.Fatal(err)
	}
	base := commute.Simulate(tr, 1).TimeMicros
	fmt.Println("  simulated scaling (all deposits funnel through one grid object):")
	for _, p := range []int{1, 4, 16, 32} {
		res := commute.Simulate(tr, p)
		fmt.Printf("    %2dp %6.2fx (blocked %4.1f%%)\n",
			p, base/res.TimeMicros, 100*res.Breakdown.Blocked/res.Breakdown.Total())
	}

	fmt.Println("\n== scatter with a last-writer field (overwrite) ==")
	sys2, err := commute.Load("scatter2.mc", nonCommutingVersion)
	if err != nil {
		log.Fatal(err)
	}
	r2 := sys2.Report("sim::depositAll")
	if r2.Parallel {
		log.Fatal("depositAll must NOT be parallel with an overwritten field")
	}
	fmt.Printf("  sim::depositAll serial — %s\n", r2.Reason)
}
