package rtkit

import (
	"sync/atomic"
	"testing"
)

// TestPoolRunsAllTasks checks that every spawned task (including
// transitively spawned ones) runs exactly once before Wait returns, in
// both scheduler modes, with and without hooks.
func TestPoolRunsAllTasks(t *testing.T) {
	for _, mode := range []Mode{Stealing, Central} {
		for _, hooked := range []bool{false, true} {
			var ran, wrapped atomic.Int64
			h := Hooks{}
			if hooked {
				h.Run = func(w *Worker, label string, body func(*Worker)) {
					wrapped.Add(1)
					body(w)
				}
			}
			p := NewPool(4, mode, h)
			const fanout = 50
			for i := 0; i < fanout; i++ {
				p.Spawn(p.External(), "parent", func(w *Worker) {
					ran.Add(1)
					w.Pool().Spawn(w, "child", func(*Worker) { ran.Add(1) })
				})
			}
			p.Wait()
			if got := ran.Load(); got != 2*fanout {
				t.Errorf("mode=%v hooked=%v: ran %d tasks, want %d", mode, hooked, got, 2*fanout)
			}
			if hooked && wrapped.Load() != 2*fanout {
				t.Errorf("mode=%v: Run hook wrapped %d tasks, want %d", mode, wrapped.Load(), 2*fanout)
			}
		}
	}
}

// TestDequeOverflowSpillsToInjector spawns far more tasks than the
// deque bound from a single task; nothing may be lost.
func TestDequeOverflowSpillsToInjector(t *testing.T) {
	var ran atomic.Int64
	p := NewPool(2, Stealing, Hooks{})
	p.Spawn(p.External(), "root", func(w *Worker) {
		for i := 0; i < 4*dequeCap; i++ {
			w.Pool().Spawn(w, "leaf", func(*Worker) { ran.Add(1) })
		}
	})
	p.Wait()
	if got := ran.Load(); got != 4*dequeCap {
		t.Fatalf("ran %d tasks, want %d", got, 4*dequeCap)
	}
}

// TestExternalSpawnAfterWaitlessIdle checks Pending bookkeeping.
func TestPending(t *testing.T) {
	p := NewPool(1, Stealing, Hooks{})
	block := make(chan struct{})
	p.Spawn(p.External(), "blocker", func(*Worker) { <-block })
	if p.Pending() < 1 {
		t.Fatalf("pending = %d, want >= 1", p.Pending())
	}
	close(block)
	p.Wait()
	if p.Pending() != 0 {
		t.Fatalf("pending after Wait = %d, want 0", p.Pending())
	}
}

// TestDrainReusesWorkers runs many task "regions" through one pool,
// draining between them — the native backend's region-wrapper pattern.
// Every region's tasks must complete before Drain returns, and the
// workers must still be alive for the next region and the final Wait.
func TestDrainReusesWorkers(t *testing.T) {
	p := NewPool(4, Stealing, Hooks{})
	var ran atomic.Int64
	const regions, perRegion = 50, 100
	for r := 0; r < regions; r++ {
		before := ran.Load()
		for i := 0; i < perRegion; i++ {
			p.Spawn(p.External(), "task", func(w *Worker) {
				// Nested spawn exercises transitive completion per drain.
				w.Pool().Spawn(w, "leaf", func(*Worker) { ran.Add(1) })
			})
		}
		p.Drain()
		if got := ran.Load() - before; got != perRegion {
			t.Fatalf("region %d: drained with %d tasks complete, want %d", r, got, perRegion)
		}
	}
	p.Wait()
	if got := ran.Load(); got != regions*perRegion {
		t.Fatalf("ran %d tasks, want %d", got, regions*perRegion)
	}
}
