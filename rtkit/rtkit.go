// Package rtkit is the region-scoped work-stealing task scheduler
// shared by the interpreter runtime (internal/rt) and the native code
// the Go backend emits (internal/codegen's emitgo). It is the same
// bounded Chase-Lev deque + injector design that previously lived in
// internal/rt/sched.go, extracted behind a small public surface so
// generated programs — which cannot import internal packages — run
// their parallel extents on the exact scheduler the interpreter uses.
//
// Policy stays with the caller: rtkit moves tasks, and the optional
// Hooks let the embedder wrap task execution (panic isolation, fault
// injection, cancellation) and count scheduler events. With zero
// hooks a task simply runs, which is what native binaries want.
package rtkit

import (
	"sync"
	"sync/atomic"
)

// Mode selects the task scheduler backing a pool.
type Mode int

const (
	// Stealing (the default) gives every worker a bounded private
	// deque: spawns push LIFO onto the spawning worker's deque, the
	// owner pops LIFO (depth-first, cache-warm), and idle workers steal
	// FIFO from victims' tails (breadth-first, large subtrees). Spawns
	// from outside the pool — the region root and GSS loop goroutines —
	// and deque overflow land in a shared injector queue.
	Stealing Mode = iota
	// Central is the original single mutex+cond task queue, kept for
	// A/B benchmarking and as a differential-testing oracle.
	Central
)

// Hooks customizes pool behavior. All fields may be nil.
type Hooks struct {
	// Run executes one dequeued task. Embedders use it for panic
	// isolation, cancellation checks, and fault injection around the
	// task body. When nil the task body runs directly (a panic then
	// crashes the process, the normal Go contract for native code).
	Run func(w *Worker, label string, body func(*Worker))
	// OnLocalPop is called when a worker pops its own deque.
	OnLocalPop func()
	// OnSteal is called when a worker steals from a victim's deque.
	OnSteal func()
}

// task is one spawned operation with a label for diagnostics. Task
// structs are recycled through taskPool: a task is taken from a queue
// exactly once, so after run returns no queue slot can hand out a live
// reference and the struct may be reused.
type task struct {
	label string
	run   func(*Worker)
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

// dequeCap bounds each worker's private deque (power of two). Overflow
// spills to the shared injector queue, so the bound costs at most a
// mutex hop under extreme fan-out — it never loses or delays tasks
// indefinitely.
const dequeCap = 256

// deque is a bounded Chase-Lev work-stealing deque. The owning worker
// pushes and pops at the bottom (LIFO); thieves steal from the top
// (FIFO) racing each other and the owner through a CAS on top. All slot
// accesses go through atomics, so the scheduler is clean under the race
// detector. The bounded-capacity check in push (b-t >= cap fails)
// guarantees a slot is never overwritten while any thief that could
// still win the CAS for it holds a stale pointer: reusing slot s
// requires top to have advanced past s, after which every stale CAS at
// s's old top value must fail.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    [dequeCap]atomic.Pointer[task]
}

// push appends t at the bottom. It reports false when the deque is full
// (caller spills to the injector).
func (d *deque) push(t *task) bool {
	b := d.bottom.Load()
	tp := d.top.Load()
	if b-tp >= dequeCap {
		return false
	}
	d.buf[b&(dequeCap-1)].Store(t)
	d.bottom.Store(b + 1)
	return true
}

// pop removes the most recently pushed task (owner only).
func (d *deque) pop() *task {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	tp := d.top.Load()
	if tp > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return nil
	}
	t := d.buf[b&(dequeCap-1)].Load()
	if tp == b {
		// Last element: race thieves via the CAS on top.
		if !d.top.CompareAndSwap(tp, tp+1) {
			t = nil // a thief won
		}
		d.bottom.Store(b + 1)
		return t
	}
	return t
}

// steal removes the oldest task (any goroutine).
func (d *deque) steal() *task {
	tp := d.top.Load()
	b := d.bottom.Load()
	if tp >= b {
		return nil
	}
	t := d.buf[tp&(dequeCap-1)].Load()
	if !d.top.CompareAndSwap(tp, tp+1) {
		return nil // lost the race; discard the stale read
	}
	return t
}

// Worker is one scheduler participant. Pool workers own a deque;
// external handles (the region root, GSS loop goroutines) have dq ==
// nil and spawn through the injector, so single-owner deque discipline
// is never violated from a foreign goroutine.
type Worker struct {
	p   *Pool
	id  int // -1: external handle
	dq  *deque
	rnd uint64 // xorshift state for victim selection
}

// Pool returns the pool this worker belongs to.
func (w *Worker) Pool() *Pool { return w.p }

// Pool is a region-scoped scheduler. In stealing mode the mutex guards
// only the injector queue and parking; the task fast path (local push,
// pop, steal) is lock-free. In central mode every task flows through
// the injector, reproducing the original single-queue behavior.
type Pool struct {
	mode     Mode
	hooks    Hooks
	workers  []*Worker
	external *Worker

	pending  atomic.Int64 // queued + running tasks
	sleepers atomic.Int64 // workers inside park()

	mu       sync.Mutex
	cond     *sync.Cond // workers park here; Wait() parks here too
	injector []*task
	done     bool
}

// NewPool starts workers goroutines and returns the running pool. Call
// Wait exactly once to drain it and shut the workers down.
func NewPool(workers int, mode Mode, h Hooks) *Pool {
	p := &Pool{mode: mode, hooks: h}
	p.cond = sync.NewCond(&p.mu)
	p.external = &Worker{p: p, id: -1}
	// The workers slice must be complete before any worker goroutine
	// starts: stealAny iterates it without synchronization.
	for i := 0; i < workers; i++ {
		w := &Worker{p: p, id: i, rnd: uint64(i)*0x9e3779b97f4a7c15 + 1}
		if p.mode == Stealing {
			w.dq = &deque{}
		}
		p.workers = append(p.workers, w)
	}
	for _, w := range p.workers {
		go p.workerLoop(w)
	}
	return p
}

// External returns the handle for spawning from outside the pool (the
// region root and GSS loop goroutines).
func (p *Pool) External() *Worker { return p.external }

// Pending reports queued+running tasks (lazy task creation).
func (p *Pool) Pending() int { return int(p.pending.Load()) }

// Spawn enqueues a task from worker w (use External() from outside the
// pool). The pending increment happens before the task is visible to
// any queue, and every spawn occurs inside a still-running task or
// before Wait() is called, so pending cannot falsely reach zero.
func (p *Pool) Spawn(w *Worker, label string, f func(*Worker)) {
	t := taskPool.Get().(*task)
	t.label, t.run = label, f
	p.pending.Add(1)
	if w != nil && w.dq != nil && w.dq.push(t) {
		// Lost-wakeup-free handoff: the push above and the sleepers
		// read below are both sequentially consistent, and a parker
		// increments sleepers before re-checking the queues — so either
		// this load observes the sleeper (and we broadcast under the
		// mutex) or the sleeper's recheck observes the push.
		if p.sleepers.Load() > 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		return
	}
	p.mu.Lock()
	p.injector = append(p.injector, t)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// popInjector takes the newest injector task (LIFO, matching the
// original central queue's depth-first order).
func (p *Pool) popInjector() *task {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.popInjectorLocked()
}

func (p *Pool) popInjectorLocked() *task {
	n := len(p.injector)
	if n == 0 {
		return nil
	}
	t := p.injector[n-1]
	p.injector[n-1] = nil
	p.injector = p.injector[:n-1]
	return t
}

// stealAny tries each other worker's deque once, starting at a random
// victim.
func (p *Pool) stealAny(w *Worker) *task {
	n := len(p.workers)
	if n <= 1 {
		return nil
	}
	w.rnd ^= w.rnd << 13
	w.rnd ^= w.rnd >> 7
	w.rnd ^= w.rnd << 17
	start := int(w.rnd % uint64(n))
	for i := 0; i < n; i++ {
		v := p.workers[(start+i)%n]
		if v == w || v.dq == nil {
			continue
		}
		if t := v.dq.steal(); t != nil {
			return t
		}
	}
	return nil
}

// findTask is the worker's acquisition order: own deque (LIFO), then
// the injector, then stealing.
func (p *Pool) findTask(w *Worker) *task {
	if w.dq != nil {
		if t := w.dq.pop(); t != nil {
			if p.hooks.OnLocalPop != nil {
				p.hooks.OnLocalPop()
			}
			return t
		}
	}
	if t := p.popInjector(); t != nil {
		return t
	}
	if t := p.stealAny(w); t != nil {
		if p.hooks.OnSteal != nil {
			p.hooks.OnSteal()
		}
		return t
	}
	return nil
}

// park blocks until a task is available or the pool shuts down (nil).
// sleepers is raised before the re-check: see Spawn for why this
// cannot miss a wakeup.
func (p *Pool) park(w *Worker) *task {
	p.sleepers.Add(1)
	defer p.sleepers.Add(-1)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if t := p.popInjectorLocked(); t != nil {
			return t
		}
		if t := p.stealAny(w); t != nil {
			if p.hooks.OnSteal != nil {
				p.hooks.OnSteal()
			}
			return t
		}
		if p.done {
			return nil
		}
		p.cond.Wait()
	}
}

func (p *Pool) workerLoop(w *Worker) {
	for {
		t := p.findTask(w)
		if t == nil {
			t = p.park(w)
			if t == nil {
				return // pool shut down
			}
		}
		if p.hooks.Run != nil {
			p.hooks.Run(w, t.label, t.run)
		} else {
			t.run(w)
		}
		t.label, t.run = "", nil
		taskPool.Put(t)
		if p.pending.Add(-1) == 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// Wait blocks until all spawned tasks (including transitively spawned
// ones) complete, then shuts the pool down.
func (p *Pool) Wait() {
	p.mu.Lock()
	for p.pending.Load() > 0 {
		p.cond.Wait()
	}
	p.done = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Drain blocks until all spawned tasks (including transitively spawned
// ones) complete, but keeps the workers parked for more work. A caller
// running many parallel regions drains between regions and pays the
// worker-goroutine startup cost once per pool instead of once per
// region; call Wait once at the end (or let process exit reap the
// workers — they hold no resources beyond their stacks while parked).
func (p *Pool) Drain() {
	p.mu.Lock()
	for p.pending.Load() > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}
