#!/usr/bin/env bash
# Server smoke: start commuted, verify liveness, one analyze+run
# round-trip against the quickstart corpus, a cache hit on the second
# identical request, then SIGTERM and a clean drain (exit 0).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18080
BIN=$(mktemp -d)/commuted

go build -o "$BIN" ./cmd/commuted
"$BIN" -addr "$ADDR" &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; }
trap cleanup EXIT

# Wait for liveness.
for _ in $(seq 1 100); do
  if curl -fs "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fs "http://$ADDR/healthz" | grep -q '"ok"'
echo "healthz ok"

# Cold analyze misses; the second identical request must be a cache hit.
curl -fs -X POST "http://$ADDR/v1/analyze" -d '{"app":"quickstart"}' | grep -q '"cache":"miss"'
curl -fs -X POST "http://$ADDR/v1/analyze" -d '{"app":"quickstart"}' | grep -q '"cache":"hit"'
curl -fs "http://$ADDR/statusz" | grep -Eq '"cache_hits":[1-9]'
echo "analyze cache hit ok"

# /statusz splits load latency by cache outcome: after a miss and a
# hit, both recorders must have samples, and the warm path must not be
# slower than the cold path (the cold load runs the whole pipeline —
# parse, analysis, codegen, warm-up — the warm load is a cache lookup).
STATUS=$(curl -fs "http://$ADDR/statusz")
echo "$STATUS" | grep -q '"load-cold"'
echo "$STATUS" | grep -q '"load-warm"'
python3 - "$STATUS" <<'EOF'
import json, sys
st = json.loads(sys.argv[1])
cold = st["endpoints"]["load-cold"]
warm = st["endpoints"]["load-warm"]
assert cold["requests"] >= 1, f"no cold load recorded: {cold}"
assert warm["requests"] >= 1, f"no warm load recorded: {warm}"
assert warm["p50_ms"] <= cold["p50_ms"], \
    f"warm load p50 {warm['p50_ms']}ms slower than cold {cold['p50_ms']}ms"
EOF
echo "cold-vs-warm load latency ok"

# Run round-trip reuses the same cached system.
RUN=$(curl -fs -X POST "http://$ADDR/v1/run" \
  -d '{"app":"quickstart","mode":"parallel","workers":4}')
echo "$RUN" | grep -q '"cache":"hit"'
echo "$RUN" | grep -q '"regions":'
echo "run round-trip ok"

# Speculation: the analysis rejects specdisjoint's fill extent but
# scores it with a fractional confidence and marks it eligible.
ANALYZE=$(curl -fs -X POST "http://$ADDR/v1/analyze" -d '{"app":"specdisjoint"}')
echo "$ANALYZE" | grep -q '"speculation_eligible":true'
echo "$ANALYZE" | grep -Eq '"confidence":0\.[0-9]+'
echo "analyze confidence ok"

# A runtime-disjoint rejected extent commits speculatively...
RUN=$(curl -fs -X POST "http://$ADDR/v1/run" \
  -d '{"app":"specdisjoint","mode":"parallel","workers":4,"speculate":"force"}')
echo "$RUN" | grep -Eq '"speculation_commits":[1-9]'
# ...and a genuinely conflicting one aborts, reruns serially, and still
# produces the serial output (no serial_fallbacks: aborts are not
# infrastructure fallbacks).
RUN=$(curl -fs -X POST "http://$ADDR/v1/run" \
  -d '{"app":"specconflict","mode":"parallel","workers":4,"speculate":"force"}')
echo "$RUN" | grep -Eq '"speculation_aborts":[1-9]'
echo "$RUN" | grep -q '"output":"2 3\\n"'
if echo "$RUN" | grep -q '"serial_fallbacks"'; then
  echo "speculation abort leaked into serial_fallbacks" >&2
  exit 1
fi
# Both counters surface in /statusz.
STATUS=$(curl -fs "http://$ADDR/statusz")
echo "$STATUS" | grep -Eq '"speculation_commits":[1-9]'
echo "$STATUS" | grep -Eq '"speculation_aborts":[1-9]'
echo "speculation ok"

# SIGTERM must drain and exit 0.
kill -TERM "$PID"
if wait "$PID"; then
  echo "clean drain ok"
else
  echo "commuted exited non-zero on SIGTERM" >&2
  exit 1
fi
trap - EXIT
echo "server smoke OK"
