#!/usr/bin/env bash
# Fleet smoke: boot three commuted replicas sharing a blob directory
# plus a commutefleet router, then assert the fleet behaviors end to
# end: deterministic fingerprint routing, warm artifact adoption on a
# cold replica (no re-analysis), and a clean reroute after SIGTERM of
# one shard.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE=127.0.0.1
R1=$BASE:18181
R2=$BASE:18182
R3=$BASE:18183
ROUTER=$BASE:18180

TMP=$(mktemp -d)
BLOBS=$TMP/artifacts
go build -o "$TMP/commuted" ./cmd/commuted
go build -o "$TMP/commutefleet" ./cmd/commutefleet

"$TMP/commuted" -addr "$R1" -blob-dir "$BLOBS" & PID1=$!
"$TMP/commuted" -addr "$R2" -blob-dir "$BLOBS" & PID2=$!
"$TMP/commuted" -addr "$R3" -blob-dir "$BLOBS" & PID3=$!
"$TMP/commutefleet" -addr "$ROUTER" \
  -shards "http://$R1,http://$R2,http://$R3" -down-ttl 30s & PIDR=$!
cleanup() { kill "$PID1" "$PID2" "$PID3" "$PIDR" 2>/dev/null || true; }
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fs "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "no healthz from $1" >&2
  return 1
}
for a in "$R1" "$R2" "$R3" "$ROUTER"; do wait_healthy "$a"; done
echo "fleet up (3 replicas + router)"

# --- Deterministic routing: the same program must land on the same
# shard every time. Five requests for one fingerprint must leave
# exactly one shard with a non-zero analyze count.
for _ in $(seq 1 5); do
  curl -fs -X POST "http://$ROUTER/v1/analyze" -d '{"app":"quickstart"}' >/dev/null
done
OWNERS=0
for a in "$R1" "$R2" "$R3"; do
  N=$(curl -fs "http://$a/statusz" | python3 -c \
    'import json,sys; print(json.load(sys.stdin)["endpoints"]["analyze"]["requests"])')
  if [ "$N" -gt 0 ]; then OWNERS=$((OWNERS+1)); OWNER_ADDR=$a; fi
done
if [ "$OWNERS" -ne 1 ]; then
  echo "deterministic routing broken: $OWNERS shards served one fingerprint" >&2
  exit 1
fi
echo "deterministic routing ok (owner $OWNER_ADDR)"

# --- Warm adoption: ask every NON-owner replica directly for the same
# program. Each must answer from the owner's published artifact —
# cache "adopt", an adoption counter tick, and zero cold loads.
for a in "$R1" "$R2" "$R3"; do
  [ "$a" = "$OWNER_ADDR" ] && continue
  RESP=$(curl -fs -X POST "http://$a/v1/analyze" -d '{"app":"quickstart"}')
  echo "$RESP" | grep -q '"cache":"adopt"' || {
    echo "replica $a did not adopt: $RESP" >&2; exit 1; }
  ST=$(curl -fs "http://$a/statusz")
  echo "$ST" | grep -Eq '"cache_adoptions":[1-9]' || {
    echo "replica $a adoption counter missing" >&2; exit 1; }
  COLD=$(echo "$ST" | python3 -c \
    'import json,sys; print(json.load(sys.stdin)["endpoints"]["load-cold"]["requests"])')
  if [ "$COLD" -ne 0 ]; then
    echo "replica $a re-analyzed instead of adopting ($COLD cold loads)" >&2
    exit 1
  fi
done
curl -fs "http://$OWNER_ADDR/statusz" | grep -Eq '"artifacts_published":[1-9]' || {
  echo "owner never published its artifact" >&2; exit 1; }
echo "warm adoption ok (no re-analysis on cold replicas)"

# --- Reroute after shard death: SIGTERM the owner; the same program
# must keep answering 200 through the router, and the router's
# counters must show the reroute.
kill -TERM "$(eval echo \$PID"$(case $OWNER_ADDR in $R1) echo 1;; $R2) echo 2;; $R3) echo 3;; esac)")"
sleep 0.5
for i in $(seq 1 5); do
  CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    "http://$ROUTER/v1/analyze" -d '{"app":"quickstart"}')
  if [ "$CODE" != "200" ]; then
    echo "request $i after shard death = $CODE, want 200" >&2
    exit 1
  fi
done
RST=$(curl -fs "http://$ROUTER/statusz")
python3 - "$OWNER_ADDR" "$RST" <<'EOF'
import json, sys
st = json.loads(sys.argv[2])
owner = "http://" + sys.argv[1]
shards = st["shards"]
dead = shards[owner]
assert dead["down"], f"dead shard not marked down: {dead}"
assert dead["rerouted"] >= 1, f"no reroutes recorded off the dead shard: {dead}"
live_requests = sum(s["requests"] for url, s in shards.items() if url != owner)
assert live_requests >= 5, f"survivors served {live_requests} requests, want >=5"
EOF
echo "reroute after SIGTERM ok"

# Router healthz stays green with two of three shards.
curl -fs "http://$ROUTER/healthz" | grep -q '"ok"'
echo "fleet smoke OK"
