#!/usr/bin/env bash
# Conditional-commutativity smoke: the analyzer must synthesize a guard
# for condhash, the guarded parallel run must be byte-identical to
# serial with the guard taking the parallel path, the guard-false
# variant must take the serial path, the native backend must agree with
# the interpreter under guards, and the daemon must surface the
# structured condition tree.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

# Analysis: commutec reports the rejected-but-guardable extents with
# their synthesized guards.
REPORT=$(go run ./cmd/commutec -app condhash -conditional)
echo "$REPORT" | grep -q 'COND .*table::ingest'
echo "$REPORT" | grep -q 'COND .*bucket::update'
echo "$REPORT" | grep -q 'ec:table.mode@global:H'
echo "analysis guards ok"

# Guard true (mode 0): parallel output byte-identical to serial, every
# region entry took the parallel path. -stats-json appends one stats
# line to stdout, so split program output from the trailing stats line.
go run ./cmd/commuterun -mode serial -app condhash -stats-json > "$OUT/serial.raw"
head -n -1 "$OUT/serial.raw" > "$OUT/serial.out"
go run ./cmd/commuterun -mode parallel -conditional on -workers 4 -app condhash \
  -stats-json > "$OUT/true.raw"
head -n -1 "$OUT/true.raw" > "$OUT/true.out"
tail -n 1 "$OUT/true.raw" > "$OUT/true.stats"
diff "$OUT/serial.out" "$OUT/true.out"
grep -Eq '"guard_parallel":[1-9]' "$OUT/true.stats"
if grep -Eq '"guard_serial":[1-9]' "$OUT/true.stats"; then
  echo "true guard took a serial path" >&2
  exit 1
fi
echo "guard-true parallel run ok"

# Guard false (mode 3): serial fallback, zero parallel regions, output
# still byte-identical to that program's serial run.
go run ./cmd/commuterun -mode serial -app condhash -condhash-mode 3 -stats-json > "$OUT/serial3.raw"
head -n -1 "$OUT/serial3.raw" > "$OUT/serial3.out"
go run ./cmd/commuterun -mode parallel -conditional on -workers 4 -app condhash -condhash-mode 3 \
  -stats-json > "$OUT/false.raw"
head -n -1 "$OUT/false.raw" > "$OUT/false.out"
tail -n 1 "$OUT/false.raw" > "$OUT/false.stats"
diff "$OUT/serial3.out" "$OUT/false.out"
grep -Eq '"guard_serial":[1-9]' "$OUT/false.stats"
# Zero-valued counters are omitted from the stats line, so a serial
# fallback shows no regions key at all.
if grep -Eq '"regions":[1-9]' "$OUT/false.stats"; then
  echo "false guard still created parallel regions" >&2
  exit 1
fi
echo "guard-false serial path ok"

# Native backend: the generated Go program evaluates the same guards
# and matches the interpreter's state dump byte for byte.
DIR="$OUT/native"
go run ./cmd/commutec -emit go -conditional -o "$DIR" -app condhash
(cd "$DIR" && go vet . && go build -o app .)
go run ./cmd/commuterun -mode serial -app condhash -dump > "$OUT/native.interp"
"$DIR/app" -mode parallel -workers 4 -dump > "$OUT/native.out"
diff "$OUT/native.interp" "$OUT/native.out"
echo "native guarded run ok"

# Daemon: /v1/analyze surfaces the structured condition and guard.
ADDR=127.0.0.1:18090
BIN="$OUT/commuted"
go build -o "$BIN" ./cmd/commuted
"$BIN" -addr "$ADDR" &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; rm -rf "$OUT"; }
trap cleanup EXIT
for _ in $(seq 1 100); do
  if curl -fs "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
ANALYZE=$(curl -fs -X POST "http://$ADDR/v1/analyze" -d '{"app":"condhash"}')
echo "$ANALYZE" | grep -q '"conditional_eligible":true'
echo "$ANALYZE" | grep -q '"condition_tree"'
echo "$ANALYZE" | grep -q '"guard_tree"'
RUN=$(curl -fs -X POST "http://$ADDR/v1/run" \
  -d '{"app":"condhash","mode":"parallel","workers":4,"conditional":true}')
echo "$RUN" | grep -Eq '"guard_parallel":[1-9]'
RUN=$(curl -fs -X POST "http://$ADDR/v1/run" \
  -d '{"app":"condhash-serial","mode":"parallel","workers":4,"conditional":true}')
echo "$RUN" | grep -Eq '"guard_serial":[1-9]'
curl -fs "http://$ADDR/statusz" | grep -Eq '"guard_parallel":[1-9]'
echo "daemon condition surface ok"

kill -TERM "$PID"
wait "$PID" || true
echo "cond smoke OK"
