#!/usr/bin/env bash
# Native-backend smoke: generate the Go package for Barnes-Hut and
# Water, vet and build each, run them natively (serial and parallel),
# and diff the final state dumps against the serial interpreter byte
# for byte (Water's parallel accumulation order varies, so its
# parallel run only has to finish cleanly). The speculative leg emits
# the journaled packages for the speculation corpus and byte-diffs both
# the commit and the abort-and-rerun paths.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

for APP in barneshut graph; do
  DIR="$OUT/$APP"
  go run ./cmd/commutec -emit go -o "$DIR" -app "$APP"
  (cd "$DIR" && go vet . && go build -o app .)
  go run ./cmd/commuterun -mode serial -app "$APP" -dump > "$OUT/$APP.interp"
  for ARGS in "-mode serial" "-mode parallel -workers 4 -sched stealing" "-mode parallel -workers 4 -sched central"; do
    # shellcheck disable=SC2086
    "$DIR/app" $ARGS -dump > "$OUT/$APP.native"
    if ! diff -q "$OUT/$APP.interp" "$OUT/$APP.native" >/dev/null; then
      echo "FAIL: $APP ($ARGS) native state diverges from the interpreter:" >&2
      diff "$OUT/$APP.interp" "$OUT/$APP.native" | head >&2
      exit 1
    fi
  done
  echo "$APP: native == interpreter (serial + both parallel schedulers)"
done

# Speculation: emit the journaled speculative packages and check that
# both the commit path (specdisjoint: disjoint at run time, region
# commits) and the abort path (specconflict: guaranteed violation,
# rollback + serial rerun) reproduce the serial interpreter state byte
# for byte, and that the -specstats counters show the expected outcome.
for APP in specdisjoint specconflict; do
  DIR="$OUT/$APP"
  go run ./cmd/commutec -emit go -speculate -o "$DIR" -app "$APP"
  (cd "$DIR" && go vet . && go build -o app .)
  go run ./cmd/commuterun -mode serial -app "$APP" -dump > "$OUT/$APP.interp"
  for ARGS in "-mode serial" "-mode parallel -workers 4 -speculate force" "-mode parallel -workers 4 -speculate auto"; do
    # shellcheck disable=SC2086
    "$DIR/app" $ARGS -specstats -dump > "$OUT/$APP.native" 2> "$OUT/$APP.stats"
    if ! diff -q "$OUT/$APP.interp" "$OUT/$APP.native" >/dev/null; then
      echo "FAIL: $APP ($ARGS) speculative native state diverges from the interpreter:" >&2
      diff "$OUT/$APP.interp" "$OUT/$APP.native" | head >&2
      exit 1
    fi
  done
  # The -speculate force leg ran last but one; re-run it for the counters.
  "$DIR/app" -mode parallel -workers 4 -speculate force -specstats > /dev/null 2> "$OUT/$APP.stats"
  case "$APP" in
    specdisjoint) WANT="spec_commits 1" ;;
    specconflict) WANT="spec_aborts 1" ;;
  esac
  if ! grep -q "$WANT" "$OUT/$APP.stats"; then
    echo "FAIL: $APP -speculate force: expected '$WANT' in counters:" >&2
    cat "$OUT/$APP.stats" >&2
    exit 1
  fi
  echo "$APP: speculative native == interpreter (serial + force + auto), counters OK"
done

# Water: serial must be bit-identical; parallel must run cleanly.
DIR="$OUT/water"
go run ./cmd/commutec -emit go -o "$DIR" -app water
(cd "$DIR" && go vet . && go build -o app .)
go run ./cmd/commuterun -mode serial -app water -dump > "$OUT/water.interp"
"$DIR/app" -mode serial -dump > "$OUT/water.native"
diff "$OUT/water.interp" "$OUT/water.native"
"$DIR/app" -mode parallel -workers 4 -sched stealing > /dev/null
echo "water: serial native == interpreter; parallel ran clean"

echo "native smoke OK"
