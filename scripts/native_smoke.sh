#!/usr/bin/env bash
# Native-backend smoke: generate the Go package for Barnes-Hut and
# Water, vet and build each, run them natively (serial and parallel),
# and diff the final state dumps against the serial interpreter byte
# for byte (Water's parallel accumulation order varies, so its
# parallel run only has to finish cleanly).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

for APP in barneshut graph; do
  DIR="$OUT/$APP"
  go run ./cmd/commutec -emit go -o "$DIR" -app "$APP"
  (cd "$DIR" && go vet . && go build -o app .)
  go run ./cmd/commuterun -mode serial -app "$APP" -dump > "$OUT/$APP.interp"
  for ARGS in "-mode serial" "-mode parallel -workers 4 -sched stealing" "-mode parallel -workers 4 -sched central"; do
    # shellcheck disable=SC2086
    "$DIR/app" $ARGS -dump > "$OUT/$APP.native"
    if ! diff -q "$OUT/$APP.interp" "$OUT/$APP.native" >/dev/null; then
      echo "FAIL: $APP ($ARGS) native state diverges from the interpreter:" >&2
      diff "$OUT/$APP.interp" "$OUT/$APP.native" | head >&2
      exit 1
    fi
  done
  echo "$APP: native == interpreter (serial + both parallel schedulers)"
done

# Water: serial must be bit-identical; parallel must run cleanly.
DIR="$OUT/water"
go run ./cmd/commutec -emit go -o "$DIR" -app water
(cd "$DIR" && go vet . && go build -o app .)
go run ./cmd/commuterun -mode serial -app water -dump > "$OUT/water.interp"
"$DIR/app" -mode serial -dump > "$OUT/water.native"
diff "$OUT/water.interp" "$OUT/water.native"
"$DIR/app" -mode parallel -workers 4 -sched stealing > /dev/null
echo "water: serial native == interpreter; parallel ran clean"

echo "native smoke OK"
