package commute

import (
	"fmt"
	"strconv"
	"strings"

	"commute/internal/frontend/types"
	"commute/internal/interp"
)

// Read navigates interpreter state by a dotted path rooted at a global
// variable, e.g. "Builder.nodes[3].sum" or "Nbody.bodies[0].pos.val[1]".
// It returns the primitive value (int64, float64, or bool) at the path.
func (s *System) Read(ip *interp.Interp, path string) (any, error) {
	segs, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("empty path")
	}
	obj, ok := ip.Globals[segs[0].name]
	if !ok {
		return nil, fmt.Errorf("unknown global %q", segs[0].name)
	}
	cur := interp.ObjectValue(obj)
	if segs[0].indexed {
		return nil, fmt.Errorf("global %q cannot be indexed", segs[0].name)
	}
	for _, seg := range segs[1:] {
		o := cur.Object()
		if o == nil {
			if cur.IsNull() {
				return nil, fmt.Errorf("nil object before field %q", seg.name)
			}
			return nil, fmt.Errorf("field %q applied to non-object %T", seg.name, cur.Any())
		}
		f := o.Class.FieldByName(seg.name)
		if f == nil {
			return nil, fmt.Errorf("class %s has no field %q", o.Class.Name, seg.name)
		}
		cur = o.Slots[ip.FieldSlot(o.Class, f.Class.Name, f.Name)]
		if seg.indexed {
			arr := cur.Array()
			if arr == nil {
				return nil, fmt.Errorf("field %q is not an array", seg.name)
			}
			if seg.index < 0 || seg.index >= len(arr.Elems) {
				return nil, fmt.Errorf("index %d out of range for %q", seg.index, seg.name)
			}
			cur = arr.Elems[seg.index]
		}
	}
	return cur.Any(), nil
}

// ReadInt reads an integer-valued path.
func (s *System) ReadInt(ip *interp.Interp, path string) (int64, error) {
	v, err := s.Read(ip, path)
	if err != nil {
		return 0, err
	}
	i, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("%s is %T, not int", path, v)
	}
	return i, nil
}

// ReadFloat reads a double-valued path.
func (s *System) ReadFloat(ip *interp.Interp, path string) (float64, error) {
	v, err := s.Read(ip, path)
	if err != nil {
		return 0, err
	}
	switch x := v.(type) {
	case float64:
		return x, nil
	case int64:
		return float64(x), nil
	}
	return 0, fmt.Errorf("%s is %T, not a number", path, v)
}

// Class returns a declared class (state-inspection helper).
func (s *System) Class(name string) *types.Class { return s.Prog.Classes[name] }

type pathSeg struct {
	name    string
	indexed bool
	index   int
}

func splitPath(path string) ([]pathSeg, error) {
	var out []pathSeg
	for _, part := range strings.Split(path, ".") {
		seg := pathSeg{name: part}
		if i := strings.IndexByte(part, '['); i >= 0 {
			if !strings.HasSuffix(part, "]") {
				return nil, fmt.Errorf("malformed path segment %q", part)
			}
			idx, err := strconv.Atoi(part[i+1 : len(part)-1])
			if err != nil {
				return nil, fmt.Errorf("malformed index in %q", part)
			}
			seg.name = part[:i]
			seg.indexed = true
			seg.index = idx
		}
		if seg.name == "" {
			return nil, fmt.Errorf("empty path segment in %q", path)
		}
		out = append(out, seg)
	}
	return out, nil
}
