package effects_test

import (
	"math/rand"
	"testing"

	"commute/internal/analysis/effects"
	"commute/internal/apps/src"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

// genDescs builds a pool of descriptors over the Barnes-Hut class
// hierarchy: plain fields, nested chains, lifted types, params, locals.
func genDescs(t *testing.T) []effects.Desc {
	t.Helper()
	f, err := parser.Parse("bh.mc", src.BarnesHut)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	node := prog.Classes["node"]
	body := prog.Classes["body"]
	cell := prog.Classes["cell"]
	leaf := prog.Classes["leaf"]
	vector := prog.Classes["vector"]
	gravsub := prog.MethodByFullName("body::gravsub")
	computeInter := prog.MethodByFullName("body::computeInter")

	return []effects.Desc{
		effects.FieldDesc(node, nil, "mass"),
		effects.FieldDesc(node, []string{"pos"}, "val"),
		effects.FieldDesc(body, []string{"acc"}, "val"),
		effects.FieldDesc(body, []string{"vel"}, "val"),
		effects.FieldDesc(body, nil, "phi"),
		effects.FieldDesc(cell, nil, "subp"),
		effects.FieldDesc(leaf, nil, "numbodies"),
		effects.FieldDesc(vector, nil, "val"),
		effects.ThisField(body, nil, "phi"),
		effects.ThisField(node, []string{"pos"}, "val"),
		effects.TypeDesc(types.Double),
		effects.TypeDesc(types.Int),
		effects.Param(computeInter, "res"),
		effects.Local(gravsub, "tmpv"),
		effects.Local(gravsub, "d"),
	}
}

// TestLeqIsPartialOrder: reflexive, transitive, and antisymmetric up to
// equal keys on the descriptor pool.
func TestLeqIsPartialOrder(t *testing.T) {
	pool := genDescs(t)
	for _, a := range pool {
		if !effects.Leq(a, a) {
			t.Errorf("≼ not reflexive at %s", a.Key())
		}
	}
	for _, a := range pool {
		for _, b := range pool {
			for _, c := range pool {
				if effects.Leq(a, b) && effects.Leq(b, c) && !effects.Leq(a, c) {
					t.Errorf("≼ not transitive: %s ≼ %s ≼ %s", a.Key(), b.Key(), c.Key())
				}
			}
		}
	}
	for _, a := range pool {
		for _, b := range pool {
			if effects.Leq(a, b) && effects.Leq(b, a) {
				// Mutual ≼ means the same storage; receiver-relative
				// descriptors and their normalization are the only
				// distinct-key pairs allowed.
				na, nb := a, b
				na.ViaThis, nb.ViaThis = false, false
				if na.Key() != nb.Key() {
					t.Errorf("≼ antisymmetry violated: %s vs %s", a.Key(), b.Key())
				}
			}
		}
	}
}

// TestExpectedOrderings: the paper's §4.2 example orderings hold.
func TestExpectedOrderings(t *testing.T) {
	pool := genDescs(t)
	byKey := map[string]effects.Desc{}
	for _, d := range pool {
		byKey[d.Key()] = d
	}
	leq := func(a, b string) bool {
		return effects.Leq(byKey[a], byKey[b])
	}
	cases := []struct {
		a, b string
		want bool
	}{
		{"body.acc.val", "vector.val", true},  // cl.q.v ≼ cl2.v via class(body.acc)=vector
		{"vector.val", "body.acc.val", false}, // not the other way
		{"body.acc.val", "body.vel.val", false},
		{"node.pos.val", "vector.val", true},
		{"body.phi", "t:double", true}, // s ≼ type(s)
		{"body.phi", "t:int", false},
		{"cell.subp", "t:int", true}, // pointer arrays lift to int storage
		{"this→body.phi", "body.phi", true},
		{"body.phi", "this→body.phi", true},
	}
	for _, tc := range cases {
		if got := leq(tc.a, tc.b); got != tc.want {
			t.Errorf("Leq(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestSetOperations: covers/overlaps consistency on random subsets.
func TestSetOperations(t *testing.T) {
	pool := genDescs(t)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		s := effects.NewSet()
		var members []effects.Desc
		for _, d := range pool {
			if r.Intn(2) == 0 {
				s.Add(d)
				members = append(members, d)
			}
		}
		if s.Len() != len(uniqueKeys(members)) {
			t.Fatalf("set length %d != unique members %d", s.Len(), len(uniqueKeys(members)))
		}
		for _, d := range members {
			if !s.Has(d) || !s.Covers(d) {
				t.Fatalf("member %s not found in its own set", d.Key())
			}
		}
		// CoversAll is reflexive; a clone equals the original.
		if !s.CoversAll(s) {
			t.Fatal("CoversAll not reflexive")
		}
		c := s.Clone()
		if c.Key() != s.Key() {
			t.Fatal("clone differs from original")
		}
		// OverlapsSet is symmetric.
		o := effects.NewSet()
		for _, d := range pool {
			if r.Intn(3) == 0 {
				o.Add(d)
			}
		}
		if s.OverlapsSet(o) != o.OverlapsSet(s) {
			t.Fatal("OverlapsSet not symmetric")
		}
	}
}

func uniqueKeys(ds []effects.Desc) map[string]bool {
	out := map[string]bool{}
	for _, d := range ds {
		out[d.Key()] = true
	}
	return out
}

// TestLiftIdempotent: lift(lift(s)) == lift(s).
func TestLiftIdempotent(t *testing.T) {
	for _, d := range genDescs(t) {
		once := d.Lift()
		twice := once.Lift()
		if once.Key() != twice.Key() {
			t.Errorf("lift not idempotent at %s: %s vs %s", d.Key(), once.Key(), twice.Key())
		}
	}
}
