// Package effects implements the data-usage analysis of §4.2–§4.3 of
// Rinard & Diniz 1996: storage descriptors with their partial order ≼,
// the per-method read/write/dep functions, and the transitiveEffects
// abstract interpretation over (method, binding) pairs.
package effects

import (
	"sort"
	"strings"

	"commute/internal/frontend/types"
)

// Space discriminates the components of the storage descriptor domain
// S = P ∪ L ∪ T ∪ CL×V ∪ CL×Q×V.
type Space int

// Descriptor spaces.
const (
	DescParam Space = iota // formal reference parameter of a method
	DescLocal              // local variable of a method
	DescType               // a primitive type (the lift of params/locals)
	DescField              // CL×V or CL×Q×V: (possibly nested) instance variable
)

// Desc is one storage descriptor. Field descriptors use the *declaring*
// class of the outermost path element as CL, matching the paper's
// presentation (e.g. the receiver access pos.val in a body method is
// node.pos.val because pos is declared in class node).
//
// A field descriptor with ViaThis set is *receiver-relative*: it denotes
// storage reached from the receiver of the (not yet bound) method that
// produced it. Binding substitution (Subst) clears the flag, either by
// normalizing to the declaring class (root binding — the memory is the
// same, the paper's presentation) or by prefixing the receiver's
// nested-object path.
type Desc struct {
	Space Space

	// DescParam / DescLocal
	Method *types.Method
	Name   string

	// DescType
	Basic types.Basic

	// DescField: Class is CL; Path is q (possibly empty); Field is v.
	Class   *types.Class
	Path    []string
	Field   string
	ViaThis bool
}

// Param returns a formal-reference-parameter descriptor.
func Param(m *types.Method, name string) Desc {
	return Desc{Space: DescParam, Method: m, Name: name}
}

// Local returns a local-variable descriptor.
func Local(m *types.Method, name string) Desc {
	return Desc{Space: DescLocal, Method: m, Name: name}
}

// TypeDesc returns the primitive-type descriptor for b.
func TypeDesc(b types.Basic) Desc {
	return Desc{Space: DescType, Basic: b}
}

// FieldDesc returns a CL×V or CL×Q×V descriptor.
func FieldDesc(cl *types.Class, path []string, field string) Desc {
	return Desc{Space: DescField, Class: cl, Path: path, Field: field}
}

// ThisField returns a receiver-relative field descriptor.
func ThisField(cl *types.Class, path []string, field string) Desc {
	return Desc{Space: DescField, Class: cl, Path: path, Field: field, ViaThis: true}
}

// Key returns a canonical string identity for the descriptor, suitable
// for map keys and deterministic ordering.
func (d Desc) Key() string {
	switch d.Space {
	case DescParam:
		return "p:" + d.Method.FullName() + ":" + d.Name
	case DescLocal:
		return "l:" + d.Method.FullName() + ":" + d.Name
	case DescType:
		return "t:" + d.Basic.String()
	default:
		var sb strings.Builder
		if d.ViaThis {
			sb.WriteString("this→")
		}
		sb.WriteString(d.Class.Name)
		for _, n := range d.Path {
			sb.WriteByte('.')
			sb.WriteString(n)
		}
		sb.WriteByte('.')
		sb.WriteString(d.Field)
		return sb.String()
	}
}

func (d Desc) String() string { return d.Key() }

// fieldType resolves the primitive type of a field descriptor by
// walking the nested-object path.
func (d Desc) fieldType() (types.Basic, bool) {
	cl := d.Class
	for _, seg := range d.Path {
		f := cl.FieldByName(seg)
		if f == nil {
			return 0, false
		}
		obj, ok := f.Type.(types.Object)
		if !ok {
			return 0, false
		}
		cl = obj.Class
	}
	f := cl.FieldByName(d.Field)
	if f == nil {
		return 0, false
	}
	switch ft := f.Type.(type) {
	case types.Basic:
		return ft, true
	case types.Array:
		if b, ok := ft.Elem.(types.Basic); ok {
			return b, true
		}
		if _, isPtr := ft.Elem.(types.Pointer); isPtr {
			return types.Int, true
		}
	case types.Pointer:
		// Pointers are modelled as int-sized primitive storage for the
		// purposes of the coarse T component.
		return types.Int, true
	}
	return 0, false
}

// PrimType returns the primitive type of the storage the descriptor
// denotes (the paper's `type` function), or ok=false when it is not
// primitive-typed.
func (d Desc) PrimType() (types.Basic, bool) {
	switch d.Space {
	case DescType:
		return d.Basic, true
	case DescField:
		return d.fieldType()
	case DescParam:
		p := d.Method.ParamByName(d.Name)
		if p == nil {
			return 0, false
		}
		switch pt := p.Type.(type) {
		case types.PrimPointer:
			return pt.Elem, true
		case types.Array:
			if b, ok := pt.Elem.(types.Basic); ok {
				return b, true
			}
		case types.Basic:
			return pt, true
		}
		return 0, false
	case DescLocal:
		t, ok := d.Method.Locals[d.Name]
		if !ok {
			return 0, false
		}
		switch lt := t.(type) {
		case types.Basic:
			return lt, true
		case types.Array:
			if b, ok := lt.Elem.(types.Basic); ok {
				return b, true
			}
		case types.Pointer:
			return types.Int, true
		}
	}
	return 0, false
}

// Lift implements the paper's lift function: local variables and
// parameters are translated to their primitive types; other descriptors
// are unchanged.
func (d Desc) Lift() Desc {
	if d.Space == DescParam || d.Space == DescLocal {
		if b, ok := d.PrimType(); ok {
			return TypeDesc(b)
		}
		return TypeDesc(types.Int)
	}
	return d
}

// pathClass resolves class(cl.q): the class of the object reached by
// following the nested-object path from cl. ok=false when the path does
// not resolve.
func pathClass(cl *types.Class, path []string) (*types.Class, bool) {
	cur := cl
	for _, seg := range path {
		f := cur.FieldByName(seg)
		if f == nil {
			return nil, false
		}
		obj, ok := f.Type.(types.Object)
		if !ok {
			return nil, false
		}
		cur = obj.Class
	}
	return cur, true
}

// Leq implements the partial order s1 ≼ s2: the memory represented by
// s1 is a subset of the memory represented by s2. Per §4.2:
//
//	cl1.v ≼ cl2.v                 if cl1 inherits from cl2 or cl1 = cl2
//	cl1.q1.v ≼ cl2.v              if class(cl1.q1) inherits from / = cl2
//	cl1.q1.q2.v ≼ cl2.q2.v        if class(cl1.q1) inherits from / = cl2
//	s1 ≼ t                        if type(s1) = t (t a primitive type)
func Leq(s1, s2 Desc) bool {
	if s1.Space == DescType {
		return s2.Space == DescType && s1.Basic == s2.Basic
	}
	if s2.Space == DescType {
		b, ok := s1.PrimType()
		return ok && b == s2.Basic
	}
	if s1.Space != s2.Space {
		return false
	}
	switch s1.Space {
	case DescParam, DescLocal:
		return s1.Method == s2.Method && s1.Name == s2.Name
	case DescField:
		// Receiver-relative descriptors denote the same storage as
		// their declaring-class normalization, so the flag does not
		// affect the ordering.
		if s1.Field != s2.Field {
			return false
		}
		// s2's path must be a suffix of s1's path.
		if len(s2.Path) > len(s1.Path) {
			return false
		}
		off := len(s1.Path) - len(s2.Path)
		for i, seg := range s2.Path {
			if s1.Path[off+i] != seg {
				return false
			}
		}
		// The class reached by the non-suffix prefix of s1 must inherit
		// from (or be) s2's class.
		c1, ok := pathClass(s1.Class, s1.Path[:off])
		if !ok {
			return false
		}
		return c1.InheritsFrom(s2.Class)
	}
	return false
}

// Overlaps reports whether two descriptors may denote overlapping
// memory: s1 ≼ s2 or s2 ≼ s1.
func Overlaps(s1, s2 Desc) bool { return Leq(s1, s2) || Leq(s2, s1) }

// ---------------------------------------------------------------------
// Descriptor sets

// Set is a set of storage descriptors keyed canonically.
type Set struct {
	m map[string]Desc
}

// NewSet returns a set containing the given descriptors.
func NewSet(ds ...Desc) *Set {
	s := &Set{m: make(map[string]Desc, len(ds))}
	for _, d := range ds {
		s.Add(d)
	}
	return s
}

// Add inserts d; it reports whether the set changed.
func (s *Set) Add(d Desc) bool {
	k := d.Key()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = d
	return true
}

// AddAll inserts every descriptor of o; it reports whether the set changed.
func (s *Set) AddAll(o *Set) bool {
	changed := false
	for _, d := range o.m {
		if s.Add(d) {
			changed = true
		}
	}
	return changed
}

// Has reports exact membership (by canonical key).
func (s *Set) Has(d Desc) bool {
	_, ok := s.m[d.Key()]
	return ok
}

// Len returns the number of descriptors.
func (s *Set) Len() int { return len(s.m) }

// Slice returns the descriptors sorted by canonical key.
func (s *Set) Slice() []Desc {
	out := make([]Desc, 0, len(s.m))
	for _, d := range s.m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Clone returns a copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet()
	c.AddAll(s)
	return c
}

// Covers reports whether some element e of the set satisfies d ≼ e.
func (s *Set) Covers(d Desc) bool {
	if s.Has(d) {
		return true
	}
	for _, e := range s.m {
		if Leq(d, e) {
			return true
		}
	}
	return false
}

// CoversAll reports whether every element of o is covered by s.
func (s *Set) CoversAll(o *Set) bool {
	for _, d := range o.m {
		if !s.Covers(d) {
			return false
		}
	}
	return true
}

// OverlapsSet reports whether any element of s overlaps any element of o.
func (s *Set) OverlapsSet(o *Set) bool {
	for _, a := range s.m {
		for _, b := range o.m {
			if Overlaps(a, b) {
				return true
			}
		}
	}
	return false
}

// OverlapsDesc reports whether any element of s overlaps d.
func (s *Set) OverlapsDesc(d Desc) bool {
	for _, a := range s.m {
		if Overlaps(a, d) {
			return true
		}
	}
	return false
}

// Filter returns the descriptors satisfying keep.
func (s *Set) Filter(keep func(Desc) bool) *Set {
	out := NewSet()
	for _, d := range s.m {
		if keep(d) {
			out.Add(d)
		}
	}
	return out
}

// Map returns the set obtained by applying f to every element.
func (s *Set) Map(f func(Desc) Desc) *Set {
	out := NewSet()
	for _, d := range s.m {
		out.Add(f(d))
	}
	return out
}

// Key returns a canonical string for the whole set (sorted keys).
func (s *Set) Key() string {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

func (s *Set) String() string {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return "{" + strings.Join(keys, ", ") + "}"
}
