package effects_test

import (
	"testing"

	"commute/internal/analysis/effects"
	"commute/internal/apps/src"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

func analyzeBH(t *testing.T) (*types.Program, *effects.Analyzer) {
	t.Helper()
	f, err := parser.Parse("barneshut.mc", src.BarnesHut)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog, effects.NewAnalyzer(prog)
}

func method(t *testing.T, p *types.Program, full string) *types.Method {
	t.Helper()
	m := p.MethodByFullName(full)
	if m == nil {
		t.Fatalf("method %s not found", full)
	}
	return m
}

func keys(s *effects.Set) map[string]bool {
	out := make(map[string]bool)
	for _, d := range s.Slice() {
		out[d.Key()] = true
	}
	return out
}

func wantSet(t *testing.T, label string, got *effects.Set, want ...string) {
	t.Helper()
	g := keys(got)
	for _, w := range want {
		if !g[w] {
			t.Errorf("%s: missing %s (got %s)", label, w, got)
		}
	}
	if len(g) != len(want) {
		t.Errorf("%s: got %d descriptors %s, want %d %v", label, len(g), got, len(want), want)
	}
}

// TestFigure6LocalEffects checks the paper's Figure 6 read/write sets
// (local, pre-substitution; receiver-relative descriptors appear with
// the this→ marker).
func TestFigure6LocalEffects(t *testing.T) {
	p, a := analyzeBH(t)

	vecAdd := method(t, p, "vector::vecAdd")
	mi := a.Info(vecAdd)
	wantSet(t, "read(vecAdd)", mi.Reads, "this→vector.val", "p:vector::vecAdd:v")
	wantSet(t, "write(vecAdd)", mi.Writes, "this→vector.val")

	ci := method(t, p, "body::computeInter")
	mi = a.Info(ci)
	wantSet(t, "read(computeInter)", mi.Reads,
		"node.mass", "node.pos.val", "this→node.pos.val", "parms.eps")
	wantSet(t, "write(computeInter)", mi.Writes, "p:body::computeInter:res")

	sd := method(t, p, "body::subdivp")
	mi = a.Info(sd)
	wantSet(t, "read(subdivp)", mi.Reads,
		"node.pos.val", "this→node.pos.val", "parms.epsSq", "parms.tolSq")
	if mi.Writes.Len() != 0 {
		t.Errorf("write(subdivp) = %s, want empty", mi.Writes)
	}

	gs := method(t, p, "body::gravsub")
	mi = a.Info(gs)
	wantSet(t, "read(gravsub)", mi.Reads, "this→body.phi")
	wantSet(t, "write(gravsub)", mi.Writes, "this→body.phi")

	oc := method(t, p, "body::openCell")
	mi = a.Info(oc)
	wantSet(t, "read(openCell)", mi.Reads, "cell.subp")
	if mi.Writes.Len() != 0 {
		t.Errorf("write(openCell) = %s, want empty", mi.Writes)
	}

	ol := method(t, p, "body::openLeaf")
	mi = a.Info(ol)
	wantSet(t, "read(openLeaf)", mi.Reads, "leaf.numbodies", "leaf.bodyp")
	if mi.Writes.Len() != 0 {
		t.Errorf("write(openLeaf) = %s, want empty", mi.Writes)
	}

	ws := method(t, p, "body::walksub")
	mi = a.Info(ws)
	if mi.Reads.Len() != 0 || mi.Writes.Len() != 0 {
		t.Errorf("walksub effects = %s / %s, want empty", mi.Reads, mi.Writes)
	}
}

// TestFigure7TransitiveEffects checks the paper's Figure 7 transitive
// read/write sets.
func TestFigure7TransitiveEffects(t *testing.T) {
	p, a := analyzeBH(t)

	te := a.TransitiveEffects(method(t, p, "body::computeInter"))
	wantSet(t, "TE.rd(computeInter)", te.Reads, "node.mass", "node.pos.val", "parms.eps")
	if te.Writes.Len() != 1 || !te.Writes.Has(effects.Param(method(t, p, "body::computeInter"), "res")) {
		t.Errorf("TE.wr(computeInter) = %s", te.Writes)
	}

	te = a.TransitiveEffects(method(t, p, "body::gravsub"))
	wantSet(t, "TE.rd(gravsub)", te.Reads,
		"node.mass", "node.pos.val", "body.phi", "body.acc.val", "parms.eps")
	wantSet(t, "TE.wr(gravsub)", te.Writes, "body.phi", "body.acc.val")

	te = a.TransitiveEffects(method(t, p, "body::openLeaf"))
	wantSet(t, "TE.rd(openLeaf)", te.Reads,
		"node.mass", "node.pos.val", "body.phi", "body.acc.val", "parms.eps",
		"leaf.numbodies", "leaf.bodyp")
	wantSet(t, "TE.wr(openLeaf)", te.Writes, "body.phi", "body.acc.val")

	te = a.TransitiveEffects(method(t, p, "body::walksub"))
	wantSet(t, "TE.rd(walksub)", te.Reads,
		"node.mass", "node.pos.val", "body.phi", "body.acc.val",
		"leaf.numbodies", "leaf.bodyp", "cell.subp",
		"parms.eps", "parms.epsSq", "parms.tolSq")
	wantSet(t, "TE.wr(walksub)", te.Writes, "body.phi", "body.acc.val")

	te = a.TransitiveEffects(method(t, p, "nbody::computeForces"))
	wantSet(t, "TE.rd(computeForces)", te.Reads,
		"node.mass", "node.pos.val", "body.phi", "body.acc.val",
		"leaf.numbodies", "leaf.bodyp", "cell.subp",
		"parms.eps", "parms.epsSq", "parms.tolSq",
		"nbody.numbodies", "nbody.bodies", "nbody.BH_root", "nbody.size")
	wantSet(t, "TE.wr(computeForces)", te.Writes, "body.phi", "body.acc.val")
}

// TestFigure6DepSets checks the dep function values of Figure 6.
func TestFigure6DepSets(t *testing.T) {
	p, a := analyzeBH(t)

	// Call-site lookup helper: the i-th call site within a method whose
	// callee has the given name.
	siteOf := func(caller, callee string) *types.CallSite {
		m := method(t, p, caller)
		for _, cs := range m.CallSites {
			if cs.Callee.Name == callee {
				return cs
			}
		}
		t.Fatalf("no call to %s in %s", callee, caller)
		return nil
	}

	// dep(1): computeInter call in gravsub.
	d := a.Dep(siteOf("body::gravsub", "computeInter"))
	if d.Len() != 0 {
		t.Errorf("dep(gravsub→computeInter) = %s, want empty", d)
	}

	// dep(2): acc.vecAdd(tmpv) in gravsub — computeInter's reads.
	d = effects.Identity(method(t, p, "body::gravsub")).SubstSet(a.Dep(siteOf("body::gravsub", "vecAdd")))
	wantSet(t, "dep(gravsub→vecAdd)", d, "node.mass", "node.pos.val", "parms.eps")

	// dep(3): walksub call in openCell — guarded by subp lookup.
	d = effects.Identity(method(t, p, "body::openCell")).SubstSet(a.Dep(siteOf("body::openCell", "walksub")))
	wantSet(t, "dep(openCell→walksub)", d, "cell.subp")

	// dep(4): gravsub call in openLeaf.
	d = effects.Identity(method(t, p, "body::openLeaf")).SubstSet(a.Dep(siteOf("body::openLeaf", "gravsub")))
	wantSet(t, "dep(openLeaf→gravsub)", d, "leaf.numbodies", "leaf.bodyp")

	// dep(5): subdivp call in walksub — unguarded, parameter args only.
	d = a.Dep(siteOf("body::walksub", "subdivp"))
	if d.Len() != 0 {
		t.Errorf("dep(walksub→subdivp) = %s, want empty", d)
	}

	// dep(6): openCell call in walksub — guarded by subdivp's result.
	d = effects.Identity(method(t, p, "body::walksub")).SubstSet(a.Dep(siteOf("body::walksub", "openCell")))
	wantSet(t, "dep(walksub→openCell)", d, "node.pos.val", "parms.epsSq", "parms.tolSq")

	// dep(7) and dep(8) match dep(6).
	d = effects.Identity(method(t, p, "body::walksub")).SubstSet(a.Dep(siteOf("body::walksub", "openLeaf")))
	wantSet(t, "dep(walksub→openLeaf)", d, "node.pos.val", "parms.epsSq", "parms.tolSq")
	d = effects.Identity(method(t, p, "body::walksub")).SubstSet(a.Dep(siteOf("body::walksub", "gravsub")))
	wantSet(t, "dep(walksub→gravsub)", d, "node.pos.val", "parms.epsSq", "parms.tolSq")
}

func TestPurityFlags(t *testing.T) {
	p, a := analyzeBH(t)
	if a.MayCreateObject(method(t, p, "nbody::computeForces")) {
		t.Error("computeForces should not create objects")
	}
	if !a.MayCreateObject(method(t, p, "nbody::buildTree")) {
		t.Error("buildTree creates objects")
	}
	if !a.MayCreateObject(method(t, p, "nbody::step")) {
		t.Error("step transitively creates objects")
	}
	if a.MayPerformIO(method(t, p, "nbody::step")) {
		t.Error("step performs no IO")
	}
}
