package effects

import (
	"commute/internal/frontend/types"
)

// Analyzer caches the per-method local analyses and the transitive
// closures over the call graph for one checked program.
type Analyzer struct {
	Prog *types.Program

	info    map[*types.Method]*MethodInfo
	te      map[*types.Method]*TE
	dep     map[*types.Method]bool // dep pass done
	creates map[*types.Method]bool
	io      map[*types.Method]bool
}

// TE is a transitive effects result: the storage the computation rooted
// at a method may read and write (the paper's transitiveEffects, Fig 5).
// Local variables have been subtracted; remaining parameter descriptors
// belong to the root method.
type TE struct {
	Reads  *Set
	Writes *Set
}

// NewAnalyzer returns an analyzer for prog.
func NewAnalyzer(prog *types.Program) *Analyzer {
	return &Analyzer{
		Prog:    prog,
		info:    make(map[*types.Method]*MethodInfo),
		te:      make(map[*types.Method]*TE),
		dep:     make(map[*types.Method]bool),
		creates: make(map[*types.Method]bool),
		io:      make(map[*types.Method]bool),
	}
}

// Info returns the cached local analysis of m.
func (a *Analyzer) Info(m *types.Method) *MethodInfo {
	if mi, ok := a.info[m]; ok {
		return mi
	}
	mi := a.localAnalysis(m)
	a.info[m] = mi
	return mi
}

// TransitiveEffects computes the paper's transitiveEffects(m): an
// abstract interpretation over (method, binding) pairs starting from
// the identity binding, accumulating substituted read and write sets.
// Local-variable descriptors are subtracted from the final result.
func (a *Analyzer) TransitiveEffects(m *types.Method) *TE {
	if te, ok := a.te[m]; ok {
		return te
	}
	rd, wr := NewSet(), NewSet()

	type item struct {
		m *types.Method
		b Binding
	}
	visited := make(map[string]bool)
	key := func(it item) string { return it.m.FullName() + "#" + it.b.Key() }
	work := []item{{m: m, b: Identity(m)}}
	visited[key(work[0])] = true

	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		mi := a.Info(it.m)
		rd.AddAll(it.b.SubstSet(mi.Reads))
		wr.AddAll(it.b.SubstSet(mi.Writes))
		for _, cc := range mi.Calls {
			next := item{m: cc.Site.Callee, b: a.Bind(it.m, cc, it.b)}
			k := key(next)
			if !visited[k] {
				visited[k] = true
				work = append(work, next)
			}
		}
	}

	notLocal := func(d Desc) bool { return d.Space != DescLocal }
	te := &TE{Reads: rd.Filter(notLocal), Writes: wr.Filter(notLocal)}
	a.te[m] = te
	return te
}

// MayCreateObject reports whether the computation rooted at m may
// allocate a new object.
func (a *Analyzer) MayCreateObject(m *types.Method) bool {
	return a.transitiveFlag(m, a.creates, func(mi *MethodInfo) bool { return mi.CreatesObject })
}

// MayPerformIO reports whether the computation rooted at m may perform
// input or output.
func (a *Analyzer) MayPerformIO(m *types.Method) bool {
	return a.transitiveFlag(m, a.io, func(mi *MethodInfo) bool { return mi.PerformsIO })
}

func (a *Analyzer) transitiveFlag(m *types.Method, cache map[*types.Method]bool, local func(*MethodInfo) bool) bool {
	if v, ok := cache[m]; ok {
		return v
	}
	visited := make(map[*types.Method]bool)
	var visit func(x *types.Method) bool
	visit = func(x *types.Method) bool {
		if visited[x] {
			return false
		}
		visited[x] = true
		mi := a.Info(x)
		if local(mi) {
			return true
		}
		for _, cc := range mi.Calls {
			if visit(cc.Site.Callee) {
				return true
			}
		}
		return false
	}
	v := visit(m)
	cache[m] = v
	return v
}

// Dep returns the dep set of a call site (§4.2): the storage the caller
// reads to compute the values flowing into the call — the receiver, the
// arguments (including the current contents of reference actuals), and
// the control conditions governing whether the call executes. The
// result is in the caller's frame (receiver-relative descriptors have
// not been substituted).
func (a *Analyzer) Dep(site *types.CallSite) *Set {
	m := site.Caller
	if m == nil {
		return NewSet()
	}
	if !a.dep[m] {
		a.depAnalysis(m)
		a.dep[m] = true
	}
	if d, ok := a.Info(m).Dep[site.ID]; ok {
		return d
	}
	return NewSet()
}
