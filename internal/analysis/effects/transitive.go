package effects

import (
	"commute/internal/frontend/types"
)

// Analyzer caches the per-method local analyses and the transitive
// closures over the call graph for one checked program.
//
// Concurrency contract: an Analyzer is safe for concurrent use by any
// number of goroutines. Each memo (local info, transitive effects,
// dep sets, purity flags) publishes per method through a sync.Once
// cell, so every result is computed exactly once and is immutable
// after publication — callers must treat returned *MethodInfo, *TE,
// *Set and dep maps as read-only (clone before mutating, as the
// binding substitutions already do). The memo dependency graph
// (dep → transitive effects → local info) is acyclic, so concurrent
// first computations cannot deadlock.
type Analyzer struct {
	Prog *types.Program

	info    memoTable[*MethodInfo]
	te      memoTable[*TE]
	deps    memoTable[map[int]*Set] // call-site ID → dep set, per caller
	creates memoTable[bool]
	io      memoTable[bool]
}

// TE is a transitive effects result: the storage the computation rooted
// at a method may read and write (the paper's transitiveEffects, Fig 5).
// Local variables have been subtracted; remaining parameter descriptors
// belong to the root method.
type TE struct {
	Reads  *Set
	Writes *Set
}

// NewAnalyzer returns an analyzer for prog.
func NewAnalyzer(prog *types.Program) *Analyzer {
	return &Analyzer{Prog: prog}
}

// Info returns the cached local analysis of m. The result is computed
// once and immutable; see the Analyzer concurrency contract.
func (a *Analyzer) Info(m *types.Method) *MethodInfo {
	return a.info.get(m, func() *MethodInfo { return a.localAnalysis(m) })
}

// TransitiveEffects computes the paper's transitiveEffects(m): an
// abstract interpretation over (method, binding) pairs starting from
// the identity binding, accumulating substituted read and write sets.
// Local-variable descriptors are subtracted from the final result.
func (a *Analyzer) TransitiveEffects(m *types.Method) *TE {
	return a.te.get(m, func() *TE { return a.transitiveEffects(m) })
}

func (a *Analyzer) transitiveEffects(m *types.Method) *TE {
	rd, wr := NewSet(), NewSet()

	type item struct {
		m *types.Method
		b Binding
	}
	visited := make(map[string]bool)
	key := func(it item) string { return it.m.FullName() + "#" + it.b.Key() }
	work := []item{{m: m, b: Identity(m)}}
	visited[key(work[0])] = true

	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		mi := a.Info(it.m)
		rd.AddAll(it.b.SubstSet(mi.Reads))
		wr.AddAll(it.b.SubstSet(mi.Writes))
		for _, cc := range mi.Calls {
			next := item{m: cc.Site.Callee, b: a.Bind(it.m, cc, it.b)}
			k := key(next)
			if !visited[k] {
				visited[k] = true
				work = append(work, next)
			}
		}
	}

	notLocal := func(d Desc) bool { return d.Space != DescLocal }
	return &TE{Reads: rd.Filter(notLocal), Writes: wr.Filter(notLocal)}
}

// MayCreateObject reports whether the computation rooted at m may
// allocate a new object.
func (a *Analyzer) MayCreateObject(m *types.Method) bool {
	return a.transitiveFlag(m, &a.creates, func(mi *MethodInfo) bool { return mi.CreatesObject })
}

// MayPerformIO reports whether the computation rooted at m may perform
// input or output.
func (a *Analyzer) MayPerformIO(m *types.Method) bool {
	return a.transitiveFlag(m, &a.io, func(mi *MethodInfo) bool { return mi.PerformsIO })
}

func (a *Analyzer) transitiveFlag(m *types.Method, cache *memoTable[bool], local func(*MethodInfo) bool) bool {
	return cache.get(m, func() bool {
		visited := make(map[*types.Method]bool)
		var visit func(x *types.Method) bool
		visit = func(x *types.Method) bool {
			if visited[x] {
				return false
			}
			visited[x] = true
			mi := a.Info(x)
			if local(mi) {
				return true
			}
			for _, cc := range mi.Calls {
				if visit(cc.Site.Callee) {
					return true
				}
			}
			return false
		}
		return visit(m)
	})
}

// Dep returns the dep set of a call site (§4.2): the storage the caller
// reads to compute the values flowing into the call — the receiver, the
// arguments (including the current contents of reference actuals), and
// the control conditions governing whether the call executes. The
// result is in the caller's frame (receiver-relative descriptors have
// not been substituted).
func (a *Analyzer) Dep(site *types.CallSite) *Set {
	m := site.Caller
	if m == nil {
		return NewSet()
	}
	deps := a.deps.get(m, func() map[int]*Set { return a.depAnalysis(m) })
	if d, ok := deps[site.ID]; ok {
		return d
	}
	return NewSet()
}
