package effects

import (
	"sort"
	"strings"

	"commute/internal/frontend/types"
)

// RecvBind binds a method's receiver for descriptor substitution. A nil
// *RecvBind is the root binding: receiver-relative descriptors
// normalize to the declaring class of their outermost element (the
// paper's CL), which denotes the same storage. A non-nil RecvBind
// prefixes the receiver's nested-object path.
type RecvBind struct {
	Class *types.Class
	Path  []string
}

// Binding is the paper's b : P → S extended with the receiver context.
type Binding struct {
	Recv *RecvBind
	// Ref maps formal reference-parameter names of the bound method to
	// the storage descriptors of their actuals.
	Ref map[string]Desc
}

// Identity returns the identity binding for m: the receiver stays
// receiver-relative-normalized and each formal reference parameter maps
// to itself.
func Identity(m *types.Method) Binding {
	b := Binding{Ref: make(map[string]Desc)}
	for _, p := range m.ReferenceParams() {
		b.Ref[p.Name] = Param(m, p.Name)
	}
	return b
}

// Key returns a canonical identity for the binding, for worklist
// deduplication.
func (b Binding) Key() string {
	var sb strings.Builder
	if b.Recv != nil {
		sb.WriteString("@")
		sb.WriteString(b.Recv.Class.Name)
		for _, p := range b.Recv.Path {
			sb.WriteByte('.')
			sb.WriteString(p)
		}
	}
	names := make([]string, 0, len(b.Ref))
	for n := range b.Ref {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sb.WriteByte('|')
		sb.WriteString(n)
		sb.WriteByte('=')
		sb.WriteString(b.Ref[n].Key())
	}
	return sb.String()
}

// Subst substitutes a descriptor under the binding: receiver-relative
// field descriptors are re-rooted, and reference-parameter descriptors
// are replaced by their actuals.
func (b Binding) Subst(d Desc) Desc {
	switch d.Space {
	case DescField:
		if !d.ViaThis {
			return d
		}
		if b.Recv == nil {
			d.ViaThis = false
			return d
		}
		path := make([]string, 0, len(b.Recv.Path)+len(d.Path))
		path = append(path, b.Recv.Path...)
		path = append(path, d.Path...)
		return FieldDesc(b.Recv.Class, path, d.Field)
	case DescParam:
		if actual, ok := b.Ref[d.Name]; ok {
			return actual
		}
		return d
	}
	return d
}

// SubstSet substitutes every descriptor of s.
func (b Binding) SubstSet(s *Set) *Set { return s.Map(b.Subst) }

// Bind computes the callee binding at a call site (the paper's
// bind(c, b)): the receiver actual composed with the caller's receiver
// binding, and each formal reference parameter mapped to the descriptor
// of its actual under the caller binding.
func (a *Analyzer) Bind(caller *types.Method, cc CallContext, b Binding) Binding {
	out := Binding{Ref: make(map[string]Desc)}
	switch cc.Recv.Kind {
	case RecvThis:
		out.Recv = b.Recv
	case RecvFree:
		out.Recv = nil
	case RecvNested:
		if cc.Recv.ViaThis {
			if b.Recv == nil {
				out.Recv = &RecvBind{Class: cc.Recv.Class, Path: cc.Recv.Path}
			} else {
				path := make([]string, 0, len(b.Recv.Path)+len(cc.Recv.Path))
				path = append(path, b.Recv.Path...)
				path = append(path, cc.Recv.Path...)
				out.Recv = &RecvBind{Class: b.Recv.Class, Path: path}
			}
		} else {
			out.Recv = &RecvBind{Class: cc.Recv.Class, Path: cc.Recv.Path}
		}
	}
	for name, act := range cc.Refs {
		switch act.Kind {
		case ActLocal:
			out.Ref[name] = Local(caller, act.Name)
		case ActParam:
			out.Ref[name] = b.Subst(Param(caller, act.Name))
		case ActField:
			out.Ref[name] = b.Subst(act.Field)
		default:
			// Unanalyzable actual: bind to the coarse primitive-type
			// descriptor of the formal.
			d := Param(cc.Site.Callee, name)
			out.Ref[name] = d.Lift()
		}
	}
	return out
}
