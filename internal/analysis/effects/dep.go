package effects

import (
	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
	"commute/internal/frontend/types"
)

// depAnalysis computes the dep function for every call site of m: a
// forward taint analysis over locals that records, per call site, the
// storage read to produce the values at the site (arguments, receiver,
// current reference-actual contents) together with the control
// conditions that govern the invocation. Loops are iterated to a
// fixpoint; branches merge by union (weak updates), which is the
// conservative direction — dep sets can only grow, and a larger dep set
// only makes fewer call sites auxiliary.
//
// The result maps call-site IDs to their dep sets. It is built
// entirely within this pass and published whole through the analyzer's
// dep memo (never patched into the already-published MethodInfo), so
// concurrent readers of Info(m) are unaffected by a dep pass in
// flight.
func (a *Analyzer) depAnalysis(m *types.Method) map[int]*Set {
	deps := make(map[int]*Set)
	if m.Def == nil {
		return deps
	}
	d := &depWalker{
		a:     a,
		m:     m,
		deps:  deps,
		taint: make(map[string]*Set),
	}
	d.stmt(m.Def.Body)
	return deps
}

type depWalker struct {
	a     *Analyzer
	m     *types.Method
	deps  map[int]*Set // call-site ID → dep set (the pass's result)
	taint map[string]*Set
	path  []*Set // control-condition taints, innermost last
}

func (d *depWalker) pathTaint() *Set {
	out := NewSet()
	for _, s := range d.path {
		out.AddAll(s)
	}
	return out
}

func (d *depWalker) localTaint(name string) *Set {
	if s, ok := d.taint[name]; ok {
		return s
	}
	s := NewSet()
	d.taint[name] = s
	return s
}

// loopFix walks a loop body repeatedly until the taint state stops
// changing, capturing loop-carried dependences through locals.
// Straight-line code outside loops is walked exactly once, in program
// order, so taints from later statements never pollute earlier dep
// sets.
func (d *depWalker) loopFix(walk func()) {
	for i := 0; i < len(d.m.Locals)+2; i++ {
		before := d.snapshot()
		walk()
		if d.snapshot() == before {
			return
		}
	}
}

func (d *depWalker) snapshot() string {
	out := ""
	names := make([]string, 0, len(d.taint))
	for n := range d.taint {
		names = append(names, n)
	}
	// Deterministic order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		out += n + "={" + d.taint[n].Key() + "};"
	}
	return out
}

func (d *depWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.Block:
		for _, sub := range st.Stmts {
			d.stmt(sub)
		}
	case *ast.DeclStmt:
		if st.Init != nil {
			t := d.exprTaint(st.Init)
			t.AddAll(d.pathTaint())
			d.localTaint(st.Name).AddAll(t)
		}
	case *ast.ExprStmt:
		d.exprTaint(st.X)
	case *ast.IfStmt:
		ct := d.exprTaint(st.Cond)
		d.path = append(d.path, ct)
		d.stmt(st.Then)
		if st.Else != nil {
			d.stmt(st.Else)
		}
		d.path = d.path[:len(d.path)-1]
	case *ast.ForStmt:
		if st.Init != nil {
			d.stmt(st.Init)
		}
		ct := NewSet()
		if st.Cond != nil {
			ct = d.exprTaint(st.Cond)
		}
		d.path = append(d.path, ct)
		d.loopFix(func() {
			d.stmt(st.Body)
			if st.Post != nil {
				d.stmt(st.Post)
			}
			if st.Cond != nil {
				ct.AddAll(d.exprTaint(st.Cond))
			}
		})
		d.path = d.path[:len(d.path)-1]
	case *ast.WhileStmt:
		ct := d.exprTaint(st.Cond)
		d.path = append(d.path, ct)
		d.loopFix(func() {
			d.stmt(st.Body)
			ct.AddAll(d.exprTaint(st.Cond))
		})
		d.path = d.path[:len(d.path)-1]
	case *ast.ReturnStmt:
		if st.X != nil {
			d.exprTaint(st.X)
		}
	}
}

// exprTaint returns the set of non-local storage descriptors the value
// of e may depend on, updating local taints for assignments and
// recording dep sets at call sites.
func (d *depWalker) exprTaint(e ast.Expr) *Set {
	switch x := e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.BoolLit, *ast.NullLit,
		*ast.StringLit, *ast.ThisExpr, *ast.NewExpr:
		return NewSet()
	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal:
			return d.localTaint(x.Name).Clone()
		case ast.SymParam:
			p := d.m.ParamByName(x.Name)
			if p != nil && p.IsRef() {
				return NewSet(Param(d.m, x.Name))
			}
			return NewSet() // value parameters carry no storage taint
		case ast.SymField:
			if _, isObj := d.a.Prog.TypeOf(x).(types.Object); isObj {
				return NewSet()
			}
			return NewSet(ThisField(d.a.Prog.Classes[x.FieldClass], nil, x.Name))
		default:
			return NewSet()
		}
	case *ast.FieldAccess:
		out := d.exprTaint(x.X)
		w := &localWalker{a: d.a, m: d.m, info: &MethodInfo{Reads: NewSet(), Writes: NewSet()}}
		if desc, kind := w.accessDesc(x); kind == accField || kind == accRefParam {
			out.Add(desc)
		}
		return out
	case *ast.IndexExpr:
		out := d.exprTaint(x.X)
		out.AddAll(d.exprTaint(x.Index))
		return out
	case *ast.Unary:
		return d.exprTaint(x.X)
	case *ast.Binary:
		out := d.exprTaint(x.X)
		out.AddAll(d.exprTaint(x.Y))
		return out
	case *ast.CastExpr:
		return d.exprTaint(x.X)
	case *ast.Assign:
		rhs := d.exprTaint(x.RHS)
		rhs.AddAll(d.pathTaint())
		d.assignTaint(x.LHS, rhs, x.Op != token.ASSIGN)
		return rhs
	case *ast.CallExpr:
		return d.callTaint(x)
	}
	return NewSet()
}

// assignTaint updates the taint of an lvalue. Non-local lvalues carry
// no taint state (their reads are resolved through descriptors).
func (d *depWalker) assignTaint(lhs ast.Expr, rhs *Set, compound bool) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Sym == ast.SymLocal {
			if !compound {
				// Weak update: unions only. Strong updates would be
				// legal on straight-line code but the conservative
				// direction is harmless here.
			}
			d.localTaint(x.Name).AddAll(rhs)
		}
	case *ast.IndexExpr:
		d.assignTaint(x.X, rhs, true)
		d.exprTaint(x.Index)
	case *ast.FieldAccess:
		// Instance-variable writes do not feed local taint.
	}
}

// callTaint records the dep set for a call site and returns the taint
// of the call's value.
func (d *depWalker) callTaint(x *ast.CallExpr) *Set {
	if x.Builtin {
		out := NewSet()
		for _, arg := range x.Args {
			out.AddAll(d.exprTaint(arg))
		}
		return out
	}
	site := d.a.Prog.CallSites[x.Site]
	dep := d.pathTaint()
	if x.Recv != nil {
		dep.AddAll(d.exprTaint(x.Recv))
	}
	var refLocals []string
	for i, arg := range x.Args {
		at := d.exprTaint(arg)
		dep.AddAll(at)
		if i < len(site.Callee.Params) && site.Callee.Params[i].IsRef() {
			if id, ok := arg.(*ast.Ident); ok && id.Sym == ast.SymLocal {
				refLocals = append(refLocals, id.Name)
			}
		}
	}

	// The callee's own reads contribute to the values it returns and
	// writes into reference actuals.
	calleeReads := NewSet()
	if site.Callee != d.m { // direct recursion: the fixpoint covers it
		te := d.a.TransitiveEffects(site.Callee)
		var cc *CallContext
		mi := d.a.Info(d.m)
		for i := range mi.Calls {
			if mi.Calls[i].Site == site {
				cc = &mi.Calls[i]
				break
			}
		}
		if cc != nil {
			b := d.a.Bind(d.m, *cc, Identity(d.m))
			calleeReads = b.SubstSet(te.Reads)
		} else {
			calleeReads = te.Reads.Clone()
		}
		// Reads of locals (reference actuals) resolve to those locals'
		// taints.
		resolved := NewSet()
		for _, desc := range calleeReads.Slice() {
			if desc.Space == DescLocal && desc.Method == d.m {
				resolved.AddAll(d.localTaint(desc.Name))
			} else {
				resolved.Add(desc)
			}
		}
		calleeReads = resolved
	}

	// Record dep(c). Multiple syntactic evaluations (loop fixpoint)
	// accumulate.
	existing, ok := d.deps[site.ID]
	if !ok {
		existing = NewSet()
		d.deps[site.ID] = existing
	}
	existing.AddAll(dep)

	// Reference actuals now carry the callee's read taint.
	retTaint := dep.Clone()
	retTaint.AddAll(calleeReads)
	for _, name := range refLocals {
		d.localTaint(name).AddAll(retTaint)
	}
	return retTaint
}
