package effects

import (
	"sync"

	"commute/internal/frontend/types"
)

// memoTable is a per-method once-published memo: the first caller for a
// key computes the value, every other caller blocks on that one
// computation and then shares the published result. The mutex guards
// only the cell map — compute runs outside it, so distinct methods
// memoize concurrently. The zero value is ready to use.
//
// Values published through a memoTable are immutable from the moment
// get returns: computations build their result completely before
// publication and no later pass mutates it (dep sets live in their own
// table rather than being patched into MethodInfo, see Analyzer.Dep).
type memoTable[V any] struct {
	mu sync.Mutex
	m  map[*types.Method]*memoCell[V]
}

type memoCell[V any] struct {
	once sync.Once
	v    V
}

func (t *memoTable[V]) get(m *types.Method, compute func() V) V {
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[*types.Method]*memoCell[V])
	}
	c, ok := t.m[m]
	if !ok {
		c = new(memoCell[V])
		t.m[m] = c
	}
	t.mu.Unlock()
	c.once.Do(func() { c.v = compute() })
	return c.v
}
