package effects

import (
	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
	"commute/internal/frontend/types"
)

// RecvKind classifies the receiver actual at a call site.
type RecvKind int

// Receiver-actual kinds.
const (
	RecvThis   RecvKind = iota // receiver is the caller's receiver
	RecvNested                 // receiver is a nested object (of this or of another object)
	RecvFree                   // receiver is an independent object (pointer, global)
)

// RecvActual describes the receiver expression at a call site.
type RecvActual struct {
	Kind RecvKind
	// For RecvNested: the nested-object path. ViaThis means the path is
	// rooted at the caller's receiver; otherwise Class is the declaring
	// class of the first path element.
	ViaThis bool
	Class   *types.Class
	Path    []string
}

// ActualKind classifies the actual bound to a formal reference
// parameter.
type ActualKind int

// Reference-actual kinds.
const (
	ActLocal ActualKind = iota // a local variable of the caller
	ActParam                   // the caller's own reference parameter
	ActField                   // an instance-variable array
	ActOther                   // anything else (unanalyzable reference actual)
)

// ActualRef is the actual argument bound to a formal reference
// parameter at a call site.
type ActualRef struct {
	Kind  ActualKind
	Name  string // local or parameter name
	Field Desc   // for ActField
}

// CallContext is the locally extracted information about one call site.
type CallContext struct {
	Site *types.CallSite
	Recv RecvActual
	// Refs maps the callee's formal reference-parameter names to the
	// actuals bound at this site.
	Refs map[string]ActualRef
}

// MethodInfo is the cached local analysis of one method: its direct
// memory accesses, call contexts, and purity flags. A MethodInfo is
// immutable once published by Analyzer.Info; the §4.2 dep sets live in
// a separate per-caller memo (see Analyzer.Dep) because they need the
// transitive effects of callees and are computed lazily.
type MethodInfo struct {
	M *types.Method

	// Reads and Writes are the method's direct (non-transitive) memory
	// accesses: receiver-relative field descriptors, absolute field
	// descriptors, and reference-parameter descriptors. Local-variable
	// accesses are not memory effects and are omitted.
	Reads  *Set
	Writes *Set

	// Calls holds one CallContext per non-builtin call site, in source
	// order.
	Calls []CallContext

	// CreatesObject and PerformsIO are the direct purity flags.
	CreatesObject bool
	PerformsIO    bool

	// WritesNonLvalue records a write through a non-analyzable lvalue;
	// none exist in the dialect, kept for safety.
	WritesNonLvalue bool
}

// localAnalysis extracts MethodInfo for m.
func (a *Analyzer) localAnalysis(m *types.Method) *MethodInfo {
	info := &MethodInfo{
		M:      m,
		Reads:  NewSet(),
		Writes: NewSet(),
	}
	if m.Def == nil {
		return info
	}
	w := &localWalker{a: a, m: m, info: info}
	w.stmt(m.Def.Body)
	return info
}

// localWalker walks one method body collecting direct accesses and call
// contexts.
type localWalker struct {
	a    *Analyzer
	m    *types.Method
	info *MethodInfo
}

func (w *localWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.Block:
		for _, sub := range st.Stmts {
			w.stmt(sub)
		}
	case *ast.DeclStmt:
		if st.Init != nil {
			w.read(st.Init)
		}
	case *ast.ExprStmt:
		w.effectExpr(st.X)
	case *ast.IfStmt:
		w.read(st.Cond)
		w.stmt(st.Then)
		if st.Else != nil {
			w.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.read(st.Cond)
		}
		if st.Post != nil {
			w.stmt(st.Post)
		}
		w.stmt(st.Body)
	case *ast.WhileStmt:
		w.read(st.Cond)
		w.stmt(st.Body)
	case *ast.ReturnStmt:
		if st.X != nil {
			w.read(st.X)
		}
	}
}

// effectExpr handles an expression in statement position (assignments
// and calls).
func (w *localWalker) effectExpr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Assign:
		w.write(x.LHS)
		if x.Op != token.ASSIGN {
			w.read(x.LHS) // compound assignment reads the target
		}
		// Index expressions and chains on the LHS read their bases and
		// indices.
		w.lhsSubReads(x.LHS)
		w.read(x.RHS)
	default:
		w.read(e)
	}
}

// lhsSubReads collects the reads performed while *locating* an lvalue:
// array indices and pointer bases.
func (w *localWalker) lhsSubReads(e ast.Expr) {
	switch x := e.(type) {
	case *ast.IndexExpr:
		w.read(x.Index)
		w.lhsSubReads(x.X)
	case *ast.FieldAccess:
		// The base chain up to a pointer dereference is read.
		if _, ok := w.a.Prog.TypeOf(x.X).(types.Pointer); ok {
			w.read(x.X)
		} else {
			w.lhsSubReads(x.X)
		}
	}
}

// write records the lvalue target of an assignment.
func (w *localWalker) write(e ast.Expr) {
	d, kind := w.accessDesc(e)
	switch kind {
	case accField, accRefParam:
		w.info.Writes.Add(d)
	case accLocal, accValue:
		// Local writes are not memory effects.
	default:
		w.info.WritesNonLvalue = true
	}
}

// read walks an rvalue expression recording every memory read.
func (w *localWalker) read(e ast.Expr) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		d, kind := w.accessDesc(x)
		if kind == accField || kind == accRefParam {
			// Reading an object-typed identifier is not a memory read;
			// accessDesc already filters that case to accValue.
			w.info.Reads.Add(d)
		}
	case *ast.FieldAccess:
		d, kind := w.accessDesc(x)
		if kind == accField || kind == accRefParam {
			w.info.Reads.Add(d)
		}
		// Walk the base: pointer dereferences read the pointer.
		w.read(x.X)
	case *ast.IndexExpr:
		d, kind := w.accessDesc(x)
		if kind == accField || kind == accRefParam {
			w.info.Reads.Add(d)
		}
		w.read(x.Index)
		// The array base chain may itself read (e.g. c->subp[i] reads
		// nothing extra for c, a local, but l->bodyp[i] reads the
		// pointer l only if l is an ivar — handled by recursing into
		// non-array portions).
		if fa, ok := x.X.(*ast.FieldAccess); ok {
			w.read(fa.X)
		}
	case *ast.CallExpr:
		w.call(x)
	case *ast.Assign:
		w.effectExpr(x)
	case *ast.Unary:
		w.read(x.X)
	case *ast.Binary:
		w.read(x.X)
		w.read(x.Y)
	case *ast.CastExpr:
		w.read(x.X)
	case *ast.NewExpr:
		w.info.CreatesObject = true
	case *ast.ThisExpr, *ast.IntLit, *ast.FloatLit, *ast.BoolLit,
		*ast.NullLit, *ast.StringLit:
		// No memory effects.
	}
}

// call records a call context and the reads of its receiver and value
// arguments.
func (w *localWalker) call(x *ast.CallExpr) {
	if x.Builtin {
		b := types.Builtins[x.Method]
		if b != nil && b.IsIO {
			w.info.PerformsIO = true
		}
		for _, arg := range x.Args {
			w.read(arg)
		}
		return
	}
	site := w.a.Prog.CallSites[x.Site]
	cc := CallContext{
		Site: site,
		Recv: w.recvActual(x.Recv),
		Refs: make(map[string]ActualRef),
	}
	if x.Recv != nil {
		w.read(x.Recv)
	}
	for i, arg := range x.Args {
		if i >= len(site.Callee.Params) {
			continue
		}
		p := site.Callee.Params[i]
		if p.IsRef() {
			cc.Refs[p.Name] = w.refActual(arg)
			// Passing a reference is taking an address, not a read.
			continue
		}
		w.read(arg)
	}
	w.info.Calls = append(w.info.Calls, cc)
}

// recvActual classifies a receiver expression.
func (w *localWalker) recvActual(recv ast.Expr) RecvActual {
	if recv == nil {
		return RecvActual{Kind: RecvThis}
	}
	switch x := recv.(type) {
	case *ast.ThisExpr:
		return RecvActual{Kind: RecvThis}
	case *ast.Ident:
		switch x.Sym {
		case ast.SymField:
			// A nested object of the receiver, e.g. acc.vecAdd(...).
			if _, ok := w.a.Prog.TypeOf(x).(types.Object); ok {
				return RecvActual{
					Kind: RecvNested, ViaThis: true,
					Class: w.a.Prog.Classes[x.FieldClass],
					Path:  []string{x.Name},
				}
			}
		case ast.SymGlobal:
			// A global object: fields normalize by declaring class, the
			// same as a free receiver.
			return RecvActual{Kind: RecvFree}
		}
		return RecvActual{Kind: RecvFree}
	case *ast.FieldAccess:
		// Object-valued chains: extend the nested path.
		if _, ok := w.a.Prog.TypeOf(x).(types.Object); ok {
			base := w.recvActual(x.X)
			switch base.Kind {
			case RecvThis:
				return RecvActual{
					Kind: RecvNested, ViaThis: true,
					Class: w.a.Prog.Classes[x.DeclClass],
					Path:  []string{x.Name},
				}
			case RecvNested:
				return RecvActual{
					Kind: RecvNested, ViaThis: base.ViaThis,
					Class: base.Class,
					Path:  append(append([]string{}, base.Path...), x.Name),
				}
			default:
				// Nested object of a free object, e.g. n->pos.m(...).
				return RecvActual{
					Kind: RecvNested, ViaThis: false,
					Class: w.a.Prog.Classes[x.DeclClass],
					Path:  []string{x.Name},
				}
			}
		}
		return RecvActual{Kind: RecvFree}
	default:
		return RecvActual{Kind: RecvFree}
	}
}

// refActual classifies the actual bound to a reference parameter.
func (w *localWalker) refActual(arg ast.Expr) ActualRef {
	switch x := arg.(type) {
	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal:
			return ActualRef{Kind: ActLocal, Name: x.Name}
		case ast.SymParam:
			return ActualRef{Kind: ActParam, Name: x.Name}
		case ast.SymField:
			return ActualRef{
				Kind:  ActField,
				Field: ThisField(w.a.Prog.Classes[x.FieldClass], nil, x.Name),
			}
		}
	case *ast.FieldAccess:
		if d, kind := w.accessDesc(x); kind == accField {
			return ActualRef{Kind: ActField, Field: d}
		}
	}
	return ActualRef{Kind: ActOther}
}

// accessKind classifies what an access expression resolves to.
type accessKind int

const (
	accField    accessKind = iota // an instance-variable descriptor
	accRefParam                   // a reference parameter of this method
	accLocal                      // a local variable
	accValue                      // no memory location (value params, objects)
	accUnknown
)

// accessDesc resolves an lvalue-shaped expression to a storage
// descriptor.
func (w *localWalker) accessDesc(e ast.Expr) (Desc, accessKind) {
	switch x := e.(type) {
	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal:
			return Local(w.m, x.Name), accLocal
		case ast.SymParam:
			p := w.m.ParamByName(x.Name)
			if p != nil && p.IsRef() {
				return Param(w.m, x.Name), accRefParam
			}
			return Desc{}, accValue
		case ast.SymField:
			t := w.a.Prog.TypeOf(x)
			if _, isObj := t.(types.Object); isObj {
				return Desc{}, accValue // object identity, not storage
			}
			return ThisField(w.a.Prog.Classes[x.FieldClass], nil, x.Name), accField
		case ast.SymGlobal, ast.SymConst:
			return Desc{}, accValue
		}
		return Desc{}, accUnknown
	case *ast.FieldAccess:
		t := w.a.Prog.TypeOf(x)
		if _, isObj := t.(types.Object); isObj {
			return Desc{}, accValue
		}
		cl := w.a.Prog.Classes[x.DeclClass]
		if cl == nil {
			return Desc{}, accUnknown
		}
		// Resolve the base chain.
		base, path, ok := w.baseChain(x.X)
		if !ok {
			return Desc{}, accUnknown
		}
		switch base {
		case chainThis:
			if len(path) == 0 {
				return ThisField(cl, nil, x.Name), accField
			}
			// The class of a nested chain is the declaring class of the
			// outermost path element.
			first := w.outerDeclClass(x.X, path)
			return ThisField(first, path, x.Name), accField
		case chainFree:
			if len(path) == 0 {
				return FieldDesc(cl, nil, x.Name), accField
			}
			first := w.outerDeclClass(x.X, path)
			return FieldDesc(first, path, x.Name), accField
		}
		return Desc{}, accUnknown
	case *ast.IndexExpr:
		d, kind := w.accessDesc(x.X)
		return d, kind
	}
	return Desc{}, accUnknown
}

// Resolver exposes access-descriptor resolution to other phases (the
// symbolic executor uses it to classify field reads).
type Resolver struct {
	w *localWalker
}

// NewResolver returns a resolver for accesses inside method m.
func NewResolver(prog *types.Program, m *types.Method) *Resolver {
	a := &Analyzer{Prog: prog}
	return &Resolver{w: &localWalker{a: a, m: m, info: &MethodInfo{
		Reads: NewSet(), Writes: NewSet(),
	}}}
}

// AccessDesc resolves an lvalue-shaped expression to a storage
// descriptor; ok is false when the expression does not denote
// instance-variable or reference-parameter storage.
func (r *Resolver) AccessDesc(e ast.Expr) (Desc, bool) {
	d, kind := r.w.accessDesc(e)
	return d, kind == accField || kind == accRefParam
}

// chainBase classifies the root of a field-access chain.
type chainBase int

const (
	chainThis chainBase = iota // rooted at the receiver
	chainFree                  // rooted at a pointer, global, or other object
	chainBad
)

// baseChain resolves the object-valued base chain of a field access,
// returning the nested-object path (innermost last).
func (w *localWalker) baseChain(e ast.Expr) (chainBase, []string, bool) {
	switch x := e.(type) {
	case *ast.ThisExpr:
		return chainThis, nil, true
	case *ast.Ident:
		switch x.Sym {
		case ast.SymField:
			if _, ok := w.a.Prog.TypeOf(x).(types.Object); ok {
				return chainThis, []string{x.Name}, true
			}
			// A pointer instance variable: the target object is free.
			return chainFree, nil, true
		case ast.SymGlobal:
			return chainFree, nil, true
		case ast.SymLocal, ast.SymParam:
			return chainFree, nil, true
		}
		return chainBad, nil, false
	case *ast.FieldAccess:
		t := w.a.Prog.TypeOf(x)
		if _, isObj := t.(types.Object); isObj {
			base, path, ok := w.baseChain(x.X)
			if !ok {
				return chainBad, nil, false
			}
			return base, append(path, x.Name), true
		}
		// A pointer-valued field: dereferencing starts a free chain.
		return chainFree, nil, true
	case *ast.IndexExpr:
		// Array of pointers: element target is free.
		return chainFree, nil, true
	case *ast.CastExpr:
		return w.baseChain(x.X)
	case *ast.CallExpr:
		return chainFree, nil, true
	}
	return chainBad, nil, false
}

// outerDeclClass returns the declaring class of the outermost path
// element of a nested chain rooted at base.
func (w *localWalker) outerDeclClass(base ast.Expr, path []string) *types.Class {
	// Walk down to the innermost FieldAccess/Ident naming path[0].
	e := base
	for {
		switch x := e.(type) {
		case *ast.FieldAccess:
			if x.Name == path[0] && len(path) == 1 {
				return w.a.Prog.Classes[x.DeclClass]
			}
			if x.Name == path[len(path)-1] {
				e = x.X
				path = path[:len(path)-1]
				continue
			}
			return w.a.Prog.Classes[x.DeclClass]
		case *ast.Ident:
			if x.Sym == ast.SymField {
				return w.a.Prog.Classes[x.FieldClass]
			}
			return w.m.Class
		default:
			if w.m.Class != nil {
				return w.m.Class
			}
			return nil
		}
	}
}
