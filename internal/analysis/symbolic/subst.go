package symbolic

// Structural substitution and traversal over symbolic expressions.
// These support the conditional-commutativity synthesis in
// internal/cond: the case-split over embedded conditionals substitutes
// a Bool literal for every occurrence of a condition expression and
// re-simplifies, and the guardability analysis walks expression trees
// to classify their leaves.

// Walk traverses e in preorder, calling f on every node. If f returns
// false the node's children are not visited.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch x := e.(type) {
	case *Nary:
		for _, a := range x.Args {
			Walk(a, f)
		}
	case *Bin:
		Walk(x.L, f)
		Walk(x.R, f)
	case *Neg:
		Walk(x.X, f)
	case *Not:
		Walk(x.X, f)
	case *Call:
		for _, a := range x.Args {
			Walk(a, f)
		}
	case *Cond:
		Walk(x.C, f)
		Walk(x.T, f)
		Walk(x.F, f)
	case *ArrUpd:
		Walk(x.Arr, f)
		Walk(x.Operand, f)
	case *ArrFill:
		Walk(x.Elem, f)
	case *ArrStore:
		Walk(x.Arr, f)
		Walk(x.Idx, f)
		Walk(x.Val, f)
	case *ArrSel:
		Walk(x.Arr, f)
		Walk(x.Idx, f)
	case *AccumAt:
		Walk(x.Arr, f)
		Walk(x.Idx, f)
		Walk(x.Delta, f)
	}
}

// Subst replaces every subexpression whose canonical Key appears in
// repl with the corresponding replacement and returns the interned
// result. Matching is by Key, so the same condition expression is
// replaced wherever it occurs, however the tree was built. The result
// is not simplified; callers normally pass it through Simplify.
func Subst(e Expr, repl map[string]Expr) Expr {
	if e == nil || len(repl) == 0 {
		return e
	}
	return Intern(subst(e, repl))
}

func subst(e Expr, repl map[string]Expr) Expr {
	if r, ok := repl[e.Key()]; ok {
		return r
	}
	switch x := e.(type) {
	case *Nary:
		args, changed := substSlice(x.Args, repl)
		if !changed {
			return e
		}
		return &Nary{Op: x.Op, Args: args}
	case *Bin:
		l, r := subst(x.L, repl), subst(x.R, repl)
		if l == x.L && r == x.R {
			return e
		}
		return &Bin{Op: x.Op, L: l, R: r}
	case *Neg:
		if nx := subst(x.X, repl); nx != x.X {
			return &Neg{X: nx}
		}
	case *Not:
		if nx := subst(x.X, repl); nx != x.X {
			return &Not{X: nx}
		}
	case *Call:
		args, changed := substSlice(x.Args, repl)
		if !changed {
			return e
		}
		return &Call{Fn: x.Fn, Args: args}
	case *Cond:
		c, t, f := subst(x.C, repl), subst(x.T, repl), subst(x.F, repl)
		if c == x.C && t == x.T && f == x.F {
			return e
		}
		return &Cond{C: c, T: t, F: f}
	case *ArrUpd:
		arr, op := subst(x.Arr, repl), subst(x.Operand, repl)
		if arr == x.Arr && op == x.Operand {
			return e
		}
		return &ArrUpd{Arr: arr, Op: x.Op, Operand: op}
	case *ArrFill:
		if el := subst(x.Elem, repl); el != x.Elem {
			return &ArrFill{Elem: el}
		}
	case *ArrStore:
		arr, idx, val := subst(x.Arr, repl), subst(x.Idx, repl), subst(x.Val, repl)
		if arr == x.Arr && idx == x.Idx && val == x.Val {
			return e
		}
		return &ArrStore{Arr: arr, Idx: idx, Val: val}
	case *ArrSel:
		arr, idx := subst(x.Arr, repl), subst(x.Idx, repl)
		if arr == x.Arr && idx == x.Idx {
			return e
		}
		return &ArrSel{Arr: arr, Idx: idx}
	case *AccumAt:
		arr, idx, d := subst(x.Arr, repl), subst(x.Idx, repl), subst(x.Delta, repl)
		if arr == x.Arr && idx == x.Idx && d == x.Delta {
			return e
		}
		return &AccumAt{Arr: arr, Op: x.Op, Idx: idx, Delta: d}
	}
	return e
}

func substSlice(args []Expr, repl map[string]Expr) ([]Expr, bool) {
	changed := false
	out := args
	for i, a := range args {
		na := subst(a, repl)
		if na != a && !changed {
			changed = true
			out = make([]Expr, len(args))
			copy(out, args)
		}
		if changed {
			out[i] = na
		}
	}
	return out, changed
}

// MkNot returns the interned boolean negation of x.
func MkNot(x Expr) Expr { return mkNot(x) }

// MkBin returns the interned binary application op(l, r).
func MkBin(op Op, l, r Expr) Expr { return mkBin(op, l, r) }
