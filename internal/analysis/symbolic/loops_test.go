package symbolic_test

import (
	"strings"
	"testing"

	"commute/internal/analysis/effects"
	"commute/internal/analysis/extent"
	"commute/internal/analysis/symbolic"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

// execOne compiles a program, computes the driver's extent environment,
// and symbolically executes one invocation of the named method.
func execOne(t *testing.T, source, driver, method string) (*symbolic.Result, error) {
	t.Helper()
	f, err := parser.Parse("loop.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	a := effects.NewAnalyzer(prog)
	d := prog.MethodByFullName(driver)
	if d == nil {
		t.Fatalf("driver %s not found", driver)
	}
	ec := extent.Constants(a, d)
	res := extent.Compute(a, d, ec)
	aux := make(map[int]bool)
	for _, c := range res.Aux {
		aux[c.ID] = true
	}
	env := symbolic.NewEnv(prog, ec, aux)
	m := prog.MethodByFullName(method)
	r, err := symbolic.ExecuteOne(m, "1", env)
	if err != nil {
		return nil, err
	}
	return r.Canonical(), nil
}

const loopProgHeader = `
const int N = 4;
class vec {
public:
  double v[N];
  void addAll(double w[N]);
  void scaleAll(double s);
  void subAll(double w[N]);
  void divAll(double s);
  void fillAll(double s);
  void copyAll(double w[N]);
};
class driver {
public:
  vec *x;
  void run();
};
`

const loopProgFooter = `
void driver::run() {
  double t[N];
  t[0] = 1.0;
  x->addAll(t);
  x->scaleAll(2.0);
  x->subAll(t);
  x->divAll(3.0);
  x->fillAll(0.0);
  x->copyAll(t);
}
`

const loopBodies = `
void vec::addAll(double w[N]) {
  for (int i = 0; i < N; i++)
    v[i] += w[i];
}
void vec::scaleAll(double s) {
  for (int i = 0; i < N; i++)
    v[i] *= s;
}
void vec::subAll(double w[N]) {
  for (int i = 0; i < N; i++)
    v[i] = v[i] - w[i];
}
void vec::divAll(double s) {
  for (int i = 0; i < N; i++)
    v[i] /= s;
}
void vec::fillAll(double s) {
  for (int i = 0; i < N; i++)
    v[i] = s;
}
void vec::copyAll(double w[N]) {
  for (int i = 0; i < N; i++)
    v[i] = w[i];
}
`

// TestArrayLoopForms: each recognized elementwise form yields its
// closed representation.
func TestArrayLoopForms(t *testing.T) {
	source := loopProgHeader + loopBodies + loopProgFooter
	cases := []struct {
		method string
		want   string // substring of the canonical val binding
	}{
		{"vec::addAll", "upd(iv:vec.v += 1:w)"},
		{"vec::scaleAll", "upd(iv:vec.v *= 2)"}, // footnote-4: the single call site passes 2.0
		{"vec::subAll", "upd(iv:vec.v += (-1:w))"},
		{"vec::divAll", "upd(iv:vec.v /= 3)"},
		{"vec::fillAll", "fill(0)"},
		{"vec::copyAll", "1:w"},
	}
	for _, tc := range cases {
		r, err := execOne(t, source, "driver::run", tc.method)
		if err != nil {
			t.Errorf("%s: %v", tc.method, err)
			continue
		}
		got := r.IVars["vec.v"].Key()
		if got != tc.want {
			t.Errorf("%s: v ↦ %s, want %s", tc.method, got, tc.want)
		}
	}
}

// TestInvocationLoopForm: the paper's second loop form produces a
// loop-form MX expression.
func TestInvocationLoopForm(t *testing.T) {
	source := `
const int K = 8;
class cnt {
public:
  int n;
  void bump(int d);
};
void cnt::bump(int d) { n = n + d; }
class driver {
public:
  cnt *c;
  int total;
  void fire();
};
void driver::fire() {
  for (int i = 0; i < K; i++)
    c->bump(3);
}
`
	r, err := execOne(t, source, "driver::fire", "driver::fire")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Invoked) != 1 {
		t.Fatalf("invoked = %s, want one loop-form MX", r.Invoked)
	}
	mx := r.Invoked[0]
	if mx.Loop == nil {
		t.Fatalf("expected loop-form invocation, got %s", mx.Key())
	}
	key := mx.Key()
	for _, part := range []string{"for i=0..8", "cnt::bump", "(3)"} {
		if !strings.Contains(key, part) {
			t.Errorf("loop MX %q missing %q", key, part)
		}
	}
}

// TestUnrollFallback: a constant-bound loop outside the two recognized
// forms unrolls; the per-element stores canonicalize.
func TestUnrollFallback(t *testing.T) {
	source := `
const int N = 3;
class tri {
public:
  double v[N];
  void fillIdx();
};
void tri::fillIdx() {
  for (int i = 0; i < N; i++)
    v[i] = i * 2.0;
}
class driver {
public:
  tri *x;
  void run();
};
void driver::run() {
  x->fillIdx();
}
`
	r, err := execOne(t, source, "driver::run", "tri::fillIdx")
	if err != nil {
		t.Fatal(err)
	}
	got := r.IVars["tri.v"].Key()
	// Unrolled stores in index order.
	want := "store(store(store(iv:tri.v, 0, 0), 1, 2), 2, 4)"
	if got != want {
		t.Errorf("v ↦ %s, want %s", got, want)
	}
}

// TestUnanalyzableConstructs: while loops, dynamic bounds, conditional
// returns, and object creation are rejected with clear reasons.
func TestUnanalyzableConstructs(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"while", "while (n < 10) n = n + 1;", "while loops"},
		{"dynamic-bound", "for (int i = 0; i < n; i++) n = n + 1;", "not compile-time constants"},
		{"conditional-return", "if (n > 0) return; n = 1;", "conditional return"},
		{"new", "n = 1; if (n > 0) { p = new cnt; }", "object creation"},
	}
	for _, tc := range cases {
		source := `
class cnt {
public:
  int n;
  cnt *p;
  void m();
};
void cnt::m() { ` + tc.body + ` }
class driver {
public:
  cnt *c;
  void run();
};
void driver::run() { c->m(); }
`
		_, err := execOne(t, source, "driver::run", "cnt::m")
		if err == nil {
			t.Errorf("%s: expected unanalyzable error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err.Error(), tc.want)
		}
	}
}

// TestLargeUnrollRejected: unrolling is bounded.
func TestLargeUnrollRejected(t *testing.T) {
	source := `
const int N = 1000;
class big {
public:
  double v[N];
  void odd();
};
void big::odd() {
  for (int i = 0; i < N; i++)
    v[i] = i * 1.0;
}
class driver {
public:
  big *x;
  void run();
};
void driver::run() { x->odd(); }
`
	_, err := execOne(t, source, "driver::run", "big::odd")
	if err == nil || !strings.Contains(err.Error(), "too large to unroll") {
		t.Errorf("expected unroll-bound error, got %v", err)
	}
}
