package symbolic_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"commute/internal/analysis/symbolic"
)

// genExpr builds a random arithmetic expression over variables a..d and
// small constants, returning the expression and an evaluator.
func genExpr(r *rand.Rand, depth int) symbolic.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return symbolic.Num{V: float64(r.Intn(7) - 3), IsInt: true}
		case 1:
			return symbolic.Var{Name: string(rune('a' + r.Intn(4)))}
		default:
			return symbolic.Extent{ID: string(rune('x' + r.Intn(3)))}
		}
	}
	switch r.Intn(4) {
	case 0:
		return &symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{
			genExpr(r, depth-1), genExpr(r, depth-1),
		}}
	case 1:
		return &symbolic.Nary{Op: symbolic.OpMul, Args: []symbolic.Expr{
			genExpr(r, depth-1), genExpr(r, depth-1),
		}}
	case 2:
		return &symbolic.Neg{X: genExpr(r, depth-1)}
	default:
		return &symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{
			genExpr(r, depth-1),
			&symbolic.Neg{X: genExpr(r, depth-1)},
		}}
	}
}

// evalNumeric evaluates an expression under a variable assignment.
func evalNumeric(e symbolic.Expr, env map[string]float64) float64 {
	switch x := e.(type) {
	case symbolic.Num:
		return x.V
	case symbolic.Var:
		return env[x.Name]
	case symbolic.Extent:
		return env["ec:"+x.ID]
	case *symbolic.Neg:
		return -evalNumeric(x.X, env)
	case *symbolic.Nary:
		switch x.Op {
		case symbolic.OpAdd:
			s := 0.0
			for _, a := range x.Args {
				s += evalNumeric(a, env)
			}
			return s
		case symbolic.OpMul:
			p := 1.0
			for _, a := range x.Args {
				p *= evalNumeric(a, env)
			}
			return p
		}
	case *symbolic.Bin:
		l, r := evalNumeric(x.L, env), evalNumeric(x.R, env)
		if x.Op == symbolic.OpDiv {
			return l / r
		}
	}
	panic("unexpected node in numeric eval: " + e.Key())
}

// TestSimplifyPreservesValue: simplification never changes the value of
// a (division-free, integer-coefficient) arithmetic expression.
func TestSimplifyPreservesValue(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	env := map[string]float64{
		"a": 2, "b": -3, "c": 5, "d": 7,
		"ec:x": 11, "ec:y": -13, "ec:z": 17,
	}
	for i := 0; i < 500; i++ {
		e := genExpr(r, 4)
		want := evalNumeric(e, env)
		got := evalNumeric(symbolic.Simplify(e), env)
		if math.Abs(want-got) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Fatalf("iteration %d: Simplify changed value %g → %g\n  in:  %s\n  out: %s",
				i, want, got, e.Key(), symbolic.Simplify(e).Key())
		}
	}
}

// TestSimplifyIdempotent: simplify(simplify(e)) == simplify(e).
func TestSimplifyIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		e := genExpr(r, 4)
		once := symbolic.Simplify(e)
		twice := symbolic.Simplify(once)
		if once.Key() != twice.Key() {
			t.Fatalf("iteration %d: not idempotent\n  once:  %s\n  twice: %s",
				i, once.Key(), twice.Key())
		}
	}
}

// TestCommutativeOperandOrderIrrelevant: permuting the operands of a
// commutative operator never changes the canonical form.
func TestCommutativeOperandOrderIrrelevant(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		n := 2 + r.Intn(4)
		args := make([]symbolic.Expr, n)
		for j := range args {
			args[j] = genExpr(r, 2)
		}
		op := symbolic.OpAdd
		if r.Intn(2) == 0 {
			op = symbolic.OpMul
		}
		fwd := symbolic.Simplify(&symbolic.Nary{Op: op, Args: args})
		perm := make([]symbolic.Expr, n)
		for j, k := range r.Perm(n) {
			perm[j] = args[k]
		}
		rev := symbolic.Simplify(&symbolic.Nary{Op: op, Args: perm})
		if fwd.Key() != rev.Key() {
			t.Fatalf("iteration %d: operand order changed canonical form\n  %s\n  %s",
				i, fwd.Key(), rev.Key())
		}
	}
}

// TestAccumChainsCommute: random accumulation sequences into array
// elements canonicalize independently of order.
func TestAccumChainsCommute(t *testing.T) {
	type upd struct {
		Idx   uint8
		Delta int8
	}
	f := func(updates []upd, perm0 int64) bool {
		if len(updates) > 8 {
			updates = updates[:8]
		}
		base := symbolic.Var{Name: "arr"}
		build := func(order []int) symbolic.Expr {
			var e symbolic.Expr = base
			for _, k := range order {
				u := updates[k]
				e = &symbolic.ArrStore{
					Arr: e,
					Idx: symbolic.Num{V: float64(u.Idx % 4), IsInt: true},
					Val: &symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{
						&symbolic.ArrSel{Arr: e, Idx: symbolic.Num{V: float64(u.Idx % 4), IsInt: true}},
						symbolic.Num{V: float64(u.Delta), IsInt: true},
					}},
				}
			}
			return symbolic.Simplify(e)
		}
		fwd := make([]int, len(updates))
		for i := range fwd {
			fwd[i] = i
		}
		rev := rand.New(rand.NewSource(perm0)).Perm(len(updates))
		return build(fwd).Key() == build(rev).Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBooleanTautologies via quick: x ∨ ¬x ⇒ true, x ∧ ¬x ⇒ false for
// arbitrary generated subexpressions.
func TestBooleanTautologies(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		x := &symbolic.Bin{Op: symbolic.OpLt, L: genExpr(r, 2), R: genExpr(r, 2)}
		or := symbolic.Simplify(&symbolic.Nary{Op: symbolic.OpOr,
			Args: []symbolic.Expr{x, &symbolic.Not{X: x}}})
		if or.Key() != "true" {
			t.Fatalf("x∨¬x = %s for x=%s", or.Key(), x.Key())
		}
		and := symbolic.Simplify(&symbolic.Nary{Op: symbolic.OpAnd,
			Args: []symbolic.Expr{x, &symbolic.Not{X: x}}})
		if and.Key() != "false" {
			t.Fatalf("x∧¬x = %s for x=%s", and.Key(), x.Key())
		}
	}
}
