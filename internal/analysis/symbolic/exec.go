package symbolic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"commute/internal/analysis/effects"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
)

// Env supplies the context a symbolic execution runs in: the checked
// program, the extent-constant set, and the auxiliary call-site
// classification of the extent under test. An Env is safe for
// concurrent use by multiple symbolic executions.
type Env struct {
	Prog *types.Program
	EC   *effects.Set
	// Aux reports whether a call site is auxiliary in the current
	// extent.
	Aux map[int]bool
	// constArgs caches the footnote-4 optimization: if every call site
	// of a method passes the same literal for a parameter, the literal
	// is used in all symbolic executions. Computed lazily under mu.
	mu        sync.Mutex
	constArgs map[*types.Method][]Expr
	// fp is the environment fingerprint (see Fingerprint).
	fp string
}

// NewEnv builds an execution environment.
func NewEnv(prog *types.Program, ec *effects.Set, aux map[int]bool) *Env {
	env := &Env{Prog: prog, EC: ec, Aux: aux, constArgs: make(map[*types.Method][]Expr)}
	env.fp = env.fingerprint()
	return env
}

// Fingerprint identifies everything about the environment that can
// influence a symbolic execution within one program: the extent
// constant set and the auxiliary call-site classification. Two Envs
// over the same program with equal fingerprints produce identical
// execution results, which is what lets pair-test verdicts be cached
// across methods whose extents share an environment.
func (env *Env) Fingerprint() string { return env.fp }

func (env *Env) fingerprint() string {
	var sb strings.Builder
	if env.EC != nil {
		sb.WriteString(env.EC.Key())
	}
	sb.WriteByte('|')
	sites := make([]int, 0, len(env.Aux))
	for id, on := range env.Aux {
		if on {
			sites = append(sites, id)
		}
	}
	sort.Ints(sites)
	for i, id := range sites {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(id))
	}
	return sb.String()
}

// UnanalyzableError reports why a method could not be symbolically
// executed.
type UnanalyzableError struct {
	Method *types.Method
	Reason string
}

func (e *UnanalyzableError) Error() string {
	return e.Method.FullName() + ": " + e.Reason
}

// Result is the outcome of symbolically executing a pair of
// invocations in one order: the new instance-variable values (keyed by
// declaring-class-qualified field name) and the multiset of directly
// invoked operations.
type Result struct {
	IVars   map[string]Expr
	Invoked Multiset
}

// Canonical returns the simplified, canonical form of the result.
func (r *Result) Canonical() *Result {
	out := &Result{IVars: make(map[string]Expr, len(r.IVars))}
	for k, v := range r.IVars {
		out.IVars[k] = Simplify(v)
	}
	out.Invoked = SimplifyMultiset(r.Invoked)
	return out
}

// ExecutePair symbolically executes invocation A of mA (parameters
// tagged "1") followed by invocation B of mB (tagged "2") on a shared
// receiver, per §4.8.1. Call ExecutePair(mB, mA, "2", "1", env) for the
// opposite order; extent constants generated for auxiliary operations
// are keyed by (invocation tag, call site, occurrence) so both orders
// agree on them.
func ExecutePair(mA, mB *types.Method, tagA, tagB string, env *Env) (*Result, error) {
	ex := &executor{
		env:   env,
		ivars: make(map[string]Expr),
	}
	var invoked Multiset
	if err := ex.runMethod(mA, tagA, &invoked); err != nil {
		return nil, err
	}
	if err := ex.runMethod(mB, tagB, &invoked); err != nil {
		return nil, err
	}
	return &Result{IVars: ex.ivars, Invoked: invoked}, nil
}

// ExecuteOne symbolically executes a single invocation (used by
// reports and the Table 1 demonstration).
func ExecuteOne(m *types.Method, tag string, env *Env) (*Result, error) {
	ex := &executor{env: env, ivars: make(map[string]Expr)}
	var invoked Multiset
	if err := ex.runMethod(m, tag, &invoked); err != nil {
		return nil, err
	}
	return &Result{IVars: ex.ivars, Invoked: invoked}, nil
}

// Analyzable reports whether the method can be symbolically executed in
// the environment, with the reason when it cannot.
func Analyzable(m *types.Method, env *Env) error {
	ex := &executor{env: env, ivars: make(map[string]Expr)}
	var invoked Multiset
	return ex.runMethod(m, "1", &invoked)
}

// ---------------------------------------------------------------------
// Executor

// executor holds the shared instance-variable state across the two
// invocations plus the per-invocation frame.
type executor struct {
	env   *Env
	ivars map[string]Expr // "class.field" → current value

	// Per-invocation frame.
	m       *types.Method
	tag     string
	locals  map[string]Expr
	params  map[string]Expr
	guard   []Expr // conjunction stack
	invoked *Multiset
	retSeen bool
}

func (ex *executor) failf(format string, args ...any) error {
	return &UnanalyzableError{Method: ex.m, Reason: fmt.Sprintf(format, args...)}
}

func (ex *executor) runMethod(m *types.Method, tag string, invoked *Multiset) error {
	if m.Def == nil {
		return &UnanalyzableError{Method: m, Reason: "no definition"}
	}
	ex.m = m
	ex.tag = tag
	ex.locals = make(map[string]Expr)
	ex.params = make(map[string]Expr)
	ex.guard = nil
	ex.invoked = invoked
	ex.retSeen = false

	consts := ex.env.constArgsOf(m)
	for i, p := range m.Params {
		if consts[i] != nil {
			ex.params[p.Name] = consts[i]
			continue
		}
		ex.params[p.Name] = Var{Name: tag + ":" + p.Name}
	}
	// Instance variables start at their pre-execution values; the state
	// is shared between the two invocations, so only initialize unseen
	// fields.
	if m.Class != nil {
		for cl := m.Class; cl != nil; cl = cl.Base {
			for _, f := range cl.Fields {
				key := f.QualName()
				if _, ok := ex.ivars[key]; !ok {
					if _, isObj := f.Type.(types.Object); isObj {
						continue // nested objects are accessed via operations
					}
					ex.ivars[key] = Var{Name: "iv:" + key}
				}
			}
		}
	}
	return ex.stmt(m.Def.Body)
}

func (ex *executor) curGuard() Expr {
	if len(ex.guard) == 0 {
		return Bool{V: true}
	}
	args := make([]Expr, len(ex.guard))
	copy(args, ex.guard)
	return Simplify(mkNary(OpAnd, args))
}

// snapshot/restore of the mutable value state (ivars + locals + params).
type stateSnap struct {
	ivars, locals, params map[string]Expr
}

func (ex *executor) snap() stateSnap {
	return stateSnap{
		ivars:  cloneMap(ex.ivars),
		locals: cloneMap(ex.locals),
		params: cloneMap(ex.params),
	}
}

func (ex *executor) restore(s stateSnap) {
	ex.ivars = cloneMap(s.ivars)
	ex.locals = cloneMap(s.locals)
	ex.params = cloneMap(s.params)
}

func cloneMap(m map[string]Expr) map[string]Expr {
	out := make(map[string]Expr, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (ex *executor) stmt(s ast.Stmt) error {
	if ex.retSeen {
		return ex.failf("statement after return")
	}
	switch st := s.(type) {
	case *ast.Block:
		for _, sub := range st.Stmts {
			if err := ex.stmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *ast.DeclStmt:
		t := ex.env.Prog.DeclType[st]
		if _, isArr := t.(types.Array); isArr {
			ex.locals[st.Name] = Var{Name: ex.tag + ":undef:" + st.Name}
		} else {
			ex.locals[st.Name] = Var{Name: ex.tag + ":undef:" + st.Name}
		}
		if st.Init != nil {
			v, err := ex.eval(st.Init)
			if err != nil {
				return err
			}
			ex.locals[st.Name] = v
		}
		return nil
	case *ast.ExprStmt:
		_, err := ex.eval(st.X)
		return err
	case *ast.IfStmt:
		return ex.ifStmt(st)
	case *ast.ForStmt:
		return ex.forStmt(st)
	case *ast.WhileStmt:
		return ex.failf("while loops are not symbolically executable")
	case *ast.ReturnStmt:
		if st.X != nil {
			if _, err := ex.eval(st.X); err != nil {
				return err
			}
		}
		if len(ex.guard) > 0 {
			return ex.failf("conditional return")
		}
		ex.retSeen = true
		return nil
	}
	return ex.failf("unsupported statement")
}

func (ex *executor) ifStmt(st *ast.IfStmt) error {
	c, err := ex.eval(st.Cond)
	if err != nil {
		return err
	}
	c = Simplify(c)
	if b, ok := c.(Bool); ok {
		// Statically decided branch.
		if b.V {
			return ex.stmt(st.Then)
		}
		if st.Else != nil {
			return ex.stmt(st.Else)
		}
		return nil
	}

	pre := ex.snap()

	ex.guard = append(ex.guard, c)
	if err := ex.stmt(st.Then); err != nil {
		return err
	}
	thenState := ex.snap()
	thenRet := ex.retSeen
	ex.guard = ex.guard[:len(ex.guard)-1]
	if thenRet {
		return ex.failf("conditional return")
	}

	ex.restore(pre)
	notC := Simplify(mkNot(c))
	ex.guard = append(ex.guard, notC)
	if st.Else != nil {
		if err := ex.stmt(st.Else); err != nil {
			return err
		}
		if ex.retSeen {
			return ex.failf("conditional return")
		}
	}
	elseState := ex.snap()
	ex.guard = ex.guard[:len(ex.guard)-1]

	// Merge: differing bindings become conditional expressions.
	ex.ivars = mergeState(c, thenState.ivars, elseState.ivars)
	ex.locals = mergeState(c, thenState.locals, elseState.locals)
	ex.params = mergeState(c, thenState.params, elseState.params)
	return nil
}

func mergeState(c Expr, t, f map[string]Expr) map[string]Expr {
	out := make(map[string]Expr, len(t))
	for k, tv := range t {
		fv, ok := f[k]
		if !ok || tv.Key() == fv.Key() {
			out[k] = tv
			continue
		}
		out[k] = Simplify(mkCond(c, tv, fv))
	}
	for k, fv := range f {
		if _, ok := t[k]; !ok {
			out[k] = fv
		}
	}
	return out
}

// evalConstInt evaluates an expression to a compile-time integer if
// possible (used for loop bounds during unrolling).
func (ex *executor) evalConstInt(e ast.Expr) (int64, bool) {
	v, err := ex.eval(e)
	if err != nil {
		return 0, false
	}
	n, ok := Simplify(v).(Num)
	if !ok || !n.IsInt {
		return 0, false
	}
	return int64(n.V), true
}
