package symbolic

import "sort"

// Simplify rewrites an expression to the canonical form used for
// isomorphism comparison: subtractions are already represented as
// additions of negations by the executor; here we fold constants,
// normalize negation, flatten associative-commutative operators into
// sorted n-ary applications, apply boolean/conditional rules, distribute
// products over (small) sums, and canonicalize array-update chains.
//
// Simplification is memoized per node in the intern table's epoch:
// because composite nodes are hash-consed, a subterm shared by many
// expressions is simplified once and every later Simplify of the same
// node is a map hit. The memo key is node identity, so uninterned
// composite literals still simplify correctly (they just memoize under
// their own pointer). A node whose children all simplify to themselves
// is returned as-is rather than rebuilt.
func Simplify(e Expr) Expr {
	switch e.(type) {
	case nil, Num, Bool, Null, Extent, Var:
		return e
	}
	t := tab()
	if v, ok := t.simplify.Load(e); ok {
		return v.(Expr)
	}
	out := simplifyNode(e)
	if _, loaded := t.simplify.LoadOrStore(e, out); !loaded {
		t.bump()
	}
	return out
}

func simplifyNode(e Expr) Expr {
	switch x := e.(type) {
	case *Neg:
		return simplifyNeg(Simplify(x.X))

	case *Not:
		return simplifyNot(Simplify(x.X))

	case *Nary:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Simplify(a)
		}
		return simplifyNary(x.Op, args)

	case *Bin:
		return simplifyBin(x.Op, Simplify(x.L), Simplify(x.R))

	case *Call:
		changed := false
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Simplify(a)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			return x
		}
		return mkCall(x.Fn, args)

	case *Cond:
		return simplifyCond(Simplify(x.C), Simplify(x.T), Simplify(x.F))

	case *ArrUpd:
		return simplifyArrUpd(Simplify(x.Arr), x.Op, Simplify(x.Operand))

	case *ArrFill:
		if el := Simplify(x.Elem); el != x.Elem {
			return mkArrFill(el)
		}
		return x

	case *ArrStore:
		return simplifyArrStore(Simplify(x.Arr), Simplify(x.Idx), Simplify(x.Val))

	case *ArrSel:
		return simplifyArrSel(Simplify(x.Arr), Simplify(x.Idx))

	case *AccumAt:
		return canonAccum(Simplify(x.Arr), x.Op, Simplify(x.Idx), Simplify(x.Delta))
	}
	return e
}

func simplifyNeg(x Expr) Expr {
	switch v := x.(type) {
	case Num:
		return Num{V: -v.V, IsInt: v.IsInt}
	case *Neg:
		return v.X
	case *Nary:
		if v.Op == OpAdd {
			args := make([]Expr, len(v.Args))
			for i, a := range v.Args {
				args[i] = simplifyNeg(a)
			}
			return simplifyNary(OpAdd, args)
		}
		if v.Op == OpMul {
			// Fold the sign into the constant factor if present.
			args := append([]Expr{Num{V: -1, IsInt: true}}, v.Args...)
			return simplifyNary(OpMul, args)
		}
	}
	return mkNeg(x)
}

func simplifyNot(x Expr) Expr {
	switch v := x.(type) {
	case Bool:
		return Bool{V: !v.V}
	case *Not:
		return v.X
	case *Bin:
		// Flip comparisons so guards canonicalize.
		switch v.Op {
		case OpLt:
			return simplifyBin(OpGe, v.L, v.R)
		case OpLe:
			return simplifyBin(OpGt, v.L, v.R)
		case OpGt:
			return simplifyBin(OpLe, v.L, v.R)
		case OpGe:
			return simplifyBin(OpLt, v.L, v.R)
		case OpEq:
			return simplifyBin(OpNe, v.L, v.R)
		case OpNe:
			return simplifyBin(OpEq, v.L, v.R)
		}
	}
	return mkNot(x)
}

// simplifyNary assumes args are already simplified.
func simplifyNary(op Op, args []Expr) Expr {
	// Flatten nested applications of the same operator.
	flat := make([]Expr, 0, len(args))
	for _, a := range args {
		if n, ok := a.(*Nary); ok && n.Op == op {
			flat = append(flat, n.Args...)
		} else {
			flat = append(flat, a)
		}
	}

	switch op {
	case OpAdd, OpMul:
		return simplifyArith(op, flat)
	case OpAnd, OpOr:
		return simplifyBool(op, flat)
	}
	return mkNary(op, flat)
}

func simplifyArith(op Op, flat []Expr) Expr {
	// Distribute multiplication over small sums.
	if op == OpMul {
		for i, a := range flat {
			if add, ok := a.(*Nary); ok && add.Op == OpAdd && len(flat) <= 8 && len(add.Args) <= 8 {
				rest := make([]Expr, 0, len(flat)-1)
				rest = append(rest, flat[:i]...)
				rest = append(rest, flat[i+1:]...)
				terms := make([]Expr, len(add.Args))
				for j, t := range add.Args {
					terms[j] = simplifyNary(OpMul, append([]Expr{t}, rest...))
				}
				return simplifyNary(OpAdd, terms)
			}
		}
	}

	// Fold numeric constants.
	acc := 1.0
	isInt := true
	if op == OpAdd {
		acc = 0.0
	}
	hasConst := false
	rest := make([]Expr, 0, len(flat))
	for _, a := range flat {
		if n, ok := a.(Num); ok {
			hasConst = true
			isInt = isInt && n.IsInt
			if op == OpAdd {
				acc += n.V
			} else {
				acc *= n.V
			}
			continue
		}
		rest = append(rest, a)
	}
	if op == OpMul && hasConst && acc == 0 {
		// The paper's simplifier ignores floating-point anomalies
		// (footnote 1); 0·x ⇒ 0.
		return Num{V: 0, IsInt: isInt}
	}
	identity := (op == OpAdd && acc == 0) || (op == OpMul && acc == 1)
	if hasConst && !identity {
		rest = append(rest, Num{V: acc, IsInt: isInt})
	}
	if len(rest) == 0 {
		return Num{V: acc, IsInt: isInt}
	}
	if len(rest) == 1 {
		return rest[0]
	}
	sortExprs(rest)
	return mkNary(op, rest)
}

func simplifyBool(op Op, flat []Expr) Expr {
	// Identity/annihilator constants, idempotence, complements.
	seen := make(map[string]Expr)
	rest := make([]Expr, 0, len(flat))
	for _, a := range flat {
		if b, ok := a.(Bool); ok {
			if op == OpAnd && !b.V {
				return Bool{V: false}
			}
			if op == OpOr && b.V {
				return Bool{V: true}
			}
			continue // identity element
		}
		k := a.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = a
		rest = append(rest, a)
	}
	// Complement detection: x together with !x.
	for _, a := range rest {
		neg := simplifyNot(a)
		if _, ok := seen[neg.Key()]; ok {
			if op == OpAnd {
				return Bool{V: false}
			}
			return Bool{V: true}
		}
	}
	if len(rest) == 0 {
		return Bool{V: op == OpAnd}
	}
	if len(rest) == 1 {
		return rest[0]
	}
	sortExprs(rest)
	return mkNary(op, rest)
}

func simplifyBin(op Op, l, r Expr) Expr {
	ln, lok := l.(Num)
	rn, rok := r.(Num)
	if lok && rok {
		switch op {
		case OpDiv:
			if rn.V != 0 {
				if ln.IsInt && rn.IsInt {
					return Num{V: float64(int64(ln.V) / int64(rn.V)), IsInt: true}
				}
				return Num{V: ln.V / rn.V}
			}
		case OpMod:
			if rn.V != 0 && ln.IsInt && rn.IsInt {
				return Num{V: float64(int64(ln.V) % int64(rn.V)), IsInt: true}
			}
		case OpLt:
			return Bool{V: ln.V < rn.V}
		case OpLe:
			return Bool{V: ln.V <= rn.V}
		case OpGt:
			return Bool{V: ln.V > rn.V}
		case OpGe:
			return Bool{V: ln.V >= rn.V}
		case OpEq:
			return Bool{V: ln.V == rn.V}
		case OpNe:
			return Bool{V: ln.V != rn.V}
		}
	}
	// Canonicalize comparison direction: a > b ⇒ b < a, a >= b ⇒ b <= a.
	switch op {
	case OpGt:
		return binOrSame(OpLt, r, l)
	case OpGe:
		return binOrSame(OpLe, r, l)
	case OpLt, OpLe:
		return binOrSame(op, l, r)
	case OpEq, OpNe:
		if l.Key() == r.Key() {
			return Bool{V: op == OpEq}
		}
		if r.Key() < l.Key() {
			l, r = r, l
		}
	case OpDiv:
		if rn, ok := r.(Num); ok && rn.V == 1 {
			return l
		}
	}
	return mkBin(op, l, r)
}

// binOrSame folds reflexive comparisons: x < x ⇒ false, x <= x ⇒ true.
func binOrSame(op Op, l, r Expr) Expr {
	if l.Key() == r.Key() {
		return Bool{V: op == OpLe}
	}
	return mkBin(op, l, r)
}

// isBoolish reports whether an expression is boolean-valued, enabling
// the Cond→And/Or rewrites.
func isBoolish(e Expr) bool {
	switch x := e.(type) {
	case Bool, *Not:
		return true
	case *Nary:
		return x.Op == OpAnd || x.Op == OpOr
	case *Bin:
		switch x.Op {
		case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
			return true
		}
	}
	return false
}

func simplifyCond(c, t, f Expr) Expr {
	if b, ok := c.(Bool); ok {
		if b.V {
			return t
		}
		return f
	}
	if t.Key() == f.Key() {
		return t
	}
	if isBoolish(t) || isBoolish(f) {
		tb, tok := t.(Bool)
		fb, fok := f.(Bool)
		switch {
		case tok && tb.V: // c ? true : f  ⇒  c || f
			return simplifyNary(OpOr, []Expr{c, f})
		case tok && !tb.V: // c ? false : f  ⇒  !c && f
			return simplifyNary(OpAnd, []Expr{simplifyNot(c), f})
		case fok && fb.V: // c ? t : true  ⇒  !c || t
			return simplifyNary(OpOr, []Expr{simplifyNot(c), t})
		case fok && !fb.V: // c ? t : false  ⇒  c && t
			return simplifyNary(OpAnd, []Expr{c, t})
		}
	}
	// Factor common additive terms out of the branches:
	// cond(c, x+a, x+b) ⇒ x + cond(c, a, b). This canonicalizes the
	// accumulate-under-a-guard pattern that guarded recursion (the
	// §7.2 loop replacement) produces, so that
	// cond(c1,t+v1,t)+... sorts into t + cond(c1,v1,0) + cond(c2,v2,0).
	if factored, ok := factorCondAdd(c, t, f); ok {
		return factored
	}
	// Canonicalize the branch order using the condition's negation.
	if n, ok := c.(*Not); ok {
		return mkCond(n.X, f, t)
	}
	return mkCond(c, t, f)
}

// addTerms flattens an expression into additive terms.
func addTerms(e Expr) []Expr {
	if n, ok := e.(*Nary); ok && n.Op == OpAdd {
		return n.Args
	}
	return []Expr{e}
}

// factorCondAdd extracts the common additive terms of a conditional's
// branches.
func factorCondAdd(c, t, f Expr) (Expr, bool) {
	tt := addTerms(t)
	ft := addTerms(f)
	if len(tt) == 1 && len(ft) == 1 {
		return nil, false
	}
	// Multiset intersection by canonical key.
	counts := make(map[string]int, len(ft))
	for _, x := range ft {
		counts[x.Key()]++
	}
	var common []Expr
	restT := make([]Expr, 0, len(tt))
	for _, x := range tt {
		if counts[x.Key()] > 0 {
			counts[x.Key()]--
			common = append(common, x)
			continue
		}
		restT = append(restT, x)
	}
	if len(common) == 0 {
		return nil, false
	}
	restF := make([]Expr, 0, len(ft))
	counts2 := make(map[string]int, len(common))
	for _, x := range common {
		counts2[x.Key()]++
	}
	for _, x := range ft {
		if counts2[x.Key()] > 0 {
			counts2[x.Key()]--
			continue
		}
		restF = append(restF, x)
	}
	zero := Expr(Num{V: 0, IsInt: true})
	var newT, newF Expr
	switch len(restT) {
	case 0:
		newT = zero
	case 1:
		newT = restT[0]
	default:
		newT = simplifyNary(OpAdd, restT)
	}
	switch len(restF) {
	case 0:
		newF = zero
	case 1:
		newF = restF[0]
	default:
		newF = simplifyNary(OpAdd, restF)
	}
	inner := simplifyCond(c, newT, newF)
	return simplifyNary(OpAdd, append(common, inner)), true
}

// simplifyArrUpd canonicalizes chains of elementwise updates with the
// same commutative operator by sorting the operands.
func simplifyArrUpd(arr Expr, op Op, operand Expr) Expr {
	if !op.Commutative() {
		return mkArrUpd(arr, op, operand)
	}
	// Collect the chain.
	operands := []Expr{operand}
	base := arr
	for {
		u, ok := base.(*ArrUpd)
		if !ok || u.Op != op {
			break
		}
		operands = append(operands, u.Operand)
		base = u.Arr
	}
	sortExprs(operands)
	out := base
	for i := len(operands) - 1; i >= 0; i-- {
		out = mkArrUpd(out, op, operands[i])
	}
	return out
}

// simplifyArrStore canonicalizes store chains: accumulation stores
// a[i] = a[i] ⊕ d rewrite to AccumAt (which commutes); adjacent plain
// stores to distinct constant indices are ordered by index; a store
// shadowed by a later store to the same index is dropped.
func simplifyArrStore(arr, idx, val Expr) Expr {
	if acc, ok := recognizeAccum(arr, idx, val); ok {
		return acc
	}
	if inner, ok := arr.(*ArrStore); ok {
		ii, iok := inner.Idx.(Num)
		oi, ook := idx.(Num)
		if iok && ook {
			if ii.V == oi.V {
				// The outer store shadows the inner one.
				return simplifyArrStore(inner.Arr, idx, val)
			}
			if oi.V < ii.V {
				// Reorder: stores to distinct indices commute.
				return mkArrStore(
					simplifyArrStore(inner.Arr, idx, val),
					inner.Idx,
					inner.Val,
				)
			}
		}
	}
	return mkArrStore(arr, idx, val)
}

func simplifyArrSel(arr, idx Expr) Expr {
	switch a := arr.(type) {
	case *ArrFill:
		return a.Elem
	case *ArrStore:
		si, sok := a.Idx.(Num)
		qi, qok := idx.(Num)
		if sok && qok {
			if si.V == qi.V {
				return a.Val
			}
			return simplifyArrSel(a.Arr, idx)
		}
		if a.Idx.Key() == idx.Key() {
			return a.Val
		}
	case *AccumAt:
		if a.Idx.Key() == idx.Key() {
			return simplifyNary(a.Op, []Expr{simplifyArrSel(a.Arr, idx), a.Delta})
		}
		ai, aok := a.Idx.(Num)
		qi, qok := idx.(Num)
		if aok && qok && ai.V != qi.V {
			return simplifyArrSel(a.Arr, idx)
		}
	}
	return mkArrSel(arr, idx)
}

// recognizeAccum matches a store of the form a[i] = a[i] ⊕ d (with the
// select on the same pre-store array value and index) and yields the
// commuting, canonically ordered AccumAt form. Because ArrSel folds
// through AccumAt chains (sel(accum(a,i,δ), i) ⇒ sel(a,i)+δ), the
// select may also reference the chain's base array; in that additive
// case the store overwrites index i with base[i]+D, which is the
// accumulation of D minus the chain's existing deltas at i.
func recognizeAccum(arr, idx, val Expr) (Expr, bool) {
	var op Op
	var args []Expr
	switch v := val.(type) {
	case *Nary:
		if !v.Op.Commutative() || (v.Op != OpAdd && v.Op != OpMul) {
			return nil, false
		}
		op = v.Op
		args = v.Args
	case *ArrSel:
		// A degenerate accumulation (delta folded to the identity):
		// a[i] = a[i] + 0.
		op = OpAdd
		args = []Expr{v}
	default:
		return nil, false
	}
	base, entries := accumChain(arr)
	selAt := -1
	viaBase := false
	for i, a := range args {
		sel, isSel := a.(*ArrSel)
		if !isSel || sel.Idx.Key() != idx.Key() {
			continue
		}
		if sel.Arr.Key() == arr.Key() {
			selAt = i
			break
		}
		if op == OpAdd && sel.Arr.Key() == base.Key() {
			selAt = i
			viaBase = true
			break
		}
	}
	if selAt < 0 {
		return nil, false
	}
	rest := make([]Expr, 0, len(args)+4)
	rest = append(rest, args[:selAt]...)
	rest = append(rest, args[selAt+1:]...)
	if viaBase {
		// a[i] = base[i] + D over a chain with deltas δ at i:
		// equivalently a[i] = a[i] + (D − Σδ). Only additive chains with
		// uniformly additive entries support this.
		for _, e := range entries {
			if e.op != OpAdd {
				return nil, false
			}
			if e.idx.Key() == idx.Key() {
				rest = append(rest, mkNeg(e.delta))
			}
		}
	}
	var delta Expr
	if len(rest) == 1 {
		delta = Simplify(rest[0])
	} else {
		delta = Simplify(mkNary(op, rest))
	}
	return canonAccum(arr, op, idx, delta), true
}

// accumEntry is one accumulation step of a chain.
type accumEntry struct {
	op    Op
	idx   Expr
	delta Expr
}

// accumChain decomposes nested AccumAt applications into the base array
// and the entry list (outermost first).
func accumChain(arr Expr) (Expr, []accumEntry) {
	var entries []accumEntry
	base := arr
	for {
		a, ok := base.(*AccumAt)
		if !ok {
			return base, entries
		}
		entries = append(entries, accumEntry{op: a.Op, idx: a.Idx, delta: a.Delta})
		base = a.Arr
	}
}

// canonAccum sorts chains of same-operator accumulations by
// (index, delta) canonical key — accumulations into array elements
// commute regardless of index equality.
func canonAccum(arr Expr, op Op, idx, delta Expr) Expr {
	type entry struct{ idx, delta Expr }
	entries := []entry{{idx, delta}}
	base := arr
	for {
		inner, ok := base.(*AccumAt)
		if !ok || inner.Op != op {
			break
		}
		entries = append(entries, entry{inner.Idx, inner.Delta})
		base = inner.Arr
	}
	sort.Slice(entries, func(i, j int) bool {
		ki := entries[i].idx.Key() + "\x00" + entries[i].delta.Key()
		kj := entries[j].idx.Key() + "\x00" + entries[j].delta.Key()
		return ki < kj
	})
	out := base
	for i := len(entries) - 1; i >= 0; i-- {
		out = mkAccumAt(out, op, entries[i].idx, entries[i].delta)
	}
	return out
}

func sortExprs(xs []Expr) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].Key() < xs[j].Key() })
}

// SimplifyMX simplifies an invocation expression's components, reusing
// unchanged pieces.
func SimplifyMX(m MX) MX {
	out := MX{
		Guard:  Simplify(m.Guard),
		Recv:   Simplify(m.Recv),
		Method: m.Method,
		Loop:   m.Loop,
	}
	if m.Loop != nil {
		out.Loop = &LoopSpec{
			Var:  m.Loop.Var,
			From: Simplify(m.Loop.From),
			To:   Simplify(m.Loop.To),
			Step: Simplify(m.Loop.Step),
		}
	}
	changed := false
	args := make([]Expr, len(m.Args))
	for i, a := range m.Args {
		args[i] = Simplify(a)
		if args[i] != a {
			changed = true
		}
	}
	if changed {
		out.Args = args
	} else {
		out.Args = m.Args
	}
	return out
}

// SimplifyMultiset simplifies every invocation of the multiset.
func SimplifyMultiset(ms Multiset) Multiset {
	out := make(Multiset, 0, len(ms))
	for _, m := range ms {
		sm := SimplifyMX(m)
		if sm.Guard != nil && sm.Guard.Key() == "false" {
			continue
		}
		out = append(out, sm)
	}
	return out
}
