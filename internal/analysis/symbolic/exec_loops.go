package symbolic

import (
	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
)

// maxUnroll bounds the fallback loop unrolling.
const maxUnroll = 64

// forStmt executes a for loop: first the two recognized closed forms of
// §4.8.1 (whole-array elementwise updates and loop-form invocations),
// then constant-bound unrolling as a fallback.
func (ex *executor) forStmt(st *ast.ForStmt) error {
	if done, err := ex.tryArrayForm(st); done || err != nil {
		return err
	}
	if done, err := ex.tryInvocationForm(st); done || err != nil {
		return err
	}
	return ex.unrollLoop(st)
}

// loopHeader matches `for (l = from; l < bound; l++/l += step)` and
// returns the loop variable and the pieces. The loop variable must be a
// local.
func (ex *executor) loopHeader(st *ast.ForStmt) (v string, from, bound ast.Expr, step int64, ok bool) {
	switch init := st.Init.(type) {
	case *ast.DeclStmt:
		v = init.Name
		from = init.Init
	case *ast.ExprStmt:
		asn, isAsn := init.X.(*ast.Assign)
		if !isAsn || asn.Op != token.ASSIGN {
			return "", nil, nil, 0, false
		}
		id, isID := asn.LHS.(*ast.Ident)
		if !isID || id.Sym != ast.SymLocal {
			return "", nil, nil, 0, false
		}
		v = id.Name
		from = asn.RHS
	default:
		return "", nil, nil, 0, false
	}
	if from == nil || st.Cond == nil || st.Post == nil {
		return "", nil, nil, 0, false
	}
	cmp, isCmp := st.Cond.(*ast.Binary)
	if !isCmp || cmp.Op != token.LT {
		return "", nil, nil, 0, false
	}
	cid, isID := cmp.X.(*ast.Ident)
	if !isID || cid.Name != v {
		return "", nil, nil, 0, false
	}
	bound = cmp.Y
	post, isPost := st.Post.(*ast.ExprStmt)
	if !isPost {
		return "", nil, nil, 0, false
	}
	pasn, isAsn := post.X.(*ast.Assign)
	if !isAsn {
		return "", nil, nil, 0, false
	}
	pid, isID := pasn.LHS.(*ast.Ident)
	if !isID || pid.Name != v {
		return "", nil, nil, 0, false
	}
	switch pasn.Op {
	case token.PLUSEQ:
		lit, isLit := pasn.RHS.(*ast.IntLit)
		if !isLit {
			return "", nil, nil, 0, false
		}
		step = lit.Value
	case token.ASSIGN:
		// l = l + step
		add, isAdd := pasn.RHS.(*ast.Binary)
		if !isAdd || add.Op != token.PLUS {
			return "", nil, nil, 0, false
		}
		aid, isID := add.X.(*ast.Ident)
		lit, isLit := add.Y.(*ast.IntLit)
		if !isID || aid.Name != v || !isLit {
			return "", nil, nil, 0, false
		}
		step = lit.Value
	default:
		return "", nil, nil, 0, false
	}
	if step <= 0 {
		return "", nil, nil, 0, false
	}
	return v, from, bound, step, true
}

// mentionsIdent reports whether the expression mentions the named
// identifier.
func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// singleStmt unwraps one-statement blocks.
func singleStmt(s ast.Stmt) ast.Stmt {
	for {
		b, ok := s.(*ast.Block)
		if !ok {
			return s
		}
		if len(b.Stmts) != 1 {
			return s
		}
		s = b.Stmts[0]
	}
}

// tryArrayForm recognizes the paper's first loop form:
//
//	for (l = 0; l < bound; l++)  v[l] = v[l] ⊕ e;   (or v[l] ⊕= e, v[l] = e)
//
// where v is an array variable and e is loop-invariant (possibly w[l]
// with w an array holding an extent constant value, combined
// elementwise).
func (ex *executor) tryArrayForm(st *ast.ForStmt) (bool, error) {
	v, from, _, step, ok := ex.loopHeader(st)
	if !ok || step != 1 {
		return false, nil
	}
	if lit, isLit := from.(*ast.IntLit); !isLit || lit.Value != 0 {
		return false, nil
	}
	body, ok := singleStmt(st.Body).(*ast.ExprStmt)
	if !ok {
		return false, nil
	}
	asn, ok := body.X.(*ast.Assign)
	if !ok {
		return false, nil
	}
	idx, ok := asn.LHS.(*ast.IndexExpr)
	if !ok {
		return false, nil
	}
	iid, ok := idx.Index.(*ast.Ident)
	if !ok || iid.Name != v {
		return false, nil
	}
	// The target array: an instance-variable array, local array, or
	// reference-parameter array.
	target, tKind := ex.lvalueArray(idx.X)
	if tKind == arrNone {
		return false, nil
	}

	// Apply an elementwise update v = v ⊕ operand (negating for
	// subtraction, which is represented as addition of the negation).
	apply := func(op Op, operandAST ast.Expr, negate bool) (bool, error) {
		operand, err := ex.loopOperand(operandAST, v)
		if err != nil || operand == nil {
			return false, err
		}
		if negate {
			operand = Simplify(mkNeg(operand))
		}
		ex.storeArray(target, tKind, mkArrUpd(
			ex.loadArray(target, tKind), op, Simplify(operand),
		))
		return true, nil
	}
	fill := func(e ast.Expr) (bool, error) {
		val, err := ex.eval(e)
		if err != nil {
			return false, err
		}
		ex.storeArray(target, tKind, mkArrFill(Simplify(val)))
		return true, nil
	}

	switch asn.Op {
	case token.PLUSEQ:
		return apply(OpAdd, asn.RHS, false)
	case token.STAREQ:
		return apply(OpMul, asn.RHS, false)
	case token.MINUSEQ:
		return apply(OpAdd, asn.RHS, true)
	case token.SLASHEQ:
		return apply(OpDiv, asn.RHS, false)
	case token.ASSIGN:
		// v[l] = v[l] ⊕ e,  v[l] = w[l]  (copy),  or  v[l] = e  (fill).
		if bin, isBin := asn.RHS.(*ast.Binary); isBin {
			if lhsIdx, isIdx := bin.X.(*ast.IndexExpr); isIdx && sameArrayRef(lhsIdx, idx) {
				switch bin.Op {
				case token.PLUS:
					return apply(OpAdd, bin.Y, false)
				case token.STAR:
					return apply(OpMul, bin.Y, false)
				case token.MINUS:
					return apply(OpAdd, bin.Y, true)
				case token.SLASH:
					return apply(OpDiv, bin.Y, false)
				}
				return false, nil
			}
		}
		if wIdx, isIdx := asn.RHS.(*ast.IndexExpr); isIdx {
			if wid, isID := wIdx.Index.(*ast.Ident); isID && wid.Name == v {
				// v[l] = w[l]: whole-array copy.
				src, err := ex.loopOperand(asn.RHS, v)
				if err != nil || src == nil {
					return false, err
				}
				ex.storeArray(target, tKind, src)
				return true, nil
			}
			return false, nil
		}
		if !mentionsIdent(asn.RHS, v) {
			return fill(asn.RHS)
		}
		return false, nil
	}
	return false, nil
}

// loopOperand evaluates the ⊕-operand of the array loop form: either a
// loop-invariant scalar expression or w[l] for an array w, which
// denotes w's whole-array value combined elementwise.
func (ex *executor) loopOperand(e ast.Expr, loopVar string) (Expr, error) {
	if idx, ok := e.(*ast.IndexExpr); ok {
		if iid, isID := idx.Index.(*ast.Ident); isID && iid.Name == loopVar {
			arr, kind := ex.lvalueArray(idx.X)
			if kind == arrNone {
				return nil, nil
			}
			return ex.loadArray(arr, kind), nil
		}
	}
	if mentionsIdent(e, loopVar) {
		return nil, nil
	}
	return ex.eval(e)
}

// sameArrayRef reports whether two index expressions reference the same
// array with the same index variable (syntactically).
func sameArrayRef(a, b *ast.IndexExpr) bool {
	aid, aok := a.Index.(*ast.Ident)
	bid, bok := b.Index.(*ast.Ident)
	if !aok || !bok || aid.Name != bid.Name {
		return false
	}
	return arrayRefKey(a.X) == arrayRefKey(b.X) && arrayRefKey(a.X) != ""
}

func arrayRefKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.FieldAccess:
		base := arrayRefKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Name
	case *ast.ThisExpr:
		return "this"
	}
	return ""
}

// arrKind identifies where an array value lives.
type arrKind int

const (
	arrNone arrKind = iota
	arrLocal
	arrParam
	arrIvar
)

// lvalueArray resolves an array-valued expression to its storage slot.
func (ex *executor) lvalueArray(e ast.Expr) (string, arrKind) {
	switch x := e.(type) {
	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal:
			return x.Name, arrLocal
		case ast.SymParam:
			return x.Name, arrParam
		case ast.SymField:
			return x.FieldClass + "." + x.Name, arrIvar
		}
	case *ast.FieldAccess:
		// this->field arrays.
		if _, isThis := x.X.(*ast.ThisExpr); isThis {
			return x.DeclClass + "." + x.Name, arrIvar
		}
	}
	return "", arrNone
}

func (ex *executor) loadArray(name string, kind arrKind) Expr {
	switch kind {
	case arrLocal:
		return ex.locals[name]
	case arrParam:
		return ex.params[name]
	default:
		return ex.ivars[name]
	}
}

func (ex *executor) storeArray(name string, kind arrKind, v Expr) {
	switch kind {
	case arrLocal:
		ex.locals[name] = v
	case arrParam:
		ex.params[name] = v
	default:
		ex.ivars[name] = v
	}
}

// tryInvocationForm recognizes the paper's second loop form:
//
//	for (l = e1; l < e2; l += e3)  r->op(e5, ..., en);
//
// where the receiver and arguments are loop-invariant. The loop emits a
// single loop-form MX expression.
func (ex *executor) tryInvocationForm(st *ast.ForStmt) (bool, error) {
	v, from, bound, step, ok := ex.loopHeader(st)
	if !ok {
		return false, nil
	}
	body, okB := singleStmt(st.Body).(*ast.ExprStmt)
	if !okB {
		return false, nil
	}
	call, okC := body.X.(*ast.CallExpr)
	if !okC || call.Builtin || call.Site < 0 {
		return false, nil
	}
	if ex.env.Aux[call.Site] {
		return false, nil // auxiliary loops compute nothing visible
	}
	if call.Recv != nil && mentionsIdent(call.Recv, v) {
		return false, nil
	}
	for _, a := range call.Args {
		if mentionsIdent(a, v) {
			return false, nil
		}
	}
	fromE, err := ex.eval(from)
	if err != nil {
		return false, err
	}
	boundE, err := ex.eval(bound)
	if err != nil {
		return false, err
	}
	recv, args, err := ex.callParts(call)
	if err != nil {
		return false, err
	}
	site := ex.env.Prog.CallSites[call.Site]
	*ex.invoked = append(*ex.invoked, MX{
		Guard:  ex.curGuard(),
		Recv:   recv,
		Method: site.Callee.FullName(),
		Args:   args,
		Loop: &LoopSpec{
			Var:  v,
			From: Simplify(fromE),
			To:   Simplify(boundE),
			Step: Num{V: float64(step), IsInt: true},
		},
	})
	return true, nil
}

// unrollLoop executes a constant-bound loop by unrolling.
func (ex *executor) unrollLoop(st *ast.ForStmt) error {
	v, from, bound, step, ok := ex.loopHeader(st)
	if !ok {
		return ex.failf("loop not in a recognized form")
	}
	fromV, okF := ex.evalConstInt(from)
	boundV, okB := ex.evalConstInt(bound)
	if !okF || !okB {
		return ex.failf("loop bounds are not compile-time constants")
	}
	iters := (boundV - fromV + step - 1) / step
	if iters < 0 {
		iters = 0
	}
	if iters > maxUnroll {
		return ex.failf("loop too large to unroll (%d iterations)", iters)
	}
	// The loop variable may be a declared local or an existing one.
	if _, isDecl := st.Init.(*ast.DeclStmt); isDecl {
		ex.locals[v] = Num{V: float64(fromV), IsInt: true}
	}
	for i := fromV; i < boundV; i += step {
		ex.locals[v] = Num{V: float64(i), IsInt: true}
		if err := ex.stmt(st.Body); err != nil {
			return err
		}
	}
	ex.locals[v] = Num{V: float64(boundV), IsInt: true}
	return nil
}
