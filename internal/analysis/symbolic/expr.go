// Package symbolic implements the symbolic expressions of Figure 12 of
// Rinard & Diniz 1996, the symbolic execution of method pairs (§4.8.1),
// and the expression simplifier and isomorphism comparison (§4.8.2)
// used by the commutativity testing algorithm.
package symbolic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op is an operator in the symbolic expression language.
type Op int

// Operators. Add/Mul/And/Or are associative and commutative and appear
// only in n-ary form after simplification.
const (
	OpAdd Op = iota
	OpMul
	OpAnd
	OpOr
	OpDiv
	OpMod
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpMul:
		return "*"
	case OpAnd:
		return "&&"
	case OpOr:
		return "||"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	}
	return "?"
}

// Commutative reports whether the operator is associative-commutative.
func (o Op) Commutative() bool {
	return o == OpAdd || o == OpMul || o == OpAnd || o == OpOr
}

// Expr is a symbolic expression. Expressions are immutable; Key returns
// a canonical string used for structural (isomorphism) comparison after
// simplification.
//
// Leaf expressions (Num, Bool, Null, Extent, Var) are comparable value
// types. Composite expressions are pointer types hash-consed through
// the package's intern table: nodes built by the executor or the
// simplifier with identical canonical keys share one allocation, so
// `==` on Expr values is both safe and a cheap structural fast path.
// Composite literals constructed outside the package (`&Nary{...}`)
// are legal but uninterned; Key falls back to recomputing the
// rendering for them.
type Expr interface {
	Key() string
	expr()
}

// Num is a numeric literal.
type Num struct {
	V     float64
	IsInt bool
}

// Bool is a boolean literal.
type Bool struct{ V bool }

// Null is the NULL pointer literal.
type Null struct{}

// Extent is an opaque extent constant (§3.5.1): a value known to be the
// same whenever the operation executes within the extent. The ID keys
// equality.
type Extent struct{ ID string }

// Var is a symbolic variable: the old value of an instance variable,
// the receiver, a parameter of one of the executed invocations, or an
// undefined initial local value.
type Var struct{ Name string }

// Nary is an n-ary application of an associative-commutative operator.
type Nary struct {
	Op   Op
	Args []Expr
	key  string
}

// Bin is a binary non-commutative operator application.
type Bin struct {
	Op   Op
	L, R Expr
	key  string
}

// Neg is arithmetic negation.
type Neg struct {
	X   Expr
	key string
}

// Not is boolean negation.
type Not struct {
	X   Expr
	key string
}

// Call is a pure builtin application (sqrt, fabs, ...) or an
// uninterpreted operation such as a pointer cast ("cast:cell").
type Call struct {
	Fn   string
	Args []Expr
	key  string
}

// Cond is a conditional expression: C ? T : F.
type Cond struct {
	C, T, F Expr
	key     string
}

// ArrUpd is a whole-array elementwise update v = v ⊕ operand (the
// paper's first recognized loop form). Operand is either a scalar
// expression or an array-valued expression (a reference parameter or
// extent constant) combined elementwise.
type ArrUpd struct {
	Arr     Expr
	Op      Op
	Operand Expr
	key     string
}

// ArrFill is a whole-array elementwise store v[l] = e with e
// loop-invariant.
type ArrFill struct {
	Elem Expr
	key  string
}

// ArrStore is a single-element array store.
type ArrStore struct {
	Arr Expr
	Idx Expr
	Val Expr
	key string
}

// ArrSel is a single-element array read.
type ArrSel struct {
	Arr Expr
	Idx Expr
	key string
}

// AccumAt is a commutative accumulation into one array element:
// a[Idx] = a[Idx] ⊕ Delta. Chains of AccumAt with the same operator
// reorder freely (the array-expression rules of the companion paper
// [33]), which is what lets per-element reductions into shared arrays
// commute.
type AccumAt struct {
	Arr   Expr
	Op    Op
	Idx   Expr
	Delta Expr
	key   string
}

func (Num) expr()       {}
func (Bool) expr()      {}
func (Null) expr()      {}
func (Extent) expr()    {}
func (Var) expr()       {}
func (*Nary) expr()     {}
func (*Bin) expr()      {}
func (*Neg) expr()      {}
func (*Not) expr()      {}
func (*Call) expr()     {}
func (*Cond) expr()     {}
func (*ArrUpd) expr()   {}
func (*ArrFill) expr()  {}
func (*ArrStore) expr() {}
func (*ArrSel) expr()   {}
func (*AccumAt) expr()  {}

// Key implementations produce a canonical rendering; after Simplify,
// equal keys mean structurally isomorphic expressions. Interned nodes
// carry the rendering computed once at construction; uninterned
// literals recompute it on demand.

func (e Num) Key() string {
	if e.IsInt {
		return strconv.FormatInt(int64(e.V), 10)
	}
	return strconv.FormatFloat(e.V, 'g', -1, 64)
}

func (e Bool) Key() string {
	if e.V {
		return "true"
	}
	return "false"
}

func (Null) Key() string     { return "NULL" }
func (e Extent) Key() string { return "⟨" + e.ID + "⟩" }
func (e Var) Key() string    { return e.Name }

func naryKey(op Op, args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.Key()
	}
	return "(" + strings.Join(parts, " "+op.String()+" ") + ")"
}

func (e *Nary) Key() string {
	if e.key != "" {
		return e.key
	}
	return naryKey(e.Op, e.Args)
}

func binKey(op Op, l, r Expr) string {
	return "(" + l.Key() + " " + op.String() + " " + r.Key() + ")"
}

func (e *Bin) Key() string {
	if e.key != "" {
		return e.key
	}
	return binKey(e.Op, e.L, e.R)
}

func negKey(x Expr) string { return "(-" + x.Key() + ")" }
func notKey(x Expr) string { return "(!" + x.Key() + ")" }

func (e *Neg) Key() string {
	if e.key != "" {
		return e.key
	}
	return negKey(e.X)
}

func (e *Not) Key() string {
	if e.key != "" {
		return e.key
	}
	return notKey(e.X)
}

func callKey(fn string, args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.Key()
	}
	return fn + "(" + strings.Join(parts, ", ") + ")"
}

func (e *Call) Key() string {
	if e.key != "" {
		return e.key
	}
	return callKey(e.Fn, e.Args)
}

func condKey(c, t, f Expr) string {
	return "(" + c.Key() + " ? " + t.Key() + " : " + f.Key() + ")"
}

func (e *Cond) Key() string {
	if e.key != "" {
		return e.key
	}
	return condKey(e.C, e.T, e.F)
}

func arrUpdKey(arr Expr, op Op, operand Expr) string {
	return "upd(" + arr.Key() + " " + op.String() + "= " + operand.Key() + ")"
}

func (e *ArrUpd) Key() string {
	if e.key != "" {
		return e.key
	}
	return arrUpdKey(e.Arr, e.Op, e.Operand)
}

func arrFillKey(elem Expr) string { return "fill(" + elem.Key() + ")" }

func (e *ArrFill) Key() string {
	if e.key != "" {
		return e.key
	}
	return arrFillKey(e.Elem)
}

func arrStoreKey(arr, idx, val Expr) string {
	return "store(" + arr.Key() + ", " + idx.Key() + ", " + val.Key() + ")"
}

func (e *ArrStore) Key() string {
	if e.key != "" {
		return e.key
	}
	return arrStoreKey(e.Arr, e.Idx, e.Val)
}

func arrSelKey(arr, idx Expr) string {
	return "sel(" + arr.Key() + ", " + idx.Key() + ")"
}

func (e *ArrSel) Key() string {
	if e.key != "" {
		return e.key
	}
	return arrSelKey(e.Arr, e.Idx)
}

func accumAtKey(arr Expr, op Op, idx, delta Expr) string {
	return "accum(" + arr.Key() + "[" + idx.Key() + "] " +
		op.String() + "= " + delta.Key() + ")"
}

func (e *AccumAt) Key() string {
	if e.key != "" {
		return e.key
	}
	return accumAtKey(e.Arr, e.Op, e.Idx, e.Delta)
}

// Equal reports whether two expressions have identical canonical form.
// Interned nodes compare by pointer first.
func Equal(a, b Expr) bool {
	if a == b {
		return true
	}
	return a.Key() == b.Key()
}

// ---------------------------------------------------------------------
// Invocation expressions (MX)

// LoopSpec describes a loop-form invocation (the paper's second
// recognized loop form): the operation is invoked once per loop index.
type LoopSpec struct {
	Var      string
	From, To Expr
	Step     Expr
}

func (l *LoopSpec) key() string {
	if l == nil {
		return ""
	}
	return "for " + l.Var + "=" + l.From.Key() + ".." + l.To.Key() + " step " + l.Step.Key() + ": "
}

// MX is one invocation expression: an operation invoked with a guard
// condition (true if unconditional) and argument expressions, possibly
// iterated by a loop form.
type MX struct {
	Guard  Expr
	Recv   Expr
	Method string
	Args   []Expr
	Loop   *LoopSpec
}

// Key returns the canonical rendering of the invocation.
func (m MX) Key() string {
	var sb strings.Builder
	if m.Guard != nil && m.Guard.Key() != "true" {
		sb.WriteString("[" + m.Guard.Key() + "] ")
	}
	sb.WriteString(m.Loop.key())
	sb.WriteString(m.Recv.Key())
	sb.WriteString("->")
	sb.WriteString(m.Method)
	sb.WriteByte('(')
	parts := make([]string, len(m.Args))
	for i, a := range m.Args {
		parts[i] = a.Key()
	}
	sb.WriteString(strings.Join(parts, ", "))
	sb.WriteByte(')')
	return sb.String()
}

// Multiset is a multiset of invocation expressions.
type Multiset []MX

// Key returns the canonical rendering: simplified, guard-false entries
// dropped, sorted.
func (ms Multiset) Key() string {
	keys := make([]string, 0, len(ms))
	for _, m := range ms {
		if m.Guard != nil && m.Guard.Key() == "false" {
			continue
		}
		keys = append(keys, m.Key())
	}
	sort.Strings(keys)
	return strings.Join(keys, " ⊎ ")
}

// EqualMultisets reports whether the two multisets are equal after
// canonicalization.
func EqualMultisets(a, b Multiset) bool { return a.Key() == b.Key() }

// String helpers for diagnostics.
func (ms Multiset) String() string { return "{" + ms.Key() + "}" }

// Fmt renders an instance-variable binding map deterministically (used
// in reports and tests).
func Fmt(bindings map[string]Expr) string {
	names := make([]string, 0, len(bindings))
	for n := range bindings {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s ↦ %s", n, bindings[n].Key())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
