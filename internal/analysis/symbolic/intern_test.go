package symbolic_test

import (
	"sync"
	"testing"

	"commute/internal/analysis/symbolic"
)

// TestInternCanonicalizes: structurally equal composite expressions
// intern to the same node, so equality is pointer equality.
func TestInternCanonicalizes(t *testing.T) {
	mk := func() symbolic.Expr {
		return &symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{
			symbolic.Var{Name: "x"},
			&symbolic.Neg{X: symbolic.Var{Name: "y"}},
			symbolic.Num{V: 3, IsInt: true},
		}}
	}
	a, b := symbolic.Intern(mk()), symbolic.Intern(mk())
	if a != b {
		t.Fatalf("structurally equal expressions interned to distinct nodes: %s", a.Key())
	}
	if !symbolic.Equal(a, b) {
		t.Fatalf("interned nodes not Equal: %s", a.Key())
	}
	// Distinct structures must stay distinct.
	c := symbolic.Intern(&symbolic.Neg{X: symbolic.Var{Name: "x"}})
	if c == a {
		t.Fatalf("distinct expressions interned to the same node")
	}
}

// TestSimplifyReturnsOriginalWhenUnchanged: a node whose children
// simplify to themselves comes back as the very same node — no fresh
// argument slice, no rebuilt parent.
func TestSimplifyReturnsOriginalWhenUnchanged(t *testing.T) {
	// Call arguments are leaves: nothing to simplify.
	in := symbolic.Intern(&symbolic.Call{Fn: "f", Args: []symbolic.Expr{
		symbolic.Var{Name: "x"}, symbolic.Num{V: 2, IsInt: true},
	}})
	if out := symbolic.Simplify(in); out != in {
		t.Fatalf("Simplify rebuilt an already-simplified call: %s → %s", in.Key(), out.Key())
	}
	// Leaves short-circuit outright.
	leaf := symbolic.Var{Name: "v"}
	if out := symbolic.Simplify(leaf); out != symbolic.Expr(leaf) {
		t.Fatalf("Simplify rebuilt a leaf")
	}
}

// TestSimplifyMemoized: simplifying the same canonical node twice
// returns the identical result node, including from many goroutines at
// once (the memo publishes one result per node).
func TestSimplifyMemoized(t *testing.T) {
	e := symbolic.Intern(&symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{
		symbolic.Var{Name: "a"},
		&symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{
			symbolic.Var{Name: "b"}, symbolic.Num{V: 1, IsInt: true},
		}},
		symbolic.Num{V: 2, IsInt: true},
	}})
	first := symbolic.Simplify(e)
	const goroutines = 8
	results := make([]symbolic.Expr, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g] = symbolic.Simplify(e)
		}()
	}
	wg.Wait()
	for g, r := range results {
		if r != first {
			t.Fatalf("goroutine %d: Simplify returned a different node: %s vs %s", g, r.Key(), first.Key())
		}
	}
}
