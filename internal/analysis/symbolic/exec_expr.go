package symbolic

import (
	"strconv"

	"commute/internal/analysis/effects"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
	"commute/internal/frontend/types"
)

// constArgsOf implements the footnote-4 optimization: for each
// parameter, if every call site in the program passes the same literal,
// symbolic executions use the literal itself. Concurrent executions
// share the cache under env.mu.
func (env *Env) constArgsOf(m *types.Method) []Expr {
	env.mu.Lock()
	defer env.mu.Unlock()
	if v, ok := env.constArgs[m]; ok {
		return v
	}
	out := make([]Expr, len(m.Params))
	seen := false
	for _, cs := range env.Prog.CallSites {
		if cs.Callee != m {
			continue
		}
		for i, arg := range cs.Call.Args {
			if i >= len(out) {
				break
			}
			lit := literalExpr(arg)
			if !seen {
				out[i] = lit
			} else if out[i] != nil && (lit == nil || lit.Key() != out[i].Key()) {
				out[i] = nil
			}
		}
		seen = true
	}
	if !seen {
		for i := range out {
			out[i] = nil
		}
	}
	env.constArgs[m] = out
	return out
}

func literalExpr(e ast.Expr) Expr {
	switch x := e.(type) {
	case *ast.IntLit:
		return Num{V: float64(x.Value), IsInt: true}
	case *ast.FloatLit:
		return Num{V: x.Value}
	case *ast.BoolLit:
		return Bool{V: x.Value}
	case *ast.NullLit:
		return Null{}
	case *ast.Unary:
		if x.Op == token.MINUS {
			if inner := literalExpr(x.X); inner != nil {
				if n, ok := inner.(Num); ok {
					return Num{V: -n.V, IsInt: n.IsInt}
				}
			}
		}
	}
	return nil
}

// eval evaluates an expression symbolically, applying side effects
// (assignments, invocations) to the executor state.
func (ex *executor) eval(e ast.Expr) (Expr, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return Num{V: float64(x.Value), IsInt: true}, nil
	case *ast.FloatLit:
		return Num{V: x.Value}, nil
	case *ast.BoolLit:
		return Bool{V: x.Value}, nil
	case *ast.NullLit:
		return Null{}, nil
	case *ast.StringLit:
		return Var{Name: strconv.Quote(x.Value)}, nil
	case *ast.ThisExpr:
		return Var{Name: "this"}, nil
	case *ast.Ident:
		return ex.evalIdent(x)
	case *ast.FieldAccess:
		return ex.evalFieldAccess(x)
	case *ast.IndexExpr:
		arr, err := ex.eval(x.X)
		if err != nil {
			return nil, err
		}
		idx, err := ex.eval(x.Index)
		if err != nil {
			return nil, err
		}
		return mkArrSel(arr, idx), nil
	case *ast.Unary:
		v, err := ex.eval(x.X)
		if err != nil {
			return nil, err
		}
		if x.Op == token.MINUS {
			return mkNeg(v), nil
		}
		return mkNot(v), nil
	case *ast.Binary:
		return ex.evalBinary(x)
	case *ast.CastExpr:
		v, err := ex.eval(x.X)
		if err != nil {
			return nil, err
		}
		return mkCall("cast:"+x.ClassName, []Expr{v}), nil
	case *ast.Assign:
		return ex.evalAssign(x)
	case *ast.CallExpr:
		return ex.evalCall(x)
	case *ast.NewExpr:
		return nil, ex.failf("object creation is not symbolically executable")
	}
	return nil, ex.failf("unsupported expression")
}

func (ex *executor) evalIdent(x *ast.Ident) (Expr, error) {
	switch x.Sym {
	case ast.SymLocal:
		if v, ok := ex.locals[x.Name]; ok {
			return v, nil
		}
		v := Var{Name: ex.tag + ":undef:" + x.Name}
		ex.locals[x.Name] = v
		return v, nil
	case ast.SymParam:
		return ex.params[x.Name], nil
	case ast.SymConst:
		cv := ex.env.Prog.Consts[x.Name]
		if cv.IsInt {
			return Num{V: float64(cv.I), IsInt: true}, nil
		}
		return Num{V: cv.F}, nil
	case ast.SymField:
		if _, isObj := ex.env.Prog.TypeOf(x).(types.Object); isObj {
			// A nested object used as a receiver: identified by its
			// path from the shared receiver.
			return Var{Name: "this." + x.Name}, nil
		}
		key := x.FieldClass + "." + x.Name
		if v, ok := ex.ivars[key]; ok {
			return v, nil
		}
		v := Var{Name: "iv:" + key}
		ex.ivars[key] = v
		return v, nil
	case ast.SymGlobal:
		return Var{Name: "global:" + x.Name}, nil
	}
	return nil, ex.failf("unresolved identifier %s", x.Name)
}

// evalFieldAccess reads a field. Receiver fields come from the shared
// state; reads of other objects' fields (including globals) must be
// extent constants and become opaque extent-constant expressions keyed
// by their storage descriptor.
func (ex *executor) evalFieldAccess(x *ast.FieldAccess) (Expr, error) {
	if _, isObj := ex.env.Prog.TypeOf(x).(types.Object); isObj {
		base, err := ex.eval(x.X)
		if err != nil {
			return nil, err
		}
		return Var{Name: base.Key() + "." + x.Name}, nil
	}
	// this->field.
	if _, isThis := x.X.(*ast.ThisExpr); isThis {
		key := x.DeclClass + "." + x.Name
		if v, ok := ex.ivars[key]; ok {
			return v, nil
		}
		v := Var{Name: "iv:" + key}
		ex.ivars[key] = v
		return v, nil
	}
	// A field of another object (or of a nested object): legal only
	// when it holds an extent constant value. The opaque constant is
	// keyed by the storage descriptor *and* the base object expression:
	// reads of the same class-level storage through different pointers
	// denote different locations and must not compare equal.
	desc, ok := ex.fieldDescOf(x)
	if !ok {
		return nil, ex.failf("unanalyzable field access %s", x.Name)
	}
	if desc.ViaThis {
		// A nested-object field of the receiver read directly: it must
		// be extent constant (the object section cannot observe writes
		// through nested operations).
		norm := desc
		norm.ViaThis = false
		if !ex.env.EC.Covers(norm) {
			return nil, ex.failf("read of nested field %s that is not an extent constant", norm.Key())
		}
		return Extent{ID: "ec:" + norm.Key() + "@this"}, nil
	}
	if !ex.env.EC.Covers(desc) {
		return nil, ex.failf("read of %s which is not an extent constant", desc.Key())
	}
	base, err := ex.eval(x.X)
	if err != nil {
		return nil, err
	}
	return Extent{ID: "ec:" + desc.Key() + "@" + Simplify(base).Key()}, nil
}

// fieldDescOf resolves a field access to a storage descriptor using the
// local-effects resolver.
func (ex *executor) fieldDescOf(x *ast.FieldAccess) (effects.Desc, bool) {
	w := effects.NewResolver(ex.env.Prog, ex.m)
	return w.AccessDesc(x)
}

func (ex *executor) evalBinary(x *ast.Binary) (Expr, error) {
	l, err := ex.eval(x.X)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(x.Y)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case token.PLUS:
		return mkNary(OpAdd, []Expr{l, r}), nil
	case token.MINUS:
		return mkNary(OpAdd, []Expr{l, mkNeg(r)}), nil
	case token.STAR:
		return mkNary(OpMul, []Expr{l, r}), nil
	case token.SLASH:
		return mkBin(OpDiv, l, r), nil
	case token.PERCENT:
		return mkBin(OpMod, l, r), nil
	case token.LT:
		return mkBin(OpLt, l, r), nil
	case token.LEQ:
		return mkBin(OpLe, l, r), nil
	case token.GT:
		return mkBin(OpGt, l, r), nil
	case token.GEQ:
		return mkBin(OpGe, l, r), nil
	case token.EQ:
		return mkBin(OpEq, l, r), nil
	case token.NEQ:
		return mkBin(OpNe, l, r), nil
	case token.AND:
		return mkNary(OpAnd, []Expr{l, r}), nil
	case token.OR:
		return mkNary(OpOr, []Expr{l, r}), nil
	}
	return nil, ex.failf("unsupported operator %s", x.Op)
}

func (ex *executor) evalAssign(x *ast.Assign) (Expr, error) {
	rhs, err := ex.eval(x.RHS)
	if err != nil {
		return nil, err
	}
	if x.Op != token.ASSIGN {
		old, err := ex.eval(x.LHS)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case token.PLUSEQ:
			rhs = mkNary(OpAdd, []Expr{old, rhs})
		case token.MINUSEQ:
			rhs = mkNary(OpAdd, []Expr{old, mkNeg(rhs)})
		case token.STAREQ:
			rhs = mkNary(OpMul, []Expr{old, rhs})
		case token.SLASHEQ:
			rhs = mkBin(OpDiv, old, rhs)
		}
	}
	if err := ex.store(x.LHS, rhs); err != nil {
		return nil, err
	}
	return rhs, nil
}

// store writes a symbolic value to an lvalue.
func (ex *executor) store(lhs ast.Expr, v Expr) error {
	switch x := lhs.(type) {
	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal:
			ex.locals[x.Name] = v
			return nil
		case ast.SymParam:
			p := ex.m.ParamByName(x.Name)
			if p != nil && p.IsRef() {
				return ex.failf("write to reference parameter %s", x.Name)
			}
			// Value parameters are local copies.
			ex.params[x.Name] = v
			return nil
		case ast.SymField:
			ex.ivars[x.FieldClass+"."+x.Name] = v
			return nil
		}
	case *ast.FieldAccess:
		if _, isThis := x.X.(*ast.ThisExpr); isThis {
			ex.ivars[x.DeclClass+"."+x.Name] = v
			return nil
		}
		return ex.failf("write to a non-receiver field %s", x.Name)
	case *ast.IndexExpr:
		idx, err := ex.eval(x.Index)
		if err != nil {
			return err
		}
		name, kind := ex.lvalueArray(x.X)
		if kind == arrNone {
			return ex.failf("unanalyzable array store")
		}
		if kind == arrParam {
			return ex.failf("write to reference parameter array")
		}
		ex.storeArray(name, kind, mkArrStore(ex.loadArray(name, kind), Simplify(idx), v))
		return nil
	}
	return ex.failf("unanalyzable lvalue")
}

// evalCall handles builtin, auxiliary, and extent invocations.
func (ex *executor) evalCall(x *ast.CallExpr) (Expr, error) {
	if x.Builtin {
		b := types.Builtins[x.Method]
		if b != nil && b.IsIO {
			return nil, ex.failf("I/O in symbolically executed code")
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			v, err := ex.eval(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return mkCall(x.Method, args), nil
	}
	site := ex.env.Prog.CallSites[x.Site]
	if ex.env.Aux[x.Site] {
		return ex.evalAuxCall(x, site)
	}
	// Extent operation: record the invocation; its value may not be
	// consumed (extent operations are effectively void in the model).
	recv, args, err := ex.callParts(x)
	if err != nil {
		return nil, err
	}
	*ex.invoked = append(*ex.invoked, MX{
		Guard:  ex.curGuard(),
		Recv:   recv,
		Method: site.Callee.FullName(),
		Args:   args,
	})
	if !types.Equal(site.Callee.Ret, types.Basic(types.Void)) {
		// The checker cannot tell whether the value is used here; be
		// conservative only when it is (handled by callers that consume
		// the value — the statement context discards it).
	}
	return Var{Name: "void"}, nil
}

// callParts evaluates the receiver and argument expressions of a call.
func (ex *executor) callParts(x *ast.CallExpr) (Expr, []Expr, error) {
	var recv Expr = Var{Name: "this"}
	if x.Recv != nil {
		r, err := ex.eval(x.Recv)
		if err != nil {
			return nil, nil, err
		}
		recv = r
	}
	args := make([]Expr, len(x.Args))
	for i, a := range x.Args {
		v, err := ex.eval(a)
		if err != nil {
			return nil, nil, err
		}
		args[i] = v
	}
	return recv, args, nil
}

// evalAuxCall executes an auxiliary operation: its results are extent
// constant values — deterministic functions of the receiver, the value
// arguments, and extent constant state. The opaque constants are
// therefore keyed by (call site, receiver, argument values): two
// invocations (in either execution order) that reach the site with the
// same symbolic arguments produce the same constants, while invocations
// with different parameters produce distinct ones.
func (ex *executor) evalAuxCall(x *ast.CallExpr, site *types.CallSite) (Expr, error) {
	sig := "aux" + strconv.Itoa(x.Site)
	if x.Recv != nil {
		recv, err := ex.eval(x.Recv)
		if err != nil {
			return nil, err
		}
		sig += "@" + Simplify(recv).Key()
	}
	var refLocals []struct {
		local string
		param string
	}
	for i, a := range x.Args {
		if i < len(site.Callee.Params) && site.Callee.Params[i].IsRef() {
			// The callee writes an extent constant value into the
			// reference actual.
			id, ok := a.(*ast.Ident)
			if !ok || id.Sym != ast.SymLocal {
				return nil, ex.failf("auxiliary reference actual is not a local")
			}
			refLocals = append(refLocals, struct{ local, param string }{id.Name, site.Callee.Params[i].Name})
			continue
		}
		v, err := ex.eval(a)
		if err != nil {
			return nil, err
		}
		sig += "," + Simplify(v).Key()
	}
	for _, rl := range refLocals {
		ex.locals[rl.local] = Extent{ID: sig + ":ref:" + rl.param}
	}
	return Extent{ID: sig + ":ret"}, nil
}
