package symbolic_test

import (
	"strings"
	"testing"

	"commute/internal/analysis/effects"
	"commute/internal/analysis/extent"
	"commute/internal/analysis/symbolic"
	"commute/internal/apps/src"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

func setup(t *testing.T, source, root string) (*types.Program, *symbolic.Env) {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	a := effects.NewAnalyzer(prog)
	m := prog.MethodByFullName(root)
	if m == nil {
		t.Fatalf("method %s not found", root)
	}
	ec := extent.Constants(a, m)
	res := extent.Compute(a, m, ec)
	aux := make(map[int]bool)
	for _, c := range res.Aux {
		aux[c.ID] = true
	}
	return prog, symbolic.NewEnv(prog, ec, aux)
}

// TestTable1VisitSum reproduces Table 1: the new values of sum under
// both execution orders of r->visit(p1); r->visit(p2) simplify to the
// same expression.
func TestTable1VisitSum(t *testing.T) {
	prog, env := setup(t, src.Graph, "builder::traverse")
	visit := prog.MethodByFullName("graph::visit")

	r12, err := symbolic.ExecutePair(visit, visit, "1", "2", env)
	if err != nil {
		t.Fatalf("execute 1;2: %v", err)
	}
	r21, err := symbolic.ExecutePair(visit, visit, "2", "1", env)
	if err != nil {
		t.Fatalf("execute 2;1: %v", err)
	}
	c12, c21 := r12.Canonical(), r21.Canonical()

	// (sum+p1)+p2 and (sum+p2)+p1 both canonicalize to a sorted n-ary sum.
	s12 := c12.IVars["graph.sum"]
	s21 := c21.IVars["graph.sum"]
	if s12 == nil || s21 == nil {
		t.Fatalf("sum bindings missing: %v / %v", c12.IVars, c21.IVars)
	}
	if !symbolic.Equal(s12, s21) {
		t.Errorf("sum differs: %s vs %s", s12.Key(), s21.Key())
	}
	for _, part := range []string{"iv:graph.sum", "1:p", "2:p"} {
		if !strings.Contains(s12.Key(), part) {
			t.Errorf("sum %s should mention %s", s12.Key(), part)
		}
	}

	// mark converges to TRUE in both orders (the marking protocol).
	if !symbolic.Equal(c12.IVars["graph.mark"], c21.IVars["graph.mark"]) {
		t.Errorf("mark differs: %s vs %s",
			c12.IVars["graph.mark"].Key(), c21.IVars["graph.mark"].Key())
	}

	// The multisets of invoked operations agree: the first visit to an
	// unmarked node generates both recursive calls, the second none.
	if !symbolic.EqualMultisets(c12.Invoked, c21.Invoked) {
		t.Errorf("multisets differ:\n %s\n %s", c12.Invoked, c21.Invoked)
	}
	if len(c12.Invoked) != 2 {
		t.Errorf("invoked = %s, want 2 guarded visits", c12.Invoked)
	}
}

// TestFigure13GravsubPair reproduces Figures 13 and 15: both orders of
// gravsub yield phi + (-const1) + (-const2) and matching vecAdd
// invocation multisets.
func TestFigure13GravsubPair(t *testing.T) {
	prog, env := setup(t, src.BarnesHut, "nbody::computeForces")
	gs := prog.MethodByFullName("body::gravsub")

	r12, err := symbolic.ExecutePair(gs, gs, "1", "2", env)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	r21, err := symbolic.ExecutePair(gs, gs, "2", "1", env)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	c12, c21 := r12.Canonical(), r21.Canonical()

	phi12 := c12.IVars["body.phi"]
	phi21 := c21.IVars["body.phi"]
	if !symbolic.Equal(phi12, phi21) {
		t.Errorf("phi differs: %s vs %s", phi12.Key(), phi21.Key())
	}
	// The canonical form is an n-ary sum of the old phi and two negated
	// extent constants.
	k := phi12.Key()
	if !strings.Contains(k, "iv:body.phi") || strings.Count(k, "aux") != 2 {
		t.Errorf("unexpected phi form: %s", k)
	}

	if !symbolic.EqualMultisets(c12.Invoked, c21.Invoked) {
		t.Errorf("vecAdd multisets differ:\n %s\n %s", c12.Invoked, c21.Invoked)
	}
	if len(c12.Invoked) != 2 {
		t.Errorf("invoked = %s, want 2 vecAdds", c12.Invoked)
	}
	for _, mx := range c12.Invoked {
		if mx.Method != "vector::vecAdd" {
			t.Errorf("invoked %s, want vector::vecAdd", mx.Method)
		}
		if mx.Recv.Key() != "this.acc" {
			t.Errorf("receiver %s, want this.acc", mx.Recv.Key())
		}
	}
}

// TestFigure14VecAddPair reproduces Figures 14 and 16: the val array
// binding canonicalizes to the same nested elementwise update in both
// orders.
func TestFigure14VecAddPair(t *testing.T) {
	prog, env := setup(t, src.BarnesHut, "nbody::computeForces")
	va := prog.MethodByFullName("vector::vecAdd")

	r12, err := symbolic.ExecutePair(va, va, "1", "2", env)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	r21, err := symbolic.ExecutePair(va, va, "2", "1", env)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	c12, c21 := r12.Canonical(), r21.Canonical()

	v12 := c12.IVars["vector.val"]
	v21 := c21.IVars["vector.val"]
	if v12 == nil || v21 == nil {
		t.Fatalf("val bindings missing")
	}
	if !symbolic.Equal(v12, v21) {
		t.Errorf("val differs: %s vs %s", v12.Key(), v21.Key())
	}
	k := v12.Key()
	if !strings.HasPrefix(k, "upd(") || !strings.Contains(k, "iv:vector.val") {
		t.Errorf("val should be an elementwise update chain: %s", k)
	}
	if len(c12.Invoked) != 0 {
		t.Errorf("vecAdd should invoke nothing, got %s", c12.Invoked)
	}
}

func TestSimplifyRules(t *testing.T) {
	n := func(v float64) symbolic.Expr { return symbolic.Num{V: v} }
	i := func(v int64) symbolic.Expr { return symbolic.Num{V: float64(v), IsInt: true} }
	x := symbolic.Var{Name: "x"}
	y := symbolic.Var{Name: "y"}

	cases := []struct {
		in   symbolic.Expr
		want string
	}{
		// x - y ⇒ x + (-y), sorted n-ary.
		{&symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{x, &symbolic.Neg{X: y}}}, "((-y) + x)"},
		// Double negation.
		{&symbolic.Neg{X: &symbolic.Neg{X: x}}, "x"},
		// Constant folding and identity elimination.
		{&symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{i(2), x, i(3)}}, "(5 + x)"},
		{&symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{i(0), x}}, "x"},
		{&symbolic.Nary{Op: symbolic.OpMul, Args: []symbolic.Expr{i(1), x}}, "x"},
		{&symbolic.Nary{Op: symbolic.OpMul, Args: []symbolic.Expr{i(0), x}}, "0"},
		// Flattening: (x + (y + 1)) ⇒ (1 + x + y).
		{&symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{x,
			&symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{y, i(1)}}}}, "(1 + x + y)"},
		// Distribution: 2 * (x + y) ⇒ ((2 * x) + (2 * y)).
		{&symbolic.Nary{Op: symbolic.OpMul, Args: []symbolic.Expr{i(2),
			&symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{x, y}}}}, "((2 * x) + (2 * y))"},
		// Boolean complement: x || !x ⇒ true.
		{&symbolic.Nary{Op: symbolic.OpOr, Args: []symbolic.Expr{x, &symbolic.Not{X: x}}}, "true"},
		{&symbolic.Nary{Op: symbolic.OpAnd, Args: []symbolic.Expr{x, &symbolic.Not{X: x}}}, "false"},
		// Idempotence.
		{&symbolic.Nary{Op: symbolic.OpAnd, Args: []symbolic.Expr{x, x}}, "x"},
		// Conditional rules.
		{&symbolic.Cond{C: symbolic.Bool{V: true}, T: x, F: y}, "x"},
		{&symbolic.Cond{C: x, T: y, F: y}, "y"},
		{&symbolic.Cond{C: x, T: symbolic.Bool{V: true}, F: &symbolic.Not{X: x}}, "true"},
		// Comparison canonicalization: y > x ⇒ x < y; ¬(a<b) ⇒ a>=b ⇒ ...
		{&symbolic.Bin{Op: symbolic.OpGt, L: y, R: x}, "(x < y)"},
		{&symbolic.Not{X: &symbolic.Bin{Op: symbolic.OpLt, L: x, R: y}}, "(y <= x)"},
		// Numeric comparison folding.
		{&symbolic.Bin{Op: symbolic.OpLt, L: n(1), R: n(2)}, "true"},
		// Division by one.
		{&symbolic.Bin{Op: symbolic.OpDiv, L: x, R: i(1)}, "x"},
		// Array store shadowing and reordering.
		{&symbolic.ArrStore{
			Arr: &symbolic.ArrStore{Arr: x, Idx: i(1), Val: y},
			Idx: i(0), Val: x,
		}, "store(store(x, 0, x), 1, y)"},
		{&symbolic.ArrSel{
			Arr: &symbolic.ArrStore{Arr: x, Idx: i(2), Val: y},
			Idx: i(2),
		}, "y"},
		{&symbolic.ArrSel{Arr: &symbolic.ArrFill{Elem: y}, Idx: x}, "y"},
	}
	for _, tc := range cases {
		got := symbolic.Simplify(tc.in).Key()
		if got != tc.want {
			t.Errorf("Simplify(%s) = %s, want %s", tc.in.Key(), got, tc.want)
		}
	}
}

func TestArrUpdChainCanonicalization(t *testing.T) {
	a := symbolic.Var{Name: "a"}
	c1 := symbolic.Extent{ID: "c1"}
	c2 := symbolic.Extent{ID: "c2"}
	ab := symbolic.Simplify(&symbolic.ArrUpd{
		Arr:     &symbolic.ArrUpd{Arr: a, Op: symbolic.OpAdd, Operand: c1},
		Op:      symbolic.OpAdd,
		Operand: c2,
	})
	ba := symbolic.Simplify(&symbolic.ArrUpd{
		Arr:     &symbolic.ArrUpd{Arr: a, Op: symbolic.OpAdd, Operand: c2},
		Op:      symbolic.OpAdd,
		Operand: c1,
	})
	if !symbolic.Equal(ab, ba) {
		t.Errorf("update chains should canonicalize equal: %s vs %s", ab.Key(), ba.Key())
	}
	// Mixed operators do not reorder.
	mixed1 := symbolic.Simplify(&symbolic.ArrUpd{
		Arr:     &symbolic.ArrUpd{Arr: a, Op: symbolic.OpAdd, Operand: c1},
		Op:      symbolic.OpMul,
		Operand: c2,
	})
	mixed2 := symbolic.Simplify(&symbolic.ArrUpd{
		Arr:     &symbolic.ArrUpd{Arr: a, Op: symbolic.OpMul, Operand: c2},
		Op:      symbolic.OpAdd,
		Operand: c1,
	})
	if symbolic.Equal(mixed1, mixed2) {
		t.Error("mixed-operator update chains must not compare equal")
	}
}
