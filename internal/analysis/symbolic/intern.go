package symbolic

import (
	"sync"
	"sync/atomic"
)

// Hash-consing for composite expressions (§4.8.2 support). Every
// composite node built inside the package goes through one of the mk*
// constructors below, which intern the node in a process-wide table
// keyed by its canonical rendering. Consequences:
//
//   - structurally identical nodes share one allocation, so Expr
//     values compare with == (pointer identity for composites, value
//     identity for leaves);
//   - each node's canonical key is computed exactly once, from its
//     children's cached keys (O(fan-out), not O(subtree));
//   - Simplify memoizes per canonical node (see simplify.go), so a
//     shared subterm is simplified once no matter how many expressions
//     contain it.
//
// The table is bounded: once the entry count passes internCap the
// whole epoch is dropped and a fresh table is installed. Correctness
// never depends on canonicality — an uninterned or cross-epoch node
// still renders the same Key() — so the flush only costs future memo
// hits. All table access is lock-free (sync.Map / atomic pointer) and
// safe for the concurrent pair tests in core.
type internTable struct {
	nodes    sync.Map // kind-prefixed canonical key → Expr
	simplify sync.Map // canonical node (Expr) → simplified Expr
	n        atomic.Int64
}

// internCap bounds the total number of entries (nodes + memoized
// simplifications) per epoch.
const internCap = 1 << 19

var curTable atomic.Pointer[internTable]

func init() { curTable.Store(new(internTable)) }

func tab() *internTable { return curTable.Load() }

// bump accounts one new entry and swings to a fresh epoch at the cap.
// Racing goroutines may keep using the old epoch's table briefly;
// their nodes simply stop being canonical, which is harmless.
func (t *internTable) bump() {
	if t.n.Add(1) >= internCap {
		curTable.CompareAndSwap(t, new(internTable))
	}
}

// Kind prefixes keep the intern map injective per node type even if
// two kinds ever rendered the same key.
const (
	kNary     = "n\x00"
	kBin      = "b\x00"
	kNeg      = "g\x00"
	kNot      = "t\x00"
	kCall     = "c\x00"
	kCond     = "d\x00"
	kArrUpd   = "u\x00"
	kArrFill  = "f\x00"
	kArrStore = "s\x00"
	kArrSel   = "l\x00"
	kAccumAt  = "a\x00"
)

// intern returns the canonical node for kind+key, installing build()'s
// result on first sight. The slices referenced by the built node must
// never be mutated afterwards.
func intern(t *internTable, kind, key string, build func() Expr) Expr {
	ik := kind + key
	if v, ok := t.nodes.Load(ik); ok {
		return v.(Expr)
	}
	v, loaded := t.nodes.LoadOrStore(ik, build())
	if !loaded {
		t.bump()
	}
	return v.(Expr)
}

// Constructors. Callers hand over ownership of any slice argument.

func mkNary(op Op, args []Expr) Expr {
	t := tab()
	k := naryKey(op, args)
	return intern(t, kNary, k, func() Expr { return &Nary{Op: op, Args: args, key: k} })
}

func mkBin(op Op, l, r Expr) Expr {
	t := tab()
	k := binKey(op, l, r)
	return intern(t, kBin, k, func() Expr { return &Bin{Op: op, L: l, R: r, key: k} })
}

func mkNeg(x Expr) Expr {
	t := tab()
	k := negKey(x)
	return intern(t, kNeg, k, func() Expr { return &Neg{X: x, key: k} })
}

func mkNot(x Expr) Expr {
	t := tab()
	k := notKey(x)
	return intern(t, kNot, k, func() Expr { return &Not{X: x, key: k} })
}

func mkCall(fn string, args []Expr) Expr {
	t := tab()
	k := callKey(fn, args)
	return intern(t, kCall, k, func() Expr { return &Call{Fn: fn, Args: args, key: k} })
}

func mkCond(c, then, els Expr) Expr {
	t := tab()
	k := condKey(c, then, els)
	return intern(t, kCond, k, func() Expr { return &Cond{C: c, T: then, F: els, key: k} })
}

func mkArrUpd(arr Expr, op Op, operand Expr) Expr {
	t := tab()
	k := arrUpdKey(arr, op, operand)
	return intern(t, kArrUpd, k, func() Expr { return &ArrUpd{Arr: arr, Op: op, Operand: operand, key: k} })
}

func mkArrFill(elem Expr) Expr {
	t := tab()
	k := arrFillKey(elem)
	return intern(t, kArrFill, k, func() Expr { return &ArrFill{Elem: elem, key: k} })
}

func mkArrStore(arr, idx, val Expr) Expr {
	t := tab()
	k := arrStoreKey(arr, idx, val)
	return intern(t, kArrStore, k, func() Expr { return &ArrStore{Arr: arr, Idx: idx, Val: val, key: k} })
}

func mkArrSel(arr, idx Expr) Expr {
	t := tab()
	k := arrSelKey(arr, idx)
	return intern(t, kArrSel, k, func() Expr { return &ArrSel{Arr: arr, Idx: idx, key: k} })
}

func mkAccumAt(arr Expr, op Op, idx, delta Expr) Expr {
	t := tab()
	k := accumAtKey(arr, op, idx, delta)
	return intern(t, kAccumAt, k, func() Expr { return &AccumAt{Arr: arr, Op: op, Idx: idx, Delta: delta, key: k} })
}

// Intern canonicalizes an expression tree bottom-up, returning the
// interned equivalent. Useful for expressions constructed as raw
// composite literals (tests, external callers); nodes built by the
// package are already canonical.
func Intern(e Expr) Expr {
	switch x := e.(type) {
	case nil, Num, Bool, Null, Extent, Var:
		return e
	case *Nary:
		if x.key != "" {
			return x
		}
		return mkNary(x.Op, internSlice(x.Args))
	case *Bin:
		if x.key != "" {
			return x
		}
		return mkBin(x.Op, Intern(x.L), Intern(x.R))
	case *Neg:
		if x.key != "" {
			return x
		}
		return mkNeg(Intern(x.X))
	case *Not:
		if x.key != "" {
			return x
		}
		return mkNot(Intern(x.X))
	case *Call:
		if x.key != "" {
			return x
		}
		return mkCall(x.Fn, internSlice(x.Args))
	case *Cond:
		if x.key != "" {
			return x
		}
		return mkCond(Intern(x.C), Intern(x.T), Intern(x.F))
	case *ArrUpd:
		if x.key != "" {
			return x
		}
		return mkArrUpd(Intern(x.Arr), x.Op, Intern(x.Operand))
	case *ArrFill:
		if x.key != "" {
			return x
		}
		return mkArrFill(Intern(x.Elem))
	case *ArrStore:
		if x.key != "" {
			return x
		}
		return mkArrStore(Intern(x.Arr), Intern(x.Idx), Intern(x.Val))
	case *ArrSel:
		if x.key != "" {
			return x
		}
		return mkArrSel(Intern(x.Arr), Intern(x.Idx))
	case *AccumAt:
		if x.key != "" {
			return x
		}
		return mkAccumAt(Intern(x.Arr), x.Op, Intern(x.Idx), Intern(x.Delta))
	}
	return e
}

func internSlice(args []Expr) []Expr {
	out := make([]Expr, len(args))
	for i, a := range args {
		out[i] = Intern(a)
	}
	return out
}
