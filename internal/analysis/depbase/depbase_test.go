package depbase_test

import (
	"testing"

	"commute/internal/analysis/depbase"
	"commute/internal/apps/src"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

func analyze(t *testing.T, source string) *depbase.Result {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return depbase.Analyze(prog)
}

// TestPhaseLoopsStaySerial: the motivating claim of §8.1 — dependence
// analysis at type precision cannot parallelize any loop that updates
// objects through pointers, including every phase loop of both
// applications.
func TestPhaseLoopsStaySerial(t *testing.T) {
	for _, tc := range []struct {
		name, source string
		phaseMethods map[string]bool
	}{
		{"barneshut", src.BarnesHut, map[string]bool{
			"nbody::computeForces": true, "nbody::resetForces": true,
			"nbody::advanceVelocities": true, "nbody::advancePositions": true,
		}},
		{"water", src.Water, map[string]bool{
			"water::predictAll": true, "water::loadAll": true,
			"water::interf": true, "water::poteng": true, "water::momentaAll": true,
		}},
	} {
		res := analyze(t, tc.source)
		for _, lr := range res.Loops {
			if tc.phaseMethods[lr.Method.FullName()] && lr.Parallel {
				t.Errorf("%s: dependence analysis wrongly parallelizes the loop in %s",
					tc.name, lr.Method.FullName())
			}
		}
	}
}

// TestIndependentLoopFound: a loop writing only locals is provably
// independent even at type precision — the baseline is not vacuous.
func TestIndependentLoopFound(t *testing.T) {
	res := analyze(t, `
class a {
public:
  int x;
  int probe(int n);
};
int a::probe(int n) {
  int i, s;
  s = 0;
  for (i = 0; i < n; i++)
    s = s + i;
  return s;
}
`)
	if res.TotalLoops != 1 || res.ParallelLoops != 1 {
		t.Errorf("local-only loop should be independent: %d/%d", res.ParallelLoops, res.TotalLoops)
	}
}

// TestConflictReported: serial verdicts carry the conflicting
// descriptor.
func TestConflictReported(t *testing.T) {
	res := analyze(t, `
class c { public: int n; void bump(); };
void c::bump() { n = n + 1; }
class d {
public:
  c *cs[8];
  void all();
};
void d::all() {
  int i;
  for (i = 0; i < 8; i++)
    cs[i]->bump();
}
`)
	var found bool
	for _, lr := range res.Loops {
		if lr.Method.FullName() == "d::all" {
			found = true
			if lr.Parallel {
				t.Error("pointer-updating loop must stay serial under dependence analysis")
			}
			if lr.Conflict != "c.n" {
				t.Errorf("conflict = %q, want c.n", lr.Conflict)
			}
		}
	}
	if !found {
		t.Fatal("loop in d::all not examined")
	}
}
