// Package depbase implements the conventional baseline the paper
// contrasts with (§8.1): a type-based data dependence analysis that
// parallelizes a loop only when its iterations are provably
// independent. Without points-to information it cannot disambiguate
// objects reached through pointers, so any loop whose iterations write
// instance-variable storage carries a (potential) dependence and stays
// serial — including every loop in Barnes-Hut, Water, and the graph
// traversal. Commutativity analysis parallelizes them anyway, which is
// the paper's motivating claim.
package depbase

import (
	"commute/internal/analysis/effects"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
)

// LoopResult is the dependence verdict for one loop.
type LoopResult struct {
	Method   *types.Method
	Loop     *ast.ForStmt
	Parallel bool
	// Conflict names a storage descriptor carrying a cross-iteration
	// dependence when the loop is serial.
	Conflict string
}

// Result summarizes a whole-program dependence analysis.
type Result struct {
	TotalLoops    int
	ParallelLoops int
	Loops         []LoopResult
}

// Analyze examines every for loop of every defined method.
func Analyze(prog *types.Program) *Result {
	a := effects.NewAnalyzer(prog)
	res := &Result{}
	for _, m := range prog.Methods {
		if m.Def == nil {
			continue
		}
		method := m
		ast.Inspect(m.Def.Body, func(n ast.Node) bool {
			fs, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			lr := analyzeLoop(prog, a, method, fs)
			res.TotalLoops++
			if lr.Parallel {
				res.ParallelLoops++
			}
			res.Loops = append(res.Loops, lr)
			return false // inner loops are part of the outer body
		})
	}
	return res
}

// analyzeLoop collects the loop body's read and write sets at the
// precision the type system offers and reports independence.
func analyzeLoop(prog *types.Program, a *effects.Analyzer, m *types.Method, fs *ast.ForStmt) LoopResult {
	lr := LoopResult{Method: m, Loop: fs}
	reads, writes := effects.NewSet(), effects.NewSet()
	resolver := effects.NewResolver(prog, m)

	ast.Inspect(fs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Assign:
			if d, ok := resolver.AccessDesc(x.LHS); ok {
				writes.Add(d)
			}
		case *ast.Ident:
			if d, ok := resolver.AccessDesc(x); ok {
				reads.Add(d)
			}
		case *ast.FieldAccess:
			if d, ok := resolver.AccessDesc(x); ok {
				reads.Add(d)
			}
		case *ast.CallExpr:
			if x.Builtin || x.Site < 0 {
				return true
			}
			te := a.TransitiveEffects(prog.CallSites[x.Site].Callee)
			reads.AddAll(te.Reads)
			writes.AddAll(te.Writes)
		}
		return true
	})

	// Iterations are independent only when no written storage may
	// overlap storage another iteration accesses. At type-system
	// precision, iterations have identical descriptor footprints, so
	// any instance-variable write is a potential cross-iteration
	// dependence.
	for _, w := range writes.Slice() {
		if w.Space != effects.DescField {
			continue // locals are iteration-private
		}
		lr.Conflict = w.Key()
		return lr
	}
	lr.Parallel = true
	return lr
}
