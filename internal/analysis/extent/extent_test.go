package extent_test

import (
	"sort"
	"strings"
	"testing"

	"commute/internal/analysis/effects"
	"commute/internal/analysis/extent"
	"commute/internal/apps/src"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

func analyze(t *testing.T, source string) (*types.Program, *effects.Analyzer) {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog, effects.NewAnalyzer(prog)
}

func method(t *testing.T, p *types.Program, full string) *types.Method {
	t.Helper()
	m := p.MethodByFullName(full)
	if m == nil {
		t.Fatalf("method %s not found", full)
	}
	return m
}

// siteNames returns "caller→callee" strings for a call-site list,
// deduplicated and sorted.
func siteNames(sites []*types.CallSite) []string {
	set := make(map[string]bool)
	for _, s := range sites {
		set[s.Caller.Name+"→"+s.Callee.Name] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func wantNames(t *testing.T, label string, got, want []string) {
	t.Helper()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("%s:\n got  %v\n want %v", label, got, want)
	}
}

// TestFigure7ExtentConstants checks extentConstantVariables against the
// paper's Figure 7.
func TestFigure7ExtentConstants(t *testing.T) {
	p, a := analyze(t, src.BarnesHut)

	ec := extent.Constants(a, method(t, p, "body::gravsub"))
	want := []string{"node.mass", "node.pos.val", "parms.eps"}
	for _, w := range want {
		if !hasKey(ec, w) {
			t.Errorf("ec(gravsub) missing %s: %s", w, ec)
		}
	}
	if ec.Len() != len(want) {
		t.Errorf("ec(gravsub) = %s, want %v", ec, want)
	}

	ec = extent.Constants(a, method(t, p, "nbody::computeForces"))
	want = []string{
		"node.mass", "node.pos.val", "leaf.numbodies", "leaf.bodyp",
		"cell.subp", "parms.eps", "parms.epsSq", "parms.tolSq",
		"nbody.numbodies", "nbody.bodies", "nbody.BH_root", "nbody.size",
	}
	for _, w := range want {
		if !hasKey(ec, w) {
			t.Errorf("ec(computeForces) missing %s: %s", w, ec)
		}
	}
	if ec.Len() != len(want) {
		t.Errorf("ec(computeForces) has %d entries %s, want %d", ec.Len(), ec, len(want))
	}
}

func hasKey(s *effects.Set, key string) bool {
	for _, d := range s.Slice() {
		if d.Key() == key {
			return true
		}
	}
	return false
}

// TestFigure9Extents checks the extent computation against Figure 9:
// computeInter and subdivp call sites are auxiliary; the rest form the
// extent.
func TestFigure9Extents(t *testing.T) {
	p, a := analyze(t, src.BarnesHut)
	cf := method(t, p, "nbody::computeForces")
	ec := extent.Constants(a, cf)

	res := extent.Compute(a, cf, ec)
	wantNames(t, "aux(computeForces)", siteNames(res.Aux),
		[]string{"gravsub→computeInter", "walksub→subdivp"})
	wantNames(t, "ext(computeForces)", siteNames(res.Ext),
		[]string{
			"computeForces→walksub",
			"gravsub→vecAdd",
			"openCell→walksub",
			"openLeaf→gravsub",
			"walksub→gravsub",
			"walksub→openCell",
			"walksub→openLeaf",
		})

	// Methods = {computeForces} ∪ {walksub, openCell, openLeaf, gravsub,
	// vecAdd} — the paper's extent size 6 for the Force extent.
	if len(res.Methods) != 6 {
		names := make([]string, len(res.Methods))
		for i, m := range res.Methods {
			names[i] = m.FullName()
		}
		t.Errorf("extent methods = %v, want 6", names)
	}

	// Figure 9 also evaluates extents of inner methods with ec(computeForces).
	gs := method(t, p, "body::gravsub")
	res = extent.Compute(a, gs, ec)
	wantNames(t, "aux(gravsub)", siteNames(res.Aux), []string{"gravsub→computeInter"})
	wantNames(t, "ext(gravsub)", siteNames(res.Ext), []string{"gravsub→vecAdd"})

	ol := method(t, p, "body::openLeaf")
	res = extent.Compute(a, ol, ec)
	wantNames(t, "aux(openLeaf)", siteNames(res.Aux), []string{"gravsub→computeInter"})
	wantNames(t, "ext(openLeaf)", siteNames(res.Ext),
		[]string{"gravsub→vecAdd", "openLeaf→gravsub"})

	ws := method(t, p, "body::walksub")
	res = extent.Compute(a, ws, ec)
	wantNames(t, "aux(walksub)", siteNames(res.Aux),
		[]string{"gravsub→computeInter", "walksub→subdivp"})
	wantNames(t, "ext(walksub)", siteNames(res.Ext),
		[]string{
			"gravsub→vecAdd", "openCell→walksub", "openLeaf→gravsub",
			"walksub→gravsub", "walksub→openCell", "walksub→openLeaf",
		})
}

// TestVelocityExtent checks the velocity-update extent: scaleAcc and
// getDt are auxiliary; advanceVelocity and vecAdd form the extent.
func TestVelocityExtent(t *testing.T) {
	p, a := analyze(t, src.BarnesHut)
	av := method(t, p, "nbody::advanceVelocities")
	ec := extent.Constants(a, av)
	res := extent.Compute(a, av, ec)
	wantNames(t, "aux(advanceVelocities)", siteNames(res.Aux),
		[]string{"advanceVelocities→getDt", "advanceVelocity→scaleAcc"})
	wantNames(t, "ext(advanceVelocities)", siteNames(res.Ext),
		[]string{"advanceVelocities→advanceVelocity", "advanceVelocity→vecAdd"})
	if len(res.Methods) != 3 {
		t.Errorf("velocity extent size = %d, want 3", len(res.Methods))
	}
}

// TestGraphExtent checks the §2 graph traversal: the visit extent is
// just visit itself (recursive), with no auxiliary operations.
func TestGraphExtent(t *testing.T) {
	p, a := analyze(t, src.Graph)
	tr := method(t, p, "builder::traverse")
	ec := extent.Constants(a, tr)
	// val, left, right are read but never written; sum and mark are
	// read and written.
	for _, w := range []string{"graph.val", "graph.left", "graph.right", "builder.root"} {
		if !hasKey(ec, w) {
			t.Errorf("ec(traverse) missing %s: %s", w, ec)
		}
	}
	for _, bad := range []string{"graph.sum", "graph.mark"} {
		if hasKey(ec, bad) {
			t.Errorf("ec(traverse) must not contain %s: %s", bad, ec)
		}
	}
	res := extent.Compute(a, tr, ec)
	if len(res.Aux) != 0 {
		t.Errorf("aux(traverse) = %v, want none", siteNames(res.Aux))
	}
	wantNames(t, "ext(traverse)", siteNames(res.Ext),
		[]string{"traverse→visit", "visit→visit"})
	if len(res.Methods) != 2 {
		t.Errorf("traverse extent size = %d, want 2 (traverse, visit)", len(res.Methods))
	}
}
