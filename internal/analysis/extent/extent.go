// Package extent implements the extent-constant-variables computation
// (Fig. 5) and the extent / auxiliary-call-site computation (Fig. 8) of
// Rinard & Diniz 1996.
package extent

import (
	"sort"

	"commute/internal/analysis/effects"
	"commute/internal/frontend/types"
)

// Constants computes the set of extent constant variables of the
// computation rooted at m (the paper's extentConstantVariables): the
// storage the computation reads but never writes, after lifting locals
// and parameters to their primitive types and filtering reads that
// overlap writes.
func Constants(a *effects.Analyzer, m *types.Method) *effects.Set {
	te := a.TransitiveEffects(m)
	rd := te.Reads.Map(effects.Desc.Lift)
	wr := te.Writes.Map(effects.Desc.Lift)
	return rd.Filter(func(s effects.Desc) bool { return !wr.OverlapsDesc(s) })
}

// Result is the outcome of the extent computation for one method.
type Result struct {
	Method *types.Method
	EC     *effects.Set
	// Ext and Aux partition the call sites reachable from Method (stopping
	// at auxiliary sites), in discovery order.
	Ext []*types.CallSite
	Aux []*types.CallSite
	// Methods is {m} ∪ the callees of the extent call sites, deduplicated
	// and ordered by method ID — the paper's ms set.
	Methods []*types.Method
}

// IsAux reports whether the call site was classified auxiliary.
func (r *Result) IsAux(site *types.CallSite) bool {
	for _, c := range r.Aux {
		if c == site {
			return true
		}
	}
	return false
}

// Compute runs the extent algorithm of Fig. 8 for m using the extent
// constant set ec. A call site is auxiliary when the invoked
// computation writes only caller locals, reads only extent constants
// (or caller locals / reference parameters, which hold extent constant
// values by the reference-parameter constraints), and the values
// flowing into the site depend only on extent constants.
func Compute(a *effects.Analyzer, m *types.Method, ec *effects.Set) *Result {
	res := &Result{Method: m, EC: ec}
	visited := make(map[*types.Method]bool)
	methodSet := map[*types.Method]bool{m: true}

	identSubst := func(caller *types.Method, s *effects.Set) *effects.Set {
		return effects.Identity(caller).SubstSet(s)
	}

	var rec func(x *types.Method)
	rec = func(x *types.Method) {
		if visited[x] {
			return
		}
		visited[x] = true
		mi := a.Info(x)
		for i := range mi.Calls {
			cc := &mi.Calls[i]
			callee := cc.Site.Callee
			te := a.TransitiveEffects(callee)
			b := a.Bind(x, *cc, effects.Identity(x))
			rd := b.SubstSet(te.Reads)
			wr := b.SubstSet(te.Writes)
			dep := identSubst(x, a.Dep(cc.Site))

			if writesOnlyLocals(wr) && readsOnlyECOrLocal(rd, ec) && depInEC(dep, ec) {
				res.Aux = append(res.Aux, cc.Site)
				continue
			}
			res.Ext = append(res.Ext, cc.Site)
			methodSet[callee] = true
			rec(callee)
		}
	}
	rec(m)

	for mm := range methodSet {
		res.Methods = append(res.Methods, mm)
	}
	sort.Slice(res.Methods, func(i, j int) bool { return res.Methods[i].ID < res.Methods[j].ID })
	return res
}

func writesOnlyLocals(wr *effects.Set) bool {
	for _, d := range wr.Slice() {
		if d.Space != effects.DescLocal {
			return false
		}
	}
	return true
}

func readsOnlyECOrLocal(rd, ec *effects.Set) bool {
	for _, d := range rd.Slice() {
		switch d.Space {
		case effects.DescLocal, effects.DescParam:
			continue // caller locals; reference parameters hold extent constants
		}
		if !ec.Covers(d) {
			return false
		}
	}
	return true
}

func depInEC(dep, ec *effects.Set) bool {
	for _, d := range dep.Slice() {
		switch d.Space {
		case effects.DescLocal, effects.DescParam:
			continue
		}
		if !ec.Covers(d) {
			return false
		}
	}
	return true
}
