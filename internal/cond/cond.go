// Package cond implements conditional commutativity: when the
// Figure-11 symbolic pair test of Rinard & Diniz 1996 fails on an
// instance-variable mismatch, the two final values usually differ only
// under some condition the symbolic engine can already see. Following
// Bansal/Koskinen/Tripp ("Automatic Generation of Precise and Useful
// Commutativity Conditions") this package synthesizes that residual
// condition as a structured predicate, weakens it to the fragment a
// runtime can evaluate at region entry (literals and extent-constant
// fields of global objects), and compiles the weakened guard into a
// closure (interpreter engines) or a Go expression (native backend).
// Predicate true → run the parallel region; false → take the existing
// serial path.
//
// The package depends only on internal/analysis/symbolic; core,
// codegen, rt and the server layers all build on it.
package cond

import (
	"sort"
	"strings"

	"commute/internal/analysis/symbolic"
)

// Pred is a residual commutativity predicate. The IR is positive:
// conjunction and disjunction only, with all negation pushed into the
// atoms as symbolic.Not. That makes weakening trivially sound —
// replacing any atom with False can only shrink the set of states the
// predicate accepts.
type Pred interface {
	// Key returns the canonical rendering, used for deduplication,
	// reports, and cross-process comparison.
	Key() string
	pred()
}

// True is the always-true predicate (the pair commutes unconditionally).
type True struct{}

// False is the always-false predicate (no usable residual condition).
type False struct{}

// Atom is a boolean-valued symbolic expression.
type Atom struct{ E symbolic.Expr }

// And is a conjunction of predicates.
type And struct{ Ps []Pred }

// Or is a disjunction of predicates.
type Or struct{ Ps []Pred }

func (True) pred()  {}
func (False) pred() {}
func (Atom) pred()  {}
func (*And) pred()  {}
func (*Or) pred()   {}

func (True) Key() string   { return "true" }
func (False) Key() string  { return "false" }
func (a Atom) Key() string { return a.E.Key() }

func joinKeys(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Key()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func (a *And) Key() string { return joinKeys(a.Ps, " ∧ ") }
func (o *Or) Key() string  { return joinKeys(o.Ps, " ∨ ") }

// Render returns the human-readable form of p (its canonical key), or
// "" for a nil predicate.
func Render(p Pred) string {
	if p == nil {
		return ""
	}
	return p.Key()
}

// MkAtom wraps a boolean symbolic expression as a predicate, folding
// literal Bool expressions into True/False.
func MkAtom(e symbolic.Expr) Pred {
	if b, ok := e.(symbolic.Bool); ok {
		if b.V {
			return True{}
		}
		return False{}
	}
	return Atom{E: e}
}

// MkAnd builds the conjunction of ps: nested Ands flatten, True drops,
// False dominates, duplicates (by key) collapse. Order is preserved.
func MkAnd(ps ...Pred) Pred {
	var flat []Pred
	seen := map[string]bool{}
	for _, p := range ps {
		switch x := p.(type) {
		case nil, True:
			continue
		case False:
			return False{}
		case *And:
			for _, q := range x.Ps {
				if k := q.Key(); !seen[k] {
					seen[k] = true
					flat = append(flat, q)
				}
			}
		default:
			if k := p.Key(); !seen[k] {
				seen[k] = true
				flat = append(flat, p)
			}
		}
	}
	switch len(flat) {
	case 0:
		return True{}
	case 1:
		return flat[0]
	}
	return &And{Ps: flat}
}

// MkOr builds the disjunction of ps: nested Ors flatten, False drops,
// True dominates, duplicates (by key) collapse. Order is preserved.
func MkOr(ps ...Pred) Pred {
	var flat []Pred
	seen := map[string]bool{}
	for _, p := range ps {
		switch x := p.(type) {
		case nil, False:
			continue
		case True:
			return True{}
		case *Or:
			for _, q := range x.Ps {
				if k := q.Key(); !seen[k] {
					seen[k] = true
					flat = append(flat, q)
				}
			}
		default:
			if k := p.Key(); !seen[k] {
				seen[k] = true
				flat = append(flat, p)
			}
		}
	}
	switch len(flat) {
	case 0:
		return False{}
	case 1:
		return flat[0]
	}
	return &Or{Ps: flat}
}

// ---------------------------------------------------------------------
// Synthesis

// maxCaseConds caps the number of distinct embedded conditions the
// case-split enumerates (2^k truth assignments). Beyond the cap the
// residual degrades to a single equality atom over the raw values.
const maxCaseConds = 3

// Residual synthesizes the predicate under which the two final
// symbolic values of an instance variable agree. The simplifier
// canonicalizes conditional updates aggressively (e.g. it factors
// cond(c, x+a, x+b) into x + cond(c, a, b)), so instead of matching
// Cond structure the synthesis case-splits: it collects the distinct
// conditions embedded anywhere in either value, and for each truth
// assignment substitutes the conditions with Bool literals and
// re-simplifies. Assignments under which both sides collapse to equal
// expressions contribute their assumption conjunction; the rest
// contribute the assumption plus the residual equality of the
// specialized values. The result is the disjunction over all
// assignments — exactly the states in which executing the two
// operations in either order leaves this instance variable identical.
func Residual(v12, v21 symbolic.Expr) Pred {
	if symbolic.Equal(v12, v21) {
		return True{}
	}
	conds := embeddedConds(v12, v21)
	if len(conds) == 0 || len(conds) > maxCaseConds {
		return MkAtom(eq(v12, v21))
	}
	var cases []Pred
	for mask := 0; mask < 1<<len(conds); mask++ {
		repl := make(map[string]symbolic.Expr, len(conds))
		var assume []Pred
		for i, c := range conds {
			val := mask&(1<<i) != 0
			repl[c.Key()] = symbolic.Bool{V: val}
			if val {
				assume = append(assume, MkAtom(c))
			} else {
				assume = append(assume, MkAtom(symbolic.Simplify(symbolic.MkNot(c))))
			}
		}
		a12 := symbolic.Simplify(symbolic.Subst(v12, repl))
		a21 := symbolic.Simplify(symbolic.Subst(v21, repl))
		if !symbolic.Equal(a12, a21) {
			assume = append(assume, MkAtom(eq(a12, a21)))
		}
		cases = append(cases, MkAnd(assume...))
	}
	return MkOr(cases...)
}

// eq builds the simplified equality of two symbolic values.
func eq(a, b symbolic.Expr) symbolic.Expr {
	return symbolic.Simplify(symbolic.MkBin(symbolic.OpEq, a, b))
}

// embeddedConds returns the distinct Cond conditions appearing
// anywhere in the given expressions, sorted by canonical key.
func embeddedConds(es ...symbolic.Expr) []symbolic.Expr {
	seen := map[string]symbolic.Expr{}
	for _, e := range es {
		symbolic.Walk(e, func(n symbolic.Expr) bool {
			if c, ok := n.(*symbolic.Cond); ok {
				seen[c.C.Key()] = c.C
			}
			return true
		})
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]symbolic.Expr, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// ---------------------------------------------------------------------
// Guardability and weakening

// FieldRef names a runtime-readable leaf of a guard: field Field,
// declared by class Class, of the global object Global. These arise
// from extent constants of the form "ec:<Class>.<field>@global:<G>" —
// values the analysis already proved constant over the extent, so
// reading them once at region entry is sound.
type FieldRef struct {
	Global string
	Class  string
	Field  string
}

// ParseFieldRef parses an extent-constant ID into a FieldRef. Only
// single-level field reads of global objects qualify: the descriptor
// part must be exactly "<Class>.<field>" (no access path, no
// this-relative prefix) and the base must be "global:<name>".
func ParseFieldRef(id string) (FieldRef, bool) {
	body, ok := strings.CutPrefix(id, "ec:")
	if !ok {
		return FieldRef{}, false
	}
	at := strings.LastIndex(body, "@")
	if at < 0 {
		return FieldRef{}, false
	}
	desc, base := body[:at], body[at+1:]
	g, ok := strings.CutPrefix(base, "global:")
	if !ok || g == "" {
		return FieldRef{}, false
	}
	dot := strings.IndexByte(desc, '.')
	if dot <= 0 || dot == len(desc)-1 {
		return FieldRef{}, false
	}
	cls, fld := desc[:dot], desc[dot+1:]
	if strings.Contains(fld, ".") || strings.Contains(desc, "→") {
		return FieldRef{}, false
	}
	return FieldRef{Global: g, Class: cls, Field: fld}, true
}

// guardableOps is the expression fragment both guard backends evaluate
// identically and totally (no division: int division by zero would
// fault in one backend and not the other).
func guardableOp(op symbolic.Op) bool {
	switch op {
	case symbolic.OpAdd, symbolic.OpMul, symbolic.OpAnd, symbolic.OpOr,
		symbolic.OpEq, symbolic.OpNe, symbolic.OpLt, symbolic.OpLe,
		symbolic.OpGt, symbolic.OpGe:
		return true
	}
	return false
}

// Guardable reports whether e lies in the runtime-evaluable fragment:
// literals, extent-constant global fields, and total arithmetic /
// comparison / boolean operators.
func Guardable(e symbolic.Expr) bool {
	ok := true
	symbolic.Walk(e, func(n symbolic.Expr) bool {
		if !ok {
			return false
		}
		switch x := n.(type) {
		case symbolic.Num, symbolic.Bool:
		case symbolic.Extent:
			if _, refOK := ParseFieldRef(x.ID); !refOK {
				ok = false
			}
		case *symbolic.Nary:
			if !guardableOp(x.Op) {
				ok = false
			}
		case *symbolic.Bin:
			if !guardableOp(x.Op) {
				ok = false
			}
		case *symbolic.Neg, *symbolic.Not:
		default:
			// Null, Var, Call, Cond, array forms: not evaluable at
			// region entry.
			ok = false
		}
		return ok
	})
	return ok
}

// Guard weakens p to its guardable fragment: every atom outside the
// runtime-evaluable fragment becomes False. Because the IR is
// negation-free above the atoms, the result soundly implies p — the
// guard may refuse states where the full residual held, never the
// converse. Returns False when nothing evaluable remains.
func Guard(p Pred) Pred {
	switch x := p.(type) {
	case nil:
		return False{}
	case True, False:
		return x
	case Atom:
		if Guardable(x.E) {
			return x
		}
		return False{}
	case *And:
		out := make([]Pred, len(x.Ps))
		for i, q := range x.Ps {
			out[i] = Guard(q)
		}
		return MkAnd(out...)
	case *Or:
		out := make([]Pred, len(x.Ps))
		for i, q := range x.Ps {
			out[i] = Guard(q)
		}
		return MkOr(out...)
	}
	return False{}
}

// Refs returns the distinct field references read by p's atoms, sorted
// by (Global, Class, Field). Planning layers use it to validate that
// every leaf resolves to a basic-typed field before committing to a
// conditional lowering.
func Refs(p Pred) []FieldRef {
	seen := map[FieldRef]bool{}
	var walkPred func(Pred)
	walkPred = func(p Pred) {
		switch x := p.(type) {
		case Atom:
			symbolic.Walk(x.E, func(n symbolic.Expr) bool {
				if ext, ok := n.(symbolic.Extent); ok {
					if ref, refOK := ParseFieldRef(ext.ID); refOK {
						seen[ref] = true
					}
				}
				return true
			})
		case *And:
			for _, q := range x.Ps {
				walkPred(q)
			}
		case *Or:
			for _, q := range x.Ps {
				walkPred(q)
			}
		}
	}
	walkPred(p)
	refs := make([]FieldRef, 0, len(seen))
	for r := range seen {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.Global != b.Global {
			return a.Global < b.Global
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Field < b.Field
	})
	return refs
}
