package cond

import (
	"fmt"
	"strings"
	"testing"

	"commute/internal/analysis/symbolic"
)

// modeEq builds the canonical guard atom of the conditional corpus
// app: ⟨ec:table.mode@global:H⟩ == 0.
func modeEq(t *testing.T) symbolic.Expr {
	t.Helper()
	return symbolic.Intern(&symbolic.Bin{
		Op: symbolic.OpEq,
		L:  symbolic.Extent{ID: "ec:table.mode@global:H"},
		R:  symbolic.Num{V: 0, IsInt: true},
	})
}

func TestConstructors(t *testing.T) {
	c := MkAtom(modeEq(t))
	if got := MkAnd(True{}, c, c).Key(); got != c.Key() {
		t.Errorf("MkAnd(true, c, c) = %s, want %s", got, c.Key())
	}
	if _, ok := MkAnd(c, False{}).(False); !ok {
		t.Errorf("MkAnd(c, false) should be False")
	}
	if _, ok := MkOr(c, True{}).(True); !ok {
		t.Errorf("MkOr(c, true) should be True")
	}
	if got := MkOr(False{}, c).Key(); got != c.Key() {
		t.Errorf("MkOr(false, c) = %s, want %s", got, c.Key())
	}
	if _, ok := MkAnd().(True); !ok {
		t.Errorf("empty MkAnd should be True")
	}
	if _, ok := MkOr().(False); !ok {
		t.Errorf("empty MkOr should be False")
	}
	// Nested conjunctions flatten and dedup by key.
	d := MkAtom(symbolic.Intern(&symbolic.Bin{
		Op: symbolic.OpLt,
		L:  symbolic.Extent{ID: "ec:table.cap@global:H"},
		R:  symbolic.Num{V: 8, IsInt: true},
	}))
	flat := MkAnd(MkAnd(c, d), c)
	and, ok := flat.(*And)
	if !ok || len(and.Ps) != 2 {
		t.Fatalf("MkAnd(MkAnd(c,d), c) = %s, want 2-way conjunction", flat.Key())
	}
}

func TestMkAtomFoldsBools(t *testing.T) {
	if _, ok := MkAtom(symbolic.Bool{V: true}).(True); !ok {
		t.Errorf("MkAtom(true) should fold to True")
	}
	if _, ok := MkAtom(symbolic.Bool{V: false}).(False); !ok {
		t.Errorf("MkAtom(false) should fold to False")
	}
}

func TestParseFieldRef(t *testing.T) {
	cases := []struct {
		id   string
		want FieldRef
		ok   bool
	}{
		{"ec:table.mode@global:H", FieldRef{"H", "table", "mode"}, true},
		{"ec:grid.cap@global:world", FieldRef{"world", "grid", "cap"}, true},
		{"ec:table.mode@this", FieldRef{}, false},
		{"ec:this→table.mode@global:H", FieldRef{}, false},
		{"ec:table.next.mode@global:H", FieldRef{}, false},
		{"ec:table.mode@1:p", FieldRef{}, false},
		{"aux3:ret", FieldRef{}, false},
		{"ec:tablemode@global:H", FieldRef{}, false},
		{"ec:table.mode@global:", FieldRef{}, false},
	}
	for _, c := range cases {
		got, ok := ParseFieldRef(c.id)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseFieldRef(%q) = %v, %v; want %v, %v", c.id, got, ok, c.want, c.ok)
		}
	}
}

// TestResidualCaseSplit exercises the synthesis on values shaped like
// the simplifier's output for a conditional update: the condition is
// factored inside an addition rather than at the root.
func TestResidualCaseSplit(t *testing.T) {
	c := modeEq(t)
	old := symbolic.Var{Name: "table.count"}
	v1 := symbolic.Var{Name: "1:v"}
	v2 := symbolic.Var{Name: "2:v"}
	// v12 = old + (c ? v1+v2 : v2); v21 = old + (c ? v1+v2 : v1)
	both := symbolic.Intern(&symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{v1, v2}})
	v12 := symbolic.Simplify(symbolic.Intern(&symbolic.Nary{
		Op:   symbolic.OpAdd,
		Args: []symbolic.Expr{old, &symbolic.Cond{C: c, T: both, F: v2}},
	}))
	v21 := symbolic.Simplify(symbolic.Intern(&symbolic.Nary{
		Op:   symbolic.OpAdd,
		Args: []symbolic.Expr{old, &symbolic.Cond{C: c, T: both, F: v1}},
	}))
	if symbolic.Equal(v12, v21) {
		t.Fatalf("test wants unequal values, got both %s", v12.Key())
	}
	p := Residual(v12, v21)
	if p == nil {
		t.Fatal("Residual returned nil")
	}
	if _, ok := p.(False); ok {
		t.Fatalf("Residual = false, want a usable condition (got from %s vs %s)", v12.Key(), v21.Key())
	}
	// The weakened guard keeps exactly the c-true case: parameters are
	// not evaluable at region entry.
	g := Guard(p)
	if want := symbolic.Simplify(c).Key(); g.Key() != want {
		t.Fatalf("Guard(%s) = %s, want %s", p.Key(), g.Key(), want)
	}
	refs := Refs(g)
	if len(refs) != 1 || refs[0] != (FieldRef{"H", "table", "mode"}) {
		t.Fatalf("Refs = %v, want [{H table mode}]", refs)
	}
}

func TestResidualEqualValues(t *testing.T) {
	v := symbolic.Var{Name: "table.count"}
	if _, ok := Residual(v, v).(True); !ok {
		t.Errorf("Residual of equal values should be True")
	}
}

func TestResidualNoEmbeddedCond(t *testing.T) {
	a := symbolic.Var{Name: "1:v"}
	b := symbolic.Var{Name: "2:v"}
	p := Residual(a, b)
	at, ok := p.(Atom)
	if !ok {
		t.Fatalf("Residual(%s, %s) = %s, want equality atom", a.Key(), b.Key(), p.Key())
	}
	if !strings.Contains(at.E.Key(), "==") {
		t.Errorf("atom %s should be an equality", at.E.Key())
	}
	if _, ok := Guard(p).(False); !ok {
		t.Errorf("parameter equality should weaken to False, got %s", Guard(p).Key())
	}
}

func TestGuardableFragment(t *testing.T) {
	c := modeEq(t)
	if !Guardable(c) {
		t.Errorf("%s should be guardable", c.Key())
	}
	if Guardable(symbolic.Var{Name: "1:v"}) {
		t.Errorf("parameters are not guardable")
	}
	if Guardable(symbolic.Extent{ID: "aux3:ret"}) {
		t.Errorf("auxiliary results are not guardable")
	}
	div := symbolic.Intern(&symbolic.Bin{
		Op: symbolic.OpDiv,
		L:  symbolic.Extent{ID: "ec:table.mode@global:H"},
		R:  symbolic.Num{V: 2, IsInt: true},
	})
	if Guardable(div) {
		t.Errorf("division is excluded from the guardable fragment")
	}
	not := symbolic.MkNot(c)
	if !Guardable(not) {
		t.Errorf("negated comparisons are guardable")
	}
}

func testLeaf(vals map[FieldRef]Value) func(FieldRef) (Leaf, error) {
	return func(r FieldRef) (Leaf, error) {
		v, ok := vals[r]
		if !ok {
			return Leaf{}, fmt.Errorf("unbound ref %v", r)
		}
		return Leaf{Get: func() Value { return vals[r] }, Kind: v.K}, nil
	}
}

func TestCompileEval(t *testing.T) {
	c := modeEq(t)
	mode := FieldRef{"H", "table", "mode"}
	p := MkAtom(c)
	vals := map[FieldRef]Value{mode: IntVal(0)}
	f, err := Compile(p, testLeaf(vals))
	if err != nil {
		t.Fatal(err)
	}
	if !f() {
		t.Errorf("guard should hold with mode=0")
	}
	vals[mode] = IntVal(3)
	if f() {
		t.Errorf("guard should fail with mode=3")
	}

	// Mixed int/float comparison promotes.
	mix := MkAtom(symbolic.Intern(&symbolic.Bin{
		Op: symbolic.OpLt,
		L:  symbolic.Extent{ID: "ec:table.load@global:H"},
		R:  symbolic.Num{V: 2, IsInt: true},
	}))
	load := FieldRef{"H", "table", "load"}
	vals[load] = FloatVal(1.5)
	f, err = Compile(mix, testLeaf(vals))
	if err != nil {
		t.Fatal(err)
	}
	if !f() {
		t.Errorf("1.5 < 2 should hold")
	}
	vals[load] = FloatVal(2.5)
	if f() {
		t.Errorf("2.5 < 2 should fail")
	}

	// Conjunction and negation.
	both := MkAnd(MkAtom(symbolic.MkNot(c)), mix)
	vals[mode] = IntVal(1)
	vals[load] = FloatVal(0.5)
	f, err = Compile(both, testLeaf(vals))
	if err != nil {
		t.Fatal(err)
	}
	if !f() {
		t.Errorf("!(mode==0) && load<2 should hold with mode=1, load=0.5")
	}

	// Unbound leaves are compile-time errors.
	if _, err := Compile(MkAtom(symbolic.Intern(&symbolic.Bin{
		Op: symbolic.OpEq,
		L:  symbolic.Extent{ID: "ec:other.x@global:Z"},
		R:  symbolic.Num{V: 0, IsInt: true},
	})), testLeaf(vals)); err == nil {
		t.Errorf("unbound ref should fail compilation")
	}
}

func TestEmitGo(t *testing.T) {
	c := modeEq(t)
	leaf := func(r FieldRef) (GoLeaf, error) {
		if r == (FieldRef{"H", "table", "mode"}) {
			return GoLeaf{Expr: "G_H.F_mode", Kind: KInt}, nil
		}
		return GoLeaf{}, fmt.Errorf("unbound ref %v", r)
	}
	code, err := EmitGo(MkAtom(c), leaf)
	if err != nil {
		t.Fatal(err)
	}
	if code != "(G_H.F_mode == 0)" {
		t.Errorf("EmitGo = %q, want (G_H.F_mode == 0)", code)
	}
	code, err = EmitGo(MkOr(MkAtom(c), MkAtom(symbolic.MkNot(c))), leaf)
	if err != nil {
		t.Fatal(err)
	}
	if code != "((G_H.F_mode == 0) || (!(G_H.F_mode == 0)))" {
		t.Errorf("EmitGo disjunction = %q", code)
	}
	// Mixed arithmetic promotes through float64 and fences FMA.
	sum := symbolic.Intern(&symbolic.Nary{
		Op: symbolic.OpMul,
		Args: []symbolic.Expr{
			symbolic.Extent{ID: "ec:table.mode@global:H"},
			symbolic.Num{V: 0.5, IsInt: false},
		},
	})
	code, _, err = emitExpr(sum, leaf)
	if err != nil {
		t.Fatal(err)
	}
	if code != "float64(float64(G_H.F_mode) * 0.5)" {
		t.Errorf("promoted product = %q", code)
	}
}

func TestRenderNil(t *testing.T) {
	if Render(nil) != "" {
		t.Errorf("Render(nil) should be empty")
	}
	p := MkOr(MkAtom(modeEq(t)))
	if Render(p) != p.Key() {
		t.Errorf("Render should match Key")
	}
}
