package cond

import (
	"fmt"
	"strconv"
	"strings"

	"commute/internal/analysis/symbolic"
)

// Guard evaluation. A guard predicate is compiled once per (method,
// runtime) into a closure over leaf accessors supplied by the caller:
// the interpreter runtime binds FieldRefs to object slots, tests bind
// them to maps. The compiled closure is total — the guardable fragment
// excludes every faulting operator — so region entry never traps.

// Kind is the static type of a guard expression.
type Kind int

const (
	KInt Kind = iota
	KFloat
	KBool
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KBool:
		return "bool"
	}
	return "?"
}

// Value is a guard-time runtime value.
type Value struct {
	K Kind
	I int64
	F float64
	B bool
}

// IntVal wraps an int64.
func IntVal(i int64) Value { return Value{K: KInt, I: i} }

// FloatVal wraps a float64.
func FloatVal(f float64) Value { return Value{K: KFloat, F: f} }

// BoolVal wraps a bool.
func BoolVal(b bool) Value { return Value{K: KBool, B: b} }

func (v Value) asFloat() float64 {
	if v.K == KInt {
		return float64(v.I)
	}
	return v.F
}

// Leaf binds one FieldRef at compile time: a getter producing the
// current value and its static kind.
type Leaf struct {
	Get  func() Value
	Kind Kind
}

// Compile compiles p into a boolean closure. leaf resolves every
// FieldRef in p to an accessor; compilation fails if a leaf cannot be
// bound, an atom is not boolean-valued, or an operator is applied at
// the wrong type — all conditions the planning layer screens for, so
// errors here indicate a plan/runtime mismatch.
func Compile(p Pred, leaf func(FieldRef) (Leaf, error)) (func() bool, error) {
	switch x := p.(type) {
	case nil, False:
		return func() bool { return false }, nil
	case True:
		return func() bool { return true }, nil
	case Atom:
		get, kind, err := compileExpr(x.E, leaf)
		if err != nil {
			return nil, err
		}
		if kind != KBool {
			return nil, fmt.Errorf("cond: atom %s is %s-valued, want bool", x.E.Key(), kind)
		}
		return func() bool { return get().B }, nil
	case *And:
		fns, err := compilePreds(x.Ps, leaf)
		if err != nil {
			return nil, err
		}
		return func() bool {
			for _, f := range fns {
				if !f() {
					return false
				}
			}
			return true
		}, nil
	case *Or:
		fns, err := compilePreds(x.Ps, leaf)
		if err != nil {
			return nil, err
		}
		return func() bool {
			for _, f := range fns {
				if f() {
					return true
				}
			}
			return false
		}, nil
	}
	return nil, fmt.Errorf("cond: unknown predicate %T", p)
}

func compilePreds(ps []Pred, leaf func(FieldRef) (Leaf, error)) ([]func() bool, error) {
	fns := make([]func() bool, len(ps))
	for i, q := range ps {
		f, err := Compile(q, leaf)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	return fns, nil
}

func compileExpr(e symbolic.Expr, leaf func(FieldRef) (Leaf, error)) (func() Value, Kind, error) {
	switch x := e.(type) {
	case symbolic.Num:
		v := x.V
		if x.IsInt {
			iv := IntVal(int64(v))
			return func() Value { return iv }, KInt, nil
		}
		fv := FloatVal(v)
		return func() Value { return fv }, KFloat, nil
	case symbolic.Bool:
		bv := BoolVal(x.V)
		return func() Value { return bv }, KBool, nil
	case symbolic.Extent:
		ref, ok := ParseFieldRef(x.ID)
		if !ok {
			return nil, 0, fmt.Errorf("cond: extent constant %s is not a guardable field reference", x.ID)
		}
		l, err := leaf(ref)
		if err != nil {
			return nil, 0, err
		}
		return l.Get, l.Kind, nil
	case *symbolic.Neg:
		get, kind, err := compileExpr(x.X, leaf)
		if err != nil {
			return nil, 0, err
		}
		switch kind {
		case KInt:
			return func() Value { return IntVal(-get().I) }, KInt, nil
		case KFloat:
			return func() Value { return FloatVal(-get().F) }, KFloat, nil
		}
		return nil, 0, fmt.Errorf("cond: negation of %s operand", kind)
	case *symbolic.Not:
		get, kind, err := compileExpr(x.X, leaf)
		if err != nil {
			return nil, 0, err
		}
		if kind != KBool {
			return nil, 0, fmt.Errorf("cond: ! of %s operand", kind)
		}
		return func() Value { return BoolVal(!get().B) }, KBool, nil
	case *symbolic.Bin:
		return compileBin(x.Op, x.L, x.R, leaf)
	case *symbolic.Nary:
		if len(x.Args) == 0 {
			return nil, 0, fmt.Errorf("cond: empty %s application", x.Op)
		}
		get, kind, err := compileExpr(x.Args[0], leaf)
		if err != nil {
			return nil, 0, err
		}
		for _, a := range x.Args[1:] {
			get, kind, err = combine(x.Op, get, kind, a, leaf)
			if err != nil {
				return nil, 0, err
			}
		}
		return get, kind, nil
	}
	return nil, 0, fmt.Errorf("cond: expression %s is outside the guardable fragment", e.Key())
}

// combine folds one more operand into an n-ary application.
func combine(op symbolic.Op, lget func() Value, lk Kind, r symbolic.Expr, leaf func(FieldRef) (Leaf, error)) (func() Value, Kind, error) {
	rget, rk, err := compileExpr(r, leaf)
	if err != nil {
		return nil, 0, err
	}
	switch op {
	case symbolic.OpAnd:
		if lk != KBool || rk != KBool {
			return nil, 0, fmt.Errorf("cond: && over %s/%s operands", lk, rk)
		}
		return func() Value { return BoolVal(lget().B && rget().B) }, KBool, nil
	case symbolic.OpOr:
		if lk != KBool || rk != KBool {
			return nil, 0, fmt.Errorf("cond: || over %s/%s operands", lk, rk)
		}
		return func() Value { return BoolVal(lget().B || rget().B) }, KBool, nil
	case symbolic.OpAdd:
		return arith(op, lget, lk, rget, rk, func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b })
	case symbolic.OpMul:
		return arith(op, lget, lk, rget, rk, func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b })
	}
	return nil, 0, fmt.Errorf("cond: operator %s is outside the guardable fragment", op)
}

func arith(op symbolic.Op, lget func() Value, lk Kind, rget func() Value, rk Kind, fi func(a, b int64) int64, ff func(a, b float64) float64) (func() Value, Kind, error) {
	if lk == KBool || rk == KBool {
		return nil, 0, fmt.Errorf("cond: %s over %s/%s operands", op, lk, rk)
	}
	if lk == KInt && rk == KInt {
		return func() Value { return IntVal(fi(lget().I, rget().I)) }, KInt, nil
	}
	return func() Value { return FloatVal(ff(lget().asFloat(), rget().asFloat())) }, KFloat, nil
}

func compileBin(op symbolic.Op, l, r symbolic.Expr, leaf func(FieldRef) (Leaf, error)) (func() Value, Kind, error) {
	lget, lk, err := compileExpr(l, leaf)
	if err != nil {
		return nil, 0, err
	}
	rget, rk, err := compileExpr(r, leaf)
	if err != nil {
		return nil, 0, err
	}
	boolPair := lk == KBool && rk == KBool
	numPair := lk != KBool && rk != KBool
	switch op {
	case symbolic.OpEq:
		if boolPair {
			return func() Value { return BoolVal(lget().B == rget().B) }, KBool, nil
		}
		if numPair {
			if lk == KInt && rk == KInt {
				return func() Value { return BoolVal(lget().I == rget().I) }, KBool, nil
			}
			return func() Value { return BoolVal(lget().asFloat() == rget().asFloat()) }, KBool, nil
		}
	case symbolic.OpNe:
		if boolPair {
			return func() Value { return BoolVal(lget().B != rget().B) }, KBool, nil
		}
		if numPair {
			if lk == KInt && rk == KInt {
				return func() Value { return BoolVal(lget().I != rget().I) }, KBool, nil
			}
			return func() Value { return BoolVal(lget().asFloat() != rget().asFloat()) }, KBool, nil
		}
	case symbolic.OpLt, symbolic.OpLe, symbolic.OpGt, symbolic.OpGe:
		if !numPair {
			break
		}
		if lk == KInt && rk == KInt {
			switch op {
			case symbolic.OpLt:
				return func() Value { return BoolVal(lget().I < rget().I) }, KBool, nil
			case symbolic.OpLe:
				return func() Value { return BoolVal(lget().I <= rget().I) }, KBool, nil
			case symbolic.OpGt:
				return func() Value { return BoolVal(lget().I > rget().I) }, KBool, nil
			default:
				return func() Value { return BoolVal(lget().I >= rget().I) }, KBool, nil
			}
		}
		switch op {
		case symbolic.OpLt:
			return func() Value { return BoolVal(lget().asFloat() < rget().asFloat()) }, KBool, nil
		case symbolic.OpLe:
			return func() Value { return BoolVal(lget().asFloat() <= rget().asFloat()) }, KBool, nil
		case symbolic.OpGt:
			return func() Value { return BoolVal(lget().asFloat() > rget().asFloat()) }, KBool, nil
		default:
			return func() Value { return BoolVal(lget().asFloat() >= rget().asFloat()) }, KBool, nil
		}
	default:
		return nil, 0, fmt.Errorf("cond: operator %s is outside the guardable fragment", op)
	}
	return nil, 0, fmt.Errorf("cond: %s over %s/%s operands", op, lk, rk)
}

// ---------------------------------------------------------------------
// Native emission

// GoLeaf is the native rendering of a FieldRef: a Go expression
// reading the field and its static kind.
type GoLeaf struct {
	Expr string
	Kind Kind
}

// EmitGo renders p as a parenthesized Go boolean expression whose
// evaluation matches the compiled closure bit for bit: mixed int/float
// operands promote through float64 conversions, and every float
// arithmetic step is wrapped in float64(...) to fence FMA contraction,
// mirroring the native backend's expression emission.
func EmitGo(p Pred, leaf func(FieldRef) (GoLeaf, error)) (string, error) {
	switch x := p.(type) {
	case nil, False:
		return "false", nil
	case True:
		return "true", nil
	case Atom:
		code, kind, err := emitExpr(x.E, leaf)
		if err != nil {
			return "", err
		}
		if kind != KBool {
			return "", fmt.Errorf("cond: atom %s is %s-valued, want bool", x.E.Key(), kind)
		}
		return code, nil
	case *And:
		return emitJoin(x.Ps, " && ", leaf)
	case *Or:
		return emitJoin(x.Ps, " || ", leaf)
	}
	return "", fmt.Errorf("cond: unknown predicate %T", p)
}

func emitJoin(ps []Pred, sep string, leaf func(FieldRef) (GoLeaf, error)) (string, error) {
	parts := make([]string, len(ps))
	for i, q := range ps {
		s, err := EmitGo(q, leaf)
		if err != nil {
			return "", err
		}
		parts[i] = s
	}
	return "(" + strings.Join(parts, sep) + ")", nil
}

// emitNum renders a numeric literal; float renderings always carry a
// decimal point or exponent so the Go constant stays typed float64.
func emitNum(x symbolic.Num) (string, Kind) {
	if x.IsInt {
		return strconv.FormatInt(int64(x.V), 10), KInt
	}
	s := strconv.FormatFloat(x.V, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s, KFloat
}

func emitExpr(e symbolic.Expr, leaf func(FieldRef) (GoLeaf, error)) (string, Kind, error) {
	switch x := e.(type) {
	case symbolic.Num:
		s, k := emitNum(x)
		return s, k, nil
	case symbolic.Bool:
		if x.V {
			return "true", KBool, nil
		}
		return "false", KBool, nil
	case symbolic.Extent:
		ref, ok := ParseFieldRef(x.ID)
		if !ok {
			return "", 0, fmt.Errorf("cond: extent constant %s is not a guardable field reference", x.ID)
		}
		l, err := leaf(ref)
		if err != nil {
			return "", 0, err
		}
		return l.Expr, l.Kind, nil
	case *symbolic.Neg:
		code, kind, err := emitExpr(x.X, leaf)
		if err != nil {
			return "", 0, err
		}
		if kind == KBool {
			return "", 0, fmt.Errorf("cond: negation of bool operand")
		}
		return "(-" + code + ")", kind, nil
	case *symbolic.Not:
		code, kind, err := emitExpr(x.X, leaf)
		if err != nil {
			return "", 0, err
		}
		if kind != KBool {
			return "", 0, fmt.Errorf("cond: ! of %s operand", kind)
		}
		return "(!" + code + ")", KBool, nil
	case *symbolic.Bin:
		lc, lk, err := emitExpr(x.L, leaf)
		if err != nil {
			return "", 0, err
		}
		rc, rk, err := emitExpr(x.R, leaf)
		if err != nil {
			return "", 0, err
		}
		return emitCompare(x.Op, lc, lk, rc, rk)
	case *symbolic.Nary:
		if len(x.Args) == 0 {
			return "", 0, fmt.Errorf("cond: empty %s application", x.Op)
		}
		code, kind, err := emitExpr(x.Args[0], leaf)
		if err != nil {
			return "", 0, err
		}
		for _, a := range x.Args[1:] {
			rc, rk, err2 := emitExpr(a, leaf)
			if err2 != nil {
				return "", 0, err2
			}
			code, kind, err = emitCombine(x.Op, code, kind, rc, rk)
			if err != nil {
				return "", 0, err
			}
		}
		return code, kind, nil
	}
	return "", 0, fmt.Errorf("cond: expression %s is outside the guardable fragment", e.Key())
}

// promote renders the operand pair at a common numeric kind.
func promote(lc string, lk Kind, rc string, rk Kind) (string, string, Kind) {
	if lk == rk {
		return lc, rc, lk
	}
	if lk == KInt {
		lc = "float64(" + lc + ")"
	}
	if rk == KInt {
		rc = "float64(" + rc + ")"
	}
	return lc, rc, KFloat
}

func emitCombine(op symbolic.Op, lc string, lk Kind, rc string, rk Kind) (string, Kind, error) {
	switch op {
	case symbolic.OpAnd, symbolic.OpOr:
		if lk != KBool || rk != KBool {
			return "", 0, fmt.Errorf("cond: %s over %s/%s operands", op, lk, rk)
		}
		return "(" + lc + " " + op.String() + " " + rc + ")", KBool, nil
	case symbolic.OpAdd, symbolic.OpMul:
		if lk == KBool || rk == KBool {
			return "", 0, fmt.Errorf("cond: %s over %s/%s operands", op, lk, rk)
		}
		lc, rc, k := promote(lc, lk, rc, rk)
		code := "(" + lc + " " + op.String() + " " + rc + ")"
		if k == KFloat {
			code = "float64" + code
		}
		return code, k, nil
	}
	return "", 0, fmt.Errorf("cond: operator %s is outside the guardable fragment", op)
}

func emitCompare(op symbolic.Op, lc string, lk Kind, rc string, rk Kind) (string, Kind, error) {
	switch op {
	case symbolic.OpEq, symbolic.OpNe:
		if lk == KBool && rk == KBool {
			return "(" + lc + " " + op.String() + " " + rc + ")", KBool, nil
		}
		fallthrough
	case symbolic.OpLt, symbolic.OpLe, symbolic.OpGt, symbolic.OpGe:
		if lk == KBool || rk == KBool {
			return "", 0, fmt.Errorf("cond: %s over %s/%s operands", op, lk, rk)
		}
		lc, rc, _ = promote(lc, lk, rc, rk)
		return "(" + lc + " " + op.String() + " " + rc + ")", KBool, nil
	}
	return "", 0, fmt.Errorf("cond: operator %s is outside the guardable fragment", op)
}
