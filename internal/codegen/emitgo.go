package codegen

// Native Go backend: lower a Plan into a compilable Go package whose
// execution mirrors the interpreter runtime (internal/rt) decision for
// decision. Every dialect method becomes up to six Go functions — the
// "customized versions" of §5.3 of the paper plus the context
// refinements the interpreter's executor threads at run time:
//
//	S_m   serial version: every callee serial, every loop serial.
//	D_m   driver version: runs in a serial context but opens a
//	      parallel region (R_ wrapper) at call sites whose callee is
//	      parallel and generates concurrency, exactly like
//	      rt.serialCtx.
//	R_m   region wrapper: runs P_m on the shared rtkit pool's external
//	      worker and drains the pool at the region barrier. The pool is
//	      built lazily once per process (sharedPool_ helper) and reused
//	      across regions, so worker goroutines start once per run, not
//	      once per region. Falls back to S_m when the program runs with
//	      -mode serial.
//	P_m   parallel version: acquires the receiver lock when the plan
//	      says so, spawns ActionSpawn sites onto the pool, runs
//	      ActionHoisted/ActionInline sites inline, and compiles
//	      planned-parallel counted loops to guided self-scheduling
//	      (nativert.GSS).
//	X_m   mutex version: same lock discipline, but ActionSpawn sites
//	      execute inline as X_ calls and every loop is serial — the
//	      interpreter disables the parallel-loop hook under
//	      versionMutex.
//	IS_m  iteration-serial version: the body as parallel-loop
//	      iterations run it (rt.mutexIterCtx): ActionInline sites stay
//	      in the iteration context, other sites whose callee is
//	      parallel dispatch to the mutex version.
//	Q_m   parallel-inline version: the body as an ActionInline callee
//	      runs under a parallel context — sites inline (the root's
//	      site map does not cover them), planned-parallel loops still
//	      become GSS, and the enclosing extent's lock-release closure
//	      threads through.
//
// Speculative extents (statically rejected, optimistically run under
// effect journals — rt.runSpeculativeRegion) add journaled twins of
// the context versions: SJ_ (parallel root, spawns tasks with fresh
// journals), SJS_ (serial body, every access journaled), SJX_ (mutex
// analogue), SJI_ (iteration context), SJQ_ (parallel-inline with
// speculative GSS loops). They take no locks — isolation comes from
// the journals — and their R_ wrapper validates at the join barrier,
// commits single-threaded, or discards and reruns S_ serially.
//
// Versions are emitted on demand, starting from main, so the generated
// package contains exactly the functions some execution mode can reach.
// Emission order is deterministic (declaration order, fixed variant
// order, sorted helpers) and the output is gofmt-formatted, so
// generating twice yields byte-identical files.

import (
	"fmt"
	"go/format"
	"sort"
	"strconv"
	"strings"

	"commute/internal/cond"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
	"commute/internal/interp"
)

// EmitGoOptions configure EmitGoPackage.
type EmitGoOptions struct {
	// Module is the module name of the generated package
	// (default "nativeapp").
	Module string
	// CommutePath is the filesystem path of the commute repository,
	// used for the go.mod replace directive so the generated module
	// resolves commute/nativert and commute/rtkit. Empty omits go.mod.
	CommutePath string
	// AppName labels the generated header comment.
	AppName string
}

// variant identifies one customized version of a method.
type variant int

const (
	varR  variant = iota // region wrapper
	varS                 // serial
	varD                 // driver (serial context)
	varP                 // parallel
	varX                 // mutex
	varI                 // iteration-serial
	varQ                 // parallel-inline
	varJP                // speculative parallel (journaled P_)
	varJS                // speculative serial (journaled S_)
	varJX                // speculative mutex (journaled X_)
	varJI                // speculative iteration-serial (journaled IS_)
	varJQ                // speculative parallel-inline (journaled Q_)
)

var variantPrefix = [...]string{
	varR: "R_", varS: "S_", varD: "D_", varP: "P_", varX: "X_", varI: "IS_", varQ: "Q_",
	varJP: "SJ_", varJS: "SJS_", varJX: "SJX_", varJI: "SJI_", varJQ: "SJQ_",
}

// specVariant reports whether v is one of the journaled speculative
// versions (every field/element access routed through a SpecJournal).
func specVariant(v variant) bool { return v >= varJP }

// vkey is the demand-set key: one method version.
type vkey struct {
	m *types.Method
	v variant
}

// goEmitter holds the whole-package emission state.
type goEmitter struct {
	plan *Plan
	prog *types.Program
	opts EmitGoOptions

	hasSub  map[*types.Class]bool
	layouts map[*types.Class][]interp.FieldInfo
	frames  map[*types.Method][]interp.VarInfo
	muRoots map[*types.Class]bool

	demanded map[vkey]bool
	queue    []vkey
	fnSrc    map[vkey]string

	// helpers maps helper function name to its source; emitted sorted
	// by name.
	helpers map[string]string

	// tri-state memos: 0 unknown, 1 computing/false, 2 false, 3 true.
	driverMemo  map[*types.Method]int8
	parLoopMemo map[*types.Method]int8
	iterMemo    map[*types.Method]int8

	useMath       bool
	useRtkit      bool
	useStrconv    bool
	useSharedPool bool
	useAtomic     bool

	errs []string
}

func (e *goEmitter) errorf(format string, args ...any) {
	e.errs = append(e.errs, fmt.Sprintf(format, args...))
}

// EmitGoPackage lowers the plan to a native Go package: prog.go (the
// translated program), main.go (the driver), and go.mod (when
// opts.CommutePath is set). File contents are gofmt-formatted and
// deterministic for a given plan.
func (p *Plan) EmitGoPackage(opts EmitGoOptions) (map[string][]byte, error) {
	if opts.Module == "" {
		opts.Module = "nativeapp"
	}
	if p.Prog.Main == nil {
		return nil, fmt.Errorf("emitgo: program has no main function")
	}
	for _, m := range p.Prog.Methods {
		if m.Def == nil {
			return nil, fmt.Errorf("emitgo: %s has no body", m.FullName())
		}
	}
	e := &goEmitter{
		plan:        p,
		prog:        p.Prog,
		opts:        opts,
		hasSub:      make(map[*types.Class]bool),
		layouts:     make(map[*types.Class][]interp.FieldInfo),
		frames:      make(map[*types.Method][]interp.VarInfo),
		muRoots:     make(map[*types.Class]bool),
		demanded:    make(map[vkey]bool),
		fnSrc:       make(map[vkey]string),
		helpers:     make(map[string]string),
		driverMemo:  make(map[*types.Method]int8),
		parLoopMemo: make(map[*types.Method]int8),
		iterMemo:    make(map[*types.Method]int8),
	}
	for _, cl := range e.prog.ClassList {
		if cl.Base != nil {
			e.hasSub[cl.Base] = true
		}
		e.layouts[cl] = interp.ClassLayout(e.prog, cl)
	}
	for _, m := range e.prog.Methods {
		e.frames[m] = interp.MethodFrame(e.prog, m)
	}

	// Demand-driven emission from the entry point.
	entry := varS
	if e.needDriver(e.prog.Main) {
		entry = varD
	}
	e.demand(e.prog.Main, entry)
	for i := 0; i < len(e.queue); i++ {
		k := e.queue[i]
		e.fnSrc[k] = e.emitFn(k.m, k.v)
	}

	progSrc := e.assembleProg(entry)
	mainSrc := e.assembleMain()
	if len(e.errs) > 0 {
		sort.Strings(e.errs)
		return nil, fmt.Errorf("emitgo: %s", strings.Join(e.errs, "; "))
	}
	files := map[string][]byte{}
	for name, src := range map[string]string{"prog.go": progSrc, "main.go": mainSrc} {
		out, err := format.Source([]byte(src))
		if err != nil {
			return nil, fmt.Errorf("emitgo: generated %s does not parse: %v\n%s", name, err, numbered(src))
		}
		files[name] = out
	}
	if opts.CommutePath != "" {
		files["go.mod"] = []byte(fmt.Sprintf(
			"module %s\n\ngo 1.22\n\nrequire commute v0.0.0\n\nreplace commute => %s\n",
			opts.Module, opts.CommutePath))
	}
	return files, nil
}

// guardExpr lowers a conditional extent's plan guard to a Go boolean
// expression over the generated global roots: every cond.FieldRef leaf
// becomes a G_<global>(.as_<class>()).F_<field> access. The planner
// resolved every reference before marking the extent Conditional, so
// an error here means the plan and program are mismatched.
func (e *goEmitter) guardExpr(mp *MethodPlan) (string, error) {
	return cond.EmitGo(mp.Guard, func(ref cond.FieldRef) (cond.GoLeaf, error) {
		g, field, ok := ResolveGuardRef(e.prog, ref)
		if !ok {
			return cond.GoLeaf{}, fmt.Errorf("guard reference %s.%s@global:%s does not resolve", ref.Class, ref.Field, ref.Global)
		}
		expr := "G_" + ref.Global
		if g.Class.Name != ref.Class {
			expr += ".as_" + ref.Class + "()"
		}
		expr += ".F_" + field.Name
		var kind cond.Kind
		switch field.Type {
		case types.Basic(types.Int):
			kind = cond.KInt
		case types.Basic(types.Double):
			kind = cond.KFloat
		default:
			kind = cond.KBool
		}
		return cond.GoLeaf{Expr: expr, Kind: kind}, nil
	})
}

// numbered renders source with line numbers for parse-error reports.
func numbered(src string) string {
	var b strings.Builder
	for i, line := range strings.Split(src, "\n") {
		fmt.Fprintf(&b, "%4d  %s\n", i+1, line)
	}
	return b.String()
}

// demand schedules (m, v) for emission if not already demanded.
func (e *goEmitter) demand(m *types.Method, v variant) {
	k := vkey{m, v}
	if !e.demanded[k] {
		e.demanded[k] = true
		e.queue = append(e.queue, k)
	}
}

// ---------------------------------------------------------------------
// Transitive properties

// needDriver reports whether m (running in a serial context) can reach
// a call site that opens a parallel region, so its serial-context
// version must be the D_ driver rather than plain S_.
func (e *goEmitter) needDriver(m *types.Method) bool {
	switch e.driverMemo[m] {
	case 1, 2:
		return false
	case 3:
		return true
	}
	e.driverMemo[m] = 1
	r := false
	for _, cs := range m.CallSites {
		cp := e.plan.Methods[cs.Callee]
		if cp != nil && cp.Parallel && e.plan.GeneratesConcurrency(cs.Callee) {
			r = true
			break
		}
		if e.needDriver(cs.Callee) {
			r = true
			break
		}
	}
	if r {
		e.driverMemo[m] = 3
	} else {
		e.driverMemo[m] = 2
	}
	return r
}

// subtreeHasParallelLoop reports whether m's body, or any body
// transitively reachable through its call sites, contains a
// planned-parallel loop. Inline callees with such loops need the Q_
// version under a parallel context (the loop hook fires for any loop
// executed under the context, not only the root's).
func (e *goEmitter) subtreeHasParallelLoop(m *types.Method) bool {
	switch e.parLoopMemo[m] {
	case 1, 2:
		return false
	case 3:
		return true
	}
	e.parLoopMemo[m] = 1
	r := false
	if m.Def != nil {
		ast.Inspect(m.Def.Body, func(n ast.Node) bool {
			if r {
				return false
			}
			if fs, ok := n.(*ast.ForStmt); ok {
				if lp := e.plan.Loops[fs]; lp != nil && lp.Parallel {
					r = true
					return false
				}
			}
			return true
		})
	}
	if !r {
		for _, cs := range m.CallSites {
			if e.subtreeHasParallelLoop(cs.Callee) {
				r = true
				break
			}
		}
	}
	if r {
		e.parLoopMemo[m] = 3
	} else {
		e.parLoopMemo[m] = 2
	}
	return r
}

// needsIter reports whether m's iteration-serial version differs from
// its plain serial version: somewhere in the iteration context a call
// site dispatches to a mutex version (rt.mutexIterCtx does so at
// non-ActionInline sites whose callee is parallel).
func (e *goEmitter) needsIter(m *types.Method) bool {
	switch e.iterMemo[m] {
	case 1, 2:
		return false
	case 3:
		return true
	}
	e.iterMemo[m] = 1
	mp := e.plan.Methods[m]
	r := false
	for _, cs := range m.CallSites {
		act := ActionSerial
		if mp != nil {
			act = mp.Site[cs.ID]
		}
		if act != ActionInline {
			if cp := e.plan.Methods[cs.Callee]; cp != nil && cp.Parallel {
				r = true
				break
			}
		}
		if e.needsIter(cs.Callee) {
			r = true
			break
		}
	}
	if r {
		e.iterMemo[m] = 3
	} else {
		e.iterMemo[m] = 2
	}
	return r
}

// chainRoot returns the topmost base class of c's inheritance chain.
func chainRoot(c *types.Class) *types.Class {
	for c.Base != nil {
		c = c.Base
	}
	return c
}

// ---------------------------------------------------------------------
// Types and names

func basicGo(b types.Basic) string {
	switch b {
	case types.Int:
		return "int64"
	case types.Double:
		return "float64"
	case types.Bool:
		return "bool"
	case types.String:
		return "string"
	}
	return "any"
}

// goType renders a dialect type as a Go type. Parameter positions use
// slices for arrays (dialect arrays pass by reference).
func (e *goEmitter) goType(t types.Type, param bool) string {
	switch tt := t.(type) {
	case types.Basic:
		if tt == types.Void {
			return ""
		}
		return basicGo(tt)
	case types.Pointer:
		if e.hasSub[tt.Class] {
			return "I_" + tt.Class.Name
		}
		return "*T_" + tt.Class.Name
	case types.PrimPointer:
		return "[]" + basicGo(tt.Elem)
	case types.Array:
		if param || tt.Len < 0 {
			return "[]" + e.goType(tt.Elem, false)
		}
		return "[" + strconv.Itoa(tt.Len) + "]" + e.goType(tt.Elem, false)
	case types.Object:
		return "T_" + tt.Class.Name
	}
	return "any"
}

// zeroVal renders the zero value of a dialect type (what the
// interpreter's zeroValue produces for a freshly declared local).
func (e *goEmitter) zeroVal(t types.Type) string {
	switch tt := t.(type) {
	case types.Basic:
		switch tt {
		case types.Int, types.Double:
			return "0"
		case types.Bool:
			return "false"
		}
		return "nil"
	case types.Pointer, types.PrimPointer:
		return "nil"
	case types.Array, types.Object:
		return e.goType(t, false) + "{}"
	}
	return "nil"
}

// ptrClass returns the class of a pointer- or object-typed expression
// type, or nil.
func ptrClass(t types.Type) *types.Class {
	switch tt := t.(type) {
	case types.Pointer:
		return tt.Class
	case types.Object:
		return tt.Class
	}
	return nil
}

// reprIface reports whether class-c pointers are represented as the
// I_c interface (classes with subclasses) rather than *T_c.
func (e *goEmitter) reprIface(c *types.Class) bool { return e.hasSub[c] }

// exprIface reports whether the Go expression emitted for x has
// interface type. This differs from reprIface of the static class only
// for expressions whose emission produces a concrete pointer (new,
// this, globals) or follows a cast.
func (e *goEmitter) exprIface(x ast.Expr) bool {
	switch v := x.(type) {
	case *ast.NewExpr, *ast.ThisExpr:
		return false
	case *ast.Ident:
		if v.Sym == ast.SymGlobal {
			return false
		}
	case *ast.CastExpr:
		tc := e.prog.Classes[v.ClassName]
		sc := ptrClass(e.prog.TypeOf(v.X))
		if tc == nil || sc == nil {
			return false
		}
		if sc == tc {
			return e.exprIface(v.X)
		}
		if sc.InheritsFrom(tc) { // upcast: emission preserves the operand
			if e.exprIface(v.X) {
				return true
			}
			return e.reprIface(tc)
		}
		return e.reprIface(tc) // downcast helper returns the target repr
	}
	c := ptrClass(e.prog.TypeOf(x))
	return c != nil && e.reprIface(c)
}

// ---------------------------------------------------------------------
// Conversion helpers (demanded on use)

// helperToI returns the name of the nil-normalizing concrete-to-
// interface conversion helper *T_src -> I_dst, generating it on first
// use. A plain Go conversion would wrap a nil *T_src into a non-nil
// interface value and break NULL comparisons downstream.
func (e *goEmitter) helperToI(src, dst *types.Class) string {
	name := "toI_" + src.Name + "_" + dst.Name
	if _, ok := e.helpers[name]; !ok {
		e.helpers[name] = fmt.Sprintf(
			"func %s(p *T_%s) I_%s {\n\tif p == nil {\n\t\treturn nil\n\t}\n\treturn p\n}\n",
			name, src.Name, dst.Name)
	}
	return name
}

// helperDC returns the dynamic-cast helper I_src -> target class,
// generating it on first use. Failed and nil casts yield nil, like the
// interpreter's castValue.
func (e *goEmitter) helperDC(src, dst *types.Class) string {
	name := "dc_" + src.Name + "_" + dst.Name
	if _, ok := e.helpers[name]; !ok {
		ret := "*T_" + dst.Name
		if e.reprIface(dst) {
			ret = "I_" + dst.Name
		}
		e.helpers[name] = fmt.Sprintf(
			"func %s(v I_%s) %s {\n\tc, ok := v.(%s)\n\tif !ok {\n\t\treturn nil\n\t}\n\treturn c\n}\n",
			name, src.Name, ret, ret)
	}
	return name
}

// helperEq returns the pointer-equality helper for a class chain whose
// pointers are interfaces: compares object identity via the shared
// root embedding, handling nil on either side.
func (e *goEmitter) helperEq(root *types.Class) string {
	name := "eqp_" + root.Name
	if _, ok := e.helpers[name]; !ok {
		e.helpers[name] = fmt.Sprintf(
			"func %s(a, b I_%s) bool {\n\tif a == nil || b == nil {\n\t\treturn a == nil && b == nil\n\t}\n\treturn a.as_%s() == b.as_%s()\n}\n",
			name, root.Name, root.Name, root.Name)
	}
	return name
}

// helperPN returns the print-name helper for a pointer argument to
// print: "<class>" using the dynamic class, or NULL.
func (e *goEmitter) helperPN(c *types.Class) string {
	if e.reprIface(c) {
		name := "pnI_" + c.Name
		if _, ok := e.helpers[name]; !ok {
			e.helpers[name] = fmt.Sprintf(
				"func %s(v I_%s) any {\n\tif v == nil {\n\t\treturn nil\n\t}\n\treturn \"<\" + v.cls_() + \">\"\n}\n",
				name, c.Name)
		}
		return name
	}
	name := "pnC_" + c.Name
	if _, ok := e.helpers[name]; !ok {
		e.helpers[name] = fmt.Sprintf(
			"func %s(v *T_%s) any {\n\tif v == nil {\n\t\treturn nil\n\t}\n\treturn \"<%s>\"\n}\n",
			name, c.Name, c.Name)
	}
	return name
}

// helperDmp returns the nil-checking dump helper for a pointer field
// of static class c.
func (e *goEmitter) helperDmp(c *types.Class) string {
	if e.reprIface(c) {
		name := "dmpI_" + c.Name
		if _, ok := e.helpers[name]; !ok {
			e.helpers[name] = fmt.Sprintf(
				"func %s(d *nativert.Dumper, path string, v I_%s) {\n\tif v == nil {\n\t\td.Null(path)\n\t\treturn\n\t}\n\tv.dmp_(d, path)\n}\n",
				name, c.Name)
		}
		return name
	}
	name := "dmpC_" + c.Name
	if _, ok := e.helpers[name]; !ok {
		e.helpers[name] = fmt.Sprintf(
			"func %s(d *nativert.Dumper, path string, v *T_%s) {\n\tif v == nil {\n\t\td.Null(path)\n\t\treturn\n\t}\n\tv.dmp_(d, path)\n}\n",
			name, c.Name)
	}
	return name
}
