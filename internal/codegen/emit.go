package codegen

import (
	"fmt"
	"strings"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/printer"
	"commute/internal/frontend/types"
)

// EmitParallelSource renders the transformed parallel program as
// annotated source in the style of the paper's Figure 2: every class
// that needs one gains a mutual exclusion lock, and every parallel
// method gains the three generated versions —
//
//   - the serial version (the original name), which invokes the
//     parallel version and blocks in the wait() construct;
//   - the parallel version (<name>__parallel), whose object section
//     executes under the receiver lock and whose invocation section
//     spawns the parallel versions of extent operations and runs
//     parallel loops under guided self-scheduling;
//   - the mutex version (<name>__mutex), which locks the object section
//     but invokes mutex versions serially (the §5.2 suppression).
//
// The output targets the run-time library API the paper's generated
// code used (lock.acquire/release, spawn, wait, parallel_for); it is a
// faithful rendering of the execution plan the in-process executors
// (internal/rt, internal/tracer) interpret directly.
func (p *Plan) EmitParallelSource(file *ast.File) string {
	e := &emitter{plan: p}
	var sb strings.Builder
	sb.WriteString("// Automatically parallelized by commutativity analysis.\n")
	sb.WriteString("// Generated constructs: lock.acquire()/lock.release(), spawn(op),\n")
	sb.WriteString("// wait(), and parallel_for (guided self-scheduling).\n\n")
	for _, d := range file.Decls {
		switch x := d.(type) {
		case *ast.ClassDecl:
			sb.WriteString(e.classDecl(x))
			sb.WriteString("\n")
		case *ast.MethodDef:
			sb.WriteString(e.methodDef(x))
			sb.WriteString("\n")
		default:
			sb.WriteString(printer.File(&ast.File{Decls: []ast.Decl{d}}))
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

type emitter struct {
	plan *Plan
}

func (e *emitter) methodByName(className, name string) *types.Method {
	if className == "" {
		for _, m := range e.plan.Prog.Methods {
			if m.Class == nil && m.Name == name {
				return m
			}
		}
		return nil
	}
	cl := e.plan.Prog.Classes[className]
	if cl == nil {
		return nil
	}
	return cl.MethodByName(name)
}

// classDecl renders a class, adding the lock field when the lock
// elimination pass kept it, and prototypes for the generated versions.
func (e *emitter) classDecl(cd *ast.ClassDecl) string {
	var sb strings.Builder
	if cd.Base != "" {
		fmt.Fprintf(&sb, "class %s : public %s {\npublic:\n", cd.Name, cd.Base)
	} else {
		fmt.Fprintf(&sb, "class %s {\npublic:\n", cd.Name)
	}
	cl := e.plan.Prog.Classes[cd.Name]
	if cl != nil && e.plan.LockedClasses[cl] {
		sb.WriteString("  lock mutex;  // inserted: object sections execute atomically\n")
	}
	base := printer.File(&ast.File{Decls: []ast.Decl{cd}})
	// Reuse the plain printer for members, stripping the class frame.
	lines := strings.Split(base, "\n")
	for _, l := range lines[2 : len(lines)-2] {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	// Prototypes for generated versions.
	for _, proto := range cd.Protos {
		if m := e.methodByName(cd.Name, proto.Name); m != nil {
			if mp := e.plan.Methods[m]; mp != nil && mp.Parallel {
				fmt.Fprintf(&sb, "  void %s__parallel(%s);\n", proto.Name, protoParams(proto.Params))
				fmt.Fprintf(&sb, "  void %s__mutex(%s);\n", proto.Name, protoParams(proto.Params))
			}
		}
	}
	sb.WriteString("};\n")
	return sb.String()
}

func protoParams(ps []*ast.Param) string {
	parts := make([]string, len(ps))
	for i := range ps {
		parts[i] = strings.TrimSpace(printer.File(&ast.File{})) // placeholder
	}
	_ = parts
	// Render via the printer's declarator logic by faking a prototype.
	proto := &ast.MethodProto{Name: "x", RetType: &ast.TypeExpr{Kind: ast.TVoid}, Params: ps}
	cd := &ast.ClassDecl{Name: "t", Protos: []*ast.MethodProto{proto}}
	out := printer.File(&ast.File{Decls: []ast.Decl{cd}})
	start := strings.Index(out, "x(")
	end := strings.LastIndex(out, ");")
	if start < 0 || end < 0 || end < start {
		return ""
	}
	return out[start+2 : end]
}

// methodDef renders the generated versions of one method.
func (e *emitter) methodDef(md *ast.MethodDef) string {
	m := e.methodByName(md.ClassName, md.Name)
	mp := e.plan.Methods[m]
	if m == nil || mp == nil || !mp.Parallel {
		return printer.File(&ast.File{Decls: []ast.Decl{md}})
	}

	var sb strings.Builder
	sig := func(suffix string) string {
		if md.ClassName != "" {
			return fmt.Sprintf("void %s::%s%s(%s)", md.ClassName, md.Name, suffix, protoParams(md.Params))
		}
		return fmt.Sprintf("void %s%s(%s)", md.Name, suffix, protoParams(md.Params))
	}

	// Serial version: invoke the parallel version, then wait.
	fmt.Fprintf(&sb, "%s {\n", sig(""))
	args := make([]string, len(md.Params))
	for i, prm := range md.Params {
		args[i] = prm.Name
	}
	fmt.Fprintf(&sb, "  this->%s__parallel(%s);\n  wait();\n}\n\n", md.Name, strings.Join(args, ", "))

	// Parallel version.
	fmt.Fprintf(&sb, "%s {\n", sig("__parallel"))
	sb.WriteString(e.body(m, mp, md.Body, false))
	sb.WriteString("}\n\n")

	// Mutex version.
	fmt.Fprintf(&sb, "%s {\n", sig("__mutex"))
	sb.WriteString(e.body(m, mp, md.Body, true))
	sb.WriteString("}\n")
	return sb.String()
}

// body renders a transformed method body with lock placement: the
// receiver lock (when required) covers the object section and is
// released on every control path before the first extent invocation
// (or at method end under hoisting).
func (e *emitter) body(m *types.Method, mp *MethodPlan, b *ast.Block, mutex bool) string {
	t := &bodyEmitter{e: e, m: m, mp: mp, mutex: mutex, indent: 1}
	if mp.NeedsLock {
		t.line("mutex.acquire();")
		t.lockHeld = true
	}
	t.stmts(b.Stmts)
	if t.lockHeld {
		t.line("mutex.release();")
	}
	return t.sb.String()
}

type bodyEmitter struct {
	e        *emitter
	m        *types.Method
	mp       *MethodPlan
	mutex    bool
	indent   int
	lockHeld bool
	sb       strings.Builder
}

func (t *bodyEmitter) line(format string, a ...any) {
	t.sb.WriteString(strings.Repeat("  ", t.indent))
	fmt.Fprintf(&t.sb, format, a...)
	t.sb.WriteString("\n")
}

func (t *bodyEmitter) raw(s ast.Stmt) {
	t.sb.WriteString(printer.Stmt(s, t.indent))
}

// releaseIfNeeded drops the lock before entering the invocation
// section, unless hoisting holds it through.
func (t *bodyEmitter) releaseIfNeeded() {
	if t.lockHeld && !t.mp.HoldsLockThrough {
		t.line("mutex.release();")
		t.lockHeld = false
	}
}

// containsExtentCall reports whether the subtree holds a non-auxiliary
// call site of this method.
func (t *bodyEmitter) containsExtentCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if c, ok := x.(*ast.CallExpr); ok && !c.Builtin && c.Site >= 0 {
			if t.mp.Site[c.Site] != ActionInline {
				found = true
			}
		}
		return !found
	})
	return found
}

func (t *bodyEmitter) stmts(ss []ast.Stmt) {
	for _, s := range ss {
		t.stmt(s)
	}
}

func (t *bodyEmitter) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.Block:
		t.line("{")
		t.indent++
		t.stmts(x.Stmts)
		t.indent--
		t.line("}")
	case *ast.ExprStmt:
		t.exprStmt(x)
	case *ast.IfStmt:
		t.ifStmt(x)
	case *ast.ForStmt:
		t.forStmt(x)
	default:
		if t.containsExtentCall(s) {
			t.releaseIfNeeded()
		}
		t.raw(s)
	}
}

// containsReceiverWrite reports whether the subtree writes a receiver
// instance variable (which must happen under the lock).
func (t *bodyEmitter) containsReceiverWrite(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if asn, ok := x.(*ast.Assign); ok {
			switch lhs := asn.LHS.(type) {
			case *ast.Ident:
				if lhs.Sym == ast.SymField {
					found = true
				}
			case *ast.FieldAccess:
				if _, isThis := lhs.X.(*ast.ThisExpr); isThis {
					found = true
				}
			case *ast.IndexExpr:
				if id, ok2 := lhs.X.(*ast.Ident); ok2 && id.Sym == ast.SymField {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// ifStmt renders a conditional with the Figure 2 lock discipline: when
// the branches still perform receiver writes the lock stays held into
// them and each path releases before its invocations; otherwise the
// lock drops before the conditional.
func (t *bodyEmitter) ifStmt(x *ast.IfStmt) {
	if !t.containsExtentCall(x) {
		t.raw(x)
		return
	}
	lockLogic := t.lockHeld && !t.mp.HoldsLockThrough
	if lockLogic && !t.containsReceiverWrite(x) {
		// No receiver state is written inside: the object section ends
		// here.
		t.releaseIfNeeded()
		lockLogic = false
	}

	heldAtEntry := t.lockHeld
	t.line("if (%s) {", printer.Expr(x.Cond))
	t.indent++
	t.lockHeld = heldAtEntry
	t.stmtsOf(x.Then)
	if lockLogic && t.lockHeld {
		t.line("mutex.release();")
	}
	t.indent--
	switch {
	case x.Else != nil:
		t.line("} else {")
		t.indent++
		t.lockHeld = heldAtEntry
		t.stmtsOf(x.Else)
		if lockLogic && t.lockHeld {
			t.line("mutex.release();")
		}
		t.indent--
		t.line("}")
	case lockLogic:
		t.line("} else {")
		t.line("  mutex.release();")
		t.line("}")
	default:
		t.line("}")
	}
	t.lockHeld = heldAtEntry && !lockLogic
}

// stmtsOf renders a statement or a block's statements.
func (t *bodyEmitter) stmtsOf(s ast.Stmt) {
	if b, ok := s.(*ast.Block); ok {
		t.stmts(b.Stmts)
		return
	}
	t.stmt(s)
}

func (t *bodyEmitter) exprStmt(x *ast.ExprStmt) {
	call, ok := x.X.(*ast.CallExpr)
	if !ok || call.Builtin || call.Site < 0 {
		t.raw(x)
		return
	}
	site := t.e.plan.Prog.CallSites[call.Site]
	switch t.mp.Site[call.Site] {
	case ActionInline, ActionHoisted, ActionSerial:
		t.raw(x)
	case ActionSpawn:
		t.releaseIfNeeded()
		if t.mutex {
			t.line("%s;", t.renamedCall(call, site, "__mutex"))
			return
		}
		t.line("spawn(%s);", t.renamedCall(call, site, "__parallel"))
	}
}

// renamedCall prints the call with the callee renamed to a generated
// version (only when the callee is a parallel method).
func (t *bodyEmitter) renamedCall(call *ast.CallExpr, site *types.CallSite, suffix string) string {
	cp := t.e.plan.Methods[site.Callee]
	if cp == nil || !cp.Parallel {
		return printer.Expr(call)
	}
	out := printer.Expr(call)
	// Rename the method at its invocation point: the method name is
	// followed by "(" in the rendered call.
	idx := strings.LastIndex(out, call.Method+"(")
	if idx < 0 {
		return out
	}
	return out[:idx] + call.Method + suffix + out[idx+len(call.Method):]
}

func (t *bodyEmitter) forStmt(x *ast.ForStmt) {
	lp := t.e.plan.Loops[x]
	if lp == nil || !lp.Parallel || t.mutex {
		if t.containsExtentCall(x) {
			t.releaseIfNeeded()
			// Serial loop over mutex versions inside the mutex variant.
			t.serialLoopOverMutex(x)
			return
		}
		t.raw(x)
		return
	}
	t.releaseIfNeeded()
	header := loopHeader(x)
	t.line("parallel_for (%s) {  // guided self-scheduling; iterations run mutex versions", header)
	t.indent++
	body := x.Body
	if b, ok := body.(*ast.Block); ok {
		for _, s := range b.Stmts {
			t.mutexStmt(s)
		}
	} else {
		t.mutexStmt(body)
	}
	t.indent--
	t.line("}")
}

// serialLoopOverMutex renders a loop whose invocations call mutex
// versions serially.
func (t *bodyEmitter) serialLoopOverMutex(x *ast.ForStmt) {
	t.line("for (%s) {", loopHeader(x))
	t.indent++
	if b, ok := x.Body.(*ast.Block); ok {
		for _, s := range b.Stmts {
			t.mutexStmt(s)
		}
	} else {
		t.mutexStmt(x.Body)
	}
	t.indent--
	t.line("}")
}

// mutexStmt renders a parallel-loop body statement with extent
// invocations renamed to mutex versions.
func (t *bodyEmitter) mutexStmt(s ast.Stmt) {
	if es, ok := s.(*ast.ExprStmt); ok {
		if call, ok2 := es.X.(*ast.CallExpr); ok2 && !call.Builtin && call.Site >= 0 {
			site := t.e.plan.Prog.CallSites[call.Site]
			if cp := t.e.plan.Methods[site.Callee]; cp != nil && cp.Parallel &&
				t.mp.Site[call.Site] != ActionInline {
				t.line("%s;", t.renamedCall(call, site, "__mutex"))
				return
			}
		}
	}
	t.raw(s)
}

// loopHeader reconstructs "init; cond; post" text.
func loopHeader(x *ast.ForStmt) string {
	init, cond, post := "", "", ""
	if x.Init != nil {
		init = strings.TrimSuffix(strings.TrimSpace(printer.Stmt(x.Init, 0)), ";")
	}
	if x.Cond != nil {
		cond = printer.Expr(x.Cond)
	}
	if x.Post != nil {
		post = strings.TrimSuffix(strings.TrimSpace(printer.Stmt(x.Post, 0)), ";")
	}
	return init + "; " + cond + "; " + post
}
