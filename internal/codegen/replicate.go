package codegen

import (
	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
	"commute/internal/frontend/types"
)

// pureAccumulator reports whether every receiver write in m is a
// commutative accumulation — `f += e`, `f -= e`, `f *= e`, or the
// explicit `f = f ⊕ e` forms (including array-element variants) — and
// the written fields are never read in any other position. Such an
// operation's effect on its receiver is a fold with a commutative
// operator, so per-processor replicas merged by a reduction compute the
// same result (§6.3.4).
func pureAccumulator(m *types.Method) bool {
	if m.Def == nil || m.Class == nil {
		return false
	}
	// Collect the receiver fields the method writes and validate each
	// write's shape.
	written := map[string]bool{}
	ok := true
	ast.Inspect(m.Def.Body, func(n ast.Node) bool {
		asn, isAsn := n.(*ast.Assign)
		if !isAsn {
			return true
		}
		name, isField := receiverFieldTarget(asn.LHS)
		if !isField {
			return true
		}
		written[name] = true
		switch asn.Op {
		case token.PLUSEQ, token.MINUSEQ, token.STAREQ:
			return true
		case token.ASSIGN:
			if isSelfCombine(asn.LHS, asn.RHS) {
				return true
			}
		}
		ok = false
		return false
	})
	if !ok || len(written) == 0 {
		return false
	}
	// The written fields may not be read anywhere except as the source
	// of their own accumulation (the LHS re-read of a compound update
	// or the explicit f = f ⊕ e).
	reads := readsOutsideOwnUpdate(m.Def.Body, written)
	return !reads
}

// receiverFieldTarget resolves an lvalue to a receiver field name
// (array elements report the array's name).
func receiverFieldTarget(lhs ast.Expr) (string, bool) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Sym == ast.SymField {
			return x.Name, true
		}
	case *ast.FieldAccess:
		if _, isThis := x.X.(*ast.ThisExpr); isThis {
			return x.Name, true
		}
	case *ast.IndexExpr:
		return receiverFieldTarget(x.X)
	}
	return "", false
}

// isSelfCombine matches `lhs = lhs ⊕ e` or `lhs = e ⊕ lhs` for a
// commutative ⊕.
func isSelfCombine(lhs, rhs ast.Expr) bool {
	bin, ok := rhs.(*ast.Binary)
	if !ok {
		return false
	}
	if bin.Op != token.PLUS && bin.Op != token.STAR {
		return false
	}
	lname, lok := receiverFieldTarget(lhs)
	if !lok {
		return false
	}
	matches := func(e ast.Expr) bool {
		n, ok := receiverFieldTarget(e)
		return ok && n == lname && sameElement(lhs, e)
	}
	return matches(bin.X) || matches(bin.Y)
}

// sameElement checks that two lvalue-shaped expressions address the
// same element (for array targets, a syntactically identical index).
func sameElement(a, b ast.Expr) bool {
	ai, aIdx := a.(*ast.IndexExpr)
	bi, bIdx := b.(*ast.IndexExpr)
	if aIdx != bIdx {
		return false
	}
	if !aIdx {
		return true
	}
	return exprKey(ai.Index) == exprKey(bi.Index)
}

// exprKey is a small structural fingerprint for index expressions.
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return "i:" + x.Name
	case *ast.IntLit:
		return "n:" + itoa(x.Value)
	case *ast.Binary:
		return "(" + exprKey(x.X) + x.Op.String() + exprKey(x.Y) + ")"
	case *ast.ThisExpr:
		return "this"
	case *ast.FieldAccess:
		return exprKey(x.X) + "." + x.Name
	}
	return "?"
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// readsOutsideOwnUpdate reports whether any written field is read in a
// position other than the source side of its own update.
func readsOutsideOwnUpdate(body ast.Node, written map[string]bool) bool {
	bad := false
	var checkExpr func(e ast.Expr, allowed map[string]bool)
	checkExpr = func(e ast.Expr, allowed map[string]bool) {
		if bad || e == nil {
			return
		}
		switch x := e.(type) {
		case *ast.Ident:
			if x.Sym == ast.SymField && written[x.Name] && !allowed[x.Name] {
				bad = true
			}
		case *ast.FieldAccess:
			if _, isThis := x.X.(*ast.ThisExpr); isThis && written[x.Name] && !allowed[x.Name] {
				bad = true
			}
			checkExpr(x.X, nil)
		case *ast.IndexExpr:
			// The base keeps the allowance; the index never does.
			if name, ok := receiverFieldTarget(x.X); ok && allowed[name] {
				checkExpr(x.Index, nil)
				return
			}
			checkExpr(x.X, allowed)
			checkExpr(x.Index, nil)
		case *ast.Assign:
			name, isField := receiverFieldTarget(x.LHS)
			var allow map[string]bool
			if isField && written[name] {
				allow = map[string]bool{name: true}
			}
			// The LHS location expression itself may index with other
			// values; its re-read allowance applies to the RHS.
			checkExpr(x.RHS, allow)
			if idx, ok := x.LHS.(*ast.IndexExpr); ok {
				checkExpr(idx.Index, nil)
			}
		case *ast.Binary:
			checkExpr(x.X, allowed)
			checkExpr(x.Y, allowed)
		case *ast.Unary:
			checkExpr(x.X, allowed)
		case *ast.CallExpr:
			if x.Recv != nil {
				checkExpr(x.Recv, nil)
			}
			for _, a := range x.Args {
				checkExpr(a, nil)
			}
		case *ast.CastExpr:
			checkExpr(x.X, nil)
		}
	}
	var checkStmt func(s ast.Stmt)
	checkStmt = func(s ast.Stmt) {
		if bad {
			return
		}
		switch st := s.(type) {
		case *ast.Block:
			for _, sub := range st.Stmts {
				checkStmt(sub)
			}
		case *ast.DeclStmt:
			checkExpr(st.Init, nil)
		case *ast.ExprStmt:
			checkExpr(st.X, nil)
		case *ast.IfStmt:
			checkExpr(st.Cond, nil)
			checkStmt(st.Then)
			if st.Else != nil {
				checkStmt(st.Else)
			}
		case *ast.ForStmt:
			if st.Init != nil {
				checkStmt(st.Init)
			}
			checkExpr(st.Cond, nil)
			if st.Post != nil {
				checkStmt(st.Post)
			}
			checkStmt(st.Body)
		case *ast.WhileStmt:
			checkExpr(st.Cond, nil)
			checkStmt(st.Body)
		case *ast.ReturnStmt:
			checkExpr(st.X, nil)
		}
	}
	if b, ok := body.(*ast.Block); ok {
		checkStmt(b)
	}
	return bad
}
