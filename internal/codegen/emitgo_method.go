package codegen

// Per-method-version emission: signatures, lock discipline, statements,
// serial loops, and guided-self-scheduling compilation of
// planned-parallel counted loops.

import (
	"fmt"
	"strings"

	"commute/internal/analysis/effects"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
	"commute/internal/frontend/types"
)

// emitMode is the execution context a function body compiles under;
// it decides call-site dispatch and loop lowering. There is one mode
// per body-carrying variant (varR has a synthesized body).
type emitMode int

const (
	mS emitMode = iota // serial engine
	mD                 // serial context of the parallel engine
	mP                 // parallel version root
	mX                 // mutex version root
	mI                 // parallel-loop iteration context
	mQ                 // inline callee under a parallel context
)

func modeOf(v variant) emitMode {
	switch v {
	case varD:
		return mD
	case varP, varJP:
		return mP
	case varX, varJX:
		return mX
	case varI, varJI:
		return mI
	case varQ, varJQ:
		return mQ
	}
	return mS
}

// fnCtx is the single-function emission state.
type fnCtx struct {
	e    *goEmitter
	m    *types.Method
	mp   *MethodPlan
	mode emitMode

	// spec: the body is a journaled speculative version — every field
	// and element access routes through sj_ (*nativert.SpecJournal),
	// no locks are taken (journals provide isolation), and parallel
	// loops lower to nativert.SpecGSS.
	spec bool

	// locked: the P_/X_ prologue acquired the receiver lock.
	// releaseBeforeSpawn mirrors rt.callVersion: locked and not
	// holding through, so spawn sites and parallel loops release it.
	locked             bool
	releaseBeforeSpawn bool

	b      strings.Builder
	indent int
	tmp    int
}

func (c *fnCtx) line(format string, args ...any) {
	c.b.WriteString(strings.Repeat("\t", c.indent))
	fmt.Fprintf(&c.b, format, args...)
	c.b.WriteByte('\n')
}

func (c *fnCtx) errf(format string, args ...any) {
	c.e.errorf("%s: %s", c.m.FullName(), fmt.Sprintf(format, args...))
}

// emitFn renders one method version as Go source.
func (e *goEmitter) emitFn(m *types.Method, v variant) string {
	if v == varR {
		return e.emitRegionWrapper(m)
	}
	c := &fnCtx{e: e, m: m, mp: e.plan.Methods[m], mode: modeOf(v), spec: specVariant(v)}
	c.b.WriteString(e.fnSignature(m, v))
	c.b.WriteString(" {\n")
	c.indent = 1

	if v == varJP {
		// rt.specCall's entry fast path: once some task failed, the
		// region aborts regardless, so stop journaling work.
		c.line("if sr_.Failed() {")
		c.line("\treturn")
		c.line("}")
	}

	// Hoisted frame locals (interpreter frames allocate every local up
	// front; DeclStmt re-zeroes its slot on execution).
	frame := e.frames[m]
	locals := frame[len(m.Params):]
	if len(locals) > 0 {
		c.line("var (")
		c.indent++
		for _, l := range locals {
			c.line("v_%s %s", l.Name, e.goType(l.Type, false))
		}
		c.indent--
		c.line(")")
		var names []string
		for _, l := range locals {
			names = append(names, "v_"+l.Name)
		}
		c.line("%s = %s", strings.Repeat("_, ", len(locals)-1)+"_", strings.Join(names, ", "))
	}

	// Lock prologue for parallel/mutex versions (rt.callVersion:
	// locked = NeedsLock && recv != nil). Speculative versions never
	// lock — rt.specCall relies on the journals for isolation.
	if (c.mode == mP || c.mode == mX) && !c.spec && c.mp != nil && c.mp.NeedsLock && m.Class != nil {
		e.muRoots[chainRoot(m.Class)] = true
		c.locked = true
		c.releaseBeforeSpawn = !c.mp.HoldsLockThrough
		c.line("o.mu_.Lock()")
		c.line("lockHeld_ := true")
		c.line("defer func() {")
		c.line("\tif lockHeld_ {")
		c.line("\t\to.mu_.Unlock()")
		c.line("\t}")
		c.line("}()")
		if c.mode == mP {
			// rel_ is passed to Q_ callees so planned-parallel loops
			// inside inline callees release the extent lock exactly
			// where the interpreter's loop hook would.
			c.line("rel_ := func() {")
			c.line("\tif lockHeld_ {")
			c.line("\t\tlockHeld_ = false")
			c.line("\t\to.mu_.Unlock()")
			c.line("\t}")
			c.line("}")
			c.line("_ = rel_")
		}
	}

	for _, s := range m.Def.Body.Stmts {
		c.stmt(s)
	}
	if c.valueMode() && !isVoid(m.Ret) && !blockTerminates(m.Def.Body) {
		// The interpreter returns a zero value when control falls off
		// the end of a non-void body.
		c.line("return %s", e.zeroVal(m.Ret))
	}
	c.b.WriteString("}\n")
	return c.b.String()
}

// valueMode reports whether the current version returns the method's
// value (P_ and X_ are void: their callers discard results).
func (c *fnCtx) valueMode() bool { return c.mode != mP && c.mode != mX }

func isVoid(t types.Type) bool {
	b, ok := t.(types.Basic)
	return t == nil || (ok && b == types.Void)
}

// fnSignature renders the func header for one version.
func (e *goEmitter) fnSignature(m *types.Method, v variant) string {
	var b strings.Builder
	b.WriteString("func ")
	if m.Class != nil {
		fmt.Fprintf(&b, "(o *T_%s) ", m.Class.Name)
	}
	b.WriteString(variantPrefix[v])
	b.WriteString(m.Name)
	b.WriteByte('(')
	var params []string
	if v == varP || v == varQ {
		params = append(params, "w *rtkit.Worker")
		e.useRtkit = true
	}
	if v == varQ {
		params = append(params, "rel_ func()")
	}
	// Speculative versions thread the region (for spawning journals and
	// the failed fast path) and the current task's journal. SJS_ is the
	// fully serial journaled body: it needs only the journal.
	switch v {
	case varJP:
		params = append(params, "w *rtkit.Worker", "sr_ *nativert.SpecRegion", "sj_ *nativert.SpecJournal")
		e.useRtkit = true
	case varJQ, varJX, varJI:
		params = append(params, "sr_ *nativert.SpecRegion", "sj_ *nativert.SpecJournal")
	case varJS:
		params = append(params, "sj_ *nativert.SpecJournal")
	}
	for _, p := range m.Params {
		params = append(params, "v_"+p.Name+" "+e.goType(p.Type, true))
	}
	b.WriteString(strings.Join(params, ", "))
	b.WriteByte(')')
	if v != varP && v != varX && v != varJP && v != varJX && v != varR && !isVoid(m.Ret) {
		b.WriteByte(' ')
		b.WriteString(e.goType(m.Ret, false))
	}
	return b.String()
}

// emitRegionWrapper renders R_m: the serial-to-parallel boundary
// (rt.runRegion). The parallel version runs on the shared pool's
// external worker; Drain blocks until every transitively spawned task
// completes, then leaves the workers parked for the next region — one
// pool per run instead of one per region, so region-heavy programs
// stop paying goroutine startup on every boundary. Any return value is
// discarded, exactly as the interpreter's serial context discards
// region results. Under -mode serial it degrades to S_m.
//
// A conditional extent (plan guard synthesized from the pair-test
// residuals) additionally evaluates its guard here, exactly where the
// interpreter runtime does: guard true opens the parallel region,
// guard false (or -conditional=false) takes the serial version, with
// the outcome counted in guardParallel_/guardSerial_.
func (e *goEmitter) emitRegionWrapper(m *types.Method) string {
	if mp := e.plan.Methods[m]; mp != nil && mp.Speculative {
		return e.emitSpecRegionWrapper(m, mp)
	}
	e.demand(m, varS)
	e.demand(m, varP)
	e.ensureSharedPool()
	var b strings.Builder
	b.WriteString(e.fnSignature(m, varR))
	b.WriteString(" {\n")
	recv := ""
	if m.Class != nil {
		recv = "o."
	}
	var args, pargs []string
	pargs = append(pargs, "pool_.External()")
	for _, p := range m.Params {
		args = append(args, "v_"+p.Name)
		pargs = append(pargs, "v_"+p.Name)
	}
	serial := fmt.Sprintf("%sS_%s(%s)", recv, m.Name, strings.Join(args, ", "))
	fmt.Fprintf(&b, "\tif !cfgParallel {\n\t\t%s\n\t\treturn\n\t}\n", serial)
	if mp := e.plan.Methods[m]; mp != nil && mp.Conditional && mp.Guard != nil {
		guard, err := e.guardExpr(mp)
		if err != nil {
			e.errorf("%s: %v", m.FullName(), err)
			guard = "false"
		}
		e.useAtomic = true
		fmt.Fprintf(&b, "\tif !cfgConditional || !(%s) {\n", guard)
		b.WriteString("\t\tatomic.AddInt64(&guardSerial_, 1)\n")
		if mp.SpecEligible {
			// rt.dispatchConditional: a guard-false region may still
			// speculate when the policy forces it — the journals then
			// provide the safety the guard could not prove.
			b.WriteString("\t\tif cfgSpec == 2 {\n")
			e.emitSpecRegionBody(&b, "\t\t\t", m, recv, serial)
			b.WriteString("\t\t}\n")
		}
		fmt.Fprintf(&b, "\t\t%s\n\t\treturn\n\t}\n", serial)
		b.WriteString("\tatomic.AddInt64(&guardParallel_, 1)\n")
	}
	b.WriteString("\tpool_ := sharedPool_()\n")
	fmt.Fprintf(&b, "\t%sP_%s(%s)\n", recv, m.Name, strings.Join(pargs, ", "))
	b.WriteString("\tpool_.Drain()\n}\n")
	return b.String()
}

// ensureSharedPool registers the lazily-built run-wide pool helper.
func (e *goEmitter) ensureSharedPool() {
	e.useRtkit = true
	e.useSharedPool = true
	e.helpers["sharedPool_"] = "var (\n" +
		"\tpoolMu_     sync.Mutex\n" +
		"\tpoolShared_ *rtkit.Pool\n" +
		")\n\n" +
		"// sharedPool_ lazily builds the run-wide scheduler pool. Region\n" +
		"// wrappers drain it at their barrier instead of shutting it down, so\n" +
		"// the worker goroutines start once per process, not once per region.\n" +
		"func sharedPool_() *rtkit.Pool {\n" +
		"\tpoolMu_.Lock()\n" +
		"\tdefer poolMu_.Unlock()\n" +
		"\tif poolShared_ == nil {\n" +
		"\t\tpoolShared_ = rtkit.NewPool(cfgWorkers, cfgSched, rtkit.Hooks{})\n" +
		"\t}\n" +
		"\treturn poolShared_\n}\n"
}

// emitSpecRegionWrapper renders R_m for a speculative extent: the
// serial-to-speculative boundary (rt.serialCtx's mp.Speculative branch
// plus rt.runSpeculativeRegion). The policy gate mirrors
// rt.speculationAllowed with the eligibility and confidence baked in
// as literals; a declined policy runs the original serial body inline,
// exactly like the interpreter's serial fallback.
func (e *goEmitter) emitSpecRegionWrapper(m *types.Method, mp *MethodPlan) string {
	e.demand(m, varS)
	var b strings.Builder
	b.WriteString(e.fnSignature(m, varR))
	b.WriteString(" {\n")
	recv := ""
	if m.Class != nil {
		recv = "o."
	}
	var args []string
	for _, p := range m.Params {
		args = append(args, "v_"+p.Name)
	}
	serial := fmt.Sprintf("%sS_%s(%s)", recv, m.Name, strings.Join(args, ", "))
	if !mp.SpecEligible {
		// rt.speculationAllowed never admits an ineligible extent:
		// every policy runs the serial body.
		fmt.Fprintf(&b, "\t%s\n}\n", serial)
		return b.String()
	}
	fmt.Fprintf(&b, "\tif !cfgParallel || !specAllowed_(%s) {\n\t\t%s\n\t\treturn\n\t}\n",
		formatFloatLit(mp.Confidence), serial)
	e.emitSpecRegionBody(&b, "\t", m, recv, serial)
	b.WriteString("}\n")
	return b.String()
}

// emitSpecRegionBody renders the speculative region core
// (rt.runSpeculativeRegion): run the journaled parallel root under
// panic capture, drain the pool at the join barrier, validate and
// commit single-threaded — or discard every buffer and re-run the
// original serial version, whose heap the speculation never touched.
func (e *goEmitter) emitSpecRegionBody(b *strings.Builder, ind string, m *types.Method, recv, serial string) {
	e.demand(m, varS)
	e.demand(m, varJP)
	e.useAtomic = true
	e.ensureSharedPool()
	rd, wr := e.specSets(m)
	w := func(format string, a ...any) {
		b.WriteString(ind)
		fmt.Fprintf(b, format, a...)
		b.WriteByte('\n')
	}
	w("atomic.AddInt64(&specRegions_, 1)")
	w("pool_ := sharedPool_()")
	w("sr_ := nativert.NewSpecRegion(%s, %s)", rd, wr)
	w("sj_ := sr_.NewJournal()")
	w("func() {")
	w("\tdefer sr_.CapturePanic()")
	pargs := []string{"pool_.External()", "sr_", "sj_"}
	for _, p := range m.Params {
		pargs = append(pargs, "v_"+p.Name)
	}
	w("\t%sSJ_%s(%s)", recv, m.Name, strings.Join(pargs, ", "))
	w("}()")
	w("pool_.Drain()")
	w("if sr_.Commit() {")
	w("\tatomic.AddInt64(&specCommits_, 1)")
	w("\treturn")
	w("}")
	w("atomic.AddInt64(&specAborts_, 1)")
	w("%s", serial)
	w("return")
}

// specSets resolves the speculative extent's declared transitive
// effect sets to "Class.field" key maps at generation time, using the
// same effects.OverlapsDesc lattice test the interpreter's validator
// applies per access at run time — enumerated over every declared
// (class, field) pair, so runtime key membership is equivalent to the
// dynamic descriptor check.
func (e *goEmitter) specSets(m *types.Method) (rdName, wrName string) {
	base := m.Name
	if m.Class != nil {
		base = m.Class.Name + "_" + m.Name
	}
	rdName, wrName = "specRd_"+base, "specWr_"+base
	if _, ok := e.helpers[rdName]; ok {
		return rdName, wrName
	}
	mp := e.plan.Methods[m]
	var rdKeys, wrKeys []string
	for _, cl := range e.prog.ClassList {
		for _, f := range cl.Fields {
			d := effects.FieldDesc(cl, nil, f.Name)
			key := cl.Name + "." + f.Name
			if mp.SpecWrites != nil && mp.SpecWrites.OverlapsDesc(d) {
				wrKeys = append(wrKeys, key)
			}
			if mp.SpecReads != nil && mp.SpecReads.OverlapsDesc(d) {
				rdKeys = append(rdKeys, key)
			}
		}
	}
	e.helpers[rdName] = specSetSrc(rdName, m, "read", rdKeys)
	e.helpers[wrName] = specSetSrc(wrName, m, "write", wrKeys)
	return rdName, wrName
}

// specSetSrc renders one declared-effect key set as a map literal.
func specSetSrc(name string, m *types.Method, kind string, keys []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s: fields the speculative extent rooted at %s may %s,\n", name, m.FullName(), kind)
	b.WriteString("// resolved against its declared transitive effects at generation time.\n")
	fmt.Fprintf(&b, "var %s = map[string]bool{", name)
	if len(keys) > 0 {
		b.WriteByte('\n')
		for _, k := range keys {
			fmt.Fprintf(&b, "\t%q: true,\n", k)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ---------------------------------------------------------------------
// Statements

func (c *fnCtx) stmt(s ast.Stmt) {
	switch v := s.(type) {
	case *ast.Block:
		for _, s := range v.Stmts {
			c.stmt(s)
		}
	case *ast.DeclStmt:
		t := c.e.prog.DeclType[v]
		if v.Init == nil {
			c.line("v_%s = %s", v.Name, c.e.zeroVal(t))
			return
		}
		// The interpreter zeroes the slot before evaluating the
		// initializer; that is observable only when the initializer
		// reads the variable being declared.
		if refersToVar(v.Init, v.Name) {
			c.line("v_%s = %s", v.Name, c.e.zeroVal(t))
		}
		c.line("v_%s = %s", v.Name, c.conv(c.expr(v.Init), v.Init, c.e.prog.TypeOf(v.Init), t))
	case *ast.ExprStmt:
		c.exprStmt(v.X)
	case *ast.IfStmt:
		c.line("if %s {", c.expr(v.Cond))
		c.indent++
		c.stmt(v.Then)
		c.indent--
		if v.Else != nil {
			c.line("} else {")
			c.indent++
			c.stmt(v.Else)
			c.indent--
		}
		c.line("}")
	case *ast.WhileStmt:
		c.line("for %s {", c.expr(v.Cond))
		c.indent++
		c.stmt(v.Body)
		c.indent--
		c.line("}")
	case *ast.ForStmt:
		c.forStmt(v)
	case *ast.ReturnStmt:
		c.returnStmt(v)
	default:
		c.errf("unsupported statement %T", s)
	}
}

func (c *fnCtx) returnStmt(v *ast.ReturnStmt) {
	if !c.valueMode() {
		// Void versions still evaluate the expression for effects.
		if v.X != nil {
			c.exprStmt(v.X)
		}
		c.line("return")
		return
	}
	if v.X == nil {
		if isVoid(c.m.Ret) {
			c.line("return")
		} else {
			c.line("return %s", c.e.zeroVal(c.m.Ret))
		}
		return
	}
	if call, ok := v.X.(*ast.CallExpr); ok && !call.Builtin {
		cp := c.siteDispatch(call)
		if mp := c.e.plan.Methods[cp.callee]; cp.kind == ckRegion && mp != nil &&
			mp.Speculative && !isVoid(c.m.Ret) {
			// Run-time policy split: declining to speculate keeps the
			// serial call's real return value; speculating discards it
			// (the R_ wrapper's serial rerun after an abort included).
			c.e.demand(cp.callee, varS)
			scp := callPlan{kind: ckValue, callee: cp.callee, name: "S_" + cp.callee.Name}
			serial := c.conv(c.renderCall(call, scp), call, c.e.prog.TypeOf(call), c.m.Ret)
			if !mp.SpecEligible {
				c.line("return %s", serial)
				return
			}
			c.line("if cfgParallel && specAllowed_(%s) {", formatFloatLit(mp.Confidence))
			c.line("\t%s", c.renderCall(call, cp))
			c.line("\treturn %s", c.e.zeroVal(c.m.Ret))
			c.line("}")
			c.line("return %s", serial)
			return
		}
		if cp.kind != ckValue {
			// The called version's result is discarded (region/spawn/
			// hoisted); run it, return a zero value.
			c.effectCall(call, cp)
			if isVoid(c.m.Ret) {
				c.line("return")
			} else {
				c.line("return %s", c.e.zeroVal(c.m.Ret))
			}
			return
		}
	}
	c.line("return %s", c.conv(c.expr(v.X), v.X, c.e.prog.TypeOf(v.X), c.m.Ret))
}

// refersToVar reports whether the expression reads local/param name.
func refersToVar(x ast.Expr, name string) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok &&
			(id.Sym == ast.SymLocal || id.Sym == ast.SymParam) && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// blockTerminates reports whether the statement always transfers
// control (Go's terminating-statement analysis, restricted to the
// dialect's statement forms), so emitFn knows when a trailing zero
// return would be flagged as unreachable.
func blockTerminates(s ast.Stmt) bool {
	switch v := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.Block:
		if len(v.Stmts) == 0 {
			return false
		}
		return blockTerminates(v.Stmts[len(v.Stmts)-1])
	case *ast.IfStmt:
		return v.Else != nil && blockTerminates(v.Then) && blockTerminates(v.Else)
	}
	return false
}

// ---------------------------------------------------------------------
// Loops

// forStmt lowers a for loop. Planned-parallel counted loops compile to
// nativert.GSS in parallel-context modes; everything else is a serial
// Go loop (init before, condition re-evaluated, post at the body end —
// the interpreter's serial execution order).
func (c *fnCtx) forStmt(fs *ast.ForStmt) {
	if c.mode == mP || c.mode == mQ {
		if lp := c.e.plan.Loops[fs]; lp != nil && lp.Parallel {
			if info, ok := c.e.staticCounted(fs); ok {
				c.gssLoop(fs, info)
				return
			}
		}
	}
	if fs.Init != nil {
		c.stmt(fs.Init)
	}
	cond := "true"
	if fs.Cond != nil {
		cond = c.expr(fs.Cond)
	}
	c.line("for %s {", cond)
	c.indent++
	c.stmt(fs.Body)
	if fs.Post != nil {
		c.stmt(fs.Post)
	}
	c.indent--
	c.line("}")
}

// countedInfo is the static half of the interpreter's counted-loop
// match (interp.matchCountedLoop) plus the type facts that make the
// runtime half (loop variable holds an int, bound evaluates to an int)
// unconditional: both are declared int.
type countedInfo struct {
	name  string // loop variable (frame-unique name)
	bound ast.Expr
	step  int64
}

// staticCounted decides at generation time exactly what the
// interpreter decides at run time for `for (v = ...; v < bound; v +=
// step)`. Declared-int variables always hold KInt and int-typed pure
// bounds always evaluate to KInt, so the static match is equivalent —
// the generated program takes the GSS path precisely when the
// interpreter's parallel dispatcher would.
func (e *goEmitter) staticCounted(fs *ast.ForStmt) (countedInfo, bool) {
	var info countedInfo
	intType := func(t types.Type) bool {
		b, ok := t.(types.Basic)
		return ok && b == types.Int
	}
	switch init := fs.Init.(type) {
	case *ast.DeclStmt:
		if !intType(e.prog.DeclType[init]) {
			return info, false
		}
		info.name = init.Name
	case *ast.ExprStmt:
		asn, ok := init.X.(*ast.Assign)
		if !ok || asn.Op != token.ASSIGN {
			return info, false
		}
		id, ok := asn.LHS.(*ast.Ident)
		if !ok || (id.Sym != ast.SymLocal && id.Sym != ast.SymParam) || !intType(e.prog.TypeOf(id)) {
			return info, false
		}
		info.name = id.Name
	default:
		return info, false
	}
	cmp, ok := fs.Cond.(*ast.Binary)
	if !ok || cmp.Op != token.LT {
		return info, false
	}
	cid, ok := cmp.X.(*ast.Ident)
	if !ok || (cid.Sym != ast.SymLocal && cid.Sym != ast.SymParam) || cid.Name != info.name {
		return info, false
	}
	if !goPureExpr(cmp.Y) || !intType(e.prog.TypeOf(cmp.Y)) {
		return info, false
	}
	info.bound = cmp.Y
	post, ok := fs.Post.(*ast.ExprStmt)
	if !ok {
		return info, false
	}
	pasn, ok := post.X.(*ast.Assign)
	if !ok || pasn.Op != token.PLUSEQ {
		return info, false
	}
	pid, ok := pasn.LHS.(*ast.Ident)
	if !ok || (pid.Sym != ast.SymLocal && pid.Sym != ast.SymParam) || pid.Name != info.name {
		return info, false
	}
	lit, ok := pasn.RHS.(*ast.IntLit)
	if !ok || lit.Value <= 0 {
		return info, false
	}
	info.step = lit.Value
	return info, true
}

// goPureExpr mirrors interp.pureExpr: no calls, assignments, or
// allocations.
func goPureExpr(x ast.Expr) bool {
	pure := true
	ast.Inspect(x, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.Assign, *ast.NewExpr:
			pure = false
		}
		return pure
	})
	return pure
}

// gssLoop compiles a planned-parallel counted loop to guided
// self-scheduling. Mirrors rt.parallelLoop + rt's loop hook:
//   - the extent lock is released first when the plan says so,
//   - each loop goroutine gets one private copy of the frame variables
//     the body touches (the interpreter's per-worker iteration frame),
//   - the body runs in iteration-context mode (mI dispatch),
//   - afterwards the loop variable holds the bound and the post
//     statement never runs.
func (c *fnCtx) gssLoop(fs *ast.ForStmt, info countedInfo) {
	if fs.Init != nil {
		c.stmt(fs.Init)
	}
	if !c.spec {
		// Speculative versions hold no locks, so there is nothing to
		// release before the loop fans out.
		switch c.mode {
		case mP:
			if c.releaseBeforeSpawn {
				c.releaseLock()
			}
		case mQ:
			c.line("if rel_ != nil {")
			c.line("\trel_()")
			c.line("}")
		}
	}
	// Frame variables referenced by the body, in frame-slot order.
	used := c.bodyVars(fs.Body)
	loopVarUsed := false
	var copies []string
	for _, name := range used {
		if name == info.name {
			loopVarUsed = true
		}
		copies = append(copies, "v_"+name)
	}
	c.line("{")
	c.indent++
	c.line("var gssTo_ int64 = %s", c.expr(info.bound))
	if c.spec {
		// rt.specLoop: one fresh journal per loop goroutine, created
		// inside the goroutine; the factory parameter shadows the
		// enclosing task's sj_ so the iteration body journals into the
		// goroutine's own log.
		c.line("nativert.SpecGSS(sr_, %q, %q, cfgWorkers, v_%s, gssTo_, %d, func(sj_ *nativert.SpecJournal) func(int64) {",
			c.m.FullName(), fs.Pos().String(), info.name, info.step)
	} else {
		c.line("nativert.GSS(%q, %q, cfgWorkers, v_%s, gssTo_, %d, func() func(int64) {",
			c.m.FullName(), fs.Pos().String(), info.name, info.step)
	}
	c.indent++
	if len(copies) > 0 {
		list := strings.Join(copies, ", ")
		c.line("%s := %s", list, list)
	}
	c.line("return func(gssI_ int64) {")
	c.indent++
	if loopVarUsed {
		c.line("v_%s = gssI_", info.name)
	}
	sub := &fnCtx{e: c.e, m: c.m, mp: c.mp, mode: mI, spec: c.spec, indent: c.indent, tmp: c.tmp}
	subEmit(sub, c, fs.Body)
	c.indent--
	c.line("}")
	c.indent--
	c.line("})")
	c.line("v_%s = gssTo_", info.name)
	c.indent--
	c.line("}")
}

// subEmit runs the iteration-mode emitter over the loop body and folds
// its output and temp counter back into the parent context.
func subEmit(sub, parent *fnCtx, body ast.Stmt) {
	sub.stmt(body)
	parent.b.WriteString(sub.b.String())
	parent.tmp = sub.tmp
}

// bodyVars returns the frame variable names referenced in the loop
// body, in frame-slot order (deterministic emission order for the
// per-goroutine copies).
func (c *fnCtx) bodyVars(body ast.Stmt) []string {
	used := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (id.Sym == ast.SymLocal || id.Sym == ast.SymParam) {
			used[id.Name] = true
		}
		return true
	})
	var out []string
	for _, v := range c.e.frames[c.m] {
		if used[v.Name] {
			out = append(out, v.Name)
		}
	}
	return out
}

// releaseLock emits the guarded extent-lock release (rt.callVersion's
// releaseBeforeSpawn path).
func (c *fnCtx) releaseLock() {
	c.line("if lockHeld_ {")
	c.line("\tlockHeld_ = false")
	c.line("\to.mu_.Unlock()")
	c.line("}")
}
