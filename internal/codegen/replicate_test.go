package codegen_test

import (
	"testing"

	"commute/internal/apps/src"
)

// TestReplicableDetection: the pure commutative accumulators (fbank
// slot updates, sums accumulations, vector adds) are flagged; methods
// that read their written state for other purposes (momenta computes
// kinetic energy from the updated velocities, predict wraps the
// position it just advanced) are not.
func TestReplicableDetection(t *testing.T) {
	prog, plan := buildPlan(t, src.Water)
	wantReplicable := map[string]bool{
		"fbank::add":    true,
		"sums::addPot":  true,
		"sums::addKin":  true,
		"h2o::momenta":  false, // reads vx/vy/vz after updating them
		"h2o::predict":  false, // reads px after updating it (wrap)
		"h2o::load":     false, // overwrites, not accumulation
		"water::interf": false, // no receiver writes at all
	}
	for name, want := range wantReplicable {
		m := prog.MethodByFullName(name)
		mp := plan.Methods[m]
		if mp == nil {
			t.Fatalf("no plan for %s", name)
		}
		if mp.Replicable != want {
			t.Errorf("%s replicable = %v, want %v", name, mp.Replicable, want)
		}
	}

	bhProg, bhPlan := buildPlan(t, src.BarnesHut)
	for name, want := range map[string]bool{
		"vector::vecAdd": true,
		"body::gravsub":  false, // phi -= d is fine but acc is updated via vecAdd: gravsub itself writes phi only
	} {
		m := bhProg.MethodByFullName(name)
		if got := bhPlan.Methods[m].Replicable; got != want && name != "body::gravsub" {
			t.Errorf("%s replicable = %v, want %v", name, got, want)
		}
	}
	// gravsub writes phi via -=: a pure accumulation — it is replicable.
	gs := bhProg.MethodByFullName("body::gravsub")
	if !bhPlan.Methods[gs].Replicable {
		t.Error("gravsub's phi -= d is a commuting accumulation; it should be replicable")
	}
}
