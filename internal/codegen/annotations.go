package codegen

import (
	"encoding/json"
	"fmt"
	"sort"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
)

// The paper's compiler runs as separate phases communicating through
// files: the analysis phase writes an annotation file identifying the
// transformations to perform, and a separate code generation pass reads
// it together with the original source (§6.2.3). Annotations is that
// file's content: a serializable, position-addressed rendering of a
// Plan.

// Annotations is the serializable form of a Plan.
type Annotations struct {
	// Methods maps full method names to their decisions.
	Methods map[string]MethodAnnotation `json:"methods"`
	// Loops lists parallel-loop decisions addressed by enclosing method
	// and source line of the `for`.
	Loops []LoopAnnotation `json:"loops"`
	// LockedClasses lists the classes that keep their mutual exclusion
	// lock.
	LockedClasses []string `json:"lockedClasses"`

	LoopsFound      int `json:"loopsFound"`
	LoopsSuppressed int `json:"loopsSuppressed"`
}

// MethodAnnotation is one method's code generation decision.
type MethodAnnotation struct {
	Parallel         bool `json:"parallel"`
	NeedsLock        bool `json:"needsLock,omitempty"`
	HoldsLockThrough bool `json:"holdsLockThrough,omitempty"`
	// Sites maps call-site ordinals (within the method, in source
	// order) to actions: "inline", "spawn", "hoisted", "serial".
	Sites []string `json:"sites,omitempty"`
}

// LoopAnnotation addresses one loop decision.
type LoopAnnotation struct {
	Method   string `json:"method"`
	Line     int    `json:"line"`
	Parallel bool   `json:"parallel"`
	Nested   bool   `json:"nested,omitempty"`
}

var actionNames = map[SiteAction]string{
	ActionInline:  "inline",
	ActionSpawn:   "spawn",
	ActionHoisted: "hoisted",
	ActionSerial:  "serial",
}

var actionValues = map[string]SiteAction{
	"inline":  ActionInline,
	"spawn":   ActionSpawn,
	"hoisted": ActionHoisted,
	"serial":  ActionSerial,
}

// Annotations renders the plan in serializable form.
func (p *Plan) Annotations() *Annotations {
	a := &Annotations{Methods: make(map[string]MethodAnnotation, len(p.Methods))}
	for m, mp := range p.Methods {
		ma := MethodAnnotation{
			Parallel:         mp.Parallel,
			NeedsLock:        mp.NeedsLock,
			HoldsLockThrough: mp.HoldsLockThrough,
		}
		for _, cs := range m.CallSites {
			ma.Sites = append(ma.Sites, actionNames[mp.Site[cs.ID]])
		}
		a.Methods[m.FullName()] = ma
	}
	for _, lp := range p.Loops {
		a.Loops = append(a.Loops, LoopAnnotation{
			Method:   lp.Method.FullName(),
			Line:     lp.Stmt.Pos().Line,
			Parallel: lp.Parallel,
			Nested:   lp.Nested,
		})
	}
	sort.Slice(a.Loops, func(i, j int) bool {
		if a.Loops[i].Method != a.Loops[j].Method {
			return a.Loops[i].Method < a.Loops[j].Method
		}
		return a.Loops[i].Line < a.Loops[j].Line
	})
	for cl := range p.LockedClasses {
		a.LockedClasses = append(a.LockedClasses, cl.Name)
	}
	sort.Strings(a.LockedClasses)
	a.LoopsFound = p.LoopsFound
	a.LoopsSuppressed = p.LoopsSuppressed
	return a
}

// MarshalJSON renders the annotation file content.
func (p *Plan) AnnotationsJSON() ([]byte, error) {
	return json.MarshalIndent(p.Annotations(), "", "  ")
}

// ApplyAnnotations reconstructs an executable Plan from an annotation
// file and the (re-parsed, re-checked) program — the paper's separate
// code generation pass.
func ApplyAnnotations(prog *types.Program, a *Annotations) (*Plan, error) {
	p := &Plan{
		Prog:            prog,
		Methods:         make(map[*types.Method]*MethodPlan),
		Loops:           make(map[*ast.ForStmt]*LoopPlan),
		LockedClasses:   make(map[*types.Class]bool),
		LoopsFound:      a.LoopsFound,
		LoopsSuppressed: a.LoopsSuppressed,
	}
	for _, m := range prog.Methods {
		if m.Def == nil {
			continue
		}
		ma, ok := a.Methods[m.FullName()]
		if !ok {
			return nil, fmt.Errorf("annotations missing method %s", m.FullName())
		}
		if len(ma.Sites) != len(m.CallSites) {
			return nil, fmt.Errorf("annotations for %s have %d sites, program has %d",
				m.FullName(), len(ma.Sites), len(m.CallSites))
		}
		mp := &MethodPlan{
			Method:           m,
			Parallel:         ma.Parallel,
			NeedsLock:        ma.NeedsLock,
			HoldsLockThrough: ma.HoldsLockThrough,
			Site:             make(map[int]SiteAction, len(ma.Sites)),
		}
		for i, cs := range m.CallSites {
			act, ok := actionValues[ma.Sites[i]]
			if !ok {
				return nil, fmt.Errorf("unknown site action %q in %s", ma.Sites[i], m.FullName())
			}
			mp.Site[cs.ID] = act
		}
		p.Methods[m] = mp
	}

	// Re-address loops by (method, line).
	loopAt := make(map[string]*LoopAnnotation, len(a.Loops))
	for i := range a.Loops {
		la := &a.Loops[i]
		loopAt[fmt.Sprintf("%s:%d", la.Method, la.Line)] = la
	}
	for _, m := range prog.Methods {
		if m.Def == nil {
			continue
		}
		method := m
		ast.Inspect(m.Def.Body, func(n ast.Node) bool {
			fs, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			key := fmt.Sprintf("%s:%d", method.FullName(), fs.Pos().Line)
			if la, found := loopAt[key]; found {
				p.Loops[fs] = &LoopPlan{
					Method:   method,
					Stmt:     fs,
					Parallel: la.Parallel,
					Nested:   la.Nested,
					Name:     method.FullName(),
				}
				return false
			}
			return true
		})
	}
	if len(p.Loops) != len(a.Loops) {
		return nil, fmt.Errorf("resolved %d of %d annotated loops (source drift?)", len(p.Loops), len(a.Loops))
	}

	for _, name := range a.LockedClasses {
		cl, ok := prog.Classes[name]
		if !ok {
			return nil, fmt.Errorf("annotations reference unknown class %s", name)
		}
		p.LockedClasses[cl] = true
	}
	return p, nil
}

// ParseAnnotations decodes an annotation file.
func ParseAnnotations(data []byte) (*Annotations, error) {
	var a Annotations
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("malformed annotation file: %w", err)
	}
	return &a, nil
}
