package codegen_test

import (
	"testing"

	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/core"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/rt"
)

// TestAnnotationsRoundTrip: Plan → annotation file → Plan reconstructs
// the same decisions, and the reconstructed plan executes correctly —
// the paper's analysis/codegen phase split (§6.2.3).
func TestAnnotationsRoundTrip(t *testing.T) {
	for _, source := range []string{src.Graph, src.BarnesHut, src.Water} {
		f, err := parser.Parse("app.mc", source)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := types.Check(f)
		if err != nil {
			t.Fatal(err)
		}
		plan := codegen.Build(core.New(prog))

		data, err := plan.AnnotationsJSON()
		if err != nil {
			t.Fatal(err)
		}
		ann, err := codegen.ParseAnnotations(data)
		if err != nil {
			t.Fatal(err)
		}
		// Apply against a freshly parsed and checked program, as the
		// separate code generation pass would.
		f2, err := parser.Parse("app.mc", source)
		if err != nil {
			t.Fatal(err)
		}
		prog2, err := types.Check(f2)
		if err != nil {
			t.Fatal(err)
		}
		plan2, err := codegen.ApplyAnnotations(prog2, ann)
		if err != nil {
			t.Fatal(err)
		}

		// Decisions agree method by method.
		for _, m := range prog.Methods {
			if m.Def == nil {
				continue
			}
			m2 := prog2.MethodByFullName(m.FullName())
			mp, mp2 := plan.Methods[m], plan2.Methods[m2]
			if mp.Parallel != mp2.Parallel || mp.NeedsLock != mp2.NeedsLock ||
				mp.HoldsLockThrough != mp2.HoldsLockThrough {
				t.Errorf("%s: decisions differ after round trip", m.FullName())
			}
		}
		if len(plan2.Loops) != len(plan.Loops) {
			t.Errorf("loops: %d → %d after round trip", len(plan.Loops), len(plan2.Loops))
		}
		if len(plan2.LockedClasses) != len(plan.LockedClasses) {
			t.Errorf("locked classes: %d → %d", len(plan.LockedClasses), len(plan2.LockedClasses))
		}

		// The reconstructed plan drives parallel execution.
		ip := interp.New(prog2, nil)
		r := rt.New(ip, plan2, 4)
		if err := r.Run(); err != nil {
			t.Fatalf("execution under reconstructed plan: %v", err)
		}
		if r.Stats.Regions == 0 {
			t.Error("reconstructed plan opened no parallel regions")
		}
	}
}

// TestAnnotationsDriftDetected: applying annotations against a program
// whose call sites changed is rejected.
func TestAnnotationsDriftDetected(t *testing.T) {
	f, _ := parser.Parse("a.mc", src.Graph)
	prog, err := types.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	plan := codegen.Build(core.New(prog))
	data, err := plan.AnnotationsJSON()
	if err != nil {
		t.Fatal(err)
	}
	ann, err := codegen.ParseAnnotations(data)
	if err != nil {
		t.Fatal(err)
	}

	// A different program: same classes, extra call site.
	drifted := src.GraphBase + `
void main() {
  Builder.build(8);
  Builder.traverse();
  Builder.traverse();
}
`
	f2, _ := parser.Parse("b.mc", drifted)
	prog2, err := types.Check(f2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codegen.ApplyAnnotations(prog2, ann); err == nil {
		t.Error("drifted program must be rejected")
	}

	if _, err := codegen.ParseAnnotations([]byte("{oops")); err == nil {
		t.Error("malformed file must be rejected")
	}
}
