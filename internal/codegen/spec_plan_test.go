package codegen_test

import (
	"testing"

	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/core"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

func buildSpecPlan(t *testing.T, source string) (*types.Program, *codegen.Plan) {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog, codegen.BuildWithOptions(core.New(prog), codegen.Options{SpeculateRejected: true})
}

// TestSpeculativePlanDisjoint: the rejected fill extent gains a
// speculative parallel version with its loop planned parallel, while
// the default plan leaves it serial.
func TestSpeculativePlanDisjoint(t *testing.T) {
	prog, plan := buildSpecPlan(t, src.SpecDisjoint)
	fill := prog.MethodByFullName("table::fill")

	base := codegen.Build(core.New(prog))
	if base.Methods[fill].Parallel {
		t.Fatal("fill must be serial in the default plan")
	}

	mp := plan.Methods[fill]
	if !mp.Parallel || !mp.Speculative {
		t.Fatalf("fill plan = %+v, want parallel+speculative", mp)
	}
	if !mp.SpecEligible {
		t.Error("fill must be speculation-eligible")
	}
	if mp.Confidence <= 0 || mp.Confidence >= 1 {
		t.Errorf("fill confidence = %v, want strictly between 0 and 1", mp.Confidence)
	}
	if mp.SpecWrites == nil || len(mp.SpecWrites.Slice()) == 0 {
		t.Error("fill plan carries no declared write effects")
	}
	if !plan.GeneratesConcurrency(fill) {
		t.Error("speculative fill must generate concurrency (its parallel loop)")
	}
	foundParallelLoop := false
	for _, lp := range plan.Loops {
		if lp.Method == fill && lp.Parallel {
			foundParallelLoop = true
		}
	}
	if !foundParallelLoop {
		t.Error("fill's loop was not planned parallel")
	}

	// main allocates (via init) — structurally rejected, never speculated.
	if mp := plan.Methods[prog.Main]; mp.Speculative {
		t.Error("main must not be speculative")
	}
}

// TestSpeculativePlanConflict: run's two mark invocations become spawn
// sites so the violating program really races its tasks' logs.
func TestSpeculativePlanConflict(t *testing.T) {
	prog, plan := buildSpecPlan(t, src.SpecConflict)
	run := prog.MethodByFullName("driver::run")
	mp := plan.Methods[run]
	if !mp.Parallel || !mp.Speculative {
		t.Fatalf("run plan = %+v, want parallel+speculative", mp)
	}
	spawns := 0
	for _, cs := range run.CallSites {
		if mp.Site[cs.ID] == codegen.ActionSpawn {
			spawns++
		}
	}
	if spawns != 2 {
		t.Errorf("run spawn sites = %d, want 2", spawns)
	}
	if !plan.GeneratesConcurrency(run) {
		t.Error("speculative run must generate concurrency")
	}
}
