package codegen_test

import (
	"bytes"
	"flag"
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"commute"
	"commute/internal/apps"
	"commute/internal/apps/src"
	"commute/internal/codegen"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestEmitGoGolden pins the emitted Go source for the §2 graph
// traversal — the paper's running example — so any unintended change
// to naming, version selection, or statement lowering shows up as a
// reviewable diff.
func TestEmitGoGolden(t *testing.T) {
	sys, err := apps.Graph(8)
	if err != nil {
		t.Fatal(err)
	}
	files, err := sys.Plan.EmitGoPackage(codegen.EmitGoOptions{AppName: "graph"})
	if err != nil {
		t.Fatal(err)
	}
	for name, golden := range map[string]string{
		"prog.go": "graph_prog.go.golden",
		"main.go": "graph_main.go.golden",
	} {
		path := filepath.Join("testdata", golden)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, files[name], 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to record)", err)
		}
		if !bytes.Equal(files[name], want) {
			t.Errorf("%s differs from %s (run with -update to record):\n%s",
				name, path, files[name])
		}
	}
}

// TestEmitGoDeterministic checks generation is reproducible and
// already gofmt-formatted: two emissions are byte-identical and
// formatting is a fixed point.
func TestEmitGoDeterministic(t *testing.T) {
	for _, app := range []struct {
		name string
		load func() (map[string][]byte, error)
	}{
		{"graph", func() (map[string][]byte, error) {
			sys, err := apps.Graph(8)
			if err != nil {
				return nil, err
			}
			return sys.Plan.EmitGoPackage(codegen.EmitGoOptions{AppName: "graph"})
		}},
		{"barneshut", func() (map[string][]byte, error) {
			sys, err := apps.BarnesHut(16, 1)
			if err != nil {
				return nil, err
			}
			return sys.Plan.EmitGoPackage(codegen.EmitGoOptions{AppName: "barneshut"})
		}},
		{"water", func() (map[string][]byte, error) {
			sys, err := apps.Water(8, 1)
			if err != nil {
				return nil, err
			}
			return sys.Plan.EmitGoPackage(codegen.EmitGoOptions{AppName: "water"})
		}},
	} {
		a, err := app.load()
		if err != nil {
			t.Fatalf("%s: %v", app.name, err)
		}
		b, err := app.load()
		if err != nil {
			t.Fatalf("%s: %v", app.name, err)
		}
		for name := range a {
			if !bytes.Equal(a[name], b[name]) {
				t.Errorf("%s/%s: two emissions differ", app.name, name)
			}
			fmted, err := format.Source(a[name])
			if err != nil {
				t.Errorf("%s/%s: not parseable: %v", app.name, name, err)
			} else if !bytes.Equal(fmted, a[name]) {
				t.Errorf("%s/%s: emitted source is not gofmt-stable", app.name, name)
			}
		}
	}
}

// TestEmitGoLowersSpeculativePlans: speculative extents lower to
// journaled SJ_ method versions plus a policy-dispatching R_ wrapper —
// the native backend buffers writes in nativert.SpecJournal instead of
// refusing the plan.
func TestEmitGoLowersSpeculativePlans(t *testing.T) {
	sys, err := commute.Load("spec.mc", src.SpecDisjoint)
	if err != nil {
		t.Fatal(err)
	}
	hasSpec := false
	for _, mp := range sys.SpecPlan.Methods {
		if mp.Speculative {
			hasSpec = true
		}
	}
	if !hasSpec {
		t.Skip("no speculative methods in plan")
	}
	files, err := sys.SpecPlan.EmitGoPackage(codegen.EmitGoOptions{AppName: "spec"})
	if err != nil {
		t.Fatalf("EmitGoPackage refused a speculative plan: %v", err)
	}
	prog := string(files["prog.go"])
	for _, want := range []string{"SJ_", "nativert.SpecStore", "nativert.NewSpecRegion", "sr_.Commit()"} {
		if !strings.Contains(prog, want) {
			t.Errorf("prog.go missing %q", want)
		}
	}
	main := string(files["main.go"])
	for _, want := range []string{`flag.String("speculate"`, "specAllowed_", "spec_commits"} {
		if !strings.Contains(main, want) {
			t.Errorf("main.go missing %q", want)
		}
	}
	for name, src := range files {
		if _, err := format.Source(src); err != nil {
			t.Errorf("%s: not parseable: %v", name, err)
		}
	}
}
