package codegen

// Expression emission and call-site dispatch. Dispatch reproduces the
// interpreter runtime's per-context Invoke hooks: which version a call
// site runs, whether its value survives, and whether it spawns.

import (
	"strconv"
	"strings"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
	"commute/internal/frontend/types"
)

// callKind classifies a call site's lowering.
type callKind int

const (
	ckValue   callKind = iota // plain call, value preserved
	ckRegion                  // serial context opens a parallel region; value discarded
	ckSpawn                   // parallel version spawned as a task; value discarded
	ckHoisted                 // inline under the hoisted lock; value discarded
	ckEffectX                 // mutex version runs inline; value discarded
)

// callPlan is the lowering decision for one call site in the current
// mode.
type callPlan struct {
	kind   callKind
	callee *types.Method
	name   string   // function name with version prefix
	worker bool     // pass the worker as the first argument (Q_, SJ_)
	rel    string   // rel_ argument for Q_ callees ("nil" or "rel_")
	preRel bool     // release the extent lock before the call (mX spawn sites)
	pre    []string // region/journal arguments threaded to spec versions
}

// pInline resolves the version an ActionInline/default site uses under
// a parallel context: the plain serial body, or Q_ when the callee's
// subtree contains a planned-parallel loop the context would still
// parallelize.
func (c *fnCtx) pInline(callee *types.Method) callPlan {
	if c.e.subtreeHasParallelLoop(callee) {
		c.e.demand(callee, varQ)
		rel := "nil"
		if c.mode == mQ {
			rel = "rel_"
		} else if c.releaseBeforeSpawn {
			rel = "rel_"
		}
		return callPlan{kind: ckValue, callee: callee, name: "Q_" + callee.Name, worker: true, rel: rel}
	}
	c.e.demand(callee, varS)
	return callPlan{kind: ckValue, callee: callee, name: "S_" + callee.Name}
}

// iterCall resolves the version an iteration-context call uses when it
// stays in the iteration context.
func (c *fnCtx) iterCall(callee *types.Method) callPlan {
	if c.e.needsIter(callee) {
		c.e.demand(callee, varI)
		return callPlan{kind: ckValue, callee: callee, name: "IS_" + callee.Name}
	}
	c.e.demand(callee, varS)
	return callPlan{kind: ckValue, callee: callee, name: "S_" + callee.Name}
}

// specPInline is pInline's journaled twin: inline callees under a
// speculative parallel context share the task's journal, and their
// planned-parallel loops still fan out (the interpreter's loop hook
// stays armed through inline calls), so subtrees with such loops need
// the SJQ_ version.
func (c *fnCtx) specPInline(callee *types.Method) callPlan {
	if c.e.subtreeHasParallelLoop(callee) {
		c.e.demand(callee, varJQ)
		return callPlan{kind: ckValue, callee: callee, name: "SJQ_" + callee.Name, pre: []string{"sr_", "sj_"}}
	}
	c.e.demand(callee, varJS)
	return callPlan{kind: ckValue, callee: callee, name: "SJS_" + callee.Name, pre: []string{"sj_"}}
}

// specIterCall is iterCall's journaled twin.
func (c *fnCtx) specIterCall(callee *types.Method) callPlan {
	if c.e.needsIter(callee) {
		c.e.demand(callee, varJI)
		return callPlan{kind: ckValue, callee: callee, name: "SJI_" + callee.Name, pre: []string{"sr_", "sj_"}}
	}
	c.e.demand(callee, varJS)
	return callPlan{kind: ckValue, callee: callee, name: "SJS_" + callee.Name, pre: []string{"sj_"}}
}

// siteDispatch decides how a non-builtin call site lowers in the
// current mode.
func (c *fnCtx) siteDispatch(x *ast.CallExpr) callPlan {
	site := c.e.prog.CallSites[x.Site]
	callee := site.Callee
	switch c.mode {
	case mS:
		if c.spec {
			// rt.specCall's plain-Call path: a serial journaled subtree
			// stays serial and journaled all the way down.
			c.e.demand(callee, varJS)
			return callPlan{kind: ckValue, callee: callee, name: "SJS_" + callee.Name, pre: []string{"sj_"}}
		}
		c.e.demand(callee, varS)
		return callPlan{kind: ckValue, callee: callee, name: "S_" + callee.Name}
	case mD:
		// rt.serialCtx: parallel callees that generate concurrency get
		// a region; everything else stays in the serial context.
		if cp := c.e.plan.Methods[callee]; cp != nil && cp.Parallel && c.e.plan.GeneratesConcurrency(callee) {
			c.e.demand(callee, varR)
			return callPlan{kind: ckRegion, callee: callee, name: "R_" + callee.Name}
		}
		if c.e.needDriver(callee) {
			c.e.demand(callee, varD)
			return callPlan{kind: ckValue, callee: callee, name: "D_" + callee.Name}
		}
		c.e.demand(callee, varS)
		return callPlan{kind: ckValue, callee: callee, name: "S_" + callee.Name}
	case mP:
		// rt.callVersion versionParallel: the Invoke switch consults
		// the root method's site map; sites missing from it (inside
		// inline callees) default to inline under the same context.
		var act SiteAction
		if c.mp != nil {
			act = c.mp.Site[x.Site]
		}
		if c.spec {
			// rt.specCall versionParallel: spawn sites get a fresh
			// journal; a spawned callee without its own parallel plan
			// runs the plain journaled body (specCall's plain-Call
			// path), not a fan-out version.
			switch act {
			case ActionSpawn:
				if cp := c.e.plan.Methods[callee]; cp != nil && cp.Parallel {
					c.e.demand(callee, varJP)
					return callPlan{kind: ckSpawn, callee: callee, name: "SJ_" + callee.Name, worker: true}
				}
				c.e.demand(callee, varJS)
				return callPlan{kind: ckSpawn, callee: callee, name: "SJS_" + callee.Name}
			case ActionHoisted:
				cp := c.specPInline(callee)
				cp.kind = ckHoisted
				return cp
			default:
				return c.specPInline(callee)
			}
		}
		switch act {
		case ActionSpawn:
			c.e.demand(callee, varP)
			return callPlan{kind: ckSpawn, callee: callee, name: "P_" + callee.Name}
		case ActionHoisted:
			cp := c.pInline(callee)
			cp.kind = ckHoisted
			return cp
		default:
			return c.pInline(callee)
		}
	case mQ:
		if c.spec {
			return c.specPInline(callee)
		}
		return c.pInline(callee)
	case mX:
		// versionMutex: spawn sites run the mutex version inline
		// (releasing the lock first when not held through); everything
		// else is serial inline — the loop hook is disabled, so plain
		// S_ bodies are exact.
		var act SiteAction
		if c.mp != nil {
			act = c.mp.Site[x.Site]
		}
		if c.spec {
			// rt.specCall versionMutex: spawn sites with a parallel
			// callee recurse inline sharing the journal; everything
			// else runs the serial journaled body. No lock release —
			// spec variants take no locks.
			switch act {
			case ActionSpawn:
				if cp := c.e.plan.Methods[callee]; cp != nil && cp.Parallel {
					c.e.demand(callee, varJX)
					return callPlan{kind: ckEffectX, callee: callee, name: "SJX_" + callee.Name, pre: []string{"sr_", "sj_"}}
				}
				c.e.demand(callee, varJS)
				return callPlan{kind: ckEffectX, callee: callee, name: "SJS_" + callee.Name, pre: []string{"sj_"}}
			case ActionHoisted:
				c.e.demand(callee, varJS)
				return callPlan{kind: ckHoisted, callee: callee, name: "SJS_" + callee.Name, pre: []string{"sj_"}}
			default:
				c.e.demand(callee, varJS)
				return callPlan{kind: ckValue, callee: callee, name: "SJS_" + callee.Name, pre: []string{"sj_"}}
			}
		}
		switch act {
		case ActionSpawn:
			c.e.demand(callee, varX)
			return callPlan{kind: ckEffectX, callee: callee, name: "X_" + callee.Name, preRel: c.releaseBeforeSpawn}
		case ActionHoisted:
			c.e.demand(callee, varS)
			return callPlan{kind: ckHoisted, callee: callee, name: "S_" + callee.Name}
		default:
			c.e.demand(callee, varS)
			return callPlan{kind: ckValue, callee: callee, name: "S_" + callee.Name}
		}
	case mI:
		// rt.mutexIterCtx: per-site map of the site's own caller;
		// ActionInline stays in the iteration context, other sites
		// with a parallel callee run the mutex version.
		act := ActionSerial
		if mp := c.e.plan.Methods[c.m]; mp != nil {
			act = mp.Site[x.Site]
		}
		if c.spec {
			// rt.specIterCtx: inline sites stay in the journaled
			// iteration context; parallel non-inline callees run the
			// journal-sharing mutex version.
			if act == ActionInline {
				return c.specIterCall(callee)
			}
			if cp := c.e.plan.Methods[callee]; cp != nil && cp.Parallel {
				c.e.demand(callee, varJX)
				return callPlan{kind: ckEffectX, callee: callee, name: "SJX_" + callee.Name, pre: []string{"sr_", "sj_"}}
			}
			return c.specIterCall(callee)
		}
		if act == ActionInline {
			return c.iterCall(callee)
		}
		if cp := c.e.plan.Methods[callee]; cp != nil && cp.Parallel {
			c.e.demand(callee, varX)
			return callPlan{kind: ckEffectX, callee: callee, name: "X_" + callee.Name}
		}
		return c.iterCall(callee)
	}
	c.errf("unknown emit mode")
	return callPlan{kind: ckValue, callee: callee, name: "S_" + callee.Name}
}

// recvChain renders the receiver expression of a call to callee,
// inserting the as_ accessor that narrows to the callee's declaring
// class (also resolving interface receivers to concrete pointers).
func (c *fnCtx) recvChain(x *ast.CallExpr, callee *types.Method) string {
	if callee.Class == nil {
		return ""
	}
	if x.Recv == nil {
		// Implicit this->m(...).
		if c.m.Class == callee.Class {
			return "o"
		}
		return "o.as_" + callee.Class.Name + "()"
	}
	code := c.expr(x.Recv)
	cls := ptrClass(c.e.prog.TypeOf(x.Recv))
	if cls == callee.Class && !c.e.exprIface(x.Recv) {
		return code
	}
	return code + ".as_" + callee.Class.Name + "()"
}

// callArgs renders the converted argument list (without worker/rel).
func (c *fnCtx) callArgs(x *ast.CallExpr, callee *types.Method) []string {
	var out []string
	for i, a := range x.Args {
		if i >= len(callee.Params) {
			break
		}
		out = append(out, c.conv(c.expr(a), a, c.e.prog.TypeOf(a), callee.Params[i].Type))
	}
	return out
}

// renderCall assembles a lowered call expression.
func (c *fnCtx) renderCall(x *ast.CallExpr, cp callPlan) string {
	var args []string
	if cp.worker {
		args = append(args, "w", cp.rel)
	}
	args = append(args, cp.pre...)
	args = append(args, c.callArgs(x, cp.callee)...)
	call := cp.name + "(" + strings.Join(args, ", ") + ")"
	if recv := c.recvChain(x, cp.callee); recv != "" {
		return recv + "." + call
	}
	return call
}

// exprStmt lowers an expression statement.
func (c *fnCtx) exprStmt(x ast.Expr) {
	switch v := x.(type) {
	case *ast.Assign:
		c.assign(v)
		return
	case *ast.CallExpr:
		if v.Builtin {
			if v.Method == "print" {
				c.printStmt(v)
			} else {
				c.line("_ = %s", c.builtinCall(v))
			}
			return
		}
		cp := c.siteDispatch(v)
		if cp.kind == ckValue || cp.kind == ckHoisted {
			// Value discarded either way in statement position.
			c.line("%s", c.renderCall(v, cp))
			return
		}
		c.effectCall(v, cp)
		return
	}
	c.line("_ = %s", c.expr(x))
}

// effectCall lowers the value-discarding call kinds.
func (c *fnCtx) effectCall(x *ast.CallExpr, cp callPlan) {
	switch cp.kind {
	case ckRegion, ckHoisted:
		c.line("%s", c.renderCall(x, cp))
	case ckEffectX:
		if cp.preRel {
			c.releaseLock()
		}
		c.line("%s", c.renderCall(x, cp))
	case ckSpawn:
		c.spawn(x, cp)
	default:
		c.line("%s", c.renderCall(x, cp))
	}
}

// spawn lowers an ActionSpawn site: evaluate receiver and arguments
// now (the interpreter evaluates them in the caller before enqueuing
// the task), release the extent lock when the plan says so, and push a
// task running the callee's parallel version.
func (c *fnCtx) spawn(x *ast.CallExpr, cp callPlan) {
	callee := cp.callee
	c.line("{")
	c.indent++
	var taskArgs []string
	recv := ""
	if callee.Class != nil {
		rv := c.tmpName()
		chain := c.recvChain(x, callee)
		// Narrow interface receivers to the concrete declaring class.
		c.line("var %s *T_%s = %s", rv, callee.Class.Name, chain)
		recv = rv + "."
	}
	for i, a := range x.Args {
		if i >= len(callee.Params) {
			break
		}
		av := c.tmpName()
		pt := callee.Params[i].Type
		c.line("var %s %s = %s", av, c.e.goType(pt, true),
			c.conv(c.expr(a), a, c.e.prog.TypeOf(a), pt))
		taskArgs = append(taskArgs, av)
	}
	if c.spec {
		// rt.specCall ActionSpawn: count the task, give it a fresh
		// journal, and capture panics so a faulting task aborts the
		// region instead of killing the pool goroutine. Spec variants
		// hold no locks, so there is nothing to release.
		c.e.useRtkit = true
		jv := c.tmpName()
		c.line("%s := sr_.NewJournal()", jv)
		c.line("w.Pool().Spawn(w, %q, func(cw_ *rtkit.Worker) {", callee.FullName())
		c.line("\tdefer sr_.CapturePanic()")
		if cp.worker {
			args := append([]string{"cw_", "sr_", jv}, taskArgs...)
			c.line("\t%s%s(%s)", recv, cp.name, strings.Join(args, ", "))
		} else {
			args := append([]string{jv}, taskArgs...)
			c.line("\t%s%s(%s)", recv, cp.name, strings.Join(args, ", "))
		}
		c.line("})")
		c.indent--
		c.line("}")
		return
	}
	if c.releaseBeforeSpawn {
		c.releaseLock()
	}
	c.e.useRtkit = true
	args := append([]string{"cw_"}, taskArgs...)
	c.line("w.Pool().Spawn(w, %q, func(cw_ *rtkit.Worker) {", callee.FullName())
	c.line("\t%s%s(%s)", recv, cp.name, strings.Join(args, ", "))
	c.line("})")
	c.indent--
	c.line("}")
}

func (c *fnCtx) tmpName() string {
	c.tmp++
	return "t" + strconv.Itoa(c.tmp) + "_"
}

// ---------------------------------------------------------------------
// Assignment

func (c *fnCtx) assign(a *ast.Assign) {
	lt := c.e.prog.TypeOf(a.LHS)
	if c.spec {
		if addr, desc, shared := c.specLHS(a.LHS); shared {
			c.specAssign(a, addr, desc, lt)
			return
		}
	}
	lhs := c.expr(a.LHS)
	if a.Op == token.ASSIGN {
		if call, ok := a.RHS.(*ast.CallExpr); ok && !call.Builtin {
			cp := c.siteDispatch(call)
			if mp := c.e.plan.Methods[cp.callee]; cp.kind == ckRegion && mp != nil && mp.Speculative {
				// Whether this region call's value survives is decided
				// at run time: the interpreter keeps the serial call's
				// real result when the policy declines to speculate and
				// stores the discarded-region zero when it speculates
				// (committed or aborted — the rerun's value is dropped
				// too).
				c.specRegionAssign(call, cp, lhs, lt)
				return
			}
			if cp.kind != ckValue {
				// The discarded-value call kinds store a zero value
				// (the interpreter stores the region/spawn result
				// Value{}, which reads back as the type's zero).
				c.effectCall(call, cp)
				c.line("%s = %s", lhs, c.e.zeroVal(lt))
				return
			}
		}
		c.line("%s = %s", lhs, c.conv(c.expr(a.RHS), a.RHS, c.e.prog.TypeOf(a.RHS), lt))
		return
	}
	// Compound assignment: int op int stays int; any double promotes
	// the arithmetic to double, then the store coerces back to the
	// target type (truncating for int targets).
	op := map[token.Kind]string{
		token.PLUSEQ: "+", token.MINUSEQ: "-", token.STAREQ: "*", token.SLASHEQ: "/",
	}[a.Op]
	if op == "" {
		c.errf("unsupported compound assignment %v", a.Op)
		return
	}
	rt := c.e.prog.TypeOf(a.RHS)
	rhs := c.expr(a.RHS)
	lInt := isIntType(lt)
	rInt := isIntType(rt)
	if lInt && rInt {
		c.line("%s %s= %s", lhs, op, rhs)
		return
	}
	l, r := lhs, rhs
	if lInt {
		l = "float64(" + l + ")"
	}
	if rInt {
		r = "float64(" + r + ")"
	}
	res := "float64(" + l + " " + op + " " + r + ")"
	if lInt {
		res = "int64(" + res + ")"
	}
	c.line("%s = %s", lhs, res)
}

// specLHS resolves an assignment target to its journal location — the
// address expression and the declared-effect key — when the target is
// shared state. Locals and parameters are frame-private and keep the
// plain lowering (shared reads inside their RHS still journal through
// expr).
func (c *fnCtx) specLHS(x ast.Expr) (addr, desc string, shared bool) {
	switch v := x.(type) {
	case *ast.Ident:
		if v.Sym != ast.SymField {
			return "", "", false
		}
		sel := "o.as_" + v.FieldClass + "().F_" + v.Name
		if c.m.Class != nil && c.m.Class.Name == v.FieldClass {
			sel = "o.F_" + v.Name
		}
		return "&(" + sel + ")", v.FieldClass + "." + v.Name, true
	case *ast.FieldAccess:
		base := c.expr(v.X) // journals the chain's own loads
		bcl := ptrClass(c.e.prog.TypeOf(v.X))
		sel := base + ".as_" + v.DeclClass + "().F_" + v.Name
		if bcl != nil && bcl.Name == v.DeclClass && !c.e.exprIface(v.X) {
			sel = base + ".F_" + v.Name
		}
		return "&(" + sel + ")", v.DeclClass + "." + v.Name, true
	case *ast.IndexExpr:
		return "&(" + c.expr(v.X) + "[" + c.expr(v.Index) + "])", "", true
	}
	return "", "", false
}

// specAssign lowers an assignment to shared state inside a speculative
// task: the write is buffered in the journal and never reaches the
// live heap before commit. The right-hand side is evaluated into a
// temporary first, matching the interpreter's evaluation order.
func (c *fnCtx) specAssign(a *ast.Assign, addr, desc string, lt types.Type) {
	if a.Op == token.ASSIGN {
		if call, ok := a.RHS.(*ast.CallExpr); ok && !call.Builtin {
			if cp := c.siteDispatch(call); cp.kind != ckValue {
				c.effectCall(call, cp)
				c.line("nativert.SpecStore(sj_, %s, %s, %q)", addr, c.e.zeroVal(lt), desc)
				return
			}
		}
		rv := c.tmpName()
		c.line("var %s %s = %s", rv, c.e.goType(lt, false),
			c.conv(c.expr(a.RHS), a.RHS, c.e.prog.TypeOf(a.RHS), lt))
		c.line("nativert.SpecStore(sj_, %s, %s, %q)", addr, rv, desc)
		return
	}
	op := map[token.Kind]string{
		token.PLUSEQ: "+", token.MINUSEQ: "-", token.STAREQ: "*", token.SLASHEQ: "/",
	}[a.Op]
	if op == "" {
		c.errf("unsupported compound assignment %v", a.Op)
		return
	}
	rt := c.e.prog.TypeOf(a.RHS)
	rv := c.tmpName()
	c.line("var %s %s = %s", rv, c.e.goType(rt, false), c.expr(a.RHS))
	pv := c.tmpName()
	c.line("%s := %s", pv, addr)
	ov := c.tmpName()
	c.line("%s := nativert.SpecLoad(sj_, %s, %q)", ov, pv, desc)
	lInt := isIntType(lt)
	rInt := isIntType(rt)
	l, r := ov, rv
	if lInt && !rInt {
		l = "float64(" + l + ")"
	}
	if rInt && !lInt {
		r = "float64(" + r + ")"
	}
	res := l + " " + op + " " + r
	if !lInt || !rInt {
		res = "float64(" + res + ")"
		if lInt {
			res = "int64(" + res + ")"
		}
	}
	c.line("nativert.SpecStore(sj_, %s, %s, %q)", pv, res, desc)
}

// specRegionAssign lowers `target = call()` where the callee opens a
// speculative region from a serial context: the same run-time policy
// split the R_ wrapper applies, but the declined branch keeps the
// serial call's value.
func (c *fnCtx) specRegionAssign(call *ast.CallExpr, cp callPlan, target string, lt types.Type) {
	mp := c.e.plan.Methods[cp.callee]
	c.e.demand(cp.callee, varS)
	scp := callPlan{kind: ckValue, callee: cp.callee, name: "S_" + cp.callee.Name}
	serial := c.conv(c.renderCall(call, scp), call, c.e.prog.TypeOf(call), lt)
	if !mp.SpecEligible {
		// speculationAllowed is constant false: a plain serial call.
		c.line("%s = %s", target, serial)
		return
	}
	c.line("if cfgParallel && specAllowed_(%s) {", formatFloatLit(mp.Confidence))
	c.line("\t%s", c.renderCall(call, cp))
	c.line("\t%s = %s", target, c.e.zeroVal(lt))
	c.line("} else {")
	c.line("\t%s = %s", target, serial)
	c.line("}")
}

func isIntType(t types.Type) bool {
	b, ok := t.(types.Basic)
	return ok && b == types.Int
}

func isDoubleType(t types.Type) bool {
	b, ok := t.(types.Basic)
	return ok && b == types.Double
}

// ---------------------------------------------------------------------
// Conversions

// conv converts an emitted expression from its checked type to the
// target type: the dialect's implicit numeric coercions, array decay
// to slices at call boundaries, and nil-safe concrete-to-interface
// pointer widening.
func (c *fnCtx) conv(code string, src ast.Expr, from, to types.Type) string {
	if from == nil || to == nil {
		return code
	}
	switch tt := to.(type) {
	case types.Basic:
		switch tt {
		case types.Int:
			if isDoubleType(from) {
				return "int64(" + code + ")"
			}
		case types.Double:
			if isIntType(from) {
				return "float64(" + code + ")"
			}
		}
		return code
	case types.Pointer:
		if b, ok := from.(types.Basic); ok && b == types.Null {
			return code // untyped nil assigns to both reprs
		}
		fc := ptrClass(from)
		if fc == nil {
			return code
		}
		if !c.e.reprIface(tt.Class) {
			return code
		}
		if c.e.exprIface(src) {
			return code // interface-to-interface widening is implicit
		}
		if _, ok := src.(*ast.NewExpr); ok {
			return code // never nil; implicit conversion is safe
		}
		return c.e.helperToI(fc, tt.Class) + "(" + code + ")"
	case types.PrimPointer:
		if _, ok := from.(types.Array); ok {
			return c.decay(code, src)
		}
		return code
	case types.Array:
		// Parameter position: dialect arrays pass by reference.
		if fa, ok := from.(types.Array); ok && fa.Len >= 0 {
			return c.decay(code, src)
		}
		return code
	}
	return code
}

// decay turns a Go fixed-array expression into a slice; parameters are
// already slices.
func (c *fnCtx) decay(code string, src ast.Expr) string {
	if id, ok := src.(*ast.Ident); ok && id.Sym == ast.SymParam {
		return code
	}
	return code + "[:]"
}

// ---------------------------------------------------------------------
// Expressions

func (c *fnCtx) expr(x ast.Expr) string {
	switch v := x.(type) {
	case *ast.IntLit:
		return strconv.FormatInt(v.Value, 10)
	case *ast.FloatLit:
		return formatFloatLit(v.Value)
	case *ast.BoolLit:
		if v.Value {
			return "true"
		}
		return "false"
	case *ast.NullLit:
		return "nil"
	case *ast.StringLit:
		return strconv.Quote(v.Value)
	case *ast.ThisExpr:
		return "o"
	case *ast.Ident:
		return c.ident(v)
	case *ast.FieldAccess:
		base := c.expr(v.X)
		bcl := ptrClass(c.e.prog.TypeOf(v.X))
		sel := base + ".as_" + v.DeclClass + "().F_" + v.Name
		if bcl != nil && bcl.Name == v.DeclClass && !c.e.exprIface(v.X) {
			sel = base + ".F_" + v.Name
		}
		if c.spec {
			return c.specLoad("&("+sel+")", v.DeclClass+"."+v.Name, c.e.prog.TypeOf(x))
		}
		return sel
	case *ast.IndexExpr:
		el := c.expr(v.X) + "[" + c.expr(v.Index) + "]"
		if c.spec {
			// Element locations carry no descriptor: the access reached
			// the array through a monitored field load, whose key
			// vouches for the whole aggregate.
			return c.specLoad("&("+el+")", "", c.e.prog.TypeOf(x))
		}
		return el
	case *ast.NewExpr:
		return "&T_" + v.ClassName + "{}"
	case *ast.CastExpr:
		return c.cast(v)
	case *ast.Unary:
		switch v.Op {
		case token.MINUS:
			return "(-" + c.expr(v.X) + ")"
		case token.NOT:
			return "(!" + c.expr(v.X) + ")"
		}
		c.errf("unsupported unary operator %v", v.Op)
		return "0"
	case *ast.Binary:
		return c.binary(v)
	case *ast.CallExpr:
		if v.Builtin {
			if v.Method == "print" {
				c.errf("print used as a value")
				return "0"
			}
			return c.builtinCall(v)
		}
		cp := c.siteDispatch(v)
		if cp.kind != ckValue {
			c.errf("call with discarded result used as a value (site %d)", v.Site)
			return c.e.zeroVal(c.e.prog.TypeOf(v))
		}
		return c.renderCall(v, cp)
	case *ast.Assign:
		c.errf("assignment used as a value")
		return "0"
	}
	c.errf("unsupported expression %T", x)
	return "0"
}

func (c *fnCtx) ident(v *ast.Ident) string {
	switch v.Sym {
	case ast.SymLocal, ast.SymParam:
		return "v_" + v.Name
	case ast.SymConst:
		return "C_" + v.Name
	case ast.SymGlobal:
		return "G_" + v.Name
	case ast.SymField:
		sel := "o.as_" + v.FieldClass + "().F_" + v.Name
		if c.m.Class != nil && c.m.Class.Name == v.FieldClass {
			sel = "o.F_" + v.Name
		}
		if c.spec {
			return c.specLoad("&("+sel+")", v.FieldClass+"."+v.Name, c.e.prog.TypeOf(v))
		}
		return sel
	}
	c.errf("unresolved identifier %s", v.Name)
	return "0"
}

// specLoad routes a shared-state load through the task's journal.
// Aggregate-typed locations (embedded arrays) must stay addressable so
// the caller can index through them — SpecTouch logs the read and
// returns the pointer, and the element accesses journal their own
// locations. Everything else returns the journal's view of the value:
// a buffered write if the task made one, the frozen heap value
// otherwise.
func (c *fnCtx) specLoad(addr, desc string, t types.Type) string {
	if _, ok := t.(types.Array); ok {
		return "(*nativert.SpecTouch(sj_, " + addr + ", " + strconv.Quote(desc) + "))"
	}
	return "nativert.SpecLoad(sj_, " + addr + ", " + strconv.Quote(desc) + ")"
}

// formatFloatLit renders a float literal so Go reads back the same
// float64 bit pattern, keeping a decimal point or exponent so the
// literal stays floating-typed.
func formatFloatLit(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func (c *fnCtx) cast(v *ast.CastExpr) string {
	tc := c.e.prog.Classes[v.ClassName]
	sc := ptrClass(c.e.prog.TypeOf(v.X))
	code := c.expr(v.X)
	if tc == nil || sc == nil {
		c.errf("cast with unresolved classes")
		return code
	}
	if sc == tc {
		return code
	}
	if sc.InheritsFrom(tc) {
		// Upcast: same object, possibly widened to the base interface.
		return c.conv(code, v.X, types.Pointer{Class: sc}, types.Pointer{Class: tc})
	}
	if tc.InheritsFrom(sc) {
		// Downcast: runtime-checked, nil on failure (and on nil input),
		// exactly like the interpreter's castValue.
		return c.e.helperDC(sc, tc) + "(" + code + ")"
	}
	c.errf("cast between unrelated classes %s and %s", sc.Name, tc.Name)
	return code
}

// binary lowers a binary operator. Every float operation is wrapped in
// an explicit float64 conversion: the Go spec permits fusing `a*b + c`
// into an FMA unless the result is "explicitly rounded by a
// conversion", and the interpreter's arithmetic rounds after every
// operation — the conversions make native floats bit-identical.
func (c *fnCtx) binary(v *ast.Binary) string {
	lt := c.e.prog.TypeOf(v.X)
	rt := c.e.prog.TypeOf(v.Y)
	switch v.Op {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT:
		op := map[token.Kind]string{
			token.PLUS: "+", token.MINUS: "-", token.STAR: "*",
			token.SLASH: "/", token.PERCENT: "%",
		}[v.Op]
		if isIntType(lt) && isIntType(rt) {
			return "(" + c.expr(v.X) + " " + op + " " + c.expr(v.Y) + ")"
		}
		return "float64(" + c.floatOperand(v.X, lt) + " " + op + " " + c.floatOperand(v.Y, rt) + ")"
	case token.LT, token.GT, token.LEQ, token.GEQ:
		op := map[token.Kind]string{
			token.LT: "<", token.GT: ">", token.LEQ: "<=", token.GEQ: ">=",
		}[v.Op]
		if isIntType(lt) && isIntType(rt) {
			return "(" + c.expr(v.X) + " " + op + " " + c.expr(v.Y) + ")"
		}
		return "(" + c.floatOperand(v.X, lt) + " " + op + " " + c.floatOperand(v.Y, rt) + ")"
	case token.EQ, token.NEQ:
		return c.equality(v)
	case token.AND:
		return "(" + c.expr(v.X) + " && " + c.expr(v.Y) + ")"
	case token.OR:
		return "(" + c.expr(v.X) + " || " + c.expr(v.Y) + ")"
	}
	c.errf("unsupported binary operator %v", v.Op)
	return "0"
}

func (c *fnCtx) floatOperand(x ast.Expr, t types.Type) string {
	code := c.expr(x)
	if isIntType(t) {
		return "float64(" + code + ")"
	}
	return code
}

func (c *fnCtx) equality(v *ast.Binary) string {
	lt := c.e.prog.TypeOf(v.X)
	rt := c.e.prog.TypeOf(v.Y)
	neg := v.Op == token.NEQ
	wrap := func(cond string) string {
		if neg {
			return "(!" + cond + ")"
		}
		return cond
	}
	lNull := types.Equal(lt, types.Basic(types.Null))
	rNull := types.Equal(rt, types.Basic(types.Null))
	switch {
	case lNull && rNull:
		if neg {
			return "false"
		}
		return "true"
	case rNull:
		if neg {
			return "(" + c.expr(v.X) + " != nil)"
		}
		return "(" + c.expr(v.X) + " == nil)"
	case lNull:
		if neg {
			return "(" + c.expr(v.Y) + " != nil)"
		}
		return "(" + c.expr(v.Y) + " == nil)"
	}
	lc := ptrClass(lt)
	rc := ptrClass(rt)
	if lc != nil && rc != nil {
		if !c.e.reprIface(lc) && !c.e.reprIface(rc) && !c.e.exprIface(v.X) && !c.e.exprIface(v.Y) {
			op := "=="
			if neg {
				op = "!="
			}
			return "(" + c.expr(v.X) + " " + op + " " + c.expr(v.Y) + ")"
		}
		root := chainRoot(lc)
		eq := c.e.helperEq(root)
		a := c.conv(c.expr(v.X), v.X, lt, types.Pointer{Class: root})
		b := c.conv(c.expr(v.Y), v.Y, rt, types.Pointer{Class: root})
		return wrap(eq + "(" + a + ", " + b + ")")
	}
	// Numeric or boolean equality.
	if isIntType(lt) && isIntType(rt) || !types.IsNumeric(lt) {
		op := "=="
		if neg {
			op = "!="
		}
		return "(" + c.expr(v.X) + " " + op + " " + c.expr(v.Y) + ")"
	}
	op := "=="
	if neg {
		op = "!="
	}
	return "(" + c.floatOperand(v.X, lt) + " " + op + " " + c.floatOperand(v.Y, rt) + ")"
}

// ---------------------------------------------------------------------
// Builtins

// builtinCall lowers a math builtin to its math-package equivalent
// (the interpreter's callBuiltin mapping); arguments coerce to float64
// like the interpreter's asFloat.
func (c *fnCtx) builtinCall(v *ast.CallExpr) string {
	name := map[string]string{
		"sqrt": "math.Sqrt", "fabs": "math.Abs", "exp": "math.Exp",
		"log": "math.Log", "floor": "math.Floor", "sin": "math.Sin",
		"cos": "math.Cos", "pow": "math.Pow",
	}[v.Method]
	if name == "" {
		c.errf("unsupported builtin %s", v.Method)
		return "0"
	}
	c.e.useMath = true
	var args []string
	for _, a := range v.Args {
		args = append(args, c.floatOperand(a, c.e.prog.TypeOf(a)))
	}
	return name + "(" + strings.Join(args, ", ") + ")"
}

// printStmt lowers print(...): arguments are pre-converted to the
// concrete Go types nativert.Print formats like the interpreter.
func (c *fnCtx) printStmt(v *ast.CallExpr) {
	var args []string
	for _, a := range v.Args {
		args = append(args, c.printArg(a))
	}
	c.line("nativert.Print(%s)", strings.Join(args, ", "))
}

func (c *fnCtx) printArg(a ast.Expr) string {
	t := c.e.prog.TypeOf(a)
	switch tt := t.(type) {
	case types.Basic:
		switch tt {
		case types.Int:
			return "int64(" + c.expr(a) + ")"
		case types.Double:
			return "float64(" + c.expr(a) + ")"
		case types.Null:
			return "nil"
		}
		return c.expr(a)
	case types.Pointer:
		return c.e.helperPN(tt.Class) + "(" + c.expr(a) + ")"
	case types.Object:
		return strconv.Quote("<" + tt.Class.Name + ">")
	}
	return c.expr(a)
}
