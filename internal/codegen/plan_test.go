package codegen_test

import (
	"testing"

	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/core"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

func buildPlan(t *testing.T, source string) (*types.Program, *codegen.Plan) {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog, codegen.Build(core.New(prog))
}

func TestBarnesHutPlan(t *testing.T) {
	prog, plan := buildPlan(t, src.BarnesHut)

	// Six parallelizable loops: computeForces, resetForces,
	// advanceVelocities, advancePositions, openCell, openLeaf — the two
	// loops dynamically nested inside the force loop are suppressed.
	if plan.LoopsFound != 6 {
		var names []string
		for _, lp := range plan.Loops {
			names = append(names, lp.Name)
		}
		t.Errorf("loops found = %d (%v), want 6", plan.LoopsFound, names)
	}
	if plan.LoopsSuppressed != 2 {
		t.Errorf("loops suppressed = %d, want 2", plan.LoopsSuppressed)
	}
	var parallelNames, nestedNames []string
	for _, lp := range plan.Loops {
		if lp.Parallel {
			parallelNames = append(parallelNames, lp.Name)
		} else {
			nestedNames = append(nestedNames, lp.Name)
		}
	}
	if len(parallelNames) != 4 {
		t.Errorf("parallel loops = %v, want 4", parallelNames)
	}
	for _, n := range nestedNames {
		if n != "body::openCell" && n != "body::openLeaf" {
			t.Errorf("unexpected suppressed loop in %s", n)
		}
	}

	// Lock policy: gravsub writes phi and invokes only the nested
	// acc.vecAdd → lock hoisting applies; vector needs no lock of its
	// own; walksub needs no lock at all (object section reads only).
	gs := plan.Methods[prog.MethodByFullName("body::gravsub")]
	if !gs.Parallel || !gs.NeedsLock || !gs.HoldsLockThrough {
		t.Errorf("gravsub plan = %+v, want parallel+lock+hoisted", gs)
	}
	ws := plan.Methods[prog.MethodByFullName("body::walksub")]
	if !ws.Parallel || ws.NeedsLock {
		t.Errorf("walksub plan = %+v, want parallel without lock", ws)
	}
	if plan.LockedClasses[prog.Classes["vector"]] {
		t.Error("vector should not keep a lock (hoisting eliminates it)")
	}
	if !plan.LockedClasses[prog.Classes["body"]] {
		t.Error("body must keep its lock")
	}

	// Serial methods call serially.
	bt := plan.Methods[prog.MethodByFullName("nbody::buildTree")]
	if bt.Parallel {
		t.Error("buildTree must be serial")
	}
}

func TestGraphPlan(t *testing.T) {
	prog, plan := buildPlan(t, src.Graph)
	visit := plan.Methods[prog.MethodByFullName("graph::visit")]
	if !visit.Parallel || !visit.NeedsLock {
		t.Fatalf("visit plan = %+v, want parallel with lock", visit)
	}
	if visit.HoldsLockThrough {
		t.Error("visit spawns free-object recursion; hoisting must not apply")
	}
	// The recursive sites spawn.
	m := prog.MethodByFullName("graph::visit")
	for _, cs := range m.CallSites {
		if visit.Site[cs.ID] != codegen.ActionSpawn {
			t.Errorf("visit call site %d action = %v, want spawn", cs.ID, visit.Site[cs.ID])
		}
	}
	if !plan.LockedClasses[prog.Classes["graph"]] {
		t.Error("graph must keep its lock")
	}
}
