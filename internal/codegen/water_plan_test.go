package codegen_test

import (
	"testing"

	"commute/internal/apps/src"
)

// TestWaterPlan reproduces the §6.3.2 statistics: seven parallelizable
// loops found, two (the O(n²) inner loops) suppressed as nested, five
// parallel loops generated.
func TestWaterPlan(t *testing.T) {
	prog, plan := buildPlan(t, src.Water)
	if plan.LoopsFound != 7 {
		var names []string
		for _, lp := range plan.Loops {
			names = append(names, lp.Name)
		}
		t.Errorf("loops found = %d (%v), want 7", plan.LoopsFound, names)
	}
	if plan.LoopsSuppressed != 2 {
		t.Errorf("loops suppressed = %d, want 2", plan.LoopsSuppressed)
	}
	parallel := 0
	for _, lp := range plan.Loops {
		if lp.Parallel {
			parallel++
		} else if lp.Name != "h2o::interForces" && lp.Name != "h2o::potEnergy" {
			t.Errorf("unexpected suppressed loop in %s", lp.Name)
		}
	}
	if parallel != 5 {
		t.Errorf("parallel loops = %d, want 5", parallel)
	}

	// Contended classes keep their locks: h2o (pairwise addForce) and
	// sums (global accumulators).
	if !plan.LockedClasses[prog.Classes["h2o"]] {
		t.Error("h2o must keep its lock")
	}
	if !plan.LockedClasses[prog.Classes["sums"]] {
		t.Error("sums must keep its lock")
	}
}
