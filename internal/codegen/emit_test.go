package codegen_test

import (
	"strings"
	"testing"

	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/core"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

func emit(t *testing.T, source string) string {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	plan := codegen.Build(core.New(prog))
	return plan.EmitParallelSource(f)
}

// TestEmitFigure2 checks that the generated parallel graph traversal
// has exactly the structure of the paper's Figure 2: the lock field,
// the serial version invoking the parallel version plus wait, the
// object section under the lock with releases on both paths before the
// spawned recursive visits.
func TestEmitFigure2(t *testing.T) {
	out := emit(t, src.Graph)
	for _, want := range []string{
		"lock mutex;",
		"void graph::visit(int p) {\n  this->visit__parallel(p);\n  wait();\n}",
		"void graph::visit__parallel(int p) {\n  mutex.acquire();\n  sum = sum + p;",
		"mark = TRUE;\n    mutex.release();",
		"spawn(left->visit__parallel(val));",
		"spawn(right->visit__parallel(val));",
		"} else {\n    mutex.release();\n  }",
		"left->visit__mutex(val);", // mutex version invokes mutex versions serially
	} {
		if !strings.Contains(out, want) {
			t.Errorf("emitted source missing %q\n----\n%s", want, out)
		}
	}
}

// TestEmitBarnesHut checks the loop-structured output: the force loop
// becomes a parallel_for over mutex versions, gravsub holds its hoisted
// lock through the nested vecAdd, and the serial tree construction is
// emitted unchanged.
func TestEmitBarnesHut(t *testing.T) {
	out := emit(t, src.BarnesHut)
	for _, want := range []string{
		"parallel_for (int i = 0; i < numbodies; i += 1)",
		"b->walksub__mutex(BH_root, size * size);",
		// gravsub: hoisting holds the lock across both sections; the
		// nested vecAdd runs as the original serial version.
		"void body::gravsub__parallel(node *n) {\n  mutex.acquire();",
		"acc.vecAdd(tmpv);\n  mutex.release();\n}",
		// walksub spawns its extent operations in the parallel version.
		"spawn(this->gravsub__parallel(n));",
		// Serial methods are unchanged.
		"void nbody::buildTree() {",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("emitted source missing %q", want)
		}
	}
	if strings.Contains(out, "buildTree__parallel") {
		t.Error("serial buildTree must not get generated versions")
	}
	// The vector class lost its lock to hoisting.
	if strings.Contains(out, "class vector {\npublic:\n  lock mutex;") {
		t.Error("vector must not keep a lock (hoisting)")
	}
}

// TestEmitReparses: the emitted program (modulo the runtime constructs
// spawn/wait/parallel_for/lock, which belong to the runtime library's
// dialect) is still syntactically well formed. We verify by stripping
// the runtime keywords back to plain calls and parsing.
func TestEmitReparses(t *testing.T) {
	out := emit(t, src.Water)
	neutral := strings.NewReplacer(
		"parallel_for (", "for (",
		"spawn(", "ignore_spawn(",
		"lock mutex;", "int mutex__lockword;",
		"mutex.acquire();", "ignore_lock();",
		"mutex.release();", "ignore_lock();",
		"wait();", "ignore_wait();",
	).Replace(out)
	f, err := parser.Parse("emitted.mc", neutral)
	if err != nil {
		t.Fatalf("emitted source does not reparse: %v", err)
	}
	// Structure sanity: the emitted program declares the generated
	// versions for every parallel method.
	var defs int
	for _, d := range f.Decls {
		if md, ok := d.(*ast.MethodDef); ok {
			if strings.HasSuffix(md.Name, "__parallel") || strings.HasSuffix(md.Name, "__mutex") {
				defs++
			}
		}
	}
	if defs < 10 {
		t.Errorf("expected generated method versions, found %d", defs)
	}
}
