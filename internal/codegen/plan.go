// Package codegen implements the code generation policy of §5 of
// Rinard & Diniz 1996 as an execution *plan*: which methods get
// parallel versions, which for loops become parallel loops (with the
// §5.2 nested-concurrency suppression), which call sites spawn tasks,
// and the lock optimizations of §5.4 (elimination and hoisting). The
// parallel executors (real runtime and DASH simulator) consume the
// plan; a source-to-source printer renders it as annotated output.
package codegen

import (
	"sort"

	"commute/internal/analysis/effects"
	"commute/internal/cond"
	"commute/internal/core"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
)

// SiteAction tells the executor what to do at a call site when running
// the parallel version of the enclosing method.
type SiteAction int

// Call-site actions.
const (
	ActionInline  SiteAction = iota // auxiliary: execute serially inline
	ActionSpawn                     // extent operation: spawn a task running the parallel version
	ActionHoisted                   // nested-object operation under the caller's hoisted lock: inline
	ActionSerial                    // site inside a serial method: plain call
)

// MethodPlan is the per-method code generation decision.
type MethodPlan struct {
	Method *types.Method
	// Parallel is true when the analysis marked the method parallel
	// (the compiler generates serial, parallel, and mutex versions).
	Parallel bool
	// NeedsLock is true when the parallel/mutex versions acquire the
	// receiver's mutual-exclusion lock around the object section
	// (§5.4.1 eliminates it for operations that only compute extent
	// constant values).
	NeedsLock bool
	// HoldsLockThrough is true when lock hoisting (§5.4.2) applies: the
	// operation holds the receiver lock across both sections and runs
	// invoked nested-object operations inline.
	HoldsLockThrough bool
	// Replicable is true when every receiver write in the operation is
	// a pure commutative accumulation (the written storage is never
	// read except as the source of its own update). Such operations can
	// execute against per-processor replicas merged by a reduction at
	// the end of the phase — the optimization §6.3.4 proposes to
	// eliminate Water's contention. The ReplicateAccumulators option
	// makes the executors use it.
	Replicable bool
	// Site maps call-site IDs within this method to their actions when
	// executing the parallel (or mutex) version.
	Site map[int]SiteAction

	// Speculative marks a method planned for optimistic execution: its
	// extent failed the static commutativity test, so its parallel
	// version runs under effect monitoring with per-task write
	// buffering and rollback instead of locks (Options.SpeculateRejected).
	Speculative bool
	// Conditional marks a method of a conditionally commutative extent
	// (Options.ConditionalGuards): the static test failed, but every
	// failing pair synthesized a residual predicate whose guardable
	// weakening is Guard. The region entry evaluates Guard — true runs
	// the proven-style parallel lowering planned here (locks, spawns,
	// hoisting), false takes the serial path. Guard takes precedence
	// over speculation; a guard-false region may still speculate when
	// the policy forces it and SpecEligible holds.
	Conditional bool
	// Guard is the runtime-checkable predicate gating the parallel
	// lowering; non-nil exactly when Conditional is set.
	Guard cond.Pred
	// SpecEligible, Confidence, and Condition copy the method's own
	// analysis report so the runtime's speculation policy (auto mode
	// with a confidence threshold) can decide at region entry without
	// reaching back into the analysis.
	SpecEligible bool
	Confidence   float64
	Condition    string
	// SpecReads and SpecWrites are the declared transitive effects of
	// the computation rooted at this method (extent operations plus
	// auxiliary callees); the speculation validator checks every
	// observed object-field access against them.
	SpecReads  *effects.Set
	SpecWrites *effects.Set
}

// LoopPlan is the decision for one for loop in a parallel method.
type LoopPlan struct {
	Method *types.Method
	Stmt   *ast.ForStmt
	// Parallel is true when the loop executes with guided
	// self-scheduling; false when the §5.2 heuristic suppressed it
	// (dynamically nested inside another parallel loop).
	Parallel bool
	Nested   bool
	// Name labels the loop for reports (enclosing method name).
	Name string
}

// Plan is the whole-program code generation result.
type Plan struct {
	Prog    *types.Program
	Opt     Options
	Methods map[*types.Method]*MethodPlan
	Loops   map[*ast.ForStmt]*LoopPlan

	// LoopsFound and LoopsSuppressed reproduce the §6.2.2/§6.3.2
	// statistics (loops detected vs. nested loops suppressed).
	LoopsFound      int
	LoopsSuppressed int

	// LockedClasses lists the classes whose declarations keep a
	// mutual-exclusion lock after the §5.4.1 elimination.
	LockedClasses map[*types.Class]bool
}

// Options tune the code generation policy (used by the ablation
// benchmarks).
type Options struct {
	// DisableHoisting turns off the §5.4.2 lock hoisting: nested-object
	// operations are spawned/locked individually.
	DisableHoisting bool
	// DisableSuppression turns off the §5.2 suppression of nested
	// concurrency: dynamically nested parallel loops stay parallel.
	DisableSuppression bool
	// ReplicateAccumulators enables the §6.3.4 optimization: operations
	// whose receiver writes are pure commutative accumulations execute
	// against per-processor replicas (no locks, no contention) that a
	// phase-end reduction merges.
	ReplicateAccumulators bool
	// SpeculateRejected extends the plan with speculative parallel
	// versions for extents that failed only the pairwise commutativity
	// test (core.MethodReport.SpeculationEligible). Methods covered by
	// a proven extent keep their proven plans; the additional methods
	// are marked MethodPlan.Speculative and carry the confidence score
	// and declared effects the runtime's monitor validates against.
	SpeculateRejected bool
	// ConditionalGuards extends the plan with guarded parallel versions
	// for extents whose rejection carries a satisfiable guardable
	// residual (core.MethodReport.ConditionalEligible): the methods are
	// planned exactly like a proven extent (locks, spawns, hoisting,
	// parallel loops) but marked Conditional with the guard predicate;
	// the runtime evaluates the guard at region entry and falls back to
	// the serial path when it does not hold. Precedence when a method
	// belongs to several extents: proven > conditional > speculative.
	ConditionalGuards bool
}

// Build computes the plan from the analysis results with the default
// policy.
func Build(a *core.Analysis) *Plan { return BuildWithOptions(a, Options{}) }

// BuildWithOptions computes the plan with explicit policy options.
func BuildWithOptions(a *core.Analysis, opt Options) *Plan {
	p := &Plan{
		Prog:          a.Prog,
		Opt:           opt,
		Methods:       make(map[*types.Method]*MethodPlan),
		Loops:         make(map[*ast.ForStmt]*LoopPlan),
		LockedClasses: make(map[*types.Class]bool),
	}
	reports := a.AnalyzeAll()
	byMethod := make(map[*types.Method]*core.MethodReport, len(reports))
	for _, r := range reports {
		byMethod[r.Method] = r
	}

	// Method plans: a method has a parallel version when it is marked
	// parallel itself or participates in some parallel extent (the
	// paper generates the three versions for every method of a parallel
	// extent).
	inParallelExtent := make(map[*types.Method]*core.MethodReport)
	auxSites := make(map[int]bool)
	for _, r := range reports {
		if !r.Parallel {
			continue
		}
		for _, m := range r.Ext.Methods {
			if _, ok := inParallelExtent[m]; !ok {
				inParallelExtent[m] = r
			}
		}
		for _, c := range r.Ext.Aux {
			auxSites[c.ID] = true
		}
	}

	// Conditional extension: extents rejected only at the pair stage
	// whose failing pairs all synthesized residual predicates get
	// guarded parallel versions, planned exactly like proven extents.
	// The guard must survive validation against the program: every
	// field reference it reads has to resolve to a basic-typed field
	// of an existing global object, or the runtime could not evaluate
	// it at region entry.
	inCondExtent := make(map[*types.Method]*core.MethodReport)
	condAuxSites := make(map[int]bool)
	if opt.ConditionalGuards {
		for _, r := range reports {
			if r.Parallel || !r.ConditionalEligible || !guardResolves(a.Prog, r.Guard) {
				continue
			}
			for _, m := range r.Ext.Methods {
				if _, ok := inParallelExtent[m]; ok {
					continue
				}
				if _, ok := inCondExtent[m]; !ok {
					inCondExtent[m] = r
				}
			}
			for _, c := range r.Ext.Aux {
				condAuxSites[c.ID] = true
			}
		}
	}

	// Speculative extension: extents rejected only at the pair stage
	// get optimistic parallel versions. A method already covered by a
	// proven extent keeps its proven plan (its own pairs are a subset
	// of the proven extent's, so the two sets never disagree); a
	// method covered by a conditional extent keeps its guarded plan.
	inSpecExtent := make(map[*types.Method]*core.MethodReport)
	specAuxSites := make(map[int]bool)
	if opt.SpeculateRejected {
		for _, r := range reports {
			if r.Parallel || !r.SpeculationEligible {
				continue
			}
			for _, m := range r.Ext.Methods {
				if _, ok := inParallelExtent[m]; ok {
					continue
				}
				if _, ok := inCondExtent[m]; ok {
					continue
				}
				if _, ok := inSpecExtent[m]; !ok {
					inSpecExtent[m] = r
				}
			}
			for _, c := range r.Ext.Aux {
				specAuxSites[c.ID] = true
			}
		}
	}

	for _, m := range a.Prog.Methods {
		if m.Def == nil {
			continue
		}
		mp := &MethodPlan{Method: m, Site: make(map[int]SiteAction)}
		p.Methods[m] = mp
		r, inPar := inParallelExtent[m]
		aux := auxSites
		if !inPar {
			root, inCond := inCondExtent[m]
			if !inCond {
				if sroot, inSpec := inSpecExtent[m]; inSpec {
					p.planSpeculative(a, mp, sroot, byMethod[m], specAuxSites)
					continue
				}
				for _, cs := range m.CallSites {
					mp.Site[cs.ID] = ActionSerial
				}
				continue
			}
			// Conditionally commutative: plan the proven-style lowering
			// below (the guard-true path needs the full lock discipline)
			// and carry the guard plus the speculation metadata so a
			// guard-false region can still speculate under a forcing
			// policy.
			r, aux = root, condAuxSites
			mp.Conditional = true
			mp.Guard = root.Guard
			if own := byMethod[m]; own != nil {
				mp.SpecEligible = own.SpeculationEligible
				mp.Confidence = own.Confidence
				mp.Condition = own.Condition
			}
			te := a.Eff.TransitiveEffects(m)
			mp.SpecReads, mp.SpecWrites = effects.NewSet(), effects.NewSet()
			mp.SpecReads.AddAll(te.Reads)
			mp.SpecWrites.AddAll(te.Writes)
		}
		mp.Parallel = true

		// §5.4.1 lock elimination: operations whose object section
		// writes nothing need no lock.
		info := a.Eff.Info(m)
		writesIvars := false
		for _, d := range info.Writes.Slice() {
			if d.Space == effects.DescField {
				writesIvars = true
				break
			}
		}
		mp.NeedsLock = writesIvars

		// Call-site actions.
		mi := a.Eff.Info(m)
		nestedOnly := true
		hasExtentCalls := false
		for i := range mi.Calls {
			cc := &mi.Calls[i]
			id := cc.Site.ID
			if aux[id] || r.Ext.IsAux(cc.Site) {
				mp.Site[id] = ActionInline
				continue
			}
			hasExtentCalls = true
			if cc.Recv.Kind == effects.RecvNested && cc.Recv.ViaThis {
				mp.Site[id] = ActionHoisted
			} else {
				mp.Site[id] = ActionSpawn
				nestedOnly = false
			}
		}

		// §5.4.2 lock hoisting: when every extent invocation targets a
		// nested object of the receiver, the operation's customized
		// version holds the receiver lock across both sections and runs
		// the nested operations inline (acquiring the lock even when
		// its own object section would not need one, so the nested
		// objects need no locks of their own).
		if hasExtentCalls && nestedOnly && m.Class != nil && !opt.DisableHoisting {
			mp.HoldsLockThrough = true
			mp.NeedsLock = true
		}
		mp.Replicable = mp.NeedsLock && pureAccumulator(m)
		if !mp.HoldsLockThrough {
			// Without hoisting, nested-object invocations still need
			// their own atomicity: spawn them like other extent calls
			// unless the caller holds its lock through.
			for id, act := range mp.Site {
				if act == ActionHoisted {
					mp.Site[id] = ActionSpawn
				}
			}
		}
	}

	p.findLoops(a, inParallelExtent)
	p.computeLockedClasses()
	return p
}

// planSpeculative fills the plan for a method executing only inside
// speculative regions: the site actions mirror the proven-extent
// policy (auxiliary inline, nested-via-this hoisted, the rest
// spawned), but no locks are planned — isolation comes from the
// per-task write buffers, and a detected conflict aborts the whole
// region before any buffered write reaches the heap.
func (p *Plan) planSpeculative(a *core.Analysis, mp *MethodPlan, root, own *core.MethodReport, specAux map[int]bool) {
	m := mp.Method
	mp.Parallel = true
	mp.Speculative = true
	if own != nil {
		mp.SpecEligible = own.SpeculationEligible
		mp.Confidence = own.Confidence
		mp.Condition = own.Condition
	}
	te := a.Eff.TransitiveEffects(m)
	mp.SpecReads, mp.SpecWrites = effects.NewSet(), effects.NewSet()
	mp.SpecReads.AddAll(te.Reads)
	mp.SpecWrites.AddAll(te.Writes)

	mi := a.Eff.Info(m)
	for i := range mi.Calls {
		cc := &mi.Calls[i]
		id := cc.Site.ID
		if specAux[id] || root.Ext.IsAux(cc.Site) {
			mp.Site[id] = ActionInline
			continue
		}
		if cc.Recv.Kind == effects.RecvNested && cc.Recv.ViaThis {
			mp.Site[id] = ActionHoisted
		} else {
			mp.Site[id] = ActionSpawn
		}
	}
}

// computeLockedClasses decides which class declarations keep their
// mutual-exclusion lock (§5.4.1): a class is locked when some
// lock-acquiring operation with that receiver class can execute under
// concurrency — it is a spawn target, a parallel-loop body callee
// (iterations run mutex versions, which still lock), or reachable from
// one through further spawn-action sites. Operations that only ever run
// hoisted under an enclosing lock contribute nothing, which is exactly
// how hoisting eliminates the nested-object locks.
func (p *Plan) computeLockedClasses() {
	seeds := make(map[*types.Method]bool)
	for caller, mp := range p.Methods {
		if !mp.Parallel {
			continue
		}
		for _, cs := range caller.CallSites {
			if mp.Site[cs.ID] == ActionSpawn {
				seeds[cs.Callee] = true
			}
		}
	}
	for _, lp := range p.Loops {
		if !lp.Parallel {
			continue
		}
		for _, callee := range loopCallees(p.Prog, lp.Stmt) {
			if cp := p.Methods[callee]; cp != nil && cp.Parallel {
				seeds[callee] = true
			}
		}
	}
	// Closure over spawn-action sites: in mutex versions those targets
	// run serially but still acquire their locks.
	work := make([]*types.Method, 0, len(seeds))
	for m := range seeds {
		work = append(work, m)
	}
	reached := make(map[*types.Method]bool, len(seeds))
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		if reached[m] {
			continue
		}
		reached[m] = true
		mp := p.Methods[m]
		if mp == nil {
			continue
		}
		for _, cs := range m.CallSites {
			if mp.Site[cs.ID] == ActionSpawn && !reached[cs.Callee] {
				work = append(work, cs.Callee)
			}
		}
	}
	for m := range reached {
		if mp := p.Methods[m]; mp != nil && mp.NeedsLock && m.Class != nil {
			p.LockedClasses[m.Class] = true
		}
	}
}

// findLoops detects parallel loops (§5.1) and applies the §5.2
// suppression of nested concurrency.
func (p *Plan) findLoops(a *core.Analysis, inPar map[*types.Method]*core.MethodReport) {
	// Candidate loops: for loops in parallel methods whose bodies
	// contain only local bookkeeping and invocations of parallel
	// methods.
	var candidates []*LoopPlan
	for m, mp := range p.Methods {
		if !mp.Parallel {
			continue
		}
		ast.Inspect(m.Def.Body, func(n ast.Node) bool {
			fs, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if p.loopBodyParallelizable(m, fs) {
				lp := &LoopPlan{Method: m, Stmt: fs, Name: m.FullName()}
				candidates = append(candidates, lp)
				p.Loops[fs] = lp
				return false // do not doubly classify nested loops
			}
			return true
		})
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Name != candidates[j].Name {
			return candidates[i].Name < candidates[j].Name
		}
		pi, pj := candidates[i].Stmt.Pos(), candidates[j].Stmt.Pos()
		return pi.Line < pj.Line
	})
	p.LoopsFound = len(candidates)

	// A loop is nested when its enclosing method is reachable from the
	// extent of another candidate loop's body invocations.
	reach := func(from *LoopPlan) map[*types.Method]bool {
		out := make(map[*types.Method]bool)
		var visit func(m *types.Method)
		visit = func(m *types.Method) {
			if out[m] {
				return
			}
			out[m] = true
			for _, cs := range m.CallSites {
				visit(cs.Callee)
			}
		}
		for _, cs := range loopCallees(p.Prog, from.Stmt) {
			visit(cs)
		}
		return out
	}
	for _, lp := range candidates {
		r := reach(lp)
		for _, other := range candidates {
			if other != lp && r[other.Method] {
				other.Nested = true
			}
		}
	}
	for _, lp := range candidates {
		lp.Parallel = !lp.Nested || p.Opt.DisableSuppression
		if lp.Nested && !p.Opt.DisableSuppression {
			p.LoopsSuppressed++
		}
	}
}

// GeneratesConcurrency reports whether invoking the parallel version of
// m can spawn tasks or start parallel loops — i.e. whether a serial
// caller must open a parallel region for it.
func (p *Plan) GeneratesConcurrency(m *types.Method) bool {
	return p.generatesConcurrency(m, make(map[*types.Method]bool))
}

func (p *Plan) generatesConcurrency(m *types.Method, seen map[*types.Method]bool) bool {
	if seen[m] {
		return false
	}
	seen[m] = true
	mp := p.Methods[m]
	if mp == nil || !mp.Parallel || m.Def == nil {
		return false
	}
	conc := false
	ast.Inspect(m.Def.Body, func(n ast.Node) bool {
		if conc {
			return false
		}
		if fs, ok := n.(*ast.ForStmt); ok {
			if lp := p.Loops[fs]; lp != nil && lp.Parallel {
				conc = true
				return false
			}
		}
		return true
	})
	if conc {
		return true
	}
	for _, cs := range m.CallSites {
		switch mp.Site[cs.ID] {
		case ActionSpawn:
			return true
		case ActionHoisted, ActionInline:
			if p.generatesConcurrency(cs.Callee, seen) {
				return true
			}
		}
	}
	return false
}

// ResolveGuardRef resolves a guard field reference against the
// program: the named global must exist and its class chain must
// declare a field with the referenced name whose declaring class
// matches and whose type is a basic scalar the guard evaluator
// handles (int, double, bool).
func ResolveGuardRef(prog *types.Program, ref cond.FieldRef) (*types.Global, *types.Field, bool) {
	g := prog.Globals[ref.Global]
	if g == nil {
		return nil, nil, false
	}
	for c := g.Class; c != nil; c = c.Base {
		for _, f := range c.Fields {
			if f.Name != ref.Field || f.Class.Name != ref.Class {
				continue
			}
			if b, ok := f.Type.(types.Basic); ok &&
				(b == types.Int || b == types.Double || b == types.Bool) {
				return g, f, true
			}
			return nil, nil, false
		}
	}
	return nil, nil, false
}

// guardResolves reports whether every field reference in g resolves
// (see ResolveGuardRef).
func guardResolves(prog *types.Program, g cond.Pred) bool {
	if g == nil {
		return false
	}
	for _, ref := range cond.Refs(g) {
		if _, _, ok := ResolveGuardRef(prog, ref); !ok {
			return false
		}
	}
	return true
}

// loopCallees returns the methods invoked directly in a loop body.
func loopCallees(prog *types.Program, fs *ast.ForStmt) []*types.Method {
	var out []*types.Method
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && !c.Builtin && c.Site >= 0 {
			out = append(out, prog.CallSites[c.Site].Callee)
		}
		return true
	})
	return out
}

// loopBodyParallelizable reports whether a loop body consists only of
// local declarations/assignments and invocations of parallel methods
// (possibly guarded by conditionals).
func (p *Plan) loopBodyParallelizable(m *types.Method, fs *ast.ForStmt) bool {
	hasInvocation := false
	okBody := true
	var checkStmt func(s ast.Stmt)
	var checkExpr func(e ast.Expr, stmtPos bool)
	checkStmt = func(s ast.Stmt) {
		if !okBody {
			return
		}
		switch st := s.(type) {
		case *ast.Block:
			for _, sub := range st.Stmts {
				checkStmt(sub)
			}
		case *ast.DeclStmt:
			// fine
		case *ast.ExprStmt:
			checkExpr(st.X, true)
		case *ast.IfStmt:
			checkStmt(st.Then)
			if st.Else != nil {
				checkStmt(st.Else)
			}
		default:
			okBody = false
		}
	}
	checkExpr = func(e ast.Expr, stmtPos bool) {
		switch x := e.(type) {
		case *ast.Assign:
			// Local bookkeeping only.
			if id, ok := x.LHS.(*ast.Ident); !ok || id.Sym != ast.SymLocal {
				okBody = false
				return
			}
			if c, isCall := x.RHS.(*ast.CallExpr); isCall && !c.Builtin {
				// Value-returning calls in the body must be auxiliary
				// (they execute inline); treat them as bookkeeping.
				return
			}
		case *ast.CallExpr:
			if x.Builtin {
				okBody = false
				return
			}
			site := p.Prog.CallSites[x.Site]
			calleePlan := p.Methods[site.Callee]
			if calleePlan == nil || !calleePlan.Parallel {
				// Auxiliary invocations are allowed; extent invocations
				// must have parallel versions.
				if act, ok := p.Methods[m].Site[x.Site]; ok && act == ActionInline {
					return
				}
				okBody = false
				return
			}
			hasInvocation = true
		default:
			okBody = false
		}
	}
	checkStmt(fs.Body)
	return okBody && hasInvocation
}
