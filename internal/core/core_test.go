package core_test

import (
	"testing"

	"commute/internal/apps/src"
	"commute/internal/core"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

func analyze(t *testing.T, source string) (*types.Program, *core.Analysis) {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog, core.New(prog)
}

func report(t *testing.T, p *types.Program, a *core.Analysis, full string) *core.MethodReport {
	t.Helper()
	m := p.MethodByFullName(full)
	if m == nil {
		t.Fatalf("method %s not found", full)
	}
	return a.IsParallel(m)
}

// TestGraphTraversalParallel is the paper's §2 headline example: the
// recursive visit traversal commutes and is marked parallel.
func TestGraphTraversalParallel(t *testing.T) {
	p, a := analyze(t, src.Graph)
	r := report(t, p, a, "builder::traverse")
	if !r.Parallel {
		t.Fatalf("traverse should be parallel; reason: %s", r.Reason)
	}
	r = report(t, p, a, "graph::visit")
	if !r.Parallel {
		t.Fatalf("visit should be parallel; reason: %s", r.Reason)
	}
	// The builder is serial: it allocates objects and writes other
	// objects' state.
	r = report(t, p, a, "builder::build")
	if r.Parallel {
		t.Fatal("build must be serial")
	}
}

// TestBarnesHutParallelMethods checks the paper's central result: the
// force, velocity, and position phases are parallel; tree building and
// center-of-mass are serial.
func TestBarnesHutParallelMethods(t *testing.T) {
	p, a := analyze(t, src.BarnesHut)
	wantParallel := []string{
		"nbody::computeForces",
		"nbody::advanceVelocities",
		"nbody::advancePositions",
		"nbody::resetForces",
		"body::walksub",
		"body::gravsub",
	}
	for _, name := range wantParallel {
		r := report(t, p, a, name)
		if !r.Parallel {
			t.Errorf("%s should be parallel; reason: %s", name, r.Reason)
		}
	}
	wantSerial := []string{
		"nbody::buildTree",
		"nbody::insert",
		"nbody::computeCOM",
		"nbody::computeCOMCell",
		"nbody::init",
		"nbody::step",
	}
	for _, name := range wantSerial {
		r := report(t, p, a, name)
		if r.Parallel {
			t.Errorf("%s should be serial", name)
		}
	}
}

// TestBarnesHutForceStatistics checks the Table 2 Force-extent shape:
// extent size 6, with computeInter and subdivp auxiliary.
func TestBarnesHutForceStatistics(t *testing.T) {
	p, a := analyze(t, src.BarnesHut)
	r := report(t, p, a, "nbody::computeForces")
	if !r.Parallel {
		t.Fatalf("computeForces not parallel: %s", r.Reason)
	}
	if r.ExtentSize != 6 {
		t.Errorf("Force extent size = %d, want 6", r.ExtentSize)
	}
	if r.AuxiliaryCallSites != 2 {
		t.Errorf("Force auxiliary call sites = %d, want 2", r.AuxiliaryCallSites)
	}
	total := r.IndependentPairs + r.SymbolicPairs
	if total != 21 { // C(6,2) + 6 unordered pairs including self-pairs
		t.Errorf("Force pairs = %d, want 21", total)
	}
	if r.SymbolicPairs != 2 { // (gravsub,gravsub), (vecAdd,vecAdd)
		t.Errorf("Force symbolically executed pairs = %d, want 2", r.SymbolicPairs)
	}

	r = report(t, p, a, "nbody::advanceVelocities")
	if r.ExtentSize != 3 {
		t.Errorf("Velocity extent size = %d, want 3", r.ExtentSize)
	}
	if r.IndependentPairs != 5 || r.SymbolicPairs != 1 {
		t.Errorf("Velocity pairs = %d independent + %d symbolic, want 5+1",
			r.IndependentPairs, r.SymbolicPairs)
	}
}

// TestAuxiliaryAblation reproduces the paper's Table 2 observation: with
// auxiliary operation recognition disabled, none of the extents can be
// parallelized.
func TestAuxiliaryAblation(t *testing.T) {
	p, a := analyze(t, src.BarnesHut)
	a.DisableAuxiliary = true
	for _, name := range []string{
		"nbody::computeForces", "nbody::advanceVelocities", "nbody::advancePositions",
	} {
		r := report(t, p, a, name)
		if r.Parallel {
			t.Errorf("%s should fail without auxiliary operations", name)
		}
	}
}

// TestNonCommutingPairRejected: a method pair performing non-commuting
// updates (overwrite vs accumulate) must be rejected.
func TestNonCommutingPairRejected(t *testing.T) {
	_, a := analyze(t, `
class counter {
public:
  int n;
  void add(int k);
  void set(int k);
};
class driver {
public:
  counter *c;
  int dummy;
  void run();
};
void counter::add(int k) { n = n + k; }
void counter::set(int k) { n = k; }
void driver::run() {
  c->add(1);
  c->set(5);
}
`)
	pr := a.Prog
	run := pr.MethodByFullName("driver::run")
	r := a.IsParallel(run)
	if r.Parallel {
		t.Fatal("run must not be parallel: add and set do not commute")
	}

	// add alone commutes.
	addOnly, a2 := func() (*types.Program, *core.Analysis) {
		f, _ := parser.Parse("x.mc", `
class counter {
public:
  int n;
  void add(int k);
};
class driver {
public:
  counter *c;
  int dummy;
  void run();
};
void counter::add(int k) { n = n + k; }
void driver::run() {
  c->add(1);
  c->add(2);
}
`)
		prog, err := types.Check(f)
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		return prog, core.New(prog)
	}()
	r2 := a2.IsParallel(addOnly.MethodByFullName("driver::run"))
	if !r2.Parallel {
		t.Fatalf("additive run should be parallel; reason: %s", r2.Reason)
	}
}

// TestMultiplicationCommutes: multiplicative updates commute with each
// other but not with additive updates.
func TestMultiplicationCommutes(t *testing.T) {
	_, a := analyze(t, `
class acc {
public:
  double v;
  void scale(double s);
  void bump(double d);
};
class driver {
public:
  acc *x;
  int dummy;
  void mulOnly();
  void mixed();
};
void acc::scale(double s) { v = v * s; }
void acc::bump(double d) { v = v + d; }
void driver::mulOnly() {
  x->scale(2.0);
  x->scale(3.0);
}
void driver::mixed() {
  x->scale(2.0);
  x->bump(1.0);
}
`)
	r := a.IsParallel(a.Prog.MethodByFullName("driver::mulOnly"))
	if !r.Parallel {
		t.Errorf("mulOnly should be parallel; reason: %s", r.Reason)
	}
	r = a.IsParallel(a.Prog.MethodByFullName("driver::mixed"))
	if r.Parallel {
		t.Error("mixed scale/bump must not be parallel")
	}
}

// TestIOPreventsParallelization per Figure 3's mayPerformIO check.
func TestIOPreventsParallelization(t *testing.T) {
	_, a := analyze(t, `
class cnt {
public:
  int n;
  void add(int k);
};
class driver {
public:
  cnt *c;
  int dummy;
  void run();
};
void cnt::add(int k) { n = n + k; print("added"); }
void driver::run() { c->add(1); c->add(2); }
`)
	r := a.IsParallel(a.Prog.MethodByFullName("driver::run"))
	if r.Parallel {
		t.Fatal("I/O in the extent must prevent parallelization")
	}
}
