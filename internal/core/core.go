// Package core implements the paper's primary contribution: the
// commutativity analysis driver of Figure 3 (isParallel), the
// separability check of §4.6, the reference-parameter checks of Figure
// 10, and the commutativity testing algorithm of Figure 11, built on
// the effects, extent, and symbolic packages.
package core

import (
	"fmt"
	"sort"
	"sync"

	"commute/internal/analysis/effects"
	"commute/internal/analysis/extent"
	"commute/internal/analysis/symbolic"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
)

// Analysis runs commutativity analysis over one checked program.
type Analysis struct {
	Prog *types.Program
	Eff  *effects.Analyzer

	// mu guards reports and serializes analyze(): the analysis is
	// normally fully populated at load time (codegen.Build runs
	// AnalyzeAll), but a System shared by concurrent servers may still
	// call Report for a methodless name after the fact, and the effects
	// analyzer's internal memo tables are not otherwise synchronized.
	mu      sync.Mutex
	reports map[*types.Method]*MethodReport

	// Options.

	// DisableAuxiliary turns off auxiliary-operation recognition
	// (§3.5.2); used by the ablation benchmarks.
	DisableAuxiliary bool
	// DisableExtentConstants turns off the extent-constant extension
	// (§3.5.1); reads of non-receiver storage become unanalyzable.
	DisableExtentConstants bool
}

// New returns an Analysis for prog.
func New(prog *types.Program) *Analysis {
	return &Analysis{
		Prog:    prog,
		Eff:     effects.NewAnalyzer(prog),
		reports: make(map[*types.Method]*MethodReport),
	}
}

// PairResult records the outcome of one commutativity test.
type PairResult struct {
	M1, M2      *types.Method
	Independent bool
	Commutes    bool
	Reason      string
}

// MethodReport is the analysis result for one method.
type MethodReport struct {
	Method   *types.Method
	Parallel bool
	Reason   string // first reason the method was marked serial

	EC  *effects.Set
	Ext *extent.Result

	// Statistics matching Tables 2 and 8 of the paper.
	AuxiliaryCallSites int
	ExtentSize         int
	IndependentPairs   int
	SymbolicPairs      int

	Pairs []PairResult
}

// IsParallel runs the Figure 3 algorithm for m, caching the result.
// Safe for concurrent use.
func (a *Analysis) IsParallel(m *types.Method) *MethodReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r, ok := a.reports[m]; ok {
		return r
	}
	r := a.analyze(m)
	a.reports[m] = r
	return r
}

func (a *Analysis) analyze(m *types.Method) *MethodReport {
	r := &MethodReport{Method: m}
	if m.Def == nil {
		r.Reason = "method has no definition"
		return r
	}

	// ec = extentConstantVariables(m); ⟨ext, aux⟩ = extent(m, ec).
	r.EC = extent.Constants(a.Eff, m)
	ecForExtent := r.EC
	if a.DisableExtentConstants {
		ecForExtent = effects.NewSet()
	}
	ext := extent.Compute(a.Eff, m, ecForExtent)
	if a.DisableAuxiliary {
		// Reclassify every auxiliary site as an extent site (and pull
		// the auxiliary callees into the extent).
		ext = extentWithoutAux(a.Eff, m, ext)
	}
	r.Ext = ext
	r.AuxiliaryCallSites = len(ext.Aux)
	r.ExtentSize = len(ext.Methods)

	if !a.checkReferenceParameters(m, ext, r) {
		return r
	}

	// Extent operations execute asynchronously in the generated code,
	// so their return values cannot be consumed (§4's model: operations
	// return no values; only auxiliary operations may).
	for _, site := range ext.Ext {
		if a.valueUsed(site) {
			r.Reason = fmt.Sprintf("the return value of extent operation %s is used at %s",
				site.Callee.FullName(), site.Call.Pos())
			return r
		}
	}

	// Separability, I/O, and allocation checks over ms.
	for _, m1 := range ext.Methods {
		if reason := a.separable(m1, ext, ecForExtent); reason != "" {
			r.Reason = fmt.Sprintf("%s is not separable: %s", m1.FullName(), reason)
			return r
		}
		if a.Eff.MayPerformIO(m1) {
			r.Reason = fmt.Sprintf("%s may perform I/O", m1.FullName())
			return r
		}
		if a.Eff.MayCreateObject(m1) {
			r.Reason = fmt.Sprintf("%s may create objects", m1.FullName())
			return r
		}
	}

	// Pairwise commutativity testing.
	aux := make(map[int]bool, len(ext.Aux))
	for _, c := range ext.Aux {
		aux[c.ID] = true
	}
	env := symbolic.NewEnv(a.Prog, ecForExtent, aux)

	ok := true
	for i := 0; i < len(ext.Methods); i++ {
		for j := i; j < len(ext.Methods); j++ {
			pr := a.commute(ext.Methods[i], ext.Methods[j], env)
			r.Pairs = append(r.Pairs, pr)
			if pr.Independent {
				r.IndependentPairs++
			} else {
				r.SymbolicPairs++
			}
			if !pr.Commutes && ok {
				ok = false
				r.Reason = fmt.Sprintf("operations %s and %s may not commute: %s",
					pr.M1.FullName(), pr.M2.FullName(), pr.Reason)
			}
		}
	}
	r.Parallel = ok
	if ok {
		r.Reason = ""
	}
	return r
}

// valueUsed reports whether the call at the site appears anywhere other
// than statement position, i.e. its return value is consumed.
func (a *Analysis) valueUsed(site *types.CallSite) bool {
	m := site.Caller
	if m == nil || m.Def == nil {
		return false
	}
	stmtPos := make(map[*ast.CallExpr]bool)
	ast.Inspect(m.Def.Body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			if c, ok2 := es.X.(*ast.CallExpr); ok2 {
				stmtPos[c] = true
			}
		}
		return true
	})
	return !stmtPos[site.Call]
}

// extentWithoutAux re-runs the extent computation with an empty
// extent-constant set so that no call site qualifies as auxiliary.
func extentWithoutAux(a *effects.Analyzer, m *types.Method, _ *extent.Result) *extent.Result {
	return extent.Compute(a, m, effects.NewSet())
}

// AnalyzeAll runs IsParallel over every defined method and returns the
// reports ordered by method ID.
func (a *Analysis) AnalyzeAll() []*MethodReport {
	out := make([]*MethodReport, 0, len(a.Prog.Methods))
	for _, m := range a.Prog.Methods {
		if m.Def == nil {
			continue
		}
		out = append(out, a.IsParallel(m))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Method.ID < out[j].Method.ID })
	return out
}

// ParallelMethods returns the methods marked parallel.
func (a *Analysis) ParallelMethods() []*types.Method {
	var out []*types.Method
	for _, r := range a.AnalyzeAll() {
		if r.Parallel {
			out = append(out, r.Method)
		}
	}
	return out
}
