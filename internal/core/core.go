// Package core implements the paper's primary contribution: the
// commutativity analysis driver of Figure 3 (isParallel), the
// separability check of §4.6, the reference-parameter checks of Figure
// 10, and the commutativity testing algorithm of Figure 11, built on
// the effects, extent, and symbolic packages.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"commute/internal/analysis/effects"
	"commute/internal/analysis/extent"
	"commute/internal/analysis/symbolic"
	"commute/internal/cond"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
)

// isFalsePred reports whether p is the unsatisfiable predicate.
func isFalsePred(p cond.Pred) bool {
	_, ok := p.(cond.False)
	return ok
}

// Analysis runs commutativity analysis over one checked program.
//
// Concurrency contract: an Analysis is safe for concurrent use. Each
// method's report is computed exactly once and published through a
// sync.Once cell, so any number of goroutines may call IsParallel /
// AnalyzeAll / Report concurrently; later callers share the first
// computation's immutable *MethodReport. The effects analyzer carries
// its own per-method once-published memos (see effects.Analyzer), so
// distinct methods analyze concurrently without coordination. Results
// are deterministic — identical regardless of Workers.
type Analysis struct {
	Prog *types.Program
	Eff  *effects.Analyzer

	// Workers bounds the analysis parallelism: the number of goroutines
	// AnalyzeAll fans method analyses across and the number used for
	// the symbolic stage of pairwise commutativity testing. Zero means
	// GOMAXPROCS; 1 is the serial escape hatch (everything runs on the
	// calling goroutine). Set before the first analysis call.
	Workers int

	mu      sync.Mutex
	reports map[*types.Method]*reportCell

	// pairCache memoizes symbolic pair-test outcomes across methods
	// whose extents share pairs, keyed by (m1, m2, env fingerprint).
	pairCache sync.Map // string → PairResult

	// Options.

	// DisableAuxiliary turns off auxiliary-operation recognition
	// (§3.5.2); used by the ablation benchmarks.
	DisableAuxiliary bool
	// DisableExtentConstants turns off the extent-constant extension
	// (§3.5.1); reads of non-receiver storage become unanalyzable.
	DisableExtentConstants bool
}

// reportCell publishes one method's report exactly once; see the
// Analysis concurrency contract.
type reportCell struct {
	once sync.Once
	r    *MethodReport
}

// New returns an Analysis for prog.
func New(prog *types.Program) *Analysis {
	return &Analysis{
		Prog:    prog,
		Eff:     effects.NewAnalyzer(prog),
		reports: make(map[*types.Method]*reportCell),
	}
}

// workerCount resolves the Workers setting to a concrete parallelism
// bound, never above n (the amount of work available).
func (a *Analysis) workerCount(n int) int {
	w := a.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PairResult records the outcome of one commutativity test.
type PairResult struct {
	M1, M2      *types.Method
	Independent bool
	Commutes    bool
	Reason      string
	// Pred, for a pair that failed the symbolic test on instance-
	// variable mismatches, is the synthesized residual commutativity
	// condition: the conjunction, over every differing instance
	// variable, of the predicate under which the two orders' final
	// values agree (see cond.Residual). Nil for pairs that commute and
	// for failures with no residual term (unanalyzable bodies,
	// differing footprints or invocation multisets).
	Pred cond.Pred
	// Condition is Pred's rendered form, kept for reports and
	// diagnostics. Empty exactly when Pred is nil.
	Condition string
}

// MethodReport is the analysis result for one method.
type MethodReport struct {
	Method   *types.Method
	Parallel bool
	Reason   string // first reason the method was marked serial

	EC  *effects.Set
	Ext *extent.Result

	// Statistics matching Tables 2 and 8 of the paper.
	AuxiliaryCallSites int
	ExtentSize         int
	IndependentPairs   int
	SymbolicPairs      int

	Pairs []PairResult

	// Confidence scores how close the extent came to the static proof:
	// 1.0 for a proven-parallel extent, the fraction of pairs proven
	// independent or commuting when only pairwise testing failed, and
	// 0.0 when a structural check (separability, reference parameters,
	// consumed return values, I/O, allocation) rejected the extent
	// before pair testing. A speculation policy uses it to decide
	// which rejected extents are worth running optimistically.
	Confidence float64
	// Pred is the extent's residual commutativity condition: the
	// conjunction of every failing pair's synthesized predicate. Nil
	// when the extent is parallel, was rejected before pair testing,
	// or some failing pair carried no residual term.
	Pred cond.Pred
	// Guard is Pred weakened to the runtime-evaluable fragment
	// (literals and extent-constant fields of global objects — see
	// cond.Guard). Guard implies Pred, so checking it at region entry
	// soundly gates the parallel lowering. Nil when no evaluable
	// fragment remains.
	Guard cond.Pred
	// Condition is Pred's rendered form; empty when Pred is nil.
	Condition string
	// ConditionalEligible is true when the extent failed only the
	// pairwise commutativity test, every failing pair synthesized a
	// residual predicate, and the weakened Guard is satisfiable — so a
	// guarded lowering can run the extent in parallel whenever the
	// guard holds and fall back to the serial version otherwise.
	ConditionalEligible bool
	// SpeculationEligible is true when the extent failed *only* the
	// pairwise commutativity test — its structure is sound, every
	// effect is a rollback-safe object write, and no auxiliary callee
	// performs I/O — so speculative execution with write buffering can
	// run it in parallel and fall back to the serial version exactly.
	SpeculationEligible bool
}

// IsParallel runs the Figure 3 algorithm for m, computing the report
// once and sharing it with every caller. Safe for concurrent use.
func (a *Analysis) IsParallel(m *types.Method) *MethodReport {
	a.mu.Lock()
	if a.reports == nil {
		a.reports = make(map[*types.Method]*reportCell)
	}
	c, ok := a.reports[m]
	if !ok {
		c = new(reportCell)
		a.reports[m] = c
	}
	a.mu.Unlock()
	c.once.Do(func() { c.r = a.analyze(m) })
	return c.r
}

func (a *Analysis) analyze(m *types.Method) *MethodReport {
	r := &MethodReport{Method: m}
	if m.Def == nil {
		r.Reason = "method has no definition"
		return r
	}

	// ec = extentConstantVariables(m); ⟨ext, aux⟩ = extent(m, ec).
	r.EC = extent.Constants(a.Eff, m)
	ecForExtent := r.EC
	if a.DisableExtentConstants {
		ecForExtent = effects.NewSet()
	}
	ext := extent.Compute(a.Eff, m, ecForExtent)
	if a.DisableAuxiliary {
		// Reclassify every auxiliary site as an extent site (and pull
		// the auxiliary callees into the extent).
		ext = extentWithoutAux(a.Eff, m, ext)
	}
	r.Ext = ext
	r.AuxiliaryCallSites = len(ext.Aux)
	r.ExtentSize = len(ext.Methods)

	if !a.checkReferenceParameters(m, ext, r) {
		return r
	}

	// Extent operations execute asynchronously in the generated code,
	// so their return values cannot be consumed (§4's model: operations
	// return no values; only auxiliary operations may).
	for _, site := range ext.Ext {
		if a.valueUsed(site) {
			r.Reason = fmt.Sprintf("the return value of extent operation %s is used at %s",
				site.Callee.FullName(), site.Call.Pos())
			return r
		}
	}

	// Separability, I/O, and allocation checks over ms.
	for _, m1 := range ext.Methods {
		if reason := a.separable(m1, ext, ecForExtent); reason != "" {
			r.Reason = fmt.Sprintf("%s is not separable: %s", m1.FullName(), reason)
			return r
		}
		if a.Eff.MayPerformIO(m1) {
			r.Reason = fmt.Sprintf("%s may perform I/O", m1.FullName())
			return r
		}
		if a.Eff.MayCreateObject(m1) {
			r.Reason = fmt.Sprintf("%s may create objects", m1.FullName())
			return r
		}
	}

	// Pairwise commutativity testing, in two stages: the cheap §4.7
	// independence test runs first over every pair, and only the
	// survivors go through symbolic execution — concurrently when
	// Workers allows. Results land in a slice pre-indexed by pair
	// position, so the report (ordering, counters, first-failure
	// Reason) is byte-identical to the serial driver's.
	aux := make(map[int]bool, len(ext.Aux))
	for _, c := range ext.Aux {
		aux[c.ID] = true
	}
	env := symbolic.NewEnv(a.Prog, ecForExtent, aux)

	n := len(ext.Methods)
	pairs := make([]PairResult, 0, n*(n+1)/2)
	type job struct {
		p      int
		m1, m2 *types.Method
	}
	var survivors []job
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			m1, m2 := ext.Methods[i], ext.Methods[j]
			if a.independent(m1, m2) {
				pairs = append(pairs, PairResult{M1: m1, M2: m2, Independent: true, Commutes: true})
			} else {
				survivors = append(survivors, job{p: len(pairs), m1: m1, m2: m2})
				pairs = append(pairs, PairResult{})
			}
		}
	}

	if w := a.workerCount(len(survivors)); w > 1 {
		ch := make(chan job)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for jb := range ch {
					// Workers write disjoint indices; no locking needed.
					pairs[jb.p] = a.symbolicPair(jb.m1, jb.m2, env)
				}
			}()
		}
		for _, jb := range survivors {
			ch <- jb
		}
		close(ch)
		wg.Wait()
	} else {
		for _, jb := range survivors {
			pairs[jb.p] = a.symbolicPair(jb.m1, jb.m2, env)
		}
	}

	ok := true
	passed := 0
	condOK := true
	var residuals []cond.Pred
	for _, pr := range pairs {
		if pr.Independent {
			r.IndependentPairs++
		} else {
			r.SymbolicPairs++
		}
		if pr.Commutes {
			passed++
			continue
		}
		if ok {
			ok = false
			r.Reason = fmt.Sprintf("operations %s and %s may not commute: %s",
				pr.M1.FullName(), pr.M2.FullName(), pr.Reason)
		}
		// Every failing pair contributes its residual; one pair without
		// a residual term means the extent cannot be conditionally
		// parallelized.
		if pr.Pred == nil {
			condOK = false
		} else {
			residuals = append(residuals, pr.Pred)
		}
	}
	r.Pairs = pairs
	r.Parallel = ok
	if !ok && condOK && len(residuals) > 0 {
		r.Pred = cond.MkAnd(residuals...)
		r.Condition = cond.Render(r.Pred)
		if g := cond.Guard(r.Pred); !isFalsePred(g) {
			r.Guard = g
			r.ConditionalEligible = true
		}
	}
	if ok {
		r.Reason = ""
		r.Confidence = 1
	} else if len(pairs) > 0 {
		// The extent reached the pair stage, so every structural
		// property speculation relies on already holds: operations are
		// separable (effects are object writes, undoable by buffering),
		// perform no I/O, allocate nothing, and return no consumed
		// values. The only remaining hazard is the unproven pairs —
		// exactly what runtime monitoring checks — unless an auxiliary
		// callee performs I/O the rollback could not retract.
		r.Confidence = float64(passed) / float64(len(pairs))
		r.SpeculationEligible = true
		for _, c := range ext.Aux {
			if a.Eff.MayPerformIO(c.Callee) {
				r.SpeculationEligible = false
				break
			}
		}
	}
	return r
}

// valueUsed reports whether the call at the site appears anywhere other
// than statement position, i.e. its return value is consumed.
func (a *Analysis) valueUsed(site *types.CallSite) bool {
	m := site.Caller
	if m == nil || m.Def == nil {
		return false
	}
	stmtPos := make(map[*ast.CallExpr]bool)
	ast.Inspect(m.Def.Body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			if c, ok2 := es.X.(*ast.CallExpr); ok2 {
				stmtPos[c] = true
			}
		}
		return true
	})
	return !stmtPos[site.Call]
}

// extentWithoutAux re-runs the extent computation with an empty
// extent-constant set so that no call site qualifies as auxiliary.
func extentWithoutAux(a *effects.Analyzer, m *types.Method, _ *extent.Result) *extent.Result {
	return extent.Compute(a, m, effects.NewSet())
}

// AnalyzeAll runs IsParallel over every defined method — fanning the
// work across workerCount goroutines — and returns the reports ordered
// by method ID. The reports are identical to a serial run's (Workers=1)
// in both content and order.
func (a *Analysis) AnalyzeAll() []*MethodReport {
	var methods []*types.Method
	for _, m := range a.Prog.Methods {
		if m.Def != nil {
			methods = append(methods, m)
		}
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i].ID < methods[j].ID })

	if w := a.workerCount(len(methods)); w > 1 {
		ch := make(chan *types.Method)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for m := range ch {
					a.IsParallel(m)
				}
			}()
		}
		for _, m := range methods {
			ch <- m
		}
		close(ch)
		wg.Wait()
	}

	out := make([]*MethodReport, len(methods))
	for i, m := range methods {
		out[i] = a.IsParallel(m) // memo hit after the fan-out
	}
	return out
}

// ParallelMethods returns the methods marked parallel.
func (a *Analysis) ParallelMethods() []*types.Method {
	var out []*types.Method
	for _, r := range a.AnalyzeAll() {
		if r.Parallel {
			out = append(out, r.Method)
		}
	}
	return out
}
