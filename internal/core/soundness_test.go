package core_test

import "testing"

// TestDistinctPointerReadsNotConflated: reads of the same class-level
// extent-constant storage through different pointers must yield
// different symbolic values — `last = s->v` overwritten from two
// different source objects does not commute.
func TestDistinctPointerReadsNotConflated(t *testing.T) {
	_, a := analyze(t, `
class src { public: int v; };
class acc {
public:
  int last;
  void take(src *s);
};
class driver {
public:
  acc *x;
  src *s1;
  src *s2;
  void run();
};
void acc::take(src *s) { last = s->v; }
void driver::run() {
  x->take(s1);
  x->take(s2);
}
`)
	r := a.IsParallel(a.Prog.MethodByFullName("driver::run"))
	if r.Parallel {
		t.Fatal("take(s1);take(s2) must not commute: last ends up holding different values")
	}

	// The accumulating analogue DOES commute: the values still come
	// from different objects, but addition is order-insensitive.
	_, a2 := analyze(t, `
class src { public: int v; };
class acc {
public:
  int total;
  void take(src *s);
};
class driver {
public:
  acc *x;
  src *s1;
  src *s2;
  void run();
};
void acc::take(src *s) { total = total + s->v; }
void driver::run() {
  x->take(s1);
  x->take(s2);
}
`)
	r2 := a2.IsParallel(a2.Prog.MethodByFullName("driver::run"))
	if !r2.Parallel {
		t.Fatalf("accumulating take should commute; reason: %s", r2.Reason)
	}
}

// TestSamePointerReadsStillEqual: reads through the *same* symbolic
// pointer (a receiver field) produce equal constants, so identical
// invocations still commute.
func TestSamePointerReadsStillEqual(t *testing.T) {
	_, a := analyze(t, `
class src { public: int v; };
class acc {
public:
  int last;
  src *mine;
  void sync();
};
class driver {
public:
  acc *x;
  void run();
};
void acc::sync() { last = mine->v; }
void driver::run() {
  x->sync();
  x->sync();
}
`)
	r := a.IsParallel(a.Prog.MethodByFullName("driver::run"))
	if !r.Parallel {
		t.Fatalf("identical parameterless syncs should commute; reason: %s", r.Reason)
	}
}
