package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"commute/internal/apps"
	"commute/internal/core"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

// analyzeAt runs a fresh cold analysis of prog with the given driver
// parallelism.
func analyzeAt(prog *types.Program, workers int) []*core.MethodReport {
	a := core.New(prog)
	a.Workers = workers
	return a.AnalyzeAll()
}

// requireSameReports asserts two report sets are deeply identical —
// same order, same pair ordering, same counters, same Reason strings.
func requireSameReports(t *testing.T, label string, want, got []*core.MethodReport) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d reports, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("%s: report %d (%s) differs from the serial driver's\nserial:   %+v\nparallel: %+v",
				label, i, want[i].Method.FullName(), want[i], got[i])
		}
	}
}

// TestParallelDriverDeterministic: the parallel analysis driver is a
// pure latency optimization — for the real applications, every worker
// count produces reports deeply identical to the serial driver's
// (content, ordering, pair order, and first-failure Reason strings).
func TestParallelDriverDeterministic(t *testing.T) {
	systems := map[string]*types.Program{}
	if sys, err := apps.Graph(64); err == nil {
		systems["graph"] = sys.Prog
	} else {
		t.Fatal(err)
	}
	if sys, err := apps.BarnesHut(32, 1); err == nil {
		systems["barneshut"] = sys.Prog
	} else {
		t.Fatal(err)
	}
	if sys, err := apps.Water(8, 1); err == nil {
		systems["water"] = sys.Prog
	} else {
		t.Fatal(err)
	}

	for name, prog := range systems {
		want := analyzeAt(prog, 1)
		for _, w := range []int{2, 4, 8} {
			requireSameReports(t, fmt.Sprintf("%s workers=%d", name, w), want, analyzeAt(prog, w))
		}
	}
}

// genAnalysisProgram generates a random program mixing commuting
// updates (adds), non-commuting updates (an order-dependent recurrence,
// so some pairs fail symbolic testing and produce Reason strings), and
// I/O-tainted methods — exercising the failure paths whose diagnostics
// must not depend on goroutine scheduling.
func genAnalysisProgram(r *rand.Rand, counters, updates int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `
const int NC = %d;
const int NU = %d;

class counter {
public:
  int a; int b; int c;
  void good(int k);
  void bad(int k);
  void loud(int k);
};

void counter::good(int k) {
  a = a + k;
  b = b + 2 * k;
}

void counter::bad(int k) {
  a = a * 2 + k;
  c = c + a;
}

void counter::loud(int k) {
  b = b + k;
  print(b);
}

class driver {
public:
  counter *cs[NC];
  int targets[NU];
  int amounts[NU];
  void setup();
  void applyGood(int u);
  void applyBad(int u);
  void applyLoud(int u);
  void runGood();
  void runBad();
  void runLoud();
};

driver D;

void driver::setup() {
  int i;
  for (i = 0; i < NC; i++) {
    cs[i] = new counter;
    cs[i]->a = 0;
    cs[i]->b = 1;
    cs[i]->c = 0;
  }
`, counters, updates)
	for u := 0; u < updates; u++ {
		fmt.Fprintf(&sb, "  targets[%d] = %d;\n  amounts[%d] = %d;\n",
			u, r.Intn(counters), u, 1+r.Intn(9))
	}
	sb.WriteString(`}

void driver::applyGood(int u) {
  counter *x;
  x = cs[targets[u]];
  x->good(amounts[u]);
}

void driver::applyBad(int u) {
  counter *x;
  x = cs[targets[u]];
  x->bad(amounts[u]);
}

void driver::applyLoud(int u) {
  counter *x;
  x = cs[targets[u]];
  x->loud(amounts[u]);
}

void driver::runGood() {
  int u;
  for (u = 0; u < NU; u++)
    this->applyGood(u);
}

void driver::runBad() {
  int u;
  for (u = 0; u < NU; u++)
    this->applyBad(u);
}

void driver::runLoud() {
  int u;
  for (u = 0; u < NU; u++)
    this->applyLoud(u);
}

void main() {
  D.setup();
  D.runGood();
  D.runBad();
  D.runLoud();
}
`)
	return sb.String()
}

// TestParallelDriverDeterministicRandom: the serial/parallel
// differential over randomly generated programs, including methods the
// analysis must reject (non-commuting recurrences, I/O) so the Reason
// strings and pair orderings are compared on the failure paths too.
func TestParallelDriverDeterministicRandom(t *testing.T) {
	r := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 8; trial++ {
		source := genAnalysisProgram(r, 2+r.Intn(5), 4+r.Intn(12))
		file, err := parser.Parse("random.mc", source)
		if err != nil {
			t.Fatalf("trial %d parse: %v", trial, err)
		}
		prog, err := types.Check(file)
		if err != nil {
			t.Fatalf("trial %d check: %v", trial, err)
		}
		want := analyzeAt(prog, 1)
		var sawFailure bool
		for _, rep := range want {
			if !rep.Parallel && rep.Reason != "" {
				sawFailure = true
			}
		}
		if !sawFailure {
			t.Fatalf("trial %d: generator produced no failing method; the Reason determinism check is vacuous", trial)
		}
		for _, w := range []int{2, 4, 8} {
			requireSameReports(t, fmt.Sprintf("trial %d workers=%d", trial, w), want, analyzeAt(prog, w))
		}
	}
}
