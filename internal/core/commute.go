package core

import (
	"fmt"
	"sort"

	"commute/internal/analysis/symbolic"
	"commute/internal/cond"
	"commute/internal/frontend/types"
)

// commute implements Figure 11: two methods commute if all invocations
// are independent, or if symbolic execution of both orders produces the
// same instance-variable values and the same multiset of directly
// invoked operations.
func (a *Analysis) commute(m1, m2 *types.Method, env *symbolic.Env) PairResult {
	if a.independent(m1, m2) {
		return PairResult{M1: m1, M2: m2, Independent: true, Commutes: true}
	}
	return a.symbolicPair(m1, m2, env)
}

// symbolicPair runs the symbolic-execution half of the Figure 11 test,
// memoizing the outcome in pairCache. Methods whose extents overlap
// retest the same pairs; the cache key includes the environment
// fingerprint (extent constants + auxiliary sites) because the outcome
// depends on it.
func (a *Analysis) symbolicPair(m1, m2 *types.Method, env *symbolic.Env) PairResult {
	key := fmt.Sprintf("%d#%d#%s", m1.ID, m2.ID, env.Fingerprint())
	if v, ok := a.pairCache.Load(key); ok {
		return v.(PairResult)
	}
	pr := a.commuteSymbolic(m1, m2, env)
	a.pairCache.Store(key, pr)
	return pr
}

func (a *Analysis) commuteSymbolic(m1, m2 *types.Method, env *symbolic.Env) PairResult {
	pr := PairResult{M1: m1, M2: m2}
	if err := symbolic.Analyzable(m1, env); err != nil {
		pr.Reason = "unanalyzable: " + err.Error()
		return pr
	}
	if err := symbolic.Analyzable(m2, env); err != nil {
		pr.Reason = "unanalyzable: " + err.Error()
		return pr
	}
	r12, err := symbolic.ExecutePair(m1, m2, "1", "2", env)
	if err != nil {
		pr.Reason = err.Error()
		return pr
	}
	r21, err := symbolic.ExecutePair(m2, m1, "2", "1", env)
	if err != nil {
		pr.Reason = err.Error()
		return pr
	}
	c12, c21 := r12.Canonical(), r21.Canonical()

	// Compare the new values of every instance variable either order
	// touched (untouched variables keep their initial symbolic value
	// and compare equal trivially). Keys are visited in sorted order so
	// the first-difference Reason is deterministic. Mismatches do not
	// short-circuit: every differing variable contributes a residual
	// commutativity condition, and the pair's condition is their
	// conjunction (the two orders agree exactly when all of them do).
	seen := make(map[string]bool)
	var keys []string
	for k := range c12.IVars {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range c21.IVars {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var residuals []cond.Pred
	for _, k := range keys {
		v12, ok12 := c12.IVars[k]
		v21, ok21 := c21.IVars[k]
		if !ok12 || !ok21 {
			// Present in only one order: differing footprints mean a
			// statically visible asymmetry; treat as non-commuting with
			// no residual term.
			pr.Reason = fmt.Sprintf("instance variable %s touched in only one order", k)
			return pr
		}
		if !symbolic.Equal(v12, v21) {
			if pr.Reason == "" {
				pr.Reason = fmt.Sprintf("instance variable %s: %s vs %s", k, v12.Key(), v21.Key())
			}
			residuals = append(residuals, cond.Residual(v12, v21))
		}
	}
	if len(residuals) > 0 {
		// A conditional lowering still replays the invocation multisets
		// in a different order, so they must match unconditionally for
		// the residual to be usable.
		if symbolic.EqualMultisets(c12.Invoked, c21.Invoked) {
			pr.Pred = cond.MkAnd(residuals...)
			pr.Condition = cond.Render(pr.Pred)
		}
		return pr
	}
	if !symbolic.EqualMultisets(c12.Invoked, c21.Invoked) {
		pr.Reason = fmt.Sprintf("invoked multisets differ: %s vs %s", c12.Invoked, c21.Invoked)
		return pr
	}
	pr.Commutes = true
	return pr
}

// independent implements the §4.7 independence test on the methods'
// direct instance-variable usage: neither method writes storage the
// other accesses. Receiver-relative descriptors denote the same storage
// as their declaring-class normalization, so the ≼-based overlap test
// applies directly; methods of unrelated receiver classes that only
// touch their own receivers therefore never overlap.
func (a *Analysis) independent(m1, m2 *types.Method) bool {
	i1, i2 := a.Eff.Info(m1), a.Eff.Info(m2)
	acc2 := i2.Reads.Clone()
	acc2.AddAll(i2.Writes)
	if i1.Writes.OverlapsSet(acc2) {
		return false
	}
	acc1 := i1.Reads.Clone()
	acc1.AddAll(i1.Writes)
	return !i2.Writes.OverlapsSet(acc1)
}
