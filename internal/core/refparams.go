package core

import (
	"commute/internal/analysis/effects"
	"commute/internal/analysis/extent"
	"commute/internal/frontend/types"
)

// checkReferenceParameters implements Figure 10 (with the fidelity
// adjustments documented in DESIGN.md):
//
//   - the analyzed method itself has no reference parameters;
//   - at every extent call site, each reference actual is a local
//     variable of primitive(-array) type of the enclosing method, so no
//     reference parameter can point into a receiver;
//   - every extent method's transitive writes target only instance
//     variables — in particular no extent method writes its reference
//     parameters, so reference parameters always hold extent constant
//     values.
func (a *Analysis) checkReferenceParameters(m *types.Method, ext *extent.Result, r *MethodReport) bool {
	if len(m.ReferenceParams()) != 0 {
		r.Reason = m.FullName() + " has reference parameters"
		return false
	}
	for _, site := range ext.Ext {
		caller := site.Caller
		mi := a.Eff.Info(caller)
		var cc *effects.CallContext
		for i := range mi.Calls {
			if mi.Calls[i].Site == site {
				cc = &mi.Calls[i]
				break
			}
		}
		if cc == nil {
			continue
		}
		for name, act := range cc.Refs {
			if act.Kind != effects.ActLocal {
				r.Reason = caller.FullName() + " passes a non-local reference actual for " +
					site.Callee.FullName() + " parameter " + name
				return false
			}
		}
		te := a.Eff.TransitiveEffects(site.Callee)
		for _, d := range te.Writes.Slice() {
			if d.Space != effects.DescField {
				r.Reason = site.Callee.FullName() + " writes non-instance-variable storage " + d.Key()
				return false
			}
		}
	}
	return true
}
