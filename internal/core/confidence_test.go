package core_test

import (
	"strings"
	"testing"
)

// TestConfidenceProvenExtent: a proven-parallel extent scores 1.0 and
// carries no residual condition.
func TestConfidenceProvenExtent(t *testing.T) {
	_, a := analyze(t, `
class counter {
public:
  int n;
  void add(int k);
};
class driver {
public:
  counter *c;
  int dummy;
  void run();
};
void counter::add(int k) { n = n + k; }
void driver::run() {
  c->add(1);
  c->add(2);
}
`)
	r := a.IsParallel(a.Prog.MethodByFullName("driver::run"))
	if !r.Parallel {
		t.Fatalf("run should be parallel; reason: %s", r.Reason)
	}
	if r.Confidence != 1 {
		t.Errorf("Confidence = %v, want 1", r.Confidence)
	}
	if r.Condition != "" {
		t.Errorf("Condition = %q, want empty", r.Condition)
	}
	if r.SpeculationEligible {
		t.Error("proven extent must not be marked speculation-eligible")
	}
}

// TestConfidencePairFailure: an extent rejected only at the pair stage
// scores the fraction of proven pairs, records the first failing pair's
// residual condition, and is speculation-eligible.
func TestConfidencePairFailure(t *testing.T) {
	_, a := analyze(t, `
class counter {
public:
  int n;
  void add(int k);
  void set(int k);
};
class driver {
public:
  counter *c;
  int dummy;
  void run();
};
void counter::add(int k) { n = n + k; }
void counter::set(int k) { n = k; }
void driver::run() {
  c->add(1);
  c->set(5);
}
`)
	r := a.IsParallel(a.Prog.MethodByFullName("driver::run"))
	if r.Parallel {
		t.Fatal("run must not be parallel")
	}
	if r.Confidence <= 0 || r.Confidence >= 1 {
		t.Errorf("Confidence = %v, want strictly between 0 and 1", r.Confidence)
	}
	// Extent {run, add, set}: 6 pairs, with at least (add,set) and
	// (set,set) failing symbolically.
	total := r.IndependentPairs + r.SymbolicPairs
	passed := 0
	failedConds := 0
	for _, pr := range r.Pairs {
		if pr.Commutes {
			passed++
			if pr.Condition != "" {
				t.Errorf("commuting pair %s/%s has condition %q",
					pr.M1.FullName(), pr.M2.FullName(), pr.Condition)
			}
		} else if pr.Condition != "" {
			failedConds++
			// The residual is either an equality over symbolic terms or,
			// when the unequal values are literals (as here: add(1) vs
			// set(5)), the folded unsatisfiable predicate.
			if !strings.Contains(pr.Condition, "==") && pr.Condition != "false" {
				t.Errorf("condition %q is not a residual equality", pr.Condition)
			}
			if pr.Pred == nil {
				t.Errorf("failing pair %s/%s has rendered condition but nil Pred",
					pr.M1.FullName(), pr.M2.FullName())
			}
		}
	}
	if want := float64(passed) / float64(total); r.Confidence != want {
		t.Errorf("Confidence = %v, want %v (%d/%d)", r.Confidence, want, passed, total)
	}
	if failedConds == 0 {
		t.Error("no failing pair carried a residual condition")
	}
	if r.Condition == "" {
		t.Error("report Condition empty; want the first failing pair's residual")
	}
	if !r.SpeculationEligible {
		t.Error("pair-stage failure with no I/O must be speculation-eligible")
	}
}

// TestConfidenceStructuralFailure: extents rejected before pair testing
// (here: I/O in the extent) score 0 and are not speculation-eligible —
// rollback cannot retract a print.
func TestConfidenceStructuralFailure(t *testing.T) {
	_, a := analyze(t, `
class cnt {
public:
  int n;
  void add(int k);
};
class driver {
public:
  cnt *c;
  int dummy;
  void run();
};
void cnt::add(int k) { n = n + k; print("added"); }
void driver::run() { c->add(1); c->add(2); }
`)
	r := a.IsParallel(a.Prog.MethodByFullName("driver::run"))
	if r.Parallel {
		t.Fatal("I/O in the extent must prevent parallelization")
	}
	if r.Confidence != 0 {
		t.Errorf("Confidence = %v, want 0 for a structural rejection", r.Confidence)
	}
	if r.SpeculationEligible {
		t.Error("extent with I/O must not be speculation-eligible")
	}
}
