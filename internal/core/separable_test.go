package core_test

import (
	"strings"
	"testing"
)

// sepCase builds a two-class program where driver::run invokes worker
// operations; body is the body of worker::op.
func sepCase(t *testing.T, extraFields, body string) (bool, string) {
	t.Helper()
	_, a := analyze(t, `
class helper {
public:
  int h;
  void bump(int k);
};
void helper::bump(int k) { h = h + k; }
class worker {
public:
  int x;
  int ro;
  helper *hp;
  `+extraFields+`
  void op();
};
void worker::op() {
`+body+`
}
class driver {
public:
  worker *w1;
  worker *w2;
  void run();
};
void driver::run() {
  w1->op();
  w2->op();
}
`)
	r := a.IsParallel(a.Prog.MethodByFullName("driver::run"))
	return r.Parallel, r.Reason
}

// TestSeparabilityRules exercises §4.6 path by path.
func TestSeparabilityRules(t *testing.T) {
	cases := []struct {
		name   string
		fields string
		body   string
		wantOK bool
		reason string
	}{
		{
			name:   "object-then-invocation",
			body:   "  x = x + 1;\n  hp->bump(2);",
			wantOK: true,
		},
		{
			name:   "write-after-invocation",
			body:   "  hp->bump(2);\n  x = x + 1;",
			wantOK: false,
			reason: "after invoking an extent operation",
		},
		{
			name:   "read-of-ec-after-invocation",
			body:   "  int t;\n  x = x + 1;\n  hp->bump(2);\n  t = ro;\n  hp->bump(t);",
			wantOK: true, // ro is read-only in the extent: an extent constant
		},
		{
			name:   "read-of-written-after-invocation",
			body:   "  int t;\n  x = x + 1;\n  hp->bump(2);\n  t = x;\n  hp->bump(t);",
			wantOK: false,
			reason: "after invoking an extent operation",
		},
		{
			name:   "write-other-object",
			body:   "  hp->h = 5;",
			wantOK: false,
			reason: "writes non-receiver storage",
		},
		{
			name:   "read-other-object-not-ec",
			fields: "worker *peer;",
			body:   "  x = x + peer->x;",
			wantOK: false,
			// worker.x is written in the extent, so the non-receiver
			// read cannot be an extent constant.
		},
		{
			name:   "read-other-object-ec",
			fields: "worker *peer;",
			body:   "  x = x + peer->ro;",
			wantOK: true, // ro is never written: extent constant
		},
		{
			name:   "loop-interleaving-rescan",
			body:   "  int i;\n  for (i = 0; i < 3; i++) {\n    x = x + i;\n    hp->bump(i);\n  }",
			wantOK: false, // iteration 2 writes x after iteration 1's invocation
			reason: "after invoking an extent operation",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ok, reason := sepCase(t, tc.fields, tc.body)
			if ok != tc.wantOK {
				t.Fatalf("parallel = %v (reason %q), want %v", ok, reason, tc.wantOK)
			}
			if !ok && tc.reason != "" && !strings.Contains(reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", reason, tc.reason)
			}
		})
	}
}

// TestReferenceParameterRules exercises Figure 10.
func TestReferenceParameterRules(t *testing.T) {
	// A root with reference parameters is never parallel.
	_, a := analyze(t, `
class acc {
public:
  int n;
  void addInto(double *out);
};
void acc::addInto(double *out) { out[0] = n * 1.0; }
`)
	r := a.IsParallel(a.Prog.MethodByFullName("acc::addInto"))
	if r.Parallel {
		t.Fatal("methods with reference parameters cannot be parallel roots")
	}
	if !strings.Contains(r.Reason, "reference parameters") {
		t.Errorf("reason = %q", r.Reason)
	}

	// An extent operation that writes its reference parameter blocks
	// parallelization.
	_, a2 := analyze(t, `
class vecop {
public:
  double s;
  void scale(double *v);
};
void vecop::scale(double *v) {
  v[0] = v[0] * 2.0;
  s = s + 1.0;
}
class driver {
public:
  vecop *p;
  void run();
};
void driver::run() {
  double t[2];
  t[0] = 1.0;
  p->scale(t);
  p->scale(t);
}
`)
	r2 := a2.IsParallel(a2.Prog.MethodByFullName("driver::run"))
	if r2.Parallel {
		t.Fatal("extent operations writing reference parameters must block parallelization")
	}
}

// TestNewBlocksParallelization per Figure 3's mayCreateObject.
func TestNewBlocksParallelization(t *testing.T) {
	_, a := analyze(t, `
class cell {
public:
  int n;
  cell *spare;
  void grow();
};
void cell::grow() {
  n = n + 1;
  spare = new cell;
}
class driver {
public:
  cell *c;
  void run();
};
void driver::run() {
  c->grow();
  c->grow();
}
`)
	r := a.IsParallel(a.Prog.MethodByFullName("driver::run"))
	if r.Parallel {
		t.Fatal("object creation in the extent must block parallelization")
	}
	if !strings.Contains(r.Reason, "create objects") {
		t.Errorf("reason = %q", r.Reason)
	}
}
