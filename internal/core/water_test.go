package core_test

import (
	"testing"

	"commute/internal/apps/src"
)

// TestWaterParallelMethods checks the Table 8 structure: the five phase
// drivers (Virtual, Loading, Forces, Energy, Momenta) are parallel;
// setup is serial.
func TestWaterParallelMethods(t *testing.T) {
	p, a := analyze(t, src.Water)
	wantParallel := map[string]struct {
		extentSize int
	}{
		"water::predictAll": {2}, // Virtual: {predictAll, predict}
		"water::loadAll":    {2}, // Loading: {loadAll, load}
		"water::interf":     {3}, // Forces: {interf, interForces, fbank::add}
		"water::poteng":     {3}, // Energy: {poteng, potEnergy, sums::addPot}
		"water::momentaAll": {3}, // Momenta: {momentaAll, momenta, sums::addKin}
	}
	for name, want := range wantParallel {
		r := report(t, p, a, name)
		if !r.Parallel {
			t.Errorf("%s should be parallel; reason: %s", name, r.Reason)
			continue
		}
		if r.ExtentSize != want.extentSize {
			t.Errorf("%s extent size = %d, want %d", name, r.ExtentSize, want.extentSize)
		}
	}
	for _, name := range []string{"water::init", "water::step"} {
		r := report(t, p, a, name)
		if r.Parallel {
			t.Errorf("%s should be serial", name)
		}
	}
}

// TestWaterAuxiliarySites: the accessor methods (getDt, getBox,
// getCutSq) and the pair kernels are recognized as auxiliary.
func TestWaterAuxiliarySites(t *testing.T) {
	p, a := analyze(t, src.Water)
	r := report(t, p, a, "water::interf")
	if !r.Parallel {
		t.Fatalf("interf not parallel: %s", r.Reason)
	}
	if r.AuxiliaryCallSites < 2 { // getCutSq + pairForce
		t.Errorf("Forces auxiliary call sites = %d, want ≥ 2", r.AuxiliaryCallSites)
	}
	r = report(t, p, a, "water::predictAll")
	if r.AuxiliaryCallSites < 2 { // getDt + getBox
		t.Errorf("Virtual auxiliary call sites = %d, want ≥ 2", r.AuxiliaryCallSites)
	}
}
