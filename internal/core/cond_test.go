package core_test

import (
	"strings"
	"testing"

	"commute/internal/cond"
)

// condSource has an extent (box::work) with two independently failing
// pairs — (adda, adda) conditional on B.m1, (addb, addb) conditional
// on B.m2 — so the report-level condition must aggregate residuals
// from every failing pair, not just the first one encountered.
const condSource = `
class cell {
public:
  int a;
  int b;
  void adda(int v);
  void addb(int v);
};

class box {
public:
  int m1;
  int m2;
  cell *c;
  void setup();
  void work(int r);
};

// Global Variables
box B;

void cell::adda(int v) {
  if (B.m1 == 0) {
    a = a + v;
  } else {
    a = v;
  }
}

void cell::addb(int v) {
  if (B.m2 == 0) {
    b = b + v;
  } else {
    b = v;
  }
}

void box::setup() {
  m1 = 0;
  m2 = 0;
  c = new cell;
}

void box::work(int r) {
  c->adda(r);
  c->adda(r + 1);
  c->addb(r);
  c->addb(r + 2);
}

void main() {
  B.setup();
  B.work(1);
  B.work(2);
}
`

// TestConditionAggregatesAllFailingPairs: with two distinct residuals
// in one extent, the method-level predicate is their conjunction and
// the synthesized guard reads both mode fields. A first-failure-only
// aggregation would guard on one mode and unsoundly parallelize when
// the other mode disables commutativity.
func TestConditionAggregatesAllFailingPairs(t *testing.T) {
	_, a := analyze(t, condSource)
	r := a.IsParallel(a.Prog.MethodByFullName("box::work"))
	if r.Parallel {
		t.Fatal("box::work must not be unconditionally parallel")
	}
	if !r.ConditionalEligible {
		t.Fatalf("box::work should be conditionally eligible; reason: %s", r.Reason)
	}

	// Both failing pairs contribute a residual, and the residuals are
	// distinct predicates.
	residuals := map[string]bool{}
	for _, pr := range r.Pairs {
		if !pr.Commutes && pr.Pred != nil {
			residuals[pr.Pred.Key()] = true
		}
	}
	if len(residuals) < 2 {
		t.Fatalf("want >= 2 distinct failing-pair residuals, got %d: %v", len(residuals), residuals)
	}

	// The aggregate condition and the guard must mention both mode
	// fields — evidence no residual was dropped.
	for _, field := range []string{"ec:box.m1@global:B", "ec:box.m2@global:B"} {
		if !strings.Contains(r.Condition, field) {
			t.Errorf("aggregate condition %q does not mention %s", r.Condition, field)
		}
		if g := cond.Render(r.Guard); !strings.Contains(g, field) {
			t.Errorf("guard %q does not mention %s", g, field)
		}
	}

	// The guard reads exactly the two mode fields.
	refs := cond.Refs(r.Guard)
	if len(refs) != 2 ||
		refs[0] != (cond.FieldRef{Global: "B", Class: "box", Field: "m1"}) ||
		refs[1] != (cond.FieldRef{Global: "B", Class: "box", Field: "m2"}) {
		t.Errorf("guard refs = %+v, want [B.box.m1 B.box.m2]", refs)
	}
}
