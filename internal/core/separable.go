package core

import (
	"fmt"

	"commute/internal/analysis/effects"
	"commute/internal/analysis/extent"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
	"commute/internal/frontend/types"
)

// separable implements the §4.6 separability check for one method in
// the context of an extent: the method decomposes into an object
// section (all receiver accesses) followed by an invocation section
// (extent invocations), where:
//
//   - writes target only locals or receiver instance variables;
//   - reads target only parameters, locals, receiver instance
//     variables, or extent constants;
//   - after the first extent invocation, receiver accesses are allowed
//     only for extent constant variables (the §3.5.1 relaxation that
//     lets the invocation section compute extent constant values);
//   - auxiliary call sites may appear in either section.
//
// It returns "" when the method is separable, otherwise the reason.
func (a *Analysis) separable(m *types.Method, ext *extent.Result, ec *effects.Set) string {
	if m.Def == nil {
		return "no definition"
	}
	s := &sepScanner{
		analysis: a,
		m:        m,
		ext:      ext,
		ec:       ec,
		resolver: effects.NewResolver(a.Prog, m),
	}
	s.stmt(m.Def.Body)
	return s.reason
}

type sepScanner struct {
	analysis *Analysis
	m        *types.Method
	ext      *extent.Result
	ec       *effects.Set
	resolver *effects.Resolver

	seenExtentCall bool
	reason         string
}

func (s *sepScanner) fail(format string, args ...any) {
	if s.reason == "" {
		s.reason = fmt.Sprintf(format, args...)
	}
}

func (s *sepScanner) stmt(st ast.Stmt) {
	if s.reason != "" {
		return
	}
	switch x := st.(type) {
	case *ast.Block:
		for _, sub := range x.Stmts {
			s.stmt(sub)
		}
	case *ast.DeclStmt:
		if x.Init != nil {
			s.read(x.Init)
		}
	case *ast.ExprStmt:
		s.effect(x.X)
	case *ast.IfStmt:
		s.read(x.Cond)
		s.stmt(x.Then)
		if x.Else != nil {
			s.stmt(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			s.stmt(x.Init)
		}
		before := s.seenExtentCall
		if x.Cond != nil {
			s.read(x.Cond)
		}
		s.stmt(x.Body)
		if x.Post != nil {
			s.stmt(x.Post)
		}
		// If the body invoked extent operations, later iterations
		// execute the whole loop after an invocation: re-scan under the
		// post-invocation rules.
		if !before && s.seenExtentCall {
			if x.Cond != nil {
				s.read(x.Cond)
			}
			s.stmt(x.Body)
			if x.Post != nil {
				s.stmt(x.Post)
			}
		}
	case *ast.WhileStmt:
		before := s.seenExtentCall
		s.read(x.Cond)
		s.stmt(x.Body)
		if !before && s.seenExtentCall {
			s.read(x.Cond)
			s.stmt(x.Body)
		}
	case *ast.ReturnStmt:
		if x.X != nil {
			s.read(x.X)
		}
	}
}

// effect handles statement-position expressions.
func (s *sepScanner) effect(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Assign:
		s.lhsSubReads(x.LHS)
		if x.Op != token.ASSIGN {
			s.read(x.LHS)
		}
		s.read(x.RHS)
		s.write(x.LHS)
	default:
		s.read(e)
	}
}

func (s *sepScanner) lhsSubReads(e ast.Expr) {
	switch x := e.(type) {
	case *ast.IndexExpr:
		s.read(x.Index)
		s.lhsSubReads(x.X)
	case *ast.FieldAccess:
		if _, ok := s.analysis.Prog.TypeOf(x.X).(types.Pointer); ok {
			s.read(x.X)
		} else {
			s.lhsSubReads(x.X)
		}
	}
}

// write checks an lvalue target.
func (s *sepScanner) write(e ast.Expr) {
	if s.reason != "" {
		return
	}
	d, ok := s.resolver.AccessDesc(e)
	if !ok {
		// Locals and value parameters: always fine.
		return
	}
	switch d.Space {
	case effects.DescParam:
		s.fail("writes its reference parameter %s", d.Name)
	case effects.DescField:
		if !d.ViaThis {
			s.fail("writes non-receiver storage %s", d.Key())
			return
		}
		if s.seenExtentCall {
			s.fail("writes receiver variable %s after invoking an extent operation", d.Key())
		}
	}
}

// read walks an rvalue checking each memory read.
func (s *sepScanner) read(e ast.Expr) {
	if s.reason != "" || e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		s.checkReadDesc(x)
	case *ast.FieldAccess:
		s.checkReadDesc(x)
		s.read(x.X)
	case *ast.IndexExpr:
		s.checkReadDesc(x)
		s.read(x.Index)
		if fa, ok := x.X.(*ast.FieldAccess); ok {
			s.read(fa.X)
		}
	case *ast.CallExpr:
		s.call(x)
	case *ast.Assign:
		s.effect(x)
	case *ast.Unary:
		s.read(x.X)
	case *ast.Binary:
		s.read(x.X)
		s.read(x.Y)
	case *ast.CastExpr:
		s.read(x.X)
	}
}

// checkReadDesc validates one memory read.
func (s *sepScanner) checkReadDesc(e ast.Expr) {
	d, ok := s.resolver.AccessDesc(e)
	if !ok {
		return
	}
	switch d.Space {
	case effects.DescParam, effects.DescLocal:
		return
	case effects.DescField:
		norm := d
		norm.ViaThis = false
		if d.ViaThis {
			if s.seenExtentCall && !s.ec.Covers(norm) {
				s.fail("reads receiver variable %s after invoking an extent operation", norm.Key())
			}
			return
		}
		// Non-receiver reads must be extent constants (§3.5.1).
		if !s.ec.Covers(norm) {
			s.fail("reads non-receiver storage %s which is not an extent constant", norm.Key())
		}
	}
}

// call processes a call site: auxiliary sites are transparent; extent
// sites end the object section.
func (s *sepScanner) call(x *ast.CallExpr) {
	if x.Builtin {
		for _, arg := range x.Args {
			s.read(arg)
		}
		return
	}
	if x.Recv != nil {
		s.read(x.Recv)
	}
	for _, arg := range x.Args {
		s.read(arg)
	}
	if s.ext.IsAux(s.analysis.Prog.CallSites[x.Site]) {
		return
	}
	s.seenExtentCall = true
}
