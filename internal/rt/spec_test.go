package rt_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/core"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/rt"
)

// buildSpec compiles a program with the speculative plan extension.
func buildSpec(t testing.TB, source string) (*types.Program, *codegen.Plan) {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog, codegen.BuildWithOptions(core.New(prog), codegen.Options{SpeculateRejected: true})
}

// serialOutput runs the program on the plain serial interpreter and
// returns its print output (the bit-identical reference).
func serialOutput(t *testing.T, prog *types.Program, eng interp.Engine) string {
	t.Helper()
	var buf bytes.Buffer
	ip := interp.NewEngine(prog, &buf, eng)
	if err := ip.Run(ip.NewCtx()); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	return buf.String()
}

// specDisjointState reads every cell value plus the reported sum.
func specDisjointState(t *testing.T, prog *types.Program, ip *interp.Interp) []int64 {
	t.Helper()
	tbl := ip.Globals["T"]
	tableCl := prog.Classes["table"]
	cellCl := prog.Classes["cell"]
	cells := tbl.Slots[ip.FieldSlot(tableCl, "table", "cells")].Array()
	var out []int64
	for _, cv := range cells.Elems {
		out = append(out, cv.Object().Slots[ip.FieldSlot(cellCl, "cell", "val")].Int())
	}
	out = append(out, tbl.Slots[ip.FieldSlot(tableCl, "table", "sum")].Int())
	return out
}

// specConflictState reads the counter's last and total.
func specConflictState(t *testing.T, prog *types.Program, ip *interp.Interp) [2]int64 {
	t.Helper()
	d := ip.Globals["D"]
	driverCl := prog.Classes["driver"]
	counterCl := prog.Classes["counter"]
	c := d.Slots[ip.FieldSlot(driverCl, "driver", "c")].Object()
	return [2]int64{
		c.Slots[ip.FieldSlot(counterCl, "counter", "last")].Int(),
		c.Slots[ip.FieldSlot(counterCl, "counter", "total")].Int(),
	}
}

var specEngines = []interp.Engine{interp.EngineWalk, interp.EngineCompiled}

// TestSpeculativeDisjointCommits: the statically-rejected fill extent
// runs speculatively, observes no runtime conflicts, and commits — and
// the committed state and output are bit-identical to the serial run,
// on both engines and schedulers across worker counts.
func TestSpeculativeDisjointCommits(t *testing.T) {
	prog, plan := buildSpec(t, src.SpecDisjoint)
	for _, eng := range specEngines {
		want := serialOutput(t, prog, eng)
		ipRef := interp.NewEngine(prog, nil, eng)
		if err := ipRef.Run(ipRef.NewCtx()); err != nil {
			t.Fatal(err)
		}
		wantState := specDisjointState(t, prog, ipRef)

		for _, sched := range []rt.SchedMode{rt.SchedStealing, rt.SchedCentral} {
			for _, workers := range []int{1, 2, 4} {
				var buf bytes.Buffer
				ip := interp.NewEngine(prog, &buf, eng)
				r := rt.New(ip, plan, workers)
				r.Sched = sched
				r.Speculate = rt.SpecForce
				if err := r.Run(); err != nil {
					t.Fatalf("eng=%v sched=%v workers=%d: %v", eng, sched, workers, err)
				}
				if got := buf.String(); got != want {
					t.Errorf("eng=%v sched=%v workers=%d: output %q, want %q", eng, sched, workers, got, want)
				}
				got := specDisjointState(t, prog, ip)
				for i := range wantState {
					if got[i] != wantState[i] {
						t.Errorf("eng=%v sched=%v workers=%d: state[%d] = %d, want %d",
							eng, sched, workers, i, got[i], wantState[i])
					}
				}
				if r.Stats.SpeculationCommits == 0 {
					t.Errorf("eng=%v sched=%v workers=%d: no speculation commits", eng, sched, workers)
				}
				if r.Stats.SpeculationAborts != 0 {
					t.Errorf("eng=%v sched=%v workers=%d: %d aborts on a conflict-free program",
						eng, sched, workers, r.Stats.SpeculationAborts)
				}
			}
		}
	}
}

// TestSpeculativeConflictAborts: the guaranteed-violating program
// aborts, reruns serially, and ends bit-identical to serial.
func TestSpeculativeConflictAborts(t *testing.T) {
	prog, plan := buildSpec(t, src.SpecConflict)
	for _, eng := range specEngines {
		want := serialOutput(t, prog, eng)
		for _, sched := range []rt.SchedMode{rt.SchedStealing, rt.SchedCentral} {
			for _, workers := range []int{1, 2, 4} {
				var buf bytes.Buffer
				ip := interp.NewEngine(prog, &buf, eng)
				r := rt.New(ip, plan, workers)
				r.Sched = sched
				r.Speculate = rt.SpecForce
				if err := r.Run(); err != nil {
					t.Fatalf("eng=%v sched=%v workers=%d: %v", eng, sched, workers, err)
				}
				if got := buf.String(); got != want {
					t.Errorf("eng=%v sched=%v workers=%d: output %q, want %q", eng, sched, workers, got, want)
				}
				if got := specConflictState(t, prog, ip); got != [2]int64{2, 3} {
					t.Errorf("eng=%v sched=%v workers=%d: state = %v, want [2 3]", eng, sched, workers, got)
				}
				if r.Stats.SpeculationAborts == 0 {
					t.Errorf("eng=%v sched=%v workers=%d: violating program did not abort", eng, sched, workers)
				}
				if r.Stats.SpeculationCommits != 0 {
					t.Errorf("eng=%v sched=%v workers=%d: violating region committed", eng, sched, workers)
				}
			}
		}
	}
}

// TestSpeculativeAutoThreshold: auto mode speculates only when the
// extent's confidence clears the threshold.
func TestSpeculativeAutoThreshold(t *testing.T) {
	prog, plan := buildSpec(t, src.SpecDisjoint)
	want := serialOutput(t, prog, interp.EngineCompiled)

	run := func(th float64) *rt.Runtime {
		var buf bytes.Buffer
		ip := interp.New(prog, &buf)
		r := rt.New(ip, plan, 4)
		r.Speculate = rt.SpecAuto
		r.SpecThreshold = th
		if err := r.Run(); err != nil {
			t.Fatalf("threshold %v: %v", th, err)
		}
		if got := buf.String(); got != want {
			t.Errorf("threshold %v: output %q, want %q", th, got, want)
		}
		return r
	}

	// fill's confidence is 2/3: above a 0.5 threshold, below 0.9.
	if r := run(0.5); r.Stats.SpeculativeRegions == 0 {
		t.Error("threshold 0.5: expected speculation")
	}
	if r := run(0.9); r.Stats.SpeculativeRegions != 0 {
		t.Error("threshold 0.9: expected the policy to decline and run serially")
	}
}

// TestSpeculativeOffStaysSerial: with speculation off, a plan carrying
// speculative versions still runs the rejected extent serially.
func TestSpeculativeOffStaysSerial(t *testing.T) {
	prog, plan := buildSpec(t, src.SpecConflict)
	want := serialOutput(t, prog, interp.EngineCompiled)
	var buf bytes.Buffer
	ip := interp.New(prog, &buf)
	r := rt.New(ip, plan, 4)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("output %q, want %q", got, want)
	}
	if r.Stats.SpeculativeRegions != 0 || r.Stats.Regions != 0 {
		t.Errorf("regions = %d speculative = %d, want 0/0",
			r.Stats.Regions, r.Stats.SpeculativeRegions)
	}
}

// TestSpeculativeValidateFault: an injected panic at the validate
// boundary — after the tasks finished, before commit — must abort the
// region and rerun serially with bit-identical results.
func TestSpeculativeValidateFault(t *testing.T) {
	for _, source := range []string{src.SpecDisjoint, src.SpecConflict} {
		prog, plan := buildSpec(t, source)
		want := serialOutput(t, prog, interp.EngineCompiled)
		var buf bytes.Buffer
		ip := interp.New(prog, &buf)
		r := rt.New(ip, plan, 4)
		r.Speculate = rt.SpecForce
		r.Faults = &rt.FaultPlan{PanicOnValidate: 1}
		if err := r.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		if got := buf.String(); got != want {
			t.Errorf("output %q, want %q", got, want)
		}
		if r.Stats.SpeculationAborts == 0 {
			t.Error("validate fault did not abort")
		}
		if r.Stats.SpeculationCommits != 0 {
			t.Error("validate fault still committed")
		}
		if r.Stats.TaskPanics == 0 {
			t.Error("injected validate panic was not captured")
		}
	}
}

// TestSpeculativeSpawnFault: a fault injected into a speculative task
// aborts the region; the serial rerun is exact because nothing was
// committed.
func TestSpeculativeSpawnFault(t *testing.T) {
	prog, plan := buildSpec(t, src.SpecConflict)
	want := serialOutput(t, prog, interp.EngineCompiled)
	var buf bytes.Buffer
	ip := interp.New(prog, &buf)
	r := rt.New(ip, plan, 4)
	r.Speculate = rt.SpecForce
	r.Faults = &rt.FaultPlan{PanicOnSpawn: 1}
	if err := r.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := buf.String(); got != want {
		t.Errorf("output %q, want %q", got, want)
	}
	if got := specConflictState(t, prog, ip); got != [2]int64{2, 3} {
		t.Errorf("state = %v, want [2 3]", got)
	}
	if r.Stats.SpeculationAborts == 0 {
		t.Error("spawn fault did not abort the speculative region")
	}
}

// TestSpeculationStatsStress hammers the Stats counters' error paths
// under -race: repeated speculative runs with probabilistic task
// panics increment TaskPanics / Tasks / SpeculationAborts concurrently
// from pool workers, and proven-path runs with fallback do the same
// for Steals / LocalPops / SerialFallbacks. The assertions are sanity
// bounds; the real check is the race detector proving every increment
// is atomic (the counter audit found them all atomic already — this
// locks that in as a regression test).
func TestSpeculationStatsStress(t *testing.T) {
	prog, plan := buildSpec(t, src.SpecConflict)
	want := serialOutput(t, prog, interp.EngineCompiled)
	for seed := int64(0); seed < 20; seed++ {
		var buf bytes.Buffer
		ip := interp.New(prog, &buf)
		r := rt.New(ip, plan, 4)
		r.Speculate = rt.SpecForce
		r.Faults = &rt.FaultPlan{Seed: seed, PanicRate: 0.4}
		if err := r.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := buf.String(); got != want {
			t.Errorf("seed %d: output %q, want %q", seed, got, want)
		}
		if got := specConflictState(t, prog, ip); got != [2]int64{2, 3} {
			t.Errorf("seed %d: state = %v, want [2 3]", seed, got)
		}
		if r.Stats.SpeculationCommits+r.Stats.SpeculationAborts != r.Stats.SpeculativeRegions {
			t.Errorf("seed %d: commits %d + aborts %d != speculative regions %d", seed,
				r.Stats.SpeculationCommits, r.Stats.SpeculationAborts, r.Stats.SpeculativeRegions)
		}
	}

	// Proven-path counters under the same probabilistic faulting.
	gprog, gplan := build(t, src.Graph)
	for seed := int64(0); seed < 5; seed++ {
		ip := interp.New(gprog, nil)
		r := rt.New(ip, gplan, 4)
		r.SerialFallback = true
		r.Faults = &rt.FaultPlan{Seed: seed, PanicRate: 0.1}
		if err := r.Run(); err != nil {
			t.Fatalf("graph seed %d: %v", seed, err)
		}
		if r.Stats.TaskPanics > 0 && r.Stats.SerialFallbacks == 0 {
			t.Errorf("graph seed %d: %d panics but no fallback", seed, r.Stats.TaskPanics)
		}
	}
}

// TestSpeculativeCallerTimeout: the caller's own deadline is never
// speculated past — the region returns the error without a serial
// rerun, and no buffered write reaches the heap.
func TestSpeculativeCallerTimeout(t *testing.T) {
	prog, plan := buildSpec(t, src.SpecConflict)
	ip := interp.New(prog, nil)
	r := rt.New(ip, plan, 2)
	r.Speculate = rt.SpecForce
	r.Faults = &rt.FaultPlan{DelayOnSpawn: 300 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := r.RunContext(ctx); err == nil {
		t.Fatal("expected a deadline error")
	}
	if r.Stats.SpeculationAborts != 0 {
		t.Errorf("aborts = %d: a caller timeout must not trigger a serial rerun",
			r.Stats.SpeculationAborts)
	}
	if r.Stats.SpeculationCommits != 0 {
		t.Error("timed-out region committed")
	}
}
