package rt_test

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/rt"
)

// genCommutingProgram generates a random program whose parallel work
// consists only of commuting additive/multiplicative updates on a pool
// of counter objects, driven by a parallel loop. Serial and parallel
// executions must agree exactly (integer state).
func genCommutingProgram(r *rand.Rand, counters, updates int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `
const int NC = %d;
const int NU = %d;

class counter {
public:
  int adds;
  int prods;
  void bump(int k);
};

void counter::bump(int k) {
  adds = adds + k;
  prods = prods * 2 + 0 * k;
}

class driver {
public:
  counter *cs[NC];
  int targets[NU];
  int amounts[NU];
  void setup();
  void apply(int u);
  void runAll();
};

driver D;

void driver::setup() {
  int i;
  for (i = 0; i < NC; i++) {
    cs[i] = new counter;
    cs[i]->adds = 0;
    cs[i]->prods = 1;
  }
`, counters, updates)
	for u := 0; u < updates; u++ {
		fmt.Fprintf(&sb, "  targets[%d] = %d;\n  amounts[%d] = %d;\n",
			u, r.Intn(counters), u, 1+r.Intn(9))
	}
	sb.WriteString(`}

void driver::apply(int u) {
  counter *c;
  c = cs[targets[u]];
  c->bump(amounts[u]);
}

void driver::runAll() {
  int u;
  for (u = 0; u < NU; u++)
    this->apply(u);
}

void main() {
  D.setup();
  D.runAll();
}
`)
	return sb.String()
}

// TestRandomCommutingPrograms: the analysis marks the generated update
// loops parallel, and parallel execution reproduces the serial integer
// state exactly at several worker counts.
func TestRandomCommutingPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 10; trial++ {
		counters := 2 + r.Intn(6)
		updates := 8 + r.Intn(40)
		source := genCommutingProgram(r, counters, updates)

		prog, plan := build(t, source)
		runAll := prog.MethodByFullName("driver::runAll")
		var parallelLoop bool
		for _, lp := range plan.Loops {
			if lp.Method == runAll && lp.Parallel {
				parallelLoop = true
			}
		}
		if !parallelLoop {
			t.Fatalf("trial %d: update loop not parallelized", trial)
		}

		engines := []struct {
			name string
			eng  interp.Engine
		}{{"walk", interp.EngineWalk}, {"compiled", interp.EngineCompiled}}

		// Differential property across execution engines: the closure
		// compiler must be observationally identical to the tree walker.
		// The walk engine's serial state is the reference for everything.
		ipSerial := interp.NewEngine(prog, nil, interp.EngineWalk)
		if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
			t.Fatalf("trial %d serial walk: %v", trial, err)
		}
		want := counterState(t, prog, ipSerial, counters)

		ipComp := interp.NewEngine(prog, nil, interp.EngineCompiled)
		if err := ipComp.Run(ipComp.NewCtx()); err != nil {
			t.Fatalf("trial %d serial compiled: %v", trial, err)
		}
		if got := counterState(t, prog, ipComp, counters); !slices.Equal(got, want) {
			t.Fatalf("trial %d: serial compiled state %v, want %v", trial, got, want)
		}

		// Differential property across schedulers and engines: the
		// scheduler may only change the order of commuting updates, never
		// the result; the engine may change nothing observable at all —
		// including the deterministic scheduler counters (regions, loops,
		// iterations, tasks, lock acquires).
		for _, sched := range []struct {
			name string
			mode rt.SchedMode
		}{{"central", rt.SchedCentral}, {"stealing", rt.SchedStealing}} {
			for _, workers := range []int{1, 4} {
				var refStats []int64
				for _, e := range engines {
					ip := interp.NewEngine(prog, nil, e.eng)
					r := rt.New(ip, plan, workers)
					r.Sched = sched.mode
					if err := r.Run(); err != nil {
						t.Fatalf("trial %d %s/%s parallel: %v", trial, sched.name, e.name, err)
					}
					got := counterState(t, prog, ip, counters)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("trial %d %s/%s workers %d: counter %d = %v, want %v (commuting updates must agree)",
								trial, sched.name, e.name, workers, i, got[i], want[i])
						}
					}
					st := []int64{r.Stats.Regions, r.Stats.ParallelLoops, r.Stats.Iterations,
						r.Stats.Tasks, r.Stats.LockAcquires}
					if refStats == nil {
						refStats = st
					} else if !slices.Equal(st, refStats) {
						t.Fatalf("trial %d %s workers %d: compiled stats %v, walk stats %v (engines must schedule identical work)",
							trial, sched.name, workers, st, refStats)
					}
				}
			}
		}
	}
}

// genRejectedProgram is genCommutingProgram with one non-commuting
// overwrite (`last = k`) added to the update, so the analysis rejects
// the update loop at the symbolic pair stage (fractional confidence,
// speculation-eligible) while the additive state still commutes.
// Whether a speculative run commits (updates landed in disjoint
// per-worker journals) or aborts and re-runs serially depends on the
// random target pattern and the chunking — both paths must reproduce
// the serial state exactly.
func genRejectedProgram(r *rand.Rand, counters, updates int) string {
	src := genCommutingProgram(r, counters, updates)
	src = strings.Replace(src, "int prods;", "int prods;\n  int last;", 1)
	src = strings.Replace(src, "adds = adds + k;", "adds = adds + k;\n  last = k;", 1)
	return src
}

// genViolatingProgram generates a program guaranteed to violate under
// speculation at every worker count: the rejected method's call sites
// are spawned tasks (each with its own journal), and every task
// overwrites the same counter's field, so validation always finds a
// cross-task write-write conflict. The serial rerun after the abort
// must reproduce the serial state bit-exactly.
func genViolatingProgram(r *rand.Rand, marks int) string {
	var sb strings.Builder
	sb.WriteString(`
class counter {
public:
  int last;
  int total;
  void mark(int k);
};

void counter::mark(int k) {
  last = k;
  total = total + k;
}

class driver {
public:
  counter *c;
  void setup();
  void run();
};

driver D;

void driver::setup() {
  c = new counter;
}

void driver::run() {
`)
	for i := 0; i < marks; i++ {
		fmt.Fprintf(&sb, "  c->mark(%d);\n", 1+r.Intn(99))
	}
	sb.WriteString(`}

void main() {
  D.setup();
  D.run();
}
`)
	return sb.String()
}

// TestRandomSpeculativePrograms promotes the differential property to
// speculative execution: serial, parallel, and speculative runs across
// both engines and several worker counts must agree bit-exactly on the
// program state — whether the speculation commits, or aborts and
// re-runs serially.
func TestRandomSpeculativePrograms(t *testing.T) {
	r := rand.New(rand.NewSource(5678))
	engines := []struct {
		name string
		eng  interp.Engine
	}{{"walk", interp.EngineWalk}, {"compiled", interp.EngineCompiled}}

	// Rejected-but-often-disjoint update loops (GSS speculation).
	for trial := 0; trial < 6; trial++ {
		counters := 2 + r.Intn(6)
		updates := 8 + r.Intn(40)
		source := genRejectedProgram(r, counters, updates)
		prog, plan := buildSpec(t, source)

		runAll := prog.MethodByFullName("driver::runAll")
		if mp := plan.Methods[runAll]; !mp.Speculative {
			t.Fatalf("trial %d: rejected update loop not planned speculative", trial)
		}

		// Read the overwritten field too: `last` is the non-commuting
		// state, so it is exactly where a botched commit would show.
		fullState := func(ip *interp.Interp) []int64 {
			st := counterState(t, prog, ip, counters)
			d := ip.Globals["D"]
			cs := d.Slots[ip.FieldSlot(prog.Classes["driver"], "driver", "cs")].Array()
			for i := 0; i < counters; i++ {
				c := cs.Elems[i].Object()
				st = append(st, c.Slots[ip.FieldSlot(prog.Classes["counter"], "counter", "last")].Int())
			}
			return st
		}

		ipSerial := interp.NewEngine(prog, nil, interp.EngineWalk)
		if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		want := fullState(ipSerial)

		for _, e := range engines {
			for _, workers := range []int{1, 4} {
				ip := interp.NewEngine(prog, nil, e.eng)
				rr := rt.New(ip, plan, workers)
				rr.Speculate = rt.SpecForce
				if err := rr.Run(); err != nil {
					t.Fatalf("trial %d %s workers %d: %v", trial, e.name, workers, err)
				}
				if got := fullState(ip); !slices.Equal(got, want) {
					t.Fatalf("trial %d %s workers %d: state %v, want serial %v", trial, e.name, workers, got, want)
				}
				if rr.Stats.SpeculativeRegions == 0 {
					t.Fatalf("trial %d %s workers %d: nothing speculated", trial, e.name, workers)
				}
				if rr.Stats.SpeculationCommits+rr.Stats.SpeculationAborts != rr.Stats.SpeculativeRegions {
					t.Fatalf("trial %d %s workers %d: stats %+v don't balance", trial, e.name, workers, rr.Stats)
				}
			}
		}
	}

	// Guaranteed violators: every speculative run must abort and the
	// serial rerun must win.
	for trial := 0; trial < 6; trial++ {
		marks := 2 + r.Intn(5)
		source := genViolatingProgram(r, marks)
		prog, plan := buildSpec(t, source)

		ipSerial := interp.NewEngine(prog, nil, interp.EngineWalk)
		if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
			t.Fatalf("violator %d serial: %v", trial, err)
		}
		want := markState(t, prog, ipSerial)

		for _, e := range engines {
			for _, workers := range []int{1, 4} {
				ip := interp.NewEngine(prog, nil, e.eng)
				rr := rt.New(ip, plan, workers)
				rr.Speculate = rt.SpecForce
				if err := rr.Run(); err != nil {
					t.Fatalf("violator %d %s workers %d: %v", trial, e.name, workers, err)
				}
				if got := markState(t, prog, ip); got != want {
					t.Fatalf("violator %d %s workers %d: state %v, want serial %v", trial, e.name, workers, got, want)
				}
				if rr.Stats.SpeculationAborts == 0 {
					t.Fatalf("violator %d %s workers %d: guaranteed conflict did not abort (%+v)",
						trial, e.name, workers, rr.Stats)
				}
				if rr.Stats.SpeculationCommits != 0 {
					t.Fatalf("violator %d %s workers %d: conflicting region committed (%+v)",
						trial, e.name, workers, rr.Stats)
				}
			}
		}
	}
}

// markState reads (last, total) of the violating program's counter.
func markState(t *testing.T, prog *types.Program, ip *interp.Interp) [2]int64 {
	t.Helper()
	d := ip.Globals["D"]
	driverCl := prog.Classes["driver"]
	counterCl := prog.Classes["counter"]
	c := d.Slots[ip.FieldSlot(driverCl, "driver", "c")].Object()
	return [2]int64{
		c.Slots[ip.FieldSlot(counterCl, "counter", "last")].Int(),
		c.Slots[ip.FieldSlot(counterCl, "counter", "total")].Int(),
	}
}

// counterState reads (adds, prods) for every counter.
func counterState(t *testing.T, prog *types.Program, ip *interp.Interp, counters int) []int64 {
	t.Helper()
	d := ip.Globals["D"]
	driverCl := prog.Classes["driver"]
	counterCl := prog.Classes["counter"]
	cs := d.Slots[ip.FieldSlot(driverCl, "driver", "cs")].Array()
	var out []int64
	for i := 0; i < counters; i++ {
		c := cs.Elems[i].Object()
		out = append(out,
			c.Slots[ip.FieldSlot(counterCl, "counter", "adds")].Int(),
			c.Slots[ip.FieldSlot(counterCl, "counter", "prods")].Int(),
		)
	}
	return out
}
