package rt_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/rt"
)

// genCommutingProgram generates a random program whose parallel work
// consists only of commuting additive/multiplicative updates on a pool
// of counter objects, driven by a parallel loop. Serial and parallel
// executions must agree exactly (integer state).
func genCommutingProgram(r *rand.Rand, counters, updates int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `
const int NC = %d;
const int NU = %d;

class counter {
public:
  int adds;
  int prods;
  void bump(int k);
};

void counter::bump(int k) {
  adds = adds + k;
  prods = prods * 2 + 0 * k;
}

class driver {
public:
  counter *cs[NC];
  int targets[NU];
  int amounts[NU];
  void setup();
  void apply(int u);
  void runAll();
};

driver D;

void driver::setup() {
  int i;
  for (i = 0; i < NC; i++) {
    cs[i] = new counter;
    cs[i]->adds = 0;
    cs[i]->prods = 1;
  }
`, counters, updates)
	for u := 0; u < updates; u++ {
		fmt.Fprintf(&sb, "  targets[%d] = %d;\n  amounts[%d] = %d;\n",
			u, r.Intn(counters), u, 1+r.Intn(9))
	}
	sb.WriteString(`}

void driver::apply(int u) {
  counter *c;
  c = cs[targets[u]];
  c->bump(amounts[u]);
}

void driver::runAll() {
  int u;
  for (u = 0; u < NU; u++)
    this->apply(u);
}

void main() {
  D.setup();
  D.runAll();
}
`)
	return sb.String()
}

// TestRandomCommutingPrograms: the analysis marks the generated update
// loops parallel, and parallel execution reproduces the serial integer
// state exactly at several worker counts.
func TestRandomCommutingPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 10; trial++ {
		counters := 2 + r.Intn(6)
		updates := 8 + r.Intn(40)
		source := genCommutingProgram(r, counters, updates)

		prog, plan := build(t, source)
		runAll := prog.MethodByFullName("driver::runAll")
		var parallelLoop bool
		for _, lp := range plan.Loops {
			if lp.Method == runAll && lp.Parallel {
				parallelLoop = true
			}
		}
		if !parallelLoop {
			t.Fatalf("trial %d: update loop not parallelized", trial)
		}

		ipSerial := interp.New(prog, nil)
		if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		want := counterState(t, prog, ipSerial, counters)

		// Differential property: both schedulers (the central queue and
		// the work-stealing deques) must reproduce the serial integer
		// state exactly — the scheduler may only change the order of
		// commuting updates, never the result.
		for _, sched := range []struct {
			name string
			mode rt.SchedMode
		}{{"central", rt.SchedCentral}, {"stealing", rt.SchedStealing}} {
			for _, workers := range []int{1, 4} {
				ip := interp.New(prog, nil)
				r := rt.New(ip, plan, workers)
				r.Sched = sched.mode
				if err := r.Run(); err != nil {
					t.Fatalf("trial %d %s parallel: %v", trial, sched.name, err)
				}
				got := counterState(t, prog, ip, counters)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d %s workers %d: counter %d = %v, want %v (commuting updates must agree)",
							trial, sched.name, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// counterState reads (adds, prods) for every counter.
func counterState(t *testing.T, prog *types.Program, ip *interp.Interp, counters int) []int64 {
	t.Helper()
	d := ip.Globals["D"]
	driverCl := prog.Classes["driver"]
	counterCl := prog.Classes["counter"]
	cs := d.Slots[ip.FieldSlot(driverCl, "driver", "cs")].(*interp.Array)
	var out []int64
	for i := 0; i < counters; i++ {
		c := cs.Elems[i].(*interp.Object)
		out = append(out,
			c.Slots[ip.FieldSlot(counterCl, "counter", "adds")].(int64),
			c.Slots[ip.FieldSlot(counterCl, "counter", "prods")].(int64),
		)
	}
	return out
}
