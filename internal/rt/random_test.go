package rt_test

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/rt"
)

// genCommutingProgram generates a random program whose parallel work
// consists only of commuting additive/multiplicative updates on a pool
// of counter objects, driven by a parallel loop. Serial and parallel
// executions must agree exactly (integer state).
func genCommutingProgram(r *rand.Rand, counters, updates int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `
const int NC = %d;
const int NU = %d;

class counter {
public:
  int adds;
  int prods;
  void bump(int k);
};

void counter::bump(int k) {
  adds = adds + k;
  prods = prods * 2 + 0 * k;
}

class driver {
public:
  counter *cs[NC];
  int targets[NU];
  int amounts[NU];
  void setup();
  void apply(int u);
  void runAll();
};

driver D;

void driver::setup() {
  int i;
  for (i = 0; i < NC; i++) {
    cs[i] = new counter;
    cs[i]->adds = 0;
    cs[i]->prods = 1;
  }
`, counters, updates)
	for u := 0; u < updates; u++ {
		fmt.Fprintf(&sb, "  targets[%d] = %d;\n  amounts[%d] = %d;\n",
			u, r.Intn(counters), u, 1+r.Intn(9))
	}
	sb.WriteString(`}

void driver::apply(int u) {
  counter *c;
  c = cs[targets[u]];
  c->bump(amounts[u]);
}

void driver::runAll() {
  int u;
  for (u = 0; u < NU; u++)
    this->apply(u);
}

void main() {
  D.setup();
  D.runAll();
}
`)
	return sb.String()
}

// TestRandomCommutingPrograms: the analysis marks the generated update
// loops parallel, and parallel execution reproduces the serial integer
// state exactly at several worker counts.
func TestRandomCommutingPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 10; trial++ {
		counters := 2 + r.Intn(6)
		updates := 8 + r.Intn(40)
		source := genCommutingProgram(r, counters, updates)

		prog, plan := build(t, source)
		runAll := prog.MethodByFullName("driver::runAll")
		var parallelLoop bool
		for _, lp := range plan.Loops {
			if lp.Method == runAll && lp.Parallel {
				parallelLoop = true
			}
		}
		if !parallelLoop {
			t.Fatalf("trial %d: update loop not parallelized", trial)
		}

		engines := []struct {
			name string
			eng  interp.Engine
		}{{"walk", interp.EngineWalk}, {"compiled", interp.EngineCompiled}}

		// Differential property across execution engines: the closure
		// compiler must be observationally identical to the tree walker.
		// The walk engine's serial state is the reference for everything.
		ipSerial := interp.NewEngine(prog, nil, interp.EngineWalk)
		if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
			t.Fatalf("trial %d serial walk: %v", trial, err)
		}
		want := counterState(t, prog, ipSerial, counters)

		ipComp := interp.NewEngine(prog, nil, interp.EngineCompiled)
		if err := ipComp.Run(ipComp.NewCtx()); err != nil {
			t.Fatalf("trial %d serial compiled: %v", trial, err)
		}
		if got := counterState(t, prog, ipComp, counters); !slices.Equal(got, want) {
			t.Fatalf("trial %d: serial compiled state %v, want %v", trial, got, want)
		}

		// Differential property across schedulers and engines: the
		// scheduler may only change the order of commuting updates, never
		// the result; the engine may change nothing observable at all —
		// including the deterministic scheduler counters (regions, loops,
		// iterations, tasks, lock acquires).
		for _, sched := range []struct {
			name string
			mode rt.SchedMode
		}{{"central", rt.SchedCentral}, {"stealing", rt.SchedStealing}} {
			for _, workers := range []int{1, 4} {
				var refStats []int64
				for _, e := range engines {
					ip := interp.NewEngine(prog, nil, e.eng)
					r := rt.New(ip, plan, workers)
					r.Sched = sched.mode
					if err := r.Run(); err != nil {
						t.Fatalf("trial %d %s/%s parallel: %v", trial, sched.name, e.name, err)
					}
					got := counterState(t, prog, ip, counters)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("trial %d %s/%s workers %d: counter %d = %v, want %v (commuting updates must agree)",
								trial, sched.name, e.name, workers, i, got[i], want[i])
						}
					}
					st := []int64{r.Stats.Regions, r.Stats.ParallelLoops, r.Stats.Iterations,
						r.Stats.Tasks, r.Stats.LockAcquires}
					if refStats == nil {
						refStats = st
					} else if !slices.Equal(st, refStats) {
						t.Fatalf("trial %d %s workers %d: compiled stats %v, walk stats %v (engines must schedule identical work)",
							trial, sched.name, workers, st, refStats)
					}
				}
			}
		}
	}
}

// counterState reads (adds, prods) for every counter.
func counterState(t *testing.T, prog *types.Program, ip *interp.Interp, counters int) []int64 {
	t.Helper()
	d := ip.Globals["D"]
	driverCl := prog.Classes["driver"]
	counterCl := prog.Classes["counter"]
	cs := d.Slots[ip.FieldSlot(driverCl, "driver", "cs")].Array()
	var out []int64
	for i := 0; i < counters; i++ {
		c := cs.Elems[i].Object()
		out = append(out,
			c.Slots[ip.FieldSlot(counterCl, "counter", "adds")].Int(),
			c.Slots[ip.FieldSlot(counterCl, "counter", "prods")].Int(),
		)
	}
	return out
}
