package rt_test

// Fault-injection suite for the hardened runtime: injected panics at
// the spawn / chunk / lock boundaries surface as structured TaskError
// values (the process survives), deadlines and cancellation drain the
// pools promptly, and serial fallback re-produces the serial result
// after a mid-region fault. Run under -race.

import (
	"context"
	"errors"
	"testing"
	"time"

	"commute/internal/apps/src"
	"commute/internal/interp"
	"commute/internal/rt"
)

// loopApp exercises the GSS/mutex path: accumulate runs a parallel
// loop whose iterations call cell::add as mutex versions under
// per-object locks.
const loopApp = `
const int N = 64;

class cell {
public:
  int sum;
  void add(int v);
};

class grid {
public:
  cell *cells[N];
  int n;
  void init(int k);
  void accumulate();
};

grid G;

void cell::add(int v) {
  sum = sum + v;
}

void grid::init(int k) {
  int i;
  n = k;
  for (i = 0; i < k; i += 1) {
    cells[i] = new cell;
    cells[i]->sum = 0;
  }
}

void grid::accumulate() {
  int i;
  for (i = 0; i < n; i += 1) {
    cells[i]->add(i);
  }
}

void main() {
  G.init(64);
  G.accumulate();
}
`

// infiniteSpawnApp spawns tasks forever: each work task spawns its
// successor unconditionally, so only cancellation can end the region.
const infiniteSpawnApp = `
class node {
public:
  int sum;
  void work(int v);
};

class driver {
public:
  node *root;
  void init();
  void launch();
};

driver D;

void node::work(int v) {
  sum = sum + 1;
  this->work(v + 1);
}

void driver::init() {
  root = new node;
}

void driver::launch() {
  root->work(0);
}

void main() {
  D.init();
  D.launch();
}
`

// infiniteLoopApp never terminates inside main's statement loop.
const infiniteLoopApp = `
void main() {
  int x;
  x = 0;
  while (x < 1) {
    x = x * 1;
  }
}
`

func newRuntime(t *testing.T, source string, workers int) *rt.Runtime {
	t.Helper()
	prog, plan := build(t, source)
	return rt.New(interp.New(prog, nil), plan, workers)
}

// TestInjectedSpawnPanicSurfacesAsTaskError: a panic injected at task
// start is isolated into a TaskError carrying the method name and the
// injected fault; the process survives and the run returns an error.
func TestInjectedSpawnPanicSurfacesAsTaskError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		r := newRuntime(t, src.Graph, workers)
		r.Faults = &rt.FaultPlan{PanicOnSpawn: 1}
		err := r.Run()
		if err == nil {
			t.Fatalf("workers=%d: injected spawn panic produced no error", workers)
		}
		var te *rt.TaskError
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: err = %T %v, want *rt.TaskError", workers, err, err)
		}
		if te.Origin != "task" {
			t.Errorf("workers=%d: origin = %q, want %q", workers, te.Origin, "task")
		}
		if te.Method != "graph::visit" {
			t.Errorf("workers=%d: method = %q, want graph::visit", workers, te.Method)
		}
		if te.Stack == "" {
			t.Errorf("workers=%d: TaskError without a captured stack", workers)
		}
		var inj rt.InjectedFault
		if !errors.As(err, &inj) || inj.Point != "spawn" {
			t.Errorf("workers=%d: injected fault not unwrapped: %v", workers, err)
		}
		if r.Stats.TaskPanics == 0 {
			t.Errorf("workers=%d: Stats.TaskPanics = 0", workers)
		}
	}
}

// TestInjectedChunkPanicSurfacesAsTaskError: a panic injected at a GSS
// chunk claim is isolated by the loop worker's recover.
func TestInjectedChunkPanicSurfacesAsTaskError(t *testing.T) {
	r := newRuntime(t, loopApp, 4)
	r.Faults = &rt.FaultPlan{PanicOnChunk: 1}
	err := r.Run()
	var te *rt.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *rt.TaskError", err, err)
	}
	if te.Origin != "loop" {
		t.Errorf("origin = %q, want %q", te.Origin, "loop")
	}
	var inj rt.InjectedFault
	if !errors.As(err, &inj) || inj.Point != "chunk" {
		t.Errorf("injected chunk fault not unwrapped: %v", err)
	}
}

// TestInjectedLockPanicSurfacesAsTaskError: a panic injected at a lock
// acquisition is isolated, and no lock is left stranded (the run
// drains rather than deadlocking).
func TestInjectedLockPanicSurfacesAsTaskError(t *testing.T) {
	r := newRuntime(t, loopApp, 4)
	r.Faults = &rt.FaultPlan{PanicOnLock: 3}
	err := r.Run()
	var te *rt.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *rt.TaskError", err, err)
	}
	var inj rt.InjectedFault
	if !errors.As(err, &inj) || inj.Point != "lock" {
		t.Errorf("injected lock fault not unwrapped: %v", err)
	}
}

// TestDeadlineCancelsInfiniteSerialProgram: a deadline cancels a
// deliberately infinite statement loop within 2× the deadline.
func TestDeadlineCancelsInfiniteSerialProgram(t *testing.T) {
	const deadline = 500 * time.Millisecond
	r := newRuntime(t, infiniteLoopApp, 4)
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	err := r.RunContext(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*deadline {
		t.Errorf("cancellation took %v, want ≤ %v", elapsed, 2*deadline)
	}
}

// TestDeadlineCancelsInfiniteSpawnProgram: a deadline also stops a
// program that spawns tasks forever — the pool drains skipped tasks
// after cancellation instead of hanging in wait.
func TestDeadlineCancelsInfiniteSpawnProgram(t *testing.T) {
	const deadline = 500 * time.Millisecond
	r := newRuntime(t, infiniteSpawnApp, 4)
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	err := r.RunContext(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("infinite spawn chain terminated without error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*deadline {
		t.Errorf("cancellation took %v, want ≤ %v", elapsed, 2*deadline)
	}
}

// TestExternalCancelStopsRun: caller-side cancellation propagates its
// cause through the runtime.
func TestExternalCancelStopsRun(t *testing.T) {
	cause := errors.New("operator abort")
	r := newRuntime(t, infiniteLoopApp, 2)
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel(cause)
	}()
	err := r.RunContext(ctx)
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}
}

// TestRunStepBudget: the runtime-wide step budget stops a runaway
// program deterministically, without a wall clock.
func TestRunStepBudget(t *testing.T) {
	r := newRuntime(t, infiniteLoopApp, 2)
	r.MaxSteps = 100000
	err := r.Run()
	if err == nil {
		t.Fatal("infinite loop ran to completion under a step budget")
	}
	var re *interp.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *interp.RuntimeError", err, err)
	}
}

// TestSerialFallbackRecoversInjectedPanic: with fallback enabled, an
// injected mid-region panic still yields the serially-computed result,
// and Stats records the degradation.
func TestSerialFallbackRecoversInjectedPanic(t *testing.T) {
	prog, plan := build(t, src.Graph)

	ipSerial := interp.New(prog, nil)
	if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	wantSums, wantMarked := graphSums(t, prog, ipSerial)

	for _, workers := range []int{1, 4} {
		ip := interp.New(prog, nil)
		r := rt.New(ip, plan, workers)
		r.SerialFallback = true
		r.Faults = &rt.FaultPlan{PanicOnSpawn: 1}
		if err := r.Run(); err != nil {
			t.Fatalf("workers=%d: fallback run failed: %v", workers, err)
		}
		if r.Stats.SerialFallbacks != 1 {
			t.Errorf("workers=%d: SerialFallbacks = %d, want 1", workers, r.Stats.SerialFallbacks)
		}
		if r.Stats.TaskPanics == 0 {
			t.Errorf("workers=%d: TaskPanics = 0, want ≥ 1", workers)
		}
		gotSums, gotMarked := graphSums(t, prog, ip)
		if gotMarked != wantMarked {
			t.Errorf("workers=%d: marked %d, want %d", workers, gotMarked, wantMarked)
		}
		for i := range wantSums {
			if gotSums[i] != wantSums[i] {
				t.Errorf("workers=%d: node %d sum = %d, want %d", workers, i, gotSums[i], wantSums[i])
			}
		}
	}
}

// TestSerialFallbackRecoversInjectedCancel: an injected cancellation
// below a still-live caller re-arms the run context and degrades to
// serial execution.
func TestSerialFallbackRecoversInjectedCancel(t *testing.T) {
	prog, plan := build(t, src.Graph)

	ipSerial := interp.New(prog, nil)
	if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	wantSums, wantMarked := graphSums(t, prog, ipSerial)

	ip := interp.New(prog, nil)
	r := rt.New(ip, plan, 4)
	r.SerialFallback = true
	r.Faults = &rt.FaultPlan{CancelOnSpawn: 1}
	if err := r.Run(); err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if r.Stats.SerialFallbacks != 1 {
		t.Errorf("SerialFallbacks = %d, want 1", r.Stats.SerialFallbacks)
	}
	gotSums, gotMarked := graphSums(t, prog, ip)
	if gotMarked != wantMarked {
		t.Errorf("marked %d, want %d", gotMarked, wantMarked)
	}
	for i := range wantSums {
		if gotSums[i] != wantSums[i] {
			t.Errorf("node %d sum = %d, want %d", i, gotSums[i], wantSums[i])
		}
	}
}

// TestNoFallbackForUserErrors: a user-program semantic error must not
// trigger serial re-execution — the serial version would fail
// identically.
func TestNoFallbackForUserErrors(t *testing.T) {
	const divApp = `
class cell {
public:
  int sum;
  int d;
  void add(int v);
};
class grid {
public:
  cell *cells[8];
  int n;
  void init(int k);
  void accumulate();
};
grid G;
void cell::add(int v) {
  sum = sum + v / d;
}
void grid::init(int k) {
  int i;
  n = k;
  for (i = 0; i < k; i += 1) {
    cells[i] = new cell;
  }
}
void grid::accumulate() {
  int i;
  for (i = 0; i < n; i += 1) {
    cells[i]->add(i);
  }
}
void main() {
  G.init(8);
  G.accumulate();
}
`
	r := newRuntime(t, divApp, 4)
	r.SerialFallback = true
	err := r.Run()
	if err == nil {
		t.Fatal("division by zero produced no error")
	}
	var re *interp.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *interp.RuntimeError", err, err)
	}
	if r.Stats.SerialFallbacks != 0 {
		t.Errorf("SerialFallbacks = %d, want 0 for a user error", r.Stats.SerialFallbacks)
	}
}

// TestNoFallbackWhenCallerTimedOut: a deadline the caller set is not a
// retryable fault — the runtime must not burn more time re-running
// serially after the caller walked away.
func TestNoFallbackWhenCallerTimedOut(t *testing.T) {
	r := newRuntime(t, infiniteSpawnApp, 2)
	r.SerialFallback = true
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	err := r.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if r.Stats.SerialFallbacks != 0 {
		t.Errorf("SerialFallbacks = %d, want 0 after caller timeout", r.Stats.SerialFallbacks)
	}
}

// TestDelayInjectionPreservesResults: injected scheduling skew at task
// start perturbs interleavings but never the final state.
func TestDelayInjectionPreservesResults(t *testing.T) {
	prog, plan := build(t, src.Graph)

	ipSerial := interp.New(prog, nil)
	if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	wantSums, _ := graphSums(t, prog, ipSerial)

	ip := interp.New(prog, nil)
	r := rt.New(ip, plan, 8)
	r.Faults = &rt.FaultPlan{Seed: 42, DelayOnSpawn: 200 * time.Microsecond, DelayRate: 0.5}
	if err := r.Run(); err != nil {
		t.Fatalf("delayed run failed: %v", err)
	}
	gotSums, _ := graphSums(t, prog, ip)
	for i := range wantSums {
		if gotSums[i] != wantSums[i] {
			t.Errorf("node %d sum = %d, want %d", i, gotSums[i], wantSums[i])
		}
	}
}

// TestPanicRateEventuallyFires: a probabilistic plan with rate 1 fires
// on the first task, proving the seeded path is exercised.
func TestPanicRateEventuallyFires(t *testing.T) {
	r := newRuntime(t, src.Graph, 4)
	r.Faults = &rt.FaultPlan{Seed: 7, PanicRate: 1.0}
	err := r.Run()
	var te *rt.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *rt.TaskError", err, err)
	}
}
