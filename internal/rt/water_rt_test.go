package rt_test

import (
	"testing"

	"commute/internal/apps/src"
	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/rt"
)

// waterState extracts molecule velocities and the global energy sums.
func waterState(prog *types.Program, ip *interp.Interp) ([]float64, float64, float64) {
	w := ip.Globals["Water"]
	waterCl := prog.Classes["water"]
	h2oCl := prog.Classes["h2o"]
	n := w.Slots[ip.FieldSlot(waterCl, "water", "nmol")].Int()
	mols := w.Slots[ip.FieldSlot(waterCl, "water", "mols")].Array()
	var vels []float64
	for i := int64(0); i < n; i++ {
		m := mols.Elems[i].Object()
		for _, f := range []string{"vx", "vy", "vz"} {
			vels = append(vels, m.Slots[ip.FieldSlot(h2oCl, "h2o", f)].Float())
		}
	}
	s := ip.Globals["Sums"]
	sumsCl := prog.Classes["sums"]
	pot := s.Slots[ip.FieldSlot(sumsCl, "sums", "pot")].Float()
	kin := s.Slots[ip.FieldSlot(sumsCl, "sums", "kin")].Float()
	return vels, pot, kin
}

// TestWaterParallelMatchesSerial: parallel Water preserves the
// simulation up to floating-point reassociation.
func TestWaterParallelMatchesSerial(t *testing.T) {
	prog, plan := build(t, src.Water)

	ipSerial := interp.New(prog, nil)
	if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	wantVel, wantPot, wantKin := waterState(prog, ipSerial)
	if wantKin == 0 {
		t.Fatal("kinetic energy is zero; the workload did nothing")
	}

	for _, workers := range []int{2, 8} {
		ip := interp.New(prog, nil)
		r := rt.New(ip, plan, workers)
		if err := r.Run(); err != nil {
			t.Fatalf("parallel run (w=%d): %v", workers, err)
		}
		gotVel, gotPot, gotKin := waterState(prog, ip)
		if relDiff(gotPot, wantPot) > 1e-9 {
			t.Errorf("w=%d: pot = %g, want %g", workers, gotPot, wantPot)
		}
		if relDiff(gotKin, wantKin) > 1e-9 {
			t.Errorf("w=%d: kin = %g, want %g", workers, gotKin, wantKin)
		}
		for i := range wantVel {
			if relDiff(gotVel[i], wantVel[i]) > 1e-9 {
				t.Errorf("w=%d: vel[%d] = %g, want %g", workers, i, gotVel[i], wantVel[i])
				break
			}
		}
		if r.Stats.ParallelLoops == 0 || r.Stats.LockAcquires == 0 {
			t.Errorf("w=%d: stats empty: %+v", workers, r.Stats)
		}
	}
}
