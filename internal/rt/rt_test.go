package rt_test

import (
	"math"
	"testing"

	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/core"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/rt"
)

func build(t testing.TB, source string) (*types.Program, *codegen.Plan) {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog, codegen.Build(core.New(prog))
}

// graphSums runs the graph program and returns each node's sum plus the
// mark count.
func graphSums(t *testing.T, prog *types.Program, ip *interp.Interp) ([]int64, int) {
	t.Helper()
	b := ip.Globals["Builder"]
	builderCl := prog.Classes["builder"]
	graphCl := prog.Classes["graph"]
	nodes := b.Slots[ip.FieldSlot(builderCl, "builder", "nodes")].Array()
	n := b.Slots[ip.FieldSlot(builderCl, "builder", "numnodes")].Int()
	sums := make([]int64, n)
	marked := 0
	for i := int64(0); i < n; i++ {
		node := nodes.Elems[i].Object()
		sums[i] = node.Slots[ip.FieldSlot(graphCl, "graph", "sum")].Int()
		if node.Slots[ip.FieldSlot(graphCl, "graph", "mark")].Bool() {
			marked++
		}
	}
	return sums, marked
}

// TestGraphParallelMatchesSerial: the §2 claim — parallel execution of
// the commuting traversal produces exactly the serial result (integer
// sums are order-insensitive).
func TestGraphParallelMatchesSerial(t *testing.T) {
	prog, plan := build(t, src.Graph)

	ipSerial := interp.New(prog, nil)
	if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	wantSums, wantMarked := graphSums(t, prog, ipSerial)

	for _, workers := range []int{1, 2, 4, 8} {
		ip := interp.New(prog, nil)
		r := rt.New(ip, plan, workers)
		if err := r.Run(); err != nil {
			t.Fatalf("parallel run (%d workers): %v", workers, err)
		}
		gotSums, gotMarked := graphSums(t, prog, ip)
		if gotMarked != wantMarked {
			t.Errorf("workers=%d: marked %d, want %d", workers, gotMarked, wantMarked)
		}
		for i := range wantSums {
			if gotSums[i] != wantSums[i] {
				t.Errorf("workers=%d: node %d sum = %d, want %d", workers, i, gotSums[i], wantSums[i])
			}
		}
		if workers > 1 && r.Stats.Tasks == 0 {
			t.Errorf("workers=%d: no tasks spawned", workers)
		}
		if r.Stats.Regions == 0 {
			t.Errorf("workers=%d: no parallel regions", workers)
		}
	}
}

// bhState extracts each body's phi and position for comparison.
func bhState(prog *types.Program, ip *interp.Interp) ([]float64, [][3]float64) {
	nb := ip.Globals["Nbody"]
	nbodyCl := prog.Classes["nbody"]
	bodyCl := prog.Classes["body"]
	nodeCl := prog.Classes["node"]
	n := nb.Slots[ip.FieldSlot(nbodyCl, "nbody", "numbodies")].Int()
	bodies := nb.Slots[ip.FieldSlot(nbodyCl, "nbody", "bodies")].Array()
	phis := make([]float64, n)
	poss := make([][3]float64, n)
	for i := int64(0); i < n; i++ {
		b := bodies.Elems[i].Object()
		phis[i] = b.Slots[ip.FieldSlot(bodyCl, "body", "phi")].Float()
		pos := b.Slots[ip.FieldSlot(bodyCl, "node", "pos")].Object()
		val := pos.Slots[ip.FieldSlot(prog.Classes["vector"], "vector", "val")].Array()
		for d := 0; d < 3; d++ {
			poss[i][d] = val.Elems[d].Float()
		}
	}
	_ = nodeCl
	return phis, poss
}

// TestBarnesHutParallelMatchesSerial: parallel execution preserves the
// simulation up to floating-point reassociation.
func TestBarnesHutParallelMatchesSerial(t *testing.T) {
	prog, plan := build(t, src.BarnesHut)

	ipSerial := interp.New(prog, nil)
	if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	wantPhi, wantPos := bhState(prog, ipSerial)

	ip := interp.New(prog, nil)
	r := rt.New(ip, plan, 4)
	if err := r.Run(); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	gotPhi, gotPos := bhState(prog, ip)

	if len(gotPhi) != len(wantPhi) {
		t.Fatalf("body count mismatch")
	}
	for i := range wantPhi {
		if relDiff(gotPhi[i], wantPhi[i]) > 1e-9 {
			t.Errorf("body %d phi = %g, want %g", i, gotPhi[i], wantPhi[i])
		}
		for d := 0; d < 3; d++ {
			if relDiff(gotPos[i][d], wantPos[i][d]) > 1e-9 {
				t.Errorf("body %d pos[%d] = %g, want %g", i, d, gotPos[i][d], wantPos[i][d])
			}
		}
	}

	// The force phase must actually run as parallel loops with GSS.
	if r.Stats.ParallelLoops == 0 || r.Stats.Chunks == 0 || r.Stats.Iterations == 0 {
		t.Errorf("loop stats empty: %+v", r.Stats)
	}
	if r.Stats.LockAcquires == 0 {
		t.Error("no lock acquisitions recorded")
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestWorkerScalingDeterminism: many worker counts, same marks.
func TestWorkerScalingDeterminism(t *testing.T) {
	prog, plan := build(t, src.Graph)
	var first []int64
	for _, w := range []int{1, 3, 7, 16} {
		ip := interp.New(prog, nil)
		if err := rt.New(ip, plan, w).Run(); err != nil {
			t.Fatalf("run w=%d: %v", w, err)
		}
		sums, _ := graphSums(t, prog, ip)
		if first == nil {
			first = sums
			continue
		}
		for i := range sums {
			if sums[i] != first[i] {
				t.Fatalf("w=%d: nondeterministic sum at node %d", w, i)
			}
		}
	}
}
