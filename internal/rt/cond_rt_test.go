package rt_test

// Differential tests for conditional commutativity: guarded regions
// must be observationally identical to the serial program whichever
// way the guard sends them — parallel under a true guard, the serial
// path under a false one, or speculation when a false guard meets
// SpecForce.

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/core"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/rt"
)

// buildCond compiles a program with the conditional-guard plan
// extension (plus speculation, matching commute.System.CondPlan).
func buildCond(t testing.TB, source string) (*types.Program, *codegen.Plan) {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog, codegen.BuildWithOptions(core.New(prog), codegen.Options{
		ConditionalGuards: true,
		SpeculateRejected: true,
	})
}

// condHashState reads every bucket's (count, touched) plus the table
// checksum — the complete integer state of the condhash program.
func condHashState(t *testing.T, prog *types.Program, ip *interp.Interp) []int64 {
	t.Helper()
	h := ip.Globals["H"]
	tableCl := prog.Classes["table"]
	bucketCl := prog.Classes["bucket"]
	slots := h.Slots[ip.FieldSlot(tableCl, "table", "slots")].Array()
	var out []int64
	for _, sv := range slots.Elems {
		b := sv.Object()
		out = append(out,
			b.Slots[ip.FieldSlot(bucketCl, "bucket", "count")].Int(),
			b.Slots[ip.FieldSlot(bucketCl, "bucket", "touched")].Int())
	}
	out = append(out, h.Slots[ip.FieldSlot(tableCl, "table", "checksum")].Int())
	return out
}

var condEngines = []interp.Engine{interp.EngineWalk, interp.EngineCompiled}

// TestConditionalGuardTrueBitIdentical: in accumulate mode the
// synthesized guard holds, every guarded region runs in parallel, and
// output and state are bit-identical to the serial run across engines,
// schedulers, and worker counts.
func TestConditionalGuardTrueBitIdentical(t *testing.T) {
	prog, plan := buildCond(t, src.CondHashBase+src.CondHashMain(0, 6))
	ingest := prog.MethodByFullName("table::ingest")
	mp := plan.Methods[ingest]
	if mp == nil || !mp.Conditional || mp.Guard == nil {
		t.Fatalf("table::ingest not planned conditional: %+v", mp)
	}

	for _, eng := range condEngines {
		want := serialOutput(t, prog, eng)
		ipRef := interp.NewEngine(prog, nil, eng)
		if err := ipRef.Run(ipRef.NewCtx()); err != nil {
			t.Fatal(err)
		}
		wantState := condHashState(t, prog, ipRef)

		for _, sched := range []rt.SchedMode{rt.SchedStealing, rt.SchedCentral} {
			for _, workers := range []int{1, 2, 4} {
				var buf bytes.Buffer
				ip := interp.NewEngine(prog, &buf, eng)
				rr := rt.New(ip, plan, workers)
				rr.Sched = sched
				if err := rr.Run(); err != nil {
					t.Fatalf("eng=%v sched=%v workers=%d: %v", eng, sched, workers, err)
				}
				if got := buf.String(); got != want {
					t.Errorf("eng=%v sched=%v workers=%d: output %q, want %q", eng, sched, workers, got, want)
				}
				if got := condHashState(t, prog, ip); !slices.Equal(got, wantState) {
					t.Errorf("eng=%v sched=%v workers=%d: state %v, want %v", eng, sched, workers, got, wantState)
				}
				if rr.Stats.GuardParallel == 0 {
					t.Errorf("eng=%v sched=%v workers=%d: true guard never took the parallel path", eng, sched, workers)
				}
				if rr.Stats.GuardSerial != 0 {
					t.Errorf("eng=%v sched=%v workers=%d: true guard took %d serial paths", eng, sched, workers, rr.Stats.GuardSerial)
				}
				if rr.Stats.Regions == 0 {
					t.Errorf("eng=%v sched=%v workers=%d: no parallel regions under a true guard", eng, sched, workers)
				}
			}
		}
	}
}

// TestConditionalGuardFalseSerialPath: in overwrite mode the guard
// fails at every region entry — each entry increments GuardSerial,
// creates no region (and no speculation), and the result is
// bit-identical to the serial run.
func TestConditionalGuardFalseSerialPath(t *testing.T) {
	const rounds = 6
	prog, plan := buildCond(t, src.CondHashBase+src.CondHashMain(3, rounds))

	for _, eng := range condEngines {
		want := serialOutput(t, prog, eng)
		ipRef := interp.NewEngine(prog, nil, eng)
		if err := ipRef.Run(ipRef.NewCtx()); err != nil {
			t.Fatal(err)
		}
		wantState := condHashState(t, prog, ipRef)

		for _, sched := range []rt.SchedMode{rt.SchedStealing, rt.SchedCentral} {
			for _, workers := range []int{1, 2, 4} {
				var buf bytes.Buffer
				ip := interp.NewEngine(prog, &buf, eng)
				rr := rt.New(ip, plan, workers)
				rr.Sched = sched
				if err := rr.Run(); err != nil {
					t.Fatalf("eng=%v sched=%v workers=%d: %v", eng, sched, workers, err)
				}
				if got := buf.String(); got != want {
					t.Errorf("eng=%v sched=%v workers=%d: output %q, want %q", eng, sched, workers, got, want)
				}
				if got := condHashState(t, prog, ip); !slices.Equal(got, wantState) {
					t.Errorf("eng=%v sched=%v workers=%d: state %v, want %v", eng, sched, workers, got, wantState)
				}
				if rr.Stats.GuardSerial != rounds {
					t.Errorf("eng=%v sched=%v workers=%d: GuardSerial = %d, want %d (one per region entry)",
						eng, sched, workers, rr.Stats.GuardSerial, rounds)
				}
				if rr.Stats.GuardParallel != 0 {
					t.Errorf("eng=%v sched=%v workers=%d: false guard ran %d parallel regions", eng, sched, workers, rr.Stats.GuardParallel)
				}
				if rr.Stats.Regions != 0 || rr.Stats.SpeculativeRegions != 0 {
					t.Errorf("eng=%v sched=%v workers=%d: serial path created regions (%+v)", eng, sched, workers, rr.Stats)
				}
			}
		}
	}
}

// TestConditionalGuardFalseSpeculatesUnderForce: a false guard hands a
// spec-eligible extent to the speculation machinery under SpecForce
// instead of the plain serial path — and whether the regions commit or
// abort, the state stays bit-identical to serial.
func TestConditionalGuardFalseSpeculatesUnderForce(t *testing.T) {
	prog, plan := buildCond(t, src.CondHashBase+src.CondHashMain(3, 6))

	for _, eng := range condEngines {
		ipRef := interp.NewEngine(prog, nil, eng)
		if err := ipRef.Run(ipRef.NewCtx()); err != nil {
			t.Fatal(err)
		}
		wantState := condHashState(t, prog, ipRef)
		want := serialOutput(t, prog, eng)

		for _, workers := range []int{1, 4} {
			var buf bytes.Buffer
			ip := interp.NewEngine(prog, &buf, eng)
			rr := rt.New(ip, plan, workers)
			rr.Speculate = rt.SpecForce
			if err := rr.Run(); err != nil {
				t.Fatalf("eng=%v workers=%d: %v", eng, workers, err)
			}
			if got := buf.String(); got != want {
				t.Errorf("eng=%v workers=%d: output %q, want %q", eng, workers, got, want)
			}
			if got := condHashState(t, prog, ip); !slices.Equal(got, wantState) {
				t.Errorf("eng=%v workers=%d: state %v, want %v", eng, workers, got, wantState)
			}
			if rr.Stats.GuardSerial == 0 {
				t.Errorf("eng=%v workers=%d: guard never evaluated false", eng, workers)
			}
			if rr.Stats.SpeculativeRegions == 0 {
				t.Errorf("eng=%v workers=%d: false guard under SpecForce never speculated", eng, workers)
			}
			if rr.Stats.SpeculationCommits+rr.Stats.SpeculationAborts != rr.Stats.SpeculativeRegions {
				t.Errorf("eng=%v workers=%d: speculation stats don't balance (%+v)", eng, workers, rr.Stats)
			}
		}
	}
}

// genConditionalProgram is genCommutingProgram with the additive update
// made conditional on a mode field frozen in setup — the same shape as
// the condhash app, but over random target/amount patterns. mode 0
// keeps the update commuting (guard true); any other mode makes it an
// order-dependent overwrite (guard false, serial path).
func genConditionalProgram(r *rand.Rand, counters, updates, mode int) string {
	s := genCommutingProgram(r, counters, updates)
	s = strings.Replace(s, "class driver {\npublic:\n", "class driver {\npublic:\n  int mode;\n", 1)
	s = strings.Replace(s, "void driver::setup() {\n  int i;\n",
		fmt.Sprintf("void driver::setup() {\n  int i;\n  mode = %d;\n", mode), 1)
	s = strings.Replace(s, "adds = adds + k;",
		"if (D.mode == 0) {\n    adds = adds + k;\n  } else {\n    adds = k;\n  }", 1)
	return s
}

// TestRandomConditionalPrograms: random conditional programs agree
// bit-exactly with their serial runs on both engines and several
// worker counts, with the guard outcome matching the generated mode.
func TestRandomConditionalPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(91011))
	for trial := 0; trial < 6; trial++ {
		counters := 2 + r.Intn(6)
		updates := 8 + r.Intn(40)
		mode := trial % 2
		source := genConditionalProgram(r, counters, updates, mode)
		prog, plan := buildCond(t, source)

		runAll := prog.MethodByFullName("driver::runAll")
		if mp := plan.Methods[runAll]; mp == nil || !mp.Conditional {
			t.Fatalf("trial %d: conditional update loop not planned conditional (%+v)", trial, mp)
		}

		ipSerial := interp.NewEngine(prog, nil, interp.EngineWalk)
		if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		want := counterState(t, prog, ipSerial, counters)

		for _, eng := range condEngines {
			for _, workers := range []int{1, 2, 4} {
				ip := interp.NewEngine(prog, nil, eng)
				rr := rt.New(ip, plan, workers)
				if err := rr.Run(); err != nil {
					t.Fatalf("trial %d eng=%v workers=%d: %v", trial, eng, workers, err)
				}
				if got := counterState(t, prog, ip, counters); !slices.Equal(got, want) {
					t.Fatalf("trial %d eng=%v workers=%d mode=%d: state %v, want serial %v",
						trial, eng, workers, mode, got, want)
				}
				if mode == 0 {
					if rr.Stats.GuardParallel == 0 || rr.Stats.GuardSerial != 0 {
						t.Fatalf("trial %d eng=%v workers=%d: mode 0 guard outcome wrong (%+v)", trial, eng, workers, rr.Stats)
					}
				} else {
					if rr.Stats.GuardSerial == 0 || rr.Stats.GuardParallel != 0 || rr.Stats.Regions != 0 {
						t.Fatalf("trial %d eng=%v workers=%d: mode %d guard outcome wrong (%+v)", trial, eng, workers, mode, rr.Stats)
					}
				}
			}
		}
	}
}
