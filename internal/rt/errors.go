package rt

import (
	"fmt"
	"runtime/debug"
)

// TaskError is a Go-level panic captured inside a parallel region:
// in a spawned task, a GSS loop worker, or the region's root
// activation. Panic isolation converts what would kill the process
// into a value on the runtime's first-error-wins path, so the caller
// of Run sees a structured error and the process survives.
type TaskError struct {
	// Origin names the execution structure that panicked: "task"
	// (pool worker running a spawned operation), "loop" (guided
	// self-scheduling worker), or "region" (the root activation of a
	// parallel region, which runs on the caller's goroutine).
	Origin string
	// Method is the full name of the method the failed structure was
	// executing, when known.
	Method string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *TaskError) Error() string {
	if e.Method != "" {
		return fmt.Sprintf("panic in parallel %s running %s: %v", e.Origin, e.Method, e.Value)
	}
	return fmt.Sprintf("panic in parallel %s: %v", e.Origin, e.Value)
}

// Unwrap exposes a panic value that was itself an error (notably an
// InjectedFault) to errors.Is / errors.As.
func (e *TaskError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// newTaskError captures the current stack; call it from inside the
// deferred recover.
func newTaskError(origin, method string, value any) *TaskError {
	return &TaskError{Origin: origin, Method: method, Value: value, Stack: string(debug.Stack())}
}
