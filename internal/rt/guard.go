package rt

import (
	"fmt"
	"sync/atomic"

	"commute/internal/codegen"
	"commute/internal/cond"
	"commute/internal/frontend/types"
	"commute/internal/interp"
)

// This file implements the runtime side of conditional commutativity:
// a region whose plan entry carries a synthesized guard predicate
// (codegen.MethodPlan.Conditional) evaluates the guard against the
// live heap at region entry — true runs the parallel region exactly
// like a proven extent, false takes the original serial path. The
// guard reads only extent-constant fields of global objects (the
// cond.Guardable fragment), so evaluating it before the region opens
// observes the same values every operation in the region would.

// compileGuard lowers a plan guard to a closure over the interpreter's
// global object slots. Compilation is infallible in practice: the
// planner only marks an extent Conditional after resolving every field
// reference against the program (codegen.ResolveGuardRef), and the
// interpreter allocates a global object per program global — but a
// mismatch still returns an error rather than panicking, and the
// caller degrades to the serial path.
func (rt *Runtime) compileGuard(mp *codegen.MethodPlan) (func() bool, error) {
	return cond.Compile(mp.Guard, func(ref cond.FieldRef) (cond.Leaf, error) {
		obj := rt.IP.Globals[ref.Global]
		if obj == nil {
			return cond.Leaf{}, fmt.Errorf("guard references unknown global %q", ref.Global)
		}
		_, field, ok := codegen.ResolveGuardRef(rt.IP.Prog, ref)
		if !ok {
			return cond.Leaf{}, fmt.Errorf("guard reference %s.%s does not resolve", ref.Class, ref.Field)
		}
		slot := rt.IP.FieldSlot(obj.Class, ref.Class, ref.Field)
		var kind cond.Kind
		switch field.Type {
		case types.Basic(types.Int):
			kind = cond.KInt
		case types.Basic(types.Double):
			kind = cond.KFloat
		case types.Basic(types.Bool):
			kind = cond.KBool
		default:
			return cond.Leaf{}, fmt.Errorf("guard field %s.%s has non-scalar type %s", ref.Class, ref.Field, field.Type)
		}
		return cond.Leaf{
			Kind: kind,
			Get: func() cond.Value {
				v := obj.Slots[slot]
				switch kind {
				case cond.KInt:
					return cond.IntVal(v.Int())
				case cond.KFloat:
					return cond.FloatVal(v.Float())
				default:
					return cond.BoolVal(v.Bool())
				}
			},
		}, nil
	})
}

// guardHolds evaluates mp's guard, compiling it on first use (the
// compiled closure is cached per plan entry for the runtime's
// lifetime). A guard that fails to compile — impossible for plans the
// planner built, but conceivable for a hand-assembled plan — reports
// false: the serial path is always correct.
func (rt *Runtime) guardHolds(mp *codegen.MethodPlan) bool {
	if g, ok := rt.guards.Load(mp); ok {
		return g.(func() bool)()
	}
	g, err := rt.compileGuard(mp)
	if err != nil {
		g = func() bool { return false }
	}
	actual, _ := rt.guards.LoadOrStore(mp, g)
	return actual.(func() bool)()
}

// dispatchConditional applies the guard at region entry. Guard-true
// regions run the proven-style parallel lowering; guard-false regions
// take the serial path, except that a speculation-eligible extent may
// still run speculatively when the policy forces it (SpecForce) — the
// journals then provide the safety the guard could not prove.
func (rt *Runtime) dispatchConditional(ctx *interp.Ctx, mp *codegen.MethodPlan, site *types.CallSite, recv *interp.Object, args []interp.Value) (interp.Value, error) {
	if rt.guardHolds(mp) {
		atomic.AddInt64(&rt.Stats.GuardParallel, 1)
		return interp.Value{}, rt.runRegion(site, recv, args)
	}
	atomic.AddInt64(&rt.Stats.GuardSerial, 1)
	if rt.Speculate == SpecForce && mp.SpecEligible {
		return interp.Value{}, rt.runSpeculativeRegion(site, recv, args)
	}
	return rt.IP.Call(ctx, site.Callee, recv, args)
}
