package rt

import (
	"sync/atomic"

	"commute/rtkit"
)

// The scheduler itself — bounded Chase-Lev deques, injector overflow,
// parking — lives in the public rtkit package so the native Go backend
// can reuse it from generated (non-internal) code. This file keeps the
// runtime-specific policy: mapping SchedMode, counting scheduler
// events into Stats, and wrapping every task body with the panic
// isolation / fault injection / cancellation checks the interpreter
// contract requires.

// SchedMode selects the task scheduler backing a parallel region.
type SchedMode int

const (
	// SchedStealing (the default) gives every worker a bounded private
	// deque: spawns push LIFO onto the spawning worker's deque, the
	// owner pops LIFO (depth-first, cache-warm), and idle workers steal
	// FIFO from victims' tails (breadth-first, large subtrees). Spawns
	// from outside the pool — the region root and GSS loop goroutines —
	// and deque overflow land in a shared injector queue.
	SchedStealing SchedMode = iota
	// SchedCentral is the original single mutex+cond task queue, kept
	// for A/B benchmarking and as a differential-testing oracle.
	SchedCentral
)

// worker aliases the scheduler participant; rt code passes it through
// callVersion so spawns from a pool worker hit its private deque.
type worker = rtkit.Worker

// newPool starts a region-scoped scheduler wired to this runtime.
func newPool(rt *Runtime) *rtkit.Pool {
	mode := rtkit.Stealing
	if rt.Sched == SchedCentral {
		mode = rtkit.Central
	}
	return rtkit.NewPool(rt.Workers, mode, rtkit.Hooks{
		Run:        rt.runTask,
		OnLocalPop: func() { atomic.AddInt64(&rt.Stats.LocalPops, 1) },
		OnSteal:    func() { atomic.AddInt64(&rt.Stats.Steals, 1) },
	})
}

// runTask executes one spawned task under panic isolation. Once the
// region has failed or the run is cancelled, remaining queued tasks
// are drained without executing (first error wins; their effects would
// be discarded anyway), which also lets Pool.Wait return promptly.
func (rt *Runtime) runTask(w *worker, label string, body func(*worker)) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(&rt.Stats.TaskPanics, 1)
			rt.setErr(newTaskError("task", label, r))
		}
	}()
	if rt.failed.Load() {
		return
	}
	rt.injectSpawn()
	// The full interrupt check (cancellation and step budget) runs at
	// every task start: short-lived tasks never execute enough
	// statements to reach the interpreter's poll stride, so without
	// this an unbounded spawn chain would outlive the step budget. It
	// runs after injection so an injected cancellation, like a real
	// one, skips the task body before it can apply any effects.
	if err := rt.interrupt(); err != nil {
		rt.setErr(err)
		return
	}
	body(w)
}
