package rt

import (
	"sync"
	"sync/atomic"
)

// SchedMode selects the task scheduler backing a parallel region.
type SchedMode int

const (
	// SchedStealing (the default) gives every worker a bounded private
	// deque: spawns push LIFO onto the spawning worker's deque, the
	// owner pops LIFO (depth-first, cache-warm), and idle workers steal
	// FIFO from victims' tails (breadth-first, large subtrees). Spawns
	// from outside the pool — the region root and GSS loop goroutines —
	// and deque overflow land in a shared injector queue.
	SchedStealing SchedMode = iota
	// SchedCentral is the original single mutex+cond task queue, kept
	// for A/B benchmarking and as a differential-testing oracle.
	SchedCentral
)

// task is one spawned operation with a label for diagnostics. Task
// structs are recycled through taskPool: a task is taken from a queue
// exactly once, so after run returns no queue slot can hand out a live
// reference and the struct may be reused.
type task struct {
	label string
	run   func(*worker)
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

// dequeCap bounds each worker's private deque (power of two). Overflow
// spills to the shared injector queue, so the bound costs at most a
// mutex hop under extreme fan-out — it never loses or delays tasks
// indefinitely.
const dequeCap = 256

// deque is a bounded Chase-Lev work-stealing deque. The owning worker
// pushes and pops at the bottom (LIFO); thieves steal from the top
// (FIFO) racing each other and the owner through a CAS on top. All slot
// accesses go through atomics, so the scheduler is clean under the race
// detector. The bounded-capacity check in push (b-t >= cap fails)
// guarantees a slot is never overwritten while any thief that could
// still win the CAS for it holds a stale pointer: reusing slot s
// requires top to have advanced past s, after which every stale CAS at
// s's old top value must fail.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    [dequeCap]atomic.Pointer[task]
}

// push appends t at the bottom. It reports false when the deque is full
// (caller spills to the injector).
func (d *deque) push(t *task) bool {
	b := d.bottom.Load()
	tp := d.top.Load()
	if b-tp >= dequeCap {
		return false
	}
	d.buf[b&(dequeCap-1)].Store(t)
	d.bottom.Store(b + 1)
	return true
}

// pop removes the most recently pushed task (owner only).
func (d *deque) pop() *task {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	tp := d.top.Load()
	if tp > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return nil
	}
	t := d.buf[b&(dequeCap-1)].Load()
	if tp == b {
		// Last element: race thieves via the CAS on top.
		if !d.top.CompareAndSwap(tp, tp+1) {
			t = nil // a thief won
		}
		d.bottom.Store(b + 1)
		return t
	}
	return t
}

// steal removes the oldest task (any goroutine).
func (d *deque) steal() *task {
	tp := d.top.Load()
	b := d.bottom.Load()
	if tp >= b {
		return nil
	}
	t := d.buf[tp&(dequeCap-1)].Load()
	if !d.top.CompareAndSwap(tp, tp+1) {
		return nil // lost the race; discard the stale read
	}
	return t
}

// worker is one scheduler participant. Pool workers own a deque;
// external handles (the region root, GSS loop goroutines) have dq ==
// nil and spawn through the injector, so single-owner deque discipline
// is never violated from a foreign goroutine.
type worker struct {
	p   *pool
	id  int // -1: external handle
	dq  *deque
	rnd uint64 // xorshift state for victim selection
}

// pool is a region-scoped scheduler. In stealing mode the mutex guards
// only the injector queue and parking; the task fast path (local push,
// pop, steal) is lock-free. In central mode every task flows through
// the injector, reproducing the original single-queue behavior.
type pool struct {
	rt       *Runtime
	mode     SchedMode
	workers  []*worker
	external *worker

	pending  atomic.Int64 // queued + running tasks
	sleepers atomic.Int64 // workers inside park()

	mu       sync.Mutex
	cond     *sync.Cond // workers park here; wait() parks here too
	injector []*task
	done     bool
}

func newPool(rt *Runtime) *pool {
	p := &pool{rt: rt, mode: rt.Sched}
	p.cond = sync.NewCond(&p.mu)
	p.external = &worker{p: p, id: -1}
	// The workers slice must be complete before any worker goroutine
	// starts: stealAny iterates it without synchronization.
	for i := 0; i < rt.Workers; i++ {
		w := &worker{p: p, id: i, rnd: uint64(i)*0x9e3779b97f4a7c15 + 1}
		if p.mode == SchedStealing {
			w.dq = &deque{}
		}
		p.workers = append(p.workers, w)
	}
	for _, w := range p.workers {
		go p.workerLoop(w)
	}
	return p
}

// pendingCount reports queued+running tasks (lazy task creation).
func (p *pool) pendingCount() int { return int(p.pending.Load()) }

// spawn enqueues a task from worker w (use p.external from outside the
// pool). The pending increment happens before the task is visible to
// any queue, and every spawn occurs inside a still-running task or
// before wait() is called, so pending cannot falsely reach zero.
func (p *pool) spawn(w *worker, label string, f func(*worker)) {
	t := taskPool.Get().(*task)
	t.label, t.run = label, f
	p.pending.Add(1)
	if w != nil && w.dq != nil && w.dq.push(t) {
		// Lost-wakeup-free handoff: the push above and the sleepers
		// read below are both sequentially consistent, and a parker
		// increments sleepers before re-checking the queues — so either
		// this load observes the sleeper (and we broadcast under the
		// mutex) or the sleeper's recheck observes the push.
		if p.sleepers.Load() > 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		return
	}
	p.mu.Lock()
	p.injector = append(p.injector, t)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// popInjector takes the newest injector task (LIFO, matching the
// original central queue's depth-first order).
func (p *pool) popInjector() *task {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.popInjectorLocked()
}

func (p *pool) popInjectorLocked() *task {
	n := len(p.injector)
	if n == 0 {
		return nil
	}
	t := p.injector[n-1]
	p.injector[n-1] = nil
	p.injector = p.injector[:n-1]
	return t
}

// stealAny tries each other worker's deque once, starting at a random
// victim.
func (p *pool) stealAny(w *worker) *task {
	n := len(p.workers)
	if n <= 1 {
		return nil
	}
	w.rnd ^= w.rnd << 13
	w.rnd ^= w.rnd >> 7
	w.rnd ^= w.rnd << 17
	start := int(w.rnd % uint64(n))
	for i := 0; i < n; i++ {
		v := p.workers[(start+i)%n]
		if v == w || v.dq == nil {
			continue
		}
		if t := v.dq.steal(); t != nil {
			return t
		}
	}
	return nil
}

// findTask is the worker's acquisition order: own deque (LIFO), then
// the injector, then stealing.
func (p *pool) findTask(w *worker) *task {
	if w.dq != nil {
		if t := w.dq.pop(); t != nil {
			atomic.AddInt64(&p.rt.Stats.LocalPops, 1)
			return t
		}
	}
	if t := p.popInjector(); t != nil {
		return t
	}
	if t := p.stealAny(w); t != nil {
		atomic.AddInt64(&p.rt.Stats.Steals, 1)
		return t
	}
	return nil
}

// park blocks until a task is available or the pool shuts down (nil).
// sleepers is raised before the re-check: see spawn for why this
// cannot miss a wakeup.
func (p *pool) park(w *worker) *task {
	p.sleepers.Add(1)
	defer p.sleepers.Add(-1)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if t := p.popInjectorLocked(); t != nil {
			return t
		}
		if t := p.stealAny(w); t != nil {
			atomic.AddInt64(&p.rt.Stats.Steals, 1)
			return t
		}
		if p.done {
			return nil
		}
		p.cond.Wait()
	}
}

func (p *pool) workerLoop(w *worker) {
	for {
		t := p.findTask(w)
		if t == nil {
			t = p.park(w)
			if t == nil {
				return // pool shut down
			}
		}
		p.runTask(w, t)
		t.label, t.run = "", nil
		taskPool.Put(t)
		if p.pending.Add(-1) == 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// runTask executes one spawned task under panic isolation. Once the
// region has failed or the run is cancelled, remaining queued tasks
// are drained without executing (first error wins; their effects would
// be discarded anyway), which also lets pool.wait return promptly.
func (p *pool) runTask(w *worker, t *task) {
	rt := p.rt
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(&rt.Stats.TaskPanics, 1)
			rt.setErr(newTaskError("task", t.label, r))
		}
	}()
	if rt.failed.Load() {
		return
	}
	rt.injectSpawn()
	// The full interrupt check (cancellation and step budget) runs at
	// every task start: short-lived tasks never execute enough
	// statements to reach the interpreter's poll stride, so without
	// this an unbounded spawn chain would outlive the step budget. It
	// runs after injection so an injected cancellation, like a real
	// one, skips the task body before it can apply any effects.
	if err := rt.interrupt(); err != nil {
		rt.setErr(err)
		return
	}
	t.run(w)
}

// wait blocks until all spawned tasks (including transitively spawned
// ones) complete, then shuts the pool down.
func (p *pool) wait() {
	p.mu.Lock()
	for p.pending.Load() > 0 {
		p.cond.Wait()
	}
	p.done = true
	p.mu.Unlock()
	p.cond.Broadcast()
}
