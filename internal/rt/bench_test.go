package rt_test

import (
	"math/rand"
	"testing"

	"commute/internal/apps/src"
	"commute/internal/interp"
	"commute/internal/rt"
)

// buildBench compiles for benchmarks (build is testing.TB-generic).
// The heavy lifting is shared with the correctness tests in rt_test.go.

// BenchmarkParallelLoopChunk measures a parallel-loop-dominated program
// end to end. allocs/op is the interesting number: chunk execution used
// to deep-copy the parent's variable map per chunk; slot frames copy
// one []Value per GSS worker instead.
func BenchmarkParallelLoopChunk(b *testing.B) {
	source := genCommutingProgram(rand.New(rand.NewSource(7)), 8, 200)
	prog, plan := build(b, source)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := interp.New(prog, nil)
		r := rt.New(ip, plan, 4)
		if err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpawnHeavy measures the task-heavy graph traversal under
// the scheduling strategies: eager central queue, lazy task creation,
// work-stealing deques, and lazy+stealing combined. On a single-core
// host the absolute numbers mostly show scheduling overhead; the
// eager-vs-lazy and central-vs-stealing deltas are the signal.
func BenchmarkSpawnHeavy(b *testing.B) {
	prog, plan := build(b, src.Graph)
	cases := []struct {
		name  string
		sched rt.SchedMode
		lazy  int
	}{
		{"EagerCentral", rt.SchedCentral, 0},
		{"LazyCentral", rt.SchedCentral, 8},
		{"EagerStealing", rt.SchedStealing, 0},
		{"LazyStealing", rt.SchedStealing, 8},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ip := interp.New(prog, nil)
				r := rt.New(ip, plan, 4)
				r.Sched = c.sched
				r.LazySpawnThreshold = c.lazy
				if err := r.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
