// Package rt is the run-time system the generated parallel code
// targets (§5 and §6.1 of Rinard & Diniz 1996): task creation
// (spawn/wait), per-object mutual exclusion locks, and guided
// self-scheduling for parallel loops — implemented with goroutine
// worker pools. It executes a checked program under a codegen.Plan.
//
// The runtime is hardened against mid-region failure: panics in
// spawned tasks, GSS loop workers, and region roots are isolated into
// TaskError values; a caller context's cancellation or deadline drains
// the pools promptly; and a failed region can optionally degrade to
// the original serial version (SerialFallback). A FaultPlan injects
// deterministic faults at the concurrency boundaries to test all of
// this.
package rt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"commute/internal/codegen"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
	"commute/internal/interp"
)

// Stats counts run-time events (the raw material for Tables 5, 6 and
// 11) plus the hardening layer's failure-handling events.
type Stats struct {
	ParallelLoops int64 // parallel loop executions
	Chunks        int64 // GSS chunks claimed
	Iterations    int64 // parallel loop iterations
	Tasks         int64 // spawned tasks
	LazyInlines   int64 // spawns absorbed inline by lazy task creation
	LockAcquires  int64 // object-section lock acquisitions
	Regions       int64 // serial→parallel region transitions
	Steals        int64 // tasks taken from another worker's deque
	LocalPops     int64 // tasks popped from the spawning worker's own deque

	TaskPanics      int64 // panics captured and isolated as TaskError
	SerialFallbacks int64 // regions re-executed serially after a fault

	SpeculativeRegions int64 // regions entered speculatively
	SpeculationCommits int64 // speculative regions validated and committed
	SpeculationAborts  int64 // speculative regions rolled back and rerun serially

	GuardParallel int64 // conditional regions whose guard held (ran parallel)
	GuardSerial   int64 // conditional regions whose guard failed (ran serial)
}

// Runtime executes a program in parallel according to a plan.
type Runtime struct {
	IP      *interp.Interp
	Plan    *codegen.Plan
	Workers int

	// Sched selects the task scheduler: per-worker stealing deques
	// (default) or the original central queue (A/B comparisons and
	// differential testing).
	Sched SchedMode

	// LazySpawnThreshold enables lazy task creation (Mohr, Kranz &
	// Halstead — the technique §2 of the paper points to for increasing
	// task granularity): when at least this many tasks are already
	// pending, a spawn executes inline on the spawning worker instead
	// of creating a new task. Zero disables laziness (every spawn
	// creates a task).
	LazySpawnThreshold int

	// SerialFallback re-executes a parallel region with the original
	// serial version when the region fails with an infrastructure
	// fault (a captured panic, or a cancellation raised below a
	// still-live caller) rather than a user-program error. The region
	// is re-run from its entry point: effects already applied by
	// completed tasks are not rolled back, so the fallback is exact
	// when the fault preceded any task effects (the case the fault
	// harness exercises) or when the region's operations are
	// idempotent. Recorded in Stats.SerialFallbacks.
	SerialFallback bool

	// MaxSteps bounds interpreter statements across the whole run
	// (0: unlimited), measured at interp.InterruptStride granularity —
	// a deterministic guard against runaway programs that complements
	// wall-clock deadlines.
	MaxSteps int64

	// MaxDepth bounds method-activation depth on any single goroutine
	// (0: interp.DefaultMaxDepth).
	MaxDepth int

	// Speculate selects the policy for extents the analysis rejected
	// but marked speculation-eligible (the plan must have been built
	// with codegen.Options.SpeculateRejected for any to exist):
	// SpecOff never speculates, SpecAuto speculates when the extent's
	// confidence score reaches SpecThreshold, SpecForce always does.
	Speculate SpecMode
	// SpecThreshold is the SpecAuto confidence cutoff
	// (0: DefaultSpecThreshold).
	SpecThreshold float64

	// Faults, when non-nil, injects deterministic panics, delays, and
	// cancellations at the runtime's concurrency boundaries (tests).
	Faults *FaultPlan

	Stats Stats

	parent context.Context
	runCtx context.Context
	cancel context.CancelCauseFunc
	steps  atomic.Int64
	guards sync.Map // *codegen.MethodPlan → func() bool (compiled region guards)

	errMu  sync.Mutex
	err    error
	failed atomic.Bool
}

// New returns a runtime with the given worker count.
func New(ip *interp.Interp, plan *codegen.Plan, workers int) *Runtime {
	if workers < 1 {
		workers = 1
	}
	return &Runtime{IP: ip, Plan: plan, Workers: workers}
}

// setErr records err on the first-error-wins path.
func (rt *Runtime) setErr(err error) {
	if err == nil {
		return
	}
	rt.errMu.Lock()
	if rt.err == nil {
		rt.err = err
	}
	rt.errMu.Unlock()
	rt.failed.Store(true)
}

func (rt *Runtime) firstErr() error {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	return rt.err
}

// clearErr resets the error path before a serial fallback re-run.
func (rt *Runtime) clearErr() {
	rt.errMu.Lock()
	rt.err = nil
	rt.errMu.Unlock()
	rt.failed.Store(false)
}

// cancelled reports the run's cancellation cause, if any.
func (rt *Runtime) cancelled() error {
	if rt.runCtx == nil {
		return nil
	}
	if rt.runCtx.Err() != nil {
		return context.Cause(rt.runCtx)
	}
	return nil
}

// interrupt is the hook the interpreter polls between statements: it
// surfaces cancellation and the global step budget into user-code
// loops, and aborts sibling work promptly once the region has failed.
func (rt *Runtime) interrupt() error {
	if rt.failed.Load() {
		if err := rt.firstErr(); err != nil {
			return err
		}
	}
	if err := rt.cancelled(); err != nil {
		return err
	}
	if rt.MaxSteps > 0 && rt.steps.Add(interp.InterruptStride) > rt.MaxSteps {
		return &interp.RuntimeError{Msg: fmt.Sprintf("run step budget of %d statements exhausted", rt.MaxSteps)}
	}
	return nil
}

// guardedCtx returns an execution context wired to the runtime's
// interrupt hook and depth guard, seeded at the given activation
// depth.
func (rt *Runtime) guardedCtx(depth int) *interp.Ctx {
	ctx := rt.IP.NewCtx()
	ctx.Interrupt = rt.interrupt
	ctx.MaxDepth = rt.MaxDepth
	ctx.Depth = depth
	return ctx
}

// Run executes main with no caller context (no deadline).
func (rt *Runtime) Run() error { return rt.RunContext(context.Background()) }

// RunContext executes main under parent: serial code runs inline;
// calls to parallel methods open parallel regions. Cancellation or
// deadline expiry on parent aborts the run promptly — it is observed
// at task-start and chunk-claim boundaries and, via the interpreter's
// interrupt hook, inside long-running statement loops.
func (rt *Runtime) RunContext(parent context.Context) error {
	if rt.IP.Prog.Main == nil {
		return &interp.RuntimeError{Msg: "program has no main function"}
	}
	rt.parent = parent
	rt.runCtx, rt.cancel = context.WithCancelCause(parent)
	defer func() { rt.cancel(nil) }()
	_, err := rt.IP.Call(rt.serialCtx(), rt.IP.Prog.Main, nil, nil)
	rt.setErr(err)
	return rt.firstErr()
}

// serialCtx executes serial code, opening a parallel region when a
// parallel method that actually generates concurrency is invoked.
func (rt *Runtime) serialCtx() *interp.Ctx {
	ctx := rt.guardedCtx(0)
	ctx.Invoke = func(site *types.CallSite, recv *interp.Object, args []interp.Value) (interp.Value, error) {
		mp := rt.Plan.Methods[site.Callee]
		if mp != nil && mp.Parallel && rt.Plan.GeneratesConcurrency(site.Callee) {
			if mp.Conditional {
				// Guarded extent: the guard decides parallel vs serial
				// at region entry, taking precedence over speculation.
				return rt.dispatchConditional(ctx, mp, site, recv, args)
			}
			if mp.Speculative {
				if rt.speculationAllowed(mp) {
					return interp.Value{}, rt.runSpeculativeRegion(site, recv, args)
				}
				// Policy declined: the extent is unproven, so run the
				// original serial version inline.
				return rt.IP.Call(ctx, site.Callee, recv, args)
			}
			return interp.Value{}, rt.runRegion(site, recv, args)
		}
		return rt.IP.Call(ctx, site.Callee, recv, args)
	}
	return ctx
}

// runRegion executes one serial→parallel region transition: the serial
// version of a parallel method invokes the parallel version and blocks
// until the region completes. All region error handling lives here —
// the root activation runs under panic isolation, the pool is always
// drained, and a failed region may degrade to the original serial
// version.
func (rt *Runtime) runRegion(site *types.CallSite, recv *interp.Object, args []interp.Value) error {
	atomic.AddInt64(&rt.Stats.Regions, 1)
	pool := newPool(rt)
	err := rt.protect("region", site.Callee.FullName(), func() error {
		return rt.callVersion(pool.External(), site.Callee, recv, args, versionParallel, 0)
	})
	pool.Wait()
	rt.setErr(err)
	ferr := rt.firstErr()
	if ferr == nil {
		return nil
	}
	if !rt.SerialFallback || !rt.fallbackEligible(ferr) {
		return ferr
	}
	// Graceful degradation: the parallel schedule failed but the
	// computation itself did not — re-execute the region with the
	// original serial version so the caller still gets an answer.
	atomic.AddInt64(&rt.Stats.SerialFallbacks, 1)
	rt.clearErr()
	if rt.runCtx.Err() != nil {
		// The fault cancelled the run below a still-live caller
		// (injected cancellation): re-arm the run context so the
		// serial re-run is not stillborn.
		rt.runCtx, rt.cancel = context.WithCancelCause(rt.parent)
	}
	serr := rt.callVersion(nil, site.Callee, recv, args, versionSerial, 0)
	rt.setErr(serr)
	return serr
}

// fallbackEligible decides whether a failed region may degrade to
// serial re-execution: infrastructure faults (captured panics, or a
// cancellation raised from inside the run while the caller's own
// context is still live) are retryable; user-program semantic errors
// are not — the serial version would fail identically — and neither is
// a failure the caller caused by cancelling or timing out.
func (rt *Runtime) fallbackEligible(err error) bool {
	if rt.parent != nil && rt.parent.Err() != nil {
		return false
	}
	var te *TaskError
	if errors.As(err, &te) {
		return true
	}
	return errors.Is(err, ErrInjectedCancel)
}

// protect runs f under panic isolation: a panic becomes a TaskError
// instead of unwinding past the runtime.
func (rt *Runtime) protect(origin, method string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(&rt.Stats.TaskPanics, 1)
			err = newTaskError(origin, method, r)
		}
	}()
	return f()
}

// version selects which generated variant of a method executes.
type version int

const (
	versionSerial version = iota
	versionParallel
	versionMutex
)

// callVersion executes one method activation under the chosen version,
// handling lock acquisition/release per the plan. w is the scheduler
// handle of the executing goroutine (a pool worker, or the pool's
// external handle for the region root and GSS loop goroutines): spawns
// from a pool worker push onto its own deque. depth seeds the
// activation-depth guard: inline continuations (lazy spawns, mutex
// versions) keep counting on the current goroutine stack, while
// spawned tasks restart at zero on a fresh stack.
func (rt *Runtime) callVersion(w *worker, m *types.Method, recv *interp.Object, args []interp.Value, ver version, depth int) error {
	if rt.failed.Load() {
		return nil
	}
	mp := rt.Plan.Methods[m]
	if mp == nil || !mp.Parallel || ver == versionSerial {
		// Plain serial execution (original version).
		_, err := rt.IP.Call(rt.guardedCtx(depth), m, recv, args)
		rt.setErr(err)
		return err
	}

	locked := mp.NeedsLock && recv != nil
	if locked {
		atomic.AddInt64(&rt.Stats.LockAcquires, 1)
		rt.injectLock()
		recv.Mutex.Lock()
	}
	// Without hoisting the lock covers only the object section: it is
	// released at the first spawned invocation. The deferred release
	// also runs when the activation panics, so panic isolation never
	// strands a held lock (which would deadlock the region).
	lockHeld := locked
	releaseBeforeSpawn := locked && !mp.HoldsLockThrough
	defer func() {
		if lockHeld {
			lockHeld = false
			recv.Mutex.Unlock()
		}
	}()

	ctx := rt.guardedCtx(depth)
	ctx.Invoke = func(site *types.CallSite, r2 *interp.Object, a2 []interp.Value) (interp.Value, error) {
		switch mp.Site[site.ID] {
		case codegen.ActionInline:
			// Auxiliary operation: execute serially inline.
			return rt.IP.Call(ctx, site.Callee, r2, a2)
		case codegen.ActionHoisted:
			// Nested-object operation under the hoisted lock: run the
			// original serial version inline.
			_, err := rt.IP.Call(ctx, site.Callee, r2, a2)
			return interp.Value{}, err
		case codegen.ActionSpawn:
			if releaseBeforeSpawn && lockHeld {
				lockHeld = false
				recv.Mutex.Unlock()
			}
			if ver == versionMutex {
				// Mutex versions execute invoked operations serially.
				return interp.Value{}, rt.callVersion(w, site.Callee, r2, a2, versionMutex, ctx.Depth)
			}
			callee := site.Callee
			if rt.LazySpawnThreshold > 0 && w.Pool().Pending() >= rt.LazySpawnThreshold {
				// Lazy task creation: enough parallelism is already
				// exposed; absorb the child into this task.
				atomic.AddInt64(&rt.Stats.LazyInlines, 1)
				return interp.Value{}, rt.callVersion(w, callee, r2, a2, versionParallel, ctx.Depth)
			}
			atomic.AddInt64(&rt.Stats.Tasks, 1)
			w.Pool().Spawn(w, callee.FullName(), func(cw *worker) {
				rt.setErr(rt.callVersion(cw, callee, r2, a2, versionParallel, 0))
			})
			return interp.Value{}, nil
		default:
			return rt.IP.Call(ctx, site.Callee, r2, a2)
		}
	}
	ctx.ForLoop = func(fs *ast.ForStmt, fr *interp.Frame, from, to, step int64) (bool, error) {
		lp := rt.Plan.Loops[fs]
		if lp == nil || !lp.Parallel || ver == versionMutex {
			return false, nil
		}
		if releaseBeforeSpawn && lockHeld {
			lockHeld = false
			recv.Mutex.Unlock()
		}
		return true, rt.parallelLoop(w, ctx, fs, fr, from, to, step)
	}

	_, err := rt.IP.Call(ctx, m, recv, args)
	rt.setErr(err)
	return err
}

// parallelLoop runs a counted loop with guided self-scheduling across
// the worker pool; iterations execute mutex versions (§5.2). Each GSS
// worker runs under panic isolation and observes cancellation and
// region failure at chunk-claim boundaries.
func (rt *Runtime) parallelLoop(w *worker, parent *interp.Ctx, fs *ast.ForStmt, fr *interp.Frame, from, to, step int64) error {
	atomic.AddInt64(&rt.Stats.ParallelLoops, 1)
	if interp.LoopVar(fs) == "" {
		return &interp.RuntimeError{Msg: "parallel loop without a loop variable"}
	}
	if step <= 0 {
		// A non-positive step would divide by zero in the chunk-size
		// computation below (or claim chunks forever).
		return &interp.RuntimeError{Msg: fmt.Sprintf("parallel loop at %s with non-positive step %d", fs.Pos(), step)}
	}
	total := (to - from + step - 1) / step
	if total <= 0 {
		return nil
	}
	label := fmt.Sprintf("%s (loop at %s)", fr.Method().FullName(), fs.Pos())
	var next atomic.Int64
	next.Store(from)
	var wg sync.WaitGroup
	workers := rt.Workers
	if int64(workers) > total {
		workers = int(total)
	}
	depth := parent.Depth
	// GSS workers are fresh goroutines, not pool workers: they schedule
	// through the pool's external handle (mutex versions never spawn,
	// but the handle keeps deque ownership single-threaded even if that
	// changes).
	var ext *worker
	if w != nil {
		ext = w.Pool().External()
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					atomic.AddInt64(&rt.Stats.TaskPanics, 1)
					rt.setErr(newTaskError("loop", label, r))
				}
			}()
			ctx := rt.mutexIterCtx(ext, depth)
			// One iteration frame per GSS worker: the parent frame's
			// slot array is copied once here, not once per chunk (and
			// not a full map rebuild per chunk as before) — iterations
			// only write their own locals, exactly like the serial
			// loop reusing one frame.
			sub := rt.IP.NewIterFrame(ctx, fr)
			defer rt.IP.ReleaseFrame(sub)
			for {
				if rt.failed.Load() {
					return
				}
				if err := rt.interrupt(); err != nil {
					rt.setErr(err)
					return
				}
				// Guided self-scheduling: claim ⌈remaining/P⌉ iterations.
				start := next.Load()
				if start >= to {
					return
				}
				remaining := (to - start + step - 1) / step
				chunk := remaining / int64(rt.Workers)
				if chunk < 1 {
					chunk = 1
				}
				end := start + chunk*step
				if !next.CompareAndSwap(start, end) {
					continue
				}
				if end > to {
					end = to
				}
				atomic.AddInt64(&rt.Stats.Chunks, 1)
				rt.injectChunk()
				for i := start; i < end; i += step {
					atomic.AddInt64(&rt.Stats.Iterations, 1)
					if err := rt.IP.RunLoopIteration(sub, fs, i); err != nil {
						rt.setErr(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return rt.firstErr()
}

// mutexIterCtx executes a parallel-loop iteration: direct invocations
// run mutex versions.
func (rt *Runtime) mutexIterCtx(w *worker, depth int) *interp.Ctx {
	ctx := rt.guardedCtx(depth)
	ctx.Invoke = func(site *types.CallSite, recv *interp.Object, args []interp.Value) (interp.Value, error) {
		mp := rt.Plan.Methods[site.Caller]
		if mp != nil && mp.Site[site.ID] == codegen.ActionInline {
			return rt.IP.Call(ctx, site.Callee, recv, args)
		}
		cp := rt.Plan.Methods[site.Callee]
		if cp != nil && cp.Parallel {
			return interp.Value{}, rt.callVersion(w, site.Callee, recv, args, versionMutex, ctx.Depth)
		}
		return rt.IP.Call(ctx, site.Callee, recv, args)
	}
	return ctx
}
