// Package rt is the run-time system the generated parallel code
// targets (§5 and §6.1 of Rinard & Diniz 1996): task creation
// (spawn/wait), per-object mutual exclusion locks, and guided
// self-scheduling for parallel loops — implemented with goroutine
// worker pools. It executes a checked program under a codegen.Plan.
package rt

import (
	"sync"
	"sync/atomic"

	"commute/internal/codegen"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
	"commute/internal/interp"
)

// Stats counts run-time events (the raw material for Tables 5, 6 and
// 11).
type Stats struct {
	ParallelLoops int64 // parallel loop executions
	Chunks        int64 // GSS chunks claimed
	Iterations    int64 // parallel loop iterations
	Tasks         int64 // spawned tasks
	LazyInlines   int64 // spawns absorbed inline by lazy task creation
	LockAcquires  int64 // object-section lock acquisitions
	Regions       int64 // serial→parallel region transitions
}

// Runtime executes a program in parallel according to a plan.
type Runtime struct {
	IP      *interp.Interp
	Plan    *codegen.Plan
	Workers int

	// LazySpawnThreshold enables lazy task creation (Mohr, Kranz &
	// Halstead — the technique §2 of the paper points to for increasing
	// task granularity): when at least this many tasks are already
	// pending, a spawn executes inline on the spawning worker instead
	// of creating a new task. Zero disables laziness (every spawn
	// creates a task).
	LazySpawnThreshold int

	Stats Stats

	errOnce sync.Once
	err     error
	failed  atomic.Bool
}

// New returns a runtime with the given worker count.
func New(ip *interp.Interp, plan *codegen.Plan, workers int) *Runtime {
	if workers < 1 {
		workers = 1
	}
	return &Runtime{IP: ip, Plan: plan, Workers: workers}
}

func (rt *Runtime) setErr(err error) {
	if err == nil {
		return
	}
	rt.errOnce.Do(func() { rt.err = err })
	rt.failed.Store(true)
}

// Run executes main: serial code runs inline; calls to parallel methods
// open parallel regions.
func (rt *Runtime) Run() error {
	if rt.IP.Prog.Main == nil {
		return &interp.RuntimeError{Msg: "program has no main function"}
	}
	ctx := rt.serialCtx()
	_, err := rt.IP.Call(ctx, rt.IP.Prog.Main, nil, nil)
	if err != nil {
		return err
	}
	return rt.err
}

// serialCtx executes serial code, opening a parallel region when a
// parallel method that actually generates concurrency is invoked.
func (rt *Runtime) serialCtx() *interp.Ctx {
	ctx := rt.IP.NewCtx()
	ctx.Invoke = func(site *types.CallSite, recv *interp.Object, args []interp.Value) (interp.Value, error) {
		mp := rt.Plan.Methods[site.Callee]
		if mp != nil && mp.Parallel && rt.Plan.GeneratesConcurrency(site.Callee) {
			// The serial version of a parallel method invokes the
			// parallel version and blocks until the region completes.
			atomic.AddInt64(&rt.Stats.Regions, 1)
			pool := newPool(rt)
			err := rt.callVersion(pool, site.Callee, recv, args, versionParallel)
			pool.wait()
			if err != nil {
				return nil, err
			}
			return nil, rt.regionErr(pool)
		}
		return rt.IP.Call(ctx, site.Callee, recv, args)
	}
	return ctx
}

func (rt *Runtime) regionErr(p *pool) error {
	if rt.failed.Load() {
		return rt.err
	}
	return nil
}

// version selects which generated variant of a method executes.
type version int

const (
	versionSerial version = iota
	versionParallel
	versionMutex
)

// callVersion executes one method activation under the chosen version,
// handling lock acquisition/release per the plan.
func (rt *Runtime) callVersion(p *pool, m *types.Method, recv *interp.Object, args []interp.Value, ver version) error {
	if rt.failed.Load() {
		return nil
	}
	mp := rt.Plan.Methods[m]
	if mp == nil || !mp.Parallel || ver == versionSerial {
		// Plain serial execution (original version).
		_, err := rt.IP.Call(rt.plainCtx(), m, recv, args)
		rt.setErr(err)
		return err
	}

	locked := mp.NeedsLock && recv != nil
	if locked {
		atomic.AddInt64(&rt.Stats.LockAcquires, 1)
		recv.Mutex.Lock()
	}
	// Without hoisting the lock covers only the object section: it is
	// released at the first spawned invocation.
	lockHeld := locked
	releaseBeforeSpawn := locked && !mp.HoldsLockThrough

	ctx := rt.IP.NewCtx()
	ctx.Invoke = func(site *types.CallSite, r2 *interp.Object, a2 []interp.Value) (interp.Value, error) {
		switch mp.Site[site.ID] {
		case codegen.ActionInline:
			// Auxiliary operation: execute serially inline.
			return rt.IP.Call(ctx, site.Callee, r2, a2)
		case codegen.ActionHoisted:
			// Nested-object operation under the hoisted lock: run the
			// original serial version inline.
			_, err := rt.IP.Call(ctx, site.Callee, r2, a2)
			return nil, err
		case codegen.ActionSpawn:
			if releaseBeforeSpawn && lockHeld {
				lockHeld = false
				recv.Mutex.Unlock()
			}
			if ver == versionMutex {
				// Mutex versions execute invoked operations serially.
				return nil, rt.callVersion(p, site.Callee, r2, a2, versionMutex)
			}
			callee := site.Callee
			if rt.LazySpawnThreshold > 0 && p.pendingCount() >= rt.LazySpawnThreshold {
				// Lazy task creation: enough parallelism is already
				// exposed; absorb the child into this task.
				atomic.AddInt64(&rt.Stats.LazyInlines, 1)
				return nil, rt.callVersion(p, callee, r2, a2, versionParallel)
			}
			atomic.AddInt64(&rt.Stats.Tasks, 1)
			p.spawn(func() {
				rt.setErr(rt.callVersion(p, callee, r2, a2, versionParallel))
			})
			return nil, nil
		default:
			return rt.IP.Call(ctx, site.Callee, r2, a2)
		}
	}
	ctx.ForLoop = func(fs *ast.ForStmt, fr *interp.Frame, from, to, step int64) (bool, error) {
		lp := rt.Plan.Loops[fs]
		if lp == nil || !lp.Parallel || ver == versionMutex {
			return false, nil
		}
		if releaseBeforeSpawn && lockHeld {
			lockHeld = false
			recv.Mutex.Unlock()
		}
		return true, rt.parallelLoop(p, ctx, fs, fr, from, to, step)
	}

	_, err := rt.IP.Call(ctx, m, recv, args)
	if lockHeld {
		recv.Mutex.Unlock()
	}
	rt.setErr(err)
	return err
}

// plainCtx executes everything serially with no plan interpretation.
func (rt *Runtime) plainCtx() *interp.Ctx { return rt.IP.NewCtx() }

// parallelLoop runs a counted loop with guided self-scheduling across
// the worker pool; iterations execute mutex versions (§5.2).
func (rt *Runtime) parallelLoop(p *pool, parent *interp.Ctx, fs *ast.ForStmt, fr *interp.Frame, from, to, step int64) error {
	atomic.AddInt64(&rt.Stats.ParallelLoops, 1)
	loopVar := interp.LoopVar(fs)
	if loopVar == "" {
		return &interp.RuntimeError{Msg: "parallel loop without a loop variable"}
	}
	total := (to - from + step - 1) / step
	if total <= 0 {
		return nil
	}
	var next atomic.Int64
	next.Store(from)
	var wg sync.WaitGroup
	workers := rt.Workers
	if int64(workers) > total {
		workers = int(total)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if rt.failed.Load() {
					return
				}
				// Guided self-scheduling: claim ⌈remaining/P⌉ iterations.
				start := next.Load()
				if start >= to {
					return
				}
				remaining := (to - start + step - 1) / step
				chunk := remaining / int64(rt.Workers)
				if chunk < 1 {
					chunk = 1
				}
				end := start + chunk*step
				if !next.CompareAndSwap(start, end) {
					continue
				}
				if end > to {
					end = to
				}
				atomic.AddInt64(&rt.Stats.Chunks, 1)
				ctx := rt.mutexIterCtx(p)
				for i := start; i < end; i += step {
					atomic.AddInt64(&rt.Stats.Iterations, 1)
					if err := rt.IP.RunLoopIteration(ctx, fr, fs, loopVar, i); err != nil {
						rt.setErr(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return rt.err
}

// mutexIterCtx executes a parallel-loop iteration: direct invocations
// run mutex versions.
func (rt *Runtime) mutexIterCtx(p *pool) *interp.Ctx {
	ctx := rt.IP.NewCtx()
	ctx.Invoke = func(site *types.CallSite, recv *interp.Object, args []interp.Value) (interp.Value, error) {
		mp := rt.Plan.Methods[site.Caller]
		if mp != nil && mp.Site[site.ID] == codegen.ActionInline {
			return rt.IP.Call(ctx, site.Callee, recv, args)
		}
		cp := rt.Plan.Methods[site.Callee]
		if cp != nil && cp.Parallel {
			return nil, rt.callVersion(p, site.Callee, recv, args, versionMutex)
		}
		return rt.IP.Call(ctx, site.Callee, recv, args)
	}
	return ctx
}

// ---------------------------------------------------------------------
// Task pool

// pool is a region-scoped worker pool with an unbounded task queue.
type pool struct {
	rt      *Runtime
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func()
	pending int  // queued + running tasks
	done    bool // region shutting down
}

func newPool(rt *Runtime) *pool {
	p := &pool{rt: rt}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < rt.Workers; w++ {
		go p.worker()
	}
	return p
}

// pendingCount reports the queued+running task count (used by lazy
// task creation).
func (p *pool) pendingCount() int {
	p.mu.Lock()
	n := p.pending
	p.mu.Unlock()
	return n
}

func (p *pool) spawn(f func()) {
	p.mu.Lock()
	p.pending++
	p.queue = append(p.queue, f)
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *pool) worker() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.done {
			p.cond.Wait()
		}
		if p.done && len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		f := p.queue[len(p.queue)-1]
		p.queue = p.queue[:len(p.queue)-1]
		p.mu.Unlock()
		f()
		p.mu.Lock()
		p.pending--
		if p.pending == 0 {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// wait blocks until all spawned tasks (including transitively spawned
// ones) complete, then shuts the pool down.
func (p *pool) wait() {
	p.mu.Lock()
	for p.pending > 0 {
		p.cond.Wait()
	}
	p.done = true
	p.mu.Unlock()
	p.cond.Broadcast()
}
