package rt_test

// Crash corpus: mini-C++ programs that hit every interpreter failure
// class — out-of-bounds indexing, division by zero, NULL dereference,
// unbounded recursion, infinite loops — embedded in three execution
// shapes (plain serial code, a spawned task chain, a parallel loop
// running mutex versions). Every combination must return an error:
// never a process crash, never a hang.

import (
	"context"
	"strings"
	"testing"
	"time"

	"commute/internal/interp"
	"commute/internal/rt"
)

// serialShape places the fault in a method invoked once from main.
func serialShape(fault string) string {
	return `
class box {
public:
  int sum;
  int d;
  int a[4];
  box *next;
  void f(int v);
};
box B;
void box::f(int v) {
  ` + fault + `
}
void main() {
  B.f(5);
}
`
}

// spawnShape places the fault in a recursive method whose calls the
// plan turns into spawned tasks (the §2 traversal pattern).
func spawnShape(fault string) string {
	return `
const int N = 16;
class node {
public:
  int sum;
  int d;
  int a[4];
  node *next;
  void work(int v);
};
class driver {
public:
  node *nodes[N];
  int n;
  void build(int k);
  void launch();
};
driver D;
void node::work(int v) {
  ` + fault + `
}
void driver::build(int k) {
  int i;
  n = k;
  for (i = 0; i < k; i += 1) {
    nodes[i] = new node;
  }
  for (i = 0; i < k - 1; i += 1) {
    nodes[i]->next = nodes[i + 1];
  }
}
void driver::launch() {
  nodes[0]->work(0);
}
void main() {
  D.build(16);
  D.launch();
}
`
}

// loopShape places the fault in a method that parallel-loop iterations
// execute as mutex versions under per-object locks.
func loopShape(fault string) string {
	return `
const int N = 32;
class cell {
public:
  int sum;
  int d;
  int a[4];
  cell *next;
  void add(int v);
};
class grid {
public:
  cell *cells[N];
  int n;
  void init(int k);
  void accumulate();
};
grid G;
void cell::add(int v) {
  ` + fault + `
}
void grid::init(int k) {
  int i;
  n = k;
  for (i = 0; i < k; i += 1) {
    cells[i] = new cell;
  }
}
void grid::accumulate() {
  int i;
  for (i = 0; i < n; i += 1) {
    cells[i]->add(i);
  }
}
void main() {
  G.init(32);
  G.accumulate();
}
`
}

// crashCorpus maps each failure class to its fault bodies per shape.
// The recursion and infinite-loop entries never terminate on their
// own; the harness bounds every run with a step budget and a wall-
// clock deadline, and any error counts as the correct outcome.
var crashCorpus = []struct {
	name                string
	serial, spawn, loop string
	wantSerial          string // substring expected in the serial-shape error
}{
	{
		name:       "out-of-bounds-index",
		serial:     `sum = sum + a[v];`,
		spawn:      `sum = sum + a[v]; if (next != NULL) { next->work(v + 1); }`,
		loop:       `sum = sum + a[v];`,
		wantSerial: "out of range",
	},
	{
		name:       "division-by-zero",
		serial:     `sum = sum + v / d;`,
		spawn:      `sum = sum + v / d; if (next != NULL) { next->work(v + 1); }`,
		loop:       `sum = sum + v / d;`,
		wantSerial: "division by zero",
	},
	{
		name:       "null-deref",
		serial:     `next->f(v);`,
		spawn:      `sum = sum + v; next->work(v + 1);`,
		loop:       `next->add(v);`,
		wantSerial: "NULL",
	},
	{
		name:       "deep-recursion",
		serial:     `sum = sum + 1; this->f(v);`,
		spawn:      `sum = sum + 1; this->work(v + 1);`,
		loop:       `sum = sum + 1; this->add(v);`,
		wantSerial: "recursion depth",
	},
	{
		name:       "infinite-loop",
		serial:     `int x; x = 0; while (x < 1) { sum = sum + 1; }`,
		spawn:      `int x; x = 0; while (x < 1) { sum = sum + 1; }`,
		loop:       `int x; x = 0; while (x < 1) { sum = sum + 1; }`,
		wantSerial: "",
	},
}

// corpusBudget bounds every corpus run: a deterministic statement
// budget (fast) backed by a wall-clock deadline (hang backstop).
const (
	corpusMaxSteps = 500000
	corpusDeadline = 20 * time.Second
)

func TestCrashCorpusSerialInterpreter(t *testing.T) {
	for _, tc := range crashCorpus {
		for _, shape := range []struct {
			kind   string
			source string
		}{
			{"serial", serialShape(tc.serial)},
			{"spawn", spawnShape(tc.spawn)},
			{"loop", loopShape(tc.loop)},
		} {
			prog, _ := build(t, shape.source)
			ip := interp.New(prog, nil)
			ctx := ip.NewCtx()
			ctx.MaxSteps = corpusMaxSteps
			err := ip.Run(ctx)
			if err == nil {
				t.Errorf("%s/%s: serial interpretation returned no error", tc.name, shape.kind)
				continue
			}
			if shape.kind == "serial" && tc.wantSerial != "" && !strings.Contains(err.Error(), tc.wantSerial) {
				t.Errorf("%s/serial: err = %v, want substring %q", tc.name, err, tc.wantSerial)
			}
		}
	}
}

func TestCrashCorpusParallelRuntime(t *testing.T) {
	for _, tc := range crashCorpus {
		for _, shape := range []struct {
			kind   string
			source string
		}{
			{"serial", serialShape(tc.serial)},
			{"spawn", spawnShape(tc.spawn)},
			{"loop", loopShape(tc.loop)},
		} {
			prog, plan := build(t, shape.source)
			for _, workers := range []int{1, 2, 8} {
				ip := interp.New(prog, nil)
				r := rt.New(ip, plan, workers)
				r.MaxSteps = corpusMaxSteps
				ctx, cancel := context.WithTimeout(context.Background(), corpusDeadline)
				start := time.Now()
				err := r.RunContext(ctx)
				cancel()
				if err == nil {
					t.Errorf("%s/%s workers=%d: parallel run returned no error", tc.name, shape.kind, workers)
				}
				if elapsed := time.Since(start); elapsed > corpusDeadline {
					t.Errorf("%s/%s workers=%d: run overshot the deadline (%v)", tc.name, shape.kind, workers, elapsed)
				}
			}
		}
	}
}

// TestCrashCorpusSpeculative: the whole corpus under forced
// speculation. A user-program fault inside a speculative region must
// abort the region (nothing committed) and re-run serially, where the
// same fault recurs as the authoritative error — never a process
// crash, never a hang, never a serial fallback. The validate-boundary
// injection additionally panics the first region after its tasks
// finish but before commit, exercising the abort→serial-rerun path
// even for corpus entries whose speculative tasks would succeed.
func TestCrashCorpusSpeculative(t *testing.T) {
	for _, tc := range crashCorpus {
		for _, shape := range []struct {
			kind   string
			source string
		}{
			{"serial", serialShape(tc.serial)},
			{"spawn", spawnShape(tc.spawn)},
			{"loop", loopShape(tc.loop)},
		} {
			prog, plan := buildSpec(t, shape.source)
			for _, faults := range []*rt.FaultPlan{nil, {PanicOnValidate: 1}} {
				ip := interp.New(prog, nil)
				r := rt.New(ip, plan, 4)
				r.Speculate = rt.SpecForce
				r.MaxSteps = corpusMaxSteps
				r.Faults = faults
				ctx, cancel := context.WithTimeout(context.Background(), corpusDeadline)
				start := time.Now()
				err := r.RunContext(ctx)
				cancel()
				if err == nil {
					t.Errorf("%s/%s faults=%v: speculative run returned no error", tc.name, shape.kind, faults != nil)
				}
				if elapsed := time.Since(start); elapsed > corpusDeadline {
					t.Errorf("%s/%s: speculative run overshot the deadline (%v)", tc.name, shape.kind, elapsed)
				}
				if r.Stats.SpeculationCommits != 0 {
					t.Errorf("%s/%s: %d commits from a failing program", tc.name, shape.kind, r.Stats.SpeculationCommits)
				}
				if r.Stats.SerialFallbacks != 0 {
					t.Errorf("%s/%s: SerialFallbacks = %d, want 0 (abort is not a fallback)", tc.name, shape.kind, r.Stats.SerialFallbacks)
				}
			}
		}
	}
}

// TestCrashCorpusWithFallback: serial fallback must not mask a user-
// program error — the corpus still errors with fallback enabled, and
// no fallback is recorded for semantic failures.
func TestCrashCorpusWithFallback(t *testing.T) {
	for _, tc := range crashCorpus {
		prog, plan := build(t, spawnShape(tc.spawn))
		ip := interp.New(prog, nil)
		r := rt.New(ip, plan, 4)
		r.SerialFallback = true
		r.MaxSteps = corpusMaxSteps
		ctx, cancel := context.WithTimeout(context.Background(), corpusDeadline)
		err := r.RunContext(ctx)
		cancel()
		if err == nil {
			t.Errorf("%s: fallback run returned no error", tc.name)
		}
		if r.Stats.SerialFallbacks != 0 {
			t.Errorf("%s: SerialFallbacks = %d, want 0 (user error is not retryable)", tc.name, r.Stats.SerialFallbacks)
		}
	}
}
