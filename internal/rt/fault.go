package rt

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// InjectedFault is the panic value a FaultPlan raises. It implements
// error so tests can assert errors.As(err, &InjectedFault{}) through
// the TaskError wrapper.
type InjectedFault struct {
	Point string // "spawn", "chunk", "lock", or "validate"
	N     int64  // 1-based count of the event at which the fault fired
}

func (f InjectedFault) Error() string {
	return fmt.Sprintf("injected fault at %s #%d", f.Point, f.N)
}

// ErrInjectedCancel is the cancellation cause recorded when a
// FaultPlan's CancelOnSpawn trigger fires.
var ErrInjectedCancel = errors.New("injected cancellation")

// FaultPlan deterministically injects faults at the runtime's three
// concurrency boundaries — task start (spawn), GSS chunk claim, and
// object-lock acquisition — to prove panic isolation, cancellation,
// and serial fallback under test. Triggers are 1-based event counts
// (deterministic regardless of scheduling: the Nth event fires the
// fault, whichever goroutine gets there); probabilistic triggers draw
// from a rand.Rand seeded with Seed, so a plan replays identically
// for a fixed seed and event interleaving.
type FaultPlan struct {
	Seed int64

	PanicOnSpawn int64   // panic when the Nth task starts (0 disables)
	PanicOnChunk int64   // panic when the Nth GSS chunk is claimed
	PanicOnLock  int64   // panic when the Nth object lock is acquired
	PanicRate    float64 // additional per-task-start panic probability

	// PanicOnValidate panics when the Nth speculative region reaches
	// its validate/commit boundary — after every task has finished but
	// before any buffered write reaches the heap, the worst moment for
	// the rollback machinery.
	PanicOnValidate int64

	DelayOnSpawn time.Duration // sleep at task start (scheduling skew)
	DelayRate    float64       // probability of the sleep (0: every task)

	CancelOnSpawn int64 // cancel the run when the Nth task starts

	spawns    atomic.Int64
	chunks    atomic.Int64
	locks     atomic.Int64
	validates atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// coin draws a seeded Bernoulli trial.
func (fp *FaultPlan) coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.rng == nil {
		fp.rng = rand.New(rand.NewSource(fp.Seed))
	}
	return fp.rng.Float64() < p
}

// atSpawn records a task start and reports what to inject: an optional
// delay, whether to cancel the run, and a non-zero event count if this
// start should panic.
func (fp *FaultPlan) atSpawn() (delay time.Duration, cancel bool, panicN int64) {
	n := fp.spawns.Add(1)
	if fp.DelayOnSpawn > 0 && (fp.DelayRate <= 0 || fp.coin(fp.DelayRate)) {
		delay = fp.DelayOnSpawn
	}
	cancel = fp.CancelOnSpawn > 0 && n == fp.CancelOnSpawn
	if (fp.PanicOnSpawn > 0 && n == fp.PanicOnSpawn) || fp.coin(fp.PanicRate) {
		panicN = n
	}
	return delay, cancel, panicN
}

// atChunk records a GSS chunk claim; non-zero means panic.
func (fp *FaultPlan) atChunk() int64 {
	n := fp.chunks.Add(1)
	if fp.PanicOnChunk > 0 && n == fp.PanicOnChunk {
		return n
	}
	return 0
}

// atLock records a lock acquisition; non-zero means panic.
func (fp *FaultPlan) atLock() int64 {
	n := fp.locks.Add(1)
	if fp.PanicOnLock > 0 && n == fp.PanicOnLock {
		return n
	}
	return 0
}

// atValidate records a speculation validate/commit boundary; non-zero
// means panic.
func (fp *FaultPlan) atValidate() int64 {
	n := fp.validates.Add(1)
	if fp.PanicOnValidate > 0 && n == fp.PanicOnValidate {
		return n
	}
	return 0
}

// injectSpawn fires the plan's task-start faults. Called inside the
// pool worker's recover scope (and the lazy-inline path), so an
// injected panic surfaces as a TaskError, exactly like a real one.
func (rt *Runtime) injectSpawn() {
	if rt.Faults == nil {
		return
	}
	delay, cancel, panicN := rt.Faults.atSpawn()
	if delay > 0 {
		time.Sleep(delay)
	}
	if cancel && rt.cancel != nil {
		rt.cancel(ErrInjectedCancel)
	}
	if panicN > 0 {
		panic(InjectedFault{Point: "spawn", N: panicN})
	}
}

// injectChunk fires the plan's chunk-claim faults inside the GSS
// worker's recover scope.
func (rt *Runtime) injectChunk() {
	if rt.Faults == nil {
		return
	}
	if n := rt.Faults.atChunk(); n > 0 {
		panic(InjectedFault{Point: "chunk", N: n})
	}
}

// injectLock fires the plan's lock-acquisition faults.
func (rt *Runtime) injectLock() {
	if rt.Faults == nil {
		return
	}
	if n := rt.Faults.atLock(); n > 0 {
		panic(InjectedFault{Point: "lock", N: n})
	}
}

// injectValidate fires the plan's speculation-boundary faults inside
// the region's recover scope: the panic aborts the region before
// commit, so the serial rerun must still produce the exact serial
// state.
func (rt *Runtime) injectValidate() {
	if rt.Faults == nil {
		return
	}
	if n := rt.Faults.atValidate(); n > 0 {
		panic(InjectedFault{Point: "validate", N: n})
	}
}
