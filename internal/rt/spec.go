package rt

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"commute/internal/analysis/effects"
	"commute/internal/codegen"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
	"commute/internal/interp"
)

// SpecMode is the speculation policy for statically-rejected extents.
type SpecMode int

// Speculation policies.
const (
	// SpecOff never speculates: rejected extents run their original
	// serial versions.
	SpecOff SpecMode = iota
	// SpecAuto speculates on extents whose confidence score (fraction
	// of method pairs the analysis proved) reaches the threshold.
	SpecAuto
	// SpecForce speculates on every eligible rejected extent.
	SpecForce
)

// DefaultSpecThreshold is the SpecAuto confidence cutoff when none is
// configured: at least half the extent's pairs must have been proven.
const DefaultSpecThreshold = 0.5

// ParseSpecMode maps a command-line speculation mode name to a SpecMode.
func ParseSpecMode(s string) (SpecMode, bool) {
	switch s {
	case "off", "":
		return SpecOff, true
	case "auto":
		return SpecAuto, true
	case "force":
		return SpecForce, true
	}
	return SpecOff, false
}

func (m SpecMode) String() string {
	switch m {
	case SpecAuto:
		return "auto"
	case SpecForce:
		return "force"
	}
	return "off"
}

// speculationAllowed applies the policy at region entry.
func (rt *Runtime) speculationAllowed(mp *codegen.MethodPlan) bool {
	if !mp.SpecEligible {
		return false
	}
	switch rt.Speculate {
	case SpecForce:
		return true
	case SpecAuto:
		th := rt.SpecThreshold
		if th <= 0 {
			th = DefaultSpecThreshold
		}
		return mp.Confidence >= th
	}
	return false
}

// loc identifies one monitored storage location: a field slot of an
// object (obj non-nil) or an element of an array (arr non-nil).
type loc struct {
	obj *interp.Object
	arr *interp.Array
	idx int
}

// specLog is one task's effect journal, implementing interp.Mon. Reads
// of locations the task has already written return the buffered value
// (read-your-own-writes); everything else reads the frozen pre-region
// heap and is logged. Writes never touch the heap — commit applies
// them after validation, and abort simply drops the log. A specLog is
// goroutine-local while its task runs; the validator reads all logs
// single-threaded after the join barrier.
//
// Buffered writes are heap-allocated cells updated in place, with the
// most recent write and read locations cached: the dominant speculative
// access pattern is a method updating one field over and over, and the
// cache turns that from two map operations per access into plain
// pointer work, so the journal no longer swamps what the fast engines
// gained. The zero loc matches no real location, so the empty caches
// never produce a false hit.
type specLog struct {
	id     int
	reads  map[loc]struct{}
	writes map[loc]*interp.Value

	lastW  loc
	lastWp *interp.Value
	lastR  loc
}

func (lg *specLog) store(l loc, v interp.Value) {
	if l == lg.lastW {
		*lg.lastWp = v
		return
	}
	if p, ok := lg.writes[l]; ok {
		*p = v
		lg.lastW, lg.lastWp = l, p
		return
	}
	p := new(interp.Value)
	*p = v
	lg.writes[l] = p
	lg.lastW, lg.lastWp = l, p
}

func (lg *specLog) logRead(l loc) {
	if l != lg.lastR {
		lg.reads[l] = struct{}{}
		lg.lastR = l
	}
}

func (lg *specLog) LoadField(o *interp.Object, slot int) interp.Value {
	l := loc{obj: o, idx: slot}
	if l == lg.lastW {
		return *lg.lastWp
	}
	if p, ok := lg.writes[l]; ok {
		lg.lastW, lg.lastWp = l, p
		return *p
	}
	lg.logRead(l)
	return o.Slots[slot]
}

func (lg *specLog) StoreField(o *interp.Object, slot int, v interp.Value) {
	lg.store(loc{obj: o, idx: slot}, v)
}

func (lg *specLog) LoadElem(a *interp.Array, idx int) interp.Value {
	l := loc{arr: a, idx: idx}
	if l == lg.lastW {
		return *lg.lastWp
	}
	if p, ok := lg.writes[l]; ok {
		lg.lastW, lg.lastWp = l, p
		return *p
	}
	lg.logRead(l)
	return a.Elems[idx]
}

func (lg *specLog) StoreElem(a *interp.Array, idx int, v interp.Value) {
	lg.store(loc{arr: a, idx: idx}, v)
}

// specRegion is the state of one speculative region: the per-task
// journals and the plan entry carrying the declared effects.
type specRegion struct {
	rt *Runtime
	mp *codegen.MethodPlan

	mu   sync.Mutex
	logs []*specLog
}

// newLog allocates a journal for one speculative task.
func (sr *specRegion) newLog() *specLog {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	lg := &specLog{
		id:     len(sr.logs),
		reads:  make(map[loc]struct{}),
		writes: make(map[loc]*interp.Value),
	}
	sr.logs = append(sr.logs, lg)
	return lg
}

// runSpeculativeRegion executes a statically-rejected extent
// optimistically: monitor every task's effects, validate at the join
// barrier, commit the buffered writes on success, and on any failure —
// conflict, undeclared access, user error, captured panic, injected
// fault — discard the buffers and re-run the original serial version.
// The rerun is exact because no buffered write has reached the heap.
// Only the caller's own cancellation or deadline is not retried: the
// caller gave up, so the region returns its error immediately.
func (rt *Runtime) runSpeculativeRegion(site *types.CallSite, recv *interp.Object, args []interp.Value) error {
	atomic.AddInt64(&rt.Stats.Regions, 1)
	atomic.AddInt64(&rt.Stats.SpeculativeRegions, 1)
	sr := &specRegion{rt: rt, mp: rt.Plan.Methods[site.Callee]}
	pool := newPool(rt)
	root := sr.newLog()
	err := rt.protect("region", site.Callee.FullName(), func() error {
		return rt.specCall(pool.External(), sr, root, site.Callee, recv, args, versionParallel, 0)
	})
	pool.Wait()
	rt.setErr(err)
	ferr := rt.firstErr()
	if ferr == nil {
		violation := ""
		verr := rt.protect("validate", site.Callee.FullName(), func() error {
			rt.injectValidate()
			violation = sr.validate()
			return nil
		})
		if verr == nil && violation == "" {
			// Single-threaded commit after the barrier: validation
			// proved the write sets disjoint, so application order
			// across logs cannot matter.
			sr.commit()
			atomic.AddInt64(&rt.Stats.SpeculationCommits, 1)
			return nil
		}
		rt.setErr(verr)
		ferr = rt.firstErr()
	}
	if rt.parent != nil && rt.parent.Err() != nil {
		// Never speculate past a caller timeout or cancellation.
		if ferr == nil {
			ferr = context.Cause(rt.parent)
		}
		return ferr
	}
	atomic.AddInt64(&rt.Stats.SpeculationAborts, 1)
	rt.clearErr()
	if rt.runCtx.Err() != nil {
		// An injected cancellation below a still-live caller: re-arm
		// the run context so the serial rerun is not stillborn.
		rt.runCtx, rt.cancel = context.WithCancelCause(rt.parent)
	}
	serr := rt.callVersion(nil, site.Callee, recv, args, versionSerial, 0)
	rt.setErr(serr)
	return serr
}

// specCall is the speculative mirror of callVersion: the same site
// dispatch (auxiliary inline, hoisted inline, extent spawned), but no
// locks — isolation comes from the journals — and every execution
// context carries the task's monitor. Spawned children journal into
// fresh logs; inline continuations (auxiliary, hoisted, lazy spawns,
// mutex-version recursion) share the current task's log.
func (rt *Runtime) specCall(w *worker, sr *specRegion, lg *specLog, m *types.Method, recv *interp.Object, args []interp.Value, ver version, depth int) error {
	if rt.failed.Load() {
		return nil
	}
	mp := rt.Plan.Methods[m]
	ctx := rt.guardedCtx(depth)
	ctx.Mon = lg
	if mp == nil || !mp.Parallel {
		_, err := rt.IP.Call(ctx, m, recv, args)
		rt.setErr(err)
		return err
	}
	ctx.Invoke = func(site *types.CallSite, r2 *interp.Object, a2 []interp.Value) (interp.Value, error) {
		switch mp.Site[site.ID] {
		case codegen.ActionInline:
			return rt.IP.Call(ctx, site.Callee, r2, a2)
		case codegen.ActionHoisted:
			_, err := rt.IP.Call(ctx, site.Callee, r2, a2)
			return interp.Value{}, err
		case codegen.ActionSpawn:
			if ver == versionMutex {
				return interp.Value{}, rt.specCall(w, sr, lg, site.Callee, r2, a2, versionMutex, ctx.Depth)
			}
			callee := site.Callee
			if rt.LazySpawnThreshold > 0 && w.Pool().Pending() >= rt.LazySpawnThreshold {
				atomic.AddInt64(&rt.Stats.LazyInlines, 1)
				return interp.Value{}, rt.specCall(w, sr, lg, callee, r2, a2, versionParallel, ctx.Depth)
			}
			atomic.AddInt64(&rt.Stats.Tasks, 1)
			clg := sr.newLog()
			w.Pool().Spawn(w, callee.FullName(), func(cw *worker) {
				rt.setErr(rt.specCall(cw, sr, clg, callee, r2, a2, versionParallel, 0))
			})
			return interp.Value{}, nil
		default:
			return rt.IP.Call(ctx, site.Callee, r2, a2)
		}
	}
	ctx.ForLoop = func(fs *ast.ForStmt, fr *interp.Frame, from, to, step int64) (bool, error) {
		lp := rt.Plan.Loops[fs]
		if lp == nil || !lp.Parallel || ver == versionMutex {
			return false, nil
		}
		return true, rt.specLoop(sr, ctx, fs, fr, from, to, step)
	}
	_, err := rt.IP.Call(ctx, m, recv, args)
	rt.setErr(err)
	return err
}

// specLoop is the speculative mirror of parallelLoop: the same guided
// self-scheduling, with one journal per GSS worker. A worker executes
// its iterations in increasing order (chunk claims are monotonic), so
// intra-worker sequencing matches the serial order and only cross-
// worker interference needs detection.
func (rt *Runtime) specLoop(sr *specRegion, parent *interp.Ctx, fs *ast.ForStmt, fr *interp.Frame, from, to, step int64) error {
	atomic.AddInt64(&rt.Stats.ParallelLoops, 1)
	if interp.LoopVar(fs) == "" {
		return &interp.RuntimeError{Msg: "parallel loop without a loop variable"}
	}
	if step <= 0 {
		return &interp.RuntimeError{Msg: fmt.Sprintf("parallel loop at %s with non-positive step %d", fs.Pos(), step)}
	}
	total := (to - from + step - 1) / step
	if total <= 0 {
		return nil
	}
	label := fmt.Sprintf("%s (loop at %s)", fr.Method().FullName(), fs.Pos())
	var next atomic.Int64
	next.Store(from)
	var wg sync.WaitGroup
	workers := rt.Workers
	if int64(workers) > total {
		workers = int(total)
	}
	depth := parent.Depth
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					atomic.AddInt64(&rt.Stats.TaskPanics, 1)
					rt.setErr(newTaskError("loop", label, r))
				}
			}()
			lg := sr.newLog()
			ctx := rt.specIterCtx(sr, lg, depth)
			sub := rt.IP.NewIterFrame(ctx, fr)
			defer rt.IP.ReleaseFrame(sub)
			for {
				if rt.failed.Load() {
					return
				}
				if err := rt.interrupt(); err != nil {
					rt.setErr(err)
					return
				}
				start := next.Load()
				if start >= to {
					return
				}
				remaining := (to - start + step - 1) / step
				chunk := remaining / int64(rt.Workers)
				if chunk < 1 {
					chunk = 1
				}
				end := start + chunk*step
				if !next.CompareAndSwap(start, end) {
					continue
				}
				if end > to {
					end = to
				}
				atomic.AddInt64(&rt.Stats.Chunks, 1)
				rt.injectChunk()
				for i := start; i < end; i += step {
					atomic.AddInt64(&rt.Stats.Iterations, 1)
					if err := rt.IP.RunLoopIteration(sub, fs, i); err != nil {
						rt.setErr(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return rt.firstErr()
}

// specIterCtx is the speculative mirror of mutexIterCtx: direct
// invocations in an iteration run serialized within the GSS worker's
// task, journaling into the worker's log.
func (rt *Runtime) specIterCtx(sr *specRegion, lg *specLog, depth int) *interp.Ctx {
	ctx := rt.guardedCtx(depth)
	ctx.Mon = lg
	ctx.Invoke = func(site *types.CallSite, recv *interp.Object, args []interp.Value) (interp.Value, error) {
		mp := rt.Plan.Methods[site.Caller]
		if mp != nil && mp.Site[site.ID] == codegen.ActionInline {
			return rt.IP.Call(ctx, site.Callee, recv, args)
		}
		cp := rt.Plan.Methods[site.Callee]
		if cp != nil && cp.Parallel {
			return interp.Value{}, rt.specCall(nil, sr, lg, site.Callee, recv, args, versionMutex, ctx.Depth)
		}
		return rt.IP.Call(ctx, site.Callee, recv, args)
	}
	return ctx
}

// validate checks the journals at the join barrier. It returns a
// non-empty violation description when speculation must abort:
//
//   - a location written by one task and written or read by another
//     (the racing tasks' operations did not commute at run time), or
//   - an object-field access outside the extent's declared transitive
//     effects (the monitor observed something the analysis never
//     reasoned about).
//
// Array elements are covered by the conflict checks only: an element
// access always reaches the array through a monitored field load, so
// the enclosing object's descriptor conformance already vouches for it.
func (sr *specRegion) validate() string {
	writer := make(map[loc]int)
	for _, lg := range sr.logs {
		for l := range lg.writes {
			if w, ok := writer[l]; ok && w != lg.id {
				return fmt.Sprintf("write-write conflict on %s between tasks %d and %d",
					sr.locName(l), w, lg.id)
			}
			writer[l] = lg.id
		}
	}
	for _, lg := range sr.logs {
		for l := range lg.reads {
			if w, ok := writer[l]; ok && w != lg.id {
				return fmt.Sprintf("read-write conflict on %s between tasks %d and %d",
					sr.locName(l), lg.id, w)
			}
		}
	}
	for _, lg := range sr.logs {
		for l := range lg.writes {
			if d, ok := sr.fieldDesc(l); ok && !sr.mp.SpecWrites.OverlapsDesc(d) {
				return fmt.Sprintf("undeclared write to %s by task %d", sr.locName(l), lg.id)
			}
		}
		for l := range lg.reads {
			if d, ok := sr.fieldDesc(l); ok &&
				!sr.mp.SpecReads.OverlapsDesc(d) && !sr.mp.SpecWrites.OverlapsDesc(d) {
				return fmt.Sprintf("undeclared read of %s by task %d", sr.locName(l), lg.id)
			}
		}
	}
	return ""
}

// fieldDesc maps an observed object-field location back to the effect
// descriptor the analysis reasons about. Array elements report no
// descriptor (see validate).
func (sr *specRegion) fieldDesc(l loc) (effects.Desc, bool) {
	if l.obj == nil {
		return effects.Desc{}, false
	}
	decl, field, ok := sr.rt.IP.SlotField(l.obj.Class, l.idx)
	if !ok {
		return effects.Desc{}, false
	}
	return effects.FieldDesc(decl, nil, field), true
}

// locName renders a location for violation messages.
func (sr *specRegion) locName(l loc) string {
	if l.obj != nil {
		if _, field, ok := sr.rt.IP.SlotField(l.obj.Class, l.idx); ok {
			return fmt.Sprintf("%s#%d.%s", l.obj.Class.Name, l.obj.ID, field)
		}
		return fmt.Sprintf("%s#%d.slot%d", l.obj.Class.Name, l.obj.ID, l.idx)
	}
	return fmt.Sprintf("array[%d]", l.idx)
}

// commit applies every journal's buffered writes to the heap. Runs
// single-threaded after Pool.Wait; validation proved the logs' write
// sets disjoint, so application order is irrelevant.
func (sr *specRegion) commit() {
	for _, lg := range sr.logs {
		for l, v := range lg.writes {
			if l.obj != nil {
				l.obj.Slots[l.idx] = *v
			} else {
				l.arr.Elems[l.idx] = *v
			}
		}
	}
}
