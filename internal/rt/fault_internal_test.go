package rt

import (
	"errors"
	"strings"
	"testing"
	"time"

	"commute/internal/frontend/ast"
	"commute/internal/interp"
)

// TestFaultPlanDeterministicSequence: two plans with the same seed and
// triggers make identical decisions over the same event sequence, so a
// failing injection run replays exactly.
func TestFaultPlanDeterministicSequence(t *testing.T) {
	mk := func() *FaultPlan {
		return &FaultPlan{
			Seed:         99,
			PanicRate:    0.3,
			PanicOnSpawn: 7,
			DelayOnSpawn: time.Millisecond,
			DelayRate:    0.5,
		}
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		da, ca, pa := a.atSpawn()
		db, cb, pb := b.atSpawn()
		if da != db || ca != cb || pa != pb {
			t.Fatalf("event %d diverged: (%v,%v,%d) vs (%v,%v,%d)", i, da, ca, pa, db, cb, pb)
		}
	}
}

// TestFaultPlanCountTriggers: count-based triggers fire exactly once,
// at exactly the configured event.
func TestFaultPlanCountTriggers(t *testing.T) {
	fp := &FaultPlan{PanicOnChunk: 3, PanicOnLock: 2}
	for i := int64(1); i <= 5; i++ {
		got := fp.atChunk()
		want := int64(0)
		if i == 3 {
			want = 3
		}
		if got != want {
			t.Errorf("atChunk #%d = %d, want %d", i, got, want)
		}
	}
	for i := int64(1); i <= 5; i++ {
		got := fp.atLock()
		want := int64(0)
		if i == 2 {
			want = 2
		}
		if got != want {
			t.Errorf("atLock #%d = %d, want %d", i, got, want)
		}
	}
}

// TestFaultPlanCancelTrigger: CancelOnSpawn fires on exactly the Nth
// task start.
func TestFaultPlanCancelTrigger(t *testing.T) {
	fp := &FaultPlan{CancelOnSpawn: 2}
	for i := int64(1); i <= 4; i++ {
		_, cancel, _ := fp.atSpawn()
		if cancel != (i == 2) {
			t.Errorf("atSpawn #%d cancel = %v", i, cancel)
		}
	}
}

// TestParallelLoopRejectsNonPositiveStep: a step ≤ 0 is a RuntimeError
// from the loop dispatcher, not a division-by-zero panic in the chunk
// computation (or an infinite claim loop for negative steps).
func TestParallelLoopRejectsNonPositiveStep(t *testing.T) {
	rt := &Runtime{Workers: 2}
	fs := &ast.ForStmt{Init: &ast.DeclStmt{Name: "i"}}
	for _, step := range []int64{0, -1} {
		err := rt.parallelLoop(nil, &interp.Ctx{}, fs, nil, 0, 10, step)
		if err == nil {
			t.Fatalf("step=%d accepted", step)
		}
		var re *interp.RuntimeError
		if !errors.As(err, &re) {
			t.Fatalf("step=%d: err = %T %v, want *interp.RuntimeError", step, err, err)
		}
		if !strings.Contains(err.Error(), "non-positive step") {
			t.Errorf("step=%d: err = %v, want a non-positive-step message", step, err)
		}
	}
}
