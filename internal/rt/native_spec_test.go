package rt_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/nativegen"
)

// interpSerialDump runs the program serially on the tree walker and
// returns its output followed by the state dump — the byte stream the
// native binary's -dump produces.
func interpSerialDump(t *testing.T, prog *types.Program) string {
	t.Helper()
	var buf bytes.Buffer
	ip := interp.NewEngine(prog, &buf, interp.EngineWalk)
	if err := ip.Run(ip.NewCtx()); err != nil {
		t.Fatalf("serial walk: %v", err)
	}
	nativegen.DumpInterp(&buf, prog, ip)
	return buf.String()
}

// TestNativeRandomSpeculation promotes the random rejected-program and
// guaranteed-violator generators to the native backend: the emitted
// journaled code must reproduce the serial interpreter state byte for
// byte whether each speculative region commits or aborts, and the
// commit/abort counters must balance (violators: all aborts).
func TestNativeRandomSpeculation(t *testing.T) {
	if !nativegen.HaveGo() {
		t.Skip("go toolchain not available")
	}
	r := rand.New(rand.NewSource(424242))
	for _, tc := range []struct {
		name     string
		source   string
		violator bool
	}{
		{"rejected0", genRejectedProgram(r, 3, 16), false},
		{"rejected1", genRejectedProgram(r, 5, 32), false},
		{"violator0", genViolatingProgram(r, 4), true},
	} {
		prog, plan := buildSpec(t, tc.source)
		want := interpSerialDump(t, prog)

		dir := t.TempDir()
		if err := nativegen.GeneratePlan(plan, tc.name, dir); err != nil {
			t.Fatalf("%s: generate: %v", tc.name, err)
		}
		bin, err := nativegen.Build(dir)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got, err := nativegen.Run(bin, "-mode", "serial", "-dump"); err != nil {
			t.Fatal(err)
		} else if got != want {
			t.Errorf("%s serial: native state diverges from interpreter\n got: %q\nwant: %q", tc.name, got, want)
		}
		for _, workers := range []int{1, 4} {
			out, errOut, err := nativegen.RunErr(bin, "-mode", "parallel",
				"-workers", fmt.Sprint(workers), "-speculate", "force", "-specstats", "-dump")
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if out != want {
				t.Errorf("%s workers=%d: speculative state diverges from serial\n got: %q\nwant: %q",
					tc.name, workers, out, want)
			}
			st := nativegen.CounterStats(errOut)
			if st["spec_regions"] == 0 {
				t.Errorf("%s workers=%d: nothing speculated (%v)", tc.name, workers, st)
			}
			if st["spec_commits"]+st["spec_aborts"] != st["spec_regions"] {
				t.Errorf("%s workers=%d: counters %v don't balance", tc.name, workers, st)
			}
			if tc.violator && st["spec_commits"] != 0 {
				t.Errorf("%s workers=%d: guaranteed conflict committed (%v)", tc.name, workers, st)
			}
			if tc.violator && st["spec_aborts"] == 0 {
				t.Errorf("%s workers=%d: guaranteed conflict did not abort (%v)", tc.name, workers, st)
			}
		}
	}
}
