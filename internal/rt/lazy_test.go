package rt_test

import (
	"testing"

	"commute/internal/apps/src"
	"commute/internal/interp"
	"commute/internal/rt"
)

// TestLazyTaskCreation: with a lazy threshold the graph traversal
// spawns far fewer tasks, absorbs the rest inline, and still produces
// the identical serial result.
func TestLazyTaskCreation(t *testing.T) {
	prog, plan := build(t, src.Graph)

	ipSerial := interp.New(prog, nil)
	if err := ipSerial.Run(ipSerial.NewCtx()); err != nil {
		t.Fatal(err)
	}
	wantSums, wantMarked := graphSums(t, prog, ipSerial)

	eager := rt.New(interp.New(prog, nil), plan, 4)
	ipEager := eager.IP
	if err := eager.Run(); err != nil {
		t.Fatal(err)
	}

	lazy := rt.New(interp.New(prog, nil), plan, 4)
	lazy.LazySpawnThreshold = 8
	ipLazy := lazy.IP
	if err := lazy.Run(); err != nil {
		t.Fatal(err)
	}

	if lazy.Stats.LazyInlines == 0 {
		t.Error("lazy runtime absorbed no spawns")
	}
	if lazy.Stats.Tasks >= eager.Stats.Tasks {
		t.Errorf("lazy tasks %d should be below eager tasks %d",
			lazy.Stats.Tasks, eager.Stats.Tasks)
	}
	for _, ip := range []*interp.Interp{ipEager, ipLazy} {
		gotSums, gotMarked := graphSums(t, prog, ip)
		if gotMarked != wantMarked {
			t.Errorf("marked = %d, want %d", gotMarked, wantMarked)
		}
		for i := range wantSums {
			if gotSums[i] != wantSums[i] {
				t.Fatalf("node %d sum = %d, want %d", i, gotSums[i], wantSums[i])
			}
		}
	}
}
