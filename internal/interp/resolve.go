package interp

import (
	"sort"
	"sync"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
)

// methodSlots is the slot-resolution result for one method: every
// parameter and local variable is assigned a fixed integer slot
// (parameters first, then locals in declaration order), so activation
// frames are flat []Value arrays instead of name-keyed maps.
type methodSlots struct {
	n       int            // total frame slots
	names   []string       // slot -> variable name (diagnostics)
	types   []types.Type   // slot -> declared type (DeclStmt re-zeroing)
	paramCo []ast.Coercion // per-parameter store coercion
	retCo   ast.Coercion   // return-value coercion
	byName  map[string]int // name -> slot (cold paths only: loop offers)
}

// resolution is the per-program side table the interpreter executes
// against. It is built exactly once per checked program (interp.New
// shares it across instances): the pass assigns frame slots, computes
// static object-slot offsets for every field reference (base-class-first
// layout makes a field's offset identical in every class that inherits
// it), indexes constants, globals, and classes, and precomputes store
// coercions — after which the steady-state execution path performs no
// map lookups.
type resolution struct {
	layout    *layout
	methods   []*methodSlots // indexed by types.Method.ID
	consts    []Value        // SymConst Ident.Slot -> value
	globals   []string       // SymGlobal Ident.Slot -> global name
	classList []*types.Class // NewExpr/CastExpr ClassIdx -> class

	// Closure-compiled bodies (see compile.go), built once with the
	// resolution and shared by every interpreter for the program.
	compiled   []*compiledMethod // indexed by types.Method.ID
	loopBodies map[*ast.ForStmt]stmtFn

	// Monitored compiled bodies: the same closure-compile pass run with
	// the monitored load/store kernels (compiler.mon), so speculative
	// regions execute at compiled speed. Built lazily on the first
	// monitored execution — programs that never speculate pay nothing.
	// prog is retained solely for that deferred pass.
	prog          *types.Program
	monOnce       sync.Once
	compiledMon   []*compiledMethod // indexed by types.Method.ID
	loopBodiesMon map[*ast.ForStmt]stmtFn
}

// monTables builds (once, racing builders deduped) and returns the
// monitored compiled bodies and loop-body table. The pass reads only
// the immutable AST annotations buildResolution wrote, so it is safe to
// run concurrently with unmonitored execution.
func (r *resolution) monTables() ([]*compiledMethod, map[*ast.ForStmt]stmtFn) {
	r.monOnce.Do(func() {
		loops := make(map[*ast.ForStmt]stmtFn)
		c := &compiler{prog: r.prog, res: r, mon: true, loops: loops}
		compiled := make([]*compiledMethod, len(r.prog.Methods))
		for _, m := range r.prog.Methods {
			compiled[m.ID] = c.compileMethod(m)
		}
		r.compiledMon, r.loopBodiesMon = compiled, loops
	})
	return r.compiledMon, r.loopBodiesMon
}

// resolveCache maps *types.Program -> *resolveEntry. Entries carry a
// sync.Once so that N goroutines racing to create the first interpreter
// for one program dedupe to a single buildResolution (which both
// computes the side tables and annotates the shared AST), while
// first-builds of *different* programs proceed concurrently — a
// long-running daemon loading many programs must not serialize all
// compilation behind one global lock. The Once also publishes the
// finished resolution with a happens-before edge, so no goroutine can
// observe a torn (partially built) resolution or half-annotated AST.
var resolveCache sync.Map

type resolveEntry struct {
	once sync.Once
	res  *resolution
}

// resolve returns the program's cached resolution, building and
// annotating the AST on first use.
func resolve(prog *types.Program) *resolution {
	e, _ := resolveCache.LoadOrStore(prog, &resolveEntry{})
	ent := e.(*resolveEntry)
	ent.once.Do(func() { ent.res = buildResolution(prog) })
	return ent.res
}

// Warm forces the program's slot resolution and closure compilation to
// run now (they otherwise run lazily on the first interpreter
// creation), so a caching layer can pay the one-time cost at load time
// instead of on the first request.
func Warm(prog *types.Program) { resolve(prog) }

// Release drops the program's cached resolution and compiled bodies,
// letting a long-running process reclaim the memory of programs it has
// evicted. The caller must guarantee no executions of prog are in
// flight and none will start concurrently with the release: a later
// execution rebuilds the caches from scratch (including re-annotating
// the AST), which is only safe once all prior readers are done.
func Release(prog *types.Program) { resolveCache.Delete(prog) }

// coercionFor maps a declared type to the store coercion the
// interpreter applies when assigning into it.
func coercionFor(t types.Type) ast.Coercion {
	b, ok := t.(types.Basic)
	if !ok {
		return ast.CoNone
	}
	switch b {
	case types.Int:
		return ast.CoInt
	case types.Double:
		return ast.CoDouble
	}
	return ast.CoNone
}

func buildResolution(prog *types.Program) *resolution {
	r := &resolution{
		layout:    newLayout(prog),
		methods:   make([]*methodSlots, len(prog.Methods)),
		classList: prog.ClassList,
		prog:      prog,
	}

	// Constant table in sorted-name order (deterministic indices).
	constIdx := make(map[string]int32, len(prog.Consts))
	names := make([]string, 0, len(prog.Consts))
	for name := range prog.Consts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cv := prog.Consts[name]
		constIdx[name] = int32(len(r.consts))
		if cv.IsInt {
			r.consts = append(r.consts, IntValue(cv.I))
		} else {
			r.consts = append(r.consts, FloatValue(cv.F))
		}
	}

	// Global table in declaration order (matches Interp.globals).
	globalIdx := make(map[string]int32, len(prog.GlobalSeq))
	for i, g := range prog.GlobalSeq {
		globalIdx[g.Name] = int32(i)
		r.globals = append(r.globals, g.Name)
	}

	classIdx := make(map[string]int32, len(prog.ClassList))
	for i, cl := range prog.ClassList {
		classIdx[cl.Name] = int32(i)
	}

	for _, m := range prog.Methods {
		r.methods[m.ID] = r.resolveMethod(prog, m, constIdx, globalIdx, classIdx)
	}

	// Lower every resolved body to closures. The compiled forms read
	// only the annotations written above, so this runs after the whole
	// program is resolved.
	r.loopBodies = make(map[*ast.ForStmt]stmtFn)
	c := &compiler{prog: prog, res: r, loops: r.loopBodies}
	r.compiled = make([]*compiledMethod, len(prog.Methods))
	for _, m := range prog.Methods {
		r.compiled[m.ID] = c.compileMethod(m)
	}
	return r
}

// resolveMethod assigns frame slots and annotates every name use,
// field reference, and allocation site in the method body.
func (r *resolution) resolveMethod(prog *types.Program, m *types.Method, constIdx, globalIdx, classIdx map[string]int32) *methodSlots {
	ms := &methodSlots{byName: make(map[string]int, len(m.Params)+len(m.Locals))}
	addSlot := func(name string, t types.Type) int {
		slot := ms.n
		ms.byName[name] = slot
		ms.names = append(ms.names, name)
		ms.types = append(ms.types, t)
		ms.n++
		return slot
	}
	for _, p := range m.Params {
		addSlot(p.Name, p.Type)
		ms.paramCo = append(ms.paramCo, coercionFor(p.Type))
	}
	ms.retCo = coercionFor(m.Ret)
	if m.Def == nil {
		return ms
	}

	// Declarations precede uses in the dialect and Inspect walks in
	// source order, so a single pass both assigns and consumes slots.
	// Sequential reuse of a name (two `for (int i ...)` loops) shares
	// the method-level slot, mirroring the checker's Locals map.
	ast.Inspect(m.Def.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeclStmt:
			slot, ok := ms.byName[x.Name]
			if !ok {
				slot = addSlot(x.Name, prog.DeclType[x])
			}
			x.Slot = int32(slot)
			x.Coerce = coercionFor(prog.DeclType[x])
		case *ast.Ident:
			switch x.Sym {
			case ast.SymLocal, ast.SymParam:
				if slot, ok := ms.byName[x.Name]; ok {
					x.Slot = int32(slot)
				}
				x.Coerce = coercionFor(prog.TypeOf(x))
			case ast.SymConst:
				x.Slot = constIdx[x.Name]
			case ast.SymGlobal:
				x.Slot = globalIdx[x.Name]
			case ast.SymField:
				// Base-class-first layout: the offset of a field
				// declared in FieldClass is the same in every class
				// inheriting it, so the slot is static.
				if cl, ok := prog.Classes[x.FieldClass]; ok {
					x.Slot = int32(r.layout.slot(cl, x.FieldClass, x.Name))
				}
				x.Coerce = coercionFor(prog.TypeOf(x))
			}
		case *ast.FieldAccess:
			if cl, ok := prog.Classes[x.DeclClass]; ok {
				x.Slot = int32(r.layout.slot(cl, x.DeclClass, x.Name))
			}
			x.Coerce = coercionFor(prog.TypeOf(x))
		case *ast.IndexExpr:
			x.Coerce = coercionFor(prog.TypeOf(x))
		case *ast.NewExpr:
			x.ClassIdx = classIdx[x.ClassName]
		case *ast.CastExpr:
			x.ClassIdx = classIdx[x.ClassName]
		}
		return true
	})
	return ms
}

// coerceKind applies a precomputed store coercion.
func coerceKind(c ast.Coercion, v Value) Value {
	switch c {
	case ast.CoInt:
		if v.kind == KFloat {
			return IntValue(int64(v.Float()))
		}
	case ast.CoDouble:
		if v.kind == KInt {
			return FloatValue(float64(int64(v.num)))
		}
	}
	return v
}

// loopVarSlot reads the loop variable's frame slot off a counted loop's
// init statement (annotated by the resolution pass).
func loopVarSlot(st *ast.ForStmt) int {
	switch init := st.Init.(type) {
	case *ast.DeclStmt:
		return int(init.Slot)
	case *ast.ExprStmt:
		if asn, ok := init.X.(*ast.Assign); ok {
			if id, ok2 := asn.LHS.(*ast.Ident); ok2 {
				return int(id.Slot)
			}
		}
	}
	return -1
}
