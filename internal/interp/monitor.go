package interp

import (
	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
)

// Mon observes — and may redirect — every shared-state access the
// tree-walking engine performs: object field loads and stores, and
// array element loads and stores. The speculative runtime installs one
// Mon per task to buffer writes and log reads; a load consults the
// monitor so a task reads its own buffered writes instead of the live
// heap.
//
// Both engines monitor at full speed. The walker branches to the
// monitored kernels at each access; the compiled engine keeps two sets
// of closure-compiled bodies — the unmonitored hot path, byte-identical
// to what an unmonitored program always ran, and a monitored set (built
// lazily on first use) whose field/element kernels call the monitor
// unconditionally. Call and RunLoopIteration select the monitored set
// whenever Ctx.Mon is non-nil, so speculation no longer downgrades the
// compiled engine to the walker. Locals, parameters, and constants are
// frame-private and are never reported.
type Mon interface {
	// LoadField returns the value of o's field slot, consulting any
	// buffered write first.
	LoadField(o *Object, slot int) Value
	// StoreField records a write of v (already coerced) to o's field
	// slot. The live object is not modified.
	StoreField(o *Object, slot int, v Value)
	// LoadElem returns element idx of a (bounds already checked).
	LoadElem(a *Array, idx int) Value
	// StoreElem records a write of v (already coerced and
	// bounds-checked) to element idx of a.
	StoreElem(a *Array, idx int, v Value)
}

// SlotField is the reverse of FieldSlot: it reports the declaring
// class and field name of slot in an object of class cl, preferring
// the most-derived declaration when a field is shadowed. The
// speculation validator uses it to map observed slot accesses back to
// the effect descriptors the analysis reasoned about.
func (ip *Interp) SlotField(cl *types.Class, slot int) (*types.Class, string, bool) {
	for c := cl; c != nil; c = c.Base {
		for _, f := range c.Fields {
			if ip.res.layout.slot(cl, f.Class.Name, f.Name) == slot {
				return f.Class, f.Name, true
			}
		}
	}
	return nil, "", false
}

// indexLoadMon is the monitored variant of the indexLoad kernel: the
// same checks, with the element read routed through the monitor. The
// unmonitored kernels stay untouched — they are shared with the
// compiled engine's hot path.
func indexLoadMon(mon Mon, arrV, idxV Value, x *ast.IndexExpr) (Value, error) {
	if arrV.kind != KArray {
		return Value{}, rtErrf(errIndexNonArr, x.Pos())
	}
	if idxV.kind != KInt {
		return Value{}, rtErrf(errIndexNonInt, x.Pos())
	}
	arr := arrV.ref.(*Array)
	i := int64(idxV.num)
	if i < 0 || int(i) >= len(arr.Elems) {
		return Value{}, rtErrf(errIndexRange, i, len(arr.Elems), x.Pos())
	}
	return mon.LoadElem(arr, int(i)), nil
}

// indexStoreMon is the monitored variant of the indexStore kernel.
func indexStoreMon(mon Mon, arrV, idxV, v Value, x *ast.IndexExpr) error {
	if arrV.kind != KArray {
		return rtErrf(errIndexStoreArr, x.Pos())
	}
	arr := arrV.ref.(*Array)
	if idxV.kind != KInt {
		return rtErrf(errIndexStoreRng, idxV.Any(), x.Pos())
	}
	i := int64(idxV.num)
	if i < 0 || int(i) >= len(arr.Elems) {
		return rtErrf(errIndexStoreRng, idxV.Any(), x.Pos())
	}
	mon.StoreElem(arr, int(i), coerceKind(x.Coerce, v))
	return nil
}
