package interp

import (
	"strconv"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
)

// Abstract cost units charged by the interpreter. One unit corresponds
// to roughly one simple machine operation; the simulator converts units
// to microseconds with a calibration constant. Both engines charge the
// same totals between dispatcher-hook boundaries (see compile.go), so
// DASH simulation results are independent of the engine.
const (
	costStmt    = 1
	costExpr    = 1
	costCall    = 8
	costBuiltin = 12
	costAlloc   = 40
)

// Error format strings shared by the walking and compiled engines, so
// differential tests can compare error classes byte for byte.
const (
	errDivZero        = "integer division by zero at %s"
	errModZero        = "integer modulo by zero at %s"
	errNonNumbers     = "arithmetic on non-numbers at %s"
	errBadBinary      = "bad binary operator at %s"
	errCompoundNonNum = "compound assignment on non-numbers at %s"
	errBadCompound    = "bad compound operator at %s"
	errUnaryNonNum    = "unary - on non-number at %s"
	errBadUnary       = "bad unary operator at %s"
	errNullDeref      = "NULL dereference at %s"
	errFieldNonObj    = "field access on non-object at %s"
	errIndexNonArr    = "indexing non-array at %s"
	errIndexNonInt    = "non-integer index at %s"
	errIndexRange     = "index %d out of range [0,%d) at %s"
	errFieldNoRecv    = "field %s accessed without a receiver"
	errFieldNoRecvWr  = "field %s written without a receiver"
	errCastNonObj     = "cast of non-object at %s"
	errCallOnNull     = "method call on NULL at %s"
	errCallNonObj     = "method call on non-object at %s"
	errFieldStoreObj  = "field store on non-object at %s"
	errIndexStoreArr  = "index store on non-array at %s"
	errIndexStoreRng  = "index %v out of range at %s"
	errUnknownBuiltin = "unknown builtin %s"
)

func formatInt(v int64) string     { return strconv.FormatInt(v, 10) }
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// eval evaluates an expression to a value (tree-walking engine).
func (ip *Interp) eval(fr *Frame, e ast.Expr) (Value, error) {
	fr.ctx.charge(costExpr)
	switch x := e.(type) {
	case *ast.IntLit:
		return IntValue(x.Value), nil
	case *ast.FloatLit:
		return FloatValue(x.Value), nil
	case *ast.BoolLit:
		return BoolValue(x.Value), nil
	case *ast.NullLit:
		return Value{}, nil
	case *ast.StringLit:
		return StringValue(x.Value), nil
	case *ast.ThisExpr:
		return ObjectValue(fr.this), nil

	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal, ast.SymParam:
			return fr.vars[x.Slot], nil
		case ast.SymConst:
			return ip.res.consts[x.Slot], nil
		case ast.SymGlobal:
			return ObjectValue(ip.globals[x.Slot]), nil
		case ast.SymField:
			if fr.this == nil {
				return Value{}, rtErrf(errFieldNoRecv, x.Name)
			}
			if fr.ctx.Mon != nil {
				return fr.ctx.Mon.LoadField(fr.this, int(x.Slot)), nil
			}
			return fr.this.Slots[x.Slot], nil
		}
		return Value{}, rtErrf("unresolved identifier %s at %s", x.Name, x.Pos())

	case *ast.FieldAccess:
		base, err := ip.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		if base.kind != KObject {
			if base.kind == KNull {
				return Value{}, rtErrf(errNullDeref, x.Pos())
			}
			return Value{}, rtErrf(errFieldNonObj, x.Pos())
		}
		if fr.ctx.Mon != nil {
			return fr.ctx.Mon.LoadField(base.ref.(*Object), int(x.Slot)), nil
		}
		return base.ref.(*Object).Slots[x.Slot], nil

	case *ast.IndexExpr:
		arrV, err := ip.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		idxV, err := ip.eval(fr, x.Index)
		if err != nil {
			return Value{}, err
		}
		if fr.ctx.Mon != nil {
			return indexLoadMon(fr.ctx.Mon, arrV, idxV, x)
		}
		return indexLoad(arrV, idxV, x)

	case *ast.CallExpr:
		return ip.evalCall(fr, x)

	case *ast.NewExpr:
		fr.ctx.charge(costAlloc)
		return ObjectValue(ip.NewObject(ip.res.classList[x.ClassIdx])), nil

	case *ast.CastExpr:
		v, err := ip.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		return castValue(ip, v, x)

	case *ast.Unary:
		v, err := ip.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		return applyUnary(x, v)

	case *ast.Binary:
		return ip.evalBinary(fr, x)

	case *ast.Assign:
		return ip.evalAssign(fr, x)
	}
	return Value{}, rtErrf("unsupported expression at %s", e.Pos())
}

// indexLoad is the array-read kernel shared by both engines.
func indexLoad(arrV, idxV Value, x *ast.IndexExpr) (Value, error) {
	if arrV.kind != KArray {
		return Value{}, rtErrf(errIndexNonArr, x.Pos())
	}
	if idxV.kind != KInt {
		return Value{}, rtErrf(errIndexNonInt, x.Pos())
	}
	arr := arrV.ref.(*Array)
	i := int64(idxV.num)
	if i < 0 || int(i) >= len(arr.Elems) {
		return Value{}, rtErrf(errIndexRange, i, len(arr.Elems), x.Pos())
	}
	return arr.Elems[i], nil
}

// castValue is the dynamic-cast kernel shared by both engines: a failed
// cast yields NULL, matching the dialect's checked downcasts.
func castValue(ip *Interp, v Value, x *ast.CastExpr) (Value, error) {
	if v.kind == KNull {
		return Value{}, nil
	}
	if v.kind != KObject {
		return Value{}, rtErrf(errCastNonObj, x.Pos())
	}
	obj := v.ref.(*Object)
	if obj.Class.InheritsFrom(ip.res.classList[x.ClassIdx]) {
		return v, nil
	}
	return Value{}, nil // failed dynamic cast yields NULL
}

// applyUnary is the unary-operator kernel shared by both engines.
func applyUnary(x *ast.Unary, v Value) (Value, error) {
	switch x.Op {
	case token.MINUS:
		switch v.kind {
		case KInt:
			return IntValue(-int64(v.num)), nil
		case KFloat:
			return FloatValue(-v.Float()), nil
		}
		return Value{}, rtErrf(errUnaryNonNum, x.Pos())
	case token.NOT:
		b, err := truthy(v)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(!b), nil
	}
	return Value{}, rtErrf(errBadUnary, x.Pos())
}

func (ip *Interp) evalBinary(fr *Frame, x *ast.Binary) (Value, error) {
	// Short-circuit operators.
	if x.Op == token.AND || x.Op == token.OR {
		l, err := ip.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		lb, err := truthy(l)
		if err != nil {
			return Value{}, err
		}
		if x.Op == token.AND && !lb {
			return BoolValue(false), nil
		}
		if x.Op == token.OR && lb {
			return BoolValue(true), nil
		}
		r, err := ip.eval(fr, x.Y)
		if err != nil {
			return Value{}, err
		}
		return truthyVal(r)
	}

	l, err := ip.eval(fr, x.X)
	if err != nil {
		return Value{}, err
	}
	r, err := ip.eval(fr, x.Y)
	if err != nil {
		return Value{}, err
	}
	return applyBinary(x, l, r)
}

// applyBinary is the strict (non-short-circuit) binary-operator kernel
// shared by both engines.
func applyBinary(x *ast.Binary, l, r Value) (Value, error) {
	switch x.Op {
	case token.EQ, token.NEQ:
		eq, err := valueEqual(l, r)
		if err != nil {
			return Value{}, err
		}
		if x.Op == token.NEQ {
			return BoolValue(!eq), nil
		}
		return BoolValue(eq), nil
	}

	if l.kind == KInt && r.kind == KInt {
		li, ri := int64(l.num), int64(r.num)
		switch x.Op {
		case token.PLUS:
			return IntValue(li + ri), nil
		case token.MINUS:
			return IntValue(li - ri), nil
		case token.STAR:
			return IntValue(li * ri), nil
		case token.SLASH:
			if ri == 0 {
				return Value{}, rtErrf(errDivZero, x.Pos())
			}
			return IntValue(li / ri), nil
		case token.PERCENT:
			if ri == 0 {
				return Value{}, rtErrf(errModZero, x.Pos())
			}
			return IntValue(li % ri), nil
		case token.LT:
			return BoolValue(li < ri), nil
		case token.LEQ:
			return BoolValue(li <= ri), nil
		case token.GT:
			return BoolValue(li > ri), nil
		case token.GEQ:
			return BoolValue(li >= ri), nil
		}
	}

	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if !lok || !rok {
		return Value{}, rtErrf(errNonNumbers, x.Pos())
	}
	switch x.Op {
	case token.PLUS:
		return FloatValue(lf + rf), nil
	case token.MINUS:
		return FloatValue(lf - rf), nil
	case token.STAR:
		return FloatValue(lf * rf), nil
	case token.SLASH:
		return FloatValue(lf / rf), nil
	case token.LT:
		return BoolValue(lf < rf), nil
	case token.LEQ:
		return BoolValue(lf <= rf), nil
	case token.GT:
		return BoolValue(lf > rf), nil
	case token.GEQ:
		return BoolValue(lf >= rf), nil
	}
	return Value{}, rtErrf(errBadBinary, x.Pos())
}

func truthyVal(v Value) (Value, error) {
	b, err := truthy(v)
	if err != nil {
		return Value{}, err
	}
	return BoolValue(b), nil
}

func valueEqual(l, r Value) (bool, error) {
	lIsPtr := l.kind == KNull || l.kind == KObject
	rIsPtr := r.kind == KNull || r.kind == KObject
	if lIsPtr || rIsPtr {
		if !lIsPtr {
			return false, rtErrf("comparing pointer with non-pointer")
		}
		if !rIsPtr {
			return false, rtErrf("comparing pointer with non-pointer")
		}
		return l.Object() == r.Object(), nil
	}
	if l.kind == KBool {
		if r.kind != KBool {
			return false, rtErrf("comparing boolean with non-boolean")
		}
		return l.num == r.num, nil
	}
	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if lok && rok {
		return lf == rf, nil
	}
	return false, rtErrf("unsupported comparison")
}

func (ip *Interp) evalAssign(fr *Frame, x *ast.Assign) (Value, error) {
	rhs, err := ip.eval(fr, x.RHS)
	if err != nil {
		return Value{}, err
	}
	if x.Op != token.ASSIGN {
		old, err := ip.eval(fr, x.LHS)
		if err != nil {
			return Value{}, err
		}
		rhs, err = applyCompound(x, old, rhs)
		if err != nil {
			return Value{}, err
		}
	}
	if err := ip.store(fr, x.LHS, rhs); err != nil {
		return Value{}, err
	}
	return rhs, nil
}

// applyCompound is the compound-assignment kernel shared by both
// engines.
func applyCompound(x *ast.Assign, old, rhs Value) (Value, error) {
	if old.kind == KInt && rhs.kind == KInt {
		oi, ri := int64(old.num), int64(rhs.num)
		switch x.Op {
		case token.PLUSEQ:
			return IntValue(oi + ri), nil
		case token.MINUSEQ:
			return IntValue(oi - ri), nil
		case token.STAREQ:
			return IntValue(oi * ri), nil
		case token.SLASHEQ:
			if ri == 0 {
				return Value{}, rtErrf(errDivZero, x.Pos())
			}
			return IntValue(oi / ri), nil
		}
	}
	of, ook := asFloat(old)
	rf, rok := asFloat(rhs)
	if !ook || !rok {
		return Value{}, rtErrf(errCompoundNonNum, x.Pos())
	}
	switch x.Op {
	case token.PLUSEQ:
		return FloatValue(of + rf), nil
	case token.MINUSEQ:
		return FloatValue(of - rf), nil
	case token.STAREQ:
		return FloatValue(of * rf), nil
	case token.SLASHEQ:
		return FloatValue(of / rf), nil
	}
	return Value{}, rtErrf(errBadCompound, x.Pos())
}

// store writes a value to an lvalue.
func (ip *Interp) store(fr *Frame, lhs ast.Expr, v Value) error {
	switch x := lhs.(type) {
	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal, ast.SymParam:
			fr.vars[x.Slot] = coerceKind(x.Coerce, v)
			return nil
		case ast.SymField:
			if fr.this == nil {
				return rtErrf(errFieldNoRecvWr, x.Name)
			}
			if fr.ctx.Mon != nil {
				fr.ctx.Mon.StoreField(fr.this, int(x.Slot), coerceKind(x.Coerce, v))
				return nil
			}
			fr.this.Slots[x.Slot] = coerceKind(x.Coerce, v)
			return nil
		}
		return rtErrf("cannot assign to %s", x.Name)
	case *ast.FieldAccess:
		base, err := ip.eval(fr, x.X)
		if err != nil {
			return err
		}
		if base.kind != KObject {
			return rtErrf(errFieldStoreObj, x.Pos())
		}
		if fr.ctx.Mon != nil {
			fr.ctx.Mon.StoreField(base.ref.(*Object), int(x.Slot), coerceKind(x.Coerce, v))
			return nil
		}
		base.ref.(*Object).Slots[x.Slot] = coerceKind(x.Coerce, v)
		return nil
	case *ast.IndexExpr:
		arrV, err := ip.eval(fr, x.X)
		if err != nil {
			return err
		}
		idxV, err := ip.eval(fr, x.Index)
		if err != nil {
			return err
		}
		if fr.ctx.Mon != nil {
			return indexStoreMon(fr.ctx.Mon, arrV, idxV, v, x)
		}
		return indexStore(arrV, idxV, v, x)
	}
	return rtErrf("unsupported assignment target at %s", lhs.Pos())
}

// indexStore is the array-write kernel shared by both engines.
func indexStore(arrV, idxV, v Value, x *ast.IndexExpr) error {
	if arrV.kind != KArray {
		return rtErrf(errIndexStoreArr, x.Pos())
	}
	arr := arrV.ref.(*Array)
	if idxV.kind != KInt {
		return rtErrf(errIndexStoreRng, idxV.Any(), x.Pos())
	}
	i := int64(idxV.num)
	if i < 0 || int(i) >= len(arr.Elems) {
		return rtErrf(errIndexStoreRng, idxV.Any(), x.Pos())
	}
	arr.Elems[i] = coerceKind(x.Coerce, v)
	return nil
}

// evalCall evaluates receiver and arguments, then dispatches through
// the context's Invoke hook.
func (ip *Interp) evalCall(fr *Frame, x *ast.CallExpr) (Value, error) {
	if x.Builtin {
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ip.eval(fr, a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		fr.ctx.charge(costBuiltin)
		return callBuiltin(ip, x.Method, x, args)
	}
	site := ip.Prog.CallSites[x.Site]

	var recv *Object
	if x.Recv != nil {
		rv, err := ip.eval(fr, x.Recv)
		if err != nil {
			return Value{}, err
		}
		if rv.kind != KObject {
			if rv.kind == KNull {
				return Value{}, rtErrf(errCallOnNull, x.Pos())
			}
			return Value{}, rtErrf(errCallNonObj, x.Pos())
		}
		recv = rv.ref.(*Object)
	} else if site.Callee.Class != nil {
		recv = fr.this
	}

	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ip.eval(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}

	if fr.ctx.Invoke != nil {
		return fr.ctx.Invoke(site, recv, args)
	}
	return ip.Call(fr.ctx, site.Callee, recv, args)
}
