package interp

import (
	"strconv"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
)

// Abstract cost units charged by the interpreter. One unit corresponds
// to roughly one simple machine operation; the simulator converts units
// to microseconds with a calibration constant.
const (
	costStmt    = 1
	costExpr    = 1
	costCall    = 8
	costBuiltin = 12
	costAlloc   = 40
)

func formatInt(v int64) string     { return strconv.FormatInt(v, 10) }
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// eval evaluates an expression to a value.
func (ip *Interp) eval(fr *Frame, e ast.Expr) (Value, error) {
	fr.ctx.charge(costExpr)
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, nil
	case *ast.FloatLit:
		return x.Value, nil
	case *ast.BoolLit:
		return x.Value, nil
	case *ast.NullLit:
		return nil, nil
	case *ast.StringLit:
		return x.Value, nil
	case *ast.ThisExpr:
		return fr.this, nil

	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal, ast.SymParam:
			return fr.vars[x.Slot], nil
		case ast.SymConst:
			return ip.res.consts[x.Slot], nil
		case ast.SymGlobal:
			return ip.globals[x.Slot], nil
		case ast.SymField:
			if fr.this == nil {
				return nil, rtErrf("field %s accessed without a receiver", x.Name)
			}
			return fr.this.Slots[x.Slot], nil
		}
		return nil, rtErrf("unresolved identifier %s at %s", x.Name, x.Pos())

	case *ast.FieldAccess:
		base, err := ip.eval(fr, x.X)
		if err != nil {
			return nil, err
		}
		obj, ok := base.(*Object)
		if !ok {
			if base == nil {
				return nil, rtErrf("NULL dereference at %s", x.Pos())
			}
			return nil, rtErrf("field access on non-object at %s", x.Pos())
		}
		return obj.Slots[x.Slot], nil

	case *ast.IndexExpr:
		arrV, err := ip.eval(fr, x.X)
		if err != nil {
			return nil, err
		}
		idxV, err := ip.eval(fr, x.Index)
		if err != nil {
			return nil, err
		}
		arr, ok := arrV.(*Array)
		if !ok {
			return nil, rtErrf("indexing non-array at %s", x.Pos())
		}
		i, ok := idxV.(int64)
		if !ok {
			return nil, rtErrf("non-integer index at %s", x.Pos())
		}
		if i < 0 || int(i) >= len(arr.Elems) {
			return nil, rtErrf("index %d out of range [0,%d) at %s", i, len(arr.Elems), x.Pos())
		}
		return arr.Elems[i], nil

	case *ast.CallExpr:
		return ip.evalCall(fr, x)

	case *ast.NewExpr:
		fr.ctx.charge(costAlloc)
		return ip.NewObject(ip.res.classList[x.ClassIdx]), nil

	case *ast.CastExpr:
		v, err := ip.eval(fr, x.X)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		obj, ok := v.(*Object)
		if !ok {
			return nil, rtErrf("cast of non-object at %s", x.Pos())
		}
		target := ip.res.classList[x.ClassIdx]
		if obj.Class.InheritsFrom(target) {
			return obj, nil
		}
		return nil, nil // failed dynamic cast yields NULL

	case *ast.Unary:
		v, err := ip.eval(fr, x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case token.MINUS:
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, rtErrf("unary - on non-number at %s", x.Pos())
		case token.NOT:
			b, err := truthy(v)
			if err != nil {
				return nil, err
			}
			return !b, nil
		}
		return nil, rtErrf("bad unary operator at %s", x.Pos())

	case *ast.Binary:
		return ip.evalBinary(fr, x)

	case *ast.Assign:
		return ip.evalAssign(fr, x)
	}
	return nil, rtErrf("unsupported expression at %s", e.Pos())
}

func (ip *Interp) evalBinary(fr *Frame, x *ast.Binary) (Value, error) {
	// Short-circuit operators.
	if x.Op == token.AND || x.Op == token.OR {
		l, err := ip.eval(fr, x.X)
		if err != nil {
			return nil, err
		}
		lb, err := truthy(l)
		if err != nil {
			return nil, err
		}
		if x.Op == token.AND && !lb {
			return false, nil
		}
		if x.Op == token.OR && lb {
			return true, nil
		}
		r, err := ip.eval(fr, x.Y)
		if err != nil {
			return nil, err
		}
		return truthyVal(r)
	}

	l, err := ip.eval(fr, x.X)
	if err != nil {
		return nil, err
	}
	r, err := ip.eval(fr, x.Y)
	if err != nil {
		return nil, err
	}

	switch x.Op {
	case token.EQ, token.NEQ:
		eq, err := valueEqual(l, r)
		if err != nil {
			return nil, err
		}
		if x.Op == token.NEQ {
			return !eq, nil
		}
		return eq, nil
	}

	li, lIsInt := l.(int64)
	ri, rIsInt := r.(int64)
	if lIsInt && rIsInt {
		switch x.Op {
		case token.PLUS:
			return li + ri, nil
		case token.MINUS:
			return li - ri, nil
		case token.STAR:
			return li * ri, nil
		case token.SLASH:
			if ri == 0 {
				return nil, rtErrf("integer division by zero at %s", x.Pos())
			}
			return li / ri, nil
		case token.PERCENT:
			if ri == 0 {
				return nil, rtErrf("integer modulo by zero at %s", x.Pos())
			}
			return li % ri, nil
		case token.LT:
			return li < ri, nil
		case token.LEQ:
			return li <= ri, nil
		case token.GT:
			return li > ri, nil
		case token.GEQ:
			return li >= ri, nil
		}
	}

	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if !lok || !rok {
		return nil, rtErrf("arithmetic on non-numbers at %s", x.Pos())
	}
	switch x.Op {
	case token.PLUS:
		return lf + rf, nil
	case token.MINUS:
		return lf - rf, nil
	case token.STAR:
		return lf * rf, nil
	case token.SLASH:
		return lf / rf, nil
	case token.LT:
		return lf < rf, nil
	case token.LEQ:
		return lf <= rf, nil
	case token.GT:
		return lf > rf, nil
	case token.GEQ:
		return lf >= rf, nil
	}
	return nil, rtErrf("bad binary operator at %s", x.Pos())
}

func truthyVal(v Value) (Value, error) {
	b, err := truthy(v)
	if err != nil {
		return nil, err
	}
	return b, nil
}

func valueEqual(l, r Value) (bool, error) {
	lo, lIsObj := l.(*Object)
	ro, rIsObj := r.(*Object)
	if l == nil || r == nil || lIsObj || rIsObj {
		if l != nil && !lIsObj {
			return false, rtErrf("comparing pointer with non-pointer")
		}
		if r != nil && !rIsObj {
			return false, rtErrf("comparing pointer with non-pointer")
		}
		return lo == ro, nil
	}
	if lb, ok := l.(bool); ok {
		rb, ok2 := r.(bool)
		if !ok2 {
			return false, rtErrf("comparing boolean with non-boolean")
		}
		return lb == rb, nil
	}
	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if lok && rok {
		return lf == rf, nil
	}
	return false, rtErrf("unsupported comparison")
}

func (ip *Interp) evalAssign(fr *Frame, x *ast.Assign) (Value, error) {
	rhs, err := ip.eval(fr, x.RHS)
	if err != nil {
		return nil, err
	}
	if x.Op != token.ASSIGN {
		old, err := ip.eval(fr, x.LHS)
		if err != nil {
			return nil, err
		}
		rhs, err = applyCompound(x, old, rhs)
		if err != nil {
			return nil, err
		}
	}
	if err := ip.store(fr, x.LHS, rhs); err != nil {
		return nil, err
	}
	return rhs, nil
}

func applyCompound(x *ast.Assign, old, rhs Value) (Value, error) {
	oi, oIsInt := old.(int64)
	ri, rIsInt := rhs.(int64)
	if oIsInt && rIsInt {
		switch x.Op {
		case token.PLUSEQ:
			return oi + ri, nil
		case token.MINUSEQ:
			return oi - ri, nil
		case token.STAREQ:
			return oi * ri, nil
		case token.SLASHEQ:
			if ri == 0 {
				return nil, rtErrf("integer division by zero at %s", x.Pos())
			}
			return oi / ri, nil
		}
	}
	of, ook := asFloat(old)
	rf, rok := asFloat(rhs)
	if !ook || !rok {
		return nil, rtErrf("compound assignment on non-numbers at %s", x.Pos())
	}
	switch x.Op {
	case token.PLUSEQ:
		return of + rf, nil
	case token.MINUSEQ:
		return of - rf, nil
	case token.STAREQ:
		return of * rf, nil
	case token.SLASHEQ:
		return of / rf, nil
	}
	return nil, rtErrf("bad compound operator at %s", x.Pos())
}

// store writes a value to an lvalue.
func (ip *Interp) store(fr *Frame, lhs ast.Expr, v Value) error {
	switch x := lhs.(type) {
	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal, ast.SymParam:
			fr.vars[x.Slot] = coerceKind(x.Coerce, v)
			return nil
		case ast.SymField:
			if fr.this == nil {
				return rtErrf("field %s written without a receiver", x.Name)
			}
			fr.this.Slots[x.Slot] = coerceKind(x.Coerce, v)
			return nil
		}
		return rtErrf("cannot assign to %s", x.Name)
	case *ast.FieldAccess:
		base, err := ip.eval(fr, x.X)
		if err != nil {
			return err
		}
		obj, ok := base.(*Object)
		if !ok {
			return rtErrf("field store on non-object at %s", x.Pos())
		}
		obj.Slots[x.Slot] = coerceKind(x.Coerce, v)
		return nil
	case *ast.IndexExpr:
		arrV, err := ip.eval(fr, x.X)
		if err != nil {
			return err
		}
		idxV, err := ip.eval(fr, x.Index)
		if err != nil {
			return err
		}
		arr, ok := arrV.(*Array)
		if !ok {
			return rtErrf("index store on non-array at %s", x.Pos())
		}
		i, ok := idxV.(int64)
		if !ok || i < 0 || int(i) >= len(arr.Elems) {
			return rtErrf("index %v out of range at %s", idxV, x.Pos())
		}
		arr.Elems[i] = coerceKind(x.Coerce, v)
		return nil
	}
	return rtErrf("unsupported assignment target at %s", lhs.Pos())
}

// evalCall evaluates receiver and arguments, then dispatches through
// the context's Invoke hook.
func (ip *Interp) evalCall(fr *Frame, x *ast.CallExpr) (Value, error) {
	if x.Builtin {
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ip.eval(fr, a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return callBuiltin(ip, fr, x, args)
	}
	site := ip.Prog.CallSites[x.Site]

	var recv *Object
	if x.Recv != nil {
		rv, err := ip.eval(fr, x.Recv)
		if err != nil {
			return nil, err
		}
		obj, ok := rv.(*Object)
		if !ok {
			if rv == nil {
				return nil, rtErrf("method call on NULL at %s", x.Pos())
			}
			return nil, rtErrf("method call on non-object at %s", x.Pos())
		}
		recv = obj
	} else if site.Callee.Class != nil {
		recv = fr.this
	}

	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ip.eval(fr, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}

	if fr.ctx.Invoke != nil {
		return fr.ctx.Invoke(site, recv, args)
	}
	return ip.Call(fr.ctx, site.Callee, recv, args)
}
