package interp_test

import (
	"io"
	"testing"

	"commute"
	"commute/internal/apps/src"
	"commute/internal/frontend/types"
	"commute/internal/interp"
)

// TestClassLayoutAgreesWithFieldSlot pins the exported layout accessor
// to the slot resolution the interpreter actually executes with: every
// (class, declClass, field) triple must resolve to the same slot both
// ways, slots must be dense 0..n-1, and the slot count must match the
// allocated object size.
func TestClassLayoutAgreesWithFieldSlot(t *testing.T) {
	for _, app := range []struct{ name, source string }{
		{"barneshut", src.BarnesHut},
		{"water", src.Water},
		{"graph", src.Graph},
	} {
		sys, err := commute.Load(app.name, app.source)
		if err != nil {
			t.Fatalf("%s: %v", app.name, err)
		}
		ip, err := sys.RunSerial(io.Discard)
		if err != nil {
			t.Fatalf("%s: run: %v", app.name, err)
		}
		for _, cl := range sys.Prog.ClassList {
			fields := interp.ClassLayout(sys.Prog, cl)
			if want := interp.ClassSlotCount(sys.Prog, cl); len(fields) != want {
				t.Fatalf("%s: class %s: layout has %d fields, slot count is %d",
					app.name, cl.Name, len(fields), want)
			}
			seen := make(map[int]bool)
			for i, f := range fields {
				if f.Slot != i {
					t.Errorf("%s: class %s field %s: layout order gives index %d but slot %d",
						app.name, cl.Name, f.Name, i, f.Slot)
				}
				if seen[f.Slot] {
					t.Errorf("%s: class %s: duplicate slot %d", app.name, cl.Name, f.Slot)
				}
				seen[f.Slot] = true
				if got := ip.FieldSlot(cl, f.DeclClass, f.Name); got != f.Slot {
					t.Errorf("%s: class %s field %s.%s: ClassLayout says slot %d, FieldSlot says %d",
						app.name, cl.Name, f.DeclClass, f.Name, f.Slot, got)
				}
				if f.Type == nil {
					t.Errorf("%s: class %s field %s: nil type", app.name, cl.Name, f.Name)
				}
			}
			// Base-class fields must come first (the layout invariant the
			// native backend's embedded structs rely on).
			if cl.Base != nil {
				baseN := interp.ClassSlotCount(sys.Prog, cl.Base)
				for _, f := range fields[:baseN] {
					if f.DeclClass == cl.Name {
						t.Errorf("%s: class %s: own field %s occupies base slot %d",
							app.name, cl.Name, f.Name, f.Slot)
					}
				}
			}
		}
		for _, m := range sys.Prog.Methods {
			frame := interp.MethodFrame(sys.Prog, m)
			if len(frame) < len(m.Params) {
				t.Fatalf("%s: %s: frame has %d slots, fewer than %d params",
					app.name, m.FullName(), len(frame), len(m.Params))
			}
			for i, p := range m.Params {
				if frame[i].Name != p.Name || !frame[i].Param {
					t.Errorf("%s: %s: frame slot %d = %+v, want param %s",
						app.name, m.FullName(), i, frame[i], p.Name)
				}
				if !types.Equal(frame[i].Type, p.Type) {
					t.Errorf("%s: %s: param %s frame type %v != declared %v",
						app.name, m.FullName(), p.Name, frame[i].Type, p.Type)
				}
			}
			for _, v := range frame[len(m.Params):] {
				if v.Param {
					t.Errorf("%s: %s: local %s marked as param", app.name, m.FullName(), v.Name)
				}
			}
		}
	}
}
