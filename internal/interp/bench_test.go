package interp_test

import (
	"testing"

	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
	"commute/internal/interp"
)

// benchProg compiles a source string and returns the checked program.
func benchProg(b *testing.B, source string) *types.Program {
	b.Helper()
	f, err := parser.Parse("bench.mc", source)
	if err != nil {
		b.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		b.Fatalf("check: %v", err)
	}
	return prog
}

const identBenchSrc = `
class bench {
public:
  int acc;
  int spin(int n);
};

int bench::spin(int n) {
  int i;
  int a;
  int b;
  int c;
  a = 1;
  b = 2;
  c = 0;
  for (i = 0; i < n; i++) {
    c = c + a;
    a = b - c;
    b = c + i;
  }
  return c;
}

bench B;

void main() {
  B.spin(10);
}
`

// BenchmarkIdentAccess measures the steady-state local-variable path:
// the loop body is nothing but ident reads and writes, so ns/op tracks
// the cost of frame-slot access (previously a map[string]Value lookup
// per access).
func BenchmarkIdentAccess(b *testing.B) {
	prog := benchProg(b, identBenchSrc)
	ip := interp.New(prog, nil)
	m := prog.MethodByFullName("bench::spin")
	if m == nil {
		b.Fatal("bench::spin not found")
	}
	recv := ip.Globals["B"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := ip.NewCtx()
		if _, err := ip.Call(ctx, m, recv, []interp.Value{int64(1000)}); err != nil {
			b.Fatal(err)
		}
	}
}

const fieldBenchSrc = `
class point {
public:
  int x;
  int y;
  int z;
  void jiggle(int n);
};

void point::jiggle(int n) {
  int i;
  for (i = 0; i < n; i++) {
    x = x + 1;
    y = y + x;
    z = z + y;
  }
}

point P;

void main() {
  P.jiggle(10);
}
`

// BenchmarkFieldAccess measures the steady-state field path: implicit
// this-field reads and writes, so ns/op tracks the cost of the static
// object-slot offset (previously a string concatenation plus two map
// lookups per access in layout.slot).
func BenchmarkFieldAccess(b *testing.B) {
	prog := benchProg(b, fieldBenchSrc)
	ip := interp.New(prog, nil)
	m := prog.MethodByFullName("point::jiggle")
	if m == nil {
		b.Fatal("point::jiggle not found")
	}
	recv := ip.Globals["P"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := ip.NewCtx()
		if _, err := ip.Call(ctx, m, recv, []interp.Value{int64(1000)}); err != nil {
			b.Fatal(err)
		}
	}
}
