package interp_test

import (
	"testing"

	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
	"commute/internal/interp"
)

// benchProg compiles a source string and returns the checked program.
func benchProg(tb testing.TB, source string) *types.Program {
	tb.Helper()
	f, err := parser.Parse("bench.mc", source)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		tb.Fatalf("check: %v", err)
	}
	return prog
}

// benchEngines enumerates both execution engines so every micro
// benchmark reports the walk/compiled pair side by side.
var benchEngines = []struct {
	name string
	eng  interp.Engine
}{
	{"compiled", interp.EngineCompiled},
	{"walk", interp.EngineWalk},
}

// benchCall measures repeated calls of method full on a fresh program
// instance per engine.
func benchCall(b *testing.B, source, full, recvGlobal string) {
	prog := benchProg(b, source)
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			ip := interp.NewEngine(prog, nil, e.eng)
			m := prog.MethodByFullName(full)
			if m == nil {
				b.Fatalf("%s not found", full)
			}
			recv := ip.Globals[recvGlobal]
			ctx := ip.NewCtx()
			args := []interp.Value{interp.IntValue(1000)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ip.Call(ctx, m, recv, args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

const identBenchSrc = `
class bench {
public:
  int acc;
  int spin(int n);
};

int bench::spin(int n) {
  int i;
  int a;
  int b;
  int c;
  a = 1;
  b = 2;
  c = 0;
  for (i = 0; i < n; i++) {
    c = c + a;
    a = b - c;
    b = c + i;
  }
  return c;
}

bench B;

void main() {
  B.spin(10);
}
`

// BenchmarkIdentAccess measures the steady-state local-variable path:
// the loop body is nothing but ident reads and writes, so ns/op tracks
// the cost of frame-slot access (previously a map[string]Value lookup
// per access) and, under the compiled engine, of the pre-lowered
// closure tree versus the per-node AST type switch.
func BenchmarkIdentAccess(b *testing.B) {
	benchCall(b, identBenchSrc, "bench::spin", "B")
}

const fieldBenchSrc = `
class point {
public:
  int x;
  int y;
  int z;
  void jiggle(int n);
};

void point::jiggle(int n) {
  int i;
  for (i = 0; i < n; i++) {
    x = x + 1;
    y = y + x;
    z = z + y;
  }
}

point P;

void main() {
  P.jiggle(10);
}
`

// BenchmarkFieldAccess measures the steady-state field path: implicit
// this-field reads and writes, so ns/op tracks the cost of the static
// object-slot offset (previously a string concatenation plus two map
// lookups per access in layout.slot).
func BenchmarkFieldAccess(b *testing.B) {
	benchCall(b, fieldBenchSrc, "point::jiggle", "P")
}

const arithBenchSrc = `
class acc {
public:
  double sum;
  double step(int n);
};

double acc::step(int n) {
  int i;
  double x;
  double y;
  x = 0.5;
  y = 1.25;
  for (i = 0; i < n; i++) {
    x = x * 1.0000001 + y;
    y = y * 0.5 + x * 0.25;
    sum = sum + x - y;
  }
  return sum;
}

acc A;

void main() {
  A.step(10);
}
`

// BenchmarkFloatArith measures double-precision arithmetic in a tight
// loop. With the tagged Value representation the float results live in
// the value's number word, so the compiled engine's loop body performs
// no heap allocation at all (see TestCompiledFloatArithZeroAlloc).
func BenchmarkFloatArith(b *testing.B) {
	benchCall(b, arithBenchSrc, "acc::step", "A")
}

// TestCompiledFloatArithZeroAlloc pins the headline property of the
// unboxed representation: steady-state float arithmetic under the
// compiled engine allocates nothing. The first call warms the frame
// pool; after that a full call — frame, loop, arithmetic, return —
// must run at allocs/op = 0.
func TestCompiledFloatArithZeroAlloc(t *testing.T) {
	prog := benchProg(t, arithBenchSrc)
	ip := interp.NewEngine(prog, nil, interp.EngineCompiled)
	m := prog.MethodByFullName("acc::step")
	if m == nil {
		t.Fatal("acc::step not found")
	}
	recv := ip.Globals["A"]
	ctx := ip.NewCtx()
	args := []interp.Value{interp.IntValue(200)}
	if _, err := ip.Call(ctx, m, recv, args); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ip.Call(ctx, m, recv, args); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("compiled float arithmetic allocates %v allocs/op, want 0", allocs)
	}
}
