package interp

// Closure compilation: each resolved method body is lowered once per
// program to a tree of closures, so steady-state execution never
// type-switches on AST nodes. The lowering happens inside
// buildResolution, under the same lock and cache as slot resolution.
//
// Cost parity with the tree walker is a hard requirement: the tracer
// charges cost units through Ctx.Charge and attributes them to compute
// or critical segments at dispatcher-hook boundaries (Ctx.Invoke /
// Ctx.ForLoop calls), so the DASH simulator sees identical traces from
// both engines only if the totals charged between consecutive hook
// calls match. No hook can fire inside a call-free expression subtree,
// so the compiler statically sums the walker's per-node charges over
// every such subtree and charges the sum once ("sealing"). Subtrees
// whose charge depends on runtime control flow (short-circuit
// operators) or that contain hook boundaries (calls) charge themselves
// piecewise in walker order. Statement counting (Ctx.step) is never
// coalesced: MaxSteps budgets and Interrupt polling behave identically
// under both engines.

import (
	"math"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
	"commute/internal/frontend/types"
)

// exprFn evaluates an expression against a frame.
type exprFn func(fr *Frame) (Value, error)

// stmtFn executes a statement against a frame; flowReturn means a
// return statement executed and the value is in fr.ret.
type stmtFn func(fr *Frame) (flow, error)

// storeFn writes a value to a compiled lvalue.
type storeFn func(fr *Frame, v Value) error

type flow uint8

const (
	flowNext flow = iota
	flowReturn
)

// compiledMethod is the closure-compiled form of one method body.
type compiledMethod struct {
	body stmtFn
}

type compiler struct {
	prog *types.Program
	res  *resolution
	// mon selects the monitored load/store kernels: field and element
	// accesses route through fr.ctx.Mon (guaranteed non-nil when a
	// monitored body runs — Call and RunLoopIteration select the
	// monitored tables only under a non-nil Mon). The unmonitored pass
	// (mon=false) emits exactly the closures it always did: zero added
	// branches on the hot path. Cost sealing is identical in both
	// passes, so traces stay bit-for-bit comparable.
	mon bool
	// loops receives compiled loop bodies for RunLoopIteration
	// (res.loopBodies or res.loopBodiesMon, per pass).
	loops map[*ast.ForStmt]stmtFn
}

func (c *compiler) compileMethod(m *types.Method) *compiledMethod {
	if m.Def == nil {
		return nil
	}
	ms := c.res.methods[m.ID]
	return &compiledMethod{body: c.compileStmt(m.Def.Body, ms)}
}

// seal wraps a non-self-charging closure with its subtree's total cost.
func seal(fn exprFn, cost int64) exprFn {
	if cost == 0 {
		return fn
	}
	return func(fr *Frame) (Value, error) {
		fr.ctx.charge(cost)
		return fn(fr)
	}
}

// sealedExpr compiles e to a self-contained closure that charges its
// own subtree cost.
func (c *compiler) sealedExpr(e ast.Expr) exprFn {
	fn, cost, dyn := c.compileExpr(e)
	if dyn {
		return fn
	}
	return seal(fn, cost)
}

// compileExpr lowers an expression. The returned closure either
// charges nothing itself (dyn=false; the caller accounts the returned
// static cost, which equals the walker's total charge for the subtree)
// or is fully self-charging (dyn=true; cost is zero).
func (c *compiler) compileExpr(e ast.Expr) (exprFn, int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		v := IntValue(x.Value)
		return func(fr *Frame) (Value, error) { return v, nil }, costExpr, false
	case *ast.FloatLit:
		v := FloatValue(x.Value)
		return func(fr *Frame) (Value, error) { return v, nil }, costExpr, false
	case *ast.BoolLit:
		v := BoolValue(x.Value)
		return func(fr *Frame) (Value, error) { return v, nil }, costExpr, false
	case *ast.NullLit:
		return func(fr *Frame) (Value, error) { return Value{}, nil }, costExpr, false
	case *ast.StringLit:
		v := StringValue(x.Value)
		return func(fr *Frame) (Value, error) { return v, nil }, costExpr, false
	case *ast.ThisExpr:
		return func(fr *Frame) (Value, error) { return ObjectValue(fr.this), nil }, costExpr, false

	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal, ast.SymParam:
			slot := x.Slot
			return func(fr *Frame) (Value, error) { return fr.vars[slot], nil }, costExpr, false
		case ast.SymConst:
			v := c.res.consts[x.Slot]
			return func(fr *Frame) (Value, error) { return v, nil }, costExpr, false
		case ast.SymGlobal:
			slot := x.Slot
			return func(fr *Frame) (Value, error) {
				return ObjectValue(fr.ctx.IP.globals[slot]), nil
			}, costExpr, false
		case ast.SymField:
			slot := x.Slot
			name := x.Name
			if c.mon {
				return func(fr *Frame) (Value, error) {
					if fr.this == nil {
						return Value{}, rtErrf(errFieldNoRecv, name)
					}
					return fr.ctx.Mon.LoadField(fr.this, int(slot)), nil
				}, costExpr, false
			}
			return func(fr *Frame) (Value, error) {
				if fr.this == nil {
					return Value{}, rtErrf(errFieldNoRecv, name)
				}
				return fr.this.Slots[slot], nil
			}, costExpr, false
		}
		return c.errExpr("unresolved identifier %s at %s", x.Name, x.Pos())

	case *ast.FieldAccess:
		slot := x.Slot
		if c.mon {
			return c.unary1fr(x.X, func(fr *Frame, v Value) (Value, error) {
				if v.kind != KObject {
					if v.kind == KNull {
						return Value{}, rtErrf(errNullDeref, x.Pos())
					}
					return Value{}, rtErrf(errFieldNonObj, x.Pos())
				}
				return fr.ctx.Mon.LoadField(v.ref.(*Object), int(slot)), nil
			})
		}
		return c.unary1(x.X, func(v Value) (Value, error) {
			if v.kind != KObject {
				if v.kind == KNull {
					return Value{}, rtErrf(errNullDeref, x.Pos())
				}
				return Value{}, rtErrf(errFieldNonObj, x.Pos())
			}
			return v.ref.(*Object).Slots[slot], nil
		})

	case *ast.IndexExpr:
		if c.mon {
			return c.compileIndexMon(x)
		}
		af, ac, ad := c.compileExpr(x.X)
		if jv, jc2, jok := c.leaf(x.Index); jok && !ad {
			return func(fr *Frame) (Value, error) {
				arrV, err := af(fr)
				if err != nil {
					return Value{}, err
				}
				return indexLoad(arrV, jv(fr), x)
			}, costExpr + ac + jc2, false
		}
		jf, jc, jd := c.compileExpr(x.Index)
		if !ad && !jd {
			return func(fr *Frame) (Value, error) {
				arrV, err := af(fr)
				if err != nil {
					return Value{}, err
				}
				idxV, err := jf(fr)
				if err != nil {
					return Value{}, err
				}
				return indexLoad(arrV, idxV, x)
			}, costExpr + ac + jc, false
		}
		as, js := sealIf(af, ac, ad), sealIf(jf, jc, jd)
		return func(fr *Frame) (Value, error) {
			fr.ctx.charge(costExpr)
			arrV, err := as(fr)
			if err != nil {
				return Value{}, err
			}
			idxV, err := js(fr)
			if err != nil {
				return Value{}, err
			}
			return indexLoad(arrV, idxV, x)
		}, 0, true

	case *ast.CallExpr:
		return c.compileCall(x)

	case *ast.NewExpr:
		cl := c.res.classList[x.ClassIdx]
		return func(fr *Frame) (Value, error) {
			return ObjectValue(fr.ctx.IP.NewObject(cl)), nil
		}, costExpr + costAlloc, false

	case *ast.CastExpr:
		return c.unary1(x.X, func(v Value) (Value, error) {
			return castValueClass(c.res.classList[x.ClassIdx], v, x)
		})

	case *ast.Unary:
		return c.unary1(x.X, func(v Value) (Value, error) {
			return applyUnary(x, v)
		})

	case *ast.Binary:
		return c.compileBinary(x)

	case *ast.Assign:
		return c.compileAssign(x)
	}
	return c.errExpr("unsupported expression at %s", e.Pos())
}

// leaf compiles an expression whose evaluation can neither fail nor
// charge dynamically — literals, constants, this, local slots, and
// global reads — to an infallible value producer. Fusing leaves into
// the parent operator's closure removes an indirect call and an error
// check per operand on the hottest paths. Field reads are excluded:
// they can fail (nil receiver), so they keep the exprFn shape.
func (c *compiler) leaf(e ast.Expr) (func(fr *Frame) Value, int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		v := IntValue(x.Value)
		return func(fr *Frame) Value { return v }, costExpr, true
	case *ast.FloatLit:
		v := FloatValue(x.Value)
		return func(fr *Frame) Value { return v }, costExpr, true
	case *ast.BoolLit:
		v := BoolValue(x.Value)
		return func(fr *Frame) Value { return v }, costExpr, true
	case *ast.NullLit:
		return func(fr *Frame) Value { return Value{} }, costExpr, true
	case *ast.StringLit:
		v := StringValue(x.Value)
		return func(fr *Frame) Value { return v }, costExpr, true
	case *ast.ThisExpr:
		return func(fr *Frame) Value { return ObjectValue(fr.this) }, costExpr, true
	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal, ast.SymParam:
			slot := x.Slot
			return func(fr *Frame) Value { return fr.vars[slot] }, costExpr, true
		case ast.SymConst:
			v := c.res.consts[x.Slot]
			return func(fr *Frame) Value { return v }, costExpr, true
		case ast.SymGlobal:
			slot := x.Slot
			return func(fr *Frame) Value {
				return ObjectValue(fr.ctx.IP.globals[slot])
			}, costExpr, true
		}
	}
	return nil, 0, false
}

// unary1 composes a single compiled child with a pure kernel.
func (c *compiler) unary1(child ast.Expr, k func(Value) (Value, error)) (exprFn, int64, bool) {
	xf, xc, xd := c.compileExpr(child)
	if !xd {
		return func(fr *Frame) (Value, error) {
			v, err := xf(fr)
			if err != nil {
				return Value{}, err
			}
			return k(v)
		}, costExpr + xc, false
	}
	return func(fr *Frame) (Value, error) {
		fr.ctx.charge(costExpr)
		v, err := xf(fr)
		if err != nil {
			return Value{}, err
		}
		return k(v)
	}, 0, true
}

// unary1fr is unary1 for kernels that need the frame (the monitored
// field-load kernel reads fr.ctx.Mon). Same fusion shape, same costs.
func (c *compiler) unary1fr(child ast.Expr, k func(fr *Frame, v Value) (Value, error)) (exprFn, int64, bool) {
	xf, xc, xd := c.compileExpr(child)
	if !xd {
		return func(fr *Frame) (Value, error) {
			v, err := xf(fr)
			if err != nil {
				return Value{}, err
			}
			return k(fr, v)
		}, costExpr + xc, false
	}
	return func(fr *Frame) (Value, error) {
		fr.ctx.charge(costExpr)
		v, err := xf(fr)
		if err != nil {
			return Value{}, err
		}
		return k(fr, v)
	}, 0, true
}

// compileIndexMon mirrors the three fused IndexExpr load forms with the
// element read routed through the monitor (same fusion, same costs).
func (c *compiler) compileIndexMon(x *ast.IndexExpr) (exprFn, int64, bool) {
	af, ac, ad := c.compileExpr(x.X)
	if jv, jc2, jok := c.leaf(x.Index); jok && !ad {
		return func(fr *Frame) (Value, error) {
			arrV, err := af(fr)
			if err != nil {
				return Value{}, err
			}
			return indexLoadMon(fr.ctx.Mon, arrV, jv(fr), x)
		}, costExpr + ac + jc2, false
	}
	jf, jc, jd := c.compileExpr(x.Index)
	if !ad && !jd {
		return func(fr *Frame) (Value, error) {
			arrV, err := af(fr)
			if err != nil {
				return Value{}, err
			}
			idxV, err := jf(fr)
			if err != nil {
				return Value{}, err
			}
			return indexLoadMon(fr.ctx.Mon, arrV, idxV, x)
		}, costExpr + ac + jc, false
	}
	as, js := sealIf(af, ac, ad), sealIf(jf, jc, jd)
	return func(fr *Frame) (Value, error) {
		fr.ctx.charge(costExpr)
		arrV, err := as(fr)
		if err != nil {
			return Value{}, err
		}
		idxV, err := js(fr)
		if err != nil {
			return Value{}, err
		}
		return indexLoadMon(fr.ctx.Mon, arrV, idxV, x)
	}, 0, true
}

func (c *compiler) errExpr(format string, args ...any) (exprFn, int64, bool) {
	err := rtErrf(format, args...)
	return func(fr *Frame) (Value, error) { return Value{}, err }, costExpr, false
}

// sealIf seals a closure when it is not already self-charging.
func sealIf(fn exprFn, cost int64, dyn bool) exprFn {
	if dyn {
		return fn
	}
	return seal(fn, cost)
}

func (c *compiler) compileBinary(x *ast.Binary) (exprFn, int64, bool) {
	// Short-circuit operators are inherently dynamic: the right operand
	// charges only when it evaluates, exactly as in the walker.
	if x.Op == token.AND || x.Op == token.OR {
		xs := c.sealedExpr(x.X)
		ys := c.sealedExpr(x.Y)
		isAnd := x.Op == token.AND
		return func(fr *Frame) (Value, error) {
			fr.ctx.charge(costExpr)
			l, err := xs(fr)
			if err != nil {
				return Value{}, err
			}
			lb, err := truthy(l)
			if err != nil {
				return Value{}, err
			}
			if isAnd && !lb {
				return BoolValue(false), nil
			}
			if !isAnd && lb {
				return BoolValue(true), nil
			}
			r, err := ys(fr)
			if err != nil {
				return Value{}, err
			}
			return truthyVal(r)
		}, 0, true
	}

	op := binOpFn(x)
	// Leaf operands fuse into the operator closure. Evaluation order is
	// preserved: the left operand is always materialized before any part
	// of the right evaluates (the right side may contain an assignment
	// that mutates what the left side reads).
	lv, lc2, lok := c.leaf(x.X)
	rv, rc2, rok := c.leaf(x.Y)
	if lok && rok {
		return func(fr *Frame) (Value, error) {
			l := lv(fr)
			return op(l, rv(fr))
		}, costExpr + lc2 + rc2, false
	}
	xf, xc, xd := c.compileExpr(x.X)
	if rok && !xd {
		return func(fr *Frame) (Value, error) {
			l, err := xf(fr)
			if err != nil {
				return Value{}, err
			}
			return op(l, rv(fr))
		}, costExpr + xc + rc2, false
	}
	yf, yc, yd := c.compileExpr(x.Y)
	if lok && !yd {
		return func(fr *Frame) (Value, error) {
			l := lv(fr)
			r, err := yf(fr)
			if err != nil {
				return Value{}, err
			}
			return op(l, r)
		}, costExpr + lc2 + yc, false
	}
	if !xd && !yd {
		return func(fr *Frame) (Value, error) {
			l, err := xf(fr)
			if err != nil {
				return Value{}, err
			}
			r, err := yf(fr)
			if err != nil {
				return Value{}, err
			}
			return op(l, r)
		}, costExpr + xc + yc, false
	}
	xs, ys := sealIf(xf, xc, xd), sealIf(yf, yc, yd)
	return func(fr *Frame) (Value, error) {
		fr.ctx.charge(costExpr)
		l, err := xs(fr)
		if err != nil {
			return Value{}, err
		}
		r, err := ys(fr)
		if err != nil {
			return Value{}, err
		}
		return op(l, r)
	}, 0, true
}

// binOpFn specializes the strict binary operators into per-operator
// closures; the hot arithmetic/comparison operators avoid any runtime
// operator dispatch. Semantics (including every error message) match
// applyBinary, which handles the remaining operators.
func binOpFn(x *ast.Binary) func(l, r Value) (Value, error) {
	switch x.Op {
	case token.PLUS:
		return func(l, r Value) (Value, error) {
			if l.kind == KInt && r.kind == KInt {
				return IntValue(int64(l.num) + int64(r.num)), nil
			}
			lf, lok := asFloat(l)
			rf, rok := asFloat(r)
			if !lok || !rok {
				return Value{}, rtErrf(errNonNumbers, x.Pos())
			}
			return FloatValue(lf + rf), nil
		}
	case token.MINUS:
		return func(l, r Value) (Value, error) {
			if l.kind == KInt && r.kind == KInt {
				return IntValue(int64(l.num) - int64(r.num)), nil
			}
			lf, lok := asFloat(l)
			rf, rok := asFloat(r)
			if !lok || !rok {
				return Value{}, rtErrf(errNonNumbers, x.Pos())
			}
			return FloatValue(lf - rf), nil
		}
	case token.STAR:
		return func(l, r Value) (Value, error) {
			if l.kind == KInt && r.kind == KInt {
				return IntValue(int64(l.num) * int64(r.num)), nil
			}
			lf, lok := asFloat(l)
			rf, rok := asFloat(r)
			if !lok || !rok {
				return Value{}, rtErrf(errNonNumbers, x.Pos())
			}
			return FloatValue(lf * rf), nil
		}
	case token.SLASH:
		return func(l, r Value) (Value, error) {
			if l.kind == KInt && r.kind == KInt {
				if r.num == 0 {
					return Value{}, rtErrf(errDivZero, x.Pos())
				}
				return IntValue(int64(l.num) / int64(r.num)), nil
			}
			lf, lok := asFloat(l)
			rf, rok := asFloat(r)
			if !lok || !rok {
				return Value{}, rtErrf(errNonNumbers, x.Pos())
			}
			return FloatValue(lf / rf), nil
		}
	case token.LT:
		return func(l, r Value) (Value, error) {
			if l.kind == KInt && r.kind == KInt {
				return BoolValue(int64(l.num) < int64(r.num)), nil
			}
			lf, lok := asFloat(l)
			rf, rok := asFloat(r)
			if !lok || !rok {
				return Value{}, rtErrf(errNonNumbers, x.Pos())
			}
			return BoolValue(lf < rf), nil
		}
	case token.LEQ:
		return func(l, r Value) (Value, error) {
			if l.kind == KInt && r.kind == KInt {
				return BoolValue(int64(l.num) <= int64(r.num)), nil
			}
			lf, lok := asFloat(l)
			rf, rok := asFloat(r)
			if !lok || !rok {
				return Value{}, rtErrf(errNonNumbers, x.Pos())
			}
			return BoolValue(lf <= rf), nil
		}
	case token.GT:
		return func(l, r Value) (Value, error) {
			if l.kind == KInt && r.kind == KInt {
				return BoolValue(int64(l.num) > int64(r.num)), nil
			}
			lf, lok := asFloat(l)
			rf, rok := asFloat(r)
			if !lok || !rok {
				return Value{}, rtErrf(errNonNumbers, x.Pos())
			}
			return BoolValue(lf > rf), nil
		}
	case token.GEQ:
		return func(l, r Value) (Value, error) {
			if l.kind == KInt && r.kind == KInt {
				return BoolValue(int64(l.num) >= int64(r.num)), nil
			}
			lf, lok := asFloat(l)
			rf, rok := asFloat(r)
			if !lok || !rok {
				return Value{}, rtErrf(errNonNumbers, x.Pos())
			}
			return BoolValue(lf >= rf), nil
		}
	}
	// PERCENT, EQ, NEQ, and malformed operators share the walker's
	// kernel directly.
	return func(l, r Value) (Value, error) { return applyBinary(x, l, r) }
}

// castValueClass is castValue with the target class pre-resolved.
func castValueClass(target *types.Class, v Value, x *ast.CastExpr) (Value, error) {
	if v.kind == KNull {
		return Value{}, nil
	}
	if v.kind != KObject {
		return Value{}, rtErrf(errCastNonObj, x.Pos())
	}
	if v.ref.(*Object).Class.InheritsFrom(target) {
		return v, nil
	}
	return Value{}, nil
}

func (c *compiler) compileAssign(x *ast.Assign) (exprFn, int64, bool) {
	rf, rc, rd := c.compileExpr(x.RHS)
	compound := x.Op != token.ASSIGN

	// Plain assignment into a local or parameter slot fuses the store
	// into the expression closure: no storeFn indirection on the single
	// hottest statement shape.
	if id, ok := x.LHS.(*ast.Ident); ok && !compound && !rd &&
		(id.Sym == ast.SymLocal || id.Sym == ast.SymParam) {
		slot := id.Slot
		co := id.Coerce
		if co == ast.CoNone {
			return func(fr *Frame) (Value, error) {
				v, err := rf(fr)
				if err != nil {
					return Value{}, err
				}
				fr.vars[slot] = v
				return v, nil
			}, costExpr + rc, false
		}
		return func(fr *Frame) (Value, error) {
			v, err := rf(fr)
			if err != nil {
				return Value{}, err
			}
			fr.vars[slot] = coerceKind(co, v)
			return v, nil
		}, costExpr + rc, false
	}

	// Same fusion for implicit this-field stores.
	if id, ok := x.LHS.(*ast.Ident); ok && !compound && !rd && id.Sym == ast.SymField {
		slot := id.Slot
		co := id.Coerce
		name := id.Name
		if c.mon {
			return func(fr *Frame) (Value, error) {
				v, err := rf(fr)
				if err != nil {
					return Value{}, err
				}
				if fr.this == nil {
					return Value{}, rtErrf(errFieldNoRecvWr, name)
				}
				fr.ctx.Mon.StoreField(fr.this, int(slot), coerceKind(co, v))
				return v, nil
			}, costExpr + rc, false
		}
		return func(fr *Frame) (Value, error) {
			v, err := rf(fr)
			if err != nil {
				return Value{}, err
			}
			if fr.this == nil {
				return Value{}, rtErrf(errFieldNoRecvWr, name)
			}
			fr.this.Slots[slot] = coerceKind(co, v)
			return v, nil
		}, costExpr + rc, false
	}
	var lf exprFn
	var lc int64
	var ld bool
	if compound {
		lf, lc, ld = c.compileExpr(x.LHS)
	}
	sf, sc, sd := c.compileStore(x.LHS)

	if !rd && !ld && !sd {
		return func(fr *Frame) (Value, error) {
			rhs, err := rf(fr)
			if err != nil {
				return Value{}, err
			}
			if compound {
				old, err := lf(fr)
				if err != nil {
					return Value{}, err
				}
				rhs, err = applyCompound(x, old, rhs)
				if err != nil {
					return Value{}, err
				}
			}
			if err := sf(fr, rhs); err != nil {
				return Value{}, err
			}
			return rhs, nil
		}, costExpr + rc + lc + sc, false
	}

	rs := sealIf(rf, rc, rd)
	var ls exprFn
	if compound {
		ls = sealIf(lf, lc, ld)
	}
	ss := sealStore(sf, sc, sd)
	return func(fr *Frame) (Value, error) {
		fr.ctx.charge(costExpr)
		rhs, err := rs(fr)
		if err != nil {
			return Value{}, err
		}
		if compound {
			old, err := ls(fr)
			if err != nil {
				return Value{}, err
			}
			rhs, err = applyCompound(x, old, rhs)
			if err != nil {
				return Value{}, err
			}
		}
		if err := ss(fr, rhs); err != nil {
			return Value{}, err
		}
		return rhs, nil
	}, 0, true
}

func sealStore(fn storeFn, cost int64, dyn bool) storeFn {
	if dyn || cost == 0 {
		return fn
	}
	return func(fr *Frame, v Value) error {
		fr.ctx.charge(cost)
		return fn(fr, v)
	}
}

// compileStore lowers an lvalue to a store closure. The walker charges
// only for the lvalue's subexpressions (the target node itself is
// free), and the same convention applies here.
func (c *compiler) compileStore(lhs ast.Expr) (storeFn, int64, bool) {
	switch x := lhs.(type) {
	case *ast.Ident:
		switch x.Sym {
		case ast.SymLocal, ast.SymParam:
			slot := x.Slot
			co := x.Coerce
			if co == ast.CoNone {
				return func(fr *Frame, v Value) error {
					fr.vars[slot] = v
					return nil
				}, 0, false
			}
			return func(fr *Frame, v Value) error {
				fr.vars[slot] = coerceKind(co, v)
				return nil
			}, 0, false
		case ast.SymField:
			slot := x.Slot
			co := x.Coerce
			name := x.Name
			if c.mon {
				return func(fr *Frame, v Value) error {
					if fr.this == nil {
						return rtErrf(errFieldNoRecvWr, name)
					}
					fr.ctx.Mon.StoreField(fr.this, int(slot), coerceKind(co, v))
					return nil
				}, 0, false
			}
			return func(fr *Frame, v Value) error {
				if fr.this == nil {
					return rtErrf(errFieldNoRecvWr, name)
				}
				fr.this.Slots[slot] = coerceKind(co, v)
				return nil
			}, 0, false
		}
		err := rtErrf("cannot assign to %s", x.Name)
		return func(fr *Frame, v Value) error { return err }, 0, false

	case *ast.FieldAccess:
		xf, xc, xd := c.compileExpr(x.X)
		slot := x.Slot
		co := x.Coerce
		if xd {
			xf = sealIf(xf, xc, xd)
			xc = 0
		}
		if c.mon {
			return func(fr *Frame, v Value) error {
				base, err := xf(fr)
				if err != nil {
					return err
				}
				if base.kind != KObject {
					return rtErrf(errFieldStoreObj, x.Pos())
				}
				fr.ctx.Mon.StoreField(base.ref.(*Object), int(slot), coerceKind(co, v))
				return nil
			}, xc, xd
		}
		return func(fr *Frame, v Value) error {
			base, err := xf(fr)
			if err != nil {
				return err
			}
			if base.kind != KObject {
				return rtErrf(errFieldStoreObj, x.Pos())
			}
			base.ref.(*Object).Slots[slot] = coerceKind(co, v)
			return nil
		}, xc, xd

	case *ast.IndexExpr:
		af, ac, ad := c.compileExpr(x.X)
		jf, jc, jd := c.compileExpr(x.Index)
		dyn := ad || jd
		if dyn {
			af, jf = sealIf(af, ac, ad), sealIf(jf, jc, jd)
			ac, jc = 0, 0
		}
		if c.mon {
			return func(fr *Frame, v Value) error {
				arrV, err := af(fr)
				if err != nil {
					return err
				}
				idxV, err := jf(fr)
				if err != nil {
					return err
				}
				return indexStoreMon(fr.ctx.Mon, arrV, idxV, v, x)
			}, ac + jc, dyn
		}
		return func(fr *Frame, v Value) error {
			arrV, err := af(fr)
			if err != nil {
				return err
			}
			idxV, err := jf(fr)
			if err != nil {
				return err
			}
			return indexStore(arrV, idxV, v, x)
		}, ac + jc, dyn
	}
	err := rtErrf("unsupported assignment target at %s", lhs.Pos())
	return func(fr *Frame, v Value) error { return err }, 0, false
}

// builtin1 maps single-argument math builtins to their kernels.
func builtin1(name string) (func(float64) float64, bool) {
	switch name {
	case "sqrt":
		return math.Sqrt, true
	case "fabs":
		return math.Abs, true
	case "exp":
		return math.Exp, true
	case "log":
		return math.Log, true
	case "floor":
		return math.Floor, true
	case "sin":
		return math.Sin, true
	case "cos":
		return math.Cos, true
	}
	return nil, false
}

func (c *compiler) compileCall(x *ast.CallExpr) (exprFn, int64, bool) {
	if x.Builtin {
		// Math builtins with statically-charged arguments fold into the
		// enclosing subtree: builtins never reach a dispatcher hook, so
		// their whole cost (args + costBuiltin) is static.
		if mf, ok := builtin1(x.Method); ok && len(x.Args) == 1 {
			af, ac, ad := c.compileExpr(x.Args[0])
			if !ad {
				return func(fr *Frame) (Value, error) {
					v, err := af(fr)
					if err != nil {
						return Value{}, err
					}
					f, _ := asFloat(v)
					return FloatValue(mf(f)), nil
				}, costExpr + ac + costBuiltin, false
			}
			return func(fr *Frame) (Value, error) {
				fr.ctx.charge(costExpr)
				v, err := af(fr)
				if err != nil {
					return Value{}, err
				}
				fr.ctx.charge(costBuiltin)
				f, _ := asFloat(v)
				return FloatValue(mf(f)), nil
			}, 0, true
		}
		if x.Method == "pow" && len(x.Args) == 2 {
			af, ac, ad := c.compileExpr(x.Args[0])
			bf, bc, bd := c.compileExpr(x.Args[1])
			if !ad && !bd {
				return func(fr *Frame) (Value, error) {
					v1, err := af(fr)
					if err != nil {
						return Value{}, err
					}
					v2, err := bf(fr)
					if err != nil {
						return Value{}, err
					}
					f1, _ := asFloat(v1)
					f2, _ := asFloat(v2)
					return FloatValue(math.Pow(f1, f2)), nil
				}, costExpr + ac + bc + costBuiltin, false
			}
			as, bs := sealIf(af, ac, ad), sealIf(bf, bc, bd)
			return func(fr *Frame) (Value, error) {
				fr.ctx.charge(costExpr)
				v1, err := as(fr)
				if err != nil {
					return Value{}, err
				}
				v2, err := bs(fr)
				if err != nil {
					return Value{}, err
				}
				fr.ctx.charge(costBuiltin)
				f1, _ := asFloat(v1)
				f2, _ := asFloat(v2)
				return FloatValue(math.Pow(f1, f2)), nil
			}, 0, true
		}
		// Generic builtin path (print, arity oddities, unknown names):
		// evaluate arguments into a slice and dispatch by name, exactly
		// like the walker.
		argFns := make([]exprFn, len(x.Args))
		for i, a := range x.Args {
			argFns[i] = c.sealedExpr(a)
		}
		name := x.Method
		return func(fr *Frame) (Value, error) {
			fr.ctx.charge(costExpr)
			args := make([]Value, len(argFns))
			for i, af := range argFns {
				v, err := af(fr)
				if err != nil {
					return Value{}, err
				}
				args[i] = v
			}
			fr.ctx.charge(costBuiltin)
			return callBuiltin(fr.ctx.IP, name, x, args)
		}, 0, true
	}

	site := c.prog.CallSites[x.Site]
	callee := site.Callee
	implicitRecv := x.Recv == nil && callee.Class != nil
	var recvFn exprFn
	if x.Recv != nil {
		recvFn = c.sealedExpr(x.Recv)
	}
	argFns := make([]exprFn, len(x.Args))
	for i, a := range x.Args {
		argFns[i] = c.sealedExpr(a)
	}
	n := len(argFns)
	return func(fr *Frame) (Value, error) {
		ctx := fr.ctx
		ctx.charge(costExpr)
		var recv *Object
		if recvFn != nil {
			rv, err := recvFn(fr)
			if err != nil {
				return Value{}, err
			}
			if rv.kind != KObject {
				if rv.kind == KNull {
					return Value{}, rtErrf(errCallOnNull, x.Pos())
				}
				return Value{}, rtErrf(errCallNonObj, x.Pos())
			}
			recv = rv.ref.(*Object)
		} else if implicitRecv {
			recv = fr.this
		}
		if ctx.Invoke != nil {
			// The dispatcher may capture the argument slice into a
			// spawned task closure, so it gets a fresh slice.
			args := make([]Value, n)
			for i, af := range argFns {
				v, err := af(fr)
				if err != nil {
					return Value{}, err
				}
				args[i] = v
			}
			return ctx.Invoke(site, recv, args)
		}
		var args []Value
		if n > 0 {
			args = ctx.getArgs(n)
			for i, af := range argFns {
				v, err := af(fr)
				if err != nil {
					ctx.putArgs(args)
					return Value{}, err
				}
				args[i] = v
			}
		}
		v, err := fr.ctx.IP.Call(ctx, callee, recv, args)
		if args != nil {
			ctx.putArgs(args)
		}
		return v, err
	}, 0, true
}

// compileStmt lowers a statement to a self-contained closure. Each
// statement charges costStmt plus the static cost of its call-free
// expression operands up front, then counts one step — preserving the
// walker's MaxSteps and Interrupt behavior exactly.
func (c *compiler) compileStmt(s ast.Stmt, ms *methodSlots) stmtFn {
	switch st := s.(type) {
	case *ast.Block:
		subs := make([]stmtFn, len(st.Stmts))
		for i, sub := range st.Stmts {
			subs[i] = c.compileStmt(sub, ms)
		}
		return func(fr *Frame) (flow, error) {
			fr.ctx.charge(costStmt)
			if err := fr.ctx.step(); err != nil {
				return flowNext, err
			}
			for _, sub := range subs {
				fl, err := sub(fr)
				if fl != flowNext || err != nil {
					return fl, err
				}
			}
			return flowNext, nil
		}

	case *ast.DeclStmt:
		slot := int(st.Slot)
		t := ms.types[slot]
		// Primitive zero values are constants; object/array-typed
		// declarations allocate fresh storage per execution, exactly as
		// the walker's zeroValue does.
		var zc Value
		constZero := true
		switch tt := t.(type) {
		case types.Basic:
			switch tt {
			case types.Int:
				zc = IntValue(0)
			case types.Double:
				zc = FloatValue(0)
			case types.Bool:
				zc = BoolValue(false)
			}
		case types.Pointer:
		default:
			constZero = false
		}
		if st.Init == nil {
			if constZero {
				return func(fr *Frame) (flow, error) {
					fr.ctx.charge(costStmt)
					if err := fr.ctx.step(); err != nil {
						return flowNext, err
					}
					fr.vars[slot] = zc
					return flowNext, nil
				}
			}
			return func(fr *Frame) (flow, error) {
				fr.ctx.charge(costStmt)
				if err := fr.ctx.step(); err != nil {
					return flowNext, err
				}
				fr.vars[slot] = fr.ctx.IP.zeroValue(t)
				return flowNext, nil
			}
		}
		inf, ic, id := c.compileExpr(st.Init)
		co := st.Coerce
		entry := int64(costStmt)
		if !id {
			entry += ic
		}
		return func(fr *Frame) (flow, error) {
			fr.ctx.charge(entry)
			if err := fr.ctx.step(); err != nil {
				return flowNext, err
			}
			if constZero {
				fr.vars[slot] = zc
			} else {
				fr.vars[slot] = fr.ctx.IP.zeroValue(t)
			}
			v, err := inf(fr)
			if err != nil {
				return flowNext, err
			}
			fr.vars[slot] = coerceKind(co, v)
			return flowNext, nil
		}

	case *ast.ExprStmt:
		xf, xc, xd := c.compileExpr(st.X)
		entry := int64(costStmt)
		if !xd {
			entry += xc
		}
		return func(fr *Frame) (flow, error) {
			fr.ctx.charge(entry)
			if err := fr.ctx.step(); err != nil {
				return flowNext, err
			}
			_, err := xf(fr)
			return flowNext, err
		}

	case *ast.IfStmt:
		cf, cc, cd := c.compileExpr(st.Cond)
		entry := int64(costStmt)
		if !cd {
			entry += cc
		}
		thenFn := c.compileStmt(st.Then, ms)
		var elseFn stmtFn
		if st.Else != nil {
			elseFn = c.compileStmt(st.Else, ms)
		}
		return func(fr *Frame) (flow, error) {
			fr.ctx.charge(entry)
			if err := fr.ctx.step(); err != nil {
				return flowNext, err
			}
			cv, err := cf(fr)
			if err != nil {
				return flowNext, err
			}
			b, err := truthy(cv)
			if err != nil {
				return flowNext, err
			}
			if b {
				return thenFn(fr)
			}
			if elseFn != nil {
				return elseFn(fr)
			}
			return flowNext, nil
		}

	case *ast.ForStmt:
		return c.compileFor(st, ms)

	case *ast.WhileStmt:
		condS := c.sealedExpr(st.Cond)
		bodyFn := c.compileStmt(st.Body, ms)
		return func(fr *Frame) (flow, error) {
			fr.ctx.charge(costStmt)
			if err := fr.ctx.step(); err != nil {
				return flowNext, err
			}
			for {
				cv, err := condS(fr)
				if err != nil {
					return flowNext, err
				}
				b, err := truthy(cv)
				if err != nil {
					return flowNext, err
				}
				if !b {
					return flowNext, nil
				}
				fl, err := bodyFn(fr)
				if fl != flowNext || err != nil {
					return fl, err
				}
			}
		}

	case *ast.ReturnStmt:
		if st.X == nil {
			return func(fr *Frame) (flow, error) {
				fr.ctx.charge(costStmt)
				if err := fr.ctx.step(); err != nil {
					return flowNext, err
				}
				fr.ret = Value{}
				return flowReturn, nil
			}
		}
		xf, xc, xd := c.compileExpr(st.X)
		entry := int64(costStmt)
		if !xd {
			entry += xc
		}
		retCo := ms.retCo
		return func(fr *Frame) (flow, error) {
			fr.ctx.charge(entry)
			if err := fr.ctx.step(); err != nil {
				return flowNext, err
			}
			v, err := xf(fr)
			if err != nil {
				return flowNext, err
			}
			fr.ret = coerceKind(retCo, v)
			return flowReturn, nil
		}
	}
	err := rtErrf("unsupported statement at %s", s.Pos())
	return func(fr *Frame) (flow, error) { return flowNext, err }
}

// compileFor lowers a for loop. Canonical counted loops are matched at
// compile time; the residual runtime checks (an int loop variable and
// an error-free int bound) mirror the walker's countedLoop before the
// loop is offered to the ForLoop dispatcher. The compiled body is also
// registered in res.loopBodies so RunLoopIteration executes parallel
// iterations through the compiled form.
func (c *compiler) compileFor(st *ast.ForStmt, ms *methodSlots) stmtFn {
	var initFn stmtFn
	if st.Init != nil {
		initFn = c.compileStmt(st.Init, ms)
	}
	var condS exprFn
	if st.Cond != nil {
		condS = c.sealedExpr(st.Cond)
	}
	bodyFn := c.compileStmt(st.Body, ms)
	c.loops[st] = bodyFn
	var postFn stmtFn
	if st.Post != nil {
		postFn = c.compileStmt(st.Post, ms)
	}
	shape, matched := matchCountedLoop(st)
	var boundS exprFn
	if matched {
		boundS = c.sealedExpr(shape.bound)
	}
	return func(fr *Frame) (flow, error) {
		ctx := fr.ctx
		ctx.charge(costStmt)
		if err := ctx.step(); err != nil {
			return flowNext, err
		}
		if initFn != nil {
			fl, err := initFn(fr)
			if fl != flowNext || err != nil {
				return fl, err
			}
		}
		if ctx.ForLoop != nil && matched && fr.vars[shape.slot].kind == KInt {
			from := int64(fr.vars[shape.slot].num)
			bv, err := boundS(fr)
			// A failing or non-int bound declines the offer; the serial
			// loop below re-evaluates the condition and surfaces any
			// error itself, matching the walker.
			if err == nil && bv.kind == KInt {
				handled, err := ctx.ForLoop(st, fr, from, bv.Int(), shape.step)
				if err != nil {
					return flowNext, err
				}
				if handled {
					fr.vars[shape.slot] = bv
					return flowNext, nil
				}
			}
		}
		for {
			if condS != nil {
				cv, err := condS(fr)
				if err != nil {
					return flowNext, err
				}
				b, err := truthy(cv)
				if err != nil {
					return flowNext, err
				}
				if !b {
					return flowNext, nil
				}
			}
			fl, err := bodyFn(fr)
			if fl != flowNext || err != nil {
				return fl, err
			}
			if postFn != nil {
				fl, err := postFn(fr)
				if fl != flowNext || err != nil {
					return fl, err
				}
			}
		}
	}
}
