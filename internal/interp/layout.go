package interp

import "commute/internal/frontend/types"

// This file exports the interpreter's slot layout to the rest of the
// system — in particular to internal/codegen's native Go backend,
// which must lay out its generated structs and state dumps in exactly
// the order the interpreter assigns object slots, and to differential
// harnesses that walk interpreter heaps. There is one source of truth
// for layout (resolve/newLayout); these accessors read it instead of
// letting a second implementation drift.

// FieldInfo describes one field slot of a class instance.
type FieldInfo struct {
	Name      string     // the dialect field name
	DeclClass string     // name of the class that declares the field
	Slot      int        // object slot index (base-class fields first)
	Type      types.Type // declared field type
}

// ClassLayout returns the full field layout of cl — inherited fields
// first, each class's own fields in declaration order — with the slot
// index the interpreter assigns to each. The result is freshly
// allocated and sorted by slot (slots are dense: 0..len-1).
func ClassLayout(prog *types.Program, cl *types.Class) []FieldInfo {
	l := resolve(prog).layout
	var chain []*types.Class
	for c := cl; c != nil; c = c.Base {
		chain = append(chain, c)
	}
	var out []FieldInfo
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		for _, f := range c.Fields {
			out = append(out, FieldInfo{
				Name:      f.Name,
				DeclClass: c.Name,
				Slot:      l.slot(cl, c.Name, f.Name),
				Type:      f.Type,
			})
		}
	}
	return out
}

// ClassSlotCount returns the number of object slots an instance of cl
// occupies (its own fields plus all inherited ones).
func ClassSlotCount(prog *types.Program, cl *types.Class) int {
	return resolve(prog).layout.size[cl]
}

// VarInfo describes one frame slot of a method activation.
type VarInfo struct {
	Name  string     // parameter or local name
	Type  types.Type // declared type
	Param bool       // true for the leading parameter slots
}

// MethodFrame returns the frame layout of m in slot order: parameters
// first (in declaration order), then locals in first-declaration
// order. A name reused by several DeclStmts shares one slot, exactly
// as the interpreter scopes method locals.
func MethodFrame(prog *types.Program, m *types.Method) []VarInfo {
	ms := resolve(prog).methods[m.ID]
	out := make([]VarInfo, ms.n)
	for i := 0; i < ms.n; i++ {
		out[i] = VarInfo{
			Name:  ms.names[i],
			Type:  ms.types[i],
			Param: i < len(m.Params),
		}
	}
	return out
}
