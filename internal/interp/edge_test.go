package interp_test

import (
	"bytes"
	"strings"
	"testing"

	"commute/internal/interp"
)

func run(t *testing.T, source string) (*interp.Interp, string) {
	t.Helper()
	prog := compile(t, source)
	var out bytes.Buffer
	ip := interp.New(prog, &out)
	if err := ip.Run(ip.NewCtx()); err != nil {
		t.Fatalf("run: %v", err)
	}
	return ip, out.String()
}

func TestPrintFormats(t *testing.T) {
	_, out := run(t, `
class m { public: int x; void go(); };
m M;
void m::go() {
  print("int:", 42, "float:", 2.5, "bool:", TRUE, "null:", NULL, "neg:", -7);
}
void main() { M.go(); }
`)
	want := "int: 42 float: 2.5 bool: TRUE null: NULL neg: -7\n"
	if out != want {
		t.Errorf("print output %q, want %q", out, want)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	// p is NULL; && must not dereference it when the left side is false.
	ip, _ := run(t, `
class node { public: int v; node *next; };
class m {
public:
  node *p;
  int r;
  void go();
};
m M;
void m::go() {
  if (p != NULL && p->v > 0)
    r = 1;
  else
    r = 2;
  if (p == NULL || p->v > 0)
    r = r + 10;
}
void main() { M.go(); }
`)
	v, _ := ip.Globals["M"], 0
	_ = v
	got := ip.Globals["M"].Slots[1] // r is the second field
	if got.Any() != int64(12) {
		t.Errorf("r = %v, want 12", got)
	}
}

func TestIntegerSemantics(t *testing.T) {
	ip, _ := run(t, `
class m {
public:
  int q;
  int r;
  int neg;
  int trunc;
  void go();
};
m M;
void m::go() {
  q = 17 / 5;
  r = 17 % 5;
  neg = -17 / 5;
  trunc = 9;
  trunc = trunc / 2 * 2;
}
void main() { M.go(); }
`)
	M := ip.Globals["M"]
	wants := []int64{3, 2, -3, 8}
	for i, w := range wants {
		if M.Slots[i].Any() != w {
			t.Errorf("slot %d = %v, want %d", i, M.Slots[i], w)
		}
	}
}

func TestIntDoubleCoercion(t *testing.T) {
	ip, _ := run(t, `
class m {
public:
  double d;
  int i;
  void go();
};
m M;
void m::go() {
  d = 3;          // int stored into double
  i = 7.9;        // double truncated into int
  d = d + 1;      // mixed arithmetic
  i = i + 2;
}
void main() { M.go(); }
`)
	M := ip.Globals["M"]
	if M.Slots[0].Any() != 4.0 {
		t.Errorf("d = %v, want 4.0", M.Slots[0])
	}
	if M.Slots[1].Any() != int64(9) {
		t.Errorf("i = %v, want 9", M.Slots[1])
	}
}

func TestNestedObjectIdentity(t *testing.T) {
	// Nested objects are allocated with their parent, are distinct, and
	// persist across operations.
	ip, _ := run(t, `
class inner {
public:
  int v;
  void set(int k) { v = k; }
  int get() { return v; }
};
class outer {
public:
  inner a;
  inner b;
  int sum;
  void go();
};
outer O;
void outer::go() {
  a.set(1);
  b.set(2);
  a.set(a.get() + 10);
  sum = a.get() * 100 + b.get();
}
void main() { O.go(); }
`)
	O := ip.Globals["O"]
	// Fields: a (slot 0), b (slot 1), sum (slot 2).
	if got := O.Slots[2]; got.Any() != int64(1102) {
		t.Errorf("sum = %v, want 1102 (a=11, b=2)", got)
	}
	a := O.Slots[0].Object()
	b := O.Slots[1].Object()
	if a == b {
		t.Error("nested objects a and b must be distinct")
	}
}

func TestWhileAndEarlyReturn(t *testing.T) {
	ip, _ := run(t, `
class m {
public:
  int steps;
  int found;
  int probe(int limit);
  void go();
};
m M;
int m::probe(int limit) {
  int i;
  i = 0;
  while (TRUE) {
    i = i + 1;
    steps = steps + 1;
    if (i >= limit)
      return i;
  }
}
void m::go() { found = this->probe(5); }
void main() { M.go(); }
`)
	M := ip.Globals["M"]
	if M.Slots[0].Any() != int64(5) || M.Slots[1].Any() != int64(5) {
		t.Errorf("steps=%v found=%v, want 5/5", M.Slots[0], M.Slots[1])
	}
}

func TestRecursionDepth(t *testing.T) {
	ip, _ := run(t, `
class m {
public:
  int total;
  void down(int n);
};
m M;
void m::down(int n) {
  total = total + n;
  if (n > 0)
    this->down(n - 1);
}
void main() { M.down(100); }
`)
	if got := ip.Globals["M"].Slots[0]; got.Any() != int64(5050) {
		t.Errorf("total = %v, want 5050", got)
	}
}

func TestFailedCastYieldsNull(t *testing.T) {
	_, out := run(t, `
class node { public: int k; };
class cell : public node { public: int c; };
class leaf : public node { public: int l; };
class m {
public:
  int dummy;
  void check(node *n);
};
m M;
void m::check(node *n) {
  leaf *lf;
  lf = dynamic_cast<leaf*>(n);
  if (lf == NULL)
    print("not a leaf");
  else
    print("a leaf");
}
void main() {
  M.check(new cell);
  M.check(new leaf);
}
`)
	if !strings.Contains(out, "not a leaf") || !strings.Contains(out, "a leaf") {
		t.Errorf("cast output: %q", out)
	}
}
