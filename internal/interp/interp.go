package interp

import (
	"io"
	"math"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
	"commute/internal/frontend/types"
)

// Interp holds the immutable program and the global object store.
type Interp struct {
	Prog    *types.Program
	res     *resolution
	globals []*Object // declaration order, indexed by SymGlobal Ident.Slot
	Globals map[string]*Object
	Out     io.Writer
}

// New allocates an interpreter with default-initialized globals. The
// program's slot resolution (frame slots, field offsets, constant and
// global tables) is computed once per program and shared by every
// interpreter instance.
func New(prog *types.Program, out io.Writer) *Interp {
	ip := &Interp{
		Prog:    prog,
		res:     resolve(prog),
		Globals: make(map[string]*Object),
		Out:     out,
	}
	for _, g := range prog.GlobalSeq {
		o := ip.NewObject(g.Class)
		ip.globals = append(ip.globals, o)
		ip.Globals[g.Name] = o
	}
	return ip
}

// FieldSlot exposes slot resolution for the runtime and tests.
func (ip *Interp) FieldSlot(cl *types.Class, declClass, field string) int {
	return ip.res.layout.slot(cl, declClass, field)
}

// Ctx carries the execution strategy: cost accounting and the call /
// loop dispatchers that the parallel executors override. A zero-value
// strategy executes serially and charges into Cost.
type Ctx struct {
	IP *Interp

	// Charge accounts abstract cost units (nil: accumulate into Cost).
	Charge func(units int64)
	// Invoke dispatches a non-builtin call after receiver and argument
	// evaluation (nil: execute inline serially).
	Invoke func(site *types.CallSite, recv *Object, args []Value) (Value, error)
	// ForLoop may take over a for loop given its evaluated header
	// (nil or returning handled=false: execute serially). The body
	// callback runs one iteration.
	ForLoop func(fs *ast.ForStmt, fr *Frame, from, to, step int64) (handled bool, err error)

	// Interrupt, when non-nil, is polled every InterruptStride
	// statements; a non-nil result aborts execution with that error.
	// Cancellation and deadlines reach user code through this hook, so
	// an infinite loop in a user program returns an error instead of
	// hanging the process.
	Interrupt func() error
	// MaxSteps bounds the statements executed under this context
	// (0: unlimited). Exceeding it is a RuntimeError, giving callers a
	// deterministic guard against runaway programs.
	MaxSteps int64
	// MaxDepth bounds the method-activation depth (0: DefaultMaxDepth).
	// Unbounded recursion in a user program returns a RuntimeError
	// instead of overflowing the goroutine stack.
	MaxDepth int
	// Depth is the current activation depth. Parallel executors seed it
	// when deriving a context mid-computation so inline recursion keeps
	// counting across derived contexts.
	Depth int

	// Cost is the default cost accumulator.
	Cost int64

	steps int64
}

// InterruptStride is how many statements execute between Interrupt
// polls: frequent enough that a cancelled tight loop stops in
// microseconds, rare enough that the poll doesn't show up in profiles.
const InterruptStride = 64

// DefaultMaxDepth is the activation-depth limit when Ctx.MaxDepth is
// zero. Deep enough for the applications' recursive traversals, shallow
// enough that the interpreter's Go-stack usage stays far from overflow.
const DefaultMaxDepth = 4096

// NewCtx returns a serial execution context.
func (ip *Interp) NewCtx() *Ctx { return &Ctx{IP: ip} }

// step enforces the statement budget and polls the interrupt hook.
func (c *Ctx) step() error {
	c.steps++
	if c.MaxSteps > 0 && c.steps > c.MaxSteps {
		return rtErrf("step budget of %d statements exhausted", c.MaxSteps)
	}
	if c.Interrupt != nil && c.steps%InterruptStride == 0 {
		if err := c.Interrupt(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Ctx) charge(units int64) {
	if c.Charge != nil {
		c.Charge(units)
		return
	}
	c.Cost += units
}

// Frame is one activation record. Variables live in a flat slot array
// (parameters first, then locals in declaration order) — the slot of
// every name use was resolved ahead of time, so access is an array
// index, not a map lookup.
type Frame struct {
	method *types.Method
	slots  *methodSlots
	this   *Object
	vars   []Value
	ctx    *Ctx
}

// Method reports the frame's executing method (runtime diagnostics).
func (fr *Frame) Method() *types.Method { return fr.method }

// returnValue signals a return through the statement walkers.
type returnValue struct {
	v Value
}

// Run executes the program's main function serially under ctx.
func (ip *Interp) Run(ctx *Ctx) error {
	if ip.Prog.Main == nil {
		return rtErrf("program has no main function")
	}
	_, err := ip.Call(ctx, ip.Prog.Main, nil, nil)
	return err
}

// Call executes method m with the given receiver and arguments.
func (ip *Interp) Call(ctx *Ctx, m *types.Method, this *Object, args []Value) (Value, error) {
	if m.Def == nil {
		return nil, rtErrf("%s has no definition", m.FullName())
	}
	maxDepth := ctx.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	if ctx.Depth >= maxDepth {
		return nil, rtErrf("recursion depth limit of %d activations exceeded calling %s", maxDepth, m.FullName())
	}
	ctx.Depth++
	defer func() { ctx.Depth-- }()
	ms := ip.res.methods[m.ID]
	fr := &Frame{method: m, slots: ms, this: this, vars: make([]Value, ms.n), ctx: ctx}
	for i := range m.Params {
		if i < len(args) {
			fr.vars[i] = coerceKind(ms.paramCo[i], args[i])
		}
	}
	ctx.charge(costCall)
	ret, err := ip.execStmt(fr, m.Def.Body)
	if err != nil {
		return nil, err
	}
	if ret != nil {
		return ret.v, nil
	}
	return nil, nil
}

// execStmt executes a statement; a non-nil *returnValue unwinds a
// return.
func (ip *Interp) execStmt(fr *Frame, s ast.Stmt) (*returnValue, error) {
	fr.ctx.charge(costStmt)
	if err := fr.ctx.step(); err != nil {
		return nil, err
	}
	switch st := s.(type) {
	case *ast.Block:
		for _, sub := range st.Stmts {
			ret, err := ip.execStmt(fr, sub)
			if ret != nil || err != nil {
				return ret, err
			}
		}
		return nil, nil

	case *ast.DeclStmt:
		fr.vars[st.Slot] = ip.zeroValue(fr.slots.types[st.Slot])
		if st.Init != nil {
			v, err := ip.eval(fr, st.Init)
			if err != nil {
				return nil, err
			}
			fr.vars[st.Slot] = coerceKind(st.Coerce, v)
		}
		return nil, nil

	case *ast.ExprStmt:
		_, err := ip.eval(fr, st.X)
		return nil, err

	case *ast.IfStmt:
		c, err := ip.eval(fr, st.Cond)
		if err != nil {
			return nil, err
		}
		b, err := truthy(c)
		if err != nil {
			return nil, err
		}
		if b {
			return ip.execStmt(fr, st.Then)
		}
		if st.Else != nil {
			return ip.execStmt(fr, st.Else)
		}
		return nil, nil

	case *ast.ForStmt:
		return ip.execFor(fr, st)

	case *ast.WhileStmt:
		for {
			c, err := ip.eval(fr, st.Cond)
			if err != nil {
				return nil, err
			}
			b, err := truthy(c)
			if err != nil {
				return nil, err
			}
			if !b {
				return nil, nil
			}
			ret, err := ip.execStmt(fr, st.Body)
			if ret != nil || err != nil {
				return ret, err
			}
		}

	case *ast.ReturnStmt:
		if st.X == nil {
			return &returnValue{}, nil
		}
		v, err := ip.eval(fr, st.X)
		if err != nil {
			return nil, err
		}
		return &returnValue{v: coerceKind(fr.slots.retCo, v)}, nil
	}
	return nil, rtErrf("unsupported statement at %s", s.Pos())
}

// execFor runs a for loop, offering canonical counted loops to the
// context's ForLoop dispatcher (parallel loop execution).
func (ip *Interp) execFor(fr *Frame, st *ast.ForStmt) (*returnValue, error) {
	if st.Init != nil {
		if ret, err := ip.execStmt(fr, st.Init); ret != nil || err != nil {
			return ret, err
		}
	}
	// Offer counted loops `v = from; v < to; v += step` to the parallel
	// dispatcher.
	if fr.ctx.ForLoop != nil {
		if slot, to, step, ok := ip.countedLoop(fr, st); ok {
			from, _ := fr.vars[slot].(int64)
			handled, err := fr.ctx.ForLoop(st, fr, from, to, step)
			if err != nil {
				return nil, err
			}
			if handled {
				fr.vars[slot] = to
				return nil, nil
			}
		}
	}
	for {
		if st.Cond != nil {
			c, err := ip.eval(fr, st.Cond)
			if err != nil {
				return nil, err
			}
			b, err := truthy(c)
			if err != nil {
				return nil, err
			}
			if !b {
				return nil, nil
			}
		}
		ret, err := ip.execStmt(fr, st.Body)
		if ret != nil || err != nil {
			return ret, err
		}
		if st.Post != nil {
			if ret, err := ip.execStmt(fr, st.Post); ret != nil || err != nil {
				return ret, err
			}
		}
	}
}

// countedLoop matches `for (v = ...; v < bound; v++/v += step)` with an
// int loop variable and evaluates the bound and step. It returns the
// loop variable's frame slot.
func (ip *Interp) countedLoop(fr *Frame, st *ast.ForStmt) (slot int, to, step int64, ok bool) {
	switch init := st.Init.(type) {
	case *ast.DeclStmt:
		slot = int(init.Slot)
	case *ast.ExprStmt:
		asn, isA := init.X.(*ast.Assign)
		if !isA {
			return 0, 0, 0, false
		}
		id, isID := asn.LHS.(*ast.Ident)
		if !isID || (id.Sym != ast.SymLocal && id.Sym != ast.SymParam) {
			return 0, 0, 0, false
		}
		slot = int(id.Slot)
	default:
		return 0, 0, 0, false
	}
	if _, isInt := fr.vars[slot].(int64); !isInt {
		return 0, 0, 0, false
	}
	cmp, isC := st.Cond.(*ast.Binary)
	if !isC || cmp.Op != token.LT {
		return 0, 0, 0, false
	}
	cid, isID := cmp.X.(*ast.Ident)
	if !isID || (cid.Sym != ast.SymLocal && cid.Sym != ast.SymParam) || int(cid.Slot) != slot {
		return 0, 0, 0, false
	}
	// The bound is evaluated here once to offer the loop to the
	// parallel dispatcher; if the dispatcher declines, the serial loop
	// re-evaluates the condition per iteration — so the bound must be
	// side-effect free.
	if !pureExpr(cmp.Y) {
		return 0, 0, 0, false
	}
	bv, err := ip.eval(fr, cmp.Y)
	if err != nil {
		return 0, 0, 0, false
	}
	bound, isI := bv.(int64)
	if !isI {
		return 0, 0, 0, false
	}
	post, isP := st.Post.(*ast.ExprStmt)
	if !isP {
		return 0, 0, 0, false
	}
	pasn, isA := post.X.(*ast.Assign)
	if !isA || pasn.Op != token.PLUSEQ {
		return 0, 0, 0, false
	}
	pid, isID := pasn.LHS.(*ast.Ident)
	if !isID || (pid.Sym != ast.SymLocal && pid.Sym != ast.SymParam) || int(pid.Slot) != slot {
		return 0, 0, 0, false
	}
	lit, isL := pasn.RHS.(*ast.IntLit)
	if !isL || lit.Value <= 0 {
		return 0, 0, 0, false
	}
	return slot, bound, lit.Value, true
}

// pureExpr reports whether evaluating the expression is free of side
// effects (no calls, assignments, or allocations).
func pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.Assign, *ast.NewExpr:
			pure = false
		}
		return pure
	})
	return pure
}

// NewIterFrame returns a frame for executing parallel-loop iterations
// of fr's loop under ctx: the parent's slot array is copied once.
// Iterations in the dialect's parallel loops write only their own
// locals (exactly as the serial loop reuses one frame across
// iterations), so a single iteration frame can serve every iteration a
// worker executes — the per-iteration cost is one slot store, not a
// map rebuild.
func (ip *Interp) NewIterFrame(ctx *Ctx, fr *Frame) *Frame {
	vars := make([]Value, len(fr.vars))
	copy(vars, fr.vars)
	return &Frame{method: fr.method, slots: fr.slots, this: fr.this, vars: vars, ctx: ctx}
}

// RunLoopIteration executes one iteration of the counted loop body in
// an iteration frame obtained from NewIterFrame, with the loop
// variable bound to i.
func (ip *Interp) RunLoopIteration(sub *Frame, st *ast.ForStmt, i int64) error {
	slot := loopVarSlot(st)
	if slot < 0 {
		return rtErrf("parallel loop at %s without a resolvable loop variable", st.Pos())
	}
	sub.vars[slot] = i
	ret, err := ip.execStmt(sub, st.Body)
	if err != nil {
		return err
	}
	if ret != nil {
		return rtErrf("return inside a parallel loop")
	}
	return nil
}

// LoopVar extracts the loop variable name of a counted loop (used by
// parallel loop dispatchers).
func LoopVar(st *ast.ForStmt) string {
	switch init := st.Init.(type) {
	case *ast.DeclStmt:
		return init.Name
	case *ast.ExprStmt:
		if asn, ok := init.X.(*ast.Assign); ok {
			if id, ok2 := asn.LHS.(*ast.Ident); ok2 {
				return id.Name
			}
		}
	}
	return ""
}

// Math builtin dispatch.
func callBuiltin(ip *Interp, fr *Frame, x *ast.CallExpr, args []Value) (Value, error) {
	fr.ctx.charge(costBuiltin)
	f := func(i int) float64 {
		v, _ := asFloat(args[i])
		return v
	}
	switch x.Method {
	case "sqrt":
		return math.Sqrt(f(0)), nil
	case "fabs":
		return math.Abs(f(0)), nil
	case "exp":
		return math.Exp(f(0)), nil
	case "log":
		return math.Log(f(0)), nil
	case "floor":
		return math.Floor(f(0)), nil
	case "sin":
		return math.Sin(f(0)), nil
	case "cos":
		return math.Cos(f(0)), nil
	case "pow":
		return math.Pow(f(0), f(1)), nil
	case "print":
		if ip.Out != nil {
			for i, a := range args {
				if i > 0 {
					io.WriteString(ip.Out, " ")
				}
				printValue(ip.Out, a)
			}
			io.WriteString(ip.Out, "\n")
		}
		return nil, nil
	}
	return nil, rtErrf("unknown builtin %s", x.Method)
}

func printValue(w io.Writer, v Value) {
	switch x := v.(type) {
	case int64:
		io.WriteString(w, formatInt(x))
	case float64:
		io.WriteString(w, formatFloat(x))
	case bool:
		if x {
			io.WriteString(w, "TRUE")
		} else {
			io.WriteString(w, "FALSE")
		}
	case string:
		io.WriteString(w, x)
	case nil:
		io.WriteString(w, "NULL")
	case *Object:
		io.WriteString(w, "<"+x.Class.Name+">")
	default:
		io.WriteString(w, "?")
	}
}
