package interp

import (
	"io"
	"math"
	"os"
	"sync"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
	"commute/internal/frontend/types"
)

// Engine selects the execution strategy for method bodies.
type Engine uint8

const (
	// EngineCompiled executes closure-compiled bodies (the default):
	// each method is lowered once per program to a tree of thunks, so
	// steady-state execution performs no AST type-switches.
	EngineCompiled Engine = iota
	// EngineWalk executes the tree-walking evaluator. It is the
	// semantic baseline for differential testing and an escape hatch
	// (-engine walk) if a compiled-mode bug is suspected.
	EngineWalk
)

// ParseEngine maps a command-line engine name to an Engine.
func ParseEngine(s string) (Engine, bool) {
	switch s {
	case "compiled", "":
		return EngineCompiled, true
	case "walk":
		return EngineWalk, true
	}
	return EngineCompiled, false
}

func (e Engine) String() string {
	if e == EngineWalk {
		return "walk"
	}
	return "compiled"
}

// Interp holds the immutable program and the global object store.
type Interp struct {
	Prog    *types.Program
	res     *resolution
	engine  Engine
	globals []*Object // declaration order, indexed by SymGlobal Ident.Slot
	Globals map[string]*Object
	Out     io.Writer
}

// defaultEngine is EngineCompiled unless the COMMUTE_ENGINE
// environment variable overrides it — `COMMUTE_ENGINE=walk go test
// ./...` runs every suite that uses New against the tree walker.
var defaultEngine = func() Engine {
	e, _ := ParseEngine(os.Getenv("COMMUTE_ENGINE"))
	return e
}()

// New allocates an interpreter with default-initialized globals,
// executing with the default engine (compiled, unless COMMUTE_ENGINE
// says otherwise). The program's slot resolution and compiled bodies
// are computed once per program and shared by every interpreter
// instance.
func New(prog *types.Program, out io.Writer) *Interp {
	return NewEngine(prog, out, defaultEngine)
}

// NewEngine allocates an interpreter using the given execution engine.
func NewEngine(prog *types.Program, out io.Writer, eng Engine) *Interp {
	ip := &Interp{
		Prog:    prog,
		res:     resolve(prog),
		engine:  eng,
		Globals: make(map[string]*Object),
		Out:     out,
	}
	for _, g := range prog.GlobalSeq {
		o := ip.NewObject(g.Class)
		ip.globals = append(ip.globals, o)
		ip.Globals[g.Name] = o
	}
	return ip
}

// Engine reports the interpreter's execution engine.
func (ip *Interp) Engine() Engine { return ip.engine }

// FieldSlot exposes slot resolution for the runtime and tests.
func (ip *Interp) FieldSlot(cl *types.Class, declClass, field string) int {
	return ip.res.layout.slot(cl, declClass, field)
}

// Ctx carries the execution strategy: cost accounting and the call /
// loop dispatchers that the parallel executors override. A zero-value
// strategy executes serially and charges into Cost.
type Ctx struct {
	IP *Interp

	// Charge accounts abstract cost units (nil: accumulate into Cost).
	Charge func(units int64)
	// Invoke dispatches a non-builtin call after receiver and argument
	// evaluation (nil: execute inline serially).
	Invoke func(site *types.CallSite, recv *Object, args []Value) (Value, error)
	// ForLoop may take over a for loop given its evaluated header
	// (nil or returning handled=false: execute serially). The body
	// callback runs one iteration.
	ForLoop func(fs *ast.ForStmt, fr *Frame, from, to, step int64) (handled bool, err error)

	// Mon, when non-nil, observes every object-field and array-element
	// access and may redirect loads to buffered state (speculative
	// execution). Both engines honor it: the walker branches to the
	// monitored kernels per access, while the compiled engine switches
	// to a second set of closure-compiled bodies whose load/store
	// kernels call the monitor unconditionally — the unmonitored
	// compiled hot path carries no monitor checks at all.
	Mon Mon

	// Interrupt, when non-nil, is polled every InterruptStride
	// statements; a non-nil result aborts execution with that error.
	// Cancellation and deadlines reach user code through this hook, so
	// an infinite loop in a user program returns an error instead of
	// hanging the process.
	Interrupt func() error
	// MaxSteps bounds the statements executed under this context
	// (0: unlimited). Exceeding it is a RuntimeError, giving callers a
	// deterministic guard against runaway programs.
	MaxSteps int64
	// MaxDepth bounds the method-activation depth (0: DefaultMaxDepth).
	// Unbounded recursion in a user program returns a RuntimeError
	// instead of overflowing the goroutine stack.
	MaxDepth int
	// Depth is the current activation depth. Parallel executors seed it
	// when deriving a context mid-computation so inline recursion keeps
	// counting across derived contexts.
	Depth int

	// Cost is the default cost accumulator.
	Cost int64

	steps int64

	// argScratch recycles call-argument slices, LIFO. It is used only
	// when Invoke is nil: dispatcher hooks may capture argument slices
	// into spawned task closures, so those slices cannot be recycled. A
	// Ctx is goroutine-local, so no locking is needed.
	argScratch [][]Value
}

// InterruptStride is how many statements execute between Interrupt
// polls: frequent enough that a cancelled tight loop stops in
// microseconds, rare enough that the poll doesn't show up in profiles.
const InterruptStride = 64

// DefaultMaxDepth is the activation-depth limit when Ctx.MaxDepth is
// zero. Deep enough for the applications' recursive traversals, shallow
// enough that the interpreter's Go-stack usage stays far from overflow.
const DefaultMaxDepth = 4096

// NewCtx returns a serial execution context.
func (ip *Interp) NewCtx() *Ctx { return &Ctx{IP: ip} }

// step enforces the statement budget and polls the interrupt hook.
func (c *Ctx) step() error {
	c.steps++
	if c.MaxSteps > 0 && c.steps > c.MaxSteps {
		return rtErrf("step budget of %d statements exhausted", c.MaxSteps)
	}
	if c.Interrupt != nil && c.steps%InterruptStride == 0 {
		if err := c.Interrupt(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Ctx) charge(units int64) {
	if c.Charge != nil {
		c.Charge(units)
		return
	}
	c.Cost += units
}

// getArgs returns an argument slice of length n, recycling the most
// recently released slice when it fits.
func (c *Ctx) getArgs(n int) []Value {
	if ln := len(c.argScratch); ln > 0 {
		s := c.argScratch[ln-1]
		if cap(s) >= n {
			c.argScratch = c.argScratch[:ln-1]
			return s[:n]
		}
	}
	return make([]Value, n)
}

// putArgs releases an argument slice obtained from getArgs. The callee
// has already copied the arguments into its frame.
func (c *Ctx) putArgs(s []Value) {
	clear(s)
	c.argScratch = append(c.argScratch, s)
}

// Frame is one activation record. Variables live in a flat slot array
// (parameters first, then locals in declaration order) — the slot of
// every name use was resolved ahead of time, so access is an array
// index, not a map lookup. Frames are recycled through a sync.Pool;
// freeFrame zeroes the slot array, so a pooled frame's backing array is
// all-zero up to its capacity (frames abandoned by a panic unwind are
// simply collected by the GC).
type Frame struct {
	method *types.Method
	slots  *methodSlots
	this   *Object
	vars   []Value
	ctx    *Ctx
	// ret receives the return value in compiled execution (the walker
	// threads a *returnValue instead).
	ret Value
}

// Method reports the frame's executing method (runtime diagnostics).
func (fr *Frame) Method() *types.Method { return fr.method }

var framePool = sync.Pool{New: func() any { return &Frame{} }}

// newFrame acquires a pooled frame with n zeroed variable slots.
func newFrame(n int) *Frame {
	fr := framePool.Get().(*Frame)
	if cap(fr.vars) >= n {
		// The pool invariant guarantees every slot up to cap is zero.
		fr.vars = fr.vars[:n]
	} else {
		fr.vars = make([]Value, n)
	}
	return fr
}

// freeFrame zeroes and recycles a frame. Callers release frames only on
// the normal (non-panicking) paths; a panic abandons the frame to the
// garbage collector, which keeps the pool invariant (all slots zero)
// trivially true.
func freeFrame(fr *Frame) {
	clear(fr.vars)
	fr.method = nil
	fr.slots = nil
	fr.this = nil
	fr.ctx = nil
	fr.ret = Value{}
	framePool.Put(fr)
}

// ReleaseFrame recycles an iteration frame obtained from NewIterFrame
// once no more iterations will run in it.
func (ip *Interp) ReleaseFrame(fr *Frame) { freeFrame(fr) }

// returnValue signals a return through the statement walkers.
type returnValue struct {
	v Value
}

// Run executes the program's main function serially under ctx.
func (ip *Interp) Run(ctx *Ctx) error {
	if ip.Prog.Main == nil {
		return rtErrf("program has no main function")
	}
	_, err := ip.Call(ctx, ip.Prog.Main, nil, nil)
	return err
}

// Call executes method m with the given receiver and arguments.
func (ip *Interp) Call(ctx *Ctx, m *types.Method, this *Object, args []Value) (Value, error) {
	if m.Def == nil {
		return Value{}, rtErrf("%s has no definition", m.FullName())
	}
	maxDepth := ctx.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	if ctx.Depth >= maxDepth {
		return Value{}, rtErrf("recursion depth limit of %d activations exceeded calling %s", maxDepth, m.FullName())
	}
	ctx.Depth++
	defer func() { ctx.Depth-- }()
	ms := ip.res.methods[m.ID]
	fr := newFrame(ms.n)
	fr.method, fr.slots, fr.this, fr.ctx = m, ms, this, ctx
	for i := range m.Params {
		if i < len(args) {
			fr.vars[i] = coerceKind(ms.paramCo[i], args[i])
		}
	}
	ctx.charge(costCall)

	var out Value
	if ip.engine == EngineWalk {
		ret, err := ip.execStmt(fr, m.Def.Body)
		if err != nil {
			freeFrame(fr)
			return Value{}, err
		}
		if ret != nil {
			out = ret.v
		}
	} else {
		// A non-nil monitor selects the monitored compiled bodies; the
		// unmonitored table is untouched, so steady-state execution
		// stays branch-free inside the closures.
		compiled := ip.res.compiled
		if ctx.Mon != nil {
			compiled, _ = ip.res.monTables()
		}
		fl, err := compiled[m.ID].body(fr)
		if err != nil {
			freeFrame(fr)
			return Value{}, err
		}
		if fl == flowReturn {
			out = fr.ret
		}
	}
	freeFrame(fr)
	return out, nil
}

// execStmt executes a statement; a non-nil *returnValue unwinds a
// return. (Tree-walking engine.)
func (ip *Interp) execStmt(fr *Frame, s ast.Stmt) (*returnValue, error) {
	fr.ctx.charge(costStmt)
	if err := fr.ctx.step(); err != nil {
		return nil, err
	}
	switch st := s.(type) {
	case *ast.Block:
		for _, sub := range st.Stmts {
			ret, err := ip.execStmt(fr, sub)
			if ret != nil || err != nil {
				return ret, err
			}
		}
		return nil, nil

	case *ast.DeclStmt:
		fr.vars[st.Slot] = ip.zeroValue(fr.slots.types[st.Slot])
		if st.Init != nil {
			v, err := ip.eval(fr, st.Init)
			if err != nil {
				return nil, err
			}
			fr.vars[st.Slot] = coerceKind(st.Coerce, v)
		}
		return nil, nil

	case *ast.ExprStmt:
		_, err := ip.eval(fr, st.X)
		return nil, err

	case *ast.IfStmt:
		c, err := ip.eval(fr, st.Cond)
		if err != nil {
			return nil, err
		}
		b, err := truthy(c)
		if err != nil {
			return nil, err
		}
		if b {
			return ip.execStmt(fr, st.Then)
		}
		if st.Else != nil {
			return ip.execStmt(fr, st.Else)
		}
		return nil, nil

	case *ast.ForStmt:
		return ip.execFor(fr, st)

	case *ast.WhileStmt:
		for {
			c, err := ip.eval(fr, st.Cond)
			if err != nil {
				return nil, err
			}
			b, err := truthy(c)
			if err != nil {
				return nil, err
			}
			if !b {
				return nil, nil
			}
			ret, err := ip.execStmt(fr, st.Body)
			if ret != nil || err != nil {
				return ret, err
			}
		}

	case *ast.ReturnStmt:
		if st.X == nil {
			return &returnValue{}, nil
		}
		v, err := ip.eval(fr, st.X)
		if err != nil {
			return nil, err
		}
		return &returnValue{v: coerceKind(fr.slots.retCo, v)}, nil
	}
	return nil, rtErrf("unsupported statement at %s", s.Pos())
}

// execFor runs a for loop, offering canonical counted loops to the
// context's ForLoop dispatcher (parallel loop execution).
func (ip *Interp) execFor(fr *Frame, st *ast.ForStmt) (*returnValue, error) {
	if st.Init != nil {
		if ret, err := ip.execStmt(fr, st.Init); ret != nil || err != nil {
			return ret, err
		}
	}
	// Offer counted loops `v = from; v < to; v += step` to the parallel
	// dispatcher.
	if fr.ctx.ForLoop != nil {
		if slot, to, step, ok := ip.countedLoop(fr, st); ok {
			from := fr.vars[slot].Int()
			handled, err := fr.ctx.ForLoop(st, fr, from, to, step)
			if err != nil {
				return nil, err
			}
			if handled {
				fr.vars[slot] = IntValue(to)
				return nil, nil
			}
		}
	}
	for {
		if st.Cond != nil {
			c, err := ip.eval(fr, st.Cond)
			if err != nil {
				return nil, err
			}
			b, err := truthy(c)
			if err != nil {
				return nil, err
			}
			if !b {
				return nil, nil
			}
		}
		ret, err := ip.execStmt(fr, st.Body)
		if ret != nil || err != nil {
			return ret, err
		}
		if st.Post != nil {
			if ret, err := ip.execStmt(fr, st.Post); ret != nil || err != nil {
				return ret, err
			}
		}
	}
}

// countedLoop matches `for (v = ...; v < bound; v += step)` with an
// int loop variable and evaluates the bound and step. It returns the
// loop variable's frame slot. The structural half of the match is
// shared with the compiler (matchCountedLoop); the walker adds the
// runtime parts: the loop variable currently holds an int, and the
// bound evaluates without error to an int.
func (ip *Interp) countedLoop(fr *Frame, st *ast.ForStmt) (slot int, to, step int64, ok bool) {
	m, ok := matchCountedLoop(st)
	if !ok {
		return 0, 0, 0, false
	}
	if fr.vars[m.slot].kind != KInt {
		return 0, 0, 0, false
	}
	bv, err := ip.eval(fr, m.bound)
	if err != nil || bv.kind != KInt {
		return 0, 0, 0, false
	}
	return m.slot, bv.Int(), m.step, true
}

// countedLoopShape is the compile-time-checkable half of the counted
// loop pattern.
type countedLoopShape struct {
	slot  int
	bound ast.Expr
	step  int64
}

// matchCountedLoop performs the structural counted-loop match:
// `for (v = ...; v < bound; v += step)` with a pure bound and a
// positive integer literal step.
func matchCountedLoop(st *ast.ForStmt) (countedLoopShape, bool) {
	var m countedLoopShape
	switch init := st.Init.(type) {
	case *ast.DeclStmt:
		m.slot = int(init.Slot)
	case *ast.ExprStmt:
		asn, isA := init.X.(*ast.Assign)
		if !isA {
			return m, false
		}
		id, isID := asn.LHS.(*ast.Ident)
		if !isID || (id.Sym != ast.SymLocal && id.Sym != ast.SymParam) {
			return m, false
		}
		m.slot = int(id.Slot)
	default:
		return m, false
	}
	cmp, isC := st.Cond.(*ast.Binary)
	if !isC || cmp.Op != token.LT {
		return m, false
	}
	cid, isID := cmp.X.(*ast.Ident)
	if !isID || (cid.Sym != ast.SymLocal && cid.Sym != ast.SymParam) || int(cid.Slot) != m.slot {
		return m, false
	}
	// The bound is evaluated once to offer the loop to the parallel
	// dispatcher; if the dispatcher declines, the serial loop
	// re-evaluates the condition per iteration — so the bound must be
	// side-effect free.
	if !pureExpr(cmp.Y) {
		return m, false
	}
	m.bound = cmp.Y
	post, isP := st.Post.(*ast.ExprStmt)
	if !isP {
		return m, false
	}
	pasn, isA := post.X.(*ast.Assign)
	if !isA || pasn.Op != token.PLUSEQ {
		return m, false
	}
	pid, isID := pasn.LHS.(*ast.Ident)
	if !isID || (pid.Sym != ast.SymLocal && pid.Sym != ast.SymParam) || int(pid.Slot) != m.slot {
		return m, false
	}
	lit, isL := pasn.RHS.(*ast.IntLit)
	if !isL || lit.Value <= 0 {
		return m, false
	}
	m.step = lit.Value
	return m, true
}

// pureExpr reports whether evaluating the expression is free of side
// effects (no calls, assignments, or allocations).
func pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.Assign, *ast.NewExpr:
			pure = false
		}
		return pure
	})
	return pure
}

// NewIterFrame returns a frame for executing parallel-loop iterations
// of fr's loop under ctx: the parent's slot array is copied once.
// Iterations in the dialect's parallel loops write only their own
// locals (exactly as the serial loop reuses one frame across
// iterations), so a single iteration frame can serve every iteration a
// worker executes — the per-iteration cost is one slot store, not a
// map rebuild. Release with ReleaseFrame when the worker is done.
func (ip *Interp) NewIterFrame(ctx *Ctx, fr *Frame) *Frame {
	sub := newFrame(len(fr.vars))
	sub.method, sub.slots, sub.this, sub.ctx = fr.method, fr.slots, fr.this, ctx
	copy(sub.vars, fr.vars)
	return sub
}

// RunLoopIteration executes one iteration of the counted loop body in
// an iteration frame obtained from NewIterFrame, with the loop
// variable bound to i.
func (ip *Interp) RunLoopIteration(sub *Frame, st *ast.ForStmt, i int64) error {
	slot := loopVarSlot(st)
	if slot < 0 {
		return rtErrf("parallel loop at %s without a resolvable loop variable", st.Pos())
	}
	sub.vars[slot] = IntValue(i)
	if ip.engine != EngineWalk {
		bodies := ip.res.loopBodies
		if sub.ctx.Mon != nil {
			_, bodies = ip.res.monTables()
		}
		if body, ok := bodies[st]; ok {
			fl, err := body(sub)
			if err != nil {
				return err
			}
			if fl == flowReturn {
				return rtErrf("return inside a parallel loop")
			}
			return nil
		}
	}
	ret, err := ip.execStmt(sub, st.Body)
	if err != nil {
		return err
	}
	if ret != nil {
		return rtErrf("return inside a parallel loop")
	}
	return nil
}

// LoopVar extracts the loop variable name of a counted loop (used by
// parallel loop dispatchers).
func LoopVar(st *ast.ForStmt) string {
	switch init := st.Init.(type) {
	case *ast.DeclStmt:
		return init.Name
	case *ast.ExprStmt:
		if asn, ok := init.X.(*ast.Assign); ok {
			if id, ok2 := asn.LHS.(*ast.Ident); ok2 {
				return id.Name
			}
		}
	}
	return ""
}

// callBuiltin dispatches a math or print builtin on evaluated
// arguments. The caller has already charged costBuiltin.
func callBuiltin(ip *Interp, name string, x *ast.CallExpr, args []Value) (Value, error) {
	f := func(i int) float64 {
		v, _ := asFloat(args[i])
		return v
	}
	switch name {
	case "sqrt":
		return FloatValue(math.Sqrt(f(0))), nil
	case "fabs":
		return FloatValue(math.Abs(f(0))), nil
	case "exp":
		return FloatValue(math.Exp(f(0))), nil
	case "log":
		return FloatValue(math.Log(f(0))), nil
	case "floor":
		return FloatValue(math.Floor(f(0))), nil
	case "sin":
		return FloatValue(math.Sin(f(0))), nil
	case "cos":
		return FloatValue(math.Cos(f(0))), nil
	case "pow":
		return FloatValue(math.Pow(f(0), f(1))), nil
	case "print":
		if ip.Out != nil {
			for i, a := range args {
				if i > 0 {
					io.WriteString(ip.Out, " ")
				}
				printValue(ip.Out, a)
			}
			io.WriteString(ip.Out, "\n")
		}
		return Value{}, nil
	}
	return Value{}, rtErrf(errUnknownBuiltin, name)
}

func printValue(w io.Writer, v Value) {
	switch v.kind {
	case KInt:
		io.WriteString(w, formatInt(v.Int()))
	case KFloat:
		io.WriteString(w, formatFloat(v.Float()))
	case KBool:
		if v.num != 0 {
			io.WriteString(w, "TRUE")
		} else {
			io.WriteString(w, "FALSE")
		}
	case KString:
		io.WriteString(w, v.Str())
	case KNull:
		io.WriteString(w, "NULL")
	case KObject:
		io.WriteString(w, "<"+v.Object().Class.Name+">")
	default:
		io.WriteString(w, "?")
	}
}
