package interp_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"commute/internal/interp"
)

// TestStepBudgetStopsInfiniteLoop: an infinite while loop exhausts
// MaxSteps and returns a RuntimeError instead of hanging.
func TestStepBudgetStopsInfiniteLoop(t *testing.T) {
	prog := compile(t, `
void main() {
  int x;
  x = 0;
  while (x < 1) {
    x = x * 1;
  }
}
`)
	ip := interp.New(prog, nil)
	ctx := ip.NewCtx()
	ctx.MaxSteps = 10000
	err := ip.Run(ctx)
	if err == nil {
		t.Fatal("infinite loop terminated without error")
	}
	var re *interp.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RuntimeError", err, err)
	}
	if !strings.Contains(err.Error(), "step budget") {
		t.Errorf("err = %v, want a step-budget message", err)
	}
}

// TestInterruptStopsInfiniteLoop: the interrupt hook aborts a tight
// loop promptly with the hook's error.
func TestInterruptStopsInfiniteLoop(t *testing.T) {
	prog := compile(t, `
void main() {
  int x;
  x = 0;
  while (x < 1) {
    x = x * 1;
  }
}
`)
	ip := interp.New(prog, nil)
	ctx := ip.NewCtx()
	sentinel := errors.New("stop now")
	deadline := time.Now().Add(50 * time.Millisecond)
	ctx.Interrupt = func() error {
		if time.Now().After(deadline) {
			return sentinel
		}
		return nil
	}
	start := time.Now()
	err := ip.Run(ctx)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the interrupt sentinel", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("interrupt took %v to stop the loop", elapsed)
	}
}

// TestInterruptNotPolledOnShortPrograms: a program shorter than the
// poll stride never invokes the hook (the hook must not be a per-
// statement cost).
func TestInterruptNotPolledOnShortPrograms(t *testing.T) {
	prog := compile(t, `
void main() {
  int x;
  x = 1;
}
`)
	ip := interp.New(prog, nil)
	ctx := ip.NewCtx()
	polled := false
	ctx.Interrupt = func() error { polled = true; return nil }
	if err := ip.Run(ctx); err != nil {
		t.Fatalf("run: %v", err)
	}
	if polled {
		t.Error("interrupt hook polled within the first stride")
	}
}

// TestRecursionDepthGuard: unbounded recursion returns a RuntimeError
// at the depth limit instead of overflowing the goroutine stack.
func TestRecursionDepthGuard(t *testing.T) {
	prog := compile(t, `
class r {
public:
  int n;
  void spin(int v);
};
r R;
void r::spin(int v) {
  n = n + 1;
  this->spin(v + 1);
}
void main() {
  R.spin(0);
}
`)
	ip := interp.New(prog, nil)
	err := ip.Run(ip.NewCtx())
	if err == nil {
		t.Fatal("unbounded recursion terminated without error")
	}
	if !strings.Contains(err.Error(), "recursion depth limit") {
		t.Errorf("err = %v, want a recursion-depth message", err)
	}
}

// TestRecursionDepthGuardCustomLimit: MaxDepth overrides the default,
// and bounded recursion under the limit still succeeds.
func TestRecursionDepthGuardCustomLimit(t *testing.T) {
	source := `
class r {
public:
  int n;
  void down(int v);
};
r R;
void r::down(int v) {
  n = n + 1;
  if (v > 0) {
    this->down(v - 1);
  }
}
void main() {
  R.down(50);
}
`
	prog := compile(t, source)

	ip := interp.New(prog, nil)
	ctx := ip.NewCtx()
	ctx.MaxDepth = 20
	if err := ip.Run(ctx); err == nil {
		t.Fatal("recursion past MaxDepth=20 succeeded")
	}

	ip = interp.New(prog, nil)
	ctx = ip.NewCtx()
	ctx.MaxDepth = 200
	if err := ip.Run(ctx); err != nil {
		t.Fatalf("recursion of 50 under MaxDepth=200 failed: %v", err)
	}
}
