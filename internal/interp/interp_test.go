package interp_test

import (
	"bytes"
	"strings"
	"testing"

	"commute/internal/apps/src"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
	"commute/internal/interp"
)

func compile(t testing.TB, source string) *types.Program {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

func TestRunSimplePrograms(t *testing.T) {
	prog := compile(t, `
class acc {
public:
  int n;
  double d;
  void bump(int k);
  int get();
};
void acc::bump(int k) { n = n + k; d = d + 0.5; }
int acc::get() { return n; }
acc A;
void main() {
  int i;
  for (i = 0; i < 10; i++)
    A.bump(i);
  print("n =", A.get());
}
`)
	var out bytes.Buffer
	ip := interp.New(prog, &out)
	if err := ip.Run(ip.NewCtx()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := strings.TrimSpace(out.String()); got != "n = 45" {
		t.Errorf("output = %q, want %q", got, "n = 45")
	}
}

func TestControlFlowAndOperators(t *testing.T) {
	prog := compile(t, `
class m {
public:
  int r;
  double f;
  boolean b;
  void run();
};
m M;
void m::run() {
  int i;
  int s;
  s = 0;
  i = 0;
  while (i < 5) {
    if (i % 2 == 0)
      s = s + i;
    else
      s = s - 1;
    i++;
  }
  r = s;                    // 0 - 1 + 2 - 1 + 4 = 4
  f = sqrt(16.0) + fabs(-2.5) + pow(2.0, 3.0) + floor(1.9);
  b = (1 < 2) && !(3 <= 2) || FALSE;
}
void main() { M.run(); }
`)
	var out bytes.Buffer
	ip := interp.New(prog, &out)
	if err := ip.Run(ip.NewCtx()); err != nil {
		t.Fatalf("run: %v", err)
	}
	M := ip.Globals["M"]
	cl := prog.Classes["m"]
	if got := M.Slots[ip.FieldSlot(cl, "m", "r")]; got.Any() != int64(4) {
		t.Errorf("r = %v, want 4", got)
	}
	if got := M.Slots[ip.FieldSlot(cl, "m", "f")]; got.Any() != float64(4+2.5+8+1) {
		t.Errorf("f = %v, want 15.5", got)
	}
	if got := M.Slots[ip.FieldSlot(cl, "m", "b")]; got.Any() != true {
		t.Errorf("b = %v, want true", got)
	}
}

func TestGraphTraversalSerial(t *testing.T) {
	prog := compile(t, src.Graph)
	ip := interp.New(prog, nil)
	if err := ip.Run(ip.NewCtx()); err != nil {
		t.Fatalf("run: %v", err)
	}
	// After the traversal every reachable node is marked, and the total
	// of sums equals the sum over visited edges of val(parent).
	b := ip.Globals["Builder"]
	builderCl := prog.Classes["builder"]
	graphCl := prog.Classes["graph"]
	nodesArr := b.Slots[ip.FieldSlot(builderCl, "builder", "nodes")].Array()
	n := b.Slots[ip.FieldSlot(builderCl, "builder", "numnodes")].Int()
	if n != 64 {
		t.Fatalf("numnodes = %d", n)
	}
	root := b.Slots[ip.FieldSlot(builderCl, "builder", "root")].Object()
	if !root.Slots[ip.FieldSlot(graphCl, "graph", "mark")].Bool() {
		t.Error("root should be marked after traversal")
	}
	marked := 0
	for i := int64(0); i < n; i++ {
		node := nodesArr.Elems[i].Object()
		if node.Slots[ip.FieldSlot(graphCl, "graph", "mark")].Bool() {
			marked++
		}
	}
	if marked == 0 {
		t.Error("no nodes marked")
	}
}

func TestBarnesHutSerial(t *testing.T) {
	prog := compile(t, src.BarnesHut)
	ip := interp.New(prog, nil)
	ctx := ip.NewCtx()
	if err := ip.Run(ctx); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Physics sanity: every body has a finite nonzero potential and the
	// tree root aggregates (close to) the total mass.
	nb := ip.Globals["Nbody"]
	nbodyCl := prog.Classes["nbody"]
	bodyCl := prog.Classes["body"]
	nodeCl := prog.Classes["node"]
	n := nb.Slots[ip.FieldSlot(nbodyCl, "nbody", "numbodies")].Int()
	if n != 256 {
		t.Fatalf("numbodies = %d", n)
	}
	bodies := nb.Slots[ip.FieldSlot(nbodyCl, "nbody", "bodies")].Array()
	nonzero := 0
	for i := int64(0); i < n; i++ {
		b := bodies.Elems[i].Object()
		phi := b.Slots[ip.FieldSlot(bodyCl, "body", "phi")].Float()
		if phi != 0 {
			nonzero++
		}
	}
	if nonzero < int(n)/2 {
		t.Errorf("only %d/%d bodies have nonzero potential", nonzero, n)
	}
	root := nb.Slots[ip.FieldSlot(nbodyCl, "nbody", "BH_root")].Object()
	mass := root.Slots[ip.FieldSlot(root.Class, "node", "mass")].Float()
	if mass < 0.99 || mass > 1.01 {
		t.Errorf("root mass = %v, want ≈1.0", mass)
	}
	_ = nodeCl
	if ctx.Cost == 0 {
		t.Error("cost accounting recorded nothing")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`
class a { public: int x; void m(); };
a A;
void a::m() { x = 1 / (x - x); }
void main() { A.m(); }
`, "division by zero"},
		{`
class a { public: int v[4]; void m(); };
a A;
void a::m() { v[7] = 1; }
void main() { A.m(); }
`, "out of range"},
		{`
class a { public: a *p; int x; void m(); };
a A;
void a::m() { x = p->x; }
void main() { A.m(); }
`, "NULL dereference"},
	}
	for _, tc := range cases {
		prog := compile(t, tc.src)
		ip := interp.New(prog, nil)
		err := ip.Run(ip.NewCtx())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("want error containing %q, got %v", tc.want, err)
		}
	}
}

func TestDynamicCastAtRuntime(t *testing.T) {
	prog := compile(t, `
class node { public: double mass; };
class cell : public node { public: int k; };
class leaf : public node { public: int q; };
class w {
public:
  int isCell;
  int isLeaf;
  void test(node *n);
};
w W;
void w::test(node *n) {
  cell *c;
  leaf *l;
  c = dynamic_cast<cell*>(n);
  if (c != NULL) isCell = isCell + 1;
  l = dynamic_cast<leaf*>(n);
  if (l != NULL) isLeaf = isLeaf + 1;
}
void main() {
  W.test(new cell);
  W.test(new leaf);
  W.test(new cell);
}
`)
	ip := interp.New(prog, nil)
	if err := ip.Run(ip.NewCtx()); err != nil {
		t.Fatalf("run: %v", err)
	}
	W := ip.Globals["W"]
	cl := prog.Classes["w"]
	if got := W.Slots[ip.FieldSlot(cl, "w", "isCell")]; got.Any() != int64(2) {
		t.Errorf("isCell = %v, want 2", got)
	}
	if got := W.Slots[ip.FieldSlot(cl, "w", "isLeaf")]; got.Any() != int64(1) {
		t.Errorf("isLeaf = %v, want 1", got)
	}
}
