// Package interp implements a tree-walking interpreter for the
// mini-C++ dialect. It provides the serial executor, the instrumented
// executor that records task/lock event traces for the DASH simulator,
// and the object model shared with the real parallel runtime.
package interp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"commute/internal/frontend/types"
)

// Value is a runtime value: int64, float64, bool, string, *Object,
// *Array, or nil (the NULL pointer).
type Value any

// Object is a heap object. Fields are stored in a flat slot array laid
// out base-class-first so that concurrent access to distinct fields of
// one object never races (the paper's generated code relies on
// per-object locks protecting only the fields an operation writes).
type Object struct {
	Class *types.Class
	Slots []Value
	// Mutex is the per-object lock the generated parallel code
	// acquires around object sections (§5).
	Mutex sync.Mutex
	// ID is a stable identity for tracing and simulation.
	ID int64
}

// Array is a fixed-size array of primitives or object pointers. Arrays
// are storage, not values: the dialect never assigns whole arrays.
type Array struct {
	Elems []Value
}

// layout computes the slot index of every field of a class, walking the
// inheritance chain root-first.
type layout struct {
	index map[*types.Class]map[string]int
	size  map[*types.Class]int
}

func newLayout(prog *types.Program) *layout {
	l := &layout{
		index: make(map[*types.Class]map[string]int),
		size:  make(map[*types.Class]int),
	}
	var build func(cl *types.Class) int
	build = func(cl *types.Class) int {
		if _, done := l.index[cl]; done {
			return l.size[cl]
		}
		idx := make(map[string]int)
		off := 0
		if cl.Base != nil {
			off = build(cl.Base)
			for k, v := range l.index[cl.Base] {
				idx[k] = v
			}
		}
		for _, f := range cl.Fields {
			idx[f.Class.Name+"."+f.Name] = off
			off++
		}
		l.index[cl] = idx
		l.size[cl] = off
		return off
	}
	for _, cl := range prog.ClassList {
		build(cl)
	}
	return l
}

// slot returns the slot index of a field declared in class declClass.
func (l *layout) slot(cl *types.Class, declClass, field string) int {
	return l.index[cl][declClass+"."+field]
}

var objectIDs atomic.Int64

// NewObject allocates an object of class cl with default-initialized
// fields (zero numbers, false booleans, nil pointers, recursively
// allocated nested objects and arrays).
func (ip *Interp) NewObject(cl *types.Class) *Object {
	o := &Object{
		Class: cl,
		Slots: make([]Value, ip.res.layout.size[cl]),
		ID:    objectIDs.Add(1),
	}
	for c := cl; c != nil; c = c.Base {
		for _, f := range c.Fields {
			o.Slots[ip.res.layout.slot(cl, f.Class.Name, f.Name)] = ip.zeroValue(f.Type)
		}
	}
	return o
}

func (ip *Interp) zeroValue(t types.Type) Value {
	switch tt := t.(type) {
	case types.Basic:
		switch tt {
		case types.Int:
			return int64(0)
		case types.Double:
			return float64(0)
		case types.Bool:
			return false
		}
		return nil
	case types.Pointer:
		return nil
	case types.Object:
		return ip.NewObject(tt.Class)
	case types.Array:
		a := &Array{Elems: make([]Value, tt.Len)}
		for i := range a.Elems {
			a.Elems[i] = ip.zeroValue(tt.Elem)
		}
		return a
	}
	return nil
}

// RuntimeError is a failure during interpretation.
type RuntimeError struct {
	Msg string
}

func (e *RuntimeError) Error() string { return e.Msg }

func rtErrf(format string, args ...any) *RuntimeError {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// Truthy coerces a Value used as a condition.
func truthy(v Value) (bool, error) {
	b, ok := v.(bool)
	if !ok {
		return false, rtErrf("condition is not boolean: %T", v)
	}
	return b, nil
}

func asFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	}
	return 0, false
}
