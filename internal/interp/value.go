// Package interp implements the execution engines for the mini-C++
// dialect: a tree-walking interpreter (the semantic baseline) and a
// closure-compiled engine that lowers each method body to a tree of
// thunks once per program. Both engines share the object model used by
// the real parallel runtime and the instrumented executor that records
// task/lock event traces for the DASH simulator.
package interp

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"commute/internal/frontend/types"
)

// Kind discriminates the payload of a Value.
type Kind uint8

// Value kinds. KNull is the zero value: a zeroed Value is the NULL
// pointer.
const (
	KNull Kind = iota
	KInt
	KFloat
	KBool
	KString
	KObject
	KArray
)

func (k Kind) String() string {
	switch k {
	case KNull:
		return "null"
	case KInt:
		return "int"
	case KFloat:
		return "double"
	case KBool:
		return "boolean"
	case KString:
		return "string"
	case KObject:
		return "object"
	case KArray:
		return "array"
	}
	return "invalid"
}

// Value is an unboxed tagged runtime value. Numeric and boolean
// payloads live in the num word (int64 bits, float64 bits, or 0/1), so
// int/float/bool arithmetic never heap-allocates — the previous
// `Value = any` representation boxed every float64 result through an
// interface conversion, which was the dominant allocation source on
// float-heavy kernels. Reference payloads (*Object, *Array, string)
// live in ref.
type Value struct {
	kind Kind
	num  uint64
	ref  any
}

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{kind: KInt, num: uint64(v)} }

// FloatValue wraps a float64.
func FloatValue(v float64) Value { return Value{kind: KFloat, num: math.Float64bits(v)} }

// BoolValue wraps a bool.
func BoolValue(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{kind: KBool, num: n}
}

// StringValue wraps a string (print builtins only).
func StringValue(v string) Value { return Value{kind: KString, ref: v} }

// ObjectValue wraps an object pointer; a nil *Object is NULL.
func ObjectValue(o *Object) Value {
	if o == nil {
		return Value{}
	}
	return Value{kind: KObject, ref: o}
}

// ArrayValue wraps an array pointer.
func ArrayValue(a *Array) Value { return Value{kind: KArray, ref: a} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is the NULL pointer.
func (v Value) IsNull() bool { return v.kind == KNull }

// Int returns the int64 payload (zero for other kinds).
func (v Value) Int() int64 {
	if v.kind != KInt {
		return 0
	}
	return int64(v.num)
}

// Float returns the float64 payload (zero for other kinds).
func (v Value) Float() float64 {
	if v.kind != KFloat {
		return 0
	}
	return math.Float64frombits(v.num)
}

// Bool returns the boolean payload (false for other kinds).
func (v Value) Bool() bool { return v.kind == KBool && v.num != 0 }

// Str returns the string payload ("" for other kinds).
func (v Value) Str() string {
	if v.kind != KString {
		return ""
	}
	return v.ref.(string)
}

// Object returns the object payload (nil for other kinds).
func (v Value) Object() *Object {
	if v.kind != KObject {
		return nil
	}
	return v.ref.(*Object)
}

// Array returns the array payload (nil for other kinds).
func (v Value) Array() *Array {
	if v.kind != KArray {
		return nil
	}
	return v.ref.(*Array)
}

// Any unwraps the value to its natural Go representation: int64,
// float64, bool, string, *Object, *Array, or nil (state inspection).
func (v Value) Any() any {
	switch v.kind {
	case KInt:
		return int64(v.num)
	case KFloat:
		return math.Float64frombits(v.num)
	case KBool:
		return v.num != 0
	case KString, KObject, KArray:
		return v.ref
	}
	return nil
}

// Object is a heap object. Fields are stored in a flat slot array laid
// out base-class-first so that concurrent access to distinct fields of
// one object never races (the paper's generated code relies on
// per-object locks protecting only the fields an operation writes).
type Object struct {
	Class *types.Class
	Slots []Value
	// Mutex is the per-object lock the generated parallel code
	// acquires around object sections (§5).
	Mutex sync.Mutex
	// ID is a stable identity for tracing and simulation.
	ID int64
}

// Array is a fixed-size array of primitives or object pointers. Arrays
// are storage, not values: the dialect never assigns whole arrays.
type Array struct {
	Elems []Value
}

// layout computes the slot index of every field of a class, walking the
// inheritance chain root-first.
type layout struct {
	index map[*types.Class]map[string]int
	size  map[*types.Class]int
}

func newLayout(prog *types.Program) *layout {
	l := &layout{
		index: make(map[*types.Class]map[string]int),
		size:  make(map[*types.Class]int),
	}
	var build func(cl *types.Class) int
	build = func(cl *types.Class) int {
		if _, done := l.index[cl]; done {
			return l.size[cl]
		}
		idx := make(map[string]int)
		off := 0
		if cl.Base != nil {
			off = build(cl.Base)
			for k, v := range l.index[cl.Base] {
				idx[k] = v
			}
		}
		for _, f := range cl.Fields {
			idx[f.Class.Name+"."+f.Name] = off
			off++
		}
		l.index[cl] = idx
		l.size[cl] = off
		return off
	}
	for _, cl := range prog.ClassList {
		build(cl)
	}
	return l
}

// slot returns the slot index of a field declared in class declClass.
func (l *layout) slot(cl *types.Class, declClass, field string) int {
	return l.index[cl][declClass+"."+field]
}

var objectIDs atomic.Int64

// NewObject allocates an object of class cl with default-initialized
// fields (zero numbers, false booleans, nil pointers, recursively
// allocated nested objects and arrays).
func (ip *Interp) NewObject(cl *types.Class) *Object {
	o := &Object{
		Class: cl,
		Slots: make([]Value, ip.res.layout.size[cl]),
		ID:    objectIDs.Add(1),
	}
	for c := cl; c != nil; c = c.Base {
		for _, f := range c.Fields {
			o.Slots[ip.res.layout.slot(cl, f.Class.Name, f.Name)] = ip.zeroValue(f.Type)
		}
	}
	return o
}

func (ip *Interp) zeroValue(t types.Type) Value {
	switch tt := t.(type) {
	case types.Basic:
		switch tt {
		case types.Int:
			return IntValue(0)
		case types.Double:
			return FloatValue(0)
		case types.Bool:
			return BoolValue(false)
		}
		return Value{}
	case types.Pointer:
		return Value{}
	case types.Object:
		return ObjectValue(ip.NewObject(tt.Class))
	case types.Array:
		a := &Array{Elems: make([]Value, tt.Len)}
		for i := range a.Elems {
			a.Elems[i] = ip.zeroValue(tt.Elem)
		}
		return ArrayValue(a)
	}
	return Value{}
}

// RuntimeError is a failure during interpretation.
type RuntimeError struct {
	Msg string
}

func (e *RuntimeError) Error() string { return e.Msg }

func rtErrf(format string, args ...any) *RuntimeError {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// Truthy coerces a Value used as a condition.
func truthy(v Value) (bool, error) {
	if v.kind != KBool {
		return false, rtErrf("condition is not boolean: %s", v.kind)
	}
	return v.num != 0, nil
}

func asFloat(v Value) (float64, bool) {
	switch v.kind {
	case KFloat:
		return math.Float64frombits(v.num), true
	case KInt:
		return float64(int64(v.num)), true
	}
	return 0, false
}
