// Package simdash simulates the execution of a traced program on a
// P-processor shared-memory multiprocessor in the style of the Stanford
// DASH machine the paper evaluated on. The simulator schedules the
// trace's phases — serial sections, task-tree regions, and parallel
// loops with guided self-scheduling — onto virtual processor clocks,
// modelling per-object lock queues and the four overhead sources the
// paper measures in Table 5 (loop, chunk, iteration, and lock
// overhead), and produces the cumulative time breakdowns of Figures 18
// and 20 (parallel idle, serial idle, blocked, parallel compute, serial
// compute).
package simdash

import (
	"container/heap"

	"commute/internal/tracer"
)

// Params configures the simulated machine.
type Params struct {
	Procs int
	// UnitMicros converts interpreter cost units to microseconds.
	UnitMicros float64
	// Overheads in microseconds (Table 5 defaults via DefaultParams).
	LoopOverheadBase    float64 // fixed part of parallel-loop startup+barrier
	LoopOverheadPerProc float64 // per-processor part (211µs at 32 procs)
	ChunkOverhead       float64
	IterOverhead        float64
	LockOverhead        float64
	// ContendedLockFactor scales the lock overhead of acquisitions that
	// had to queue behind another holder: on DASH a contended lock
	// costs several uncontended acquisitions (the lock line bounces
	// between caches and the releaser notifies waiters through the
	// directory).
	ContendedLockFactor float64
	// ReduceMicrosPerObject is the per-object, per-processor cost of
	// merging the replicas a region created under the §6.3.4
	// replication optimization.
	ReduceMicrosPerObject float64
}

// DefaultParams returns the paper's Table 5 overheads on a machine with
// the given processor count. The loop overhead is 211µs at 32
// processors and grows with the processor count.
func DefaultParams(procs int) Params {
	return Params{
		Procs:                 procs,
		UnitMicros:            0.1, // one interpreter cost unit ≈ 100ns
		LoopOverheadBase:      19,
		LoopOverheadPerProc:   6, // 19 + 6·32 = 211µs at 32 procs
		ChunkOverhead:         30,
		IterOverhead:          0.38,
		LockOverhead:          5.1,
		ContendedLockFactor:   4,
		ReduceMicrosPerObject: 1.0,
	}
}

// LoopOverhead returns the loop overhead for the configured machine.
func (p Params) LoopOverhead() float64 {
	return p.LoopOverheadBase + p.LoopOverheadPerProc*float64(p.Procs)
}

// Breakdown is the cumulative time breakdown of Figures 18/20, in
// microseconds summed over all processors.
type Breakdown struct {
	ParallelIdle    float64
	SerialIdle      float64
	Blocked         float64
	ParallelCompute float64
	SerialCompute   float64
}

// Total returns the cumulative processing time.
func (b Breakdown) Total() float64 {
	return b.ParallelIdle + b.SerialIdle + b.Blocked + b.ParallelCompute + b.SerialCompute
}

// Counters aggregates event counts for the granularity tables (6/11).
type Counters struct {
	Loops      int64
	Chunks     int64
	Iterations int64
	Tasks      int64
	Locks      int64
}

// Result is the outcome of one simulation.
type Result struct {
	Params Params
	// TimeMicros is the wall-clock execution time.
	TimeMicros float64
	// ParallelMicros is the wall time spent inside parallel regions;
	// SerialMicros the wall time in serial sections.
	ParallelMicros float64
	SerialMicros   float64
	Breakdown      Breakdown
	Counters       Counters
}

// Simulate runs the trace on the configured machine.
func Simulate(tr *tracer.Trace, p Params) *Result {
	if p.Procs < 1 {
		p.Procs = 1
	}
	s := &sim{
		p:       p,
		clocks:  make([]float64, p.Procs),
		objBusy: make(map[int64][]interval),
		res:     &Result{Params: p},
	}
	for _, ph := range tr.Phases {
		if ph.Root == nil {
			s.serialPhase(ph.Serial)
			continue
		}
		s.regionPhase(ph.Root)
		if ph.ReduceObjects > 0 {
			// Merge the per-processor replicas (serial phase-end
			// reduction, §6.3.4).
			units := int64(float64(ph.ReduceObjects) * float64(p.Procs) *
				p.ReduceMicrosPerObject / p.UnitMicros)
			s.serialPhase(units)
		}
	}
	s.res.TimeMicros = s.now
	return s.res
}

type sim struct {
	p       Params
	now     float64 // global phase clock (all procs synced between phases)
	clocks  []float64
	objBusy map[int64][]interval // per-object lock-held intervals, sorted by start
	res     *Result
}

// interval is one lock-held period.
type interval struct{ start, end float64 }

// serialPhase: processor 0 computes, the rest idle.
func (s *sim) serialPhase(units int64) {
	d := float64(units) * s.p.UnitMicros
	s.res.Breakdown.SerialCompute += d
	s.res.Breakdown.SerialIdle += d * float64(s.p.Procs-1)
	s.res.SerialMicros += d
	s.now += d
}

// regionPhase simulates a parallel region rooted at a task: an
// event-driven schedule of tasks over the processors, with parallel
// loops dispatched by guided self-scheduling.
func (s *sim) regionPhase(root *tracer.Task) {
	start := s.now
	for i := range s.clocks {
		s.clocks[i] = start
	}
	rq := &readyQueue{}
	heap.Push(rq, readyTask{task: root, ready: start})
	s.res.Counters.Tasks++

	// Event-driven: repeatedly give the earliest ready task to the
	// processor that can start it soonest.
	for rq.Len() > 0 {
		rt := heap.Pop(rq).(readyTask)
		proc := s.earliestProc()
		begin := max64(s.clocks[proc], rt.ready)
		s.res.Breakdown.ParallelIdle += begin - s.clocks[proc]
		s.clocks[proc] = begin
		s.runTask(proc, rt.task, rq)
	}

	// Region barrier.
	end := s.now
	for _, c := range s.clocks {
		if c > end {
			end = c
		}
	}
	for _, c := range s.clocks {
		s.res.Breakdown.ParallelIdle += end - c
	}
	s.res.ParallelMicros += end - start
	s.now = end
}

// runTask executes a task's events on processor proc, pushing spawned
// children to the ready queue and dispatching loops with GSS.
func (s *sim) runTask(proc int, t *tracer.Task, rq *readyQueue) {
	for _, e := range t.Events {
		switch e.Kind {
		case tracer.EvCompute:
			d := float64(e.Units) * s.p.UnitMicros
			s.clocks[proc] += d
			s.res.Breakdown.ParallelCompute += d
		case tracer.EvCrit:
			s.crit(proc, e)
		case tracer.EvSpawn:
			s.res.Counters.Tasks++
			heap.Push(rq, readyTask{task: e.Child, ready: s.clocks[proc]})
		case tracer.EvLoop:
			s.gssLoop(proc, e.Iters)
		}
	}
}

// crit models a critical section: the processor claims the first gap of
// the required length in the object's lock-held timeline at or after
// its arrival time. Holding periods scheduled later in simulation order
// but earlier in virtual time (processors' clocks legitimately diverge
// inside scheduling chunks) therefore never block an earlier arrival —
// only genuine temporal overlap does.
func (s *sim) crit(proc int, e tracer.Event) {
	s.res.Counters.Locks++
	d := s.p.LockOverhead + float64(e.Units)*s.p.UnitMicros
	t := s.clocks[proc]
	ivs := s.objBusy[e.Obj]
	start := t
	insertAt := len(ivs)
	for i, iv := range ivs {
		if iv.end <= start {
			continue
		}
		if iv.start >= start+d {
			insertAt = i
			break
		}
		start = iv.end
	}
	if start > t && s.p.ContendedLockFactor > 1 {
		// Queued behind another holder: the acquisition itself costs
		// more (contended lock-line transfer), lengthening this holding
		// period for everyone behind us too.
		d += s.p.LockOverhead * (s.p.ContendedLockFactor - 1)
	}
	if insertAt == len(ivs) {
		// Recompute the insertion point (start may have moved).
		for insertAt = len(ivs); insertAt > 0 && ivs[insertAt-1].start > start; insertAt-- {
		}
	}
	s.res.Breakdown.Blocked += start - t
	s.res.Breakdown.ParallelCompute += d
	nv := interval{start: start, end: start + d}
	ivs = append(ivs, interval{})
	copy(ivs[insertAt+1:], ivs[insertAt:])
	ivs[insertAt] = nv
	s.objBusy[e.Obj] = ivs
	s.clocks[proc] = start + d
}

// gssLoop runs a parallel loop with guided self-scheduling: every
// processor (including the dispatching one) repeatedly claims
// ⌈remaining/P⌉ iterations; the dispatching processor continues after
// the loop barrier.
func (s *sim) gssLoop(proc int, iters []*tracer.Task) {
	s.res.Counters.Loops++
	loopStart := s.clocks[proc]
	// All processors participate once they pass their current clocks;
	// processors earlier than loopStart wait for work to exist.
	for i := range s.clocks {
		if s.clocks[i] < loopStart {
			s.res.Breakdown.ParallelIdle += loopStart - s.clocks[i]
			s.clocks[i] = loopStart
		}
	}
	next := 0
	for next < len(iters) {
		p := s.earliestProc()
		remaining := len(iters) - next
		chunk := remaining / s.p.Procs
		if chunk < 1 {
			chunk = 1
		}
		s.res.Counters.Chunks++
		s.clocks[p] += s.p.ChunkOverhead
		s.res.Breakdown.ParallelCompute += s.p.ChunkOverhead
		for k := 0; k < chunk; k++ {
			it := iters[next]
			next++
			s.res.Counters.Iterations++
			s.clocks[p] += s.p.IterOverhead
			s.res.Breakdown.ParallelCompute += s.p.IterOverhead
			s.runTask(p, it, &readyQueue{}) // loop iterations spawn nothing
		}
	}
	// Loop barrier, then the loop startup/teardown overhead (paid once;
	// the other processors wait through it).
	barrier := 0.0
	for _, c := range s.clocks {
		if c > barrier {
			barrier = c
		}
	}
	for _, c := range s.clocks {
		s.res.Breakdown.ParallelIdle += barrier - c
	}
	s.res.Breakdown.ParallelCompute += s.p.LoopOverhead()
	s.res.Breakdown.ParallelIdle += s.p.LoopOverhead() * float64(s.p.Procs-1)
	end := barrier + s.p.LoopOverhead()
	for i := range s.clocks {
		s.clocks[i] = end
	}
}

func (s *sim) earliestProc() int {
	best := 0
	for i, c := range s.clocks {
		if c < s.clocks[best] {
			best = i
		}
	}
	return best
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Ready queue

type readyTask struct {
	task  *tracer.Task
	ready float64
}

type readyQueue []readyTask

func (q readyQueue) Len() int           { return len(q) }
func (q readyQueue) Less(i, j int) bool { return q[i].ready < q[j].ready }
func (q readyQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *readyQueue) Push(x any)        { *q = append(*q, x.(readyTask)) }
func (q *readyQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}
