package simdash_test

import (
	"math/rand"
	"testing"

	"commute/internal/simdash"
	"commute/internal/tracer"
)

// genTrace builds a random but well-formed trace: serial phases,
// loop-structured regions, and spawn-tree regions with critical
// sections over a small object pool.
func genTrace(r *rand.Rand) *tracer.Trace {
	tr := &tracer.Trace{}
	phases := 1 + r.Intn(5)
	for p := 0; p < phases; p++ {
		switch r.Intn(3) {
		case 0:
			tr.Phases = append(tr.Phases, tracer.Phase{
				Label: "serial", Serial: int64(1 + r.Intn(5000)),
			})
		case 1:
			iters := make([]*tracer.Task, 1+r.Intn(40))
			for i := range iters {
				iters[i] = genTask(r, 0)
			}
			root := &tracer.Task{Events: []tracer.Event{{Kind: tracer.EvLoop, Iters: iters}}}
			tr.Phases = append(tr.Phases, tracer.Phase{Label: "loop", Root: root})
		default:
			tr.Phases = append(tr.Phases, tracer.Phase{Label: "tasks", Root: genTask(r, 2)})
		}
	}
	return tr
}

func genTask(r *rand.Rand, spawnDepth int) *tracer.Task {
	t := &tracer.Task{}
	events := 1 + r.Intn(4)
	for e := 0; e < events; e++ {
		switch {
		case spawnDepth > 0 && r.Intn(3) == 0:
			t.Events = append(t.Events, tracer.Event{
				Kind: tracer.EvSpawn, Child: genTask(r, spawnDepth-1),
			})
		case r.Intn(3) == 0:
			t.Events = append(t.Events, tracer.Event{
				Kind: tracer.EvCrit, Obj: int64(1 + r.Intn(4)), Units: int64(1 + r.Intn(200)),
			})
		default:
			t.Events = append(t.Events, tracer.Event{
				Kind: tracer.EvCompute, Units: int64(1 + r.Intn(1000)),
			})
		}
	}
	return t
}

// TestSimInvariants checks, over random traces and machine sizes:
//   - conservation: breakdown total == wall time × processors;
//   - work lower bound: wall time ≥ total compute / processors;
//   - single-processor runs never block on locks;
//   - all breakdown components are non-negative.
func TestSimInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		tr := genTrace(r)
		for _, procs := range []int{1, 2, 5, 16} {
			res := simdash.Simulate(tr, simdash.DefaultParams(procs))
			b := res.Breakdown
			total := b.Total()
			want := res.TimeMicros * float64(procs)
			if diff := total - want; diff > 1e-6*want+1e-6 || diff < -1e-6*want-1e-6 {
				t.Fatalf("trial %d procs %d: conservation violated: %f vs %f", trial, procs, total, want)
			}
			params := simdash.DefaultParams(procs)
			work := float64(tr.SerialUnits()+tr.ParallelUnits()) * params.UnitMicros
			if res.TimeMicros < work/float64(procs)-1e-6 {
				t.Fatalf("trial %d procs %d: wall time %f below work bound %f",
					trial, procs, res.TimeMicros, work/float64(procs))
			}
			if procs == 1 && b.Blocked != 0 {
				t.Fatalf("trial %d: single processor blocked %f", trial, b.Blocked)
			}
			for name, v := range map[string]float64{
				"parallelIdle": b.ParallelIdle, "serialIdle": b.SerialIdle,
				"blocked": b.Blocked, "parallelCompute": b.ParallelCompute,
				"serialCompute": b.SerialCompute,
			} {
				if v < -1e-9 {
					t.Fatalf("trial %d procs %d: negative %s = %f", trial, procs, name, v)
				}
			}
		}
	}
}

// TestMoreProcsNeverIncreaseComputeDeficit: iteration and task counters
// are machine-independent.
func TestCountersMachineIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		tr := genTrace(r)
		base := simdash.Simulate(tr, simdash.DefaultParams(1)).Counters
		for _, procs := range []int{2, 8, 32} {
			c := simdash.Simulate(tr, simdash.DefaultParams(procs)).Counters
			if c.Iterations != base.Iterations || c.Tasks != base.Tasks ||
				c.Locks != base.Locks || c.Loops != base.Loops {
				t.Fatalf("trial %d: counters vary with machine size: %+v vs %+v", trial, base, c)
			}
		}
	}
}

// TestLockSerializationFloor: a trace whose critical sections all
// target one object cannot beat the serialized lock time no matter how
// many processors run it.
func TestLockSerializationFloor(t *testing.T) {
	iters := make([]*tracer.Task, 64)
	for i := range iters {
		iters[i] = &tracer.Task{Events: []tracer.Event{
			{Kind: tracer.EvCompute, Units: 10},
			{Kind: tracer.EvCrit, Obj: 1, Units: 500},
		}}
	}
	tr := &tracer.Trace{Phases: []tracer.Phase{{
		Label: "contended",
		Root:  &tracer.Task{Events: []tracer.Event{{Kind: tracer.EvLoop, Iters: iters}}},
	}}}
	params := simdash.DefaultParams(32)
	res := simdash.Simulate(tr, params)
	critFloor := float64(64) * (params.LockOverhead + 500*params.UnitMicros)
	if res.TimeMicros < critFloor {
		t.Errorf("wall time %f beats the lock serialization floor %f", res.TimeMicros, critFloor)
	}
	if res.Breakdown.Blocked == 0 {
		t.Error("fully contended trace shows no blocked time")
	}
}
