package simdash_test

import (
	"fmt"
	"math"
	"testing"

	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/core"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/simdash"
	"commute/internal/tracer"
)

func collect(t testing.TB, source string) *tracer.Trace {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	plan := codegen.Build(core.New(prog))
	ip := interp.New(prog, nil)
	tr, err := tracer.Collect(ip, plan)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return tr
}

// TestTraceStructure: the Barnes-Hut trace alternates serial phases
// (tree build, COM) with parallel loop regions (reset, force, velocity,
// position).
func TestTraceStructure(t *testing.T) {
	tr := collect(t, src.BarnesHut)
	var serial, regions int
	for _, ph := range tr.Phases {
		if ph.Root == nil {
			serial++
		} else {
			regions++
		}
	}
	// Two steps × four parallel loops each.
	if regions != 8 {
		t.Errorf("parallel regions = %d, want 8", regions)
	}
	if serial == 0 {
		t.Error("no serial phases (tree build must be serial)")
	}
	if tr.ParallelUnits() == 0 || tr.SerialUnits() == 0 {
		t.Error("trace units empty")
	}
	// The force phase dominates: parallel units far exceed serial.
	if tr.ParallelUnits() < tr.SerialUnits() {
		t.Errorf("parallel units %d < serial units %d; force phase should dominate",
			tr.ParallelUnits(), tr.SerialUnits())
	}
}

// TestConservation: cumulative breakdown equals wall time × processors.
func TestConservation(t *testing.T) {
	for _, source := range []string{src.BarnesHut, src.Water, src.Graph} {
		tr := collect(t, source)
		for _, procs := range []int{1, 2, 7, 16, 32} {
			r := simdash.Simulate(tr, simdash.DefaultParams(procs))
			want := r.TimeMicros * float64(procs)
			got := r.Breakdown.Total()
			if math.Abs(got-want)/want > 1e-6 {
				t.Errorf("procs=%d: breakdown total %.1f != time×procs %.1f", procs, got, want)
			}
		}
	}
}

// TestSpeedupShape: Barnes-Hut speeds up monotonically at small
// processor counts and its serial-idle share grows with the processor
// count (Figure 18's story).
func TestSpeedupShape(t *testing.T) {
	tr := collect(t, src.BarnesHut)
	t1 := simdash.Simulate(tr, simdash.DefaultParams(1)).TimeMicros
	prev := math.Inf(1)
	for _, procs := range []int{1, 2, 4, 8} {
		r := simdash.Simulate(tr, simdash.DefaultParams(procs))
		if r.TimeMicros >= prev {
			t.Errorf("no speedup from %d processors: %.0f ≥ %.0f", procs, r.TimeMicros, prev)
		}
		prev = r.TimeMicros
	}
	r32 := simdash.Simulate(tr, simdash.DefaultParams(32))
	speedup := t1 / r32.TimeMicros
	if speedup < 2 {
		t.Errorf("32-processor speedup = %.2f, want meaningful scaling", speedup)
	}
	// Serial idle grows superlinearly with processors.
	r2 := simdash.Simulate(tr, simdash.DefaultParams(2))
	if r32.Breakdown.SerialIdle <= r2.Breakdown.SerialIdle {
		t.Error("serial idle should grow with the processor count")
	}
}

// TestWaterContention: Water's blocked time grows dramatically with the
// processor count (Figure 20's story) while Barnes-Hut's stays small.
func TestWaterContention(t *testing.T) {
	water := collect(t, src.Water)
	w2 := simdash.Simulate(water, simdash.DefaultParams(2))
	w16 := simdash.Simulate(water, simdash.DefaultParams(16))
	if w16.Breakdown.Blocked <= w2.Breakdown.Blocked {
		t.Errorf("Water blocked time should grow: %.0f (2p) vs %.0f (16p)",
			w2.Breakdown.Blocked, w16.Breakdown.Blocked)
	}
	bh := collect(t, src.BarnesHut)
	b16 := simdash.Simulate(bh, simdash.DefaultParams(16))
	wShare := w16.Breakdown.Blocked / w16.Breakdown.Total()
	bShare := b16.Breakdown.Blocked / b16.Breakdown.Total()
	if wShare <= bShare {
		t.Errorf("Water blocked share (%.3f) should exceed Barnes-Hut's (%.3f)", wShare, bShare)
	}
}

// TestCountersMatchWorkload: iteration counts equal the trace's loop
// iterations regardless of the processor count.
func TestCountersMatchWorkload(t *testing.T) {
	tr := collect(t, src.BarnesHut)
	var want int64
	for _, ph := range tr.Phases {
		if ph.Root == nil {
			continue
		}
		for _, e := range ph.Root.Events {
			if e.Kind == tracer.EvLoop {
				want += int64(len(e.Iters))
			}
		}
	}
	for _, procs := range []int{1, 8, 32} {
		r := simdash.Simulate(tr, simdash.DefaultParams(procs))
		if r.Counters.Iterations != want {
			t.Errorf("procs=%d: iterations = %d, want %d", procs, r.Counters.Iterations, want)
		}
		if r.Counters.Locks == 0 {
			t.Errorf("procs=%d: no lock events", procs)
		}
	}
}

// TestGraphTaskRegion: the graph traversal produces a spawn-style task
// region that scales with workers.
func TestGraphTaskRegion(t *testing.T) {
	tr := collect(t, src.Graph)
	var tasks int
	for _, ph := range tr.Phases {
		if ph.Root != nil {
			var count func(task *tracer.Task) int
			count = func(task *tracer.Task) int {
				n := 1
				for _, e := range task.Events {
					if e.Kind == tracer.EvSpawn {
						n += count(e.Child)
					}
				}
				return n
			}
			tasks += count(ph.Root)
		}
	}
	if tasks < 64 {
		t.Errorf("graph region tasks = %d, want ≥ number of edges visited", tasks)
	}
	t1 := simdash.Simulate(tr, simdash.DefaultParams(1)).TimeMicros
	t8 := simdash.Simulate(tr, simdash.DefaultParams(8)).TimeMicros
	if t8 >= t1 {
		t.Errorf("graph traversal does not speed up: %.0f (1p) vs %.0f (8p)", t1, t8)
	}
}

// Exploration helper: print the simulated scaling tables when -v is
// used with -run Explore.
func TestExploreScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration only")
	}
	for _, tc := range []struct {
		name string
		src  string
	}{{"BarnesHut", src.BarnesHut}, {"Water", src.Water}} {
		tr := collect(t, tc.src)
		t1 := simdash.Simulate(tr, simdash.DefaultParams(1)).TimeMicros
		line := tc.name + ":"
		for _, procs := range []int{1, 2, 4, 8, 16, 32} {
			r := simdash.Simulate(tr, simdash.DefaultParams(procs))
			line += fmt.Sprintf(" %d:%.2fx", procs, t1/r.TimeMicros)
		}
		t.Log(line)
	}
}
