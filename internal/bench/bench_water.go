package bench

import (
	"fmt"
	"sync"
	"time"

	"commute"
	"commute/internal/analysis/depbase"
	"commute/internal/apps"
	"commute/internal/core"
	"commute/internal/simdash"
)

// Table8 reproduces Table 8: analysis statistics for the Water parallel
// extents.
func (r *Runner) Table8() (string, error) {
	sys, err := r.waterSystem(r.Cfg.WaterMols[0])
	if err != nil {
		return "", err
	}
	rows := statRows(sys.Reports(), map[string]string{
		"water::predictAll": "Virtual",
		"water::poteng":     "Energy",
		"water::loadAll":    "Loading",
		"water::interf":     "Forces",
		"water::momentaAll": "Momenta",
	})
	out := table(statHeader, rows)
	out += "\npaper: Virtual 9/3/5/1, Energy 1/5/14/1, Loading 5/2/2/1, Forces 3/4/9/1, Momenta 2/2/2/1\n"
	plan := sys.Plan
	out += fmt.Sprintf("parallel loops: %d found, %d nested suppressed, %d generated (paper: 7 found, 2 suppressed, 5 generated)\n",
		plan.LoopsFound, plan.LoopsSuppressed, plan.LoopsFound-plan.LoopsSuppressed)
	return out, nil
}

// Table9 reproduces Table 9: Water execution times.
func (r *Runner) Table9() (string, error) {
	header := []string{"Molecules", "Serial"}
	for _, p := range r.Cfg.Procs {
		header = append(header, fmt.Sprintf("%d", p))
	}
	var rows [][]string
	for _, n := range r.Cfg.WaterMols {
		tr, err := r.waterTrace(n)
		if err != nil {
			return "", err
		}
		row := []string{fmt.Sprintf("%d", n), secs(serialMicros(tr))}
		for _, p := range r.Cfg.Procs {
			res := simdash.Simulate(tr, simdash.DefaultParams(p))
			row = append(row, secs(res.TimeMicros))
		}
		rows = append(rows, row)
	}
	note := "\n(simulated seconds; as in the paper, Water stops scaling beyond ~8 processors\n because of contention for the shared accumulator objects)\n"
	return table(header, rows) + note, nil
}

// Table12 reproduces Table 12: the explicitly parallel Water baseline
// (replicated accumulators, per-phase reductions, no contention).
func (r *Runner) Table12() (string, error) {
	header := []string{"Molecules"}
	for _, p := range r.Cfg.Procs {
		header = append(header, fmt.Sprintf("%d", p))
	}
	var rows [][]string
	for _, n := range r.Cfg.WaterMols {
		tr, err := r.waterTrace(n)
		if err != nil {
			return "", err
		}
		ex := apps.ExplicitWater(tr, int64(n*20))
		row := []string{fmt.Sprintf("%d", n)}
		for _, p := range r.Cfg.Procs {
			res := simdash.Simulate(ex, simdash.DefaultParams(p))
			row = append(row, secs(res.TimeMicros))
		}
		rows = append(rows, row)
	}
	note := "\n(simulated seconds; compare Table 9 — replication removes the contention,\n so the explicit version keeps scaling, §6.3.5)\n"
	return table(header, rows) + note, nil
}

// Table5 reproduces Table 5: parallel construct overheads. The
// simulator uses the paper's measured DASH constants; alongside them we
// measure the analogous costs of this repository's real goroutine
// runtime on the host machine.
func (r *Runner) Table5() (string, error) {
	p := simdash.DefaultParams(32)
	rows := [][]string{
		{"Loop overhead (32 procs)", "211", f1(p.LoopOverhead()), f2(measureLoopOverhead())},
		{"Chunk overhead", "30", f1(p.ChunkOverhead), f2(measureChunkOverhead())},
		{"Iteration overhead", "0.38", f2(p.IterOverhead), f2(measureIterOverhead())},
		{"Lock overhead", "5.1", f1(p.LockOverhead), f2(measureLockOverhead())},
	}
	note := "\n(µs; 'Simulator' are the paper's DASH constants used by internal/simdash,\n 'Go runtime' are the measured costs of the analogous constructs in internal/rt\n on this host)\n"
	return table([]string{"Source of Overhead", "Paper (DASH)", "Simulator", "Go runtime (measured)"}, rows) + note, nil
}

// measureLockOverhead times an uncontended mutex acquire/release pair.
func measureLockOverhead() float64 {
	var mu sync.Mutex
	const iters = 200000
	start := time.Now()
	for i := 0; i < iters; i++ {
		mu.Lock()
		mu.Unlock() //nolint:staticcheck // intentional empty critical section
	}
	return float64(time.Since(start).Microseconds()) / iters
}

// measureIterOverhead times the per-iteration dispatch of a tight
// closure-based loop.
func measureIterOverhead() float64 {
	const iters = 1000000
	sum := 0
	body := func(i int) { sum += i }
	start := time.Now()
	for i := 0; i < iters; i++ {
		body(i)
	}
	_ = sum
	return float64(time.Since(start).Microseconds()) / iters
}

// measureChunkOverhead times an atomic chunk claim (compare-and-swap on
// a shared counter).
func measureChunkOverhead() float64 {
	var mu sync.Mutex
	next := 0
	const chunks = 100000
	start := time.Now()
	for i := 0; i < chunks; i++ {
		mu.Lock()
		next += 16
		mu.Unlock()
	}
	_ = next
	return float64(time.Since(start).Microseconds()) / chunks
}

// measureLoopOverhead times starting and joining a pool of goroutines
// (the loop startup + barrier cost).
func measureLoopOverhead() float64 {
	const loops = 200
	start := time.Now()
	for i := 0; i < loops; i++ {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() { wg.Done() }()
		}
		wg.Wait()
	}
	return float64(time.Since(start).Microseconds()) / loops
}

// ---------------------------------------------------------------------
// Ablations

// AblationAux re-runs the analysis with auxiliary-operation recognition
// disabled (§3.5.2): the paper notes the compiler would be unable to
// parallelize any of the extents.
func (r *Runner) AblationAux() (string, error) {
	return r.ablationAnalysis(func(a *core.Analysis) {
		a.DisableAuxiliary = true
	}, "auxiliary recognition disabled")
}

// AblationEC re-runs the analysis with the extent-constant extension
// disabled (§3.5.1).
func (r *Runner) AblationEC() (string, error) {
	return r.ablationAnalysis(func(a *core.Analysis) {
		a.DisableExtentConstants = true
	}, "extent constants disabled")
}

// phaseDrivers are the paper's named parallel extents.
var phaseDrivers = map[string][]string{
	"Barnes-Hut": {
		"nbody::computeForces", "nbody::advanceVelocities",
		"nbody::advancePositions", "nbody::resetForces",
	},
	"Water": {
		"water::predictAll", "water::loadAll", "water::interf",
		"water::poteng", "water::momentaAll",
	},
}

// ablationAnalysis compares the phase drivers' parallel status with and
// without an extension, using fresh (uncached) analyses.
func (r *Runner) ablationAnalysis(disable func(*core.Analysis), label string) (string, error) {
	bh, err := apps.BarnesHut(64, 1)
	if err != nil {
		return "", err
	}
	w, err := apps.Water(27, 1)
	if err != nil {
		return "", err
	}
	var rows [][]string
	for _, tc := range []struct {
		name string
		sys  *commute.System
	}{{"Barnes-Hut", bh}, {"Water", w}} {
		full := core.New(tc.sys.Prog)
		abl := core.New(tc.sys.Prog)
		disable(abl)
		for _, driver := range phaseDrivers[tc.name] {
			m := tc.sys.Prog.MethodByFullName(driver)
			fr := full.IsParallel(m)
			ar := abl.IsParallel(m)
			rows = append(rows, []string{
				tc.name, driver,
				parStatus(fr.Parallel), parStatus(ar.Parallel),
			})
		}
	}
	return table([]string{"Application", "Phase", "Full analysis", label}, rows), nil
}

func parStatus(p bool) string {
	if p {
		return "parallel"
	}
	return "serial"
}

// AblationLocks compares the simulated performance with and without the
// §5.4 lock optimizations (every nested operation acquires its own
// lock).
func (r *Runner) AblationLocks() (string, error) {
	n := r.Cfg.BHBodies[0]
	sys, err := r.bhSystem(n)
	if err != nil {
		return "", err
	}
	trOpt, err := r.bhTrace(n)
	if err != nil {
		return "", err
	}
	trNoHoist, err := apps.TraceWithoutHoisting(sys)
	if err != nil {
		return "", err
	}
	var rows [][]string
	for _, p := range []int{1, 8, 32} {
		opt := simdash.Simulate(trOpt, simdash.DefaultParams(p))
		raw := simdash.Simulate(trNoHoist, simdash.DefaultParams(p))
		rows = append(rows, []string{
			fmt.Sprintf("%d", p),
			secs(opt.TimeMicros), fmt.Sprintf("%d", opt.Counters.Locks),
			secs(raw.TimeMicros), fmt.Sprintf("%d", raw.Counters.Locks),
		})
	}
	note := "\n(Barnes-Hut; hoisting eliminates the nested vector locks — fewer lock events,\n lower lock overhead, §5.4)\n"
	return table([]string{"Procs", "Hoisted time (s)", "Hoisted locks", "No-hoist time (s)", "No-hoist locks"}, rows) + note, nil
}

// AblationSuppress compares the simulated performance with and without
// the §5.2 suppression of nested concurrency.
func (r *Runner) AblationSuppress() (string, error) {
	n := r.Cfg.WaterMols[0]
	sys, err := r.waterSystem(n)
	if err != nil {
		return "", err
	}
	trOpt, err := r.waterTrace(n)
	if err != nil {
		return "", err
	}
	trNested, err := apps.TraceWithNestedLoops(sys)
	if err != nil {
		return "", err
	}
	var rows [][]string
	for _, p := range []int{1, 8, 32} {
		opt := simdash.Simulate(trOpt, simdash.DefaultParams(p))
		raw := simdash.Simulate(trNested, simdash.DefaultParams(p))
		rows = append(rows, []string{
			fmt.Sprintf("%d", p),
			secs(opt.TimeMicros), fmt.Sprintf("%d", opt.Counters.Chunks),
			secs(raw.TimeMicros), fmt.Sprintf("%d", raw.Counters.Chunks),
		})
	}
	note := "\n(Water; without suppression the O(n) inner loops each pay loop/chunk overheads,\n overwhelming the useful work, §5.2)\n"
	return table([]string{"Procs", "Suppressed time (s)", "Chunks", "Nested time (s)", "Chunks(nested)"}, rows) + note, nil
}

// Replication evaluates the §6.3.4 proposal the paper makes for Water:
// "It should, in principle, be possible to automatically eliminate the
// contention by replicating objects to enable conflict-free write
// access. We expect that this optimization would dramatically improve
// the scalability." The plan option ReplicateAccumulators detects
// operations whose receiver writes are pure commutative accumulations
// and runs them against per-processor replicas.
func (r *Runner) Replication() (string, error) {
	n := r.Cfg.WaterMols[0]
	sys, err := r.waterSystem(n)
	if err != nil {
		return "", err
	}
	trAuto, err := r.waterTrace(n)
	if err != nil {
		return "", err
	}
	trRepl, err := apps.TraceWithReplication(sys)
	if err != nil {
		return "", err
	}
	baseA := simdash.Simulate(trAuto, simdash.DefaultParams(1)).TimeMicros
	baseR := simdash.Simulate(trRepl, simdash.DefaultParams(1)).TimeMicros
	var rows [][]string
	for _, p := range r.Cfg.Procs {
		a := simdash.Simulate(trAuto, simdash.DefaultParams(p))
		rep := simdash.Simulate(trRepl, simdash.DefaultParams(p))
		rows = append(rows, []string{
			fmt.Sprintf("%d", p),
			f2(baseA / a.TimeMicros), secs(a.Breakdown.Blocked),
			f2(baseR / rep.TimeMicros), secs(rep.Breakdown.Blocked),
		})
	}
	note := "\n(Water; replication removes the lock contention on the shared force bank and\n sums objects, restoring scalability — the paper's §6.3.4 prediction)\n"
	return table([]string{"Procs", "Locked speedup", "Locked blocked (s)", "Replicated speedup", "Replicated blocked (s)"}, rows) + note, nil
}

// DepBase runs the type-based data dependence baseline (§8.1): without
// commutativity reasoning it cannot parallelize any of the loops in
// either application.
func (r *Runner) DepBase() (string, error) {
	bh, err := apps.BarnesHut(64, 1)
	if err != nil {
		return "", err
	}
	w, err := apps.Water(27, 1)
	if err != nil {
		return "", err
	}
	g, err := apps.Graph(32)
	if err != nil {
		return "", err
	}
	var rows [][]string
	for _, tc := range []struct {
		name string
		sys  *commute.System
	}{{"Barnes-Hut", bh}, {"Water", w}, {"Graph traversal", g}} {
		dep := depbase.Analyze(tc.sys.Prog)
		ca := 0
		for _, lp := range tc.sys.Plan.Loops {
			if lp.Parallel {
				ca++
			}
		}
		rows = append(rows, []string{
			tc.name,
			fmt.Sprintf("%d/%d", dep.ParallelLoops, dep.TotalLoops),
			fmt.Sprintf("%d/%d", ca, len(tc.sys.Plan.Loops)),
		})
	}
	note := "\n(loops parallelized / loops examined; type-based dependence analysis cannot\n prove independence for any loop that updates objects through pointers, §8.1)\n"
	return table([]string{"Application", "Dependence analysis", "Commutativity analysis"}, rows) + note, nil
}
