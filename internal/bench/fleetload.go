package bench

// The fleet load generator: drives a mixed corpus of fingerprinted
// programs through an in-process 3-replica fleet (router + commuted
// replicas wired over an in-memory transport, no sockets) and through
// a single replica with the same cache budget, reporting throughput,
// latency percentiles, shed rate, and per-shard hit rates.
//
// The experiment is sized so the corpus overflows one replica's cache
// but fits the fleet's aggregate: fingerprint routing partitions the
// corpus across shards, so the fleet serves warm hits where the single
// replica churns through evict/re-analyze cycles. That capacity win —
// not CPU parallelism — is what the scaling number measures, which is
// why it holds even on a single-core host.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"commute/internal/apps/src"
	"commute/internal/fleet"
	"commute/internal/server"
	"commute/internal/server/api"
	"commute/internal/server/cache"
)

// FleetLoadConfig shapes one fleet load run.
type FleetLoadConfig struct {
	// Requests is the fleet-phase request total (default 20000).
	Requests int
	// BaselineRequests is the single-replica phase total (default
	// Requests/20, min 200 — the churn phase is orders of magnitude
	// slower per request, so it needs fewer samples).
	BaselineRequests int
	// Concurrency is the number of concurrent clients (default 16).
	Concurrency int
	// Replicas is the fleet size (default 3).
	Replicas int
	// CacheBytes is the PER-REPLICA cache budget (default 6 MiB — about
	// a third of the default corpus).
	CacheBytes int64
	// Programs is the distinct-fingerprint corpus size (default 60).
	Programs int
}

func (c FleetLoadConfig) withDefaults() FleetLoadConfig {
	if c.Requests <= 0 {
		c.Requests = 20000
	}
	if c.BaselineRequests <= 0 {
		c.BaselineRequests = c.Requests / 20
		if c.BaselineRequests < 200 {
			c.BaselineRequests = 200
		}
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 6 << 20
	}
	if c.Programs <= 0 {
		c.Programs = 60
	}
	return c
}

// inprocTransport routes shard URLs to in-process handlers, so the
// fleet phase can push millions of requests without socket overhead.
type inprocTransport struct {
	handlers map[string]http.Handler
}

func (t *inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t.handlers[req.URL.Scheme+"://"+req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("no in-process shard %s", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// fleetCorpus builds n distinct-fingerprint analyze requests over the
// §2 graph traversal (varying node count and seed varies the source
// text, hence the fingerprint). Every 10th request also asks for the
// emitted parallel source, exercising the second batch key.
func fleetCorpus(n int) []loadCall {
	calls := make([]loadCall, 0, n)
	for i := 0; i < n; i++ {
		nodes := 32 + (i%8)*4
		source := src.GraphBase + src.GraphMain(nodes, 1000+i)
		req := api.AnalyzeRequest{
			SourceRequest: api.SourceRequest{Name: fmt.Sprintf("graph-v%d.mc", i), Source: source},
			Emit:          i%10 == 0,
		}
		body, err := json.Marshal(req)
		if err != nil {
			panic(err)
		}
		calls = append(calls, loadCall{
			label: fmt.Sprintf("analyze/v%d", i),
			path:  "/v1/analyze",
			body:  body,
		})
	}
	return calls
}

// drive replays the corpus round-robin from cfg.Concurrency clients
// against handler, returning wall time, sorted latencies, and shed and
// error counts.
func drive(handler http.Handler, corpus []loadCall, requests, concurrency int) (time.Duration, []time.Duration, int64, int64) {
	var (
		next atomic.Int64
		shed atomic.Int64
		errs atomic.Int64
		mu   sync.Mutex
	)
	latencies := make([]time.Duration, 0, requests)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, requests/concurrency+1)
			for {
				i := next.Add(1) - 1
				if i >= int64(requests) {
					break
				}
				call := corpus[i%int64(len(corpus))]
				req := httptest.NewRequest("POST", call.path, strings.NewReader(string(call.body)))
				req.Header.Set("Content-Type", "application/json")
				rec := httptest.NewRecorder()
				t0 := time.Now()
				handler.ServeHTTP(rec, req)
				local = append(local, time.Since(t0))
				switch {
				case rec.Code == http.StatusTooManyRequests:
					shed.Add(1)
				case rec.Code != http.StatusOK:
					errs.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return wall, latencies, shed.Load(), errs.Load()
}

func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func statuszOf(h http.Handler) api.StatusZ {
	req := httptest.NewRequest("GET", "/statusz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var st api.StatusZ
	json.Unmarshal(rec.Body.Bytes(), &st)
	return st
}

// RunFleetLoad runs the fleet experiment and the single-replica
// baseline, returning the human report and the serve-* BENCH entries.
func RunFleetLoad(cfg FleetLoadConfig) (string, []PerfResult, error) {
	cfg = cfg.withDefaults()
	corpus := fleetCorpus(cfg.Programs)

	// --- Fleet phase: Replicas × commuted behind a fingerprint router,
	// sharing one blob tier.
	blobs := cache.NewMemStore()
	shardURLs := make([]string, cfg.Replicas)
	transport := &inprocTransport{handlers: make(map[string]http.Handler, cfg.Replicas)}
	replicas := make([]*server.Server, cfg.Replicas)
	for i := range replicas {
		replicas[i] = server.New(server.Config{
			CacheBytes: cfg.CacheBytes,
			Blobs:      blobs,
		})
		shardURLs[i] = fmt.Sprintf("http://shard-%d", i)
		transport.handlers[shardURLs[i]] = replicas[i].Handler()
	}
	rt, err := fleet.NewRouter(fleet.Config{Shards: shardURLs, Transport: transport})
	if err != nil {
		return "", nil, err
	}

	// Deterministic routing check: every corpus fingerprint must map to
	// one stable shard, and the owners must span more than one shard.
	owners := map[string]int{}
	for _, call := range corpus {
		var req api.AnalyzeRequest
		json.Unmarshal(call.body, &req)
		key, err := server.FingerprintRequest(req.SourceRequest)
		if err != nil {
			return "", nil, fmt.Errorf("corpus fingerprint: %w", err)
		}
		owner := rt.RouteKey(key)
		if again := rt.RouteKey(key); again != owner {
			return "", nil, fmt.Errorf("routing nondeterministic for %s: %s vs %s", call.label, owner, again)
		}
		owners[owner]++
	}
	if len(owners) < 2 && cfg.Replicas > 1 {
		return "", nil, fmt.Errorf("all %d programs routed to one shard; ring broken", cfg.Programs)
	}

	// Warm pass: one request per program populates each owner's cache.
	_, _, _, warmErrs := drive(rt.Handler(), corpus, len(corpus), cfg.Concurrency)
	if warmErrs > 0 {
		return "", nil, fmt.Errorf("%d errors during fleet warmup", warmErrs)
	}

	fleetWall, fleetLat, fleetShed, fleetErrs := drive(rt.Handler(), corpus, cfg.Requests, cfg.Concurrency)
	fleetThroughput := float64(cfg.Requests) / fleetWall.Seconds()

	// Per-shard accounting from the replicas' and router's own counters.
	routerSt := statuszOf(rt.Handler())
	type shardLine struct {
		requests, hits, misses, coalesced, adoptions int64
	}
	shardLines := make([]shardLine, cfg.Replicas)
	var fleetHits, fleetMisses, fleetCoalesced int64
	for i, rep := range replicas {
		st := statuszOf(rep.Handler())
		shardLines[i] = shardLine{
			requests:  st.Requests,
			hits:      st.CacheHits,
			misses:    st.CacheMisses,
			coalesced: st.BatchCoalesced,
			adoptions: st.CacheAdoptions,
		}
		fleetHits += st.CacheHits
		fleetMisses += st.CacheMisses
		fleetCoalesced += st.BatchCoalesced
	}
	fleetHitRate := 0.0
	if tot := fleetHits + fleetMisses; tot > 0 {
		fleetHitRate = float64(fleetHits) / float64(tot)
	}

	// --- Baseline phase: one replica, same per-replica budget, same
	// corpus. The corpus overflows its cache, so it churns.
	single := server.New(server.Config{CacheBytes: cfg.CacheBytes})
	drive(single.Handler(), corpus, len(corpus), cfg.Concurrency) // warm what fits
	singleWall, singleLat, singleShed, singleErrs := drive(single.Handler(), corpus, cfg.BaselineRequests, cfg.Concurrency)
	singleThroughput := float64(cfg.BaselineRequests) / singleWall.Seconds()
	singleSt := statuszOf(single.Handler())
	singleHitRate := 0.0
	if tot := singleSt.CacheHits + singleSt.CacheMisses; tot > 0 {
		singleHitRate = float64(singleSt.CacheHits) / float64(tot)
	}

	scaling := fleetThroughput / singleThroughput

	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet-load: %d requests, %d clients, %d-program corpus, %d replicas @ %d MiB cache\n",
		cfg.Requests, cfg.Concurrency, cfg.Programs, cfg.Replicas, cfg.CacheBytes>>20)
	fmt.Fprintf(&sb, "  fleet   throughput %10.1f req/s   p50 %v  p99 %v  shed %d  errors %d  hit rate %.1f%%  coalesced %d\n",
		fleetThroughput, quantileDur(fleetLat, 0.50).Round(time.Microsecond),
		quantileDur(fleetLat, 0.99).Round(time.Microsecond), fleetShed, fleetErrs, fleetHitRate*100, fleetCoalesced)
	for i, sl := range shardLines {
		rs := routerSt.Shards[shardURLs[i]]
		fmt.Fprintf(&sb, "    shard-%d  routed %7d  served %7d  hits %7d  misses %4d  coalesced %5d  adoptions %d\n",
			i, rs.Requests, sl.requests, sl.hits, sl.misses, sl.coalesced, sl.adoptions)
	}
	fmt.Fprintf(&sb, "  single  throughput %10.1f req/s   p50 %v  p99 %v  shed %d  errors %d  hit rate %.1f%% (cache churn: %d evictions)\n",
		singleThroughput, quantileDur(singleLat, 0.50).Round(time.Microsecond),
		quantileDur(singleLat, 0.99).Round(time.Microsecond), singleShed, singleErrs, singleHitRate*100, singleSt.CacheEvictions)
	fmt.Fprintf(&sb, "  scaling %.1fx cache-hit throughput over one replica (aggregate cache capacity, not CPU parallelism)\n", scaling)

	results := []PerfResult{
		{
			Name:       "serve-fleet-analyze-warm",
			NsPerOp:    fleetWall.Nanoseconds() / int64(cfg.Requests),
			Iterations: cfg.Requests,
			Stats: map[string]int64{
				"throughput_rps": int64(fleetThroughput),
				"p50_us":         quantileDur(fleetLat, 0.50).Microseconds(),
				"p99_us":         quantileDur(fleetLat, 0.99).Microseconds(),
				"shed":           fleetShed,
				"errors":         fleetErrs,
				"hit_rate_pct":   int64(fleetHitRate * 100),
				"coalesced":      fleetCoalesced,
				"replicas":       int64(cfg.Replicas),
			},
		},
		{
			Name:       "serve-single-analyze-churn",
			NsPerOp:    singleWall.Nanoseconds() / int64(cfg.BaselineRequests),
			Iterations: cfg.BaselineRequests,
			Stats: map[string]int64{
				"throughput_rps": int64(singleThroughput),
				"p99_us":         quantileDur(singleLat, 0.99).Microseconds(),
				"hit_rate_pct":   int64(singleHitRate * 100),
				"evictions":      singleSt.CacheEvictions,
				"scaling_x1000":  int64(scaling * 1000),
			},
		},
	}
	return sb.String(), results, nil
}
