package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"commute"
	"commute/internal/apps"
	"commute/internal/apps/src"
	"commute/internal/interp"
	"commute/internal/rt"
)

// PerfResult is one measured experiment in machine-readable form.
type PerfResult struct {
	Name        string           `json:"name"`
	NsPerOp     int64            `json:"ns_per_op"`
	AllocsPerOp int64            `json:"allocs_per_op"`
	BytesPerOp  int64            `json:"bytes_per_op"`
	Iterations  int              `json:"iterations"`
	Stats       map[string]int64 `json:"stats,omitempty"`
}

// PerfReport is the BENCH_<rev>.json payload: the performance
// trajectory of the execution engine, comparable across PRs.
type PerfReport struct {
	Rev     string       `json:"rev"`
	Go      string       `json:"go"`
	OS      string       `json:"os"`
	Arch    string       `json:"arch"`
	CPUs    int          `json:"cpus"`
	Workers int          `json:"workers"`
	Results []PerfResult `json:"results"`
}

// perfWorkers is the worker count for the parallel perf experiments.
const perfWorkers = 4

// Micro benchmark programs: tight loops isolating the interpreter's
// hottest paths (frame-slot access, object-field access, and float
// arithmetic). Each runs under both execution engines so the report
// tracks the compiled engine's advantage over the tree walker.
const (
	microIdentSrc = `
class bench {
public:
  int acc;
  int spin(int n);
};
int bench::spin(int n) {
  int i; int a; int b; int c;
  a = 1; b = 2; c = 0;
  for (i = 0; i < n; i++) {
    c = c + a;
    a = b - c;
    b = c + i;
  }
  return c;
}
bench B;
void main() { B.spin(60000); }
`
	microFieldSrc = `
class point {
public:
  int x; int y; int z;
  void jiggle(int n);
};
void point::jiggle(int n) {
  int i;
  for (i = 0; i < n; i++) {
    x = x + 1;
    y = y + x;
    z = z + y;
  }
}
point P;
void main() { P.jiggle(60000); }
`
	microArithSrc = `
class acc {
public:
  double sum;
  double step(int n);
};
double acc::step(int n) {
  int i; double x; double y;
  x = 0.5; y = 1.25;
  for (i = 0; i < n; i++) {
    x = x * 1.0000001 + y;
    y = y * 0.5 + x * 0.25;
    sum = sum + x - y;
  }
  return sum;
}
acc A;
void main() { A.step(60000); }
`

	// specDisjointBenchSrc is the speculation workload: churn reads and
	// overwrites val, so the (churn, churn) pair fails the symbolic test
	// and fill's extent is rejected — but every task targets a distinct
	// cell, so the speculative region always commits. Sized so the
	// journaled loads and stores inside the region dominate the region
	// setup, making the entry a fair monitor-speed comparison between
	// the tree walker and the compiled engine.
	specDisjointBenchSrc = `
const int N = 64;

class cell {
public:
  int val;
  void churn(int v);
};

class table {
public:
  cell *cells[N];
  int sum;
  void init();
  void fill();
  void report();
};

table T;

void cell::churn(int v) {
  int i;
  for (i = 0; i < 200; i += 1) {
    val = val * 3 + v + i;
  }
}

void table::init() {
  int i;
  for (i = 0; i < N; i += 1) {
    cells[i] = new cell;
  }
}

void table::fill() {
  int i;
  for (i = 0; i < N; i += 1) {
    cells[i]->churn(i);
  }
}

void table::report() {
  int i;
  sum = 0;
  for (i = 0; i < N; i += 1) {
    sum = sum + cells[i]->val;
  }
  print(sum);
}

void main() {
  T.init();
  T.fill();
  T.report();
}
`
)

// statsMap extracts the scheduler counters worth tracking across PRs.
func statsMap(st *rt.Stats) map[string]int64 {
	return map[string]int64{
		"regions":        st.Regions,
		"loops":          st.ParallelLoops,
		"chunks":         st.Chunks,
		"iterations":     st.Iterations,
		"tasks":          st.Tasks,
		"lazy":           st.LazyInlines,
		"locks":          st.LockAcquires,
		"steals":         st.Steals,
		"local_pops":     st.LocalPops,
		"guard_parallel": st.GuardParallel,
		"guard_serial":   st.GuardSerial,
		"spec_regions":   st.SpeculativeRegions,
		"spec_commits":   st.SpeculationCommits,
		"spec_aborts":    st.SpeculationAborts,
	}
}

// RunPerf measures wall-clock execution of the real applications under
// the serial interpreter and both parallel schedulers, sized for a
// quick smoke run (seconds, not minutes). Each result carries ns/op
// and allocs/op from testing.Benchmark plus the runtime's scheduler
// counters from a representative run.
func RunPerf(rev string) (*PerfReport, error) {
	bh, err := apps.BarnesHut(256, 1)
	if err != nil {
		return nil, fmt.Errorf("barnes-hut: %w", err)
	}
	water, err := apps.Water(64, 1)
	if err != nil {
		return nil, fmt.Errorf("water: %w", err)
	}
	// Conditional commutativity: the same condhash program with the
	// synthesized guard holding (mode 0, parallel regions) and failing
	// (mode 3, serial fallback), tracking what the runtime guard costs
	// on each path.
	condTrue, err := apps.CondHash(0, 256)
	if err != nil {
		return nil, fmt.Errorf("condhash: %w", err)
	}
	condFalse, err := apps.CondHash(3, 256)
	if err != nil {
		return nil, fmt.Errorf("condhash-serial: %w", err)
	}
	// Speculation: the commit-heavy disjoint workload under both
	// monitored engines and with speculation off (the rejected extent
	// runs serially inside the parallel schedule), plus the abort-heavy
	// conflict demonstrator exercising rollback and serial rerun.
	specDisjoint, err := commute.Load("spec-disjoint.mc", specDisjointBenchSrc)
	if err != nil {
		return nil, fmt.Errorf("spec-disjoint: %w", err)
	}
	specConflict, err := commute.Load("spec-conflict.mc", src.SpecConflict)
	if err != nil {
		return nil, fmt.Errorf("spec-conflict: %w", err)
	}

	micros := []struct {
		name string
		src  string
	}{
		{"micro-ident", microIdentSrc},
		{"micro-field", microFieldSrc},
		{"micro-arith", microArithSrc},
	}
	type cse struct {
		name  string
		sys   *commute.System
		sched rt.SchedMode
		ser   bool
		eng   interp.Engine
		cond  bool
		spec  rt.SpecMode
	}
	var cases []cse
	for _, m := range micros {
		sys, err := commute.Load(m.name+".mc", m.src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		cases = append(cases,
			cse{m.name + "-compiled", sys, 0, true, interp.EngineCompiled, false, rt.SpecOff},
			cse{m.name + "-walk", sys, 0, true, interp.EngineWalk, false, rt.SpecOff},
		)
	}

	rep := &PerfReport{
		Rev:     rev,
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Workers: perfWorkers,
	}

	cases = append(cases,
		cse{"barneshut-serial", bh, 0, true, interp.EngineCompiled, false, rt.SpecOff},
		cse{"barneshut-parallel-stealing", bh, rt.SchedStealing, false, interp.EngineCompiled, false, rt.SpecOff},
		cse{"barneshut-parallel-central", bh, rt.SchedCentral, false, interp.EngineCompiled, false, rt.SpecOff},
		cse{"water-serial", water, 0, true, interp.EngineCompiled, false, rt.SpecOff},
		cse{"water-parallel-stealing", water, rt.SchedStealing, false, interp.EngineCompiled, false, rt.SpecOff},
		cse{"water-parallel-central", water, rt.SchedCentral, false, interp.EngineCompiled, false, rt.SpecOff},
		cse{"condhash-serial", condTrue, 0, true, interp.EngineCompiled, false, rt.SpecOff},
		cse{"condhash-guard-parallel", condTrue, rt.SchedStealing, false, interp.EngineCompiled, true, rt.SpecOff},
		cse{"condhash-guard-serial", condFalse, rt.SchedStealing, false, interp.EngineCompiled, true, rt.SpecOff},
		cse{"spec-disjoint-off-compiled", specDisjoint, rt.SchedStealing, false, interp.EngineCompiled, false, rt.SpecOff},
		cse{"spec-disjoint-force-compiled", specDisjoint, rt.SchedStealing, false, interp.EngineCompiled, false, rt.SpecForce},
		cse{"spec-disjoint-force-walk", specDisjoint, rt.SchedStealing, false, interp.EngineWalk, false, rt.SpecForce},
		cse{"spec-conflict-force-compiled", specConflict, rt.SchedStealing, false, interp.EngineCompiled, false, rt.SpecForce},
	)
	for _, c := range cases {
		c := c
		var runErr error
		var lastStats *rt.Stats
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if c.ser {
					if _, err := c.sys.RunSerialEngine(c.eng, io.Discard); err != nil {
						runErr = err
						b.FailNow()
					}
					continue
				}
				opts := commute.RunOptions{Workers: perfWorkers, Sched: c.sched, Engine: c.eng, Conditional: c.cond, Speculate: c.spec}
				_, st, err := c.sys.RunParallelOpts(nil, opts, io.Discard)
				if err != nil {
					runErr = err
					b.FailNow()
				}
				lastStats = st
			}
		})
		if runErr != nil {
			return nil, fmt.Errorf("%s: %w", c.name, runErr)
		}
		pr := PerfResult{
			Name:        c.name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		}
		if lastStats != nil {
			pr.Stats = statsMap(lastStats)
		}
		rep.Results = append(rep.Results, pr)
	}
	if err := analysisPerf(rep, bh, water); err != nil {
		return nil, err
	}
	if err := nativePerf(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// MergeResults folds results into BENCH_<rev>.json in dir — reading
// the existing report when one is there, replacing same-named entries,
// appending the rest — and returns the path. The serving-path load
// runs (-serve-load, -fleet-load) use it so their serve-* entries land
// in the same trajectory file as the engine suites and gate through
// benchdiff identically.
func MergeResults(dir, rev string, results []PerfResult) (string, error) {
	rep := &PerfReport{
		Rev:     rev,
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Workers: perfWorkers,
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, rev)
	if dir == "" || dir == "." {
		path = fmt.Sprintf("BENCH_%s.json", rev)
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, rep); err != nil {
			return "", fmt.Errorf("existing %s: %w", path, err)
		}
	}
	replaced := make(map[string]PerfResult, len(results))
	for _, r := range results {
		replaced[r.Name] = r
	}
	merged := rep.Results[:0]
	for _, r := range rep.Results {
		if nr, ok := replaced[r.Name]; ok {
			merged = append(merged, nr)
			delete(replaced, r.Name)
		} else {
			merged = append(merged, r)
		}
	}
	for _, r := range results {
		if _, pending := replaced[r.Name]; pending {
			merged = append(merged, r)
		}
	}
	rep.Results = merged
	return rep.WriteJSON(dir)
}

// WriteJSON writes the report to BENCH_<rev>.json in dir and returns
// the path.
func (r *PerfReport) WriteJSON(dir string) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, r.Rev)
	if dir == "" || dir == "." {
		path = fmt.Sprintf("BENCH_%s.json", r.Rev)
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
