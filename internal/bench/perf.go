package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"commute"
	"commute/internal/apps"
	"commute/internal/rt"
)

// PerfResult is one measured experiment in machine-readable form.
type PerfResult struct {
	Name        string           `json:"name"`
	NsPerOp     int64            `json:"ns_per_op"`
	AllocsPerOp int64            `json:"allocs_per_op"`
	BytesPerOp  int64            `json:"bytes_per_op"`
	Iterations  int              `json:"iterations"`
	Stats       map[string]int64 `json:"stats,omitempty"`
}

// PerfReport is the BENCH_<rev>.json payload: the performance
// trajectory of the execution engine, comparable across PRs.
type PerfReport struct {
	Rev     string       `json:"rev"`
	Go      string       `json:"go"`
	OS      string       `json:"os"`
	Arch    string       `json:"arch"`
	CPUs    int          `json:"cpus"`
	Workers int          `json:"workers"`
	Results []PerfResult `json:"results"`
}

// perfWorkers is the worker count for the parallel perf experiments.
const perfWorkers = 4

// statsMap extracts the scheduler counters worth tracking across PRs.
func statsMap(st *rt.Stats) map[string]int64 {
	return map[string]int64{
		"regions":    st.Regions,
		"loops":      st.ParallelLoops,
		"chunks":     st.Chunks,
		"iterations": st.Iterations,
		"tasks":      st.Tasks,
		"lazy":       st.LazyInlines,
		"locks":      st.LockAcquires,
		"steals":     st.Steals,
		"local_pops": st.LocalPops,
	}
}

// RunPerf measures wall-clock execution of the real applications under
// the serial interpreter and both parallel schedulers, sized for a
// quick smoke run (seconds, not minutes). Each result carries ns/op
// and allocs/op from testing.Benchmark plus the runtime's scheduler
// counters from a representative run.
func RunPerf(rev string) (*PerfReport, error) {
	bh, err := apps.BarnesHut(256, 1)
	if err != nil {
		return nil, fmt.Errorf("barnes-hut: %w", err)
	}
	water, err := apps.Water(64, 1)
	if err != nil {
		return nil, fmt.Errorf("water: %w", err)
	}

	rep := &PerfReport{
		Rev:     rev,
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Workers: perfWorkers,
	}

	type cse struct {
		name  string
		sys   *commute.System
		sched rt.SchedMode
		ser   bool
	}
	cases := []cse{
		{"barneshut-serial", bh, 0, true},
		{"barneshut-parallel-stealing", bh, rt.SchedStealing, false},
		{"barneshut-parallel-central", bh, rt.SchedCentral, false},
		{"water-serial", water, 0, true},
		{"water-parallel-stealing", water, rt.SchedStealing, false},
		{"water-parallel-central", water, rt.SchedCentral, false},
	}
	for _, c := range cases {
		c := c
		var runErr error
		var lastStats *rt.Stats
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if c.ser {
					if _, err := c.sys.RunSerial(io.Discard); err != nil {
						runErr = err
						b.FailNow()
					}
					continue
				}
				opts := commute.RunOptions{Workers: perfWorkers, Sched: c.sched}
				_, st, err := c.sys.RunParallelOpts(nil, opts, io.Discard)
				if err != nil {
					runErr = err
					b.FailNow()
				}
				lastStats = st
			}
		})
		if runErr != nil {
			return nil, fmt.Errorf("%s: %w", c.name, runErr)
		}
		pr := PerfResult{
			Name:        c.name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		}
		if lastStats != nil {
			pr.Stats = statsMap(lastStats)
		}
		rep.Results = append(rep.Results, pr)
	}
	return rep, nil
}

// WriteJSON writes the report to BENCH_<rev>.json in dir and returns
// the path.
func (r *PerfReport) WriteJSON(dir string) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, r.Rev)
	if dir == "" || dir == "." {
		path = fmt.Sprintf("BENCH_%s.json", r.Rev)
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
