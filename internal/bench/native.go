package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"commute"
	"commute/internal/apps"
	"commute/internal/apps/src"
	"commute/internal/nativegen"
)

// nativeBenchReps is how many timed repetitions the generated driver's
// -bench flag runs per experiment (after one warm-up).
const nativeBenchReps = 10

// nativePerf appends the native-backend results: each application is
// compiled to a standalone Go binary with EmitGoPackage, and the
// binary's own -bench loop reports ns/op — true hardware-speed numbers
// with no interpreter in the loop, comparable in the report against
// the compiled-closure and tree-walking engines on the same workloads.
// Skipped silently when the Go toolchain is unavailable.
func nativePerf(rep *PerfReport) error {
	if !nativegen.HaveGo() {
		return nil
	}
	tmp, err := os.MkdirTemp("", "commute-native-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	for _, a := range []struct{ name string }{{"barneshut"}, {"water"}} {
		sys, err := loadBenchApp(a.name)
		if err != nil {
			return fmt.Errorf("native %s: %w", a.name, err)
		}
		dir := filepath.Join(tmp, a.name)
		if err := nativegen.Generate(sys, a.name, dir); err != nil {
			return fmt.Errorf("native %s: %w", a.name, err)
		}
		bin, err := nativegen.Build(dir)
		if err != nil {
			return fmt.Errorf("native %s: %w", a.name, err)
		}
		for _, c := range []struct {
			suffix string
			args   []string
		}{
			{"serial", []string{"-mode", "serial"}},
			{"parallel-stealing", []string{"-mode", "parallel", "-workers", strconv.Itoa(perfWorkers), "-sched", "stealing"}},
			{"parallel-central", []string{"-mode", "parallel", "-workers", strconv.Itoa(perfWorkers), "-sched", "central"}},
		} {
			args := append(append([]string{}, c.args...), "-bench", strconv.Itoa(nativeBenchReps))
			out, err := nativegen.Run(bin, args...)
			if err != nil {
				return fmt.Errorf("native %s %s: %w", a.name, c.suffix, err)
			}
			ns, err := parseNsPerOp(out)
			if err != nil {
				return fmt.Errorf("native %s %s: %w", a.name, c.suffix, err)
			}
			rep.Results = append(rep.Results, PerfResult{
				Name:       "native-" + a.name + "-" + c.suffix,
				NsPerOp:    ns,
				Iterations: nativeBenchReps,
			})
		}
	}
	return nativeSpecPerf(rep, tmp)
}

// nativeSpecPerf appends the spec-native-* results: the speculation
// workloads compiled through the journaled SJ_ lowering, timed with
// speculation off (rejected extents serial) and forced, on the
// commit-heavy disjoint program and the abort-heavy conflict one.
func nativeSpecPerf(rep *PerfReport, tmp string) error {
	for _, a := range []struct {
		name     string
		src      string
		policies []string
	}{
		// The conflict program's off run is a trivial serial loop with no
		// speculation machinery in it — nanoseconds of noise, useless to
		// gate — so only the abort-and-rerun path is timed there.
		{"spec-disjoint", specDisjointBenchSrc, []string{"off", "force"}},
		{"spec-conflict", src.SpecConflict, []string{"force"}},
	} {
		sys, err := commute.Load(a.name+".mc", a.src)
		if err != nil {
			return fmt.Errorf("native %s: %w", a.name, err)
		}
		dir := filepath.Join(tmp, a.name)
		if err := nativegen.GeneratePlan(sys.SpecPlan, a.name, dir); err != nil {
			return fmt.Errorf("native %s: %w", a.name, err)
		}
		bin, err := nativegen.Build(dir)
		if err != nil {
			return fmt.Errorf("native %s: %w", a.name, err)
		}
		for _, policy := range a.policies {
			out, err := nativegen.Run(bin, "-mode", "parallel",
				"-workers", strconv.Itoa(perfWorkers), "-speculate", policy,
				"-bench", strconv.Itoa(nativeBenchReps))
			if err != nil {
				return fmt.Errorf("native %s %s: %w", a.name, policy, err)
			}
			ns, err := parseNsPerOp(out)
			if err != nil {
				return fmt.Errorf("native %s %s: %w", a.name, policy, err)
			}
			rep.Results = append(rep.Results, PerfResult{
				Name:       "spec-native-" + a.name[len("spec-"):] + "-" + policy,
				NsPerOp:    ns,
				Iterations: nativeBenchReps,
			})
		}
	}
	return nil
}

// loadBenchApp loads an application at the same workload the
// interpreter perf cases use, so the native-* numbers compare like
// for like with barneshut-*/water-*.
func loadBenchApp(name string) (*commute.System, error) {
	switch name {
	case "barneshut":
		return apps.BarnesHut(256, 1)
	case "water":
		return apps.Water(64, 1)
	}
	return nil, fmt.Errorf("unknown bench app %q", name)
}

// parseNsPerOp extracts the driver's "ns_per_op N" line.
func parseNsPerOp(out string) (int64, error) {
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "ns_per_op "); ok {
			return strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		}
	}
	return 0, fmt.Errorf("no ns_per_op line in output %q", out)
}
