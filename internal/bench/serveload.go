package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"commute/internal/apps/src"
	"commute/internal/server"
	"commute/internal/server/api"
)

// ServeLoadConfig shapes one load run against an in-process commuted.
type ServeLoadConfig struct {
	// Requests is the total request count (default 200).
	Requests int
	// Concurrency is the number of concurrent clients (default 16).
	Concurrency int
	// Workers is the server's worker-pool size (0: GOMAXPROCS);
	// Queue its wait-queue bound (0: server default).
	Workers int
	Queue   int
	// CacheBytes is the server's artifact cache budget (0: default).
	CacheBytes int64
}

// loadCall is one templated request in the replay corpus.
type loadCall struct {
	label string
	path  string
	body  []byte
}

// serveLoadCorpus builds the replay mix over the example corpus: the
// §2 graph traversal at several node counts (distinct cache keys) is
// analyzed and executed, so the run exercises cold loads, warm hits,
// and real parallel execution under concurrency.
func serveLoadCorpus() []loadCall {
	var calls []loadCall
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		return b
	}
	for _, nodes := range []int{48, 64, 96, 128} {
		source := src.GraphBase + src.GraphMain(nodes, 12345)
		name := fmt.Sprintf("graph%d.mc", nodes)
		calls = append(calls, loadCall{
			label: fmt.Sprintf("analyze/graph%d", nodes),
			path:  "/v1/analyze",
			body: mustJSON(api.AnalyzeRequest{
				SourceRequest: api.SourceRequest{Name: name, Source: source},
			}),
		})
		calls = append(calls, loadCall{
			label: fmt.Sprintf("run/graph%d", nodes),
			path:  "/v1/run",
			body: mustJSON(api.RunRequest{
				SourceRequest: api.SourceRequest{Name: name, Source: source},
				Mode:          "parallel",
				Workers:       4,
			}),
		})
	}
	calls = append(calls, loadCall{
		label: "simulate/graph",
		path:  "/v1/simulate",
		body: mustJSON(api.SimulateRequest{
			SourceRequest: api.SourceRequest{App: "graph"},
			Procs:         []int{1, 4, 16},
		}),
	})
	return calls
}

// RunServeLoad spins up commuted in-process, replays the corpus from
// Concurrency clients, and reports throughput, latency percentiles,
// shed rate, and the cache hit rate, plus the serve-* BENCH entry for
// the trajectory file.
func RunServeLoad(cfg ServeLoadConfig) (string, []PerfResult, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}

	srv := server.New(server.Config{
		Workers:    cfg.Workers,
		Queue:      cfg.Queue,
		CacheBytes: cfg.CacheBytes,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Timeout = 2 * time.Minute

	corpus := serveLoadCorpus()
	var (
		next      atomic.Int64
		shed      atomic.Int64
		errs      atomic.Int64
		latMu     sync.Mutex
		latencies []time.Duration
	)
	record := func(d time.Duration) {
		latMu.Lock()
		latencies = append(latencies, d)
		latMu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Requests) {
					return
				}
				call := corpus[i%int64(len(corpus))]
				t0 := time.Now()
				resp, err := client.Post(ts.URL+call.path, "application/json", bytes.NewReader(call.body))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				record(time.Since(t0))
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				case resp.StatusCode != http.StatusOK:
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	// Cache hit rate from the daemon's own counters.
	var st api.StatusZ
	if resp, err := client.Get(ts.URL + "/statusz"); err == nil {
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
	}
	hitRate := 0.0
	if tot := st.CacheHits + st.CacheMisses; tot > 0 {
		hitRate = float64(st.CacheHits) / float64(tot)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pick := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q*float64(len(latencies))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "serve-load: %d requests, %d clients, %d corpus entries\n",
		cfg.Requests, cfg.Concurrency, len(corpus))
	fmt.Fprintf(&sb, "  wall time     %v\n", wall.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  throughput    %.1f req/s\n", float64(cfg.Requests)/wall.Seconds())
	fmt.Fprintf(&sb, "  p50 latency   %v\n", pick(0.50).Round(time.Microsecond))
	fmt.Fprintf(&sb, "  p99 latency   %v\n", pick(0.99).Round(time.Microsecond))
	fmt.Fprintf(&sb, "  shed (429)    %d\n", shed.Load())
	fmt.Fprintf(&sb, "  errors        %d\n", errs.Load())
	fmt.Fprintf(&sb, "  cache         %d hits / %d misses / %d evictions (%.1f%% hit rate)\n",
		st.CacheHits, st.CacheMisses, st.CacheEvictions, hitRate*100)
	results := []PerfResult{{
		Name:       "serve-load-mixed",
		NsPerOp:    wall.Nanoseconds() / int64(cfg.Requests),
		Iterations: cfg.Requests,
		Stats: map[string]int64{
			"throughput_rps": int64(float64(cfg.Requests) / wall.Seconds()),
			"p50_us":         pick(0.50).Microseconds(),
			"p99_us":         pick(0.99).Microseconds(),
			"shed":           shed.Load(),
			"errors":         errs.Load(),
			"hit_rate_pct":   int64(hitRate * 100),
			"coalesced":      st.BatchCoalesced,
		},
	}}
	return sb.String(), results, nil
}
