package bench

import (
	"testing"

	"commute"
	"commute/internal/analysis/symbolic"
	"commute/internal/apps"
)

// Analysis-phase benchmarks: go test -bench 'Analyze|SimplifyDeep|PairTest' ./internal/bench/
//
// Each Analyze iteration is a full cold analysis (fresh core.Analysis,
// fresh effects memos) of a shared checked program; the serial/parallel
// sub-benchmarks differ only in the driver's Workers setting.

func benchAnalyze(b *testing.B, sys *commute.System) {
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AnalyzeCold(sys, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AnalyzeCold(sys, 0) // GOMAXPROCS
		}
	})
}

func BenchmarkAnalyzeBarnesHut(b *testing.B) {
	sys, err := apps.BarnesHut(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchAnalyze(b, sys)
}

func BenchmarkAnalyzeWater(b *testing.B) {
	sys, err := apps.Water(16, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchAnalyze(b, sys)
}

func BenchmarkSimplifyDeep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		symbolic.Simplify(DeepExpr(200))
	}
}

func BenchmarkPairTest(b *testing.B) {
	pt, err := NewPairTest()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := pt.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
