package bench_test

import (
	"strings"
	"testing"

	"commute/internal/bench"
)

func smallRunner() *bench.Runner {
	return bench.NewRunner(bench.Config{
		BHBodies:   []int{128},
		BHSteps:    1,
		WaterMols:  []int{27},
		WaterSteps: 1,
		Procs:      []int{1, 2, 8, 32},
	})
}

// TestAllExperimentsRun executes every experiment at a tiny scale and
// sanity-checks the outputs.
func TestAllExperimentsRun(t *testing.T) {
	r := smallRunner()
	for _, e := range bench.Experiments() {
		out, err := r.Run(e.ID)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out) < 40 {
			t.Errorf("%s: suspiciously short output:\n%s", e.ID, out)
		}
		if !strings.Contains(out, "## ") {
			t.Errorf("%s: missing title", e.ID)
		}
	}
}

func TestTable1Equality(t *testing.T) {
	r := smallRunner()
	out, err := r.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "equal after simplification: true") {
		t.Errorf("Table 1 should report equal sums:\n%s", out)
	}
	if !strings.Contains(out, "invoked multisets equal:     true") {
		t.Errorf("Table 1 should report equal multisets:\n%s", out)
	}
}

func TestDepBaseFindsNothing(t *testing.T) {
	r := smallRunner()
	out, err := r.Run("depbase")
	if err != nil {
		t.Fatal(err)
	}
	// The dependence column must report 0/k for every application.
	for _, app := range []string{"Barnes-Hut", "Water", "Graph traversal"} {
		if !strings.Contains(out, app) {
			t.Errorf("missing %s row:\n%s", app, out)
		}
	}
	if !strings.Contains(out, "0/") {
		t.Errorf("dependence analysis should parallelize nothing:\n%s", out)
	}
}

func TestAblationAuxLosesParallelism(t *testing.T) {
	r := smallRunner()
	out, err := r.Run("ablation-aux")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
}
