package bench

import (
	"fmt"
	"testing"

	"commute"
	"commute/internal/analysis/extent"
	"commute/internal/analysis/symbolic"
	"commute/internal/apps"
	"commute/internal/core"
	"commute/internal/frontend/types"
)

// Analysis-phase experiments: the compiler's cold path. Execution
// benchmarks measure a warm System; these measure what it costs to
// produce one — a fresh core.Analysis per iteration over a shared
// checked program, so every effects memo, pair-test cache, and report
// is rebuilt from scratch. The serial/parallel split (Workers 1 vs
// perfWorkers) tracks what the parallel analysis driver buys.

// AnalyzeCold runs a complete cold commutativity analysis of sys's
// program with the given driver parallelism.
func AnalyzeCold(sys *commute.System, workers int) []*core.MethodReport {
	a := core.New(sys.Prog)
	a.Workers = workers
	return a.AnalyzeAll()
}

// DeepExpr builds an n-level alternating sum/product/negation tree over
// a few variables — the shape the simplifier sees from long symbolic
// executions — without interning, so a fresh Simplify walks every node.
func DeepExpr(n int) symbolic.Expr {
	var e symbolic.Expr = symbolic.Var{Name: "x"}
	for i := 0; i < n; i++ {
		v := symbolic.Var{Name: string(rune('a' + i%4))}
		switch i % 3 {
		case 0:
			e = &symbolic.Nary{Op: symbolic.OpAdd, Args: []symbolic.Expr{e, v,
				symbolic.Num{V: float64(i%7 - 3), IsInt: true}}}
		case 1:
			e = &symbolic.Nary{Op: symbolic.OpMul, Args: []symbolic.Expr{v, e}}
		default:
			e = &symbolic.Neg{X: e}
		}
	}
	return e
}

// PairTestEnv is the Figure-11 fixture for the pair-test benchmark: the
// §2 graph traversal's visit operation and its symbolic environment.
type PairTestEnv struct {
	Visit *types.Method
	Env   *symbolic.Env
}

// NewPairTest loads the graph application and builds the environment
// the analysis would use to pair-test its traversal extent.
func NewPairTest() (*PairTestEnv, error) {
	sys, err := apps.Graph(64)
	if err != nil {
		return nil, err
	}
	visit := sys.Prog.MethodByFullName("graph::visit")
	traverse := sys.Prog.MethodByFullName("builder::traverse")
	if visit == nil || traverse == nil {
		return nil, fmt.Errorf("graph app is missing visit/traverse")
	}
	ec := extent.Constants(sys.Analysis.Eff, traverse)
	ext := extent.Compute(sys.Analysis.Eff, traverse, ec)
	aux := make(map[int]bool)
	for _, c := range ext.Aux {
		aux[c.ID] = true
	}
	return &PairTestEnv{Visit: visit, Env: symbolic.NewEnv(sys.Prog, ec, aux)}, nil
}

// Run executes one full Figure-11 symbolic pair test: both orders,
// canonicalization, and the equality comparison.
func (p *PairTestEnv) Run() error {
	r12, err := symbolic.ExecutePair(p.Visit, p.Visit, "1", "2", p.Env)
	if err != nil {
		return err
	}
	r21, err := symbolic.ExecutePair(p.Visit, p.Visit, "2", "1", p.Env)
	if err != nil {
		return err
	}
	c12, c21 := r12.Canonical(), r21.Canonical()
	for k, v := range c12.IVars {
		if w, ok := c21.IVars[k]; !ok || !symbolic.Equal(v, w) {
			return fmt.Errorf("pair test diverged on %s", k)
		}
	}
	if !symbolic.EqualMultisets(c12.Invoked, c21.Invoked) {
		return fmt.Errorf("pair test invoked multisets diverged")
	}
	return nil
}

// analysisPerf appends the analysis-phase results to a perf report.
func analysisPerf(rep *PerfReport, bh, water *commute.System) error {
	pt, err := NewPairTest()
	if err != nil {
		return fmt.Errorf("pairtest fixture: %w", err)
	}
	var runErr error
	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"analysis-barneshut-serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AnalyzeCold(bh, 1)
			}
		}},
		{"analysis-barneshut-parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AnalyzeCold(bh, perfWorkers)
			}
		}},
		{"analysis-water-serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AnalyzeCold(water, 1)
			}
		}},
		{"analysis-water-parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AnalyzeCold(water, perfWorkers)
			}
		}},
		{"analysis-simplify-deep", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				symbolic.Simplify(DeepExpr(200))
			}
		}},
		{"analysis-pairtest", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := pt.Run(); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		}},
	}
	for _, c := range cases {
		c := c
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			c.fn(b)
		})
		if runErr != nil {
			return fmt.Errorf("%s: %w", c.name, runErr)
		}
		rep.Results = append(rep.Results, PerfResult{
			Name:        c.name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		})
	}
	return nil
}
