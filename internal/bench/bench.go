// Package bench regenerates every table and figure of the paper's
// evaluation section (§6) on the simulated multiprocessor, plus the
// ablation studies DESIGN.md calls out. Each experiment produces a
// plain-text table whose rows mirror the paper's presentation;
// EXPERIMENTS.md records the paper-reported values next to ours.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"commute"
	"commute/internal/apps"
	"commute/internal/simdash"
	"commute/internal/tracer"
)

// Config selects workload sizes and machine shape.
type Config struct {
	BHBodies   []int
	BHSteps    int
	WaterMols  []int
	WaterSteps int
	Procs      []int
}

// DefaultConfig returns a laptop-scale configuration (the paper's sizes
// are available via PaperConfig). The structural results are
// size-stable; EXPERIMENTS.md verifies them at paper scale.
func DefaultConfig() Config {
	return Config{
		BHBodies:   []int{512, 1024},
		BHSteps:    2,
		WaterMols:  []int{125, 216},
		WaterSteps: 2,
		Procs:      []int{1, 2, 4, 8, 16, 32},
	}
}

// PaperConfig returns the paper's workload sizes (8192/16384 bodies,
// 343/512 molecules); expect minutes of tracing time.
func PaperConfig() Config {
	return Config{
		BHBodies:   []int{8192, 16384},
		BHSteps:    2,
		WaterMols:  []int{343, 512},
		WaterSteps: 2,
		Procs:      []int{1, 2, 4, 8, 16, 32},
	}
}

// Runner caches compiled systems and traces across experiments.
type Runner struct {
	Cfg Config

	systems map[string]*commute.System
	traces  map[string]*tracer.Trace
}

// NewRunner returns a runner for the configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		Cfg:     cfg,
		systems: make(map[string]*commute.System),
		traces:  make(map[string]*tracer.Trace),
	}
}

func (r *Runner) bhSystem(bodies int) (*commute.System, error) {
	key := fmt.Sprintf("bh%d", bodies)
	if s, ok := r.systems[key]; ok {
		return s, nil
	}
	s, err := apps.BarnesHut(bodies, r.Cfg.BHSteps)
	if err != nil {
		return nil, err
	}
	r.systems[key] = s
	return s, nil
}

func (r *Runner) waterSystem(mols int) (*commute.System, error) {
	key := fmt.Sprintf("w%d", mols)
	if s, ok := r.systems[key]; ok {
		return s, nil
	}
	s, err := apps.Water(mols, r.Cfg.WaterSteps)
	if err != nil {
		return nil, err
	}
	r.systems[key] = s
	return s, nil
}

func (r *Runner) trace(key string, sys *commute.System) (*tracer.Trace, error) {
	if t, ok := r.traces[key]; ok {
		return t, nil
	}
	t, err := sys.Trace()
	if err != nil {
		return nil, err
	}
	r.traces[key] = t
	return t, nil
}

func (r *Runner) bhTrace(bodies int) (*tracer.Trace, error) {
	sys, err := r.bhSystem(bodies)
	if err != nil {
		return nil, err
	}
	return r.trace(fmt.Sprintf("bh%d", bodies), sys)
}

func (r *Runner) waterTrace(mols int) (*tracer.Trace, error) {
	sys, err := r.waterSystem(mols)
	if err != nil {
		return nil, err
	}
	return r.trace(fmt.Sprintf("w%d", mols), sys)
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (string, error)
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: new values of sum under both execution orders", (*Runner).Table1},
		{"table2", "Table 2: analysis statistics for Barnes-Hut", (*Runner).Table2},
		{"table3", "Table 3: execution times for Barnes-Hut", (*Runner).Table3},
		{"fig17", "Figure 17: speedup for Barnes-Hut", (*Runner).Fig17},
		{"table4", "Table 4: parallelism coverage for Barnes-Hut", (*Runner).Table4},
		{"table5", "Table 5: parallel construct overhead", (*Runner).Table5},
		{"table6", "Table 6: granularities for Barnes-Hut", (*Runner).Table6},
		{"fig18", "Figure 18: cumulative time breakdowns for Barnes-Hut", (*Runner).Fig18},
		{"table7", "Table 7: execution times for explicitly parallel Barnes-Hut", (*Runner).Table7},
		{"table8", "Table 8: analysis statistics for Water", (*Runner).Table8},
		{"table9", "Table 9: execution times for Water", (*Runner).Table9},
		{"fig19", "Figure 19: speedup for Water", (*Runner).Fig19},
		{"table10", "Table 10: parallelism coverage for Water", (*Runner).Table10},
		{"table11", "Table 11: granularities for Water", (*Runner).Table11},
		{"fig20", "Figure 20: cumulative time breakdowns for Water", (*Runner).Fig20},
		{"table12", "Table 12: execution times for explicitly parallel Water", (*Runner).Table12},
		{"ablation-aux", "Ablation: auxiliary-operation recognition disabled", (*Runner).AblationAux},
		{"ablation-ec", "Ablation: extent-constant extension disabled", (*Runner).AblationEC},
		{"ablation-locks", "Ablation: lock hoisting/elimination disabled", (*Runner).AblationLocks},
		{"ablation-suppress", "Ablation: nested-concurrency suppression disabled", (*Runner).AblationSuppress},
		{"replication", "Extension: §6.3.4 automatic accumulator replication", (*Runner).Replication},
		{"depbase", "Baseline: type-based data dependence analysis", (*Runner).DepBase},
	}
}

// Run executes one experiment by ID.
func (r *Runner) Run(id string) (string, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			body, err := e.Run(r)
			if err != nil {
				return "", fmt.Errorf("%s: %w", e.ID, err)
			}
			return "## " + e.Title + "\n\n" + body, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return "", fmt.Errorf("unknown experiment %q (have: %s)", id, strings.Join(ids, ", "))
}

// RunAll executes every experiment in order.
func (r *Runner) RunAll() (string, error) {
	var sb strings.Builder
	for _, e := range Experiments() {
		out, err := r.Run(e.ID)
		if err != nil {
			return sb.String(), err
		}
		sb.WriteString(out)
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// ---------------------------------------------------------------------
// Formatting helpers

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

func pad(s string, w int) string {
	n := w - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// secs converts simulated microseconds to seconds.
func secs(us float64) string { return fmt.Sprintf("%.3f", us/1e6) }

// sortedKeys returns map keys sorted (generic helper for stable output).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// simSeries simulates a trace at every configured processor count.
func (r *Runner) simSeries(tr *tracer.Trace) map[int]*simdash.Result {
	out := make(map[int]*simdash.Result, len(r.Cfg.Procs))
	for _, p := range r.Cfg.Procs {
		out[p] = simdash.Simulate(tr, simdash.DefaultParams(p))
	}
	return out
}

// serialMicros returns the pure serial execution time of a trace (no
// parallel overheads at all).
func serialMicros(tr *tracer.Trace) float64 {
	params := simdash.DefaultParams(1)
	return float64(tr.SerialUnits()+tr.ParallelUnits()) * params.UnitMicros
}
