package bench

import (
	"fmt"
	"strings"

	"commute/internal/analysis/extent"
	"commute/internal/analysis/symbolic"
	"commute/internal/apps"
	"commute/internal/core"
	"commute/internal/simdash"
	"commute/internal/tracer"
)

// Table1 reproduces Table 1: the symbolic new values of the sum
// instance variable under both execution orders of two visit
// operations, shown before and after simplification.
func (r *Runner) Table1() (string, error) {
	sys, err := apps.Graph(64)
	if err != nil {
		return "", err
	}
	visit := sys.Prog.MethodByFullName("graph::visit")
	traverse := sys.Prog.MethodByFullName("builder::traverse")
	ec := extent.Constants(sys.Analysis.Eff, traverse)
	ext := extent.Compute(sys.Analysis.Eff, traverse, ec)
	aux := make(map[int]bool)
	for _, c := range ext.Aux {
		aux[c.ID] = true
	}
	env := symbolic.NewEnv(sys.Prog, ec, aux)

	r12, err := symbolic.ExecutePair(visit, visit, "1", "2", env)
	if err != nil {
		return "", err
	}
	r21, err := symbolic.ExecutePair(visit, visit, "2", "1", env)
	if err != nil {
		return "", err
	}
	c12, c21 := r12.Canonical(), r21.Canonical()

	rows := [][]string{
		{"r->visit(p1); r->visit(p2)", "(sum+p1)+p2", c12.IVars["graph.sum"].Key()},
		{"r->visit(p2); r->visit(p1)", "(sum+p2)+p1", c21.IVars["graph.sum"].Key()},
	}
	out := table([]string{"Execution Order", "Paper", "Simplified (ours)"}, rows)
	out += fmt.Sprintf("\nequal after simplification: %v\n",
		symbolic.Equal(c12.IVars["graph.sum"], c21.IVars["graph.sum"]))
	out += fmt.Sprintf("invoked multisets equal:     %v\n",
		symbolic.EqualMultisets(c12.Invoked, c21.Invoked))
	return out, nil
}

// statRows renders the Table 2/8 analysis statistics for a set of
// parallel extents.
func statRows(reports []*core.MethodReport, names map[string]string) [][]string {
	var rows [][]string
	for _, rep := range reports {
		label, ok := names[rep.Method.FullName()]
		if !ok || !rep.Parallel {
			continue
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%d", rep.AuxiliaryCallSites),
			fmt.Sprintf("%d", rep.ExtentSize),
			fmt.Sprintf("%d", rep.IndependentPairs),
			fmt.Sprintf("%d", rep.SymbolicPairs),
		})
	}
	return rows
}

var statHeader = []string{
	"Parallel Extent", "Auxiliary Call Sites", "Extent Size",
	"Independent Pairs", "Symbolically Executed Pairs",
}

// Table2 reproduces Table 2: analysis statistics for the Barnes-Hut
// parallel extents.
func (r *Runner) Table2() (string, error) {
	sys, err := r.bhSystem(r.Cfg.BHBodies[0])
	if err != nil {
		return "", err
	}
	rows := statRows(sys.Reports(), map[string]string{
		"nbody::advanceVelocities": "Velocity",
		"nbody::computeForces":     "Force",
		"nbody::advancePositions":  "Position",
		"nbody::resetForces":       "Reset",
	})
	out := table(statHeader, rows)
	out += "\npaper: Velocity 5/3/5/1, Force 9/6/17/4, Position 8/3/5/1 (aux/size/indep/symbolic)\n"
	plan := sys.Plan
	out += fmt.Sprintf("parallel loops: %d found, %d nested suppressed, %d generated (paper: 5 found, 2 suppressed, 3 generated)\n",
		plan.LoopsFound, plan.LoopsSuppressed, plan.LoopsFound-plan.LoopsSuppressed)
	return out, nil
}

// Table3 reproduces Table 3: Barnes-Hut execution times over processor
// counts on the simulated machine.
func (r *Runner) Table3() (string, error) {
	header := []string{"Bodies", "Serial"}
	for _, p := range r.Cfg.Procs {
		header = append(header, fmt.Sprintf("%d", p))
	}
	var rows [][]string
	for _, n := range r.Cfg.BHBodies {
		tr, err := r.bhTrace(n)
		if err != nil {
			return "", err
		}
		row := []string{fmt.Sprintf("%d", n), secs(serialMicros(tr))}
		for _, p := range r.Cfg.Procs {
			res := simdash.Simulate(tr, simdash.DefaultParams(p))
			row = append(row, secs(res.TimeMicros))
		}
		rows = append(rows, row)
	}
	return table(header, rows) + "\n(simulated seconds; paper Table 3 reports 8192/16384 bodies on DASH)\n", nil
}

// Fig17 reproduces Figure 17: Barnes-Hut speedup curves.
func (r *Runner) Fig17() (string, error) {
	return r.speedupFigure(true)
}

// Fig19 reproduces Figure 19: Water speedup curves.
func (r *Runner) Fig19() (string, error) {
	return r.speedupFigure(false)
}

func (r *Runner) speedupFigure(bh bool) (string, error) {
	header := []string{"Size"}
	for _, p := range r.Cfg.Procs {
		header = append(header, fmt.Sprintf("%d", p))
	}
	sizes := r.Cfg.WaterMols
	if bh {
		sizes = r.Cfg.BHBodies
	}
	var rows [][]string
	var curves []string
	for _, n := range sizes {
		var tr *tracer.Trace
		var err error
		if bh {
			tr, err = r.bhTrace(n)
		} else {
			tr, err = r.waterTrace(n)
		}
		if err != nil {
			return "", err
		}
		base := simdash.Simulate(tr, simdash.DefaultParams(1)).TimeMicros
		row := []string{fmt.Sprintf("%d", n)}
		var speeds []float64
		for _, p := range r.Cfg.Procs {
			res := simdash.Simulate(tr, simdash.DefaultParams(p))
			s := base / res.TimeMicros
			speeds = append(speeds, s)
			row = append(row, f2(s))
		}
		rows = append(rows, row)
		curves = append(curves, asciiCurve(fmt.Sprintf("%6d", n), speeds, r.Cfg.Procs))
	}
	out := table(header, rows)
	out += "\n" + strings.Join(curves, "")
	return out, nil
}

// asciiCurve renders one speedup series as a bar row set.
func asciiCurve(label string, speeds []float64, procs []int) string {
	var sb strings.Builder
	for i, s := range speeds {
		bars := int(s * 2)
		if bars < 1 {
			bars = 1
		}
		sb.WriteString(fmt.Sprintf("%s @%2dp |%s %.2fx\n", label, procs[i], strings.Repeat("█", bars), s))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Table4 reproduces Table 4: parallelism coverage for Barnes-Hut.
func (r *Runner) Table4() (string, error) {
	return r.coverageTable(true)
}

// Table10 reproduces Table 10: parallelism coverage for Water.
func (r *Runner) Table10() (string, error) {
	return r.coverageTable(false)
}

func (r *Runner) coverageTable(bh bool) (string, error) {
	sizes := r.Cfg.WaterMols
	label := "Molecules"
	if bh {
		sizes = r.Cfg.BHBodies
		label = "Bodies"
	}
	var rows [][]string
	for _, n := range sizes {
		var tr *tracer.Trace
		var err error
		if bh {
			tr, err = r.bhTrace(n)
		} else {
			tr, err = r.waterTrace(n)
		}
		if err != nil {
			return "", err
		}
		total := serialMicros(tr)
		params := simdash.DefaultParams(1)
		par := float64(tr.ParallelUnits()) * params.UnitMicros
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), secs(total), secs(par),
			fmt.Sprintf("%.2f%%", 100*par/total),
		})
	}
	note := "\npaper: 98.02%/96.83% (Barnes-Hut), 98.70%/99.07% (Water)\n"
	return table([]string{label, "Serial Compute (s)", "In Parallelized Sections (s)", "Coverage"}, rows) + note, nil
}

// Table6 reproduces Table 6 (Barnes-Hut granularities).
func (r *Runner) Table6() (string, error) {
	return r.granularityTable(true)
}

// Table11 reproduces Table 11 (Water granularities).
func (r *Runner) Table11() (string, error) {
	return r.granularityTable(false)
}

func (r *Runner) granularityTable(bh bool) (string, error) {
	sizes := r.Cfg.WaterMols
	label := "Molecules"
	if bh {
		sizes = r.Cfg.BHBodies
		label = "Bodies"
	}
	var rows [][]string
	for _, n := range sizes {
		var tr *tracer.Trace
		var err error
		if bh {
			tr, err = r.bhTrace(n)
		} else {
			tr, err = r.waterTrace(n)
		}
		if err != nil {
			return "", err
		}
		res := simdash.Simulate(tr, simdash.DefaultParams(32))
		// The paper divides the (serial) time spent in parallelized
		// sections by each event count.
		par := float64(tr.ParallelUnits()) * res.Params.UnitMicros
		c := res.Counters
		row := []string{fmt.Sprintf("%d", n)}
		div := func(count int64) string {
			if count == 0 {
				return "-"
			}
			return f1(par / float64(count))
		}
		row = append(row, div(c.Loops), div(c.Chunks), div(c.Iterations), div(c.Locks))
		rows = append(rows, row)
	}
	note := "\n(µs per loop/chunk/iteration/lock at 32 processors; paper Tables 6 and 11)\n"
	return table([]string{label, "Loop Size", "Chunk Size", "Iteration Size", "Task Size"}, rows) + note, nil
}

// Fig18 reproduces Figure 18 (Barnes-Hut cumulative breakdowns).
func (r *Runner) Fig18() (string, error) {
	return r.breakdownFigure(true)
}

// Fig20 reproduces Figure 20 (Water cumulative breakdowns).
func (r *Runner) Fig20() (string, error) {
	return r.breakdownFigure(false)
}

func (r *Runner) breakdownFigure(bh bool) (string, error) {
	n := r.Cfg.WaterMols[0]
	if bh {
		n = r.Cfg.BHBodies[0]
	}
	var tr *tracer.Trace
	var err error
	if bh {
		tr, err = r.bhTrace(n)
	} else {
		tr, err = r.waterTrace(n)
	}
	if err != nil {
		return "", err
	}
	header := []string{"Procs", "Serial Compute", "Parallel Compute", "Blocked", "Serial Idle", "Parallel Idle", "Total (cumulative s)"}
	var rows [][]string
	for _, p := range r.Cfg.Procs {
		res := simdash.Simulate(tr, simdash.DefaultParams(p))
		b := res.Breakdown
		rows = append(rows, []string{
			fmt.Sprintf("%d", p),
			secs(b.SerialCompute), secs(b.ParallelCompute), secs(b.Blocked),
			secs(b.SerialIdle), secs(b.ParallelIdle), secs(b.Total()),
		})
	}
	out := table(header, rows)
	// Stacked bars normalized to the single-processor total.
	base := simdash.Simulate(tr, simdash.DefaultParams(1)).Breakdown.Total()
	out += "\n"
	for _, p := range r.Cfg.Procs {
		res := simdash.Simulate(tr, simdash.DefaultParams(p))
		b := res.Breakdown
		scale := 60.0 / base
		bar := strings.Repeat("C", int(b.SerialCompute*scale)) +
			strings.Repeat("P", int(b.ParallelCompute*scale)) +
			strings.Repeat("B", int(b.Blocked*scale)) +
			strings.Repeat("s", int(b.SerialIdle*scale)) +
			strings.Repeat("i", int(b.ParallelIdle*scale))
		out += fmt.Sprintf("%2dp |%s\n", p, bar)
	}
	out += "(C=serial compute, P=parallel compute, B=blocked, s=serial idle, i=parallel idle)\n"
	return out, nil
}

// Table7 reproduces Table 7: the explicitly parallel Barnes-Hut
// baseline (parallel tree build + costzones locality, no per-object
// locks).
func (r *Runner) Table7() (string, error) {
	header := []string{"Bodies"}
	for _, p := range r.Cfg.Procs {
		header = append(header, fmt.Sprintf("%d", p))
	}
	var rows [][]string
	for _, n := range r.Cfg.BHBodies {
		tr, err := r.bhTrace(n)
		if err != nil {
			return "", err
		}
		ex := apps.ExplicitBarnesHut(tr, n, 0.85)
		row := []string{fmt.Sprintf("%d", n)}
		for _, p := range r.Cfg.Procs {
			res := simdash.Simulate(ex, simdash.DefaultParams(p))
			row = append(row, secs(res.TimeMicros))
		}
		rows = append(rows, row)
	}
	note := "\n(simulated seconds; compare Table 3 — the explicit version wins at high processor counts\n because the tree build parallelizes and costzones improves locality, §6.2.5)\n"
	return table(header, rows) + note, nil
}
