package nativegen_test

import (
	"math"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"
	"testing"

	"commute"
	"commute/internal/apps"
	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/interp"
	"commute/internal/nativegen"
)

// buildOnce generates and builds each application a single time and
// shares the binary across tests.
type builtApp struct {
	once sync.Once
	sys  *commute.System
	bin  string
	err  error
}

var built = map[string]*builtApp{
	"barneshut": {},
	"water":     {},
}

func getApp(t *testing.T, name string) (*commute.System, string) {
	t.Helper()
	if !nativegen.HaveGo() {
		t.Skip("go toolchain not available")
	}
	ba := built[name]
	ba.once.Do(func() {
		var sys *commute.System
		var err error
		switch name {
		case "barneshut":
			sys, err = apps.BarnesHut(64, 1)
		case "water":
			sys, err = apps.Water(27, 1)
		}
		if err != nil {
			ba.err = err
			return
		}
		dir, err := os.MkdirTemp("", "nativegen-"+name+"-*")
		if err != nil {
			ba.err = err
			return
		}
		// Keep the dir for the whole test binary's lifetime; the OS
		// cleans the tempdir. (t.TempDir would tear it down after the
		// first test that built it.)
		if err := nativegen.Generate(sys, name, dir); err != nil {
			ba.err = err
			return
		}
		ba.bin, ba.err = nativegen.Build(dir)
		ba.sys = sys
	})
	if ba.err != nil {
		t.Fatalf("build %s: %v", name, ba.err)
	}
	return ba.sys, ba.bin
}

// interpDump runs the app serially under the given interpreter engine
// and returns program output followed by the state dump — the same
// byte stream the native binary produces with -dump.
func interpDump(t *testing.T, sys *commute.System, eng interp.Engine) string {
	t.Helper()
	var buf strings.Builder
	ip, err := sys.RunSerialEngine(eng, &buf)
	if err != nil {
		t.Fatalf("interpreter run: %v", err)
	}
	nativegen.DumpInterp(&buf, sys.Prog, ip)
	return buf.String()
}

func TestNativeBarnesHutMatchesInterpreter(t *testing.T) {
	sys, bin := getApp(t, "barneshut")
	want := interpDump(t, sys, interp.EngineWalk)
	if got := interpDump(t, sys, interp.EngineCompiled); got != want {
		t.Fatalf("interpreter engines disagree:\n%s", firstDiff(want, got))
	}
	// Serial native must be bit-identical; Barnes-Hut's parallel phases
	// only commute floating point operations whose order the analysis
	// proved irrelevant at the bit level for this workload, so the
	// parallel runs are bit-identical too (and the goldens pin it).
	for _, args := range [][]string{
		{"-mode", "serial", "-dump"},
		{"-mode", "parallel", "-workers", "4", "-sched", "stealing", "-dump"},
		{"-mode", "parallel", "-workers", "4", "-sched", "central", "-dump"},
		{"-mode", "parallel", "-workers", "1", "-sched", "stealing", "-dump"},
	} {
		got, err := nativegen.Run(bin, args...)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if got != want {
			t.Errorf("%v: native state diverges from interpreter:\n%s", args, firstDiff(want, got))
		}
	}
}

func TestNativeWaterMatchesInterpreter(t *testing.T) {
	sys, bin := getApp(t, "water")
	want := interpDump(t, sys, interp.EngineWalk)
	got, err := nativegen.Run(bin, "-mode", "serial", "-dump")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("serial native state diverges from interpreter:\n%s", firstDiff(want, got))
	}
	// Water's parallel phases accumulate into shared force banks and
	// energy sums under locks; the arrival order varies, so floats are
	// compared with a relative tolerance instead of bit equality.
	for _, sched := range []string{"stealing", "central"} {
		got, err := nativegen.Run(bin, "-mode", "parallel", "-workers", "4", "-sched", sched, "-dump")
		if err != nil {
			t.Fatal(err)
		}
		if msg := compareTolerant(want, got, 1e-9); msg != "" {
			t.Errorf("parallel/%s: %s", sched, msg)
		}
	}
}

// TestNativeRaceClean runs the race-instrumented parallel Barnes-Hut;
// any unsynchronized access in the generated code or the schedulers
// aborts the binary with a non-zero exit.
func TestNativeRaceClean(t *testing.T) {
	sys, _ := getApp(t, "barneshut")
	dir := t.TempDir()
	if err := nativegen.Generate(sys, "barneshut", dir); err != nil {
		t.Fatal(err)
	}
	bin, err := nativegen.BuildRace(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []string{"stealing", "central"} {
		if _, err := nativegen.Run(bin, "-mode", "parallel", "-workers", "4", "-sched", sched); err != nil {
			t.Errorf("race run (%s): %v", sched, err)
		}
	}
}

// firstDiff renders the first differing line of two dumps.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return "line " + strconv.Itoa(i+1) + ":\n  interp: " + w + "\n  native: " + g
		}
	}
	return "(no line diff?)"
}

// compareTolerant compares two dumps token by token; numeric tokens
// (including the dumper's 0x… float bit patterns) may differ by rel
// relative error, everything else must match exactly. Returns "" when
// equivalent.
func compareTolerant(want, got string, rel float64) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	if len(wl) != len(gl) {
		return "line count differs: " + firstDiff(want, got)
	}
	for i := range wl {
		wt, gt := strings.Fields(wl[i]), strings.Fields(gl[i])
		if len(wt) != len(gt) {
			return "line " + strconv.Itoa(i+1) + " differs:\n  interp: " + wl[i] + "\n  native: " + gl[i]
		}
		for j := range wt {
			if wt[j] == gt[j] {
				continue
			}
			wv, okw := parseNum(wt[j])
			gv, okg := parseNum(gt[j])
			if okw && okg {
				if relErr(wv, gv) <= rel {
					continue
				}
				return "line " + strconv.Itoa(i+1) + ": " + wt[j] + " vs " + gt[j] +
					" (rel err " + strconv.FormatFloat(relErr(wv, gv), 'g', 3, 64) + ")"
			}
			return "line " + strconv.Itoa(i+1) + " differs:\n  interp: " + wl[i] + "\n  native: " + gl[i]
		}
	}
	return ""
}

// parseNum parses a dump token as a number: a plain literal, the
// dumper's 0x%016x float bit pattern, or its parenthesized decimal.
func parseNum(tok string) (float64, bool) {
	tok = strings.TrimPrefix(strings.TrimSuffix(tok, ")"), "(")
	if strings.HasPrefix(tok, "0x") {
		bits, err := strconv.ParseUint(tok[2:], 16, 64)
		if err != nil {
			return 0, false
		}
		return math.Float64frombits(bits), true
	}
	v, err := strconv.ParseFloat(tok, 64)
	return v, err == nil
}

func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return d
	}
	return d / m
}

// TestNativeSpeculationMatchesInterpreter runs the speculation corpus
// through the native backend: specdisjoint must speculate and commit,
// specconflict must speculate, detect the write-write conflict at the
// join barrier, abort, and rerun serially — and every leg's program
// output + state dump must be byte-identical to the serial
// interpreter's, across schedulers, worker counts, and policies.
func TestNativeSpeculationMatchesInterpreter(t *testing.T) {
	if !nativegen.HaveGo() {
		t.Skip("go toolchain not available")
	}
	for _, tc := range []struct {
		name    string
		code    string
		commits int64
		aborts  int64
	}{
		{"specdisjoint", src.SpecDisjoint, 1, 0},
		{"specconflict", src.SpecConflict, 0, 1},
	} {
		sys, err := commute.Load(tc.name+".mc", tc.code)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := nativegen.GeneratePlan(sys.SpecPlan, tc.name, dir); err != nil {
			t.Fatal(err)
		}
		bin, err := nativegen.Build(dir)
		if err != nil {
			t.Fatal(err)
		}
		want := interpDump(t, sys, interp.EngineWalk)
		if got := interpDump(t, sys, interp.EngineCompiled); got != want {
			t.Fatalf("%s: interpreter engines disagree:\n%s", tc.name, firstDiff(want, got))
		}
		if got, err := nativegen.Run(bin, "-mode", "serial", "-dump"); err != nil {
			t.Fatal(err)
		} else if got != want {
			t.Errorf("%s serial: native state diverges:\n%s", tc.name, firstDiff(want, got))
		}
		for _, args := range [][]string{
			{"-mode", "parallel", "-workers", "4", "-sched", "stealing", "-speculate", "force", "-specstats", "-dump"},
			{"-mode", "parallel", "-workers", "4", "-sched", "central", "-speculate", "force", "-specstats", "-dump"},
			{"-mode", "parallel", "-workers", "1", "-speculate", "force", "-specstats", "-dump"},
			{"-mode", "parallel", "-workers", "4", "-speculate", "auto", "-dump"},
			{"-mode", "parallel", "-workers", "4", "-speculate", "off", "-dump"},
		} {
			got, errOut, err := nativegen.RunErr(bin, args...)
			if err != nil {
				t.Fatalf("%s %v: %v", tc.name, args, err)
			}
			if got != want {
				t.Errorf("%s %v: native state diverges from interpreter:\n%s", tc.name, args, firstDiff(want, got))
				continue
			}
			if !slices.Contains(args, "-specstats") {
				continue
			}
			st := nativegen.CounterStats(errOut)
			if st["spec_regions"] != 1 || st["spec_commits"] != tc.commits || st["spec_aborts"] != tc.aborts {
				t.Errorf("%s %v: counters %v, want regions=1 commits=%d aborts=%d",
					tc.name, args, st, tc.commits, tc.aborts)
			}
		}
	}
}

// TestNativeCondHashMatchesInterpreter exercises the conditional-
// commutativity path in the native backend: the condhash plan is built
// with synthesized guards, so the generated R_ wrapper evaluates
// H.mode at region entry. Mode 0 (guard true) must run the parallel
// region bit-identically to the interpreter; mode 3 (guard false) must
// take the serial path and still match; -conditional=false must force
// the serial path even when the guard would hold.
func TestNativeCondHashMatchesInterpreter(t *testing.T) {
	if !nativegen.HaveGo() {
		t.Skip("go toolchain not available")
	}
	for _, mode := range []int{0, 3} {
		sys, err := apps.CondHash(mode, 5)
		if err != nil {
			t.Fatal(err)
		}
		plan := codegen.BuildWithOptions(sys.Analysis, codegen.Options{ConditionalGuards: true})
		mp := plan.Methods[sys.Prog.MethodByFullName("table::ingest")]
		if mp == nil || !mp.Conditional {
			t.Fatal("table::ingest is not planned conditional")
		}
		dir := t.TempDir()
		if err := nativegen.GeneratePlan(plan, "condhash", dir); err != nil {
			t.Fatal(err)
		}
		bin, err := nativegen.Build(dir)
		if err != nil {
			t.Fatal(err)
		}
		want := interpDump(t, sys, interp.EngineWalk)
		if got := interpDump(t, sys, interp.EngineCompiled); got != want {
			t.Fatalf("mode=%d: interpreter engines disagree:\n%s", mode, firstDiff(want, got))
		}
		for _, args := range [][]string{
			{"-mode", "serial", "-dump"},
			{"-mode", "parallel", "-workers", "4", "-sched", "stealing", "-dump"},
			{"-mode", "parallel", "-workers", "4", "-sched", "central", "-dump"},
			{"-mode", "parallel", "-workers", "4", "-conditional=false", "-dump"},
		} {
			got, err := nativegen.Run(bin, args...)
			if err != nil {
				t.Fatalf("mode=%d %v: %v", mode, args, err)
			}
			if got != want {
				t.Errorf("mode=%d %v: native state diverges from interpreter:\n%s", mode, args, firstDiff(want, got))
			}
		}
	}
}
