package nativegen

import (
	"io"
	"strconv"

	"commute/internal/codegen"
	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/nativert"
)

func codegenOpts(app string) codegen.EmitGoOptions {
	return codegen.EmitGoOptions{
		Module:      "nativeapp",
		CommutePath: CommuteRoot(),
		AppName:     app,
	}
}

// DumpInterp writes the interpreter's final global state in exactly the
// format the generated dumpState/-dump path produces: same traversal
// (globals in declaration order, fields in slot order), same object
// numbering, same value formatting. Byte equality of the two dumps is
// the differential harness's correctness criterion.
func DumpInterp(w io.Writer, prog *types.Program, ip *interp.Interp) {
	d := nativert.NewDumper(w)
	for _, g := range prog.GlobalSeq {
		dumpObj(d, prog, "g."+g.Name, ip.Globals[g.Name])
	}
	d.Flush()
}

func dumpObj(d *nativert.Dumper, prog *types.Program, path string, o *interp.Object) {
	if o == nil {
		d.Null(path)
		return
	}
	if !d.Begin(path, o, o.Class.Name) {
		return
	}
	for i, f := range interp.ClassLayout(prog, o.Class) {
		dumpVal(d, prog, path+"."+f.Name, o.Slots[i])
	}
}

func dumpVal(d *nativert.Dumper, prog *types.Program, path string, v interp.Value) {
	switch v.Kind() {
	case interp.KInt:
		d.Int(path, v.Int())
	case interp.KFloat:
		d.Float(path, v.Float())
	case interp.KBool:
		d.Bool(path, v.Bool())
	case interp.KObject:
		dumpObj(d, prog, path, v.Object())
	case interp.KArray:
		for i, el := range v.Array().Elems {
			dumpVal(d, prog, path+"["+strconv.Itoa(i)+"]", el)
		}
	default:
		d.Null(path)
	}
}
