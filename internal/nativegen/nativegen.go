// Package nativegen drives the native Go backend end to end: it writes
// the package EmitGoPackage produces for a plan, shells out to the Go
// toolchain to build it, and runs the resulting binary. The
// differential tests use it to compare native runs against the
// interpreter bit for bit; the benchmark harness uses it for the
// native-* timings.
package nativegen

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"commute"
	"commute/internal/codegen"
)

// HaveGo reports whether the Go toolchain is available. Callers skip
// native tests and benchmarks when it is not.
func HaveGo() bool {
	_, err := exec.LookPath("go")
	return err == nil
}

// CommuteRoot returns the on-disk root of the commute module, for the
// generated go.mod's replace directive. It is derived from this source
// file's compiled-in path, so it is valid whenever the binary was built
// from the repository it points into (tests, and the repo's own CLIs).
func CommuteRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return ""
	}
	// file = <root>/internal/nativegen/nativegen.go
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// Generate emits sys.Plan as a buildable Go module in dir.
func Generate(sys *commute.System, app, dir string) error {
	return GeneratePlan(sys.Plan, app, dir)
}

// GeneratePlan emits an explicit plan — e.g. one built with
// codegen.Options.ConditionalGuards, whose region wrappers carry the
// synthesized runtime guards — as a buildable Go module in dir.
func GeneratePlan(plan *codegen.Plan, app, dir string) error {
	files, err := plan.EmitGoPackage(codegenOpts(app))
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Build compiles the generated module in dir and returns the binary
// path.
func Build(dir string) (string, error) {
	bin := filepath.Join(dir, "app")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build: %v\n%s", err, out)
	}
	return bin, nil
}

// BuildRace compiles the generated module with the race detector.
func BuildRace(dir string) (string, error) {
	bin := filepath.Join(dir, "app_race")
	cmd := exec.Command("go", "build", "-race", "-o", bin, ".")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build -race: %v\n%s", err, out)
	}
	return bin, nil
}

// Run executes the generated binary and returns its stdout (program
// output, plus the state dump when -dump is among args).
func Run(bin string, args ...string) (string, error) {
	out, _, err := RunErr(bin, args...)
	return out, err
}

// RunErr executes the generated binary and returns stdout and stderr
// separately — the counter flags (-specstats, -guardstats) report on
// stderr so the state dump on stdout stays byte-comparable.
func RunErr(bin string, args ...string) (string, string, error) {
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return stdout.String(), stderr.String(),
			fmt.Errorf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String(), stderr.String(), nil
}

// CounterStats parses "name value" lines (the -specstats / -guardstats
// stderr format) into a map.
func CounterStats(stderr string) map[string]int64 {
	out := map[string]int64{}
	for _, line := range strings.Split(stderr, "\n") {
		f := strings.Fields(line)
		if len(f) != 2 {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(f[1], "%d", &v); err == nil {
			out[f[0]] = v
		}
	}
	return out
}
