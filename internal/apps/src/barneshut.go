package src

import "fmt"

// BarnesHut is the complete Barnes-Hut N-body application in the
// mini-C++ dialect. The force-computation phase (subdivp, computeInter,
// gravsub, openCell, openLeaf, walksub) follows Figure 4 of the paper
// verbatim (modulo the dialect's requirement that reference-parameter
// contents be initialized before use, fixed exactly as the original
// SPLASH-2 code does by storing the displacement vector). Tree
// construction and center-of-mass computation are serial, as in the
// paper; the three parallel extents the compiler should find are the
// force loop, the velocity-update loop, and the position-update loop.
const BarnesHut = BarnesHutBase + `
void main() {
  Parms.tolSq = 1.0;
  Parms.eps = 0.05;
  Parms.epsSq = 0.0025;
  Parms.dt = 0.025;
  Nbody.seed = 12345;
  Nbody.size = 4.0;
  Nbody.init(256);
  Nbody.step();
  Nbody.step();
}
`

// BarnesHutMain returns a main that runs the given number of bodies
// and timesteps.
func BarnesHutMain(bodies, steps, seed int) string {
	return fmt.Sprintf(`
void main() {
  Parms.tolSq = 1.0;
  Parms.eps = 0.05;
  Parms.epsSq = 0.0025;
  Parms.dt = 0.025;
  Nbody.seed = %d;
  Nbody.size = 4.0;
  Nbody.init(%d);
  for (int t = 0; t < %d; t++)
    Nbody.step();
}
`, seed, bodies, steps)
}

// BarnesHutBase is the application without a main.
const BarnesHutBase = `
const int NDIM = 3;
const int NSUB = 8;            // 2**NDIM subcells per cell
const int LEAFMAXBODIES = 16;
const int MAXBODIES = 32768;

class vector {
public:
  double val[NDIM];
  void vecAdd(double v[NDIM]) {
    for (int i = 0; i < NDIM; i++)
      val[i] += v[i];
  }
  void vecFill(double s) {
    for (int i = 0; i < NDIM; i++)
      val[i] = s;
  }
};

class node {
public:
  double mass;   // body mass, or combined cell/leaf mass
  vector pos;    // body position, or aggregate center of mass
};

class cell : public node {
public:
  node *subp[NSUB];
};

class leaf : public node {
public:
  int numbodies;
  body *bodyp[LEAFMAXBODIES];
};

class body : public node {
public:
  vector vel;  // velocity
  vector acc;  // acceleration accumulator
  double phi;  // interaction potential
  boolean subdivp(node *p, double dsq);
  void gravsub(node *n);
  double computeInter(node *n, double *res);
  void openCell(cell *c, double dsq);
  void openLeaf(leaf *l);
  void walksub(node *n, double dsq);
  void scaleAcc(double dt, double *res);
  void scaleVel(double dt, double *res);
  void advanceVelocity(double dt);
  void advancePosition(double dt);
  void resetForce();
};

class parms {
public:
  double tolSq;  // square of the opening tolerance
  double eps;    // softening epsilon
  double epsSq;  // epsilon squared
  double dt;     // timestep
  double getDt() { return dt; }
};

class nbody {
public:
  int numbodies;          // total number of bodies in the simulation
  body *bodies[MAXBODIES];
  node *BH_root;          // root of the Barnes-Hut tree
  double size;            // bounding-box side length
  int seed;
  int nextRandom();
  double randCoord();
  void init(int n);
  void buildTree();
  void insert(cell *c, body *b, double cx, double cy, double cz, double sz);
  void computeCOMCell(cell *c);
  void computeCOMLeaf(leaf *l);
  void computeCOM();
  void computeForces();
  void resetForces();
  void advanceVelocities();
  void advancePositions();
  void step();
};

// Global Variables
parms Parms;
nbody Nbody;

// --------------------------------------------------------------------
// Force computation (Figure 4 of the paper)

boolean body::subdivp(node *n, double dsq) {
  double drsq, d;
  drsq = Parms.epsSq;
  for (int i = 0; i < NDIM; i++) {
    d = n->pos.val[i] - pos.val[i];
    drsq += d * d;
  }
  return ((Parms.tolSq * drsq) < dsq);
}

double body::computeInter(node *n, double *res) {
  double inc, r, drsq, d;
  drsq = Parms.eps;
  for (int i = 0; i < NDIM; i++) {
    d = n->pos.val[i] - pos.val[i];
    drsq += d * d;
  }
  inc = n->mass / sqrt(drsq);
  r = inc / drsq;
  for (int i = 0; i < NDIM; i++) {
    d = n->pos.val[i] - pos.val[i];
    res[i] = d * r;
  }
  return inc;
}

void body::gravsub(node *n) {
  double d;
  double tmpv[NDIM];
  d = this->computeInter(n, tmpv);
  phi -= d;
  acc.vecAdd(tmpv);
}

void body::openCell(cell *c, double dsq) {
  node *n;
  for (int i = 0; i < NSUB; i++) {
    n = c->subp[i];
    if (n != NULL)
      this->walksub(n, (dsq / 4.0));
  }
}

void body::openLeaf(leaf *l) {
  body *b;
  for (int i = 0; i < l->numbodies; i++) {
    b = l->bodyp[i];
    if (b != this)
      this->gravsub(b);
  }
}

void body::walksub(node *n, double dsq) {
  cell *c;
  leaf *l;
  if (this->subdivp(n, dsq)) {
    c = dynamic_cast<cell*>(n);
    if (c != NULL) {
      this->openCell(c, dsq);
    } else {
      l = dynamic_cast<leaf*>(n);
      if (l != NULL)
        this->openLeaf(l);
    }
  } else {
    this->gravsub(n);
  }
}

void nbody::computeForces() {
  body *b;
  for (int i = 0; i < numbodies; i++) {
    b = bodies[i];
    b->walksub(BH_root, size * size);
  }
}

// --------------------------------------------------------------------
// Integration

void body::scaleAcc(double dt, double *res) {
  for (int i = 0; i < NDIM; i++)
    res[i] = acc.val[i] * dt;
}

void body::scaleVel(double dt, double *res) {
  for (int i = 0; i < NDIM; i++)
    res[i] = vel.val[i] * dt;
}

void body::advanceVelocity(double dt) {
  double dv[NDIM];
  this->scaleAcc(dt, dv);
  vel.vecAdd(dv);
}

void body::advancePosition(double dt) {
  double dx[NDIM];
  this->scaleVel(dt, dx);
  pos.vecAdd(dx);
}

void body::resetForce() {
  phi = 0.0;
  acc.vecFill(0.0);
}

void nbody::advanceVelocities() {
  body *b;
  for (int i = 0; i < numbodies; i++) {
    b = bodies[i];
    b->advanceVelocity(Parms.getDt());
  }
}

void nbody::advancePositions() {
  body *b;
  for (int i = 0; i < numbodies; i++) {
    b = bodies[i];
    b->advancePosition(Parms.getDt());
  }
}

void nbody::resetForces() {
  body *b;
  for (int i = 0; i < numbodies; i++) {
    b = bodies[i];
    b->resetForce();
  }
}

// --------------------------------------------------------------------
// Tree construction (serial; allocates cells and leaves)

int nbody::nextRandom() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0)
    seed = -seed;
  return seed;
}

double nbody::randCoord() {
  int r;
  r = nextRandom() % 1000000;
  return (r * 1.0) / 1000000.0;
}

void nbody::init(int n) {
  body *b;
  numbodies = n;
  for (int i = 0; i < n; i++) {
    b = new body;
    bodies[i] = b;
    b->mass = 1.0 / (n * 1.0);
    b->pos.val[0] = this->randCoord() * size;
    b->pos.val[1] = this->randCoord() * size;
    b->pos.val[2] = this->randCoord() * size;
    b->vel.vecFill(0.0);
    b->acc.vecFill(0.0);
    b->phi = 0.0;
  }
}

void nbody::insert(cell *c, body *b, double cx, double cy, double cz, double sz) {
  int ix, iy, iz, sub, i;
  double half, nx, ny, nz;
  node *ch;
  leaf *l;
  cell *nc;
  body *old;
  half = sz / 2.0;
  ix = 0;
  iy = 0;
  iz = 0;
  if (b->pos.val[0] >= cx) ix = 1;
  if (b->pos.val[1] >= cy) iy = 1;
  if (b->pos.val[2] >= cz) iz = 1;
  sub = ix * 4 + iy * 2 + iz;
  nx = cx - half / 2.0 + ix * half;
  ny = cy - half / 2.0 + iy * half;
  nz = cz - half / 2.0 + iz * half;
  ch = c->subp[sub];
  if (ch == NULL) {
    l = new leaf;
    l->numbodies = 1;
    l->bodyp[0] = b;
    c->subp[sub] = l;
  } else {
    nc = dynamic_cast<cell*>(ch);
    if (nc != NULL) {
      this->insert(nc, b, nx, ny, nz, half);
    } else {
      l = dynamic_cast<leaf*>(ch);
      if (l->numbodies < LEAFMAXBODIES) {
        l->bodyp[l->numbodies] = b;
        l->numbodies = l->numbodies + 1;
      } else {
        // Split the full leaf into a cell and reinsert its bodies.
        nc = new cell;
        for (i = 0; i < NSUB; i++)
          nc->subp[i] = NULL;
        c->subp[sub] = nc;
        for (i = 0; i < l->numbodies; i++) {
          old = l->bodyp[i];
          this->insert(nc, old, nx, ny, nz, half);
        }
        this->insert(nc, b, nx, ny, nz, half);
      }
    }
  }
}

void nbody::buildTree() {
  cell *r;
  int i;
  double mid;
  r = new cell;
  for (i = 0; i < NSUB; i++)
    r->subp[i] = NULL;
  BH_root = r;
  mid = size / 2.0;
  for (i = 0; i < numbodies; i++)
    this->insert(r, bodies[i], mid, mid, mid, size);
}

// --------------------------------------------------------------------
// Center-of-mass computation (serial)

void nbody::computeCOMLeaf(leaf *l) {
  int i;
  double m;
  body *b;
  l->mass = 0.0;
  l->pos.vecFill(0.0);
  for (i = 0; i < l->numbodies; i++) {
    b = l->bodyp[i];
    l->mass = l->mass + b->mass;
    l->pos.val[0] = l->pos.val[0] + b->mass * b->pos.val[0];
    l->pos.val[1] = l->pos.val[1] + b->mass * b->pos.val[1];
    l->pos.val[2] = l->pos.val[2] + b->mass * b->pos.val[2];
  }
  if (l->mass > 0.0) {
    m = 1.0 / l->mass;
    l->pos.val[0] = l->pos.val[0] * m;
    l->pos.val[1] = l->pos.val[1] * m;
    l->pos.val[2] = l->pos.val[2] * m;
  }
}

void nbody::computeCOMCell(cell *c) {
  int i;
  double m;
  node *ch;
  cell *nc;
  leaf *l;
  c->mass = 0.0;
  c->pos.vecFill(0.0);
  for (i = 0; i < NSUB; i++) {
    ch = c->subp[i];
    if (ch != NULL) {
      nc = dynamic_cast<cell*>(ch);
      if (nc != NULL) {
        this->computeCOMCell(nc);
      } else {
        l = dynamic_cast<leaf*>(ch);
        this->computeCOMLeaf(l);
      }
      c->mass = c->mass + ch->mass;
      c->pos.val[0] = c->pos.val[0] + ch->mass * ch->pos.val[0];
      c->pos.val[1] = c->pos.val[1] + ch->mass * ch->pos.val[1];
      c->pos.val[2] = c->pos.val[2] + ch->mass * ch->pos.val[2];
    }
  }
  if (c->mass > 0.0) {
    m = 1.0 / c->mass;
    c->pos.val[0] = c->pos.val[0] * m;
    c->pos.val[1] = c->pos.val[1] * m;
    c->pos.val[2] = c->pos.val[2] * m;
  }
}

void nbody::computeCOM() {
  cell *r;
  r = dynamic_cast<cell*>(BH_root);
  this->computeCOMCell(r);
}

// --------------------------------------------------------------------
// Driver

void nbody::step() {
  this->buildTree();
  this->computeCOM();
  this->resetForces();
  this->computeForces();
  this->advanceVelocities();
  this->advancePositions();
}

`
