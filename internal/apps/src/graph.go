// Package src holds the mini-C++ sources of the applications the paper
// evaluates (Barnes-Hut, Water) and its running examples (the §2 graph
// traversal and the Figure 4 force-computation excerpt). The sources are
// Go constants so every layer — tests, examples, benchmarks — compiles
// them with the same frontend.
package src

import "fmt"

// Graph is GraphBase plus a default main (64 nodes).
const Graph = GraphBase + `
void main() {
  Builder.build(64);
  Builder.traverse();
}
`

// GraphMain returns a main that builds and traverses a graph of n
// nodes with the given random seed.
func GraphMain(n, seed int) string {
	return fmt.Sprintf(`
void main() {
  Builder.seed = %d;
  Builder.build(%d);
  Builder.traverse();
}
`, seed, n)
}

// GraphBase is the serial graph traversal of Figure 1, extended with a
// builder so it can be executed end to end. The visit operations
// commute: sum accumulates with +, and the marking protocol generates
// the same multiset of invocations in either execution order.
const GraphBase = `
const int MAXNODES = 4096;

class graph {
public:
  boolean mark;
  int val;
  int sum;
  graph *left;
  graph *right;
  void visit(int p);
  void reset();
};

class builder {
public:
  int numnodes;
  int seed;
  graph *nodes[MAXNODES];
  graph *root;
  void build(int n);
  void traverse();
  int nextRandom();
};

// Global Variables
builder Builder;

void graph::visit(int p) {
  sum = sum + p;
  if (!mark) {
    mark = TRUE;
    if (left != NULL)
      left->visit(val);
    if (right != NULL)
      right->visit(val);
  }
}

void graph::reset() {
  if (mark) {
    mark = FALSE;
    sum = 0;
    if (left != NULL)
      left->reset();
    if (right != NULL)
      right->reset();
  }
}

int builder::nextRandom() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0)
    seed = -seed;
  return seed;
}

void builder::build(int n) {
  int i;
  int a;
  int b;
  graph *g;
  numnodes = n;
  for (i = 0; i < n; i++) {
    g = new graph;
    nodes[i] = g;
    g->mark = FALSE;
    g->val = i + 1;
    g->sum = 0;
    g->left = NULL;
    g->right = NULL;
  }
  // Wire an arbitrary graph (cycles and shared nodes included).
  for (i = 0; i < n; i++) {
    a = nextRandom() % n;
    b = nextRandom() % n;
    nodes[i]->left = nodes[a];
    nodes[i]->right = nodes[b];
  }
  root = nodes[0];
}

void builder::traverse() {
  root->visit(0);
}
`
