package src

import (
	"fmt"
	"math"
)

// Water is the Water molecular-dynamics code (§6.3) in the mini-C++
// dialect: an array of molecule objects with two O(n²) phases (inter-
// molecular forces and potential energy). Following §6.3.1, each
// molecule loads the data the O(n²) phases read into per-molecule
// auxiliary snapshot fields at the start of every step (the Loading
// extent), which keeps the snapshot storage extent-constant during the
// Forces and Energy phases.
//
// The five parallel extents match Table 8: Virtual (predict +
// periodic-boundary wrap), Loading, Forces, Energy, Momenta. The force
// phase accumulates into a single shared force-bank object and the
// energy/momenta phases accumulate into the single shared sums object —
// the object contention the paper identifies as Water's scalability
// limit (§6.3.4), which the explicitly parallel version removes by
// replicating those structures (§6.3.5).
const Water = WaterBase + `
void main() {
  WParms.dt = 0.002;
  WParms.boxl = 8.0;
  WParms.cutsq = 9.0;
  Water.seed = 20231;
  Water.init(125);
  Water.step();
  Water.step();
}
`

// WaterMain returns a main that runs the given number of molecules and
// timesteps. The box scales with the molecule count to keep the density
// (and hence the in-cutoff pair fraction) constant.
func WaterMain(mols, steps, seed int) string {
	box := 8.0 * math.Cbrt(float64(mols)/125.0)
	return fmt.Sprintf(`
void main() {
  WParms.dt = 0.002;
  WParms.boxl = %g;
  WParms.cutsq = 9.0;
  Water.seed = %d;
  Water.init(%d);
  for (int t = 0; t < %d; t++)
    Water.step();
}
`, box, seed, mols, steps)
}

// WaterBase is the application without a main.
const WaterBase = `
const int NMOLMAX = 1024;

class wparms {
public:
  double dt;      // timestep
  double boxl;    // periodic box side
  double cutsq;   // squared interaction cutoff
  double getDt() { return dt; }
  double getBox() { return boxl; }
  double getCutSq() { return cutsq; }
};

class sums {
public:
  double pot;  // potential energy accumulator
  double kin;  // kinetic energy accumulator
  void addPot(double e) { pot += e; }
  void addKin(double e) { kin += e; }
};

// fbank is the shared force accumulator: one array slot per molecule.
// Accumulations into its slots commute (the array-expression rules),
// but every update synchronizes on this single object — the contention
// §6.3.4 measures.
class fbank {
public:
  double bfx[NMOLMAX];
  double bfy[NMOLMAX];
  double bfz[NMOLMAX];
  void add(int j, double dfx, double dfy, double dfz) {
    bfx[j] += dfx;
    bfy[j] += dfy;
    bfz[j] += dfz;
  }
  void clearAll(int n);
};

class h2o {
public:
  int id;        // index of this molecule (fixed at setup)
  double px;
  double py;
  double pz;     // position
  double vx;
  double vy;
  double vz;     // velocity
  double mass;
  double apx;
  double apy;
  double apz;    // auxiliary position snapshot (Loading)
  double amass;  // auxiliary mass snapshot
  void predict();
  void load();
  double pairForce(double r2);
  double pairPot(double r2);
  void interForces();
  void potEnergy();
  void momenta();
};

class water {
public:
  int nmol;
  int seed;
  h2o *mols[NMOLMAX];
  int nextRandom();
  double randCoord();
  void init(int n);
  void predictAll();
  void loadAll();
  void interf();
  void poteng();
  void momentaAll();
  void step();
};

// Global Variables
wparms WParms;
sums Sums;
fbank FBank;
water Water;

// --------------------------------------------------------------------
// Shared force bank

void fbank::clearAll(int n) {
  int j;
  for (j = 0; j < n; j++) {
    bfx[j] = 0.0;
    bfy[j] = 0.0;
    bfz[j] = 0.0;
  }
}

// --------------------------------------------------------------------
// Per-molecule operations

// predict advances the position by the current velocity and wraps into
// the periodic box (the Virtual extent). It takes no parameters and
// touches only its receiver, so any two invocations trivially commute.
void h2o::predict() {
  double dt, b;
  dt = WParms.getDt();
  b = WParms.getBox();
  px = px + vx * dt;
  px = px - b * floor(px / b);
  py = py + vy * dt;
  py = py - b * floor(py / b);
  pz = pz + vz * dt;
  pz = pz - b * floor(pz / b);
}

// load snapshots the state the O(n²) phases read (the Loading extent).
void h2o::load() {
  apx = px;
  apy = py;
  apz = pz;
  amass = mass;
}

// pairForce is the auxiliary force kernel (a soft Lennard-Jones-like
// magnitude per unit displacement).
double h2o::pairForce(double r2) {
  double ir2, ir6;
  ir2 = 1.0 / (r2 + 1.0);
  ir6 = ir2 * ir2 * ir2;
  return 24.0 * ir2 * ir6 * (2.0 * ir6 - 1.0);
}

// pairPot is the auxiliary potential kernel.
double h2o::pairPot(double r2) {
  double ir2, ir6;
  ir2 = 1.0 / (r2 + 1.0);
  ir6 = ir2 * ir2 * ir2;
  return 4.0 * ir6 * (ir6 - 1.0);
}

// interForces computes this molecule's interactions with the next
// nmol/2 molecules in cyclic order (the half-shell method the SPLASH
// code uses, which balances the O(n²) loop), accumulating both sides of
// every pair into the shared force bank (the Forces extent).
void h2o::interForces() {
  int k, j, half;
  double dx, dy, dz, r2, ff, sfx, sfy, sfz;
  h2o *b;
  sfx = 0.0;
  sfy = 0.0;
  sfz = 0.0;
  half = Water.nmol / 2;
  for (k = 1; k < half + 1; k++) {
    j = (id + k) % Water.nmol;
    if (k * 2 < Water.nmol || id < j) {
      b = Water.mols[j];
      dx = apx - b->apx;
      dy = apy - b->apy;
      dz = apz - b->apz;
      r2 = dx * dx + dy * dy + dz * dz;
      if (r2 < WParms.getCutSq()) {
        ff = this->pairForce(r2);
        sfx = sfx + ff * dx;
        sfy = sfy + ff * dy;
        sfz = sfz + ff * dz;
        FBank.add(j, 0.0 - ff * dx, 0.0 - ff * dy, 0.0 - ff * dz);
      }
    }
  }
  FBank.add(id, sfx, sfy, sfz);
}

// potEnergy accumulates this molecule's pair potentials into the global
// sums object, one commuting contribution per interacting pair (the
// Energy extent).
void h2o::potEnergy() {
  int k, j, half;
  double dx, dy, dz, r2;
  h2o *b;
  half = Water.nmol / 2;
  for (k = 1; k < half + 1; k++) {
    j = (id + k) % Water.nmol;
    if (k * 2 < Water.nmol || id < j) {
      b = Water.mols[j];
      dx = apx - b->apx;
      dy = apy - b->apy;
      dz = apz - b->apz;
      r2 = dx * dx + dy * dy + dz * dz;
      if (r2 < WParms.getCutSq()) {
        Sums.addPot(this->pairPot(r2));
      }
    }
  }
}

// momenta applies the accumulated forces to the velocities and
// contributes the molecule's kinetic energy to the global sums object
// (the Momenta extent).
void h2o::momenta() {
  double dt, k;
  dt = WParms.getDt();
  vx = vx + FBank.bfx[id] * dt / mass;
  vy = vy + FBank.bfy[id] * dt / mass;
  vz = vz + FBank.bfz[id] * dt / mass;
  k = 0.5 * mass * (vx * vx + vy * vy + vz * vz);
  Sums.addKin(k);
}

// --------------------------------------------------------------------
// Phase drivers

void water::predictAll() {
  h2o *m;
  for (int i = 0; i < nmol; i++) {
    m = mols[i];
    m->predict();
  }
}

void water::loadAll() {
  h2o *m;
  for (int i = 0; i < nmol; i++) {
    m = mols[i];
    m->load();
  }
}

void water::interf() {
  h2o *m;
  for (int i = 0; i < nmol; i++) {
    m = mols[i];
    m->interForces();
  }
}

void water::poteng() {
  h2o *m;
  for (int i = 0; i < nmol; i++) {
    m = mols[i];
    m->potEnergy();
  }
}

void water::momentaAll() {
  h2o *m;
  for (int i = 0; i < nmol; i++) {
    m = mols[i];
    m->momenta();
  }
}

void water::step() {
  this->predictAll();
  this->loadAll();
  FBank.clearAll(nmol);
  this->interf();
  this->poteng();
  this->momentaAll();
}

// --------------------------------------------------------------------
// Setup

int water::nextRandom() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0)
    seed = -seed;
  return seed;
}

double water::randCoord() {
  int r;
  r = nextRandom() % 1000000;
  return (r * 1.0) / 1000000.0;
}

void water::init(int n) {
  h2o *m;
  nmol = n;
  for (int i = 0; i < n; i++) {
    m = new h2o;
    mols[i] = m;
    m->id = i;
    m->mass = 18.0;
    m->px = this->randCoord() * WParms.getBox();
    m->py = this->randCoord() * WParms.getBox();
    m->pz = this->randCoord() * WParms.getBox();
    m->vx = (this->randCoord() - 0.5) * 0.1;
    m->vy = (this->randCoord() - 0.5) * 0.1;
    m->vz = (this->randCoord() - 0.5) * 0.1;
  }
}

`
