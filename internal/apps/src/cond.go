package src

import "fmt"

// CondHashBase is the conditional-commutativity demonstrator: a
// hash-bucket table whose update operation is an accumulate or an
// overwrite depending on a mode field frozen before the parallel
// phase. The (update, update) pair fails the binary Figure-11 test —
// the overwrite branch does not commute — but both final values embed
// the same condition on H.mode, an extent constant, so the analysis
// synthesizes the residual predicate (mode == 0 ∨ the colliding
// values agree) and the runtime guards the region on its evaluable
// weakening: mode == 0 runs the region in parallel, anything else
// takes the serial path.
const CondHashBase = `
const int NBUCKET = 8;

class bucket {
public:
  int count;
  int touched;
  void update(int v);
};

class table {
public:
  int mode;
  bucket *slots[NBUCKET];
  int checksum;
  void setup(int m);
  void ingest(int r);
  void report();
};

// Global Variables
table H;

void bucket::update(int v) {
  if (H.mode == 0) {
    count = count + v;
  } else {
    count = v;
  }
  touched = touched + 1;
}

void table::setup(int m) {
  int i;
  mode = m;
  for (i = 0; i < NBUCKET; i += 1) {
    slots[i] = new bucket;
  }
}

void table::ingest(int r) {
  int i;
  for (i = 0; i < NBUCKET; i += 1) {
    slots[i]->update(r * 7 + i * 3 + 1);
  }
  slots[0]->update(r + 1);
  slots[0]->update(r * 2 + 1);
}

void table::report() {
  int i;
  checksum = 0;
  for (i = 0; i < NBUCKET; i += 1) {
    checksum = checksum * 31 + slots[i]->count * 2 + slots[i]->touched;
    print(slots[i]->count, slots[i]->touched);
  }
  print(checksum);
}
`

// CondHashMain renders the driver: mode selects the guard outcome
// (0 → accumulate, guard true, parallel regions; anything else →
// overwrite, guard false, serial fallback), rounds is the number of
// ingest regions.
func CondHashMain(mode, rounds int) string {
	return fmt.Sprintf(`
void main() {
  int r;
  H.setup(%d);
  for (r = 0; r < %d; r += 1) {
    H.ingest(r);
  }
  H.report();
}
`, mode, rounds)
}
