package src

// SpecDisjoint is a speculation demonstrator whose static analysis
// fails but whose runtime behavior is conflict-free. The fill loop
// invokes cell::set — an overwrite, so the (set, set) pair fails the
// symbolic commutativity test and the extent is rejected — yet every
// iteration targets a distinct cell, so under speculative execution
// the per-task logs never conflict and the region commits in parallel.
const SpecDisjoint = `
const int N = 16;

class cell {
public:
  int val;
  void set(int v);
};

class table {
public:
  cell *cells[N];
  int sum;
  void init();
  void fill();
  void report();
};

// Global Variables
table T;

void cell::set(int v) {
  val = v;
}

void table::init() {
  int i;
  for (i = 0; i < N; i += 1) {
    cells[i] = new cell;
  }
}

void table::fill() {
  int i;
  for (i = 0; i < N; i += 1) {
    cells[i]->set(i * 3 + 1);
  }
}

void table::report() {
  int i;
  sum = 0;
  for (i = 0; i < N; i += 1) {
    sum = sum + cells[i]->val;
  }
  print(sum);
}

void main() {
  T.init();
  T.fill();
  T.report();
}
`

// SpecConflict is a speculation demonstrator that is guaranteed to
// violate: run spawns two mark operations on the same counter, mark
// overwrites last (so (mark, mark) fails the static test), and at run
// time both tasks really do write the same slots — the validator
// detects the write-write conflict at the join barrier, the region
// aborts, and the serial rerun produces the authoritative state
// (last = 2, total = 3).
const SpecConflict = `
class counter {
public:
  int last;
  int total;
  void mark(int v);
};

class driver {
public:
  counter *c;
  void init();
  void run();
  void show();
};

// Global Variables
driver D;

void counter::mark(int v) {
  last = v;
  total = total + v;
}

void driver::init() {
  c = new counter;
}

void driver::run() {
  c->mark(1);
  c->mark(2);
}

void driver::show() {
  print(c->last, c->total);
}

void main() {
  D.init();
  D.run();
  D.show();
}
`
