package apps_test

import (
	"math"
	"testing"

	"commute/internal/apps"
	"commute/internal/tracer"
)

// TestWaterMomentumConservation: the pairwise force updates through the
// shared force bank are antisymmetric, so total momentum is conserved
// across steps — a physics-level check that the commuting accumulations
// implement the right semantics.
func TestWaterMomentumConservation(t *testing.T) {
	sys, err := apps.Water(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := sys.RunSerial(nil)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := sys.ReadInt(ip, "Water.nmol")
	var px, py, pz float64
	for i := int64(0); i < n; i++ {
		m, _ := sys.ReadFloat(ip, path("Water.mols", i, "mass"))
		vx, _ := sys.ReadFloat(ip, path("Water.mols", i, "vx"))
		vy, _ := sys.ReadFloat(ip, path("Water.mols", i, "vy"))
		vz, _ := sys.ReadFloat(ip, path("Water.mols", i, "vz"))
		px += m * vx
		py += m * vy
		pz += m * vz
	}
	// The initial velocities are random in (-0.05, 0.05); forces cannot
	// change the total. Allow only float error relative to per-molecule
	// momentum scale.
	scale := float64(n) * 18.0 * 0.05
	var initPx float64
	{
		// Recompute the initial total from a zero-step run.
		sys0, err := apps.Water(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		ip0, err := sys0.RunSerial(nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < n; i++ {
			m, _ := sys0.ReadFloat(ip0, path("Water.mols", i, "mass"))
			vx, _ := sys0.ReadFloat(ip0, path("Water.mols", i, "vx"))
			initPx += m * vx
		}
	}
	if math.Abs(px-initPx) > 1e-9*scale {
		t.Errorf("x momentum drifted: %g → %g", initPx, px)
	}
	_ = py
	_ = pz
}

func path(base string, i int64, field string) string {
	return base + "[" + itoa(i) + "]." + field
}

func itoa(i int64) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestBarnesHutBoundMass: across steps the tree root mass stays the
// total mass (1.0 by construction).
func TestBarnesHutBoundMass(t *testing.T) {
	sys, err := apps.BarnesHut(128, 3)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := sys.RunSerial(nil)
	if err != nil {
		t.Fatal(err)
	}
	mass, err := sys.ReadFloat(ip, "Nbody.BH_root.mass")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mass-1.0) > 1e-9 {
		t.Errorf("root mass = %g, want 1.0", mass)
	}
}

// TestExplicitBaselineTransforms: stripCrits removes every critical
// section; the Barnes-Hut transformation preserves parallel work up to
// the locality factor and converts most serial work to parallel.
func TestExplicitBaselineTransforms(t *testing.T) {
	sys, err := apps.BarnesHut(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sys.Trace()
	if err != nil {
		t.Fatal(err)
	}
	ex := apps.ExplicitBarnesHut(tr, 128, 1.0) // locality 1.0: pure structure change
	if countCrits(ex) != 0 {
		t.Errorf("explicit trace still has %d critical sections", countCrits(ex))
	}
	if countCrits(tr) == 0 {
		t.Error("automatic trace should have critical sections")
	}
	// Total units are preserved when locality is 1.0.
	before := tr.SerialUnits() + tr.ParallelUnits()
	after := ex.SerialUnits() + ex.ParallelUnits()
	if before != after {
		t.Errorf("units changed: %d → %d", before, after)
	}
	// Most serial work became parallel.
	if ex.SerialUnits() >= tr.SerialUnits() {
		t.Errorf("serial units did not shrink: %d → %d", tr.SerialUnits(), ex.SerialUnits())
	}

	wsys, err := apps.Water(27, 1)
	if err != nil {
		t.Fatal(err)
	}
	wtr, err := wsys.Trace()
	if err != nil {
		t.Fatal(err)
	}
	wex := apps.ExplicitWater(wtr, 100)
	if countCrits(wex) != 0 {
		t.Error("explicit Water trace still has critical sections")
	}
}

func countCrits(tr *tracer.Trace) int {
	n := 0
	var walk func(*tracer.Task)
	walk = func(task *tracer.Task) {
		for _, e := range task.Events {
			switch e.Kind {
			case tracer.EvCrit:
				n++
			case tracer.EvSpawn:
				walk(e.Child)
			case tracer.EvLoop:
				for _, it := range e.Iters {
					walk(it)
				}
			}
		}
	}
	for _, ph := range tr.Phases {
		if ph.Root != nil {
			walk(ph.Root)
		}
	}
	return n
}

// TestLoaders: parameterized workloads produce the requested sizes.
func TestLoaders(t *testing.T) {
	sys, err := apps.Graph(48)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := sys.RunSerial(nil)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := sys.ReadInt(ip, "Builder.numnodes")
	if n != 48 {
		t.Errorf("graph nodes = %d, want 48", n)
	}

	bsys, err := apps.BarnesHut(96, 1)
	if err != nil {
		t.Fatal(err)
	}
	bip, err := bsys.RunSerial(nil)
	if err != nil {
		t.Fatal(err)
	}
	bn, _ := bsys.ReadInt(bip, "Nbody.numbodies")
	if bn != 96 {
		t.Errorf("bodies = %d, want 96", bn)
	}
}
