// Package apps assembles the paper's applications (Barnes-Hut, Water,
// and the §2 graph traversal) at configurable workload sizes, and
// models the explicitly parallel SPLASH versions the paper compares
// against (§6.2.5, §6.3.5) as transformations of the automatically
// parallelized traces.
package apps

import (
	"fmt"

	"commute"
	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/interp"
	"commute/internal/tracer"
)

// BarnesHut loads the Barnes-Hut application with the given workload.
func BarnesHut(bodies, steps int) (*commute.System, error) {
	return commute.Load("barneshut.mc", src.BarnesHutBase+src.BarnesHutMain(bodies, steps, 12345))
}

// Water loads the Water application with the given workload.
func Water(mols, steps int) (*commute.System, error) {
	return commute.Load("water.mc", src.WaterBase+src.WaterMain(mols, steps, 20231))
}

// Graph loads the graph-traversal example with the given node count.
func Graph(nodes int) (*commute.System, error) {
	return commute.Load("graph.mc", src.GraphBase+src.GraphMain(nodes, 12345))
}

// CondHash loads the conditional-commutativity hash-bucket app: mode 0
// makes the synthesized guard hold (parallel regions), any other mode
// forces the serial fallback.
func CondHash(mode, rounds int) (*commute.System, error) {
	return commute.Load("condhash.mc", src.CondHashBase+src.CondHashMain(mode, rounds))
}

// ---------------------------------------------------------------------
// Explicitly parallel baselines (trace models)
//
// The paper's explicitly parallel versions differ from the compiler's
// output in exactly the ways §6.2.5 and §6.3.5 describe; we model those
// differences as trace transformations so both versions run on the same
// simulated machine.

// ExplicitBarnesHut models the SPLASH-2 Barnes-Hut: the space
// subdivision tree is built in parallel (the automatic version builds
// it serially), and costzones partitioning gives the force phase better
// locality than guided self-scheduling. Per-body force accumulation is
// private, so the per-object locks disappear.
//
// grains is the parallel grain count for the converted serial phases
// (the body count); locality is the force-phase cost factor relative to
// the automatic version (the paper's costzones advantage — we use 0.85).
func ExplicitBarnesHut(tr *tracer.Trace, grains int, locality float64) *tracer.Trace {
	out := &tracer.Trace{}
	for _, ph := range tr.Phases {
		switch {
		case ph.Root == nil && ph.Serial > 10_000:
			// A substantial serial phase (tree construction / center of
			// mass): the explicit version parallelizes ~90% of it over
			// the bodies; insertion synchronization leaves a serial
			// residue.
			parUnits := ph.Serial * 9 / 10
			serUnits := ph.Serial - parUnits
			out.Phases = append(out.Phases, tracer.Phase{
				Label: ph.Label + " (serial residue)", Serial: serUnits,
			})
			out.Phases = append(out.Phases, tracer.Phase{
				Label: ph.Label + " (parallel build)",
				Root:  loopOfEqualIters(parUnits, grains),
			})
		case ph.Root == nil:
			out.Phases = append(out.Phases, ph)
		default:
			out.Phases = append(out.Phases, tracer.Phase{
				Label: ph.Label,
				Root:  stripCrits(scaleTask(ph.Root, locality)),
			})
		}
	}
	return out
}

// ExplicitWater models the SPLASH Water: the shared accumulator
// structures (the force bank and the energy sums) are replicated per
// processor and reduced at phase end, eliminating the lock operations
// and the contention; a small per-phase serial reduction remains.
func ExplicitWater(tr *tracer.Trace, reductionUnits int64) *tracer.Trace {
	out := &tracer.Trace{}
	for _, ph := range tr.Phases {
		if ph.Root == nil {
			out.Phases = append(out.Phases, ph)
			continue
		}
		out.Phases = append(out.Phases, tracer.Phase{
			Label: ph.Label,
			Root:  stripCrits(ph.Root),
		})
		out.Phases = append(out.Phases, tracer.Phase{
			Label:  ph.Label + " (reduction)",
			Serial: reductionUnits,
		})
	}
	return out
}

// loopOfEqualIters builds a region containing one parallel loop of
// `grains` equal-cost iterations totalling units.
func loopOfEqualIters(units int64, grains int) *tracer.Task {
	if grains < 1 {
		grains = 1
	}
	per := units / int64(grains)
	iters := make([]*tracer.Task, grains)
	for i := range iters {
		u := per
		if i == 0 {
			u += units - per*int64(grains) // remainder
		}
		iters[i] = &tracer.Task{Events: []tracer.Event{{Kind: tracer.EvCompute, Units: u}}}
	}
	return &tracer.Task{Events: []tracer.Event{{Kind: tracer.EvLoop, Iters: iters}}}
}

// stripCrits converts critical sections to plain compute (replicated or
// private data needs no locks), recursively.
func stripCrits(t *tracer.Task) *tracer.Task {
	out := &tracer.Task{Events: make([]tracer.Event, 0, len(t.Events))}
	for _, e := range t.Events {
		switch e.Kind {
		case tracer.EvCrit:
			out.Events = append(out.Events, tracer.Event{Kind: tracer.EvCompute, Units: e.Units})
		case tracer.EvSpawn:
			out.Events = append(out.Events, tracer.Event{Kind: tracer.EvSpawn, Child: stripCrits(e.Child)})
		case tracer.EvLoop:
			iters := make([]*tracer.Task, len(e.Iters))
			for i, it := range e.Iters {
				iters[i] = stripCrits(it)
			}
			out.Events = append(out.Events, tracer.Event{Kind: tracer.EvLoop, Iters: iters})
		default:
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// scaleTask multiplies compute costs by f (locality model), recursively.
func scaleTask(t *tracer.Task, f float64) *tracer.Task {
	out := &tracer.Task{Events: make([]tracer.Event, 0, len(t.Events))}
	for _, e := range t.Events {
		switch e.Kind {
		case tracer.EvCompute:
			out.Events = append(out.Events, tracer.Event{Kind: tracer.EvCompute, Units: int64(float64(e.Units) * f)})
		case tracer.EvCrit:
			out.Events = append(out.Events, tracer.Event{Kind: tracer.EvCrit, Obj: e.Obj, Units: int64(float64(e.Units) * f)})
		case tracer.EvSpawn:
			out.Events = append(out.Events, tracer.Event{Kind: tracer.EvSpawn, Child: scaleTask(e.Child, f)})
		case tracer.EvLoop:
			iters := make([]*tracer.Task, len(e.Iters))
			for i, it := range e.Iters {
				iters[i] = scaleTask(it, f)
			}
			out.Events = append(out.Events, tracer.Event{Kind: tracer.EvLoop, Iters: iters})
		}
	}
	return out
}

// TraceWithoutHoisting traces a system under a plan with the §5.4.2
// lock hoisting disabled (every nested operation locks individually).
func TraceWithoutHoisting(sys *commute.System) (*tracer.Trace, error) {
	plan := codegen.BuildWithOptions(sys.Analysis, codegen.Options{DisableHoisting: true})
	ip := interp.New(sys.Prog, nil)
	return tracer.Collect(ip, plan)
}

// TraceWithNestedLoops traces a system under a plan with the §5.2
// nested-concurrency suppression disabled.
func TraceWithNestedLoops(sys *commute.System) (*tracer.Trace, error) {
	plan := codegen.BuildWithOptions(sys.Analysis, codegen.Options{DisableSuppression: true})
	ip := interp.New(sys.Prog, nil)
	return tracer.Collect(ip, plan)
}

// TraceWithReplication traces a system under the §6.3.4 replication
// optimization: commuting-accumulator operations run lock-free against
// per-processor replicas merged by phase-end reductions.
func TraceWithReplication(sys *commute.System) (*tracer.Trace, error) {
	plan := codegen.BuildWithOptions(sys.Analysis, codegen.Options{ReplicateAccumulators: true})
	ip := interp.New(sys.Prog, nil)
	return tracer.Collect(ip, plan)
}

// Describe returns a short human-readable description of a system's
// analysis outcome (used by the examples).
func Describe(sys *commute.System) string {
	out := ""
	for _, r := range sys.Reports() {
		status := "serial"
		if r.Parallel {
			status = "PARALLEL"
		}
		out += fmt.Sprintf("%-28s %s\n", r.Method.FullName(), status)
	}
	return out
}
