package apps_test

import (
	"math"
	"testing"

	"commute/internal/apps"
	"commute/internal/interp"
)

// Golden numeric outputs for the two physics applications at a fixed
// small workload, recorded as exact float64 bit patterns. Floating
// point arithmetic in the interpreter is deterministic, so any drift —
// engine divergence, a change in evaluation order, a coercion bug in
// the tagged value representation — shows up as a bit-level mismatch,
// not just a tolerance failure.
var goldenCases = []struct {
	app  string
	path string
	bits uint64
}{
	{"barneshut", "Nbody.BH_root.mass", 0x3ff0000000000000},
	{"barneshut", "Nbody.bodies[0].phi", 0xbfd8fc83a01533a2},
	{"barneshut", "Nbody.bodies[17].phi", 0xbfded288461bc57e},
	{"barneshut", "Nbody.bodies[63].vel.val[0]", 0x3f4cecb6c5384897},
	{"water", "Water.mols[0].vx", 0x3fa305903e3d2f0b},
	{"water", "Water.mols[11].vy", 0x3f57b45cdad0da27},
	{"water", "Water.mols[26].vz", 0xbfa8fd7842666b13},
}

// TestGoldenOutputs runs Barnes-Hut (64 bodies, 1 step) and Water
// (27 molecules, 1 step) serially under both execution engines and
// checks representative observables against the committed goldens,
// bit for bit.
func TestGoldenOutputs(t *testing.T) {
	for _, e := range []struct {
		name string
		eng  interp.Engine
	}{{"walk", interp.EngineWalk}, {"compiled", interp.EngineCompiled}} {
		t.Run(e.name, func(t *testing.T) {
			bh, err := apps.BarnesHut(64, 1)
			if err != nil {
				t.Fatal(err)
			}
			bhIP, err := bh.RunSerialEngine(e.eng, nil)
			if err != nil {
				t.Fatalf("barneshut: %v", err)
			}
			water, err := apps.Water(27, 1)
			if err != nil {
				t.Fatal(err)
			}
			waterIP, err := water.RunSerialEngine(e.eng, nil)
			if err != nil {
				t.Fatalf("water: %v", err)
			}
			for _, g := range goldenCases {
				sys, ip := bh, bhIP
				if g.app == "water" {
					sys, ip = water, waterIP
				}
				v, err := sys.ReadFloat(ip, g.path)
				if err != nil {
					t.Errorf("%s %s: %v", g.app, g.path, err)
					continue
				}
				if bits := math.Float64bits(v); bits != g.bits {
					t.Errorf("%s %s = %v (bits %#016x), want bits %#016x (%v)",
						g.app, g.path, v, bits, g.bits, math.Float64frombits(g.bits))
				}
			}
		})
	}
}
