// Package transform implements the loop-replacement transformation
// §4.8.1 and §7.2 of Rinard & Diniz 1996 describe: "For analysis
// purposes the compiler can also replace unanalyzable loops with tail
// recursive methods that perform the same computation." A while loop
// (or a for loop outside the recognized counted forms) inside a class
// method becomes a synthesized tail-recursive auxiliary method whose
// parameters are the loop's free local variables; the symbolic executor
// can then analyze the loop body as an ordinary operation, which lets
// computations like pointer-chasing list accumulations pass the
// commutativity test.
package transform

import (
	"fmt"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/printer"
	"commute/internal/frontend/types"
)

// Rewrite records one applied loop replacement.
type Rewrite struct {
	Method string // the method that contained the loop
	Helper string // the synthesized tail-recursive method
}

// WhileToRecursion rewrites eligible while loops in the checked program
// and returns the transformed source text together with the rewrites
// performed. The caller re-parses and re-checks the result. Loops are
// eligible when:
//
//   - they appear in a class method (the recursion needs a receiver);
//   - the body contains no return statement;
//   - every local variable the loop references has a parameter-passable
//     type (primitives and class pointers — no local arrays);
//   - no local the loop modifies is used after the loop.
func WhileToRecursion(prog *types.Program, file *ast.File) (string, []Rewrite) {
	t := &transformer{prog: prog, file: file}
	for _, m := range prog.Methods {
		if m.Class == nil || m.Def == nil {
			continue
		}
		t.method(m)
	}
	return printer.File(t.file), t.rewrites
}

type transformer struct {
	prog     *types.Program
	file     *ast.File
	rewrites []Rewrite
	seq      int
}

func (t *transformer) method(m *types.Method) {
	t.rewriteStmts(m, m.Def.Body.Stmts, m.Def.Body)
}

// rewriteStmts replaces eligible while loops within a statement list
// (recursing into compound statements first).
func (t *transformer) rewriteStmts(m *types.Method, ss []ast.Stmt, parent *ast.Block) {
	for i, s := range ss {
		switch x := s.(type) {
		case *ast.Block:
			t.rewriteStmts(m, x.Stmts, x)
		case *ast.IfStmt:
			t.rewriteChild(m, x.Then, func(n ast.Stmt) { x.Then = n })
			if x.Else != nil {
				t.rewriteChild(m, x.Else, func(n ast.Stmt) { x.Else = n })
			}
		case *ast.ForStmt:
			t.rewriteChild(m, x.Body, func(n ast.Stmt) { x.Body = n })
		case *ast.WhileStmt:
			if call, helper, ok := t.extract(m, x, ss[i+1:]); ok {
				parent.Stmts[i] = call
				t.install(m, helper)
			} else {
				t.rewriteChild(m, x.Body, func(n ast.Stmt) { x.Body = n })
			}
		}
	}
}

// rewriteChild handles a single-statement child (if/for bodies).
func (t *transformer) rewriteChild(m *types.Method, s ast.Stmt, set func(ast.Stmt)) {
	switch x := s.(type) {
	case *ast.Block:
		t.rewriteStmts(m, x.Stmts, x)
	case *ast.WhileStmt:
		// A while loop as a bare branch body: it has no trailing
		// statements in its scope, so liveness-after is empty.
		if call, helper, ok := t.extract(m, x, nil); ok {
			set(call)
			t.install(m, helper)
		} else {
			t.rewriteChild(m, x.Body, func(n ast.Stmt) { x.Body = n })
		}
	}
}

// extract builds the tail-recursive helper for a while loop.
func (t *transformer) extract(m *types.Method, w *ast.WhileStmt, after []ast.Stmt) (ast.Stmt, *ast.MethodDef, bool) {
	if containsReturn(w) {
		return nil, nil, false
	}
	free := t.freeLocals(m, w)
	if free == nil {
		return nil, nil, false
	}
	// Locals assigned in the loop must be dead afterwards.
	assigned := assignedLocals(w)
	for _, s := range after {
		for name := range assigned {
			if mentions(s, name) {
				return nil, nil, false
			}
		}
	}

	t.seq++
	helperName := fmt.Sprintf("%s__loop%d", m.Name, t.seq)

	// Parameters: the free locals, with their declared types.
	var params []*ast.Param
	var args []ast.Expr
	for _, fl := range free {
		params = append(params, &ast.Param{Name: fl.name, Type: fl.typ})
		args = append(args, &ast.Ident{Name: fl.name})
	}

	// Helper body: if (cond) { body...; this->helper(locals); }.
	recurse := &ast.ExprStmt{X: &ast.CallExpr{
		Method: helperName, Args: cloneArgs(free), Site: -1,
	}}
	var bodyStmts []ast.Stmt
	if b, ok := w.Body.(*ast.Block); ok {
		bodyStmts = append(bodyStmts, b.Stmts...)
	} else {
		bodyStmts = append(bodyStmts, w.Body)
	}
	bodyStmts = append(bodyStmts, recurse)
	helper := &ast.MethodDef{
		ClassName: m.Class.Name,
		Name:      helperName,
		RetType:   &ast.TypeExpr{Kind: ast.TVoid},
		Params:    params,
		Body: &ast.Block{Stmts: []ast.Stmt{
			&ast.IfStmt{Cond: w.Cond, Then: &ast.Block{Stmts: bodyStmts}},
		}},
	}

	call := &ast.ExprStmt{X: &ast.CallExpr{Method: helperName, Args: args, Site: -1}}
	t.rewrites = append(t.rewrites, Rewrite{Method: m.FullName(), Helper: m.Class.Name + "::" + helperName})
	return call, helper, true
}

// install adds the helper's prototype to the class declaration and its
// definition to the file.
func (t *transformer) install(m *types.Method, helper *ast.MethodDef) {
	for _, d := range t.file.Decls {
		if cd, ok := d.(*ast.ClassDecl); ok && cd.Name == m.Class.Name {
			cd.Protos = append(cd.Protos, &ast.MethodProto{
				Name:    helper.Name,
				RetType: helper.RetType,
				Params:  helper.Params,
				Public:  true,
			})
		}
	}
	t.file.Decls = append(t.file.Decls, helper)
}

// freeLocal is one loop-referenced local with its declared type.
type freeLocal struct {
	name string
	typ  *ast.TypeExpr
}

// freeLocals collects the locals and parameters the loop references, in
// deterministic (name-sorted) order, or nil when some referenced local
// is not parameter-passable.
func (t *transformer) freeLocals(m *types.Method, w *ast.WhileStmt) []freeLocal {
	names := map[string]bool{}
	declaredInside := map[string]bool{}
	ast.Inspect(w.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeclStmt); ok {
			declaredInside[d.Name] = true
		}
		return true
	})
	bad := false
	collect := func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if id.Sym != ast.SymLocal && id.Sym != ast.SymParam {
			return true
		}
		if declaredInside[id.Name] {
			return true
		}
		names[id.Name] = true
		return true
	}
	ast.Inspect(w.Cond, collect)
	ast.Inspect(w.Body, collect)
	if bad {
		return nil
	}

	var out []freeLocal
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sortStrings(ordered)
	for _, name := range ordered {
		te := t.typeExprOf(m, name)
		if te == nil {
			return nil
		}
		out = append(out, freeLocal{name: name, typ: te})
	}
	if out == nil {
		out = []freeLocal{} // a loop with no free locals is still eligible
	}
	return out
}

// typeExprOf reconstructs a parameter type expression for a local or
// parameter, or nil when the type cannot be passed by value.
func (t *transformer) typeExprOf(m *types.Method, name string) *ast.TypeExpr {
	var typ types.Type
	if p := m.ParamByName(name); p != nil {
		typ = p.Type
	} else if lt, ok := m.Locals[name]; ok {
		typ = lt
	} else {
		return nil
	}
	switch tt := typ.(type) {
	case types.Basic:
		switch tt {
		case types.Int:
			return &ast.TypeExpr{Kind: ast.TInt}
		case types.Double:
			return &ast.TypeExpr{Kind: ast.TDouble}
		case types.Bool:
			return &ast.TypeExpr{Kind: ast.TBool}
		}
	case types.Pointer:
		return &ast.TypeExpr{Kind: ast.TClass, ClassName: tt.Class.Name, Ptr: true}
	}
	return nil // arrays and reference parameters are not passable
}

func cloneArgs(free []freeLocal) []ast.Expr {
	out := make([]ast.Expr, len(free))
	for i, fl := range free {
		out[i] = &ast.Ident{Name: fl.name}
	}
	return out
}

func containsReturn(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// assignedLocals collects local names the loop assigns.
func assignedLocals(n ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(n, func(x ast.Node) bool {
		if asn, ok := x.(*ast.Assign); ok {
			if id, ok2 := asn.LHS.(*ast.Ident); ok2 &&
				(id.Sym == ast.SymLocal || id.Sym == ast.SymParam) {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// mentions reports whether the subtree references the named identifier.
func mentions(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
