package transform_test

import (
	"strings"
	"testing"

	"commute"
)

const listSum = `
class node {
public:
  int v;
  node *next;
};
class acc {
public:
  int total;
  void sumList(node *head);
};
class driver {
public:
  acc *a;
  node *h1;
  node *h2;
  void run();
};
void acc::sumList(node *head) {
  node *p;
  p = head;
  while (p != NULL) {
    total = total + p->v;
    p = p->next;
  }
}
void driver::run() {
  a->sumList(h1);
  a->sumList(h2);
}
`

// TestListSumParallelizesAfterTransform is the §7.2 story end to end:
// the while-loop version is unanalyzable and stays serial; after the
// loop-replacement transformation the pointer-chasing accumulation
// passes the commutativity test.
func TestListSumParallelizesAfterTransform(t *testing.T) {
	plain, err := commute.Load("listsum.mc", listSum)
	if err != nil {
		t.Fatal(err)
	}
	if r := plain.Report("driver::run"); r.Parallel {
		t.Fatal("the while-loop version must be serial (unanalyzable loop)")
	}

	sys, out, rewrites, err := commute.LoadTransformed("listsum.mc", listSum)
	if err != nil {
		t.Fatalf("transform: %v\n%s", err, out)
	}
	if len(rewrites) != 1 {
		t.Fatalf("rewrites = %v, want one", rewrites)
	}
	if rewrites[0].Helper != "acc::sumList__loop1" {
		t.Errorf("helper = %s", rewrites[0].Helper)
	}
	if !strings.Contains(out, "sumList__loop1(node *p)") {
		t.Errorf("transformed source missing helper:\n%s", out)
	}
	r := sys.Report("driver::run")
	if !r.Parallel {
		t.Fatalf("transformed run should be parallel; reason: %s", r.Reason)
	}
}

// TestTransformedExecutionMatches: the transformed program computes the
// same sums, serially and in parallel.
func TestTransformedExecutionMatches(t *testing.T) {
	source := listSum + `
class setup {
public:
  int built;
  void go();
};
setup S;
driver D;
void setup::go() {
  node *n;
  node *prev;
  int i;
  D.a = new acc;
  prev = NULL;
  for (i = 1; i < 6; i++) {
    n = new node;
    n->v = i;
    n->next = prev;
    prev = n;
  }
  D.h1 = prev;
  prev = NULL;
  for (i = 10; i < 13; i++) {
    n = new node;
    n->v = i;
    n->next = prev;
    prev = n;
  }
  D.h2 = prev;
  built = 1;
}
void main() {
  S.go();
  D.run();
}
`
	want := int64(1 + 2 + 3 + 4 + 5 + 10 + 11 + 12)

	// Untransformed serial run.
	plain, err := commute.Load("listsum.mc", source)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := plain.RunSerial(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plain.ReadInt(ip, "D.a.total")
	if err == nil {
		if got != want {
			t.Fatalf("plain total = %d, want %d", got, want)
		}
	} else {
		// D.a is a pointer; the path reader follows it.
		t.Fatal(err)
	}

	// Transformed, serial and parallel.
	sys, out, _, err := commute.LoadTransformed("listsum.mc", source)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	ipS, err := sys.RunSerial(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sys.ReadInt(ipS, "D.a.total"); got != want {
		t.Fatalf("transformed serial total = %d, want %d", got, want)
	}
	ipP, _, err := sys.RunParallel(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sys.ReadInt(ipP, "D.a.total"); got != want {
		t.Fatalf("transformed parallel total = %d, want %d", got, want)
	}
}

// TestIneligibleLoopsSkipped: loops whose locals escape, that return,
// or that reference local arrays stay untouched.
func TestIneligibleLoopsSkipped(t *testing.T) {
	cases := []struct{ name, body string }{
		{"local-used-after", `
  int i;
  i = 0;
  while (i < n) { i = i + 1; }
  total = i;`},
		{"return-inside", `
  int i;
  i = 0;
  while (i < n) { i = i + 1; if (i > 3) return; }`},
		{"local-array", `
  double t[4];
  int i;
  i = 0;
  t[0] = 0.0;
  while (i < n) { t[0] = t[0] + 1.0; i = i + 1; }`},
	}
	for _, tc := range cases {
		source := `
class acc {
public:
  int total;
  int n;
  void work();
};
class driver { public: acc *a; void run(); };
void acc::work() {` + tc.body + `
}
void driver::run() { a->work(); }
`
		_, _, rewrites, err := commute.LoadTransformed("skip.mc", source)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(rewrites) != 0 {
			t.Errorf("%s: expected no rewrites, got %v", tc.name, rewrites)
		}
	}
}
