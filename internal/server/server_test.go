package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"commute/internal/server/api"
)

// spinSource loops forever; only a deadline or step budget stops it.
const spinSource = `
void main() {
  int i;
  i = 0;
  while (i < 1) {
    i = 0;
  }
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func statusz(t *testing.T, ts *httptest.Server) api.StatusZ {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.StatusZ
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	s.SetDraining()
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
}

func TestAnalyzeCacheHit(t *testing.T) {
	// BatchLinger off: this test asserts per-request cache words, which
	// the coalescing window intentionally blurs for back-to-back
	// identical requests.
	_, ts := newTestServer(t, Config{BatchLinger: -1})
	req := api.AnalyzeRequest{SourceRequest: api.SourceRequest{App: "graph"}}

	resp, data := post(t, ts, "/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold analyze = %d: %s", resp.StatusCode, data)
	}
	var cold api.AnalyzeResponse
	if err := json.Unmarshal(data, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cache != "miss" {
		t.Fatalf("cold request cache = %q, want miss", cold.Cache)
	}
	if len(cold.ParallelMethods) == 0 {
		t.Fatal("graph analysis found no parallel methods")
	}

	resp, data = post(t, ts, "/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm analyze = %d: %s", resp.StatusCode, data)
	}
	var warm api.AnalyzeResponse
	if err := json.Unmarshal(data, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Cache != "hit" {
		t.Fatalf("warm request cache = %q, want hit", warm.Cache)
	}
	if warm.Key != cold.Key {
		t.Fatalf("keys differ across identical requests: %s vs %s", cold.Key, warm.Key)
	}
	if len(warm.Methods) != len(cold.Methods) {
		t.Fatal("warm response reports differ from cold")
	}

	st := statusz(t, ts)
	if st.CacheHits < 1 || st.CacheMisses < 1 {
		t.Fatalf("statusz cache counters = %d hits / %d misses, want >=1 each", st.CacheHits, st.CacheMisses)
	}
	ep := st.Endpoints["analyze"]
	if ep.Requests != 2 || ep.Errors != 0 {
		t.Fatalf("analyze endpoint stats = %+v, want 2 requests 0 errors", ep)
	}
}

// TestAnalyzeCacheSpeedupBarnesHut is the acceptance bar: a second
// identical analyze of Barnes-Hut must be served from cache at least
// 10x faster than the cold request (the cold request pays parse, type
// check, §3–§4 analysis, codegen, slot resolution, and closure
// compilation; the hit pays a map lookup and response assembly).
func TestAnalyzeCacheSpeedupBarnesHut(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	_, ts := newTestServer(t, Config{BatchLinger: -1})
	req := api.AnalyzeRequest{SourceRequest: api.SourceRequest{App: "barneshut"}}

	t0 := time.Now()
	resp, data := post(t, ts, "/v1/analyze", req)
	cold := time.Since(t0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold analyze = %d: %s", resp.StatusCode, data)
	}

	t1 := time.Now()
	resp, data = post(t, ts, "/v1/analyze", req)
	warm := time.Since(t1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm analyze = %d: %s", resp.StatusCode, data)
	}
	var wr api.AnalyzeResponse
	if err := json.Unmarshal(data, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Cache != "hit" {
		t.Fatalf("second request cache = %q, want hit", wr.Cache)
	}
	if warm*10 > cold {
		t.Fatalf("cached analyze took %v vs cold %v — want >= 10x faster", warm, cold)
	}
}

func TestRunSerialAndParallelAgree(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	serial := api.RunRequest{SourceRequest: api.SourceRequest{App: "graph"}, Mode: "serial"}
	parallel := api.RunRequest{SourceRequest: api.SourceRequest{App: "graph"}, Mode: "parallel", Workers: 8}

	resp, data := post(t, ts, "/v1/run", serial)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serial run = %d: %s", resp.StatusCode, data)
	}
	var sr api.RunResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Stats.Mode != "serial" || sr.Stats.Engine != "compiled" {
		t.Fatalf("serial stats = %+v", sr.Stats)
	}

	resp, data = post(t, ts, "/v1/run", parallel)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parallel run = %d: %s", resp.StatusCode, data)
	}
	var pr api.RunResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Cache != "hit" {
		t.Fatalf("parallel run after serial run cache = %q, want hit (same program)", pr.Cache)
	}
	if pr.Output != sr.Output {
		t.Fatalf("parallel output differs from serial:\nserial:   %q\nparallel: %q", sr.Output, pr.Output)
	}
	if pr.Stats.Regions == 0 {
		t.Fatalf("parallel run opened no regions: %+v", pr.Stats)
	}
}

func TestRunDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := api.RunRequest{
		SourceRequest: api.SourceRequest{Name: "spin.mc", Source: spinSource},
		Mode:          "serial",
		TimeoutMS:     150,
	}
	t0 := time.Now()
	resp, data := post(t, ts, "/v1/run", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("runaway run = %d: %s, want 504", resp.StatusCode, data)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", d)
	}
}

func TestRunMaxSteps(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/run", api.RunRequest{
		SourceRequest: api.SourceRequest{Name: "spin.mc", Source: spinSource},
		Mode:          "parallel",
		MaxSteps:      10000,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("step-budget run = %d: %s, want 422", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "step budget") {
		t.Fatalf("error body %s, want step budget message", data)
	}
}

func TestOutputCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxOutputBytes: 64})
	src := `
void main() {
  for (int i = 0; i < 1000; i += 1)
    print(i);
}
`
	resp, data := post(t, ts, "/v1/run", api.RunRequest{
		SourceRequest: api.SourceRequest{Name: "chatty.mc", Source: src},
		Mode:          "serial",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chatty run = %d: %s", resp.StatusCode, data)
	}
	var rr api.RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.OutputTruncated {
		t.Fatal("output not marked truncated")
	}
	if len(rr.Output) > 64 {
		t.Fatalf("output length %d exceeds the 64-byte cap", len(rr.Output))
	}
}

func TestSimulate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/simulate", api.SimulateRequest{
		SourceRequest: api.SourceRequest{App: "graph"},
		Procs:         []int{1, 4},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate = %d: %s", resp.StatusCode, data)
	}
	var sim api.SimulateResponse
	if err := json.Unmarshal(data, &sim); err != nil {
		t.Fatal(err)
	}
	if len(sim.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(sim.Results))
	}
	if sim.Results[0].Procs != 1 || sim.Results[0].Speedup != 1 {
		t.Fatalf("uniprocessor point = %+v, want speedup 1", sim.Results[0])
	}
	if sim.Results[1].TimeMicros >= sim.Results[0].TimeMicros {
		t.Fatalf("4-proc time %.0fus not below 1-proc %.0fus",
			sim.Results[1].TimeMicros, sim.Results[0].TimeMicros)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		path string
		req  any
		want int
	}{
		{"/v1/analyze", api.AnalyzeRequest{SourceRequest: api.SourceRequest{App: "nope"}}, http.StatusUnprocessableEntity},
		{"/v1/analyze", api.AnalyzeRequest{}, http.StatusUnprocessableEntity},
		{"/v1/analyze", api.AnalyzeRequest{SourceRequest: api.SourceRequest{Source: "void main("}}, http.StatusUnprocessableEntity},
		{"/v1/run", api.RunRequest{SourceRequest: api.SourceRequest{App: "graph"}, Mode: "warp"}, http.StatusBadRequest},
		{"/v1/run", api.RunRequest{SourceRequest: api.SourceRequest{App: "graph"}, Engine: "jit"}, http.StatusBadRequest},
		{"/v1/run", api.RunRequest{SourceRequest: api.SourceRequest{App: "graph"}, Mode: "serial", MaxSteps: 5}, http.StatusBadRequest},
		{"/v1/simulate", api.SimulateRequest{SourceRequest: api.SourceRequest{App: "graph"}, Procs: []int{0}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := post(t, ts, tc.path, tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s %+v = %d (%s), want %d", tc.path, tc.req, resp.StatusCode, data, tc.want)
		}
		var e api.Error
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s error envelope missing: %s", tc.path, data)
		}
	}
}

func TestAdmissionControl(t *testing.T) {
	// One worker, no queue: while a slow request holds the only slot,
	// every other request sheds with 429 + Retry-After.
	_, ts := newTestServer(t, Config{Workers: 1, Queue: -1})

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		post(t, ts, "/v1/run", api.RunRequest{
			SourceRequest: api.SourceRequest{Name: "spin.mc", Source: spinSource},
			Mode:          "serial",
			TimeoutMS:     1500,
		})
	}()
	<-started
	// Wait until the slow request actually occupies the worker slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := statusz(t, ts); st.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, data := post(t, ts, "/v1/analyze", api.AnalyzeRequest{SourceRequest: api.SourceRequest{App: "graph"}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request under full queue = %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	<-done

	if st := statusz(t, ts); st.Rejected < 1 {
		t.Fatalf("statusz rejected = %d, want >= 1", st.Rejected)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	// Hammer one server from many clients mixing all three endpoints
	// against a shared cached system — the daemon-side version of the
	// shared-*System stress test.
	_, ts := newTestServer(t, Config{})
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp *http.Response
			var data []byte
			switch i % 3 {
			case 0:
				resp, data = post(t, ts, "/v1/analyze", api.AnalyzeRequest{SourceRequest: api.SourceRequest{App: "graph"}})
			case 1:
				resp, data = post(t, ts, "/v1/run", api.RunRequest{SourceRequest: api.SourceRequest{App: "graph"}, Mode: "parallel", Workers: 4})
			case 2:
				resp, data = post(t, ts, "/v1/simulate", api.SimulateRequest{SourceRequest: api.SourceRequest{App: "graph"}, Procs: []int{1, 4}})
			}
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("request %d = %d: %s", i, resp.StatusCode, data)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := statusz(t, ts)
	if st.CacheMisses != 1 {
		t.Errorf("16 requests for one program cost %d loads, want 1", st.CacheMisses)
	}
}

func TestGracefulDrain(t *testing.T) {
	// The embedder contract: SetDraining + http.Server.Shutdown lets
	// in-flight requests finish before the listener dies.
	s := New(Config{})
	hs := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()

	slowDone := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(api.RunRequest{
			SourceRequest: api.SourceRequest{Name: "spin.mc", Source: spinSource},
			Mode:          "serial",
			TimeoutMS:     800,
		})
		resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			slowDone <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()

	// Wait for the slow request to be in flight, then drain.
	deadline := time.Now().Add(2 * time.Second)
	for s.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.SetDraining()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	t0 := time.Now()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	if code := <-slowDone; code != http.StatusGatewayTimeout {
		t.Fatalf("in-flight request finished with %d, want its own 504 (deadline), not a dropped connection", code)
	}
	if d := time.Since(t0); d < 200*time.Millisecond {
		t.Fatalf("shutdown returned in %v — did not wait for the in-flight request", d)
	}
}

// TestRunSpeculation is the in-process mirror of the smoke script's
// speculation checks: a disjoint rejected extent commits, a conflicting
// one aborts and re-runs serially with the exact serial output, the
// abort never counts as an infrastructure fallback, and both counters
// accumulate into /statusz.
func TestRunSpeculation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// The analysis scores the rejected extent with fractional confidence
	// and marks it speculation-eligible.
	resp, data := post(t, ts, "/v1/analyze", api.AnalyzeRequest{
		SourceRequest: api.SourceRequest{App: "specdisjoint"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze = %d: %s", resp.StatusCode, data)
	}
	var ar api.AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	eligible := false
	for _, m := range ar.Methods {
		if m.Method == "table::fill" {
			if m.Parallel {
				t.Fatal("fill must be rejected")
			}
			if m.Confidence <= 0 || m.Confidence >= 1 {
				t.Fatalf("fill confidence = %v, want in (0,1)", m.Confidence)
			}
			eligible = m.SpeculationEligible
		}
	}
	if !eligible {
		t.Fatal("fill must be speculation-eligible")
	}

	run := func(app string) api.RunResponse {
		t.Helper()
		resp, data := post(t, ts, "/v1/run", api.RunRequest{
			SourceRequest: api.SourceRequest{App: app},
			Mode:          "parallel",
			Workers:       4,
			Speculate:     "force",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %s = %d: %s", app, resp.StatusCode, data)
		}
		var rr api.RunResponse
		if err := json.Unmarshal(data, &rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}

	if rr := run("specdisjoint"); rr.Stats.SpeculationCommits == 0 || rr.Stats.SpeculationAborts != 0 {
		t.Fatalf("specdisjoint stats = %+v, want commits without aborts", rr.Stats)
	}
	rr := run("specconflict")
	if rr.Stats.SpeculationAborts == 0 || rr.Stats.SpeculationCommits != 0 {
		t.Fatalf("specconflict stats = %+v, want aborts without commits", rr.Stats)
	}
	if rr.Output != "2 3\n" {
		t.Fatalf("specconflict output = %q, want the serial rerun's %q", rr.Output, "2 3\n")
	}
	if rr.Stats.SerialFallbacks != 0 {
		t.Fatalf("speculation abort counted as serial fallback: %+v", rr.Stats)
	}

	// Regression: an explicitly requested engine must be honored under
	// speculation — both engines monitor at full speed now, and a
	// silent downgrade (the old walker-forcing) would show up as a
	// changed stats.Engine.
	for _, engine := range []string{"compiled", "walk"} {
		resp, data := post(t, ts, "/v1/run", api.RunRequest{
			SourceRequest: api.SourceRequest{App: "specdisjoint"},
			Mode:          "parallel",
			Workers:       4,
			Engine:        engine,
			Speculate:     "force",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run engine=%s = %d: %s", engine, resp.StatusCode, data)
		}
		var er api.RunResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatal(err)
		}
		if er.Stats.Engine != engine {
			t.Fatalf("requested engine %q ran as %q (silent downgrade)", engine, er.Stats.Engine)
		}
		if er.Stats.SpeculationCommits == 0 {
			t.Fatalf("engine=%s: speculation did not commit: %+v", engine, er.Stats)
		}
	}

	// Speculation is rejected for serial mode, and bad modes 400.
	resp, _ = post(t, ts, "/v1/run", api.RunRequest{
		SourceRequest: api.SourceRequest{App: "specconflict"},
		Mode:          "serial",
		Speculate:     "force",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("serial+speculate = %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/v1/run", api.RunRequest{
		SourceRequest: api.SourceRequest{App: "specconflict"},
		Speculate:     "maybe",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad speculate word = %d, want 400", resp.StatusCode)
	}

	st := statusz(t, ts)
	if st.SpeculationCommits == 0 || st.SpeculationAborts == 0 {
		t.Fatalf("statusz speculation counters = %d commits / %d aborts, want both nonzero",
			st.SpeculationCommits, st.SpeculationAborts)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("statusz fallbacks = %d, want 0 (aborts are not fallbacks)", st.Fallbacks)
	}
}

func TestRunConditional(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// The analysis surfaces the synthesized condition structurally:
	// rendered predicate, predicate tree, and the runtime guard.
	resp, data := post(t, ts, "/v1/analyze", api.AnalyzeRequest{
		SourceRequest: api.SourceRequest{App: "condhash"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze = %d: %s", resp.StatusCode, data)
	}
	var ar api.AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ar.Methods {
		if m.Method != "table::ingest" {
			continue
		}
		found = true
		if m.Parallel {
			t.Fatal("ingest must be rejected by the binary analysis")
		}
		if !m.ConditionalEligible {
			t.Fatalf("ingest not conditional-eligible: %+v", m)
		}
		if m.Condition == "" || m.ConditionTree == nil {
			t.Fatalf("ingest condition missing: %+v", m)
		}
		if m.Guard == "" || m.GuardTree == nil {
			t.Fatalf("ingest guard missing: %+v", m)
		}
		if !strings.Contains(m.Guard, "ec:table.mode@global:H") {
			t.Fatalf("guard %q does not read the mode extent constant", m.Guard)
		}
		if m.GuardTree.Kind != "atom" || m.GuardTree.Expr != m.Guard {
			t.Fatalf("guard tree %+v does not mirror rendered guard %q", m.GuardTree, m.Guard)
		}
	}
	if !found {
		t.Fatal("no report for table::ingest")
	}

	run := func(app, mode string, conditional bool) (api.RunResponse, int) {
		t.Helper()
		resp, data := post(t, ts, "/v1/run", api.RunRequest{
			SourceRequest: api.SourceRequest{App: app},
			Mode:          mode,
			Workers:       4,
			Conditional:   conditional,
		})
		var rr api.RunResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(data, &rr); err != nil {
				t.Fatal(err)
			}
		}
		return rr, resp.StatusCode
	}

	// Serial references for both guard outcomes.
	serialTrue, code := run("condhash", "serial", false)
	if code != http.StatusOK {
		t.Fatalf("serial condhash = %d", code)
	}
	serialFalse, code := run("condhash-serial", "serial", false)
	if code != http.StatusOK {
		t.Fatalf("serial condhash-serial = %d", code)
	}

	// Guard true: parallel regions, bit-identical output.
	rr, code := run("condhash", "parallel", true)
	if code != http.StatusOK {
		t.Fatalf("conditional condhash = %d", code)
	}
	if rr.Output != serialTrue.Output {
		t.Fatalf("guard-true output %q, want serial %q", rr.Output, serialTrue.Output)
	}
	if rr.Stats.GuardParallel == 0 || rr.Stats.GuardSerial != 0 || rr.Stats.Regions == 0 {
		t.Fatalf("guard-true stats = %+v, want parallel guard entries", rr.Stats)
	}

	// Guard false: serial path, counter bumped, identical output.
	rr, code = run("condhash-serial", "parallel", true)
	if code != http.StatusOK {
		t.Fatalf("conditional condhash-serial = %d", code)
	}
	if rr.Output != serialFalse.Output {
		t.Fatalf("guard-false output %q, want serial %q", rr.Output, serialFalse.Output)
	}
	if rr.Stats.GuardSerial == 0 || rr.Stats.GuardParallel != 0 || rr.Stats.Regions != 0 {
		t.Fatalf("guard-false stats = %+v, want serial guard entries", rr.Stats)
	}

	// conditional requires mode=parallel.
	if _, code := run("condhash", "serial", true); code != http.StatusBadRequest {
		t.Fatalf("serial+conditional = %d, want 400", code)
	}

	st := statusz(t, ts)
	if st.GuardParallel == 0 || st.GuardSerial == 0 {
		t.Fatalf("statusz guard counters = %d parallel / %d serial, want both nonzero",
			st.GuardParallel, st.GuardSerial)
	}
}
