// Package api defines the JSON types of the commuted serving layer —
// the request/response bodies of /v1/analyze, /v1/run, and
// /v1/simulate, plus the /statusz counter snapshot. The CLI tools speak
// the same schema: commuterun -stats-json emits a RunStats line, so a
// pipeline that parses daemon responses parses CLI output unchanged.
package api

// Options selects load-time dialect options; they are part of the
// cache key (commute.Fingerprint).
type Options struct {
	// Transform applies the §7.2 while→tail-recursion rewrite before
	// analysis.
	Transform bool `json:"transform,omitempty"`
}

// SourceRequest identifies the program a request operates on: inline
// source, or a built-in application from the evaluation corpus.
type SourceRequest struct {
	// Name labels the program in diagnostics (default "request.mc").
	Name string `json:"name,omitempty"`
	// Source is the mini-C++ program text.
	Source string `json:"source,omitempty"`
	// App selects a built-in application instead of Source:
	// "barneshut", "water", "graph", "quickstart", "specdisjoint", or
	// "specconflict".
	App string `json:"app,omitempty"`
	// Options are the dialect options (part of the cache key).
	Options Options `json:"options,omitempty"`
}

// AnalyzeRequest asks for the commutativity analysis of a program.
type AnalyzeRequest struct {
	SourceRequest
	// Emit includes the generated parallel source (the paper's Figure 2
	// style output) in the response.
	Emit bool `json:"emit,omitempty"`
}

// MethodReport is the analysis outcome for one method.
type MethodReport struct {
	Method             string `json:"method"`
	Parallel           bool   `json:"parallel"`
	Reason             string `json:"reason,omitempty"`
	ExtentSize         int    `json:"extent_size"`
	AuxiliaryCallSites int    `json:"auxiliary_call_sites"`
	IndependentPairs   int    `json:"independent_pairs"`
	SymbolicPairs      int    `json:"symbolic_pairs"`

	// Confidence is the fraction of the extent's operation pairs the
	// analysis proved commuting: 1 for a proven extent, passed/total
	// when only the symbolic pair stage failed, 0 for a structural
	// rejection.
	Confidence float64 `json:"confidence"`
	// Condition is the residual symbolic equality the first failing
	// pair would need for the extent to commute, when one exists.
	Condition string `json:"condition,omitempty"`
	// SpeculationEligible reports whether a rejected extent may be run
	// speculatively (pair-stage failure only, no I/O in the extent).
	SpeculationEligible bool `json:"speculation_eligible,omitempty"`
}

// AnalyzeResponse is the commutativity report for a program.
type AnalyzeResponse struct {
	// Key is the program's content address (hex SHA-256 of source and
	// options); Cache is "hit", "miss", or "adopt" (served from a
	// peer's artifact bundle via the shared blob tier) for this request.
	Key   string `json:"key"`
	Cache string `json:"cache"`

	Methods         []MethodReport `json:"methods"`
	ParallelMethods []string       `json:"parallel_methods"`
	LoopsFound      int            `json:"loops_found"`
	LoopsSuppressed int            `json:"loops_suppressed"`
	ParallelSource  string         `json:"parallel_source,omitempty"`
	ElapsedMS       float64        `json:"elapsed_ms"`
}

// RunRequest asks for one execution of a program.
type RunRequest struct {
	SourceRequest
	// Mode is "serial" or "parallel" (default "parallel").
	Mode string `json:"mode,omitempty"`
	// Workers is the parallel worker count (default 4).
	Workers int `json:"workers,omitempty"`
	// Engine is "compiled" (default) or "walk".
	Engine string `json:"engine,omitempty"`
	// Sched is "stealing" (default) or "central".
	Sched string `json:"sched,omitempty"`
	// TimeoutMS bounds the execution's wall-clock time; the server
	// clamps it to its configured ceiling. 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxSteps bounds interpreter statements (0: unlimited).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Fallback enables serial re-execution of failed parallel regions.
	Fallback bool `json:"fallback,omitempty"`
	// Speculate is "off" (default), "auto", or "force": speculative
	// parallelization of extents rejected at the symbolic pair stage,
	// with write-buffered execution, validation at the join barrier,
	// and serial re-execution on a violation.
	Speculate string `json:"speculate,omitempty"`
	// SpeculateThreshold is the minimum analysis confidence to
	// speculate an extent under "auto" (0: the runtime default, 0.5).
	SpeculateThreshold float64 `json:"speculate_threshold,omitempty"`
}

// RunStats is the machine-readable execution summary shared by the
// daemon's /v1/run responses and commuterun -stats-json.
type RunStats struct {
	Mode    string  `json:"mode"`
	Engine  string  `json:"engine"`
	Sched   string  `json:"sched,omitempty"`
	Workers int     `json:"workers,omitempty"`
	WallMS  float64 `json:"wall_ms"`

	Regions         int64 `json:"regions,omitempty"`
	ParallelLoops   int64 `json:"parallel_loops,omitempty"`
	Chunks          int64 `json:"chunks,omitempty"`
	Iterations      int64 `json:"iterations,omitempty"`
	Tasks           int64 `json:"tasks,omitempty"`
	LazyInlines     int64 `json:"lazy_inlines,omitempty"`
	LockAcquires    int64 `json:"lock_acquires,omitempty"`
	Steals          int64 `json:"steals,omitempty"`
	LocalPops       int64 `json:"local_pops,omitempty"`
	TaskPanics      int64 `json:"task_panics,omitempty"`
	SerialFallbacks int64 `json:"serial_fallbacks,omitempty"`

	SpeculativeRegions int64 `json:"speculative_regions,omitempty"`
	SpeculationCommits int64 `json:"speculation_commits,omitempty"`
	SpeculationAborts  int64 `json:"speculation_aborts,omitempty"`
}

// RunResponse is the outcome of one execution.
type RunResponse struct {
	Key   string `json:"key"`
	Cache string `json:"cache"`

	// Output is the program's print output, truncated at the server's
	// per-request cap (OutputTruncated reports whether bytes were
	// dropped).
	Output          string   `json:"output"`
	OutputTruncated bool     `json:"output_truncated,omitempty"`
	Stats           RunStats `json:"stats"`
}

// SimulateRequest asks for simulated-multiprocessor speedups.
type SimulateRequest struct {
	SourceRequest
	// Procs are the processor counts to simulate (default
	// 1,2,4,8,16,32).
	Procs []int `json:"procs,omitempty"`
}

// SimPoint is the simulation outcome at one processor count.
type SimPoint struct {
	Procs         int     `json:"procs"`
	TimeMicros    float64 `json:"time_us"`
	Speedup       float64 `json:"speedup"`
	BlockedMicros float64 `json:"blocked_us"`
}

// SimulateResponse is a speedup curve.
type SimulateResponse struct {
	Key     string     `json:"key"`
	Cache   string     `json:"cache"`
	Results []SimPoint `json:"results"`
	// ElapsedMS covers tracing plus all simulations.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// EndpointStats is the per-endpoint latency summary in /statusz.
type EndpointStats struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	// Coalesced counts requests served from another request's batched
	// response (same fingerprint, within the batch linger window)
	// without re-entering the endpoint's handler.
	Coalesced int64 `json:"coalesced,omitempty"`
}

// ShardStats is one replica's counters in a fleet router's /statusz.
type ShardStats struct {
	URL       string  `json:"url"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	Rerouted  int64   `json:"rerouted"` // requests moved off this shard while it was down
	Retries   int64   `json:"retries"`  // bounded 429 Retry-After retries against this shard
	Down      bool    `json:"down"`
	VNodes    int     `json:"vnodes"`
	RingShare float64 `json:"ring_share"` // fraction of keyspace owned while all shards live
}

// StatusZ is the daemon's counter snapshot.
type StatusZ struct {
	UptimeSec float64 `json:"uptime_sec"`

	Requests   int64 `json:"requests"`
	InFlight   int64 `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`
	Rejected   int64 `json:"rejected"` // 429 load sheds
	Panics     int64 `json:"panics"`   // isolated request panics
	Fallbacks  int64 `json:"fallbacks"`

	SpeculationCommits int64 `json:"speculation_commits"`
	SpeculationAborts  int64 `json:"speculation_aborts"`

	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheEntries   int64 `json:"cache_entries"`
	CacheBytes     int64 `json:"cache_bytes"`

	// CacheAdoptions counts analyze requests served from a peer's
	// serialized artifact bundle (the shared blob tier) instead of a
	// local load; ArtifactsPublished counts bundles this replica wrote
	// to the tier after its own cold loads.
	CacheAdoptions     int64 `json:"cache_adoptions,omitempty"`
	ArtifactsPublished int64 `json:"artifacts_published,omitempty"`
	// BatchCoalesced is the total across endpoints (per-endpoint counts
	// are in Endpoints[...].Coalesced).
	BatchCoalesced int64 `json:"batch_coalesced,omitempty"`

	Endpoints map[string]EndpointStats `json:"endpoints"`

	// Shards is populated only by the fleet router's /statusz: one
	// entry per replica, keyed by shard name.
	Shards map[string]ShardStats `json:"shards,omitempty"`
}

// Error is the JSON error envelope for non-2xx responses.
type Error struct {
	Error string `json:"error"`
}
