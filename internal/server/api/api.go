// Package api defines the JSON types of the commuted serving layer —
// the request/response bodies of /v1/analyze, /v1/run, and
// /v1/simulate, plus the /statusz counter snapshot. The CLI tools speak
// the same schema: commuterun -stats-json emits a RunStats line, so a
// pipeline that parses daemon responses parses CLI output unchanged.
package api

import "commute/internal/cond"

// Options selects load-time dialect options; they are part of the
// cache key (commute.Fingerprint).
type Options struct {
	// Transform applies the §7.2 while→tail-recursion rewrite before
	// analysis.
	Transform bool `json:"transform,omitempty"`
}

// SourceRequest identifies the program a request operates on: inline
// source, or a built-in application from the evaluation corpus.
type SourceRequest struct {
	// Name labels the program in diagnostics (default "request.mc").
	Name string `json:"name,omitempty"`
	// Source is the mini-C++ program text.
	Source string `json:"source,omitempty"`
	// App selects a built-in application instead of Source:
	// "barneshut", "water", "graph", "quickstart", "specdisjoint",
	// "specconflict", "condhash" (conditional-commutativity
	// demonstrator, guard-true mode), or "condhash-serial" (the same
	// table in its non-commuting mode, guard false at runtime).
	App string `json:"app,omitempty"`
	// Options are the dialect options (part of the cache key).
	Options Options `json:"options,omitempty"`
}

// AnalyzeRequest asks for the commutativity analysis of a program.
type AnalyzeRequest struct {
	SourceRequest
	// Emit includes the generated parallel source (the paper's Figure 2
	// style output) in the response.
	Emit bool `json:"emit,omitempty"`
}

// MethodReport is the analysis outcome for one method.
type MethodReport struct {
	Method             string `json:"method"`
	Parallel           bool   `json:"parallel"`
	Reason             string `json:"reason,omitempty"`
	ExtentSize         int    `json:"extent_size"`
	AuxiliaryCallSites int    `json:"auxiliary_call_sites"`
	IndependentPairs   int    `json:"independent_pairs"`
	SymbolicPairs      int    `json:"symbolic_pairs"`

	// Confidence is the fraction of the extent's operation pairs the
	// analysis proved commuting: 1 for a proven extent, passed/total
	// when only the symbolic pair stage failed, 0 for a structural
	// rejection.
	Confidence float64 `json:"confidence"`
	// Condition is the rendered residual predicate under which the
	// extent's failing pairs would commute, when one exists;
	// ConditionTree is its structured form.
	Condition     string     `json:"condition,omitempty"`
	ConditionTree *Condition `json:"condition_tree,omitempty"`
	// Guard is Condition weakened to the fragment the runtime can
	// evaluate at region entry (rendered + structured). Guard implies
	// Condition, so running the region in parallel when the guard holds
	// is sound.
	Guard     string     `json:"guard,omitempty"`
	GuardTree *Condition `json:"guard_tree,omitempty"`
	// ConditionalEligible reports whether a rejected extent can run
	// under its synthesized guard (pair-stage failure only, residual
	// predicate synthesized, satisfiable guard).
	ConditionalEligible bool `json:"conditional_eligible,omitempty"`
	// SpeculationEligible reports whether a rejected extent may be run
	// speculatively (pair-stage failure only, no I/O in the extent).
	SpeculationEligible bool `json:"speculation_eligible,omitempty"`
}

// Condition is the structured JSON form of a synthesized
// commutativity predicate (internal/cond.Pred): a positive tree of
// "and"/"or" nodes over "atom" leaves, with "true"/"false" constants.
// Atoms carry the canonical rendering of their symbolic expression;
// references of the form ⟨ec:Class.field@global:G⟩ are
// extent-constant global fields the runtime reads at region entry.
type Condition struct {
	// Kind is "true", "false", "atom", "and", or "or".
	Kind string `json:"kind"`
	// Expr is the atom's canonical symbolic expression (atoms only).
	Expr string `json:"expr,omitempty"`
	// Ps holds the operands of an "and" or "or" node.
	Ps []*Condition `json:"ps,omitempty"`
}

// CondTree converts a synthesized predicate to its structured JSON
// form; nil predicates map to nil (field omitted).
func CondTree(p cond.Pred) *Condition {
	switch x := p.(type) {
	case cond.True:
		return &Condition{Kind: "true"}
	case cond.False:
		return &Condition{Kind: "false"}
	case cond.Atom:
		return &Condition{Kind: "atom", Expr: x.E.Key()}
	case *cond.And:
		c := &Condition{Kind: "and", Ps: make([]*Condition, len(x.Ps))}
		for i, q := range x.Ps {
			c.Ps[i] = CondTree(q)
		}
		return c
	case *cond.Or:
		c := &Condition{Kind: "or", Ps: make([]*Condition, len(x.Ps))}
		for i, q := range x.Ps {
			c.Ps[i] = CondTree(q)
		}
		return c
	}
	return nil
}

// AnalyzeResponse is the commutativity report for a program.
type AnalyzeResponse struct {
	// Key is the program's content address (hex SHA-256 of source and
	// options); Cache is "hit", "miss", or "adopt" (served from a
	// peer's artifact bundle via the shared blob tier) for this request.
	Key   string `json:"key"`
	Cache string `json:"cache"`

	Methods         []MethodReport `json:"methods"`
	ParallelMethods []string       `json:"parallel_methods"`
	LoopsFound      int            `json:"loops_found"`
	LoopsSuppressed int            `json:"loops_suppressed"`
	ParallelSource  string         `json:"parallel_source,omitempty"`
	ElapsedMS       float64        `json:"elapsed_ms"`
}

// RunRequest asks for one execution of a program.
type RunRequest struct {
	SourceRequest
	// Mode is "serial" or "parallel" (default "parallel").
	Mode string `json:"mode,omitempty"`
	// Workers is the parallel worker count (default 4).
	Workers int `json:"workers,omitempty"`
	// Engine is "compiled" (default) or "walk".
	Engine string `json:"engine,omitempty"`
	// Sched is "stealing" (default) or "central".
	Sched string `json:"sched,omitempty"`
	// TimeoutMS bounds the execution's wall-clock time; the server
	// clamps it to its configured ceiling. 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxSteps bounds interpreter statements (0: unlimited).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Fallback enables serial re-execution of failed parallel regions.
	Fallback bool `json:"fallback,omitempty"`
	// Speculate is "off" (default), "auto", or "force": speculative
	// parallelization of extents rejected at the symbolic pair stage,
	// with write-buffered execution, validation at the join barrier,
	// and serial re-execution on a violation.
	Speculate string `json:"speculate,omitempty"`
	// SpeculateThreshold is the minimum analysis confidence to
	// speculate an extent under "auto" (0: the runtime default, 0.5).
	SpeculateThreshold float64 `json:"speculate_threshold,omitempty"`
	// Conditional enables guarded execution of conditionally-eligible
	// extents: the synthesized guard is evaluated at region entry —
	// parallel when it holds, the serial path otherwise. Requires
	// mode=parallel.
	Conditional bool `json:"conditional,omitempty"`
}

// RunStats is the machine-readable execution summary shared by the
// daemon's /v1/run responses and commuterun -stats-json.
type RunStats struct {
	Mode    string  `json:"mode"`
	Engine  string  `json:"engine"`
	Sched   string  `json:"sched,omitempty"`
	Workers int     `json:"workers,omitempty"`
	WallMS  float64 `json:"wall_ms"`

	Regions         int64 `json:"regions,omitempty"`
	ParallelLoops   int64 `json:"parallel_loops,omitempty"`
	Chunks          int64 `json:"chunks,omitempty"`
	Iterations      int64 `json:"iterations,omitempty"`
	Tasks           int64 `json:"tasks,omitempty"`
	LazyInlines     int64 `json:"lazy_inlines,omitempty"`
	LockAcquires    int64 `json:"lock_acquires,omitempty"`
	Steals          int64 `json:"steals,omitempty"`
	LocalPops       int64 `json:"local_pops,omitempty"`
	TaskPanics      int64 `json:"task_panics,omitempty"`
	SerialFallbacks int64 `json:"serial_fallbacks,omitempty"`

	SpeculativeRegions int64 `json:"speculative_regions,omitempty"`
	SpeculationCommits int64 `json:"speculation_commits,omitempty"`
	SpeculationAborts  int64 `json:"speculation_aborts,omitempty"`

	// GuardParallel/GuardSerial count guarded region entries whose
	// synthesized commutativity guard held (region ran parallel) or
	// failed (serial path taken).
	GuardParallel int64 `json:"guard_parallel,omitempty"`
	GuardSerial   int64 `json:"guard_serial,omitempty"`
}

// RunResponse is the outcome of one execution.
type RunResponse struct {
	Key   string `json:"key"`
	Cache string `json:"cache"`

	// Output is the program's print output, truncated at the server's
	// per-request cap (OutputTruncated reports whether bytes were
	// dropped).
	Output          string   `json:"output"`
	OutputTruncated bool     `json:"output_truncated,omitempty"`
	Stats           RunStats `json:"stats"`
}

// SimulateRequest asks for simulated-multiprocessor speedups.
type SimulateRequest struct {
	SourceRequest
	// Procs are the processor counts to simulate (default
	// 1,2,4,8,16,32).
	Procs []int `json:"procs,omitempty"`
}

// SimPoint is the simulation outcome at one processor count.
type SimPoint struct {
	Procs         int     `json:"procs"`
	TimeMicros    float64 `json:"time_us"`
	Speedup       float64 `json:"speedup"`
	BlockedMicros float64 `json:"blocked_us"`
}

// SimulateResponse is a speedup curve.
type SimulateResponse struct {
	Key     string     `json:"key"`
	Cache   string     `json:"cache"`
	Results []SimPoint `json:"results"`
	// ElapsedMS covers tracing plus all simulations.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// EndpointStats is the per-endpoint latency summary in /statusz.
type EndpointStats struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	// Coalesced counts requests served from another request's batched
	// response (same fingerprint, within the batch linger window)
	// without re-entering the endpoint's handler.
	Coalesced int64 `json:"coalesced,omitempty"`
}

// ShardStats is one replica's counters in a fleet router's /statusz.
type ShardStats struct {
	URL       string  `json:"url"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	Rerouted  int64   `json:"rerouted"`           // requests moved off this shard while it was down
	Retries   int64   `json:"retries"`            // bounded 429 Retry-After retries against this shard
	Probes    int64   `json:"probes,omitempty"`   // active /healthz probes sent while marked down
	Revivals  int64   `json:"revivals,omitempty"` // probe-driven down→live transitions
	Down      bool    `json:"down"`
	VNodes    int     `json:"vnodes"`
	RingShare float64 `json:"ring_share"` // fraction of keyspace owned while all shards live
}

// StatusZ is the daemon's counter snapshot.
type StatusZ struct {
	UptimeSec float64 `json:"uptime_sec"`

	Requests   int64 `json:"requests"`
	InFlight   int64 `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`
	Rejected   int64 `json:"rejected"` // 429 load sheds
	Panics     int64 `json:"panics"`   // isolated request panics
	Fallbacks  int64 `json:"fallbacks"`

	SpeculationCommits int64 `json:"speculation_commits"`
	SpeculationAborts  int64 `json:"speculation_aborts"`

	GuardParallel int64 `json:"guard_parallel,omitempty"`
	GuardSerial   int64 `json:"guard_serial,omitempty"`

	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheEntries   int64 `json:"cache_entries"`
	CacheBytes     int64 `json:"cache_bytes"`

	// CacheAdoptions counts analyze requests served from a peer's
	// serialized artifact bundle (the shared blob tier) instead of a
	// local load; ArtifactsPublished counts bundles this replica wrote
	// to the tier after its own cold loads.
	CacheAdoptions     int64 `json:"cache_adoptions,omitempty"`
	ArtifactsPublished int64 `json:"artifacts_published,omitempty"`
	// BatchCoalesced is the total across endpoints (per-endpoint counts
	// are in Endpoints[...].Coalesced).
	BatchCoalesced int64 `json:"batch_coalesced,omitempty"`

	Endpoints map[string]EndpointStats `json:"endpoints"`

	// Shards is populated only by the fleet router's /statusz: one
	// entry per replica, keyed by shard name.
	Shards map[string]ShardStats `json:"shards,omitempty"`
}

// Error is the JSON error envelope for non-2xx responses.
type Error struct {
	Error string `json:"error"`
}
