package api

// Artifact bundles are the unit of the fleet's shared artifact tier: a
// cold replica that finds a peer's bundle for a fingerprint adopts the
// serialized analysis — method reports, parallel-method list, loop
// counts, and the emitted parallel source — instead of re-running
// parse, type check, and commutativity analysis itself. Bundles are
// content-addressed by the same commute.Fingerprint that keys the
// in-memory system cache, and the wire encoding carries an integrity
// frame so a truncated blob file or a mislabeled peer response is
// rejected rather than served.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// ArtifactBundle is the serialized analysis artifact for one program.
// Everything /v1/analyze returns can be reconstructed from it without a
// loaded system.
type ArtifactBundle struct {
	// Fingerprint is the program's content address (commute.Fingerprint
	// of name, source, and options); decoding verifies it against the
	// key the bundle was requested under.
	Fingerprint string `json:"fingerprint"`
	// Name labels the program in diagnostics.
	Name string `json:"name"`

	Methods         []MethodReport `json:"methods"`
	ParallelMethods []string       `json:"parallel_methods"`
	LoopsFound      int            `json:"loops_found"`
	LoopsSuppressed int            `json:"loops_suppressed"`
	// ParallelSource is the generated parallel source (Figure 2 style);
	// empty when the producing replica could not emit it.
	ParallelSource string `json:"parallel_source,omitempty"`
}

// artifactMagic is the frame header of an encoded bundle. The version
// suffix guards against schema drift between replicas built from
// different revisions: a decoder never misparses a future encoding, it
// rejects it.
const artifactMagic = "commute-artifact/1"

// EncodeArtifact frames a bundle for the blob tier: a header line with
// the format version and the hex SHA-256 of the JSON payload, then the
// payload itself.
func EncodeArtifact(b *ArtifactBundle) ([]byte, error) {
	payload, err := json.Marshal(b)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	var out bytes.Buffer
	fmt.Fprintf(&out, "%s %s\n", artifactMagic, hex.EncodeToString(sum[:]))
	out.Write(payload)
	return out.Bytes(), nil
}

// DecodeArtifact parses and verifies an encoded bundle: the frame
// checksum must match the payload and the embedded fingerprint must
// match the key the caller asked the blob tier for. Either mismatch
// means the blob is corrupt or mislabeled and must not be adopted.
func DecodeArtifact(key string, data []byte) (*ArtifactBundle, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("artifact %s: missing frame header", key)
	}
	header, payload := string(data[:nl]), data[nl+1:]
	magic, sumHex, ok := strings.Cut(header, " ")
	if !ok || magic != artifactMagic {
		return nil, fmt.Errorf("artifact %s: bad frame header %q", key, header)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, fmt.Errorf("artifact %s: payload checksum mismatch", key)
	}
	var b ArtifactBundle
	if err := json.Unmarshal(payload, &b); err != nil {
		return nil, fmt.Errorf("artifact %s: %w", key, err)
	}
	if b.Fingerprint != key {
		return nil, fmt.Errorf("artifact %s: bundle is fingerprinted %s", key, b.Fingerprint)
	}
	return &b, nil
}
