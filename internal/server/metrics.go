package server

import (
	"sort"
	"sync"
	"time"

	"commute/internal/server/api"
)

// latencyRecorder tracks one endpoint's request count, error count,
// and a sliding window of recent latencies for p50/p99 estimation. The
// window is a fixed ring — a daemon serving heavy traffic must not
// accumulate unbounded samples — so the percentiles describe the last
// ringSize requests, which is what an operator watching /statusz wants.
type latencyRecorder struct {
	mu        sync.Mutex
	requests  int64
	errors    int64
	coalesced int64             // answered with another request's response bytes
	ring      [ringSize]float64 // milliseconds
	n         int               // filled slots
	idx       int               // next write position
}

const ringSize = 512

func (l *latencyRecorder) record(d time.Duration, isErr bool) {
	ms := float64(d) / float64(time.Millisecond)
	l.mu.Lock()
	l.requests++
	if isErr {
		l.errors++
	}
	l.ring[l.idx] = ms
	l.idx = (l.idx + 1) % ringSize
	if l.n < ringSize {
		l.n++
	}
	l.mu.Unlock()
}

// coalesce counts a request answered from a batch leader's response.
func (l *latencyRecorder) coalesce() {
	l.mu.Lock()
	l.coalesced++
	l.mu.Unlock()
}

// snapshot computes the endpoint summary; percentiles are nearest-rank
// over the window.
func (l *latencyRecorder) snapshot() api.EndpointStats {
	l.mu.Lock()
	out := api.EndpointStats{Requests: l.requests, Errors: l.errors, Coalesced: l.coalesced}
	samples := append([]float64(nil), l.ring[:l.n]...)
	l.mu.Unlock()
	if len(samples) > 0 {
		sort.Float64s(samples)
		out.P50MS = quantile(samples, 0.50)
		out.P99MS = quantile(samples, 0.99)
	}
	return out
}

// quantile returns the nearest-rank q-quantile of sorted samples.
func quantile(sorted []float64, q float64) float64 {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
