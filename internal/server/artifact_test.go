package server

// Tests for the fleet-facing serving features: the shared artifact
// tier (publish on cold load, adopt on a peer's miss) and /v1/analyze
// request batching.

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"commute/internal/server/api"
	"commute/internal/server/cache"
)

func TestArtifactAdoption(t *testing.T) {
	// Two replicas sharing one blob tier: the first pays the full
	// pipeline and publishes; the second must adopt the artifact
	// instead of re-analyzing.
	blobs := cache.NewMemStore()
	_, owner := newTestServer(t, Config{Blobs: blobs, BatchLinger: -1})
	_, cold := newTestServer(t, Config{Blobs: blobs, BatchLinger: -1})
	req := api.AnalyzeRequest{SourceRequest: api.SourceRequest{App: "graph"}, Emit: true}

	resp, data := post(t, owner, "/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner analyze = %d: %s", resp.StatusCode, data)
	}
	var ownerResp api.AnalyzeResponse
	if err := json.Unmarshal(data, &ownerResp); err != nil {
		t.Fatal(err)
	}
	if ownerResp.Cache != "miss" {
		t.Fatalf("owner cache = %q, want miss", ownerResp.Cache)
	}
	if blobs.Len() != 1 {
		t.Fatalf("blob tier holds %d artifacts after cold load, want 1", blobs.Len())
	}

	resp, data = post(t, cold, "/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold-replica analyze = %d: %s", resp.StatusCode, data)
	}
	var adopted api.AnalyzeResponse
	if err := json.Unmarshal(data, &adopted); err != nil {
		t.Fatal(err)
	}
	if adopted.Cache != "adopt" {
		t.Fatalf("cold-replica cache = %q, want adopt", adopted.Cache)
	}
	if adopted.Key != ownerResp.Key {
		t.Fatalf("adopted key %s != owner key %s", adopted.Key, ownerResp.Key)
	}
	if len(adopted.Methods) != len(ownerResp.Methods) {
		t.Fatalf("adopted reports %d methods, owner %d", len(adopted.Methods), len(ownerResp.Methods))
	}
	if adopted.ParallelSource == "" || adopted.ParallelSource != ownerResp.ParallelSource {
		t.Fatal("adopted emitted source differs from the owner's")
	}

	ownerSt, coldSt := statusz(t, owner), statusz(t, cold)
	if ownerSt.ArtifactsPublished != 1 {
		t.Fatalf("owner published = %d, want 1", ownerSt.ArtifactsPublished)
	}
	if coldSt.CacheAdoptions != 1 {
		t.Fatalf("cold replica adoptions = %d, want 1", coldSt.CacheAdoptions)
	}
	// The adopting replica must never have run the pipeline.
	if lc := coldSt.Endpoints["load-cold"]; lc.Requests != 0 {
		t.Fatalf("cold replica ran %d full loads, want 0", lc.Requests)
	}
	// Repeat adoption is served from the in-memory bundle LRU without
	// another blob fetch, still reported as "adopt".
	resp, data = post(t, cold, "/v1/analyze", req)
	var again api.AnalyzeResponse
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || again.Cache != "adopt" {
		t.Fatalf("repeat adopt = %d cache %q, want 200 adopt", resp.StatusCode, again.Cache)
	}
	if st := statusz(t, cold); st.CacheAdoptions != 1 {
		t.Fatalf("repeat adopt re-fetched the blob: adoptions = %d, want 1", st.CacheAdoptions)
	}
}

func TestArtifactEndpointServesOwnerBundle(t *testing.T) {
	// Peers pull artifacts over GET /v1/artifact/{key}; an owner with a
	// warm system must serve a decodable, integrity-checked bundle.
	_, owner := newTestServer(t, Config{Blobs: cache.NewMemStore(), BatchLinger: -1})
	resp, data := post(t, owner, "/v1/analyze", api.AnalyzeRequest{SourceRequest: api.SourceRequest{App: "graph"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze = %d: %s", resp.StatusCode, data)
	}
	var ar api.AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}

	hr, err := owner.Client().Get(owner.URL + "/v1/artifact/" + ar.Key)
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, hr)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch = %d: %s", hr.StatusCode, raw)
	}
	b, err := api.DecodeArtifact(ar.Key, raw)
	if err != nil {
		t.Fatalf("served bundle fails integrity check: %v", err)
	}
	if b.Name != "graph.mc" || len(b.Methods) != len(ar.Methods) {
		t.Fatalf("bundle = name %q, %d methods; want graph.mc, %d", b.Name, len(b.Methods), len(ar.Methods))
	}

	hr, err = owner.Client().Get(owner.URL + "/v1/artifact/" + "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, hr)
	if hr.StatusCode != http.StatusNotFound {
		t.Fatalf("missing artifact = %d, want 404", hr.StatusCode)
	}
}

func TestAnalyzeBatchingCoalesces(t *testing.T) {
	// A stampede of identical analyze requests must produce one
	// response computation: followers are answered with the leader's
	// bytes and counted in the coalesce counters. A long linger makes
	// the test deterministic — every request after the first joins
	// either the in-flight batch or the lingering completed one.
	s, ts := newTestServer(t, Config{BatchLinger: 250 * time.Millisecond})
	req := api.AnalyzeRequest{SourceRequest: api.SourceRequest{App: "graph"}}

	const n = 16
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := post(t, ts, "/v1/analyze", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d = %d: %s", i, resp.StatusCode, data)
			}
			bodies[i] = data
		}(i)
	}
	wg.Wait()

	coalesced := s.coalesced.Load()
	if coalesced == 0 {
		t.Fatal("no requests coalesced across a 16-way identical stampede")
	}
	// Every coalesced follower got the leader's exact bytes; spot-check
	// that all bodies decode to the same key and report count.
	var first api.AnalyzeResponse
	if err := json.Unmarshal(bodies[0], &first); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		var got api.AnalyzeResponse
		if err := json.Unmarshal(bodies[i], &got); err != nil {
			t.Fatal(err)
		}
		if got.Key != first.Key || len(got.Methods) != len(first.Methods) {
			t.Fatalf("response %d diverged: key %s, %d methods", i, got.Key, len(got.Methods))
		}
	}
	st := statusz(t, ts)
	if st.BatchCoalesced != coalesced {
		t.Fatalf("statusz batch_coalesced = %d, counter = %d", st.BatchCoalesced, coalesced)
	}
	if ep := st.Endpoints["analyze"]; ep.Coalesced != coalesced {
		t.Fatalf("analyze endpoint coalesced = %d, want %d", ep.Coalesced, coalesced)
	}
	// Only one actual load happened under the stampede.
	if cs := s.Cache().Snapshot(); cs.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1", cs.Misses)
	}
}

func TestAnalyzeBatchKeySeparatesEmit(t *testing.T) {
	// emit=true and emit=false responses differ; they must never share
	// a batch even under a generous linger.
	_, ts := newTestServer(t, Config{BatchLinger: 250 * time.Millisecond})
	src := api.SourceRequest{App: "graph"}

	_, plain := post(t, ts, "/v1/analyze", api.AnalyzeRequest{SourceRequest: src})
	_, emitted := post(t, ts, "/v1/analyze", api.AnalyzeRequest{SourceRequest: src, Emit: true})
	var p, e api.AnalyzeResponse
	if err := json.Unmarshal(plain, &p); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(emitted, &e); err != nil {
		t.Fatal(err)
	}
	if p.ParallelSource != "" {
		t.Fatal("emit=false response carries parallel source")
	}
	if e.ParallelSource == "" {
		t.Fatal("emit=true response coalesced onto the emit=false batch")
	}
}

func TestBatchLeaderErrorSharedThenRetryable(t *testing.T) {
	// A leader that fails (bad program) publishes its error to the
	// batch; the linger then expires and a later request gets a fresh
	// computation, not the cached failure forever.
	_, ts := newTestServer(t, Config{BatchLinger: 1 * time.Millisecond})
	bad := api.AnalyzeRequest{SourceRequest: api.SourceRequest{Name: "bad.mc", Source: "void main( {}"}}
	resp, _ := post(t, ts, "/v1/analyze", bad)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad program = %d, want 422", resp.StatusCode)
	}
	time.Sleep(20 * time.Millisecond)
	resp, _ = post(t, ts, "/v1/analyze", bad)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad program after linger = %d, want 422", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
